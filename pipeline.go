package storypivot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/extract"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/retire"
	"repro/internal/storage"
	"repro/internal/stream"
)

// Pipeline-level instrumentation. The checkpoint-restore counters share
// names with the stream package's registrations, so both resolve to the
// same obs.Default metrics.
var (
	metDocuments = obs.GetCounter("storypivot_pipeline_documents_total",
		"documents accepted by AddDocument")
	metPipelineIngest = obs.GetHistogram("storypivot_pipeline_ingest_seconds",
		"per-snippet latency through persistence and identification")
	metCheckpointWrites = obs.GetCounter("storypivot_pipeline_checkpoint_writes_total",
		"checkpoints written")
	metCheckpointLat = obs.GetHistogram("storypivot_pipeline_checkpoint_seconds",
		"checkpoint serialisation and rename latency")
	metRestoreFallbacks = obs.GetCounter("storypivot_stream_checkpoint_restore_failures_total",
		"checkpoint restores that failed and fell back to replay")
	metReplayFallbackSnippets = obs.GetCounter("storypivot_pipeline_replayed_snippets_total",
		"snippets replayed through identification at open")
	metIngestErrors = obs.GetCounter("storypivot_pipeline_ingest_errors_total",
		"snippets rejected by Ingest (validation, duplicate, storage failure)")
)

// Pipeline is the end-to-end StoryPivot system: extraction → (optional)
// persistence → story identification → story alignment → refinement.
// A Pipeline is safe for concurrent use.
type Pipeline struct {
	engine         *stream.Engine
	extractor      *extract.Extractor
	kb             *KnowledgeBase
	index          *index.Index
	retire         *retire.Manager // nil unless WithRetireWindow; immutable after New
	scanQueries    bool
	checkpointPath string
	// stripText marks tiered storage: the engine (and so the query
	// index, stories, and archive) holds snippets with display text and
	// source document removed, and rendering hydrates through
	// SnippetText. Immutable after New.
	stripText bool
	warnings  []string // recovery findings from New (immutable after)

	mu     sync.Mutex
	store  *storage.Store
	closed bool
}

// ErrClosed reports use of a closed pipeline.
var ErrClosed = errors.New("storypivot: pipeline is closed")

// New creates a pipeline. With WithStorage, previously persisted snippets
// are replayed through identification before New returns.
func New(opts ...Option) (*Pipeline, error) {
	cfg := defaultsConfig()
	for _, o := range opts {
		o(cfg)
	}
	if err := cfg.stream.Identify.Validate(); err != nil {
		return nil, fmt.Errorf("storypivot: %w", err)
	}
	if err := cfg.stream.Align.Validate(); err != nil {
		return nil, fmt.Errorf("storypivot: %w", err)
	}
	p := &Pipeline{
		engine:    stream.NewEngine(cfg.stream),
		extractor: extract.NewExtractor(cfg.gazetteer),
		kb:        cfg.kb,
	}
	p.extractor.Bigrams = cfg.bigrams
	p.stripText = cfg.storageOpt.Tier != nil
	if cfg.retire.Window > 0 {
		if cfg.retire.Dir == "" {
			if cfg.storageDir == "" {
				return nil, fmt.Errorf("storypivot: retirement requires WithRetireDir or WithStorage")
			}
			cfg.retire.Dir = filepath.Join(cfg.storageDir, "archive")
		}
		// The reactivation policy mirrors the matching policies it stands
		// in for: ω for same-source evidence, alignment slack across
		// sources.
		cfg.retire.IdentWindow = cfg.stream.Identify.Window
		cfg.retire.AlignSlack = cfg.stream.Align.Slack
		mgr, err := retire.Open(cfg.retire)
		if err != nil {
			return nil, fmt.Errorf("storypivot: opening archive: %w", err)
		}
		p.retire = mgr
	}
	if cfg.storageDir != "" {
		st, err := storage.Open(cfg.storageDir, cfg.storageOpt)
		if err != nil {
			return nil, fmt.Errorf("storypivot: opening store: %w", err)
		}
		p.store = st
		p.checkpointPath = filepath.Join(cfg.storageDir, "checkpoint.json")
		p.warnings = append(p.warnings, st.RecoveryWarnings()...)
		all := st.All()

		// Fast path: a valid checkpoint rebuilds identification state in
		// O(n) map inserts. Any inconsistency (stale, corrupt, missing)
		// falls back to full replay — the checkpoint is an optimisation,
		// never a source of truth. A checkpoint that *exists* but fails
		// to restore is surfaced: it usually means the store and the
		// checkpoint diverged (partial corruption, manual edits), and
		// silent replay would hide that signal.
		engine, err := p.tryRestore(cfg.stream, all)
		if err == nil {
			p.engine = engine
		} else {
			if !errors.Is(err, errNoCheckpoint) {
				metRestoreFallbacks.Inc()
				p.warnings = append(p.warnings, fmt.Sprintf(
					"checkpoint restore failed (%v); replaying %d snippets", err, len(all)))
			}
			if p.retire != nil {
				// Replay rebuilds every story resident, so whatever the
				// archive holds is stale by construction. Attaching the
				// retirer before the loop keeps the replay itself
				// memory-bounded: cold stories re-retire as the replayed
				// clock advances.
				if rerr := p.retire.Reset(); rerr != nil {
					st.Close()
					return nil, fmt.Errorf("storypivot: resetting archive: %w", rerr)
				}
				p.engine.SetRetirer(p.retire)
			}
			metReplayFallbackSnippets.Add(uint64(len(all)))
			for _, sn := range all {
				if _, err := p.engine.Ingest(sn); err != nil && !errors.Is(err, stream.ErrDuplicate) {
					st.Close()
					return nil, fmt.Errorf("storypivot: replaying snippet %d: %w", sn.ID, err)
				}
			}
		}
		maxID := SnippetID(0)
		for _, sn := range all {
			if sn.ID > maxID {
				maxID = sn.ID
			}
		}
		p.extractor.SetNextID(uint64(maxID))
	}
	if p.retire != nil {
		if cfg.storageDir == "" {
			// Without a persistent store there is nothing to replay a
			// stale archive against; start it empty.
			if err := p.retire.Reset(); err != nil {
				return nil, fmt.Errorf("storypivot: resetting archive: %w", err)
			}
		}
		p.engine.SetRetirer(p.retire)
	}
	// The query index attaches after the engine is final (restore may
	// have replaced it) so its first publish sees whatever result the
	// engine already computed. It is maintained even under
	// WithScanQueries so the two paths can be compared on one pipeline.
	p.index = index.New(index.Options{})
	p.index.StartCompactor(0)
	p.scanQueries = cfg.scanQueries
	p.engine.SetResultSink(p.index)
	return p, nil
}

// Index exposes the query-serving index (size stats, manual sweeps).
func (p *Pipeline) Index() *index.Index { return p.index }

// errNoCheckpoint reports the benign restore misses: no checkpoint file
// was ever written, or there is nothing to restore against. These select
// the replay path without a warning.
var errNoCheckpoint = errors.New("storypivot: no usable checkpoint")

// tryRestore attempts the checkpoint fast path; any failure selects the
// replay path. Failures other than errNoCheckpoint indicate a
// checkpoint that exists but could not be honoured.
func (p *Pipeline) tryRestore(opts stream.Options, snippets []*Snippet) (*stream.Engine, error) {
	if p.checkpointPath == "" || len(snippets) == 0 {
		return nil, errNoCheckpoint
	}
	f, err := os.Open(p.checkpointPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, errNoCheckpoint
		}
		return nil, err
	}
	defer f.Close()
	cp, err := stream.ReadCheckpoint(f)
	if err != nil {
		return nil, err
	}
	var verify func(StoryID) bool
	if p.retire != nil {
		verify = p.retire.Has
	}
	engine, err := stream.RestoreEngineArchived(opts, snippets, cp, verify)
	if err != nil {
		return nil, err
	}
	if p.retire != nil {
		// Archive records for stories the checkpoint considers resident
		// (retired after the checkpoint was written, or reactivated and
		// re-checkpointed) are stale; drop them from the reactivation
		// index so they cannot resurrect a story that is already live.
		keep := make(map[StoryID]bool)
		for _, sc := range cp.Sources {
			for _, sid := range sc.Archived {
				keep[sid] = true
			}
		}
		p.retire.Reconcile(keep)
	}
	if len(cp.Tier) > 0 {
		// Checkpoint v3 carries the chunk manifest of the tiered store.
		// The chunks already self-healed when the store opened; the
		// reconcile surfaces what changed behind the checkpoint's back
		// (a chunk vanished, rows truncated) as recovery warnings.
		p.warnings = append(p.warnings, p.store.TierReconcile(cp.Tier)...)
	}
	return engine, nil
}

// RecoveryWarnings returns the partial-corruption findings collected
// while New opened the store and rebuilt state: torn segment tails,
// undecodable records, and checkpoint restores that fell back to
// replay. Empty means recovery was clean (or storage is disabled).
func (p *Pipeline) RecoveryWarnings() []string {
	return append([]string(nil), p.warnings...)
}

// WriteCheckpoint persists the current identification state next to the
// event store, making the next New over the same directory an O(n)
// restore instead of a full replay. It is called automatically by Close;
// long-running processes may call it periodically. Without WithStorage it
// is a no-op.
func (p *Pipeline) WriteCheckpoint() error {
	p.mu.Lock()
	path := p.checkpointPath
	closed := p.closed
	st := p.store
	p.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if path == "" {
		return nil
	}
	span := metCheckpointLat.Start()
	// AtomicWrite fsyncs the temp file before the rename and the parent
	// directory after it: without both, a crash right after Close could
	// lose the checkpoint the rename claimed to publish. Error paths
	// never leave a temp file behind.
	cp := p.engine.Checkpoint()
	if st != nil {
		if m, err := st.TierManifestJSON(); err == nil && len(m) > 0 {
			cp.Tier = m
		}
	}
	if err := storage.AtomicWrite(path, cp.Write); err != nil {
		return err
	}
	metCheckpointWrites.Inc()
	span.End()
	return nil
}

// AddDocument extracts snippets from a raw document and ingests them.
// It returns the extracted snippets (with assigned IDs and stories).
// Every snippet is attempted; if any fail, the joined per-snippet
// errors are returned alongside the extracted set.
func (p *Pipeline) AddDocument(doc *Document) ([]*Snippet, error) {
	snippets, _, errs := p.AddDocumentStats(doc)
	return snippets, errors.Join(errs...)
}

// AddDocumentStats is AddDocument with per-snippet accounting: it
// reports how many extracted snippets were accepted and the individual
// ingest errors (with snippet context) for those that were not. The
// HTTP layer surfaces these counts in POST /api/documents responses.
func (p *Pipeline) AddDocumentStats(doc *Document) (snippets []*Snippet, accepted int, errs []error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, 0, []error{ErrClosed}
	}
	p.mu.Unlock()
	snippets, err := p.extractor.Extract(doc)
	if err != nil {
		return nil, 0, []error{err}
	}
	accepted, errs = p.IngestAllErrs(snippets)
	metDocuments.Inc()
	return snippets, accepted, errs
}

// Ingest feeds one pre-extracted snippet into the pipeline (persisting it
// first when storage is enabled).
func (p *Pipeline) Ingest(sn *Snippet) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	st := p.store
	p.mu.Unlock()
	span := metPipelineIngest.Start()
	if st != nil {
		if err := st.Append(sn); err != nil {
			return err
		}
	}
	eng := sn
	if p.stripText && (sn.Text != "" || sn.Document != "") {
		// Tiered storage: the store holds the full payload; everything
		// downstream of it (engine, index, archive) gets a copy with the
		// display-only fields stripped so resident story state stops
		// scaling with text size. Rendering hydrates via SnippetText.
		eng = sn.Clone()
		eng.Text, eng.Document = "", ""
	}
	_, err := p.engine.Ingest(eng)
	if err == nil {
		span.End()
	}
	return err
}

// IngestAll ingests a batch, skipping snippets that fail, and returns the
// number accepted.
func (p *Pipeline) IngestAll(snippets []*Snippet) int {
	n, _ := p.IngestAllErrs(snippets)
	return n
}

// IngestAllErrs ingests a batch, attempting every snippet, and returns
// the number accepted plus one error per rejected snippet, each wrapped
// with the snippet's identity so a failed batch is diagnosable
// per-record instead of being silently dropped.
func (p *Pipeline) IngestAllErrs(snippets []*Snippet) (accepted int, errs []error) {
	for _, sn := range snippets {
		if err := p.Ingest(sn); err != nil {
			metIngestErrors.Inc()
			errs = append(errs, fmt.Errorf("snippet %d (source %s): %w", sn.ID, sn.Source, err))
			continue
		}
		accepted++
	}
	return accepted, errs
}

// Sources returns the data sources seen so far, sorted.
func (p *Pipeline) Sources() []SourceID { return p.engine.Sources() }

// RemoveSource detaches a source and all its stories from the live result
// (persisted snippets remain in the store).
func (p *Pipeline) RemoveSource(src SourceID) bool { return p.engine.RemoveSource(src) }

// Stories returns the current per-source stories of src ("Stories per
// Source" module, paper Figure 5).
func (p *Pipeline) Stories(src SourceID) []*Story { return p.engine.Stories(src) }

// Align forces a re-alignment and returns the fresh result.
func (p *Pipeline) Align() *Result { return &Result{inner: p.engine.Align()} }

// Result returns the current alignment result, aligning lazily if
// anything changed since the last call.
func (p *Pipeline) Result() *Result { return &Result{inner: p.engine.Result()} }

// IntegratedStories returns all current integrated stories ("Snippets per
// Story" module, paper Figure 6).
func (p *Pipeline) IntegratedStories() []*IntegratedStory { return p.Result().Integrated() }

// StoryOf returns the per-source story a snippet currently belongs to
// (0 if unknown).
func (p *Pipeline) StoryOf(src SourceID, id SnippetID) StoryID {
	ident := p.engine.Identifier(src)
	if ident == nil {
		return 0
	}
	return ident.StoryOf(id)
}

// Snippet returns a persisted snippet by ID (requires WithStorage).
func (p *Pipeline) Snippet(id SnippetID) *Snippet {
	p.mu.Lock()
	st := p.store
	p.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Get(id)
}

// SnippetReader hydrates display text for result rendering. Under
// tiered storage the engine's resident snippets carry no text; views
// fetch it from the snippet's storage tier on demand.
type SnippetReader interface {
	SnippetText(id SnippetID) (text, document string, ok bool)
}

// SnippetText returns the display text and source document of a stored
// snippet, implementing SnippetReader (requires WithStorage; without it
// ok is always false and callers fall back to the text the snippet
// itself carries).
func (p *Pipeline) SnippetText(id SnippetID) (text, document string, ok bool) {
	p.mu.Lock()
	st := p.store
	closed := p.closed
	p.mu.Unlock()
	if closed || st == nil {
		return "", "", false
	}
	return st.SnippetText(id)
}

// TierStats reports the tiered store's chunk occupancy and fault
// counters; ok is false when tiered storage is not enabled.
func (p *Pipeline) TierStats() (storage.TierStats, bool) {
	p.mu.Lock()
	st := p.store
	p.mu.Unlock()
	if st == nil {
		return storage.TierStats{}, false
	}
	return st.TierStats()
}

// Close releases the pipeline's resources, writing a checkpoint and
// flushing the store when persistence is enabled.
func (p *Pipeline) Close() error {
	if err := p.WriteCheckpoint(); err != nil && !errors.Is(err, ErrClosed) {
		// Checkpointing is best-effort: a failed write only costs the
		// next open a replay, so it must not block shutdown.
		_ = err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	p.closed = true
	if p.index != nil {
		p.index.Close()
	}
	var err error
	if p.store != nil {
		err = p.store.Close()
	}
	if p.retire != nil {
		if cerr := p.retire.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Engine exposes the underlying stream engine for advanced integrations
// (statistics module, benchmarks).
func (p *Pipeline) Engine() *stream.Engine { return p.engine }

// Retire exposes the story-retirement manager (window state, live policy
// rebasing); nil unless WithRetireWindow enabled retirement.
func (p *Pipeline) Retire() *retire.Manager { return p.retire }
