package storypivot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

func TestGDELTRoundTrip(t *testing.T) {
	// Generate a corpus, export as GDELT TSV, ingest through the GDELT
	// path, and check the pipeline produces a sane story structure.
	corpus := datagen.Generate(experiments.CorpusScale(1200, 5, 21))
	var buf bytes.Buffer
	if err := datagen.ExportGDELT(&buf, corpus, 21); err != nil {
		t.Fatal(err)
	}

	sns, stats, err := ReadGDELT(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Malformed != 0 {
		t.Fatalf("exporter produced %d malformed rows", stats.Malformed)
	}
	if len(sns) < len(corpus.Snippets)*9/10 {
		t.Fatalf("ReadGDELT kept %d of %d", len(sns), len(corpus.Snippets))
	}

	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ingestStats, err := p.IngestGDELT(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ingestStats.Accepted == 0 {
		t.Fatal("nothing ingested")
	}
	res := p.Result()
	if len(res.Integrated()) == 0 {
		t.Fatal("no stories from GDELT feed")
	}
	// GDELT rows carry entity + CAMEO signal only; same-story rows share
	// both, so multi-source alignment must still happen.
	if len(res.MultiSource()) == 0 {
		t.Fatal("no cross-source stories from GDELT feed")
	}
}

func TestIngestGDELTSkipsNoise(t *testing.T) {
	cols := make([]string, 58)
	cols[0], cols[1], cols[5], cols[26], cols[31], cols[57] =
		"1", "20140717", "UKR", "195", "3", "http://a.example.com/1"
	good := strings.Join(cols, "\t")
	input := good + "\nthis is not a gdelt row\n"
	p, _ := New()
	defer p.Close()
	stats, err := p.IngestGDELT(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Accepted != 1 || stats.Malformed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}
