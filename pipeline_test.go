package storypivot

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/datagen"
)

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

func mh17Docs() []*Document {
	return []*Document{
		{
			Source: "nyt", URL: "http://nytimes.com/doc1.html", Published: day(17),
			Title: "Jetliner Explodes over Ukraine",
			Body:  "A Malaysia Airlines Boeing 777 with 298 people aboard exploded, crashed and burned near Donetsk.\n\nPro-Russia separatists are suspected of shooting the plane down with a missile.",
		},
		{
			Source: "nyt", URL: "http://nytimes.com/doc2.html", Published: day(18),
			Title: "Evidence of Russian Links to Jet's Downing",
			Body:  "Officials leading the criminal investigation into the crash said the plane was shot down.\n\nUkraine asked the United Nations civil aviation authority to investigate the crash.",
		},
		{
			Source: "wsj", URL: "http://online.wsj.com/doc3.html", Published: day(17),
			Title: "Passenger Jet Felled over Ukraine",
			Body:  "The United States government has concluded that the passenger jet crashed after being shot down by a missile over Ukraine.",
		},
		{
			Source: "wsj", URL: "http://online.wsj.com/doc4.html", Published: day(18),
			Title: "Google Battles Yelp",
			Body:  "Google rival Yelp says the search giant is promoting its own content at the expense of users in search results.",
		},
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for _, d := range mh17Docs() {
		if _, err := p.AddDocument(d); err != nil {
			t.Fatalf("AddDocument(%s): %v", d.URL, err)
		}
	}
	srcs := p.Sources()
	if len(srcs) != 2 {
		t.Fatalf("Sources = %v", srcs)
	}
	// Crash story aligned across sources; Google story single-source.
	res := p.Result()
	multi := res.MultiSource()
	if len(multi) != 1 {
		t.Fatalf("MultiSource = %d, want 1 (got %d integrated total)", len(multi), len(res.Integrated()))
	}
	crash := multi[0]
	if got := crash.EntityFreq()["UKR"]; got == 0 {
		t.Error("crash story lost the UKR entity")
	}
	if len(res.Matches()) == 0 {
		t.Error("no match edges recorded")
	}
	// Per-source stories exist (Figure 5 module).
	if got := p.Stories("nyt"); len(got) == 0 {
		t.Error("no nyt stories")
	}
	// Queries.
	if hits := p.StoriesByEntity("UKR"); len(hits) == 0 || hits[0] != crash {
		t.Error("StoriesByEntity(UKR) did not rank the crash story first")
	}
	if hits := p.Search("plane crash investigation"); len(hits) == 0 || hits[0] != crash {
		t.Error("Search did not find the crash story")
	}
	if hits := p.Search(""); hits == nil || len(hits) != 0 {
		t.Error("empty search should return an empty (non-nil) slice")
	}
	tl := p.Timeline("UKR")
	if len(tl) < 2 {
		t.Fatalf("Timeline(UKR) = %d snippets", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Timestamp.Before(tl[i-1].Timestamp) {
			t.Fatal("timeline not chronological")
		}
	}
	// Perspectives.
	pers := Perspectives(crash)
	if len(pers) != 2 {
		t.Fatalf("Perspectives = %v", pers)
	}
	for src, pv := range pers {
		if pv.Snippets == 0 || len(pv.TopTerms) == 0 {
			t.Errorf("perspective of %s empty: %+v", src, pv)
		}
		if pv.String() == "" {
			t.Errorf("perspective String empty for %s", src)
		}
	}
}

func TestPipelineClosedErrors(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close: %v", err)
	}
	if _, err := p.AddDocument(mh17Docs()[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("AddDocument after close: %v", err)
	}
	if err := p.Ingest(&Snippet{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Ingest after close: %v", err)
	}
}

func TestPipelinePersistenceAndReplay(t *testing.T) {
	dir := t.TempDir()
	p, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range mh17Docs() {
		if _, err := p.AddDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	wantMulti := len(p.Result().MultiSource())
	wantTotal := len(p.Result().Integrated())
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: state is rebuilt from the store.
	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	res := p2.Result()
	if len(res.MultiSource()) != wantMulti || len(res.Integrated()) != wantTotal {
		t.Fatalf("replayed result %d/%d, want %d/%d",
			len(res.MultiSource()), len(res.Integrated()), wantMulti, wantTotal)
	}
	// Snippet lookup served from the store.
	if p2.Snippet(1) == nil {
		t.Error("persisted snippet not retrievable")
	}
	// New documents continue with fresh IDs (no duplicate-ID store errors).
	if _, err := p2.AddDocument(&Document{
		Source: "nyt", URL: "http://nytimes.com/doc9.html", Published: day(20),
		Title: "Sanctions Announced Against Russia",
		Body:  "The European Union and the United States announced expanded sanctions against Russia over the conflict in Ukraine.",
	}); err != nil {
		t.Fatalf("post-replay AddDocument: %v", err)
	}
}

func TestPipelineModesDiffer(t *testing.T) {
	gen := datagen.DefaultConfig()
	gen.Sources = 2
	gen.Stories = 6
	gen.EventsPerStory = 8
	corpus := datagen.Generate(gen)

	run := func(m Mode) int {
		p, err := New(WithMode(m))
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		p.IngestAll(corpus.Snippets)
		return len(p.Result().Integrated())
	}
	// Both modes must produce a sane story count; exact equality is not
	// required (they are different algorithms).
	nT, nC := run(ModeTemporal), run(ModeComplete)
	if nT == 0 || nC == 0 {
		t.Fatalf("temporal=%d complete=%d", nT, nC)
	}
}

func TestPipelineOptionsApply(t *testing.T) {
	p, err := New(
		WithWindow(48*time.Hour),
		WithAttachThreshold(0.5),
		WithRepairEvery(10),
		WithSketchIndex(true),
		WithSketchFilter(true),
		WithAlignThreshold(0.5),
		WithAlignSlack(24*time.Hour),
		WithRefinement(true),
		WithAutoAlign(5),
		WithDedup(1024),
		WithGazetteer(DefaultGazetteer()),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, d := range mh17Docs() {
		if _, err := p.AddDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	if p.Engine() == nil {
		t.Fatal("Engine accessor nil")
	}
	if got := p.Result().Integrated(); len(got) == 0 {
		t.Fatal("no stories with all options enabled")
	}
}

func TestPipelineRemoveSource(t *testing.T) {
	p, _ := New()
	defer p.Close()
	for _, d := range mh17Docs() {
		p.AddDocument(d)
	}
	if !p.RemoveSource("wsj") {
		t.Fatal("RemoveSource = false")
	}
	if len(p.Result().MultiSource()) != 0 {
		t.Fatal("wsj stories survived removal")
	}
	if p.StoryOf("wsj", 1) != 0 {
		t.Fatal("StoryOf for removed source should be 0")
	}
}

func TestNilResultAccessors(t *testing.T) {
	var r *Result
	if r.Integrated() != nil || r.MultiSource() != nil || r.Matches() != nil || r.IntegratedOf(1) != nil {
		t.Fatal("nil Result accessors must return nil")
	}
}

func ExamplePipeline() {
	p, _ := New()
	defer p.Close()
	p.AddDocument(&Document{
		Source: "nyt", Published: time.Date(2014, 7, 17, 0, 0, 0, 0, time.UTC),
		Title: "Jetliner Explodes over Ukraine",
		Body:  "A Malaysian airplane crashed near Donetsk after being shot down.",
	})
	p.AddDocument(&Document{
		Source: "wsj", Published: time.Date(2014, 7, 17, 0, 0, 0, 0, time.UTC),
		Title: "Jet Felled over Ukraine",
		Body:  "A Malaysian passenger plane was shot down over eastern Ukraine.",
	})
	fmt.Println(len(p.Result().MultiSource()))
	// Output: 1
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"zero window", []Option{WithWindow(0)}},
		{"negative window", []Option{WithWindow(-time.Hour)}},
		{"threshold too high", []Option{WithAttachThreshold(1.5)}},
		{"threshold zero", []Option{WithAttachThreshold(0)}},
		{"bad align threshold", []Option{WithAlignThreshold(2)}},
		{"negative slack", []Option{WithAlignSlack(-time.Hour)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.opts...); err == nil {
				t.Fatalf("New accepted %s", c.name)
			}
		})
	}
	// Complete mode needs no window.
	p, err := New(WithMode(ModeComplete), WithWindow(0))
	if err != nil {
		t.Fatalf("complete mode with zero window rejected: %v", err)
	}
	p.Close()
}
