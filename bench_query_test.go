package storypivot

// Query-serving benchmarks: the indexed path (internal/index) against
// the legacy full-scan oracle on the same warm pipeline, at the E1
// corpus scale. Each benchmark self-times every operation and reports
// p50/p99 next to the usual ns/op; scripts/bench.sh turns the section
// into BENCH_query.json (QPS + tail latency, indexed vs scan).
//
// Run with:
//
//	go test -run '^$' -bench 'BenchmarkQuery' -benchmem

import (
	"sort"
	"sync"
	"testing"
	"time"
)

var queryBench struct {
	sync.Once
	p        *Pipeline
	entities []Entity
	queries  []string
}

// queryBenchSetup builds one warm pipeline shared by every query
// benchmark: E1-scale corpus ingested, aligned, and published to the
// index. The panel skips the deliberate miss/empty probes of the
// differential tests — benchmarks measure hit-bearing queries.
func queryBenchSetup(b *testing.B) *Pipeline {
	b.Helper()
	queryBench.Do(func() {
		c := corpusFor(b, 8000, 10, 1)
		p, err := New()
		if err != nil {
			b.Fatal(err)
		}
		p.IngestAll(c.Snippets)
		p.Result()
		queryBench.p = p
		queryBench.entities = panelEntities(c, 6)[1:] // drop the planted miss
		queryBench.queries = panelQueries(c, 8)[2:]   // drop miss and empty
	})
	return queryBench.p
}

// benchQuery times each operation individually so tail latency is
// visible: ns/op hides the p99, which is what a demo front-end blocked
// behind a full scan actually feels.
func benchQuery(b *testing.B, run func(i int)) {
	samples := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		run(i)
		samples = append(samples, time.Since(t0))
	}
	b.StopTimer()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(q float64) float64 {
		k := int(q * float64(len(samples)-1))
		return float64(samples[k].Nanoseconds()) / 1e3
	}
	b.ReportMetric(pct(0.50), "p50_us")
	b.ReportMetric(pct(0.99), "p99_us")
}

func BenchmarkQuerySearchIndexed(b *testing.B) {
	p := queryBenchSetup(b)
	qs := queryBench.queries
	benchQuery(b, func(i int) { p.SearchN(qs[i%len(qs)], 0, 50) })
}

func BenchmarkQuerySearchScan(b *testing.B) {
	p := queryBenchSetup(b)
	qs := queryBench.queries
	benchQuery(b, func(i int) { pageOf(p.scanSearch(qs[i%len(qs)]), 0, 50) })
}

func BenchmarkQueryEntityIndexed(b *testing.B) {
	p := queryBenchSetup(b)
	es := queryBench.entities
	benchQuery(b, func(i int) { p.StoriesByEntityN(es[i%len(es)], 0, 50) })
}

func BenchmarkQueryEntityScan(b *testing.B) {
	p := queryBenchSetup(b)
	es := queryBench.entities
	benchQuery(b, func(i int) { pageOf(p.scanStoriesByEntity(es[i%len(es)]), 0, 50) })
}

func BenchmarkQueryTimelineIndexed(b *testing.B) {
	p := queryBenchSetup(b)
	es := queryBench.entities
	benchQuery(b, func(i int) { p.TimelineN(es[i%len(es)], 0, 50) })
}

func BenchmarkQueryTimelineScan(b *testing.B) {
	p := queryBenchSetup(b)
	es := queryBench.entities
	benchQuery(b, func(i int) { pageOf(p.scanTimeline(es[i%len(es)]), 0, 50) })
}
