// Streaming: the dynamic-integration scenario of paper §2.4. A live,
// out-of-order feed from a changing set of sources runs through the
// stream engine; stories form and integrate in near real time, a new
// source attaches mid-run, and an existing source detaches — all without
// reprocessing the corpus.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	storypivot "repro"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/experiments"
)

func main() {
	// A synthetic 8-source world with ground truth (the offline stand-in
	// for an EventRegistry feed), delivered 30% out of order — local
	// outlets publish before international ones pick the story up.
	corpus := datagen.Generate(experiments.CorpusScale(6000, 8, 42))
	feed := corpus.Shuffled(0.3, 40, 42)
	truth := experiments.TruthAssignment(corpus)

	p, err := storypivot.New(storypivot.WithAutoAlign(500))
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// Hold the last source back: it "comes online" mid-run.
	lateSource := corpus.Sources[len(corpus.Sources)-1]
	var late []*storypivot.Snippet
	var live []*storypivot.Snippet
	for _, sn := range feed {
		if sn.Source == lateSource {
			late = append(late, sn)
		} else {
			live = append(live, sn)
		}
	}

	fmt.Printf("streaming %d snippets from %d sources (%s joins later)...\n",
		len(live), len(corpus.Sources)-1, lateSource)
	start := time.Now()
	batch := len(live) / 4
	for i := 0; i < len(live); i += batch {
		end := i + batch
		if end > len(live) {
			end = len(live)
		}
		for _, sn := range live[i:end] {
			if err := p.Ingest(sn); err != nil {
				log.Fatalf("ingest: %v", err)
			}
		}
		res := p.Result()
		fmt.Printf("  t+%-8v %5d events -> %3d integrated stories (%d multi-source)\n",
			time.Since(start).Round(time.Millisecond), end,
			len(res.Integrated()), len(res.MultiSource()))
	}

	fmt.Printf("\n%s comes online with %d snippets (paper §2.1: identify first, then align)\n",
		lateSource, len(late))
	for _, sn := range late {
		if err := p.Ingest(sn); err != nil {
			log.Fatalf("ingest late source: %v", err)
		}
	}
	res := p.Result()
	f1 := eval.Pairwise(eval.FromIntegrated(res.Integrated()), truth).F1
	fmt.Printf("after join: %d integrated stories, F1 vs ground truth = %.3f\n",
		len(res.Integrated()), f1)

	// Detach a source: its stories leave the result set.
	gone := corpus.Sources[0]
	p.RemoveSource(gone)
	res = p.Result()
	fmt.Printf("after removing %s: %d integrated stories remain\n", gone, len(res.Integrated()))

	// The per-event cost stayed flat: that is the temporal window at work.
	total := time.Since(start)
	fmt.Printf("\nprocessed %d events in %v (%.0f events/s)\n",
		int(p.Engine().Ingested()), total.Round(time.Millisecond),
		float64(p.Engine().Ingested())/total.Seconds())
}
