// Newsroom: the "expert scientist" use case (paper §3). A political
// analyst contrasts how sources with different perspectives cover the
// same story — source bias within a source, completeness across sources —
// and watches story refinement correct an identification mistake with
// cross-source evidence (Figure 1d).
//
//	go run ./examples/newsroom
package main

import (
	"fmt"
	"log"
	"time"

	storypivot "repro"
)

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

func main() {
	// Three sources with distinct editorial perspectives on the same
	// events: a western broadsheet, a financial daily, and a regional
	// outlet that publishes earlier and with local detail.
	p, err := storypivot.New(
		storypivot.WithRefinement(true),
		storypivot.WithAlignSlack(10*24*time.Hour),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	docs := []*storypivot.Document{
		// Regional outlet: first, local detail.
		{Source: "kyiv-post", URL: "http://kyivpost.example/a1", Published: day(17),
			Title: "Plane Crashes Near Donetsk",
			Body: "Residents reported a passenger plane crashing near Donetsk this afternoon. " +
				"Debris fell over several villages held by separatists."},
		{Source: "kyiv-post", URL: "http://kyivpost.example/a2", Published: day(18),
			Title: "Access to Crash Site Blocked",
			Body: "Investigators trying to reach the crash site near Donetsk were turned back by " +
				"armed separatists, officials in Ukraine said."},
		// Broadsheet: a day later, geopolitical framing.
		{Source: "broadsheet", URL: "http://broadsheet.example/b1", Published: day(18),
			Title: "Malaysia Airlines Jet Shot Down over Ukraine",
			Body: "A Malaysia Airlines jet was shot down over eastern Ukraine, western officials said, " +
				"pointing to a missile fired from separatist territory near Donetsk."},
		{Source: "broadsheet", URL: "http://broadsheet.example/b2", Published: day(20),
			Title: "United Nations Demands Full Investigation",
			Body: "The United Nations demanded unfettered access to the crash site as evidence mounted " +
				"that the plane was destroyed by a missile."},
		// Financial daily: the market angle (enriching coverage).
		{Source: "fin-daily", URL: "http://findaily.example/c1", Published: day(19),
			Title: "Insurers Brace for Aviation Losses",
			Body: "Insurers braced for losses after the Malaysia Airlines crash over Ukraine, with " +
				"aviation war-risk premiums set to rise."},
		{Source: "fin-daily", URL: "http://findaily.example/c2", Published: day(30),
			Title: "Sanctions Hit Russian Markets",
			Body: "Russian markets slid after the European Union announced sanctions over the conflict " +
				"in Ukraine, citing the downing of the jet."},
	}
	for _, d := range docs {
		if _, err := p.AddDocument(d); err != nil {
			log.Fatalf("adding %s: %v", d.URL, err)
		}
	}

	res := p.Result()
	fmt.Printf("%d integrated stories, %d spanning multiple sources\n\n",
		len(res.Integrated()), len(res.MultiSource()))

	for _, is := range res.MultiSource() {
		fmt.Printf("== %s ==\n", is)

		fmt.Println("\n  source perspectives (who covered what, with which vocabulary):")
		for src, pv := range storypivot.Perspectives(is) {
			fmt.Printf("    %-11s %d snippets  top terms: %s\n", src, pv.Snippets, pv)
		}

		fmt.Println("\n  aligning vs enriching coverage (paper §2.3):")
		for _, sn := range is.Snippets() {
			fmt.Printf("    [%-9s] %s %s | %s\n",
				is.Roles[sn.ID], sn.Timestamp.Format("01-02"), sn.Source, trim(sn.Text, 60))
		}
		fmt.Println()
	}

	fmt.Println("-- within-source view: the regional outlet's own stories --")
	for _, st := range p.Stories("kyiv-post") {
		fmt.Printf("  %s\n", st)
	}
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
