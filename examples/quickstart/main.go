// Quickstart: feed a handful of news documents from two newspapers into
// StoryPivot and watch story identification group them per source and
// story alignment integrate them across sources — the paper's running
// MH17 example.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	storypivot "repro"
)

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

func main() {
	p, err := storypivot.New(
		storypivot.WithRefinement(true),
		storypivot.WithKnowledgeBase(storypivot.SeedKnowledgeBase()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	docs := []*storypivot.Document{
		{
			Source: "nyt", URL: "http://nytimes.com/doc1.html", Published: day(17),
			Title: "Jetliner Explodes over Ukraine",
			Body: "A Malaysia Airlines Boeing 777 with 298 people aboard exploded and crashed " +
				"over Ukraine after being shot down near Donetsk.\n\nThe plane crashed over Ukrainian " +
				"territory controlled by pro-Russia separatists and officials believe a missile shot it down.",
		},
		{
			Source: "nyt", URL: "http://nytimes.com/doc2.html", Published: day(18),
			Title: "Evidence of Russian Links to Jet's Downing",
			Body: "Officials leading the criminal investigation into the crash over Ukraine said " +
				"the plane was shot down by a missile.\n\nUkraine asked the United Nations civil " +
				"aviation authority to join the investigation of the crash.",
		},
		{
			Source: "wsj", URL: "http://online.wsj.com/doc3.html", Published: day(17),
			Title: "Passenger Jet Shot Down over Ukraine",
			Body: "The United States government concluded that the passenger plane that crashed " +
				"over Ukraine was shot down by a surface-to-air missile.",
		},
		{
			Source: "wsj", URL: "http://online.wsj.com/doc4.html", Published: day(18),
			Title: "Google Battles Yelp",
			Body: "Google rival Yelp says the search giant is promoting its own content at the expense " +
				"of users, as Google battles antitrust scrutiny.",
		},
	}
	for _, d := range docs {
		snippets, err := p.AddDocument(d)
		if err != nil {
			log.Fatalf("adding %s: %v", d.URL, err)
		}
		fmt.Printf("extracted %d snippets from %s\n", len(snippets), d.URL)
	}

	fmt.Println("\n-- stories per source (story identification, Figure 5) --")
	for _, src := range p.Sources() {
		for _, st := range p.Stories(src) {
			fmt.Printf("  %s\n", st)
			for _, e := range st.TopEntities(4) {
				fmt.Printf("    {%s,%d}", e.Entity, e.Count)
			}
			fmt.Println()
		}
	}

	fmt.Println("\n-- integrated stories (story alignment, Figures 4/6) --")
	for _, is := range p.IntegratedStories() {
		fmt.Printf("  %s\n", is)
		for _, sn := range is.Snippets() {
			fmt.Printf("    [%s] %s (%s)\n", is.Roles[sn.ID], sn, firstWords(sn.Text, 6))
		}
	}

	fmt.Println("\n-- query: timeline of UKR --")
	for _, sn := range p.Timeline("UKR") {
		fmt.Printf("  %s  %s: %s\n", sn.Timestamp.Format("2006-01-02"), sn.Source, firstWords(sn.Text, 8))
	}

	// Knowledge-base context (paper §3: DBpedia-style enrichment).
	fmt.Println("\n-- knowledge-base context of the aligned story --")
	if multi := p.Result().MultiSource(); len(multi) > 0 {
		ctx := p.Context(multi[0])
		for _, rec := range ctx.Known {
			fmt.Printf("  %-8s %-12s %s\n", rec.ID, "("+rec.Type+")", rec.Abstract)
		}
		for _, link := range ctx.Links {
			fmt.Printf("  relation: %s --%s--> %s\n", link.Subject, link.Predicate, link.Object)
		}
	}
}

func firstWords(s string, n int) string {
	out, count := "", 0
	for i, r := range s {
		if r == ' ' {
			count++
			if count == n {
				return s[:i] + "..."
			}
		}
	}
	if out == "" {
		return s
	}
	return out
}
