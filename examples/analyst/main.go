// Analyst: large-scale exploration (paper §4.2.2). A generated
// GDELT-flavoured corpus is persisted in the embedded event store,
// processed by the full pipeline, and explored through entity queries,
// free-text search, and timelines — then the process is killed and a new
// pipeline recovers everything from the store.
//
//	go run ./examples/analyst
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	storypivot "repro"
	"repro/internal/datagen"
	"repro/internal/experiments"
)

func main() {
	dir, err := os.MkdirTemp("", "storypivot-analyst-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	corpus := datagen.Generate(experiments.CorpusScale(10000, 12, 7))
	fmt.Printf("corpus: %d snippets, %d sources, %d ground-truth stories\n",
		len(corpus.Snippets), len(corpus.Sources), len(corpus.Stories))

	// Phase 1: ingest with persistence.
	p, err := storypivot.New(storypivot.WithStorage(dir))
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	accepted := p.IngestAll(corpus.Snippets)
	res := p.Result()
	fmt.Printf("ingested %d snippets in %v -> %d integrated stories\n",
		accepted, time.Since(start).Round(time.Millisecond), len(res.Integrated()))

	// Pick the most-covered entity for the queries below.
	counts := map[storypivot.Entity]int{}
	for _, sn := range corpus.Snippets {
		for _, e := range sn.Entities {
			counts[e]++
		}
	}
	var hot storypivot.Entity
	for e, c := range counts {
		if hot == "" || c > counts[hot] {
			hot = e
		}
	}

	fmt.Printf("\n-- stories mentioning the most-covered entity %q --\n", hot)
	for i, is := range p.StoriesByEntity(hot) {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s\n", is)
	}

	fmt.Printf("\n-- timeline of %q (first 8 events) --\n", hot)
	for i, sn := range p.Timeline(hot) {
		if i >= 8 {
			break
		}
		fmt.Printf("  %s %s %v\n", sn.Timestamp.Format("2006-01-02"), sn.Source, sn.Entities)
	}

	// Free-text search over story vocabularies.
	probe := corpus.Snippets[len(corpus.Snippets)/2].Terms[0].Token
	fmt.Printf("\n-- free-text search for %q --\n", probe)
	for i, is := range p.Search(probe) {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s\n", is)
	}

	// Source profiling: which sources report first, which cover broadly,
	// which publish exclusives (the expert-scientist view of paper §3).
	fmt.Println("\n-- source profiles (timeliness / coverage / exclusivity) --")
	for i, pr := range p.RankedSources() {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-6s coverage=%.2f meanLag=%-8v firsts=%-4d exclusivity=%.2f\n",
			pr.Source, pr.Coverage, pr.MeanLag.Round(time.Hour), pr.FirstReports, pr.Exclusivity)
	}

	// Phase 2: simulate a restart; everything is recovered from the
	// crash-safe event store.
	if err := p.Close(); err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	p2, err := storypivot.New(storypivot.WithStorage(dir))
	if err != nil {
		log.Fatal(err)
	}
	defer p2.Close()
	res2 := p2.Result()
	fmt.Printf("\nrestart: recovered %d snippets -> %d integrated stories in %v\n",
		int(p2.Engine().Ingested()), len(res2.Integrated()), time.Since(start).Round(time.Millisecond))
	if len(res2.Integrated()) != len(res.Integrated()) {
		fmt.Println("warning: story count changed across restart")
	}
}
