package storypivot

import (
	"time"

	"repro/internal/trend"
)

// Trend analysis (paper §1's trend-detection application): burst
// detection over story activity and ranking of currently hot stories.

type (
	// Burst is one detected activity burst of a story.
	Burst = trend.Burst
	// Trend is one trending story with its burstiness score.
	Trend = trend.Trend
	// TrendConfig parameterises burst detection.
	TrendConfig = trend.Config
)

// DefaultTrendConfig returns the standard burst-detection settings.
func DefaultTrendConfig() TrendConfig { return trend.DefaultConfig() }

// Bursts detects activity bursts of one integrated story.
func (p *Pipeline) Bursts(is *IntegratedStory, cfg TrendConfig) []Burst {
	return trend.StoryBursts(is, cfg)
}

// Trending ranks the current integrated stories by their activity inside
// [now−window, now] relative to their own history — the "what is hot
// right now" view for the casual-reader use case (paper §3).
func (p *Pipeline) Trending(now time.Time, window time.Duration) []Trend {
	return trend.Trending(p.Result().Integrated(), now, window, trend.DefaultConfig())
}
