package storypivot

import (
	"io"

	"repro/internal/gdelt"
)

// GDELT ingestion: the paper's large-scale experiments run on GDELT
// event-table exports; this adapter turns those tab-separated rows into
// snippets (actors → entities, CAMEO codes → description terms, source
// URL host → source).

// GDELTStats reports what a GDELT read skipped.
type GDELTStats struct {
	Accepted  int
	Malformed int // rows that failed to parse
	Skipped   int // rows parsed but yielding empty snippets
}

// ReadGDELT parses a GDELT 1.0 event export into snippets.
func ReadGDELT(r io.Reader) ([]*Snippet, GDELTStats, error) {
	sns, rd, err := gdelt.ReadAll(r)
	return sns, GDELTStats{Accepted: len(sns), Malformed: rd.Malformed, Skipped: rd.Skipped}, err
}

// IngestGDELT streams a GDELT export straight into the pipeline,
// returning ingestion statistics. Rows that fail to parse or validate
// are skipped, not fatal — GDELT feeds are noisy by nature.
func (p *Pipeline) IngestGDELT(r io.Reader) (GDELTStats, error) {
	gr := gdelt.NewReader(r)
	stats := GDELTStats{}
	for {
		sn, err := gr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			stats.Malformed = gr.Malformed
			stats.Skipped = gr.Skipped
			return stats, err
		}
		if err := p.Ingest(sn); err != nil {
			stats.Skipped++
			continue
		}
		stats.Accepted++
	}
	stats.Malformed = gr.Malformed
	stats.Skipped += gr.Skipped
	return stats, nil
}
