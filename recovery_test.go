package storypivot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// TestRecoveryWarningsCleanOpen: a pipeline over a healthy store reports
// nothing.
func TestRecoveryWarningsCleanOpen(t *testing.T) {
	dir := t.TempDir()
	p, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(datagen.Generate(experiments.CorpusScale(200, 2, 5)).Snippets)
	p.Close()

	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.RecoveryWarnings(); len(got) != 0 {
		t.Fatalf("clean reopen produced warnings: %v", got)
	}
}

// TestRecoveryWarningsCorruptCheckpoint: a checkpoint that exists but
// cannot be honoured must (a) fall back to replay with identical results,
// (b) surface a warning, and (c) count the fallback in the obs registry.
func TestRecoveryWarningsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	corpus := datagen.Generate(experiments.CorpusScale(400, 3, 7))
	p, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(corpus.Snippets)
	want := len(p.Result().Integrated())
	p.Close()

	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	failsBefore := obs.GetCounter("storypivot_stream_checkpoint_restore_failures_total", "").Value()

	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatalf("corrupt checkpoint broke New: %v", err)
	}
	defer p2.Close()
	if got := len(p2.Result().Integrated()); got != want {
		t.Fatalf("replay fallback produced %d stories, want %d", got, want)
	}
	warns := p2.RecoveryWarnings()
	if len(warns) != 1 || !strings.Contains(warns[0], "checkpoint restore failed") {
		t.Fatalf("warnings = %v, want one checkpoint-restore finding", warns)
	}
	if got := obs.GetCounter("storypivot_stream_checkpoint_restore_failures_total", "").Value() - failsBefore; got != 1 {
		t.Fatalf("restore-failure counter advanced by %d, want 1", got)
	}
}

// TestRecoveryWarningsMissingCheckpoint: never having written a
// checkpoint is the normal first-open state, not a failure — replay must
// happen without a warning and without counting a restore failure.
func TestRecoveryWarningsMissingCheckpoint(t *testing.T) {
	dir := t.TempDir()
	p, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(datagen.Generate(experiments.CorpusScale(150, 2, 3)).Snippets)
	// Bypass Close (which writes a checkpoint): just close the store via
	// a fresh open over the same dir after dropping the handle.
	if err := p.store.Close(); err != nil {
		t.Fatal(err)
	}
	failsBefore := obs.GetCounter("storypivot_stream_checkpoint_restore_failures_total", "").Value()

	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.RecoveryWarnings(); len(got) != 0 {
		t.Fatalf("missing checkpoint produced warnings: %v", got)
	}
	if got := obs.GetCounter("storypivot_stream_checkpoint_restore_failures_total", "").Value(); got != failsBefore {
		t.Fatal("missing checkpoint counted as a restore failure")
	}
}

// TestRecoveryWarningsTruncatedSegment: a torn store tail surfaces the
// storage layer's finding through Pipeline.RecoveryWarnings, and the
// pipeline keeps working over the intact prefix.
func TestRecoveryWarningsTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	corpus := datagen.Generate(experiments.CorpusScale(300, 2, 11))
	p, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(corpus.Snippets)
	p.Close()

	// Tear the final record of the newest segment mid-frame, and remove
	// the checkpoint so the reopen replays the (now shorter) log rather
	// than restoring counts that no longer match.
	os.Remove(filepath.Join(dir, "checkpoint.json"))
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatalf("torn tail broke New: %v", err)
	}
	defer p2.Close()
	warns := p2.RecoveryWarnings()
	if len(warns) == 0 {
		t.Fatal("torn segment tail produced no warnings")
	}
	found := false
	for _, w := range warns {
		if strings.Contains(w, "torn-tail") {
			found = true
		}
	}
	if !found {
		t.Fatalf("warnings = %v, want a torn-tail finding", warns)
	}
	// One snippet was lost to the tear; the survivors must still be
	// queryable and ingestion must still work.
	if got, want := p2.Engine().Ingested(), uint64(len(corpus.Snippets)-1); got != want {
		t.Fatalf("Ingested = %d, want %d", got, want)
	}
	// The caller's view is a copy.
	warns[0] = "mutated"
	if got := p2.RecoveryWarnings(); got[0] == "mutated" {
		t.Fatal("RecoveryWarnings aliases internal state")
	}
}
