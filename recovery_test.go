package storypivot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/event"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/storage"
)

// TestRecoveryWarningsCleanOpen: a pipeline over a healthy store reports
// nothing.
func TestRecoveryWarningsCleanOpen(t *testing.T) {
	dir := t.TempDir()
	p, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(datagen.Generate(experiments.CorpusScale(200, 2, 5)).Snippets)
	p.Close()

	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.RecoveryWarnings(); len(got) != 0 {
		t.Fatalf("clean reopen produced warnings: %v", got)
	}
}

// TestRecoveryWarningsCorruptCheckpoint: a checkpoint that exists but
// cannot be honoured must (a) fall back to replay with identical results,
// (b) surface a warning, and (c) count the fallback in the obs registry.
func TestRecoveryWarningsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	corpus := datagen.Generate(experiments.CorpusScale(400, 3, 7))
	p, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(corpus.Snippets)
	want := len(p.Result().Integrated())
	p.Close()

	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	failsBefore := obs.GetCounter("storypivot_stream_checkpoint_restore_failures_total", "").Value()

	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatalf("corrupt checkpoint broke New: %v", err)
	}
	defer p2.Close()
	if got := len(p2.Result().Integrated()); got != want {
		t.Fatalf("replay fallback produced %d stories, want %d", got, want)
	}
	warns := p2.RecoveryWarnings()
	if len(warns) != 1 || !strings.Contains(warns[0], "checkpoint restore failed") {
		t.Fatalf("warnings = %v, want one checkpoint-restore finding", warns)
	}
	if got := obs.GetCounter("storypivot_stream_checkpoint_restore_failures_total", "").Value() - failsBefore; got != 1 {
		t.Fatalf("restore-failure counter advanced by %d, want 1", got)
	}
}

// TestRecoveryWarningsMissingCheckpoint: never having written a
// checkpoint is the normal first-open state, not a failure — replay must
// happen without a warning and without counting a restore failure.
func TestRecoveryWarningsMissingCheckpoint(t *testing.T) {
	dir := t.TempDir()
	p, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(datagen.Generate(experiments.CorpusScale(150, 2, 3)).Snippets)
	// Bypass Close (which writes a checkpoint): just close the store via
	// a fresh open over the same dir after dropping the handle.
	if err := p.store.Close(); err != nil {
		t.Fatal(err)
	}
	failsBefore := obs.GetCounter("storypivot_stream_checkpoint_restore_failures_total", "").Value()

	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.RecoveryWarnings(); len(got) != 0 {
		t.Fatalf("missing checkpoint produced warnings: %v", got)
	}
	if got := obs.GetCounter("storypivot_stream_checkpoint_restore_failures_total", "").Value(); got != failsBefore {
		t.Fatal("missing checkpoint counted as a restore failure")
	}
}

// TestRecoveryWarningsTruncatedSegment: a torn store tail surfaces the
// storage layer's finding through Pipeline.RecoveryWarnings, and the
// pipeline keeps working over the intact prefix.
func TestRecoveryWarningsTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	corpus := datagen.Generate(experiments.CorpusScale(300, 2, 11))
	p, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(corpus.Snippets)
	p.Close()

	// Tear the final record of the newest segment mid-frame, and remove
	// the checkpoint so the reopen replays the (now shorter) log rather
	// than restoring counts that no longer match.
	os.Remove(filepath.Join(dir, "checkpoint.json"))
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatalf("torn tail broke New: %v", err)
	}
	defer p2.Close()
	warns := p2.RecoveryWarnings()
	if len(warns) == 0 {
		t.Fatal("torn segment tail produced no warnings")
	}
	found := false
	for _, w := range warns {
		if strings.Contains(w, "torn-tail") {
			found = true
		}
	}
	if !found {
		t.Fatalf("warnings = %v, want a torn-tail finding", warns)
	}
	// One snippet was lost to the tear; the survivors must still be
	// queryable and ingestion must still work.
	if got, want := p2.Engine().Ingested(), uint64(len(corpus.Snippets)-1); got != want {
		t.Fatalf("Ingested = %d, want %d", got, want)
	}
	// The caller's view is a copy.
	warns[0] = "mutated"
	if got := p2.RecoveryWarnings(); got[0] == "mutated" {
		t.Fatal("RecoveryWarnings aliases internal state")
	}
}

// retireRecoveryOpts opens a retirement-enabled pipeline over dir with
// the exact-mode settings the differential uses (the archive defaults to
// <dir>/archive, so it persists across reopens).
func retireRecoveryOpts(dir string) []Option {
	return append(retireDiffOpts(),
		WithStorage(dir),
		WithRetireWindow(21*24*time.Hour),
		WithRetireGrace(time.Hour))
}

// TestRecoveryKillDuringRetire: the process dies after retirements that
// no checkpoint ever covered (the snippet log is durable, the
// checkpoint predates both the newest snippets and the newest archive
// records). The reopen must detect the stale checkpoint, fall back to
// replay with the archive reset, rebuild the SAME retirement state, and
// still honour reactivation under the original story ID.
func TestRecoveryKillDuringRetire(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
	p, err := New(retireRecoveryOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(retireSnip(1, "alpha", t0, "kepler", "telescope")); err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(retireSnip(2, "alpha", t0.Add(time.Hour), "kepler")); err != nil {
		t.Fatal(err)
	}
	target := p.StoryOf("alpha", 1)

	// Retire the kepler story, then checkpoint: the checkpoint covers it.
	advanceWatermark(t, p, "alpha", 100, t0.Add(48*time.Hour), t0.Add(60*24*time.Hour), 48*time.Hour)
	cpArchived := p.Retire().Snapshot().Archived
	if cpArchived == 0 {
		t.Fatal("setup: nothing retired before the checkpoint")
	}
	if err := p.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// Post-checkpoint work the kill will lose from the checkpoint's view:
	// more snippets, more retirements.
	advanceWatermark(t, p, "alpha", 500, t0.Add(62*24*time.Hour), t0.Add(120*24*time.Hour), 48*time.Hour)
	if got := p.Retire().Snapshot().Archived; got <= cpArchived {
		t.Fatalf("no post-checkpoint retirement (archived %d at checkpoint, %d now)", cpArchived, got)
	}
	ingested := p.Engine().Ingested()
	// Kill: flush the snippet log, skip Close (no fresh checkpoint, the
	// archive handle just drops).
	if err := p.store.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := New(retireRecoveryOpts(dir)...)
	if err != nil {
		t.Fatalf("reopen after kill-during-retire broke New: %v", err)
	}
	defer p2.Close()
	if got := p2.Engine().Ingested(); got != ingested {
		t.Fatalf("replay ingested %d snippets, want %d", got, ingested)
	}
	// Replay re-ingests without settling; the first alignment publish
	// runs the retirement walk over everything that went cold.
	p2.Result()
	view := p2.Retire().Snapshot()
	if view.Archived == 0 {
		t.Fatalf("replay rebuilt no retirement state: %+v", view)
	}
	// The kepler story is archived again, not resident.
	if got, _ := p2.StoriesByEntityN("kepler", 0, -1); len(got) != 0 {
		t.Fatalf("retired story resident after recovery: %v", storyIDs(got))
	}
	// Reactivation across the restart keeps the original identity: story
	// IDs are replay-deterministic, so the pre-kill ID must come back.
	if err := p2.Ingest(retireSnip(9000, "alpha", t0.Add(72*time.Hour), "kepler")); err != nil {
		t.Fatal(err)
	}
	if got := p2.StoryOf("alpha", 9000); got != target {
		t.Fatalf("reactivated story %d after recovery, want original %d", got, target)
	}
	if p2.Retire().Snapshot().Reactivated == 0 {
		t.Fatal("reactivation after recovery not counted")
	}
}

// TestRecoveryArchiveReconcile: an archive record the checkpoint never
// heard of (a retirement that raced the crash, or a torn group whose
// commit was lost) must be dropped on restore — the story it names was
// rebuilt resident from its snippets, and serving the stale record too
// would fork its identity.
func TestRecoveryArchiveReconcile(t *testing.T) {
	dir := t.TempDir()
	t0 := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
	p, err := New(retireRecoveryOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(retireSnip(1, "alpha", t0, "kepler", "telescope")); err != nil {
		t.Fatal(err)
	}
	advanceWatermark(t, p, "alpha", 100, t0.Add(48*time.Hour), t0.Add(60*24*time.Hour), 48*time.Hour)
	wantArchived := p.Retire().Snapshot().Archived
	if wantArchived == 0 {
		t.Fatal("setup: nothing retired")
	}
	if err := p.Close(); err != nil { // clean close: checkpoint covers the archive
		t.Fatal(err)
	}

	// Simulate the lost raced retirement: append a record for a story ID
	// the checkpoint still considers resident.
	arch, _, err := storage.OpenArchive(filepath.Join(dir, "archive"))
	if err != nil {
		t.Fatal(err)
	}
	ghost := retireSnip(7777, "alpha", t0.Add(30*24*time.Hour), "ghost")
	st := event.RestoreStory(999999, "alpha", []*Snippet{ghost}, nil, nil,
		ghost.Timestamp, ghost.Timestamp, 1)
	if _, _, err := arch.AppendGroup(999999, t0.Add(60*24*time.Hour), []*event.Story{st}); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	p2, err := New(retireRecoveryOpts(dir)...)
	if err != nil {
		t.Fatalf("reopen with stale archive record broke New: %v", err)
	}
	defer p2.Close()
	if len(p2.RecoveryWarnings()) != 0 {
		t.Fatalf("covered checkpoint produced warnings: %v", p2.RecoveryWarnings())
	}
	view := p2.Retire().Snapshot()
	if view.Archived != wantArchived {
		t.Fatalf("reconcile kept %d archived stories, want %d (stale record must drop)",
			view.Archived, wantArchived)
	}
	// The ghost record must not hijack matching evidence into a dead ID.
	if err := p2.Ingest(retireSnip(9001, "alpha", t0.Add(31*24*time.Hour), "ghost")); err != nil {
		t.Fatal(err)
	}
	if got := p2.StoryOf("alpha", 9001); got == 999999 {
		t.Fatal("stale archive record reactivated after reconcile")
	}
}
