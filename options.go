package storypivot

import (
	"time"

	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/retire"
	"repro/internal/storage"
	"repro/internal/stream"
)

// config collects everything New needs; Options mutate it.
type config struct {
	stream      stream.Options
	gazetteer   *extract.Gazetteer
	kb          *kb.KB
	bigrams     bool
	storageDir  string
	storageOpt  storage.Options
	scanQueries bool
	retire      retire.Config
}

// Option configures a Pipeline.
type Option func(*config)

// WithMode selects the identification execution mode (Figure 2):
// ModeTemporal (default) or ModeComplete.
func WithMode(m Mode) Option {
	return func(c *config) { c.stream.Identify.Mode = m }
}

// WithWindow sets ω, the sliding-window half-width for temporal
// identification.
func WithWindow(w time.Duration) Option {
	return func(c *config) { c.stream.Identify.Window = w }
}

// WithAttachThreshold sets the minimum similarity for a snippet to join an
// existing story.
func WithAttachThreshold(t float64) Option {
	return func(c *config) { c.stream.Identify.AttachThreshold = t }
}

// WithRepairEvery sets how often (in processed snippets) the split/merge
// repair pass runs; 0 disables incremental repair.
func WithRepairEvery(n int) Option {
	return func(c *config) { c.stream.Identify.RepairEvery = n }
}

// WithSketchIndex enables MinHash/LSH candidate retrieval in story
// identification (paper §2.4 sketches).
func WithSketchIndex(on bool) Option {
	return func(c *config) { c.stream.Identify.UseSketchIndex = on }
}

// WithSketchFilter enables the MinHash pre-filter in story alignment.
func WithSketchFilter(on bool) Option {
	return func(c *config) { c.stream.Align.UseSketchFilter = on }
}

// WithAlignThreshold sets the minimum story-level similarity for
// cross-source alignment.
func WithAlignThreshold(t float64) Option {
	return func(c *config) { c.stream.Align.MatchThreshold = t }
}

// WithAlignSlack sets the temporal tolerance of the alignment candidate
// filter.
func WithAlignSlack(d time.Duration) Option {
	return func(c *config) { c.stream.Align.Slack = d }
}

// WithAlignEntityIDF toggles inverse-mention-frequency entity weighting
// in the alignment phase (on by default). The IDF statistics aggregate
// over every story under alignment, which makes match scores depend on
// the whole corpus trajectory; turning it off pins alignment to uniform
// entity weights, a pure function of the two stories compared. The
// cluster's byte-identity differential proofs run with it off, because a
// worker shard only observes its own partition's statistics — see
// DESIGN.md §3.12 for the shard-local-IDF discussion.
func WithAlignEntityIDF(on bool) Option {
	return func(c *config) { c.stream.Align.UseEntityIDF = on }
}

// WithRefinement runs story refinement (paper Figure 1d) after every
// alignment, propagating cross-source corrections back into the
// per-source story sets.
func WithRefinement(on bool) Option {
	return func(c *config) { c.stream.RefineOnAlign = on }
}

// WithAutoAlign re-aligns automatically every n ingested snippets
// (0 = align lazily on demand, the default).
func WithAutoAlign(n int) Option {
	return func(c *config) { c.stream.AutoAlignEvery = n }
}

// WithGazetteer replaces the entity gazetteer used by document extraction.
func WithGazetteer(g *Gazetteer) Option {
	return func(c *config) { c.gazetteer = g }
}

// WithBigrams additionally emits adjacent-token bigrams as description
// terms during extraction; phrase matches ("shot_down") discriminate
// stories better than their unigrams at the cost of a larger vocabulary.
func WithBigrams(on bool) Option {
	return func(c *config) { c.bigrams = on }
}

// WithStorage persists every ingested snippet to a crash-safe event store
// in dir; on reopening a pipeline over the same directory the snippets are
// replayed through identification so state survives restarts.
func WithStorage(dir string) Option {
	return func(c *config) { c.storageDir = dir }
}

// WithStorageSync selects the store's durability policy (see storage
// docs): 0 = OS-buffered (default), 1 = fsync every append, 2 = batched.
func WithStorageSync(policy int) Option {
	return func(c *config) { c.storageOpt.Sync = storage.SyncPolicy(policy) }
}

// WithTieredStorage switches the event store to the chunked
// hot/warm/cold layout: snippet payloads live in fixed-row chunk files,
// the newest hotChunks sealed chunks stay resident in memory, the next
// warmChunks are mmap'd read-only, and older chunks go cold on disk
// (gzip-compressed when compress is set) with on-demand inflation.
// The engine then holds display-text-stripped snippets and query
// responses hydrate text through the pipeline's SnippetReader, so
// resident memory stops scaling with corpus size while responses stay
// byte-identical. Values ≤ 0 select the defaults (4 hot, 16 warm).
// Requires WithStorage.
func WithTieredStorage(hotChunks, warmChunks int, compress bool) Option {
	return func(c *config) {
		t := ensureTier(c)
		t.HotChunks = hotChunks
		t.WarmChunks = warmChunks
		t.Compress = compress
	}
}

// WithTierChunkRows sets the rows per chunk of the tiered store
// (default 4096); mainly for tests and benchmarks that need tier
// transitions at small corpus sizes. Implies tiered storage.
func WithTierChunkRows(n int) Option {
	return func(c *config) { ensureTier(c).ChunkRows = n }
}

// WithTierColdCache sets how many inflated cold chunks the tiered store
// keeps in its LRU (default 2), and after how many faults a cold chunk
// is promoted back to the warm tier (default 4; negative disables).
// Implies tiered storage.
func WithTierColdCache(chunks, promoteAfter int) Option {
	return func(c *config) {
		t := ensureTier(c)
		t.ColdCache = chunks
		t.PromoteAfter = promoteAfter
	}
}

func ensureTier(c *config) *storage.TierOptions {
	if c.storageOpt.Tier == nil {
		c.storageOpt.Tier = &storage.TierOptions{}
	}
	return c.storageOpt.Tier
}

// WithScanQueries serves Search/StoriesByEntity/Timeline from the
// legacy full-scan implementations instead of the incremental query
// index. The scan path is the correctness oracle: it is what the
// differential tests compare the indexed path against. Production
// serving should leave this off.
func WithScanQueries(on bool) Option {
	return func(c *config) { c.scanQueries = on }
}

// WithRetireWindow enables sliding-window story retirement: a story
// whose newest evidence is more than w of event time behind the stream
// watermark is archived to the cold-story archive and evicted from the
// live engine, bounding steady-state memory under an infinite feed. New
// evidence matching an archived story reactivates it under its original
// ID. For query results over the active window to be unchanged by
// retirement, w must exceed both the alignment slack plus the feed's
// event-time disorder and the identification window. 0 (the default)
// disables retirement.
func WithRetireWindow(w time.Duration) Option {
	return func(c *config) { c.retire.Window = w }
}

// WithRetireDir places the cold-story archive in dir. Defaults to an
// "archive" subdirectory of the WithStorage directory; required when
// retirement is enabled without storage.
func WithRetireDir(dir string) Option {
	return func(c *config) { c.retire.Dir = dir }
}

// WithRetireGrace sets how long a reactivated story is held resident
// before it may retire again (thrash guard). Defaults to a quarter of
// the retirement window.
func WithRetireGrace(d time.Duration) Option {
	return func(c *config) { c.retire.Grace = d }
}

// WithRetireMinResident skips retirement entirely while fewer than n
// stories are resident; small working sets are not worth archiving.
func WithRetireMinResident(n int) Option {
	return func(c *config) { c.retire.MinResident = n }
}

// WithDedup sizes the per-source duplicate-delivery filter (0 disables).
func WithDedup(capacity int) Option {
	return func(c *config) { c.stream.DedupCapacity = capacity }
}

func defaultsConfig() *config {
	return &config{
		stream:    stream.DefaultOptions(),
		gazetteer: extract.DefaultGazetteer(),
	}
}
