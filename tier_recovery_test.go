package storypivot

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

// tierRecoveryOpts opens a tiered pipeline with chunks small enough
// that a few hundred snippets span all three tiers: 8 rows per chunk,
// 2 hot, 2 warm, everything older cold and gzip-compressed.
func tierRecoveryOpts(dir string) []Option {
	return []Option{
		WithStorage(dir),
		WithTieredStorage(2, 2, true),
		WithTierChunkRows(8),
		WithTierColdCache(1, 2),
	}
}

// tierCorpus is a text-bearing synthetic corpus: datagen drives the
// matching signal, the synthetic display text is what the tiers store.
func tierCorpus(size, sources int, seed int64) *datagen.Corpus {
	c := datagen.Generate(experiments.CorpusScale(size, sources, seed))
	for _, sn := range c.Snippets {
		sn.Text = fmt.Sprintf("display text of snippet %d from %s", sn.ID, sn.Source)
		sn.Document = fmt.Sprintf("http://%s/doc%d.html", sn.Source, sn.ID)
	}
	return c
}

// firstColdChunk returns the path of one compressed cold chunk.
func firstColdChunk(t *testing.T, dir string) string {
	t.Helper()
	spz, err := filepath.Glob(filepath.Join(dir, "chunks", "chunk-*.spz"))
	if err != nil || len(spz) == 0 {
		t.Fatalf("no compressed cold chunks to tamper with (%v)", err)
	}
	return spz[0]
}

// inflateSpz gunzips a cold chunk file back to its raw bytes.
func inflateSpz(t *testing.T, path string) []byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// verifyTierPipeline checks the reopened pipeline serves the full
// corpus: every snippet's display text hydrates byte-identically and
// the alignment result is rebuilt.
func verifyTierPipeline(t *testing.T, p *Pipeline, corpus *datagen.Corpus) {
	t.Helper()
	if got, want := p.Engine().Ingested(), uint64(len(corpus.Snippets)); got != want {
		t.Fatalf("Ingested = %d after recovery, want %d", got, want)
	}
	for _, sn := range corpus.Snippets {
		text, doc, ok := p.SnippetText(sn.ID)
		if !ok {
			t.Fatalf("SnippetText(%d) not found after recovery", sn.ID)
		}
		if text != sn.Text || doc != sn.Document {
			t.Fatalf("SnippetText(%d) = (%q, %q), want (%q, %q)", sn.ID, text, doc, sn.Text, sn.Document)
		}
	}
	if len(p.Result().Integrated()) == 0 {
		t.Fatal("no integrated stories after recovery")
	}
}

// TestRecoveryTieredKillDuringDemotion: the process dies in the
// demotion window after the compressed copy of a chunk was published
// but before the raw file was unlinked — both copies are on disk, and
// the checkpoint's chunk manifest (v3) predates the surviving layout.
// The reopen must keep exactly one copy, reconcile the manifest without
// failing restore, and serve every snippet's text byte-identically.
func TestRecoveryTieredKillDuringDemotion(t *testing.T) {
	dir := t.TempDir()
	corpus := tierCorpus(200, 3, 17)
	p, err := New(tierRecoveryOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(corpus.Snippets)
	p.Result()
	if st, ok := p.TierStats(); !ok || st.Cold == 0 {
		t.Fatalf("setup grew no cold chunks: %+v", st)
	}
	if err := p.Close(); err != nil { // clean close: checkpoint v3 manifest
		t.Fatal(err)
	}

	// Resurrect the raw twin of a compressed chunk, as if the crash hit
	// between rename(.spz) and unlink(.log), plus a torn temp file from
	// the same window.
	spz := firstColdChunk(t, dir)
	raw := inflateSpz(t, spz)
	rawPath := strings.TrimSuffix(spz, ".spz") + ".log"
	if err := os.WriteFile(rawPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "chunks", "chunk-99999999.spz.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	p2, err := New(tierRecoveryOpts(dir)...)
	if err != nil {
		t.Fatalf("reopen after kill-during-demotion broke New: %v", err)
	}
	defer p2.Close()
	_, rawErr := os.Stat(rawPath)
	_, spzErr := os.Stat(spz)
	if rawErr == nil && spzErr == nil {
		t.Fatal("both raw and compressed copies survived recovery")
	}
	if rawErr != nil && spzErr != nil {
		t.Fatal("chunk lost entirely during recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, "chunks", "chunk-99999999.spz.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale temp file not swept at open")
	}
	verifyTierPipeline(t, p2, corpus)
}

// TestRecoveryTieredKillDuringPromotion: the mirror crash during
// promotion — the raw file was being rematerialised from the
// compressed copy and is torn, while the compressed copy is intact,
// and the kill also lost the checkpoint (no clean Close). The reopen
// must replay from the chunks alone, drop the torn raw file in favour
// of the compressed copy, and lose nothing.
func TestRecoveryTieredKillDuringPromotion(t *testing.T) {
	dir := t.TempDir()
	corpus := tierCorpus(200, 3, 29)
	p, err := New(tierRecoveryOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(corpus.Snippets)
	p.Result()
	if st, ok := p.TierStats(); !ok || st.Cold == 0 {
		t.Fatalf("setup grew no cold chunks: %+v", st)
	}
	// Kill: flush and drop the store handle without Close, so no fresh
	// checkpoint exists and the reopen takes the replay path.
	if err := p.store.Close(); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "checkpoint.json"))

	spz := firstColdChunk(t, dir)
	raw := inflateSpz(t, spz)
	rawPath := strings.TrimSuffix(spz, ".spz") + ".log"
	if err := os.WriteFile(rawPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	p2, err := New(tierRecoveryOpts(dir)...)
	if err != nil {
		t.Fatalf("reopen after kill-during-promotion broke New: %v", err)
	}
	defer p2.Close()
	if _, err := os.Stat(rawPath); !os.IsNotExist(err) {
		t.Fatal("torn raw copy not removed in favour of compressed copy")
	}
	verifyTierPipeline(t, p2, corpus)
}

// TestTieredIngestQueryRace hammers the tiered pipeline under -race:
// per-source ingest goroutines push text-bearing snippets (forcing
// demotions as chunks seal) while a reader settles alignment, queries,
// and hydrates snippet text (forcing cold faults and promotions).
func TestTieredIngestQueryRace(t *testing.T) {
	corpus := tierCorpus(400, 4, 41)
	p, err := New(append(tierRecoveryOpts(t.TempDir()), WithAutoAlign(25))...)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	bySource := map[SourceID][]*Snippet{}
	for _, sn := range corpus.Snippets {
		bySource[sn.Source] = append(bySource[sn.Source], sn)
	}
	var ingest sync.WaitGroup
	for _, sns := range bySource {
		ingest.Add(1)
		go func(sns []*Snippet) {
			defer ingest.Done()
			for _, sn := range sns {
				if err := p.Ingest(sn); err != nil {
					t.Error(err)
					return
				}
			}
		}(sns)
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-done:
				return
			default:
			}
			p.Result()
			p.SearchN("about", 0, 10)
			// Walk the ID space so reads fault cold chunks while the
			// writers are still demoting.
			id := corpus.Snippets[int(i)%len(corpus.Snippets)].ID
			if text, _, ok := p.SnippetText(id); ok && text == "" {
				t.Errorf("SnippetText(%d) hydrated empty text", id)
				return
			}
		}
	}()
	ingest.Wait()
	close(done)
	readers.Wait()
	verifyTierPipeline(t, p, corpus)
	if st, ok := p.TierStats(); !ok || st.Cold == 0 {
		t.Fatalf("race run grew no cold chunks: %+v", st)
	} else {
		t.Logf("tiers after race: %+v", st)
	}
}

// TestRecoveryTieredManifestDrift: a checkpoint whose chunk manifest
// no longer matches the disk (a chunk vanished after the checkpoint
// was written) must not fail the restore — the chunks are the source
// of truth — but the divergence must surface as a recovery warning.
func TestRecoveryTieredManifestDrift(t *testing.T) {
	dir := t.TempDir()
	corpus := tierCorpus(120, 2, 53)
	p, err := New(tierRecoveryOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(corpus.Snippets)
	p.Result()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Lose a sealed chunk the checkpoint still records.
	spz := firstColdChunk(t, dir)
	if err := os.Remove(spz); err != nil {
		t.Fatal(err)
	}

	p2, err := New(tierRecoveryOpts(dir)...)
	if err != nil {
		t.Fatalf("manifest drift broke New: %v", err)
	}
	defer p2.Close()
	found := false
	for _, w := range p2.RecoveryWarnings() {
		if strings.Contains(w, "tier reconcile") {
			found = true
		}
	}
	if !found {
		t.Fatalf("warnings = %v, want a tier-reconcile finding", p2.RecoveryWarnings())
	}
}
