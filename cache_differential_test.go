package storypivot

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/qcache"
	"repro/internal/text"
)

// TestCacheCoherenceDifferential is the correctness oracle for the
// query-result cache, the companion of TestQueryDifferential: it
// replays the same synthetic corpora — refinement on, a source removed
// mid-stream — through a pipeline with a qcache attached to the
// engine's publish hook, and at every checkpoint fetches a panel of
// paged search/timeline responses through the cache protocol the HTTP
// layer uses (settle → Get → Begin → compute → Put). Every response —
// whether it was a HIT stored at an earlier checkpoint or a fresh MISS
// — must be byte-identical to an uncached computation at the same
// settled snapshot. A HIT that survives 150 ingests and still matches
// is the property this PR exists for: the Gen-delta invalidation never
// leaves an entry alive whose content changed.
func TestCacheCoherenceDifferential(t *testing.T) {
	for _, seed := range []int64{7, 21, 63} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			corpus := datagen.Generate(experiments.CorpusScale(600, 5, seed))
			p, err := New(WithRefinement(true), WithRepairEvery(100))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			// No TTL, no cap, no sweeper: only Gen-delta invalidation may
			// drop entries, so a stale survivor cannot hide behind an
			// expiry.
			cache := qcache.New(qcache.Config{TTL: -1, MaxEntries: -1, SweepInterval: -1})
			p.Engine().AddResultSink(qcache.NewSink(cache))
			f := &cachedFetcher{p: p, c: cache}

			entities := panelEntities(corpus, 8)
			queries := panelQueries(corpus, 6)

			removeAt := len(corpus.Snippets) * 3 / 5
			for i, sn := range corpus.Snippets {
				if err := p.Ingest(sn); err != nil {
					t.Fatal(err)
				}
				if i == removeAt {
					src := corpus.Snippets[0].Source
					if !p.RemoveSource(src) {
						t.Fatalf("RemoveSource(%s) had nothing to remove", src)
					}
					f.comparePanel(t, entities, queries,
						fmt.Sprintf("after RemoveSource(%s)", src))
				}
				if (i+1)%150 == 0 {
					f.comparePanel(t, entities, queries, fmt.Sprintf("checkpoint %d", i+1))
				}
			}
			f.comparePanel(t, entities, queries, "final")
			t.Logf("seed %d: %d hits / %d lookups", seed, f.hits, f.lookups)
			if f.hits == 0 {
				t.Error("cache never served a hit: the coherence oracle exercised nothing")
			}
			if f.staleHits == 0 {
				// Hits on entries stored at a PREVIOUS checkpoint (i.e.
				// entries that lived through ingests) are the ones that
				// can be stale; a run without any would be vacuous.
				t.Error("no hit ever survived an ingest round: invalidation was never tested")
			}
		})
	}
}

// cachedFetcher mirrors internal/server's cachedQuery protocol at the
// pipeline layer (the HTTP-level twin lives in internal/server, which
// package storypivot cannot import).
type cachedFetcher struct {
	p *Pipeline
	c *qcache.Cache

	lookups   int
	hits      int
	staleHits int // hits served after at least one ingest since the Put
	round     int // bumped per comparePanel; entries carry the round they were stored in
	stored    map[string]int
}

// pageShapes are the paged windows each panel query is fetched with.
var pageShapes = []struct{ off, lim int }{{0, 5}, {5, 5}, {0, 50}, {3, 4}}

func (f *cachedFetcher) comparePanel(t *testing.T, entities []Entity, queries []string, at string) {
	t.Helper()
	f.round++
	for _, e := range entities {
		for _, ps := range pageShapes {
			got := f.fetch(t, "timeline", string(e), ps.off, ps.lim)
			sns, total := f.p.TimelineN(e, ps.off, ps.lim)
			want := encodePage(snippetIDs(sns), total)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: cached timeline(%s, %d, %d) diverged:\ncached: %s\nfresh:  %s",
					at, e, ps.off, ps.lim, got, want)
			}
		}
	}
	for _, q := range queries {
		for _, ps := range pageShapes {
			got := f.fetch(t, "search", q, ps.off, ps.lim)
			hits, total := f.p.SearchN(q, ps.off, ps.lim)
			want := encodePage(storyIDs(hits), total)
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: cached search(%q, %d, %d) diverged:\ncached: %s\nfresh:  %s",
					at, q, ps.off, ps.lim, got, want)
			}
		}
	}
}

// fetch is the cache protocol under test. Order matters and matches
// the HTTP handlers: settle the pipeline (runs pending publishes and
// their invalidations), consult the cache, and on a miss capture the
// token BEFORE the index reads.
func (f *cachedFetcher) fetch(t *testing.T, endpoint, query string, off, lim int) []byte {
	t.Helper()
	if f.stored == nil {
		f.stored = make(map[string]int)
	}
	f.p.Result() // settle
	key := qcache.Key(endpoint, query, off, lim)
	f.lookups++
	if body, etag, ok := f.c.Get(key); ok {
		f.hits++
		if f.stored[key] < f.round {
			f.staleHits++
		}
		if want := qcache.ETagFor(body); etag != want {
			t.Fatalf("ETag drift on %s: stored %s, body hashes to %s", key, etag, want)
		}
		return body
	}
	var deps qcache.Deps
	switch endpoint {
	case "timeline":
		deps.AddEntity(query)
	case "search":
		for _, tok := range text.Pipeline(query) {
			deps.AddTerm(tok)
		}
	}
	tok := f.c.Begin(deps)
	var body []byte
	switch endpoint {
	case "timeline":
		sns, total := f.p.TimelineN(Entity(query), off, lim)
		body = encodePage(snippetIDs(sns), total)
	case "search":
		hits, total := f.p.SearchN(query, off, lim)
		body = encodePage(storyIDs(hits), total)
	}
	f.c.Put(key, tok, body, qcache.ETagFor(body))
	f.stored[key] = f.round
	return body
}

// encodePage is the canonical byte encoding compared by the oracle —
// a stand-in for the HTTP layer's JSON page views with the same
// sensitivity: any change in membership, order, or total changes the
// bytes.
func encodePage(ids []uint64, total int) []byte {
	b, err := json.Marshal(struct {
		Total int      `json:"total"`
		IDs   []uint64 `json:"ids"`
	}{total, ids})
	if err != nil {
		panic(err)
	}
	return b
}
