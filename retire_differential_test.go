package storypivot

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/retire"
)

// retireDiffWindow is the retirement window for the differential runs.
// Exactness requires W to exceed both the identification window ω (14d
// default — a cold story can never be an attach candidate again) and
// the alignment slack (7d default — it can never gain an alignment
// edge), so retiring it cannot change any surviving decision. The
// corpus is ingested in timestamp order, so event-time lateness is zero
// and no extra margin is needed.
const retireDiffWindow = 16 * 24 * time.Hour

// retireDiffOpts is the shared configuration of both differential
// pipelines: refinement on, incremental repair off (repair-merge can
// reach arbitrarily far back in a source, which no finite window can
// bound), and alignment entity-IDF off — IDF statistics aggregate over
// every resident story, so eviction would shift match scores; pinning
// uniform weights is the same documented trade the cluster's sharding
// differential makes (DESIGN.md §3.12).
func retireDiffOpts() []Option {
	return []Option{
		WithRefinement(true),
		WithRepairEvery(0),
		WithAlignEntityIDF(false),
	}
}

// TestRetireDifferential is the correctness oracle for story
// retirement: two pipelines replay the same corpora — refinement on, a
// source removed mid-stream — one with a bounded story window, one
// unbounded. At every checkpoint the bounded pipeline's query responses
// must be byte-identical to the unbounded pipeline's responses filtered
// to the active window: identical story IDs, identical member snippets,
// identical order. Every response entry the bounded pipeline lacks must
// be provably cold (its evidence ended more than W before the
// watermark) — retirement may only ever remove what the policy
// promises, and may not perturb anything it keeps.
func TestRetireDifferential(t *testing.T) {
	for _, seed := range []int64{7, 21, 63} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			corpus := datagen.Generate(experiments.CorpusScale(600, 5, seed))
			pOff, err := New(retireDiffOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			defer pOff.Close()
			pOn, err := New(append(retireDiffOpts(),
				WithRetireWindow(retireDiffWindow),
				WithRetireDir(t.TempDir()))...)
			if err != nil {
				t.Fatal(err)
			}
			defer pOn.Close()

			entities := panelEntities(corpus, 8)
			queries := panelQueries(corpus, 6)

			removeAt := len(corpus.Snippets) * 3 / 5
			for i, sn := range corpus.Snippets {
				if err := pOff.Ingest(sn); err != nil {
					t.Fatal(err)
				}
				if err := pOn.Ingest(sn.Clone()); err != nil {
					t.Fatal(err)
				}
				if i == removeAt {
					src := corpus.Snippets[0].Source
					if !pOff.RemoveSource(src) || !pOn.RemoveSource(src) {
						t.Fatalf("RemoveSource(%s) had nothing to remove", src)
					}
					compareActiveWindow(t, pOff, pOn, entities, queries,
						fmt.Sprintf("after RemoveSource(%s)", src))
				}
				if (i+1)%150 == 0 {
					compareActiveWindow(t, pOff, pOn, entities, queries,
						fmt.Sprintf("checkpoint %d", i+1))
				}
			}
			compareActiveWindow(t, pOff, pOn, entities, queries, "final")

			view := pOn.Retire().Snapshot()
			if view.Retired == 0 {
				t.Error("no story was ever retired: the differential exercised nothing")
			}
			t.Logf("seed %d: retired %d, reactivated %d, resident %d vs %d unbounded",
				seed, view.Retired, view.Reactivated,
				view.Resident, len(pOff.Result().Integrated()))
		})
	}
}

// storyKey renders an integrated story's full query-visible identity —
// ID plus every member snippet in member order — so equality of keys is
// byte-level equality of the response entry.
func storyKey(is *IntegratedStory) string {
	s := fmt.Sprintf("%d", is.ID)
	for _, m := range is.Members {
		s += fmt.Sprintf("|%s/%d:", m.Source, m.ID)
		for _, sn := range m.Snippets {
			s += fmt.Sprintf("%d,", sn.ID)
		}
	}
	return s
}

// storyEnd is the integrated story's last evidence time.
func storyEnd(is *IntegratedStory) time.Time {
	var end time.Time
	for _, m := range is.Members {
		if m.End.After(end) {
			end = m.End
		}
	}
	return end
}

// compareStorySeqs walks the unbounded response and the bounded
// response in lockstep: equal entries consume both sides; an entry only
// the unbounded side has must be cold (ended before the cutoff). Both
// sequences must be fully consumed — the bounded side may not contain
// anything the unbounded side lacks, nor reorder what both contain.
func compareStorySeqs(t *testing.T, at, what string, off, on []*IntegratedStory, cutoff time.Time) {
	t.Helper()
	j := 0
	for _, is := range off {
		if j < len(on) && storyKey(on[j]) == storyKey(is) {
			j++
			continue
		}
		if end := storyEnd(is); !end.Before(cutoff) {
			t.Fatalf("%s: %s: story %d (end %v) missing from bounded pipeline but inside the window (cutoff %v)",
				at, what, is.ID, end, cutoff)
		}
	}
	if j != len(on) {
		t.Fatalf("%s: %s: bounded pipeline served %d entries the unbounded pipeline lacks (first: %s)",
			at, what, len(on)-j, storyKey(on[j]))
	}
}

// compareActiveWindow settles both pipelines and asserts every panel
// query's response is byte-identical on the active window.
func compareActiveWindow(t *testing.T, pOff, pOn *Pipeline, entities []Entity, queries []string, at string) {
	t.Helper()
	pOff.Result()
	pOn.Result()
	_, watermark := pOn.Engine().TimeRange()
	cutoff := watermark.Add(-retireDiffWindow)
	for _, e := range entities {
		off, _ := pOff.StoriesByEntityN(e, 0, -1)
		on, _ := pOn.StoriesByEntityN(e, 0, -1)
		compareStorySeqs(t, at, fmt.Sprintf("StoriesByEntity(%s)", e), off, on, cutoff)

		offTL, _ := pOff.TimelineN(e, 0, -1)
		onTL, _ := pOn.TimelineN(e, 0, -1)
		j := 0
		for _, sn := range offTL {
			if j < len(onTL) && onTL[j].ID == sn.ID {
				j++
				continue
			}
			if !sn.Timestamp.Before(cutoff) {
				t.Fatalf("%s: Timeline(%s): snippet %d (ts %v) missing from bounded pipeline but inside the window",
					at, e, sn.ID, sn.Timestamp)
			}
		}
		if j != len(onTL) {
			t.Fatalf("%s: Timeline(%s): bounded pipeline served %d snippets the unbounded pipeline lacks",
				at, e, len(onTL)-j)
		}
	}
	for _, q := range queries {
		off, _ := pOff.SearchN(q, 0, -1)
		on, _ := pOn.SearchN(q, 0, -1)
		compareStorySeqs(t, at, fmt.Sprintf("Search(%q)", q), off, on, cutoff)
	}
}

// retireSnip builds one hand-crafted snippet for the lifecycle tests.
func retireSnip(id uint64, src string, ts time.Time, ents ...string) *Snippet {
	sn := &Snippet{
		ID:        SnippetID(id),
		Source:    SourceID(src),
		Timestamp: ts,
		Document:  fmt.Sprintf("http://%s/doc%d.html", src, id),
	}
	for _, e := range ents {
		sn.Entities = append(sn.Entities, Entity(e))
		sn.Terms = append(sn.Terms, Term{Token: "about_" + e, Weight: 1})
	}
	return sn
}

// retireStory ingests keep-alive snippets (each a fresh single-snippet
// story with a unique entity) advancing the watermark to end, settling
// alignment every step so retirement walks run.
func advanceWatermark(t *testing.T, p *Pipeline, src string, idBase uint64, from, end time.Time, step time.Duration) uint64 {
	t.Helper()
	for ts := from; !ts.After(end); ts = ts.Add(step) {
		idBase++
		sn := retireSnip(idBase, src, ts, fmt.Sprintf("filler_%d", idBase))
		if err := p.Ingest(sn); err != nil {
			t.Fatal(err)
		}
		p.Result()
	}
	return idBase
}

// TestRetireReactivation drives one story through the full lifecycle:
// resident → cold → retired (evicted from every query path) → new
// evidence arrives → reactivated under its ORIGINAL StoryID with the
// new snippet merged in. Identity stability across the round trip is
// what makes retirement invisible to StoryID-keyed consumers.
func TestRetireReactivation(t *testing.T) {
	const window = 21 * 24 * time.Hour
	t0 := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
	p, err := New(append(retireDiffOpts(),
		WithRetireWindow(window),
		WithRetireDir(t.TempDir()),
		WithRetireGrace(time.Hour))...)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// The target story: two snippets about "kepler" on source alpha.
	for id, off := range []time.Duration{0, time.Hour} {
		if err := p.Ingest(retireSnip(uint64(id+1), "alpha", t0.Add(off), "kepler", "telescope")); err != nil {
			t.Fatal(err)
		}
	}
	target := p.StoryOf("alpha", 1)
	if target == 0 || target != p.StoryOf("alpha", 2) {
		t.Fatalf("setup: snippets 1,2 not in one story (got %d, %d)",
			p.StoryOf("alpha", 1), p.StoryOf("alpha", 2))
	}

	// Advance the watermark far enough that the story is cold AND clear
	// of the same-source repair guard (window + ω past its extent).
	advanceWatermark(t, p, "alpha", 100, t0.Add(48*time.Hour), t0.Add(60*24*time.Hour), 48*time.Hour)

	view := p.Retire().Snapshot()
	if view.Retired == 0 {
		t.Fatalf("story never retired: %+v", view)
	}
	if got, _ := p.StoriesByEntityN("kepler", 0, -1); len(got) != 0 {
		t.Fatalf("retired story still served by StoriesByEntity: %v", storyIDs(got))
	}
	if tl, _ := p.TimelineN("kepler", 0, -1); len(tl) != 0 {
		t.Fatalf("retired story still served by Timeline: %v", snippetIDs(tl))
	}

	// Late evidence lands inside the story's padded extent: reactivate.
	if err := p.Ingest(retireSnip(1000, "alpha", t0.Add(72*time.Hour), "kepler")); err != nil {
		t.Fatal(err)
	}
	if got := p.StoryOf("alpha", 1000); got != target {
		t.Fatalf("reactivated evidence assigned to story %d, want original %d", got, target)
	}
	view = p.Retire().Snapshot()
	if view.Reactivated == 0 {
		t.Fatalf("reactivation not counted: %+v", view)
	}

	// The re-merged story serves all three snippets again.
	p.Result()
	got, _ := p.StoriesByEntityN("kepler", 0, -1)
	if len(got) != 1 {
		t.Fatalf("want 1 kepler story after reactivation, got %v", storyIDs(got))
	}
	members := map[uint64]bool{}
	for _, m := range got[0].Members {
		if m.ID != target {
			t.Fatalf("reactivated member story %d, want %d", m.ID, target)
		}
		for _, sn := range m.Snippets {
			members[uint64(sn.ID)] = true
		}
	}
	for _, want := range []uint64{1, 2, 1000} {
		if !members[want] {
			t.Fatalf("snippet %d missing after re-merge (have %v)", want, members)
		}
	}
}

// TestRetireBoundedResident is the compressed-clock soak: a long
// stream of short-lived stories flows through two pipelines. With the
// window on, the resident story count must stay flat (bounded by the
// stories alive in any window span); with it off, it must grow with the
// corpus — the memory leak retirement exists to stop.
func TestRetireBoundedResident(t *testing.T) {
	const window = 14 * 24 * time.Hour
	cfg := experiments.CorpusScale(1200, 4, 11)
	cfg.Span = 366 * 24 * time.Hour
	cfg.MeanStoryLife = 5 * 24 * time.Hour
	corpus := datagen.Generate(cfg)

	pOn, err := New(WithRetireWindow(window), WithRetireDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer pOn.Close()
	pOff, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer pOff.Close()

	peakOn := 0
	for i, sn := range corpus.Snippets {
		if err := pOn.Ingest(sn.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := pOff.Ingest(sn); err != nil {
			t.Fatal(err)
		}
		if (i+1)%100 == 0 {
			pOn.Result()
			pOff.Result()
			if r := pOn.Retire().Snapshot().Resident; r > peakOn {
				peakOn = r
			}
		}
	}
	pOn.Result()
	on := pOn.Retire().Snapshot()
	// Count what the window bounds: resident per-source stories
	// (Snapshot().Resident is the engine's story count, so sum the
	// unbounded pipeline's integrated-story member counts to match).
	offResident := 0
	for _, is := range pOff.Result().Integrated() {
		offResident += is.Len()
	}
	t.Logf("resident bounded=%d (peak %d, retired %d) vs unbounded=%d",
		on.Resident, peakOn, on.Retired, offResident)
	if on.Retired == 0 {
		t.Fatal("soak never retired a story")
	}
	if 2*peakOn >= offResident {
		t.Fatalf("bounded peak %d not clearly below unbounded %d: window did not bound memory",
			peakOn, offResident)
	}
}

// TestRetireIngestRace exercises the reactivation and retirement paths
// under concurrency (run it with -race): per-source ingest goroutines
// race far apart in event time, so snippets are arbitrarily late
// relative to the watermark — retirements and reactivations interleave
// with ingest, alignment, queries, and live policy rebasing.
func TestRetireIngestRace(t *testing.T) {
	corpus := datagen.Generate(experiments.CorpusScale(800, 4, 13))
	p, err := New(WithRetireWindow(10*24*time.Hour),
		WithRetireDir(t.TempDir()),
		WithAutoAlign(25))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	bySource := map[SourceID][]*Snippet{}
	for _, sn := range corpus.Snippets {
		bySource[sn.Source] = append(bySource[sn.Source], sn)
	}
	var ingest sync.WaitGroup
	for _, sns := range bySource {
		ingest.Add(1)
		go func(sns []*Snippet) {
			defer ingest.Done()
			for _, sn := range sns {
				if err := p.Ingest(sn); err != nil {
					t.Error(err)
					return
				}
			}
		}(sns)
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent alignment, queries, window admin
		defer readers.Done()
		grace := 12 * time.Hour
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			p.Result()
			p.SearchN("about", 0, 10)
			p.Retire().Snapshot()
			if i%10 == 0 {
				if err := p.Retire().Apply(retire.Update{Grace: &grace}); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	ingest.Wait()
	close(done)
	readers.Wait()
	p.Result()
	if v := p.Retire().Snapshot(); v.Retired == 0 {
		t.Logf("race run retired nothing (timing-dependent): %+v", v)
	}
}
