GO ?= go
FUZZTIME ?= 30s

.PHONY: all build vet test race fuzz bench ci feed-demo cluster-demo scale-demo clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector. The concurrency
# tests (internal/stream/concurrent_test.go, internal/obs,
# internal/identify/determinism_test.go) are written to put real
# contention on the engine, registry, and parallel runner, so this is
# the tier that catches lock-discipline regressions.
race:
	$(GO) test -race ./...

# fuzz runs each fuzz target for FUZZTIME (they also run as plain unit
# tests over their seed corpora during `make test`).
fuzz:
	$(GO) test ./internal/event/ -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/event/ -run '^$$' -fuzz FuzzDecodeCorrupt -fuzztime $(FUZZTIME)
	$(GO) test ./internal/text/ -run '^$$' -fuzz FuzzTokenize -fuzztime $(FUZZTIME)
	$(GO) test ./internal/text/ -run '^$$' -fuzz FuzzSentences -fuzztime $(FUZZTIME)

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

ci:
	./scripts/ci.sh

# feed-demo runs the server with replayed continuous feeds and an
# injected flaky source, tailing /api/feeds so the backoff / breaker /
# recovery transitions are visible, then demonstrates the graceful
# drain (cursors + checkpoint persisted on SIGTERM).
feed-demo:
	./scripts/feed_demo.sh

# cluster-demo starts 1 router + 3 worker shards, ingests through the
# router (consistent-hash source routing), runs merged queries, then
# kills a worker to show degraded (partial, never 5xx) serving.
cluster-demo:
	./scripts/cluster_demo.sh

# scale-demo runs the GDELT-scale store benchmarks (tiered vs flat,
# 1M/5M/10M snippets — shrink with STORYPIVOT_SCALE_EVENTS) and prints
# the heap/throughput/cold-read table; the tiered heap must stay flat
# while the flat store grows with the corpus.
scale-demo:
	$(GO) test -run '^$$' -bench 'BenchmarkScale(Tiered|Flat)(1M|5M|10M)$$' \
		-timeout 60m -benchtime 1x ./internal/storage

clean:
	$(GO) clean ./...
