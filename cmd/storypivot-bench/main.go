// Command storypivot-bench regenerates the paper's evaluation artifacts
// (DESIGN.md experiments E1–E10) and prints them as text tables — the
// batch equivalent of the demo's statistics module (Figure 7).
//
// Usage:
//
//	storypivot-bench                 # run everything at default scale
//	storypivot-bench -only e1,e2     # run selected experiments
//	storypivot-bench -quick          # reduced sizes for smoke runs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("storypivot-bench: ")
	var (
		only        = flag.String("only", "", "comma-separated experiment ids (e1..e10); empty = all")
		quick       = flag.Bool("quick", false, "reduced corpus sizes")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address while experiments run")
	)
	flag.Parse()

	if *metricsAddr != "" {
		// Metrics are a convenience during bench runs: a listener
		// failure is logged, never fatal (the old log.Fatal here could
		// kill a multi-hour run over a flaky scrape port).
		metrics, err := obs.StartDebug(*metricsAddr)
		if err != nil {
			log.Printf("metrics listener: %v (continuing without)", err)
		} else {
			go func() {
				if err := <-metrics.Err(); err != nil {
					log.Printf("metrics listener failed: %v (continuing without)", err)
				}
			}()
			log.Printf("metrics on http://%s/metrics", metrics.Addr())
		}
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }
	w := os.Stdout
	start := time.Now()

	if run("e1") {
		cfg := experiments.DefaultE1()
		if *quick {
			cfg.Sizes = []int{1000, 4000}
		}
		experiments.E1Table(experiments.RunE1(cfg)).Fprint(w)
	}
	if run("e2") {
		cfg := experiments.DefaultE2()
		if *quick {
			cfg.Sizes = []int{2000}
		}
		experiments.E2Table(experiments.RunE2(cfg)).Fprint(w)
	}
	if run("e3") {
		cfg := experiments.DefaultE3()
		if *quick {
			cfg.Size = 2000
		}
		experiments.E3Table(experiments.RunE3(cfg)).Fprint(w)
	}
	if run("e4") {
		cfg := experiments.DefaultE4()
		if *quick {
			cfg.SourceCounts = []int{2, 8}
		}
		experiments.E4Table(experiments.RunE4(cfg)).Fprint(w)
	}
	if run("e5") {
		cfg := experiments.DefaultE5()
		if *quick {
			cfg.Size = 1500
		}
		experiments.E5Table(experiments.RunE5(cfg)).Fprint(w)
	}
	if run("e6") {
		cfg := experiments.DefaultE6()
		if *quick {
			cfg.Size = 2000
		}
		experiments.E6Table(experiments.RunE6(cfg)).Fprint(w)
	}
	if run("e7") {
		cfg := experiments.DefaultE7()
		if *quick {
			cfg.Size = 1500
		}
		experiments.E7Table(experiments.RunE7(cfg)).Fprint(w)
	}
	if run("e8") {
		cfg := experiments.DefaultE8()
		if *quick {
			cfg.Sources = 6
			cfg.SizePerSrc = 200
		}
		experiments.E8Table(experiments.RunE8(cfg)).Fprint(w)
	}
	if run("e9") {
		cfg := experiments.DefaultE9()
		if *quick {
			cfg.Size = 4000
		}
		dir, err := os.MkdirTemp("", "storypivot-e9-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		memRow, err := experiments.RunE9(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.StorageDir = dir
		storeRow, err := experiments.RunE9(cfg)
		if err != nil {
			log.Fatal(err)
		}
		experiments.E9Table([]experiments.E9Row{memRow, storeRow}).Fprint(w)
	}
	if run("e10") {
		cfg := experiments.DefaultE10()
		if *quick {
			cfg.Size = 1500
		}
		experiments.E10Table(experiments.RunE10(cfg)).Fprint(w)
	}
	if run("curated") {
		experiments.CuratedTable(experiments.RunCurated()).Fprint(w)
	}
	if run("ablations") {
		cfg := experiments.DefaultAblations()
		if *quick {
			cfg.Size = 2000
		}
		experiments.AblationTable(experiments.RunAblations(cfg)).Fprint(w)
	}
	fmt.Fprintf(w, "\nall selected experiments done in %v\n", time.Since(start).Round(time.Millisecond))
}
