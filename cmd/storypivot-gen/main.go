// Command storypivot-gen generates a synthetic multi-source event corpus
// with ground truth (the offline substitute for GDELT/EventRegistry feeds)
// and writes it as JSONL: one snippet per line, with the true story label
// attached.
//
// Usage:
//
//	storypivot-gen -events 100000 -sources 50 -o corpus.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

// line is the JSONL schema: the snippet tuple of the paper's §1 example
// plus the generator's ground-truth label.
type line struct {
	ID        uint64    `json:"id"`
	Source    string    `json:"source"`
	Timestamp time.Time `json:"timestamp"`
	Entities  []string  `json:"entities"`
	Terms     []term    `json:"terms"`
	Truth     uint64    `json:"truthStory"`
}

type term struct {
	Token  string  `json:"token"`
	Weight float64 `json:"weight"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("storypivot-gen: ")
	var (
		events  = flag.Int("events", 10000, "approximate snippet count")
		sources = flag.Int("sources", 10, "number of data sources")
		seed    = flag.Int64("seed", 1, "generator seed")
		splits  = flag.Float64("splits", 0, "fraction of story pairs planted as splits")
		merges  = flag.Float64("merges", 0, "fraction of stories with merge threads")
		format  = flag.String("format", "jsonl", "output format: jsonl | gdelt")
		out     = flag.String("o", "-", "output path (- for stdout)")
	)
	flag.Parse()

	cfg := experiments.CorpusScale(*events, *sources, *seed)
	cfg.SplitFraction = *splits
	cfg.MergeFraction = *merges
	corpus := datagen.Generate(cfg)

	var w *bufio.Writer
	if *out == "-" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	if *format == "gdelt" {
		if err := datagen.ExportGDELT(w, corpus, *seed); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "storypivot-gen: wrote %d GDELT rows, %d stories, %d sources (seed %d)\n",
			len(corpus.Snippets), len(corpus.Stories), len(corpus.Sources), *seed)
		return
	}
	if *format != "jsonl" {
		log.Fatalf("unknown -format %q (want jsonl or gdelt)", *format)
	}

	enc := json.NewEncoder(w)
	for _, sn := range corpus.Snippets {
		l := line{
			ID:        uint64(sn.ID),
			Source:    string(sn.Source),
			Timestamp: sn.Timestamp,
			Truth:     corpus.Truth[sn.ID],
		}
		for _, e := range sn.Entities {
			l.Entities = append(l.Entities, string(e))
		}
		for _, t := range sn.Terms {
			l.Terms = append(l.Terms, term{t.Token, t.Weight})
		}
		if err := enc.Encode(&l); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "storypivot-gen: wrote %d snippets, %d stories, %d sources (seed %d)\n",
		len(corpus.Snippets), len(corpus.Stories), len(corpus.Sources), *seed)
}
