// Command storypivot-server starts the interactive StoryPivot
// demonstration: the document-selection, story-overview, stories-per-
// source, snippets-per-story, and statistics modules of the paper's demo
// (Figures 3–7), served over HTTP.
//
// Usage:
//
//	storypivot-server -addr :8080
//
// The server starts preloaded with the paper's running example (the MH17
// downing as covered by two newspapers, plus the unrelated Google/Yelp
// story from Figure 3); add or remove documents in the UI to watch the
// identification and alignment results change.
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	storypivot "repro"
	"repro/internal/curated"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("storypivot-server: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		metricsAddr = flag.String("metrics-addr", "", "optional extra listen address for /metrics, /debug/vars, and /debug/pprof (they are always also served on -addr)")
		refine      = flag.Bool("refine", true, "run refinement after alignment")
		useCur      = flag.Bool("curated", false, "preload the full curated 2014 corpus instead of the MH17 mini-example")
		useComp     = flag.Bool("complete", false, "use complete-history identification (suits sparse curated archives)")
	)
	flag.Parse()

	if *metricsAddr != "" {
		errc := obs.ServeDebug(*metricsAddr)
		go func() { log.Fatal(<-errc) }()
		log.Printf("metrics on http://%s/metrics", displayAddr(*metricsAddr))
	}

	opts := []storypivot.Option{
		storypivot.WithRefinement(*refine),
		storypivot.WithKnowledgeBase(storypivot.SeedKnowledgeBase()),
	}
	if *useCur {
		// The curated arcs span months with coverage gaps; give the
		// pipeline the archival-friendly settings (see experiment E3).
		opts = append(opts, storypivot.WithGazetteer(curated.Gazetteer()),
			storypivot.WithAlignSlack(60*24*time.Hour))
		if *useComp {
			opts = append(opts, storypivot.WithMode(storypivot.ModeComplete))
		} else {
			opts = append(opts, storypivot.WithWindow(60*24*time.Hour))
		}
	}
	s, err := server.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *useCur {
		for _, cd := range curated.Corpus() {
			doc := cd.Doc
			s.Preload(&doc)
		}
	} else {
		s.Preload(demoDocuments()...)
	}
	if err := s.SelectAll(); err != nil {
		log.Fatal(err)
	}
	display := displayAddr(*addr)
	log.Printf("listening on %s (open http://%s/)", *addr, display)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}

func displayAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "localhost" + addr
	}
	return addr
}

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

// demoDocuments is the predefined small-scale example of the demo
// (paper §4.2.1), centred on the July 2014 downing of MH17 over Ukraine,
// with the Google/Yelp article of Figure 3 as the unrelated story.
func demoDocuments() []*storypivot.Document {
	return []*storypivot.Document{
		{
			Source: "nyt", URL: "http://nytimes.com/doc0.html", Published: day(30),
			Title: "Sanctions Expanded Against Russia",
			Body: "The day after the European Union and the United States announced expanded sanctions " +
				"against Russia over the conflict in Ukraine, markets reacted with caution.\n\n" +
				"Diplomats said the sanctions were a direct consequence of the downing of the Malaysian jet.",
		},
		{
			Source: "nyt", URL: "http://nytimes.com/doc1.html", Published: day(17),
			Title: "Jetliner Explodes over Ukraine",
			Body: "A Malaysia Airlines Boeing 777 with 298 people aboard exploded, crashed and burned " +
				"in a field near Donetsk.\n\nThe aircraft was flying in territory controlled by pro-Russia " +
				"separatists and officials believe it was blown out of the sky by a missile.",
		},
		{
			Source: "nyt", URL: "http://nytimes.com/doc2.html", Published: day(18),
			Title: "Evidence of Russian Links to Jet's Downing",
			Body: "Officials leading the criminal investigation into the crash of Malaysia Airlines Flight 17 " +
				"said Friday that the plane was shot down.\n\nUkraine asked the United Nations civil aviation " +
				"authority to join the international investigation.",
		},
		{
			Source: "wsj", URL: "http://online.wsj.com/doc3.html", Published: day(17),
			Title: "Passenger Jet Felled over Ukraine",
			Body: "The United States government has concluded that the passenger jet felled over Ukraine " +
				"was shot down by a surface-to-air missile.\n\nThe crash scattered debris near the " +
				"Russian border and investigators demanded access to the site.",
		},
		{
			Source: "wsj", URL: "http://online.wsj.com/doc4.html", Published: day(18),
			Title: "Google Battles Yelp over Search Results",
			Body: "Google Inc. rival Yelp Inc. says the search giant is promoting its own content at the " +
				"expense of users, as Google battles antitrust scrutiny of its search results.",
		},
		{
			Source: "wsj", URL: "http://online.wsj.com/doc5.html", Published: day(21),
			Title: "Dutch Experts Reach Crash Site",
			Body: "Investigators from the Netherlands reached the crash site in eastern Ukraine and began " +
				"recovering remains.\n\nAmsterdam observed a national day of mourning for the victims of the crash.",
		},
	}
}
