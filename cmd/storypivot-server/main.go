// Command storypivot-server starts the interactive StoryPivot
// demonstration: the document-selection, story-overview, stories-per-
// source, snippets-per-story, and statistics modules of the paper's demo
// (Figures 3–7), served over HTTP.
//
// Usage:
//
//	storypivot-server -addr :8080
//
// The server starts preloaded with the paper's running example (the MH17
// downing as covered by two newspapers, plus the unrelated Google/Yelp
// story from Figure 3); add or remove documents in the UI to watch the
// identification and alignment results change.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	storypivot "repro"
	"repro/internal/curated"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/quota"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("storypivot-server: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		metricsAddr = flag.String("metrics-addr", "", "optional extra listen address for /metrics, /debug/vars, and /debug/pprof (they are always also served on -addr)")
		refine      = flag.Bool("refine", true, "run refinement after alignment")
		useCur      = flag.Bool("curated", false, "preload the full curated 2014 corpus instead of the MH17 mini-example")
		useComp     = flag.Bool("complete", false, "use complete-history identification (suits sparse curated archives)")

		readTimeout       = flag.Duration("read-timeout", httpx.DefaultReadTimeout, "max duration for reading a full request")
		readHeaderTimeout = flag.Duration("read-header-timeout", httpx.DefaultReadHeaderTimeout, "max duration for reading request headers")
		writeTimeout      = flag.Duration("write-timeout", httpx.DefaultWriteTimeout, "max duration for writing a response")
		idleTimeout       = flag.Duration("idle-timeout", httpx.DefaultIdleTimeout, "max keep-alive idle time per connection")
		maxHeaderBytes    = flag.Int("max-header-bytes", httpx.DefaultMaxHeaderBytes, "request header size cap")
		maxBodyBytes      = flag.Int64("max-body-bytes", 8<<20, "request body size cap in bytes (0 = unlimited)")
		maxInflight       = flag.Int("max-inflight", 256, "admission gate: max concurrent requests before shedding with 429 (0 = unlimited)")
		retryAfter        = flag.Duration("retry-after", 1*time.Second, "Retry-After hint sent with 429 responses")
		requestTimeout    = flag.Duration("request-timeout", 30*time.Second, "per-request context deadline (0 = none)")
		shutdownGrace     = flag.Duration("shutdown-grace", httpx.DefaultShutdownGrace, "drain budget for in-flight requests on SIGINT/SIGTERM")

		quotaRPS   = flag.Float64("quota-rps", 0, "per-tenant sustained requests/sec on /api/* (0 = quotas disabled); tune live via PUT /api/admin/quotas")
		quotaBurst = flag.Int("quota-burst", 20, "per-tenant burst size (tokens banked at the sustained rate)")

		cacheTTL        = flag.Duration("cache-ttl", 30*time.Second, "query result cache entry lifetime (0 = caching disabled)")
		cacheShards     = flag.Int("cache-shards", 16, "query result cache shard count (rounded up to a power of two)")
		cacheMaxEntries = flag.Int("cache-max-entries", 4096, "query result cache capacity across all shards (-1 = unbounded)")

		clusterWorker = flag.Bool("cluster-worker", false, "run as a cluster worker shard: start empty (no demo preload) and serve only the sources the router assigns here")
		peers         = flag.String("peers", "", "comma-separated URLs of the other workers (cluster mode, advertised on GET /api/cluster/members)")

		storeDir      = flag.String("store-dir", "", "persist snippets to this event-store directory (replayed on restart)")
		storeHot      = flag.Int("store-hot-chunks", 0, "tiered storage: sealed chunks kept fully resident in memory; setting any -store-* tier flag enables the tiered hot/warm/cold layout (0 = default 4, requires -store-dir)")
		storeWarm     = flag.Int("store-warm-mmap", 0, "tiered storage: sealed chunks kept mmap'd read-only behind the hot tier (0 = default 16)")
		storeColdComp = flag.Bool("store-cold-compress", true, "tiered storage: gzip-compress chunks demoted to the cold tier")

		window            = flag.Duration("window", 0, "story retirement window W of event time: stories with no new evidence for W are archived and evicted, bounding resident memory (0 = retirement disabled); tune live via PUT /api/admin/window")
		retireDir         = flag.String("retire-dir", "", "cold-story archive directory (required when -window > 0)")
		retireGrace       = flag.Duration("retire-grace", 0, "holdback before a reactivated story may retire again (0 = W/4)")
		retireMinResident = flag.Int("retire-min-resident", 0, "skip retirement while at most this many stories are resident")
	)
	var ff feedFlags
	registerFeedFlags(&ff)
	flag.Parse()

	// Tiered storage engages when any tier flag is given explicitly, so
	// the plain -store-dir flat layout stays the default (and the
	// baseline the scale benchmarks compare against).
	tiered := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "store-hot-chunks", "store-warm-mmap", "store-cold-compress":
			tiered = true
		}
	})
	if tiered && *storeDir == "" {
		log.Fatal("-store-hot-chunks/-store-warm-mmap/-store-cold-compress require -store-dir")
	}

	// Watch for SIGINT/SIGTERM from here on: the drain path below owns
	// process exit, so nothing may log.Fatal once the listener is up.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var metrics *obs.DebugServer
	if *metricsAddr != "" {
		var err error
		metrics, err = obs.StartDebug(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("metrics on http://%s/metrics", displayAddr(metrics.Addr()))
	}

	opts := []storypivot.Option{
		storypivot.WithRefinement(*refine),
		storypivot.WithKnowledgeBase(storypivot.SeedKnowledgeBase()),
	}
	if *useCur {
		// The curated arcs span months with coverage gaps; give the
		// pipeline the archival-friendly settings (see experiment E3).
		opts = append(opts, storypivot.WithGazetteer(curated.Gazetteer()),
			storypivot.WithAlignSlack(60*24*time.Hour))
		if *useComp {
			opts = append(opts, storypivot.WithMode(storypivot.ModeComplete))
		} else {
			opts = append(opts, storypivot.WithWindow(60*24*time.Hour))
		}
	}
	if *storeDir != "" {
		// Deselect rebuilds open the new pipeline over the same store
		// directory before the old one closes; mutations serialize on the
		// server's write lock and the tier manifest self-heals at open,
		// the same overlap -retire-dir already lives with.
		opts = append(opts, storypivot.WithStorage(*storeDir))
		if tiered {
			opts = append(opts, storypivot.WithTieredStorage(*storeHot, *storeWarm, *storeColdComp))
		}
	}
	if *window > 0 {
		opts = append(opts,
			storypivot.WithRetireWindow(*window),
			storypivot.WithRetireDir(*retireDir))
		if *retireGrace > 0 {
			opts = append(opts, storypivot.WithRetireGrace(*retireGrace))
		}
		if *retireMinResident > 0 {
			opts = append(opts, storypivot.WithRetireMinResident(*retireMinResident))
		}
	}
	s, err := server.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	if *cacheTTL != 0 {
		s.EnableCache(qcache.Config{
			TTL:        *cacheTTL,
			Shards:     *cacheShards,
			MaxEntries: *cacheMaxEntries,
		})
	}
	if *quotaRPS > 0 {
		s.EnableQuotas(quota.Limit{RPS: *quotaRPS, Burst: *quotaBurst})
	}
	if *clusterWorker {
		// Workers start empty: their documents arrive through the router,
		// which hashes each source to its owning shard.
		var ps []string
		if *peers != "" {
			ps = strings.Split(*peers, ",")
		}
		s.SetPeers(ps)
	} else if len(s.Pipeline().Sources()) > 0 {
		// A -store-dir corpus was replayed at open; seeding the demo
		// selection on top would re-ingest it on every restart.
		log.Printf("restored corpus from %s, skipping demo preload", *storeDir)
	} else {
		if *useCur {
			for _, cd := range curated.Corpus() {
				doc := cd.Doc
				s.Preload(&doc)
			}
		} else {
			s.Preload(demoDocuments()...)
		}
		if err := s.SelectAll(); err != nil {
			log.Fatal(err)
		}
	}

	feeds, err := buildFeeds(s, ff, *clusterWorker)
	if err != nil {
		log.Fatal(err)
	}
	if feeds != nil {
		s.AttachFeeds(feeds)
		if err := feeds.Start(); err != nil {
			log.Fatal(err)
		}
	}

	handler := s.HandlerWith(httpx.Config{
		MaxInflight:    *maxInflight,
		RetryAfter:     *retryAfter,
		RequestTimeout: *requestTimeout,
		MaxBodyBytes:   *maxBodyBytes,
		Quota:          s.QuotaMiddleware(),
	})
	srv := httpx.NewServer(*addr, handler, httpx.ServerConfig{
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readHeaderTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
		ShutdownGrace:     *shutdownGrace,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (open http://%s/)", *addr, displayAddr(*addr))

	// A metrics-listener failure must not hard-kill the process and
	// skip the drain: it cancels the same context a signal would, and
	// the shared shutdown path below runs either way.
	mctx, mcancel := context.WithCancel(ctx)
	defer mcancel()
	if metrics != nil {
		go func() {
			if err := <-metrics.Err(); err != nil {
				log.Printf("metrics listener failed: %v (draining)", err)
				mcancel()
			}
		}()
	}

	// The feed drain starts the moment shutdown begins — concurrently
	// with the HTTP drain, because feed sources are independent of
	// in-flight requests. /healthz flips to 503 immediately (Draining),
	// the runners stop fetching, and the queue flushes into the
	// pipeline with a final cursor+pipeline checkpoint.
	var feedsDone chan struct{}
	if feeds != nil {
		feedsDone = make(chan struct{})
		go func() {
			defer close(feedsDone)
			<-mctx.Done()
			if ferr := feeds.Close(); ferr != nil {
				log.Printf("feed close: %v", ferr)
			}
		}()
	}

	// Serve until signal or listener failure, then drain: in-flight
	// requests get shutdown-grace to finish, the feed subsystem flushes
	// and checkpoints, the pipeline (and its index background
	// compactor) stops, and the metrics listener closes cleanly.
	err = httpx.Serve(mctx, srv, ln, *shutdownGrace)
	if err != nil {
		log.Printf("serve: %v", err)
	}
	if feeds != nil {
		// Serve can also return on listener failure without mctx ever
		// firing; cancel explicitly so the drain goroutine always runs.
		mcancel()
		<-feedsDone
	}
	if cerr := s.Close(); cerr != nil {
		log.Printf("pipeline close: %v", cerr)
	}
	if metrics != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if merr := metrics.Shutdown(sctx); merr != nil {
			log.Printf("metrics shutdown: %v", merr)
		}
	}
	if err != nil {
		os.Exit(1)
	}
	log.Printf("drained, bye")
}

func displayAddr(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "localhost" + addr
	}
	return addr
}

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

// demoDocuments is the predefined small-scale example of the demo
// (paper §4.2.1), centred on the July 2014 downing of MH17 over Ukraine,
// with the Google/Yelp article of Figure 3 as the unrelated story.
func demoDocuments() []*storypivot.Document {
	return []*storypivot.Document{
		{
			Source: "nyt", URL: "http://nytimes.com/doc0.html", Published: day(30),
			Title: "Sanctions Expanded Against Russia",
			Body: "The day after the European Union and the United States announced expanded sanctions " +
				"against Russia over the conflict in Ukraine, markets reacted with caution.\n\n" +
				"Diplomats said the sanctions were a direct consequence of the downing of the Malaysian jet.",
		},
		{
			Source: "nyt", URL: "http://nytimes.com/doc1.html", Published: day(17),
			Title: "Jetliner Explodes over Ukraine",
			Body: "A Malaysia Airlines Boeing 777 with 298 people aboard exploded, crashed and burned " +
				"in a field near Donetsk.\n\nThe aircraft was flying in territory controlled by pro-Russia " +
				"separatists and officials believe it was blown out of the sky by a missile.",
		},
		{
			Source: "nyt", URL: "http://nytimes.com/doc2.html", Published: day(18),
			Title: "Evidence of Russian Links to Jet's Downing",
			Body: "Officials leading the criminal investigation into the crash of Malaysia Airlines Flight 17 " +
				"said Friday that the plane was shot down.\n\nUkraine asked the United Nations civil aviation " +
				"authority to join the international investigation.",
		},
		{
			Source: "wsj", URL: "http://online.wsj.com/doc3.html", Published: day(17),
			Title: "Passenger Jet Felled over Ukraine",
			Body: "The United States government has concluded that the passenger jet felled over Ukraine " +
				"was shot down by a surface-to-air missile.\n\nThe crash scattered debris near the " +
				"Russian border and investigators demanded access to the site.",
		},
		{
			Source: "wsj", URL: "http://online.wsj.com/doc4.html", Published: day(18),
			Title: "Google Battles Yelp over Search Results",
			Body: "Google Inc. rival Yelp Inc. says the search giant is promoting its own content at the " +
				"expense of users, as Google battles antitrust scrutiny of its search results.",
		},
		{
			Source: "wsj", URL: "http://online.wsj.com/doc5.html", Published: day(21),
			Title: "Dutch Experts Reach Crash Site",
			Body: "Investigators from the Netherlands reached the crash site in eastern Ukraine and began " +
				"recovering remains.\n\nAmsterdam observed a national day of mourning for the victims of the crash.",
		},
	}
}
