package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	storypivot "repro"
	"repro/internal/datagen"
	"repro/internal/event"
	"repro/internal/experiments"
	"repro/internal/feed"
	"repro/internal/server"
)

// replayIDOffset lifts replayed snippet IDs far above anything the
// extraction pipeline mints from POSTed documents, so the two ID spaces
// cannot collide inside one engine.
const replayIDOffset = 1 << 32

// feedFlags collects the -feed-* flag values.
type feedFlags struct {
	ndjson        string
	replay        int
	replaySources int
	replaySeed    int64
	flakyFirst    int
	flakyEvery    int

	backoffBase      time.Duration
	backoffCap       time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	fetchTimeout     time.Duration
	batch            int
	queue            int
	shed             bool
	workers          int
	poll             time.Duration
	checkpointEvery  time.Duration
	stateDir         string
}

func registerFeedFlags(ff *feedFlags) {
	flag.StringVar(&ff.ndjson, "feed-ndjson", "", "comma-separated source=url list of NDJSON feed endpoints to ingest continuously")
	flag.IntVar(&ff.replay, "feed-replay", 0, "replay a generated corpus of ~N snippets as continuous feeds (0 = off)")
	flag.IntVar(&ff.replaySources, "feed-replay-sources", 3, "number of sources in the replayed corpus")
	flag.Int64Var(&ff.replaySeed, "feed-replay-seed", 42, "seed for the replayed corpus")
	flag.IntVar(&ff.flakyFirst, "feed-flaky-first", 0, "inject failures into the first feed source: fail its first N fetches")
	flag.IntVar(&ff.flakyEvery, "feed-flaky-every", 0, "inject failures into the first feed source: fail every Nth fetch after that")

	flag.DurationVar(&ff.backoffBase, "feed-backoff-base", 100*time.Millisecond, "base retry backoff per feed source (full jitter, doubling)")
	flag.DurationVar(&ff.backoffCap, "feed-backoff-cap", 30*time.Second, "retry backoff cap per feed source")
	flag.IntVar(&ff.breakerThreshold, "feed-breaker-threshold", 5, "consecutive fetch failures that quarantine a source")
	flag.DurationVar(&ff.breakerCooldown, "feed-breaker-cooldown", 30*time.Second, "how long a quarantined source waits before a half-open probe")
	flag.DurationVar(&ff.fetchTimeout, "feed-fetch-timeout", 10*time.Second, "per-fetch timeout")
	flag.IntVar(&ff.batch, "feed-batch", 64, "records per fetch")
	flag.IntVar(&ff.queue, "feed-queue", 256, "bounded ingest queue depth shared by all feed sources")
	flag.BoolVar(&ff.shed, "feed-shed", false, "shed (drop and count) snippets when the ingest queue is full instead of blocking the source")
	flag.IntVar(&ff.workers, "feed-workers", 2, "goroutines draining the feed queue into the pipeline")
	flag.DurationVar(&ff.poll, "feed-poll", 500*time.Millisecond, "poll interval for caught-up sources")
	flag.DurationVar(&ff.checkpointEvery, "feed-checkpoint-every", 15*time.Second, "period between cursor+pipeline checkpoints (0 = only at shutdown)")
	flag.StringVar(&ff.stateDir, "feed-state-dir", "", "directory for feed resume cursors and the dead-letter queue (empty = in-memory only)")
}

// pipelineSink routes feed snippets to the server's *live* pipeline
// snapshot — a rebuild (document deselection) must not strand the feed
// on a closed pipeline — and forwards checkpoint requests so cursors
// are persisted alongside pipeline state.
type pipelineSink struct{ s *server.Server }

func (ps pipelineSink) Ingest(sn *storypivot.Snippet) error {
	return ps.s.Pipeline().Ingest(sn)
}

func (ps pipelineSink) WriteCheckpoint() error {
	return ps.s.Pipeline().WriteCheckpoint()
}

// RemoveSource implements feed.SourceRemover: when the router withdraws
// an interim feed tenure from this worker, the tenure's ingested data is
// deleted so the returning ring owner's copy is the only one visible.
func (ps pipelineSink) RemoveSource(src event.SourceID) bool {
	return ps.s.Pipeline().RemoveSource(src)
}

// replaySpecFetcher builds fetchers for cluster-assigned "replay" specs:
// the corpus is regenerated deterministically from (events, sources,
// seed) rather than shipped over the wire. Generated corpora are cached
// so N sources of one corpus cost one generation.
func replaySpecFetcher() feed.SpecFetcher {
	type corpusKey struct {
		events, sources int
		seed            int64
	}
	var mu sync.Mutex
	cache := make(map[corpusKey]map[event.SourceID][]*event.Snippet)
	return func(sp feed.Spec) (feed.Fetcher, error) {
		if sp.Type != "replay" {
			return nil, fmt.Errorf("unsupported feed spec type %q for source %q", sp.Type, sp.Source)
		}
		if sp.Events <= 0 || sp.Sources <= 0 {
			return nil, fmt.Errorf("replay spec %q needs events and sources", sp.Source)
		}
		key := corpusKey{sp.Events, sp.Sources, sp.Seed}
		mu.Lock()
		bySource, ok := cache[key]
		if !ok {
			bySource = datagen.Generate(experiments.CorpusScale(sp.Events, sp.Sources, sp.Seed)).BySource()
			cache[key] = bySource
		}
		mu.Unlock()
		snippets, ok := bySource[event.SourceID(sp.Source)]
		if !ok {
			return nil, fmt.Errorf("replay spec %q: source not in generated corpus", sp.Source)
		}
		offset := sp.IDOffset
		if offset == 0 {
			offset = replayIDOffset
		}
		return feed.NewReplay(event.SourceID(sp.Source), snippets, offset), nil
	}
}

// buildFeeds assembles the feed manager from flags. It returns nil when
// no feed flags are in use — except in cluster-worker mode, where an
// (initially empty) manager always exists so the router's feed
// coordinator can assign sources to this worker at runtime.
func buildFeeds(s *server.Server, ff feedFlags, clusterWorker bool) (*feed.Manager, error) {
	if ff.ndjson == "" && ff.replay <= 0 && !clusterWorker {
		return nil, nil
	}
	cfg := feed.Config{
		BackoffBase:      ff.backoffBase,
		BackoffCap:       ff.backoffCap,
		BreakerThreshold: ff.breakerThreshold,
		BreakerCooldown:  ff.breakerCooldown,
		FetchTimeout:     ff.fetchTimeout,
		BatchSize:        ff.batch,
		QueueDepth:       ff.queue,
		Shed:             ff.shed,
		IngestWorkers:    ff.workers,
		PollInterval:     ff.poll,
		CheckpointEvery:  ff.checkpointEvery,
	}
	if ff.stateDir != "" {
		cfg.CursorPath = filepath.Join(ff.stateDir, "cursors.json")
		cfg.DLQDir = filepath.Join(ff.stateDir, "dlq")
	}
	if clusterWorker {
		cfg.SpecFetcher = replaySpecFetcher()
	}
	m, err := feed.NewManager(pipelineSink{s}, cfg)
	if err != nil {
		return nil, err
	}
	var fetchers []feed.Fetcher
	if ff.ndjson != "" {
		for _, pair := range strings.Split(ff.ndjson, ",") {
			src, url, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || src == "" || url == "" {
				return nil, fmt.Errorf("bad -feed-ndjson entry %q (want source=url)", pair)
			}
			fetchers = append(fetchers, feed.NewHTTPFetcher(event.SourceID(src), url, nil))
		}
	}
	if ff.replay > 0 {
		corpus := datagen.Generate(experiments.CorpusScale(ff.replay, ff.replaySources, ff.replaySeed))
		bySource := corpus.BySource()
		srcs := make([]event.SourceID, 0, len(bySource))
		for src := range bySource {
			srcs = append(srcs, src)
		}
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		for _, src := range srcs {
			fetchers = append(fetchers, feed.NewReplay(src, bySource[src], replayIDOffset))
		}
	}
	if ff.flakyFirst > 0 || ff.flakyEvery > 0 {
		if len(fetchers) == 0 {
			return nil, fmt.Errorf("-feed-flaky-* set but no feed sources configured")
		}
		fetchers[0] = &feed.Flaky{
			Fetcher:   fetchers[0],
			FailFirst: ff.flakyFirst,
			FailEvery: ff.flakyEvery,
		}
		log.Printf("feed: injecting failures into source %q (first %d fetches, then every %d)",
			fetchers[0].Source(), ff.flakyFirst, ff.flakyEvery)
	}
	for _, f := range fetchers {
		if err := m.Add(f); err != nil {
			return nil, err
		}
	}
	log.Printf("feed: %d sources, queue %d (%s), breaker %d/%s, state dir %q",
		len(fetchers), ff.queue, map[bool]string{true: "shed", false: "block"}[ff.shed],
		ff.breakerThreshold, ff.breakerCooldown, ff.stateDir)
	return m, nil
}
