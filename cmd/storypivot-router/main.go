// Command storypivot-router fronts a sharded StoryPivot deployment: it
// owns no pipeline, routes document ingest to the worker shard owning
// the document's source (consistent hashing, admin-reconfigurable), and
// scatter-gathers the query endpoints across every worker, merging the
// per-shard ranked pages under the same ordering the in-process index
// uses. A worker outage degrades responses ("partial": true) instead of
// failing them; /healthz turns 503 only when a majority of workers is
// down.
//
// Usage:
//
//	storypivot-server -addr :8081 -cluster-worker &
//	storypivot-server -addr :8082 -cluster-worker &
//	storypivot-router -addr :8080 -members w1=http://localhost:8081,w2=http://localhost:8082
//
// The member list and source pins can be changed without restart via
// PUT /api/cluster/members.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/feed"
	"repro/internal/httpx"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("storypivot-router: ")
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		metricsAddr = flag.String("metrics-addr", "", "optional extra listen address for /metrics and /debug")
		members     = flag.String("members", "", "comma-separated worker shards, each name=url (or bare url, named w1..wN)")
		pins        = flag.String("pins", "", "comma-separated source pins, each source=member-name, overriding hash placement")

		shardTimeout = flag.Duration("shard-timeout", 5*time.Second, "per-shard request deadline")
		hedgeAfter   = flag.Duration("hedge-after", 0, "duplicate a slow shard GET after this long (0 = no hedging)")

		probeInterval = flag.Duration("probe-interval", 2*time.Second, "background worker health-probe period")
		probeTimeout  = flag.Duration("probe-timeout", 1*time.Second, "per-probe deadline")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive failures (probe or live traffic) that quarantine a worker")
		cooldown      = flag.Duration("cooldown", 10*time.Second, "how long a quarantined worker waits before a half-open readmission probe")

		ingestRetries    = flag.Int("ingest-retries", 3, "retries for a routed ingest whose owner shard fails transiently")
		ingestRetryBase  = flag.Duration("ingest-retry-base", 50*time.Millisecond, "base of the full-jitter backoff between ingest retries")
		ingestRetryCap   = flag.Duration("ingest-retry-cap", 2*time.Second, "cap of the full-jitter backoff between ingest retries")
		ingestRetryAfter = flag.Duration("ingest-retry-after", 10*time.Second, "Retry-After hint when the owner shard is quarantined (503)")

		feedReplay        = flag.Int("feed-replay", 0, "cluster-managed feeds: replay a generated corpus of ~N snippets, each source's runner placed on its ring owner and failed over on quarantine (0 = off)")
		feedSources       = flag.Int("feed-replay-sources", 3, "number of sources in the cluster-replayed corpus")
		feedSeed          = flag.Int64("feed-replay-seed", 42, "seed for the cluster-replayed corpus")
		feedNDJSON        = flag.String("feed-ndjson", "", "cluster-managed feeds: comma-separated source=url NDJSON endpoints, each assigned to its ring owner")
		reconcileInterval = flag.Duration("reconcile-interval", 2*time.Second, "feed coordinator steady-state reconcile period (health changes reconcile immediately)")

		maxInflight    = flag.Int("max-inflight", 256, "admission gate: max concurrent requests before shedding with 429 (0 = unlimited)")
		retryAfter     = flag.Duration("retry-after", 1*time.Second, "Retry-After hint sent with 429 responses")
		requestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request context deadline (0 = none)")
		maxBodyBytes   = flag.Int64("max-body-bytes", 8<<20, "request body size cap in bytes (0 = unlimited)")
		shutdownGrace  = flag.Duration("shutdown-grace", httpx.DefaultShutdownGrace, "drain budget for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	ms, err := parseMembers(*members)
	if err != nil {
		log.Fatal(err)
	}
	ps, err := parsePins(*pins)
	if err != nil {
		log.Fatal(err)
	}
	specs, err := buildFeedSpecs(*feedNDJSON, *feedReplay, *feedSources, *feedSeed)
	if err != nil {
		log.Fatal(err)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Members: ms,
		Pins:    ps,
		Client: cluster.ClientConfig{
			Timeout:    *shardTimeout,
			HedgeAfter: *hedgeAfter,
		},
		Health: cluster.HealthConfig{
			ProbeInterval: *probeInterval,
			ProbeTimeout:  *probeTimeout,
			FailThreshold: *failThreshold,
			Cooldown:      *cooldown,
		},
		Ingest: cluster.IngestConfig{
			Retries:    *ingestRetries,
			RetryBase:  *ingestRetryBase,
			RetryCap:   *ingestRetryCap,
			RetryAfter: *ingestRetryAfter,
		},
		Feeds:             specs,
		ReconcileInterval: *reconcileInterval,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.Start()
	defer rt.Close()
	if len(specs) > 0 {
		log.Printf("coordinating %d cluster feeds (reconcile every %s)", len(specs), *reconcileInterval)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var metrics *obs.DebugServer
	if *metricsAddr != "" {
		metrics, err = obs.StartDebug(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("metrics on http://%s/metrics", *metricsAddr)
	}

	handler := rt.HandlerWith(httpx.Config{
		MaxInflight:    *maxInflight,
		RetryAfter:     *retryAfter,
		RequestTimeout: *requestTimeout,
		MaxBodyBytes:   *maxBodyBytes,
	})
	srv := httpx.NewServer(*addr, handler, httpx.ServerConfig{
		ShutdownGrace: *shutdownGrace,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range ms {
		log.Printf("shard %s → %s", m.Name, m.URL)
	}
	log.Printf("routing on %s", *addr)

	err = httpx.Serve(ctx, srv, ln, *shutdownGrace)
	if err != nil {
		log.Printf("serve: %v", err)
	}
	if metrics != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if merr := metrics.Shutdown(sctx); merr != nil {
			log.Printf("metrics shutdown: %v", merr)
		}
	}
	if err != nil {
		os.Exit(1)
	}
	log.Printf("drained, bye")
}

// replayIDOffset mirrors the worker cmd's constant: replayed snippet
// IDs live far above anything the extraction pipeline mints.
const replayIDOffset = 1 << 32

// buildFeedSpecs assembles the cluster-managed feed definitions the
// coordinator will place on workers. Replay specs carry only the corpus
// parameters — each assigned worker regenerates the corpus
// deterministically — but the router must generate it once itself to
// learn the source names that key ring placement.
func buildFeedSpecs(ndjson string, replay, sources int, seed int64) ([]feed.Spec, error) {
	var specs []feed.Spec
	if ndjson != "" {
		for _, pair := range strings.Split(ndjson, ",") {
			src, u, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || src == "" || u == "" {
				return nil, fmt.Errorf("bad -feed-ndjson entry %q (want source=url)", pair)
			}
			specs = append(specs, feed.Spec{Source: src, Type: "ndjson", URL: u})
		}
	}
	if replay > 0 {
		bySource := datagen.Generate(experiments.CorpusScale(replay, sources, seed)).BySource()
		names := make([]string, 0, len(bySource))
		for src := range bySource {
			names = append(names, string(src))
		}
		sort.Strings(names)
		for _, src := range names {
			specs = append(specs, feed.Spec{
				Source:   src,
				Type:     "replay",
				Events:   replay,
				Sources:  sources,
				Seed:     seed,
				IDOffset: replayIDOffset,
			})
		}
	}
	return specs, nil
}

// parseMembers accepts "w1=http://host:1234,w2=http://host:1235" or
// bare URLs (auto-named w1..wN).
func parseMembers(s string) ([]cluster.Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("need -members (comma-separated name=url)")
	}
	var out []cluster.Member
	for i, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, url, ok := strings.Cut(part, "="); ok {
			out = append(out, cluster.Member{Name: name, URL: strings.TrimSuffix(url, "/")})
		} else {
			out = append(out, cluster.Member{Name: fmt.Sprintf("w%d", i+1), URL: strings.TrimSuffix(part, "/")})
		}
	}
	return out, nil
}

func parsePins(s string) (map[string]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		src, name, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad pin %q (want source=member)", part)
		}
		out[src] = name
	}
	return out, nil
}
