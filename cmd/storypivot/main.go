// Command storypivot runs the batch StoryPivot pipeline over a corpus —
// either a synthetic multi-source corpus (default) or a JSONL document
// file — and prints the resulting stories within and across sources.
//
// Usage:
//
//	storypivot [flags]
//	storypivot -docs documents.jsonl
//
// Each line of a -docs file is a JSON document:
//
//	{"source":"nyt","url":"http://...","title":"...","body":"...","published":"2014-07-17T00:00:00Z"}
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	storypivot "repro"
	"repro/internal/curated"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("storypivot: ")

	var (
		docsPath  = flag.String("docs", "", "JSONL document file (default: synthetic corpus)")
		gdeltPath = flag.String("gdelt", "", "GDELT 1.0 event-table TSV file to ingest")
		mode      = flag.String("mode", "temporal", "identification mode: temporal|complete")
		window    = flag.Duration("window", 14*24*time.Hour, "sliding window half-width (temporal mode)")
		refine    = flag.Bool("refine", true, "run story refinement after alignment")
		sketch    = flag.Bool("sketch", false, "use MinHash/LSH candidate retrieval")
		storeDir  = flag.String("store", "", "persist snippets to this event-store directory")
		storeDir2 = flag.String("store-dir", "", "alias for -store (matches the server binary's flag)")

		storeHot      = flag.Int("store-hot-chunks", 0, "tiered storage: sealed chunks kept fully resident in memory; setting any -store-* tier flag enables the tiered hot/warm/cold layout (0 = default 4, requires -store)")
		storeWarm     = flag.Int("store-warm-mmap", 0, "tiered storage: sealed chunks kept mmap'd read-only behind the hot tier (0 = default 16)")
		storeColdComp = flag.Bool("store-cold-compress", true, "tiered storage: gzip-compress chunks demoted to the cold tier")
		topK          = flag.Int("top", 10, "number of integrated stories to print")
		profiles      = flag.Bool("profiles", false, "print per-source reporting profiles")
		trending      = flag.Bool("trending", false, "print trending stories at the corpus end")
		useCur        = flag.Bool("curated", false, "run on the curated 2014 corpus (5 real stories, 3 sources)")

		// Story retirement (-window here is the identification window ω,
		// so the retirement window gets its own flag).
		retireWindow      = flag.Duration("retire-window", 0, "story retirement window W of event time: stories with no new evidence for W are archived and evicted (0 = retirement disabled)")
		retireDir         = flag.String("retire-dir", "", "cold-story archive directory (default: <store>/archive)")
		retireGrace       = flag.Duration("retire-grace", 0, "holdback before a reactivated story may retire again (0 = W/4)")
		retireMinResident = flag.Int("retire-min-resident", 0, "skip retirement while at most this many stories are resident")

		// Synthetic corpus knobs.
		size    = flag.Int("events", 5000, "synthetic corpus size (snippets)")
		sources = flag.Int("sources", 10, "synthetic corpus sources")
		seed    = flag.Int64("seed", 1, "synthetic corpus seed")
	)
	flag.Parse()

	opts := []storypivot.Option{
		storypivot.WithWindow(*window),
		storypivot.WithRefinement(*refine),
		storypivot.WithSketchIndex(*sketch),
	}
	switch *mode {
	case "temporal":
		opts = append(opts, storypivot.WithMode(storypivot.ModeTemporal))
	case "complete":
		opts = append(opts, storypivot.WithMode(storypivot.ModeComplete))
	default:
		log.Fatalf("unknown -mode %q (want temporal or complete)", *mode)
	}
	dir := *storeDir
	if dir == "" {
		dir = *storeDir2
	}
	tiered := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "store-hot-chunks", "store-warm-mmap", "store-cold-compress":
			tiered = true
		}
	})
	if dir != "" {
		opts = append(opts, storypivot.WithStorage(dir))
		if tiered {
			opts = append(opts, storypivot.WithTieredStorage(*storeHot, *storeWarm, *storeColdComp))
		}
	} else if tiered {
		log.Fatal("-store-hot-chunks/-store-warm-mmap/-store-cold-compress require -store")
	}
	if *retireWindow > 0 {
		opts = append(opts, storypivot.WithRetireWindow(*retireWindow))
		if *retireDir != "" {
			opts = append(opts, storypivot.WithRetireDir(*retireDir))
		}
		if *retireGrace > 0 {
			opts = append(opts, storypivot.WithRetireGrace(*retireGrace))
		}
		if *retireMinResident > 0 {
			opts = append(opts, storypivot.WithRetireMinResident(*retireMinResident))
		}
	}
	if *useCur {
		// The curated arcs span months with coverage gaps; use the
		// archival-friendly settings (see experiment E3 / EXPERIMENTS.md).
		opts = append(opts,
			storypivot.WithGazetteer(curated.Gazetteer()),
			storypivot.WithAlignSlack(60*24*time.Hour))
	}
	p, err := storypivot.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	start := time.Now()
	var truth eval.Assignment
	switch {
	case *useCur:
		truth = eval.Assignment{}
		for _, cd := range curated.Corpus() {
			docCopy := cd.Doc
			sns, err := p.AddDocument(&docCopy)
			if err != nil {
				log.Printf("skipping %s: %v", cd.Doc.URL, err)
				continue
			}
			for _, sn := range sns {
				truth[sn.ID] = cd.Truth
			}
		}
		fmt.Printf("ingested the curated corpus (%d documents) in %v\n",
			len(curated.Corpus()), time.Since(start).Round(time.Millisecond))
	case *gdeltPath != "":
		f, err := os.Open(*gdeltPath)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := p.IngestGDELT(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %d GDELT events from %s (%d malformed, %d skipped) in %v\n",
			stats.Accepted, *gdeltPath, stats.Malformed, stats.Skipped,
			time.Since(start).Round(time.Millisecond))
	case *docsPath != "":
		n, err := loadDocuments(p, *docsPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %d documents from %s in %v\n", n, *docsPath, time.Since(start).Round(time.Millisecond))
	default:
		corpus := datagen.Generate(experiments.CorpusScale(*size, *sources, *seed))
		truth = experiments.TruthAssignment(corpus)
		accepted := p.IngestAll(corpus.Snippets)
		fmt.Printf("ingested %d/%d synthetic snippets (%d sources, seed %d) in %v\n",
			accepted, len(corpus.Snippets), *sources, *seed, time.Since(start).Round(time.Millisecond))
	}

	alignStart := time.Now()
	res := p.Align()
	fmt.Printf("alignment: %d integrated stories (%d multi-source, %d matches) in %v\n",
		len(res.Integrated()), len(res.MultiSource()), len(res.Matches()),
		time.Since(alignStart).Round(time.Millisecond))

	if truth != nil {
		pred := eval.FromIntegrated(res.Integrated())
		prf := eval.Pairwise(pred, truth)
		fmt.Printf("quality vs ground truth: P=%.3f R=%.3f F1=%.3f (B³=%.3f, NMI=%.3f)\n",
			prf.Precision, prf.Recall, prf.F1,
			eval.BCubed(pred, truth).F1, eval.NMI(pred, truth))
	}

	if *profiles {
		fmt.Println("\nsource profiles (timeliness / coverage / exclusivity):")
		for _, pr := range p.RankedSources() {
			fmt.Printf("  %-12s coverage=%.2f meanLag=%-9v firsts=%-5d exclusivity=%.2f snippets=%d\n",
				pr.Source, pr.Coverage, pr.MeanLag.Round(time.Minute), pr.FirstReports, pr.Exclusivity, pr.Snippets)
		}
	}
	if *trending {
		_, end := p.Engine().TimeRange()
		fmt.Println("\ntrending stories (last 72h of the corpus):")
		for i, tr := range p.Trending(end, 72*time.Hour) {
			if i >= 5 {
				break
			}
			fmt.Printf("  score=%.1f recent=%d %s\n", tr.Score, tr.Recent, tr.Story)
		}
	}

	fmt.Printf("\ntop %d integrated stories by size:\n", *topK)
	stories := res.Integrated()
	// Select the topK largest.
	for i := 0; i < len(stories); i++ {
		for j := i + 1; j < len(stories); j++ {
			if stories[j].Len() > stories[i].Len() {
				stories[i], stories[j] = stories[j], stories[i]
			}
		}
	}
	if len(stories) > *topK {
		stories = stories[:*topK]
	}
	for _, is := range stories {
		fmt.Printf("  %s\n", is)
		ents := ""
		freq := is.EntityFreq()
		shown := 0
		for e, c := range freq {
			if shown >= 5 {
				break
			}
			ents += fmt.Sprintf(" {%s,%d}", e, c)
			shown++
		}
		fmt.Printf("    entities:%s\n", ents)
	}
}

// loadDocuments streams a JSONL document file into the pipeline.
func loadDocuments(p *storypivot.Pipeline, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var d storypivot.Document
		if err := json.Unmarshal(line, &d); err != nil {
			return n, fmt.Errorf("line %d: %w", n+1, err)
		}
		if _, err := p.AddDocument(&d); err != nil {
			log.Printf("skipping %s: %v", d.URL, err)
			continue
		}
		n++
	}
	return n, sc.Err()
}
