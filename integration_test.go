package storypivot

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/experiments"
)

// TestFullSystemIntegration exercises every subsystem together: synthetic
// corpus → persistent store → streaming identification (temporal, with
// repair and sketch index) → alignment with refinement → queries, source
// profiles, KB context — then a restart recovers identical state.
func TestFullSystemIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system test")
	}
	dir := t.TempDir()
	corpus := datagen.Generate(experiments.CorpusScale(3000, 6, 99))
	truth := experiments.TruthAssignment(corpus)

	p, err := New(
		WithStorage(dir),
		WithRefinement(true),
		WithSketchIndex(true),
		WithKnowledgeBase(SeedKnowledgeBase()),
	)
	if err != nil {
		t.Fatal(err)
	}
	accepted := p.IngestAll(corpus.Snippets)
	if accepted != len(corpus.Snippets) {
		t.Fatalf("accepted %d of %d", accepted, len(corpus.Snippets))
	}
	res := p.Result()
	pred := eval.FromIntegrated(res.Integrated())
	prf := eval.Pairwise(pred, truth)
	if prf.F1 < 0.5 {
		t.Fatalf("end-to-end F1 = %.3f", prf.F1)
	}
	if ari := eval.ARI(pred, truth); ari < 0.4 {
		t.Fatalf("end-to-end ARI = %.3f", ari)
	}
	if len(res.MultiSource()) == 0 {
		t.Fatal("no multi-source stories")
	}
	// Queries operate over the result.
	hot := corpus.Snippets[0].Entities[0]
	if len(p.StoriesByEntity(hot)) == 0 {
		t.Error("StoriesByEntity empty for a known entity")
	}
	if len(p.Timeline(hot)) == 0 {
		t.Error("Timeline empty")
	}
	// Source profiles cover all sources.
	if got := p.SourceProfiles(); len(got) != 6 {
		t.Errorf("profiles = %d", len(got))
	}
	// Entity statistics from the engine are sane.
	if p.Engine().DistinctEntities() == 0 {
		t.Error("DistinctEntities = 0")
	}
	start, end := p.Engine().TimeRange()
	if !start.Before(end) {
		t.Error("TimeRange degenerate")
	}
	wantIntegrated := len(res.Integrated())
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the checkpoint restores identification state. With
	// refinement enabled the next alignment applies a further refinement
	// round on the already-refined state (iterative convergence), so the
	// partitions agree closely rather than exactly; exact restart
	// identity is asserted separately without refinement below.
	p2, err := New(WithStorage(dir), WithRefinement(true), WithSketchIndex(true))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	res2 := p2.Result()
	if got := len(res2.Integrated()); got < wantIntegrated*9/10 || got > wantIntegrated*11/10 {
		t.Fatalf("restart integrated = %d, want ~%d", got, wantIntegrated)
	}
	agreement := eval.Pairwise(eval.FromIntegrated(res2.Integrated()), pred)
	if agreement.F1 < 0.95 {
		t.Fatalf("restart diverged: agreement F1 = %.3f", agreement.F1)
	}
	prf2 := eval.Pairwise(eval.FromIntegrated(res2.Integrated()), truth)
	if prf2.F1 < prf.F1-0.03 {
		t.Fatalf("restart degraded quality: %.3f -> %.3f", prf.F1, prf2.F1)
	}
}

// TestRestartIdentityWithoutRefinement asserts the strong guarantee: with
// refinement off, a checkpointed restart reproduces the partition exactly.
func TestRestartIdentityWithoutRefinement(t *testing.T) {
	dir := t.TempDir()
	corpus := datagen.Generate(experiments.CorpusScale(1500, 4, 77))
	p, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	p.IngestAll(corpus.Snippets)
	pred := eval.FromIntegrated(p.Result().Integrated())
	want := len(p.Result().Integrated())
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint file exists and the fast path engages.
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json")); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	res2 := p2.Result()
	if got := len(res2.Integrated()); got != want {
		t.Fatalf("restart integrated = %d, want %d", got, want)
	}
	if f := eval.Pairwise(eval.FromIntegrated(res2.Integrated()), pred).F1; f != 1 {
		t.Fatalf("restart changed the partition: agreement F1 = %.3f", f)
	}
}

// TestCorruptCheckpointFallsBackToReplay injects a broken checkpoint; New
// must replay instead (and, per recovery_test.go, surface a warning).
func TestCorruptCheckpointFallsBackToReplay(t *testing.T) {
	dir := t.TempDir()
	corpus := datagen.Generate(experiments.CorpusScale(600, 3, 9))
	p, _ := New(WithStorage(dir))
	p.IngestAll(corpus.Snippets)
	want := len(p.Result().Integrated())
	p.Close()

	if err := os.WriteFile(filepath.Join(dir, "checkpoint.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatalf("corrupt checkpoint broke New: %v", err)
	}
	defer p2.Close()
	if got := len(p2.Result().Integrated()); got != want {
		t.Fatalf("replay fallback produced %d stories, want %d", got, want)
	}
}

// TestPipelineSurvivesCorruptStoreTail simulates a crash that tore the
// store's tail: New must recover the intact prefix and keep working.
func TestPipelineSurvivesCorruptStoreTail(t *testing.T) {
	dir := t.TempDir()
	p, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	corpus := datagen.Generate(experiments.CorpusScale(400, 3, 5))
	p.IngestAll(corpus.Snippets)
	p.Close()

	// Append garbage to the newest segment.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".log" {
			seg = filepath.Join(dir, e.Name())
		}
	}
	if seg == "" {
		t.Fatal("no segment file")
	}
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Close()

	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatalf("pipeline did not survive torn tail: %v", err)
	}
	defer p2.Close()
	if got := int(p2.Engine().Ingested()); got != len(corpus.Snippets) {
		t.Fatalf("recovered %d of %d snippets", got, len(corpus.Snippets))
	}
	// Appends continue cleanly.
	extra := corpus.Snippets[0].Clone()
	extra.ID = SnippetID(1 << 40)
	if err := p2.Ingest(extra); err != nil {
		t.Fatalf("post-recovery ingest: %v", err)
	}
}

// TestPipelineConcurrentUse hammers one pipeline from many goroutines:
// ingest, align, and query concurrently.
func TestPipelineConcurrentUse(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	corpus := datagen.Generate(experiments.CorpusScale(1200, 4, 3))
	parts := corpus.BySource()

	var wg sync.WaitGroup
	for _, src := range corpus.Sources {
		wg.Add(1)
		go func(sns []*Snippet) {
			defer wg.Done()
			for _, sn := range sns {
				p.Ingest(sn)
			}
		}(parts[src])
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			p.Result()
			p.Search("anything")
			p.SourceProfiles()
		}
	}()
	wg.Wait()
	covered := 0
	for _, is := range p.Result().Integrated() {
		covered += is.Len()
	}
	if covered != len(corpus.Snippets) {
		t.Fatalf("result covers %d of %d", covered, len(corpus.Snippets))
	}
}
