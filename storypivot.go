// Package storypivot is the public API of StoryPivot, a framework for
// detecting evolving stories in multi-source event datasets, reproducing
// "StoryPivot: Comparing and Contrasting Story Evolution" (SIGMOD 2015).
//
// StoryPivot decomposes story detection into two phases:
//
//   - story identification groups the information snippets of each data
//     source into per-source stories, incrementally, using either a
//     sliding temporal window (default) or complete-history matching;
//
//   - story alignment integrates stories across sources into integrated
//     stories, classifies snippets as aligning or enriching, and can
//     refine per-source results with cross-source evidence.
//
// The entry point is the Pipeline:
//
//	p, _ := storypivot.New()
//	defer p.Close()
//	p.AddDocument(&storypivot.Document{
//		Source:    "nyt",
//		Title:     "Jetliner Explodes over Ukraine",
//		Body:      "A Malaysian airplane with 298 people aboard crashed...",
//		Published: time.Date(2014, 7, 17, 0, 0, 0, 0, time.UTC),
//	})
//	for _, st := range p.IntegratedStories() {
//		fmt.Println(st)
//	}
package storypivot

import (
	"repro/internal/align"
	"repro/internal/event"
	"repro/internal/extract"
	"repro/internal/identify"
)

// Core data-model types, re-exported so that users never import internal
// packages.
type (
	// Snippet is an information snippet: the elemental unit of processing.
	Snippet = event.Snippet
	// Term is one weighted description term of a snippet.
	Term = event.Term
	// Entity is a canonical entity identifier.
	Entity = event.Entity
	// SourceID identifies a data source.
	SourceID = event.SourceID
	// SnippetID identifies a snippet.
	SnippetID = event.SnippetID
	// StoryID identifies a per-source story.
	StoryID = event.StoryID
	// IntegratedID identifies a cross-source integrated story.
	IntegratedID = event.IntegratedID
	// Story is a per-source story produced by story identification.
	Story = event.Story
	// IntegratedStory is a cross-source story produced by alignment.
	IntegratedStory = event.IntegratedStory
	// SnippetRole classifies a snippet as aligning or enriching.
	SnippetRole = event.SnippetRole
	// Document is a raw input document for the extraction pipeline.
	Document = extract.Document
	// Gazetteer maps surface forms to entities for extraction.
	Gazetteer = extract.Gazetteer
	// Match is one cross-source story alignment edge.
	Match = align.Match
	// Correction is one refinement decision.
	Correction = align.Correction
	// Mode selects the identification execution mode.
	Mode = identify.Mode
)

// Identification modes (paper Figure 2).
const (
	// ModeTemporal is sliding-window story identification (default).
	ModeTemporal = identify.ModeTemporal
	// ModeComplete is whole-history story identification (baseline).
	ModeComplete = identify.ModeComplete
)

// Snippet role values.
const (
	RoleUnknown   = event.RoleUnknown
	RoleAligning  = event.RoleAligning
	RoleEnriching = event.RoleEnriching
)

// NewGazetteer creates an empty entity gazetteer.
func NewGazetteer() *Gazetteer { return extract.NewGazetteer() }

// DefaultGazetteer returns a gazetteer seeded with the paper's running
// example entities (Ukraine crisis, MH17, Google/Yelp).
func DefaultGazetteer() *Gazetteer { return extract.DefaultGazetteer() }

// Result is the outcome of story alignment: the integrated story set and
// the match edges that produced it.
type Result struct {
	inner *align.Result
}

// Integrated returns all integrated stories (including single-source
// singletons) in deterministic order.
func (r *Result) Integrated() []*IntegratedStory {
	if r == nil || r.inner == nil {
		return nil
	}
	return r.inner.Integrated
}

// MultiSource returns only the integrated stories spanning >= 2 sources.
func (r *Result) MultiSource() []*IntegratedStory {
	if r == nil || r.inner == nil {
		return nil
	}
	return r.inner.MultiSource()
}

// Matches returns the story-pair alignment edges sorted by score.
func (r *Result) Matches() []Match {
	if r == nil || r.inner == nil {
		return nil
	}
	return r.inner.Matches
}

// IntegratedOf returns the integrated story containing the given
// per-source story, or nil.
func (r *Result) IntegratedOf(id StoryID) *IntegratedStory {
	if r == nil || r.inner == nil {
		return nil
	}
	return r.inner.IntegratedOf(id)
}
