package storypivot

import (
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/text"
)

// TestQueryDifferential is the correctness oracle for the query index:
// it replays synthetic corpora through the full pipeline — refinement
// moves enabled, a source removed mid-stream — and at every checkpoint
// asserts the indexed Search / StoriesByEntity / Timeline results are
// identical to the legacy full-scan implementations, including paged
// windows and total counts.
func TestQueryDifferential(t *testing.T) {
	for _, seed := range []int64{7, 21, 63} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			corpus := datagen.Generate(experiments.CorpusScale(600, 5, seed))
			p, err := New(WithRefinement(true), WithRepairEvery(100))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			entities := panelEntities(corpus, 8)
			queries := panelQueries(corpus, 6)

			removeAt := len(corpus.Snippets) * 3 / 5
			for i, sn := range corpus.Snippets {
				if err := p.Ingest(sn); err != nil {
					t.Fatal(err)
				}
				if i == removeAt {
					src := corpus.Snippets[0].Source
					if !p.RemoveSource(src) {
						t.Fatalf("RemoveSource(%s) had nothing to remove", src)
					}
					comparePanel(t, p, entities, queries,
						fmt.Sprintf("after RemoveSource(%s)", src))
				}
				if (i+1)%150 == 0 {
					comparePanel(t, p, entities, queries,
						fmt.Sprintf("checkpoint %d", i+1))
				}
			}
			comparePanel(t, p, entities, queries, "final")
			comparePagination(t, p, entities, queries)
		})
	}
}

// panelEntities picks a spread of query entities: the most frequent
// ones, a rare one, and a guaranteed miss.
func panelEntities(c *datagen.Corpus, n int) []Entity {
	freq := map[Entity]int{}
	for _, sn := range c.Snippets {
		for _, e := range sn.Entities {
			freq[e]++
		}
	}
	type ef struct {
		e Entity
		n int
	}
	all := make([]ef, 0, len(freq))
	for e, k := range freq {
		all = append(all, ef{e, k})
	}
	// Deterministic order: by count desc, then name.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].n > all[j-1].n ||
			(all[j].n == all[j-1].n && all[j].e < all[j-1].e)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	out := []Entity{"no_such_entity_zzz"}
	for i := 0; i < len(all) && len(out) < n; i++ {
		out = append(out, all[i].e)
	}
	if len(all) > 0 {
		out = append(out, all[len(all)-1].e) // rarest
	}
	return out
}

// panelQueries builds free-text queries from corpus tokens that survive
// the text pipeline unchanged (so both paths can actually hit), plus a
// duplicate-token query and a guaranteed miss.
func panelQueries(c *datagen.Corpus, n int) []string {
	seen := map[string]bool{}
	var stable []string
	for _, sn := range c.Snippets {
		for _, tm := range sn.Terms {
			if seen[tm.Token] {
				continue
			}
			seen[tm.Token] = true
			if toks := text.Pipeline(tm.Token); len(toks) == 1 && toks[0] == tm.Token {
				stable = append(stable, tm.Token)
			}
		}
		if len(stable) >= 3*n {
			break
		}
	}
	out := []string{"zzzzqq xqqqz", ""} // miss and empty
	for i := 0; i+1 < len(stable) && len(out) < n; i += 2 {
		out = append(out, stable[i]+" "+stable[i+1])
	}
	if len(stable) > 0 {
		out = append(out, stable[0])               // single token
		out = append(out, stable[0]+" "+stable[0]) // duplicate tokens
	}
	return out
}

// comparePanel runs every panel query through both paths and requires
// identical ranked ID sequences and totals.
func comparePanel(t *testing.T, p *Pipeline, entities []Entity, queries []string, at string) {
	t.Helper()
	p.Result() // settle alignment once so both paths see the same state
	for _, e := range entities {
		want := storyIDs(p.scanStoriesByEntity(e))
		got, total := p.StoriesByEntityN(e, 0, -1)
		if total != len(want) || fmt.Sprint(storyIDs(got)) != fmt.Sprint(want) {
			t.Fatalf("%s: StoriesByEntity(%s):\nindexed (total %d): %v\nscan: %v",
				at, e, total, storyIDs(got), want)
		}
		wantTL := snippetIDs(p.scanTimeline(e))
		gotTL, tlTotal := p.TimelineN(e, 0, -1)
		if tlTotal != len(wantTL) || fmt.Sprint(snippetIDs(gotTL)) != fmt.Sprint(wantTL) {
			t.Fatalf("%s: Timeline(%s):\nindexed (total %d): %v\nscan: %v",
				at, e, tlTotal, snippetIDs(gotTL), wantTL)
		}
	}
	for _, q := range queries {
		want := storyIDs(p.scanSearch(q))
		got, total := p.SearchN(q, 0, -1)
		if total != len(want) || fmt.Sprint(storyIDs(got)) != fmt.Sprint(want) {
			t.Fatalf("%s: Search(%q):\nindexed (total %d): %v\nscan: %v",
				at, q, total, storyIDs(got), want)
		}
	}
}

// comparePagination stitches small indexed windows back together and
// requires the concatenation to equal the full scan result, with the
// total constant across pages.
func comparePagination(t *testing.T, p *Pipeline, entities []Entity, queries []string) {
	t.Helper()
	p.Result()
	const window = 3
	for _, e := range entities {
		full := storyIDs(p.scanStoriesByEntity(e))
		var stitched []uint64
		for off := 0; ; off += window {
			page, total := p.StoriesByEntityN(e, off, window)
			if total != len(full) {
				t.Fatalf("StoriesByEntity(%s) page at %d: total %d, want %d", e, off, total, len(full))
			}
			if len(page) == 0 {
				break
			}
			stitched = append(stitched, storyIDs(page)...)
		}
		if fmt.Sprint(stitched) != fmt.Sprint(full) {
			t.Fatalf("StoriesByEntity(%s) stitched pages %v != full %v", e, stitched, full)
		}
	}
	for _, q := range queries {
		full := storyIDs(p.scanSearch(q))
		var stitched []uint64
		for off := 0; ; off += window {
			page, total := p.SearchN(q, off, window)
			if total != len(full) {
				t.Fatalf("Search(%q) page at %d: total %d, want %d", q, off, total, len(full))
			}
			if len(page) == 0 {
				break
			}
			stitched = append(stitched, storyIDs(page)...)
		}
		if fmt.Sprint(stitched) != fmt.Sprint(full) {
			t.Fatalf("Search(%q) stitched pages %v != full %v", q, stitched, full)
		}
	}
	for _, e := range entities {
		full := snippetIDs(p.scanTimeline(e))
		var stitched []uint64
		for off := 0; ; off += window {
			page, total := p.TimelineN(e, off, window)
			if total != len(full) {
				t.Fatalf("Timeline(%s) page at %d: total %d, want %d", e, off, total, len(full))
			}
			if len(page) == 0 {
				break
			}
			stitched = append(stitched, snippetIDs(page)...)
		}
		if fmt.Sprint(stitched) != fmt.Sprint(full) {
			t.Fatalf("Timeline(%s) stitched pages %v != full %v", e, stitched, full)
		}
	}
}

func storyIDs(in []*IntegratedStory) []uint64 {
	out := make([]uint64, len(in))
	for i, is := range in {
		out[i] = uint64(is.ID)
	}
	return out
}

func snippetIDs(in []*Snippet) []uint64 {
	out := make([]uint64, len(in))
	for i, sn := range in {
		out[i] = uint64(sn.ID)
	}
	return out
}
