package storypivot

import (
	"io"
	"sort"

	"repro/internal/kb"
	"repro/internal/sourceprof"
)

// Knowledge-base integration (paper §3): resolve story entities against an
// embedded knowledge base for context panels, and derive extraction
// gazetteers from KB records.

type (
	// KnowledgeBase is an embedded entity knowledge base (the offline
	// substitute for DBpedia).
	KnowledgeBase = kb.KB
	// KBRecord is one knowledge-base entity.
	KBRecord = kb.Record
	// KBRelation is a typed relation between entities.
	KBRelation = kb.Relation
	// StoryContext is the KB view of a story's entities.
	StoryContext = kb.Context
	// SourceProfile summarises one source's reporting behaviour
	// (timeliness, coverage, exclusivity).
	SourceProfile = sourceprof.Profile
)

// NewKnowledgeBase creates an empty knowledge base.
func NewKnowledgeBase() *KnowledgeBase { return kb.New() }

// SeedKnowledgeBase returns the built-in KB covering the paper's running
// examples.
func SeedKnowledgeBase() *KnowledgeBase { return kb.Seed() }

// LoadKnowledgeBase reads KB records from a JSONL stream.
func LoadKnowledgeBase(r io.Reader) (*KnowledgeBase, int, error) {
	k := kb.New()
	n, err := k.LoadJSONL(r)
	return k, n, err
}

// WithKnowledgeBase attaches a knowledge base to the pipeline: its records
// drive entity extraction (label + aliases become gazetteer surface forms)
// and power Context lookups.
func WithKnowledgeBase(k *KnowledgeBase) Option {
	return func(c *config) {
		c.kb = k
		c.gazetteer = k.Gazetteer()
	}
}

// KnowledgeBase returns the attached knowledge base, or nil.
func (p *Pipeline) KnowledgeBase() *KnowledgeBase { return p.kb }

// Context resolves an integrated story's entities against the attached
// knowledge base (nil without one).
func (p *Pipeline) Context(is *IntegratedStory) *StoryContext {
	if p.kb == nil || is == nil {
		return nil
	}
	return p.kb.StoryContext(is.EntityFreq())
}

// SourceProfiles derives per-source reporting profiles (timeliness,
// coverage, exclusivity) from the current alignment result, sorted by
// source ID. See the sourceprof package for metric definitions.
func (p *Pipeline) SourceProfiles() []SourceProfile {
	res := p.engine.Result()
	profiles := sourceprof.Build(res, sourceprof.DefaultConfig())
	sort.Slice(profiles, func(i, j int) bool { return profiles[i].Source < profiles[j].Source })
	return profiles
}

// RankedSources orders the profiles by the watch-list score (timely,
// covering, exclusive sources first).
func (p *Pipeline) RankedSources() []SourceProfile {
	return sourceprof.Rank(p.SourceProfiles())
}
