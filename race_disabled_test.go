//go:build !race

package storypivot

const raceEnabled = false
