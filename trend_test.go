package storypivot

import (
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

func TestPipelineTrending(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	corpus := datagen.Generate(experiments.CorpusScale(1500, 4, 31))
	p.IngestAll(corpus.Snippets)

	_, end := p.Engine().TimeRange()
	trends := p.Trending(end, 7*24*time.Hour)
	if len(trends) == 0 {
		t.Fatal("nothing trending at corpus end")
	}
	// Scores sorted descending; rows well-formed.
	for i, tr := range trends {
		if tr.Recent <= 0 || tr.Score <= 0 || tr.Story == nil {
			t.Fatalf("bad trend: %+v", tr)
		}
		if i > 0 && tr.Score > trends[i-1].Score {
			t.Fatal("trends not sorted by score")
		}
	}
	// Burst analysis on the top trending story runs without error.
	bursts := p.Bursts(trends[0].Story, DefaultTrendConfig())
	for _, b := range bursts {
		if !b.Start.Before(b.End) || b.Snippets <= 0 {
			t.Fatalf("bad burst: %+v", b)
		}
	}
	// Quiet point in time: nothing trends.
	if got := p.Trending(end.AddDate(2, 0, 0), 7*24*time.Hour); len(got) != 0 {
		t.Fatalf("far-future trending = %d", len(got))
	}
}
