package storypivot

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

// TestQuerySteadyStateAllocs pins the steady-state allocation profile of
// the indexed query path. After the corpus is ingested, aligned, and one
// warm-up round has grown the pooled accumulator and hit buffers, each
// query may allocate only its own result page (plus, for Search, the
// tokenised query and the two sort.Slice headers): the postings walk,
// the score accumulator, and the ranking heap are all allocation-free.
// The legacy scan path materialises per-story entity/centroid maps and
// re-sorts the corpus per query, so it cannot meet these bounds — the
// pins are what keep the indexed path honest.
func TestQuerySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its caches under the race detector; the pins hold only in normal builds")
	}
	corpus := datagen.Generate(experiments.CorpusScale(2000, 5, 17))
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.IngestAll(corpus.Snippets)
	p.Result() // settle alignment; queries below hit the published index

	ent := corpus.Snippets[0].Entities[0]
	query := corpus.Snippets[0].Terms[0].Token + " " + corpus.Snippets[1].Terms[0].Token

	cases := []struct {
		name string
		run  func()
		max  float64
	}{
		// Full StoriesByEntity: result slice + sort.Slice machinery.
		{"StoriesByEntity", func() { p.StoriesByEntityN(ent, 0, -1) }, 4},
		// Paged: bounded heap ranks in place; result page is the only
		// data allocation.
		{"StoriesByEntityPaged", func() { p.StoriesByEntityN(ent, 0, 10) }, 4},
		// Search adds query tokenisation (tokenise/stopword/stem).
		{"Search", func() { p.SearchN(query, 0, -1) }, 13},
		{"SearchPaged", func() { p.SearchN(query, 0, 10) }, 13},
		// Timeline is two-pass over the entity's segments: exactly the
		// result slice.
		{"Timeline", func() { p.TimelineN(ent, 0, -1) }, 1},
		{"TimelinePaged", func() { p.TimelineN(ent, 10, 25) }, 1},
		// A miss allocates nothing at all.
		{"TimelineMiss", func() { p.TimelineN("no_such_entity_zzz", 0, -1) }, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 3; i++ { // grow pooled buffers before measuring
				tc.run()
			}
			allocs := testing.AllocsPerRun(100, tc.run)
			t.Logf("%s: %v allocs/op", tc.name, allocs)
			if allocs > tc.max {
				t.Errorf("%s: %v allocs/op, want <= %v", tc.name, allocs, tc.max)
			}
		})
	}
}
