#!/bin/sh
# Cluster demo: starts three worker shards and a scatter-gather router,
# ingests the demo corpus through the router (each document lands on
# the shard owning its source), and runs the query panel both through
# the router and against the workers directly so the merge is visible.
# Ends with the self-healing loop, live: worker 3 is killed mid-run —
# the router keeps answering 200 with "partial": true, /healthz stays
# 200 while a majority of workers is up, the health monitor quarantines
# the dead member, and its coordinator-assigned feed runner fails over
# to an interim owner. The worker is then restarted on the same port
# and store: a half-open probe readmits it, and its runner rebalances
# home, resuming from its checkpointed cursor.
#
# Usage: scripts/cluster_demo.sh  (or: make cluster-demo)
set -eu

cd "$(dirname "$0")/.."

HOST=${HOST:-127.0.0.1}
RPORT=${RPORT:-8130}
W1=$((RPORT + 1)); W2=$((RPORT + 2)); W3=$((RPORT + 3))
STATE=$(mktemp -d)
PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true # let workers finish their final checkpoint before rm
    rm -rf "$STATE"
}
trap cleanup EXIT INT TERM

echo "==> building"
go build -o "$STATE/server" ./cmd/storypivot-server
go build -o "$STATE/router" ./cmd/storypivot-router

start_worker() {
    # Durable store + feed state per worker so a restarted worker
    # resumes from its own checkpoint (the self-healing demo at the
    # end kills and revives worker 3).
    "$STATE/server" -addr "$HOST:$1" -cluster-worker \
        -peers "http://$HOST:$W1,http://$HOST:$W2,http://$HOST:$W3" \
        -store-dir "$STATE/store$1" -feed-state-dir "$STATE/feed$1" \
        -feed-checkpoint-every 1s -feed-poll 100ms &
}

echo "==> starting 3 workers + router on $HOST:$RPORT"
for port in $W1 $W2; do
    start_worker "$port"
    PIDS="$PIDS $!"
done
start_worker "$W3"
W3_PID=$!
PIDS="$PIDS $W3_PID"
"$STATE/router" -addr "$HOST:$RPORT" \
    -members "w1=http://$HOST:$W1,w2=http://$HOST:$W2,w3=http://$HOST:$W3" \
    -hedge-after 250ms \
    -feed-replay 300 -feed-replay-sources 3 \
    -probe-interval 300ms -fail-threshold 2 -cooldown 1s \
    -reconcile-interval 500ms &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"

wait_up() {
    for _ in $(seq 1 50); do
        if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "!! $1 did not come up" >&2
    exit 1
}
for port in $W1 $W2 $W3; do wait_up "$HOST:$port"; done
wait_up "$HOST:$RPORT"

echo "==> ingesting demo corpus through the router"
i=0
for src in nyt wsj bbc nyt wsj bbc; do
    i=$((i + 1))
    curl -fsS -X POST "http://$HOST:$RPORT/api/documents" \
        -H 'Content-Type: application/json' \
        -d "{\"source\":\"$src\",\"url\":\"http://example.com/d$i\",\"title\":\"Jet downed over Ukraine day $i\",\"published\":\"2014-07-$((16 + i))T00:00:00Z\",\"body\":\"A Malaysia Airlines jet crashed near Donetsk in Ukraine. Investigators from the Netherlands examine the crash site. Report $i.\"}" \
        >/dev/null
done

echo "==> cluster membership"
curl -fsS "http://$HOST:$RPORT/api/cluster/members"

echo "==> merged search through the router"
curl -fsS "http://$HOST:$RPORT/api/search?q=ukraine+crash&limit=5"

echo "==> merged timeline through the router"
curl -fsS "http://$HOST:$RPORT/api/timeline?entity=UKR&limit=5"

echo "==> coordinator-assigned feed runners (each source on its ring owner)"
sleep 1.5
curl -fsS "http://$HOST:$RPORT/api/cluster/feeds"

echo "==> killing worker 3 — router degrades instead of failing"
kill "$W3_PID" 2>/dev/null || true
sleep 0.3
echo "==> search with a dead shard (note \"partial\": true, status still 200)"
curl -sS -o /dev/null -w 'status=%{http_code}\n' "http://$HOST:$RPORT/api/search?q=ukraine&limit=5"
curl -fsS "http://$HOST:$RPORT/api/search?q=ukraine&limit=5" | tail -3
echo "==> quorum health (2 of 3 up: still 200, dead member quarantined after probes)"
sleep 1.5
curl -sS -o /dev/null -w 'status=%{http_code}\n' "http://$HOST:$RPORT/healthz"
curl -sS "http://$HOST:$RPORT/healthz"
echo "==> feed assignments after quarantine (w3's runner failed over, interim)"
curl -fsS "http://$HOST:$RPORT/api/cluster/feeds"

echo "==> restarting worker 3 on the same port and store"
start_worker "$W3"
W3_PID=$!
PIDS="$PIDS $W3_PID"
wait_up "$HOST:$W3"
sleep 2.5  # cooldown + half-open probe + reconcile
echo "==> health after readmission (w3 back to ok)"
curl -sS "http://$HOST:$RPORT/healthz"
echo "==> feed assignments after readmission (runner rebalanced home)"
curl -fsS "http://$HOST:$RPORT/api/cluster/feeds"
echo "==> search after healing (partial flag gone)"
curl -sS -o /dev/null -w 'status=%{http_code}\n' "http://$HOST:$RPORT/api/search?q=ukraine&limit=5"

echo "==> done"
