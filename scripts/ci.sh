#!/bin/sh
# CI gate: build, vet, unit tests, the full suite under the race
# detector, then a one-iteration smoke run of the Figure-7 benchmarks
# (catches benchmark bit-rot; the numbers themselves are not gated).
# Fails on the first broken step. Run from the repo root (the script
# cd's there itself so it also works from hooks).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke (scripts/bench.sh --smoke)"
./scripts/bench.sh --smoke

echo "==> ci ok"
