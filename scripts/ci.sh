#!/bin/sh
# CI gate: build, vet, unit tests, the full suite under the race
# detector, then a one-iteration smoke run of the Figure-7 benchmarks
# (catches benchmark bit-rot; the numbers themselves are not gated).
# Fails on the first broken step. Run from the repo root (the script
# cd's there itself so it also works from hooks).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

# Serving-layer resilience gate: the fault-injection suites must prove
# shutdown drains in-flight requests, overload sheds with 429, panics
# are contained, and reads are not serialized behind rebuilds — all
# under the race detector (ROADMAP's bar for concurrency-touching PRs).
echo "==> fault-injection suite (-race, httpx/server/faults)"
go test -race -count=1 \
  -run 'TestShutdownDrainsInflight|TestShutdownGraceExpiryForcesClose|TestRealSIGTERMDrains|TestOverloadShedsUnderRealLoad|TestPanicContainedUnderRealServer|TestReadsNotSerializedBehindRebuild|TestConcurrentReadsDuringSelectChurn|TestHandlerPanicContained' \
  ./internal/httpx ./internal/server
go test -race -count=1 ./internal/faults

# Feed resilience gate: the continuous-ingest fault-injection suite
# must prove, under the race detector, that a flapping source recovers
# via backoff, the breaker quarantines and re-admits via half-open
# probes, malformed records land in the DLQ without poisoning their
# batch, cursors resume after restart with zero duplicates, and a
# mid-burst drain loses nothing it acknowledged.
echo "==> feed fault-injection suite (-race, feed + checkpoint restore)"
go test -race -count=1 \
  -run 'TestFeedFlapAndRecover|TestFeedBreakerLifecycle|TestFeedDLQCaptureNoPoisoning|TestFeedCursorResumeNoDuplicates|TestFeedDrainMidBurstNoAcknowledgedLoss|TestFeedFetchTimeoutRecovers|TestFeedFetcherPanicContained|TestFeedShedPolicyCountsDrops' \
  ./internal/feed
go test -race -count=1 -run 'TestFeedCheckpointRestoreUnderIngest' .
go test -race -count=1 -run 'TestFeedsEndpointAndHealthz|TestHealthzWithoutFeeds' ./internal/server

# Cache/quota gate: the differential coherence oracles (pipeline-layer
# and HTTP-layer) must prove zero stale responses across seeds with
# refinement on and mid-stream source removal, and the hammer must
# survive concurrent query/ingest/invalidation/sweep/admin-update
# traffic under the race detector.
echo "==> cache coherence + quota gate (-race)"
go test -race -count=1 -run 'TestCacheCoherenceDifferential' .
go test -race -count=1 \
  -run 'TestHTTPCacheCoherence|TestCacheQuotaIngestRace|TestQuota429VsGate429|TestQuotaAdminFlow' \
  ./internal/server
go test -race -count=1 ./internal/qcache ./internal/quota

# Cluster gate: the scatter-gather layer must prove, under the race
# detector, that the merge agrees with a full sort, the ring is
# deterministic/balanced/pinnable, a sharded deployment answers
# byte-identically to a single node across three seeds (including
# paged windows and a mid-stream source removal on one shard), a dead
# worker degrades to 200 + "partial": true (never 5xx) with quorum
# health semantics, and routed ingest lands on the ring owner.
echo "==> cluster scatter-gather gate (-race)"
go test -race -count=1 -run 'TestMergeRanked' ./internal/index
go test -race -count=1 \
  -run 'TestRing|TestClusterDifferential|TestClusterDegradedServing|TestClusterIngestRouting|TestClusterMembersReconfigure' \
  ./internal/cluster
go test -race -count=1 -run 'TestEmptyResultsSerialiseAsArray|TestStoriesByEntityEndpoint' ./internal/server

# Retirement gate: the lifecycle differential must prove byte-identical
# active-window responses across seeds (refinement on, mid-stream source
# removal), reactivation must restore the original StoryID, a
# kill-during-retire restart must reconcile the archive against the
# checkpoint, and the retire/reactivate/ingest/rebase interleaving must
# survive the race detector.
echo "==> story retirement gate (-race)"
go test -race -count=1 \
  -run 'TestRetireDifferential|TestRetireReactivation|TestRetireBoundedResident|TestRetireIngestRace|TestRecoveryKillDuringRetire|TestRecoveryArchiveReconcile' .
go test -race -count=1 ./internal/retire
go test -race -count=1 -run 'TestArchive' ./internal/storage
go test -race -count=1 -run 'TestWindowEndpoint' ./internal/server

# Tiered-storage gate: the chunk tier suite (demotion/promotion,
# crash-point recovery at both the storage and pipeline layers, the
# manifest reconcile, and the ingest/query/cold-read hammer) must pass
# under the race detector, and the 3-seed tiered-vs-all-hot server
# differential must stay byte-identical on every endpoint. The paged
# envelope boundaries ride along: they share the pagination code the
# tiers must not perturb.
echo "==> tiered storage gate (-race)"
go test -race -count=1 -run 'TestTier' ./internal/storage
go test -race -count=1 \
  -run 'TestRecoveryTiered|TestTieredIngestQueryRace' .
go test -race -count=1 \
  -run 'TestTieredServerDifferential|TestPagedEnvelopeBoundaries' ./internal/server
go test -race -count=1 -run 'TestClusterPagedEnvelopeEdgeCases' ./internal/cluster
go test -race -count=1 -run 'TestDLQ|TestArchiveTornFrame|TestArchiveReset' ./internal/storage

# Self-healing cluster gate: the chaos suite must prove, under the race
# detector, that killing one worker of three mid ingest-and-query-replay
# keeps every scatter query at 200 (partial, never 5xx) with bounded
# p99, quarantines the dead member off passive signals, fails its feed
# runner over to an interim owner at the last durable cursor, readmits
# the restarted worker via a half-open probe with its WAL restored past
# the cursor file, rebalances the runner home, and ends with zero
# acknowledged-record loss and zero duplicates. The hedging contract,
# the health state machine + per-member metrics, the failover placement
# walk, and the worker-side assignment lifecycle ride along.
echo "==> self-healing cluster chaos gate (-race)"
go test -race -count=1 \
  -run 'TestClusterChaosFailover|TestClientHedging|TestHealthMonitorStateMachine|TestRingOwnerIndexAmong' \
  ./internal/cluster
go test -race -count=1 -run 'TestAssignLifecycle|TestAssignValidation' ./internal/feed

echo "==> bench smoke (scripts/bench.sh --smoke)"
./scripts/bench.sh --smoke

echo "==> ci ok"
