#!/bin/sh
# CI gate: build, vet, unit tests, then the full suite under the race
# detector. Fails on the first broken step. Run from the repo root (the
# script cd's there itself so it also works from hooks).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> ci ok"
