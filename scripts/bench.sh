#!/bin/sh
# bench.sh — run the Figure-7 identification benchmarks (E1: complete vs
# temporal vs temporal+sketch) with allocation reporting and write the
# results to BENCH_identify.json for regression tracking.
#
# Usage:
#   scripts/bench.sh            # full run (benchtime from go defaults)
#   scripts/bench.sh --smoke    # 1 iteration per benchmark (CI gate: the
#                               # point is "still runs and reports", not
#                               # stable numbers)
#
# Output: BENCH_identify.json in the repo root — one object per benchmark
# with ns/op, B/op, allocs/op, and comparisons/op.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME=""
OUT="BENCH_identify.json"
if [ "${1:-}" = "--smoke" ]; then
    BENCHTIME="-benchtime=1x"
    OUT="BENCH_identify.smoke.json"
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# shellcheck disable=SC2086  # BENCHTIME is deliberately word-split
go test -run '^$' -bench 'BenchmarkE1_PerformanceVsEvents(Complete|Temporal|TemporalSketch)$' \
    -benchmem $BENCHTIME . | tee "$TMP"

# Parse "BenchmarkName-N  iters  123 ns/op  45 B/op  6 allocs/op  7 comparisons/op ..."
# into JSON. Metrics appear as value/unit pairs after the iteration count.
awk '
/^BenchmarkE1_PerformanceVsEvents/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = bytes = allocs = cmps = "null"
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")          ns = $i
        if ($(i + 1) == "B/op")           bytes = $i
        if ($(i + 1) == "allocs/op")      allocs = $i
        if ($(i + 1) == "comparisons/op") cmps = $i
    }
    rows[++n] = sprintf("  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"comparisons_per_op\": %s}", name, ns, bytes, allocs, cmps)
}
END {
    print "["
    for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
    print "]"
}
' "$TMP" > "$OUT"

echo "==> wrote $OUT"
cat "$OUT"
