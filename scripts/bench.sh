#!/bin/sh
# bench.sh — run the Figure-7 identification benchmarks (E1: complete vs
# temporal vs temporal+sketch) and the query-serving benchmarks (indexed
# vs full-scan) with allocation reporting, writing the results to
# BENCH_identify.json and BENCH_query.json for regression tracking.
#
# Usage:
#   scripts/bench.sh            # full run (benchtime from go defaults)
#   scripts/bench.sh --smoke    # few iterations per benchmark (CI gate:
#                               # the point is "still runs and reports",
#                               # not stable numbers)
#
# Output: BENCH_identify.json — one object per benchmark with ns/op,
# B/op, allocs/op, and comparisons/op. BENCH_query.json — one object per
# query benchmark with ns/op, QPS, p50/p99 microseconds, and allocs/op,
# split indexed vs scan. BENCH_cache.json — the served-query cache
# benchmarks (zipfian replay under concurrent feed ingest), cached vs
# uncached, with QPS, hit rate, and the derived speedup.
# BENCH_window.json — the bounded-memory soak (retirement window on vs
# off): heap at mid-stream and stream end (the on-slope must be flat),
# resident/retired/reactivated story counts, and the query-panel tail
# latency over the soaked pipelines, with the derived p99 ratio.
# BENCH_scale.json — the GDELT-scale store benchmarks (1M/5M/10M
# snippets, tiered vs flat): ingest ns/event, post-ingest heap, and
# random-read p50/p99 (the tiered p99 is the cold-read path), with the
# derived 1M→10M heap ratios — tiered must stay flat, flat grows.
# BENCH_failover.json — the self-healing loop (one op = a full worker
# kill → quarantine → restart → readmission cycle with queries through
# every phase): availability % across the cycle (contract: 100) and the
# query p99 during the outage window.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME=""
QUERYTIME=""
CACHETIME=""
# Cluster ops are milliseconds-to-hundreds-of-milliseconds each (the
# single-node configuration stalls behind whole-corpus realigns — that
# stall is the phenomenon under measurement), so the iteration count is
# fixed instead of time-based to keep the run bounded.
SHARDTIME="-benchtime=300x"
# One failover op is a whole kill→quarantine→readmit cycle (tens of
# milliseconds of phased queries plus two health cooldowns), so the
# iteration count is fixed.
FAILTIME="-benchtime=20x"
# One soak iteration IS the measurement (a whole stream per op), so the
# iteration count is pinned; the window-query panel needs enough
# iterations for stable percentiles.
WSOAKTIME="-benchtime=1x"
WQUERYTIME="-benchtime=200x"
OUT="BENCH_identify.json"
QOUT="BENCH_query.json"
COUT="BENCH_cache.json"
SOUT="BENCH_shard.json"
WOUT="BENCH_window.json"
SCOUT="BENCH_scale.json"
FOUT="BENCH_failover.json"
if [ "${1:-}" = "--smoke" ]; then
    BENCHTIME="-benchtime=1x"
    # Queries are microseconds each; a handful of iterations still
    # finishes instantly and keeps the percentile fields meaningful.
    QUERYTIME="-benchtime=20x"
    # Enough replay iterations to warm the cache past its first misses;
    # the smoke hit rate is indicative, not gated.
    CACHETIME="-benchtime=200x"
    SHARDTIME="-benchtime=30x"
    FAILTIME="-benchtime=3x"
    WQUERYTIME="-benchtime=50x"
    # Shrink the soak stream: the unbounded arm is superlinear in it by
    # design, and the smoke only proves the benchmarks still run.
    STORYPIVOT_SOAK_EVENTS=4000
    export STORYPIVOT_SOAK_EVENTS
    # Shrink the scale base unit (the "1M" label) to a few thousand
    # events; the smoke proves the benchmarks run and report, not shape.
    STORYPIVOT_SCALE_EVENTS="${STORYPIVOT_SCALE_EVENTS:-5000}"
    export STORYPIVOT_SCALE_EVENTS
    OUT="BENCH_identify.smoke.json"
    QOUT="BENCH_query.smoke.json"
    COUT="BENCH_cache.smoke.json"
    SOUT="BENCH_shard.smoke.json"
    WOUT="BENCH_window.smoke.json"
    SCOUT="BENCH_scale.smoke.json"
    FOUT="BENCH_failover.smoke.json"
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

# shellcheck disable=SC2086  # BENCHTIME is deliberately word-split
go test -run '^$' -bench 'BenchmarkE1_PerformanceVsEvents(Complete|Temporal|TemporalSketch)$' \
    -benchmem $BENCHTIME . | tee "$TMP"

# Parse "BenchmarkName-N  iters  123 ns/op  45 B/op  6 allocs/op  7 comparisons/op ..."
# into JSON. Metrics appear as value/unit pairs after the iteration count.
awk '
/^BenchmarkE1_PerformanceVsEvents/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = bytes = allocs = cmps = "null"
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")          ns = $i
        if ($(i + 1) == "B/op")           bytes = $i
        if ($(i + 1) == "allocs/op")      allocs = $i
        if ($(i + 1) == "comparisons/op") cmps = $i
    }
    rows[++n] = sprintf("  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"comparisons_per_op\": %s}", name, ns, bytes, allocs, cmps)
}
END {
    print "["
    for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
    print "]"
}
' "$TMP" > "$OUT"

echo "==> wrote $OUT"
cat "$OUT"

# --- Query serving: indexed vs full-scan ---------------------------------

# shellcheck disable=SC2086  # QUERYTIME is deliberately word-split
go test -run '^$' -bench 'BenchmarkQuery(Search|Entity|Timeline)(Indexed|Scan)$' \
    -benchmem $QUERYTIME . | tee "$TMP"

awk '
/^BenchmarkQuery/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = bytes = allocs = p50 = p99 = "null"
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")     ns = $i
        if ($(i + 1) == "B/op")      bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
        if ($(i + 1) == "p50_us")    p50 = $i
        if ($(i + 1) == "p99_us")    p99 = $i
    }
    qps = (ns == "null" || ns + 0 == 0) ? "null" : sprintf("%.1f", 1e9 / ns)
    rows[++n] = sprintf("  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"qps\": %s, \"p50_us\": %s, \"p99_us\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, qps, p50, p99, bytes, allocs)
}
END {
    print "["
    for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
    print "]"
}
' "$TMP" > "$QOUT"

echo "==> wrote $QOUT"
cat "$QOUT"

# --- Served queries: result cache on vs off ------------------------------

# shellcheck disable=SC2086  # CACHETIME is deliberately word-split
go test -run '^$' -bench 'BenchmarkSearch(Cached|Uncached)$' \
    -benchmem $CACHETIME ./internal/server | tee "$TMP"

awk '
/^BenchmarkSearch/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = bytes = allocs = hitrate = "null"
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")     ns = $i
        if ($(i + 1) == "B/op")      bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
        if ($(i + 1) == "hitrate")   hitrate = $i
    }
    qps = (ns == "null" || ns + 0 == 0) ? "null" : sprintf("%.1f", 1e9 / ns)
    if (name ~ /Uncached/) uncached_ns = ns; else cached_ns = ns
    rows[++n] = sprintf("  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"qps\": %s, \"hit_rate\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, qps, hitrate, bytes, allocs)
}
END {
    speedup = (cached_ns != "" && uncached_ns != "" && cached_ns + 0 > 0) \
        ? sprintf("%.2f", uncached_ns / cached_ns) : "null"
    rows[++n] = sprintf("  {\"cached_vs_uncached_speedup\": %s}", speedup)
    print "["
    for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
    print "]"
}
' "$TMP" > "$COUT"

echo "==> wrote $COUT"
cat "$COUT"

# --- Scatter-gather sharding: 1/2/4 shards vs single node ----------------
#
# Saturating mixed query+ingest workload (cache off everywhere). The
# headline number is shards4_vs_single_qps — the router over four
# workers against the bare single node on identical traffic — plus
# routed-vs-direct ingest overhead.

# shellcheck disable=SC2086  # SHARDTIME is deliberately word-split
go test -run '^$' -bench 'BenchmarkCluster(Query(Single|Shards[124])|Ingest(Direct|Routed))$' \
    $SHARDTIME ./internal/cluster | tee "$TMP"

awk '
/^BenchmarkCluster/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = p50 = p99 = "null"
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")  ns = $i
        if ($(i + 1) == "p50_us") p50 = $i
        if ($(i + 1) == "p99_us") p99 = $i
    }
    qps = (ns == "null" || ns + 0 == 0) ? "null" : sprintf("%.1f", 1e9 / ns)
    if (name ~ /QuerySingle/)   single_ns = ns
    if (name ~ /QueryShards4/)  shards4_ns = ns
    if (name ~ /IngestDirect/)  direct_ns = ns
    if (name ~ /IngestRouted/)  routed_ns = ns
    rows[++n] = sprintf("  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"qps\": %s, \"p50_us\": %s, \"p99_us\": %s}", name, ns, qps, p50, p99)
}
END {
    speedup = (single_ns != "" && shards4_ns != "" && shards4_ns + 0 > 0) \
        ? sprintf("%.2f", single_ns / shards4_ns) : "null"
    overhead = (direct_ns != "" && routed_ns != "" && direct_ns + 0 > 0) \
        ? sprintf("%.2f", routed_ns / direct_ns) : "null"
    rows[++n] = sprintf("  {\"shards4_vs_single_qps\": %s, \"ingest_routed_vs_direct\": %s}", speedup, overhead)
    print "["
    for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
    print "]"
}
' "$TMP" > "$SOUT"

echo "==> wrote $SOUT"
cat "$SOUT"

# --- Self-healing failover: availability and outage tail latency ---------
#
# One iteration is a full kill → passive detection → quarantine →
# restart → half-open readmission cycle over three workers, querying
# through every phase. The availability contract is 100% (outages
# degrade to partial responses, never errors); outage_p99_us is the
# query tail while the dead member is being detected and skipped.

# shellcheck disable=SC2086  # FAILTIME is deliberately word-split
go test -run '^$' -bench 'BenchmarkFailoverAvailability$' \
    $FAILTIME ./internal/cluster | tee "$TMP"

awk '
/^BenchmarkFailoverAvailability/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = avail = p99 = "null"
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")     ns = $i
        if ($(i + 1) == "avail_pct") avail = $i
        if ($(i + 1) == "p99_us")    p99 = $i
    }
    rows[++n] = sprintf("  {\"benchmark\": \"%s\", \"ns_per_cycle\": %s, \"availability_pct\": %s, \"outage_p99_us\": %s}", name, ns, avail, p99)
}
END {
    print "["
    for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
    print "]"
}
' "$TMP" > "$FOUT"

echo "==> wrote $FOUT"
cat "$FOUT"

# --- Bounded-memory window: soak + query tail latency ---------------------
#
# The soak drives a compressed-clock two-year stream through the pipeline
# with the retirement window on and off; the headline numbers are the
# heap growth between mid-stream and stream end per arm (flat on, growing
# off) and the query-panel p99 ratio off/on over the soaked pipelines.

# shellcheck disable=SC2086  # WSOAKTIME/WQUERYTIME are deliberately word-split
go test -run '^$' -bench 'BenchmarkWindowSoak(On|Off)$' \
    -timeout 30m $WSOAKTIME . | tee "$TMP"
go test -run '^$' -bench 'BenchmarkWindowQuery(On|Off)$' \
    -timeout 30m $WQUERYTIME . | tee -a "$TMP"

awk '
/^BenchmarkWindow/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = mid = end = res = ret = rea = p50 = p99 = "null"
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op")       ns = $i
        if ($(i + 1) == "heap_mid_MB") mid = $i
        if ($(i + 1) == "heap_end_MB") end = $i
        if ($(i + 1) == "resident")    res = $i
        if ($(i + 1) == "retired")     ret = $i
        if ($(i + 1) == "reactivated") rea = $i
        if ($(i + 1) == "p50_us")      p50 = $i
        if ($(i + 1) == "p99_us")      p99 = $i
    }
    if (name ~ /SoakOn/)   { on_mid = mid; on_end = end }
    if (name ~ /SoakOff/)  { off_mid = mid; off_end = end }
    if (name ~ /QueryOn/)  on_p99 = p99
    if (name ~ /QueryOff/) off_p99 = p99
    if (name ~ /Soak/)
        rows[++n] = sprintf("  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"heap_mid_mb\": %s, \"heap_end_mb\": %s, \"resident_stories\": %s, \"retired_total\": %s, \"reactivated_total\": %s}", name, ns, mid, end, res, ret, rea)
    else
        rows[++n] = sprintf("  {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"p50_us\": %s, \"p99_us\": %s}", name, ns, p50, p99)
}
END {
    slope_on = (on_mid != "" && on_mid != "null") ? sprintf("%.2f", on_end - on_mid) : "null"
    slope_off = (off_mid != "" && off_mid != "null") ? sprintf("%.2f", off_end - off_mid) : "null"
    ratio = (on_p99 != "" && on_p99 != "null" && on_p99 + 0 > 0) ? sprintf("%.2f", off_p99 / on_p99) : "null"
    rows[++n] = sprintf("  {\"heap_growth_on_mb\": %s, \"heap_growth_off_mb\": %s, \"query_p99_off_vs_on\": %s}", slope_on, slope_off, ratio)
    print "["
    for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
    print "]"
}
' "$TMP" > "$WOUT"

echo "==> wrote $WOUT"
cat "$WOUT"

# --- GDELT scale: tiered vs flat store at 1M/5M/10M snippets --------------
#
# One iteration ingests the whole corpus into a fresh store and then
# probes random reads across the full ID space. The headline numbers are
# the 1M→10M heap ratios per arm: the tiered store's heap must stay flat
# (hot tier + chunk metadata only; warm chunks are mmap'd and cold
# chunks live on disk) while the flat store grows with the corpus.

go test -run '^$' -bench 'BenchmarkScale(Tiered|Flat)(1M|5M|10M)$' \
    -timeout 60m -benchtime=1x ./internal/storage | tee "$TMP"

awk '
/^BenchmarkScale/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ev = heap = p50 = p99 = mean = cold = "null"
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/event")    ev = $i
        if ($(i + 1) == "heap_MB")     heap = $i
        if ($(i + 1) == "read_us")     mean = $i
        if ($(i + 1) == "read_p50_us") p50 = $i
        if ($(i + 1) == "read_p99_us") p99 = $i
        if ($(i + 1) == "cold_chunks") cold = $i
    }
    if (name ~ /Tiered1M$/)  t1 = heap
    if (name ~ /Tiered10M$/) t10 = heap
    if (name ~ /Flat1M$/)    f1 = heap
    if (name ~ /Flat10M$/)   f10 = heap
    rows[++n] = sprintf("  {\"benchmark\": \"%s\", \"ingest_ns_per_event\": %s, \"heap_mb\": %s, \"read_us\": %s, \"read_p50_us\": %s, \"read_p99_us\": %s, \"cold_chunks\": %s}", name, ev, heap, mean, p50, p99, cold)
}
END {
    tr = (t1 != "" && t1 + 0 > 0) ? sprintf("%.2f", t10 / t1) : "null"
    fr = (f1 != "" && f1 + 0 > 0) ? sprintf("%.2f", f10 / f1) : "null"
    rows[++n] = sprintf("  {\"tiered_heap_10m_vs_1m\": %s, \"flat_heap_10m_vs_1m\": %s}", tr, fr)
    print "["
    for (i = 1; i <= n; i++) print rows[i] (i < n ? "," : "")
    print "]"
}
' "$TMP" > "$SCOUT"

echo "==> wrote $SCOUT"
cat "$SCOUT"
