#!/bin/sh
# Feed resilience demo: runs storypivot-server with a replayed corpus
# served as continuous feeds, injects deterministic failures into the
# first source (-feed-flaky-*), and tails GET /api/feeds so the health
# transitions are visible: healthy -> degraded (backoff retries) ->
# quarantined (breaker open) -> healthy (half-open probe succeeded).
# Ends with a SIGTERM to show the graceful drain path (healthz flips to
# 503, cursors and the pipeline checkpoint are persisted).
#
# Usage: scripts/feed_demo.sh  (or: make feed-demo)
set -eu

cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:8123}
WATCH_SECS=${WATCH_SECS:-12}
STATE=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$STATE"
}
trap cleanup EXIT INT TERM

echo "==> building server"
go build -o "$STATE/storypivot-server" ./cmd/storypivot-server

echo "==> starting server on $ADDR (flaky source: first 4 fetches fail, then every 6th)"
"$STATE/storypivot-server" -addr "$ADDR" \
    -feed-replay 2000 -feed-replay-sources 3 \
    -feed-flaky-first 4 -feed-flaky-every 6 \
    -feed-backoff-base 50ms -feed-backoff-cap 400ms \
    -feed-breaker-threshold 3 -feed-breaker-cooldown 1s \
    -feed-batch 32 -feed-poll 200ms -feed-checkpoint-every 2s \
    -feed-state-dir "$STATE/feed" &
PID=$!

for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.2
done

echo "==> watching /api/feeds for ${WATCH_SECS}s (printing state transitions)"
LAST=""
i=0
while [ "$i" -lt $((WATCH_SECS * 5)) ]; do
    SNAP=$(curl -fsS "http://$ADDR/api/feeds" 2>/dev/null |
        tr -d ' ",' | grep -E '^(source|state|breaker):' |
        paste -d' ' - - - || true)
    if [ -n "$SNAP" ] && [ "$SNAP" != "$LAST" ]; then
        echo "--- $(date +%H:%M:%S)"
        echo "$SNAP"
        LAST=$SNAP
    fi
    sleep 0.2
    i=$((i + 1))
done

echo "==> healthz before drain:"
curl -sS "http://$ADDR/healthz" || true
echo

echo "==> SIGTERM (graceful drain: feeds checkpoint, pipeline closes)"
kill -TERM "$PID"
wait "$PID" || true
PID=""

echo "==> persisted feed state:"
ls -l "$STATE/feed" "$STATE/feed/dlq" 2>/dev/null || true
echo "==> cursors:"
cat "$STATE/feed/cursors.json" 2>/dev/null || echo "(none)"
echo
echo "==> demo done"
