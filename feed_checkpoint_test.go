package storypivot

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/feed"
)

// throttledPipe slows each ingest so the feed is reliably mid-burst
// when the test stops the manager. Embedding *Pipeline promotes
// WriteCheckpoint, so the manager still checkpoints the sink.
type throttledPipe struct {
	*Pipeline
	delay time.Duration
}

func (tp throttledPipe) Ingest(sn *Snippet) error {
	time.Sleep(tp.delay)
	return tp.Pipeline.Ingest(sn)
}

// TestFeedCheckpointRestoreUnderIngest is the crash-consistency test
// for the feed subsystem against a real storage-backed pipeline:
// runners are mid-burst while the periodic checkpointer concurrently
// writes pipeline checkpoints and feed cursors; the manager is then
// stopped mid-stream, the process "restarts" (new pipeline restored
// from disk, new manager from the cursor file), and the stream is
// finished. At-least-once redelivery of the unacknowledged tail must
// be collapsed by store/engine dedup — the restored pipeline ends with
// exactly one copy of every snippet, and the query index still matches
// the full-scan oracle.
func TestFeedCheckpointRestoreUnderIngest(t *testing.T) {
	dir := t.TempDir()
	cursorPath := filepath.Join(dir, "feed-cursors.json")
	corpus := datagen.Generate(experiments.CorpusScale(1500, 4, 31))
	total := len(corpus.Snippets)

	cfg := feed.Config{
		BackoffBase:     time.Millisecond,
		BackoffCap:      4 * time.Millisecond,
		FetchTimeout:    2 * time.Second,
		BatchSize:       16,
		QueueDepth:      32,
		PollInterval:    3 * time.Millisecond,
		CursorPath:      cursorPath,
		CheckpointEvery: 10 * time.Millisecond, // fires repeatedly mid-burst
	}
	addReplays := func(m *feed.Manager) {
		t.Helper()
		for src, sns := range corpus.BySource() {
			if err := m.Add(feed.NewReplay(src, sns, 0)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: ingest part of the corpus, checkpointing concurrently,
	// then stop mid-stream.
	p1, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := feed.NewManager(throttledPipe{p1, 200 * time.Microsecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addReplays(m1)
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && p1.Engine().Ingested() < 300 {
		time.Sleep(time.Millisecond)
	}
	if got := p1.Engine().Ingested(); got < 300 {
		t.Fatalf("phase 1 stalled at %d ingested", got)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	phase1 := p1.Engine().Ingested()
	if phase1 >= uint64(total) {
		t.Fatalf("phase 1 finished the whole corpus (%d); cannot exercise restart", phase1)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash consistency: atomic publication never leaves temp files, for
	// either the pipeline checkpoint or the cursor file.
	for _, tmp := range []string{filepath.Join(dir, "checkpoint.json.tmp"), cursorPath + ".tmp"} {
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Fatalf("temp file %s survived (err=%v)", tmp, err)
		}
	}
	if _, err := os.Stat(cursorPath); err != nil {
		t.Fatalf("cursor file not published: %v", err)
	}

	// Phase 2: restart from disk and finish the stream.
	p2, err := New(WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Engine().Ingested(); got != phase1 {
		t.Fatalf("restored pipeline has %d snippets, phase 1 acknowledged %d", got, phase1)
	}
	m2, err := feed.NewManager(p2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addReplays(m2)
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m2.CaughtUp() && p2.Engine().Ingested() == uint64(total) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	// Zero duplicate stories: every corpus snippet counted exactly once
	// despite the redelivered tail (store dedup turned those into acks).
	if got := p2.Engine().Ingested(); got != uint64(total) {
		t.Fatalf("after restart: ingested %d, want %d", got, total)
	}
	var redelivered uint64
	for _, st := range m2.Status() {
		redelivered += st.Duplicates
		if st.IngestErrors != 0 {
			t.Fatalf("source %s had %d ingest errors", st.Source, st.IngestErrors)
		}
	}
	if int(phase1)+int(redeliveredPlusFresh(m2))-int(redelivered) != total {
		t.Fatalf("accounting: phase1 %d + phase2 accepted %d != total %d (dups %d)",
			phase1, redeliveredPlusFresh(m2)-redelivered, total, redelivered)
	}

	// The restored-and-extended pipeline still answers queries
	// identically to the full-scan oracle.
	entities := panelEntities(corpus, 8)
	queries := panelQueries(corpus, 6)
	comparePanel(t, p2, entities, queries, "after feed restart")
}

// redeliveredPlusFresh sums phase-2 sink deliveries (accepted +
// duplicate-acknowledged) across sources.
func redeliveredPlusFresh(m *feed.Manager) uint64 {
	var n uint64
	for _, st := range m.Status() {
		n += st.Snippets + st.Duplicates
	}
	return n
}
