package storypivot

import (
	"strings"
	"testing"
	"time"
)

func TestPipelineWithKnowledgeBase(t *testing.T) {
	p, err := New(WithKnowledgeBase(SeedKnowledgeBase()), WithRefinement(false))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for _, d := range mh17Docs() {
		if _, err := p.AddDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	if p.KnowledgeBase() == nil {
		t.Fatal("KnowledgeBase() nil after WithKnowledgeBase")
	}
	multi := p.Result().MultiSource()
	if len(multi) == 0 {
		t.Fatal("no multi-source story")
	}
	ctx := p.Context(multi[0])
	if ctx == nil || len(ctx.Known) == 0 {
		t.Fatalf("Context = %+v", ctx)
	}
	// The KB-derived gazetteer annotated Ukraine.
	foundUKR := false
	for _, r := range ctx.Known {
		if r.ID == "UKR" {
			foundUKR = true
			if r.Abstract == "" {
				t.Error("UKR record has no abstract")
			}
		}
	}
	if !foundUKR {
		t.Fatalf("UKR not in story context: %+v", ctx.Known)
	}
	if p.Context(nil) != nil {
		t.Error("Context(nil) should be nil")
	}
}

func TestPipelineWithoutKBContextNil(t *testing.T) {
	p, _ := New()
	defer p.Close()
	p.AddDocument(mh17Docs()[0])
	if p.Context(p.Result().Integrated()[0]) != nil {
		t.Fatal("Context without KB should be nil")
	}
	if p.KnowledgeBase() != nil {
		t.Fatal("KnowledgeBase without option should be nil")
	}
}

func TestLoadKnowledgeBaseJSONL(t *testing.T) {
	jsonl := `{"id":"ACME","label":"Acme Corp","type":"company","aliases":["acme corporation"]}`
	k, n, err := LoadKnowledgeBase(strings.NewReader(jsonl))
	if err != nil || n != 1 {
		t.Fatalf("load: n=%d err=%v", n, err)
	}
	p, err := New(WithKnowledgeBase(k))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sns, err := p.AddDocument(&Document{
		Source: "wire", Published: time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC),
		Title: "Acme Corporation Announces Layoffs",
		Body:  "Acme Corp said it would cut jobs across its divisions.",
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sn := range sns {
		if sn.HasEntity("ACME") {
			found = true
		}
	}
	if !found {
		t.Fatal("KB-derived gazetteer did not annotate ACME")
	}
}

func TestSourceProfilesFromPipeline(t *testing.T) {
	p, _ := New()
	defer p.Close()
	for _, d := range mh17Docs() {
		p.AddDocument(d)
	}
	profiles := p.SourceProfiles()
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	if profiles[0].Source != "nyt" || profiles[1].Source != "wsj" {
		t.Fatalf("profiles not sorted: %v, %v", profiles[0].Source, profiles[1].Source)
	}
	for _, pr := range profiles {
		if pr.Snippets == 0 || pr.Stories == 0 {
			t.Errorf("empty profile: %+v", pr)
		}
	}
	ranked := p.RankedSources()
	if len(ranked) != 2 {
		t.Fatalf("ranked = %d", len(ranked))
	}
}
