package storypivot

import (
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

// TestQueryIngestRace hammers the indexed query path while the sharded
// engine is ingesting from every source concurrently, one source is
// removed mid-stream, and the tombstone compactor sweeps in a tight
// loop. Run under -race it proves the lock discipline: queries take the
// index read lock only, publishes and sweeps serialise behind the write
// lock, and no path reads engine state without the engine's own locks.
func TestQueryIngestRace(t *testing.T) {
	corpus := datagen.Generate(experiments.CorpusScale(800, 4, 29))
	p, err := New(WithRefinement(true), WithAutoAlign(64))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	bySource := corpus.BySource()
	ent := corpus.Snippets[0].Entities[0]
	query := corpus.Snippets[0].Terms[0].Token
	var victim SourceID
	for src := range bySource {
		victim = src
		break
	}

	// Ingest shards: one writer per source; the victim source is removed
	// halfway through its own stream (and keeps ingesting after, which
	// re-registers it — removal under fire is the point).
	var writers sync.WaitGroup
	for src, sns := range bySource {
		src, sns := src, sns
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i, sn := range sns {
				if err := p.Ingest(sn); err != nil {
					t.Errorf("ingest %s: %v", src, err)
					return
				}
				if src == victim && i == len(sns)/2 {
					p.RemoveSource(victim)
				}
			}
		}()
	}

	// Query hammers and a forced sweeper run until the writers finish.
	done := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				p.SearchN(query, 0, 10)
				p.StoriesByEntityN(ent, 0, -1)
				p.TimelineN(ent, 5, 20)
				p.Index().Stats()
			}
		}()
	}
	readers.Add(1)
	go func() {
		// Compactor stand-in: the background goroutine ticks too slowly
		// for a short test, so force sweeps in a tight loop instead.
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			p.Index().SweepIfStale()
			p.Index().Sweep()
		}
	}()

	writers.Wait()
	close(done)
	readers.Wait()

	// Sanity: the surviving state still answers queries consistently.
	p.Result()
	got, total := p.TimelineN(ent, 0, -1)
	if total != len(got) {
		t.Fatalf("timeline total %d != len %d", total, len(got))
	}
}
