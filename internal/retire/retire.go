// Package retire is StoryPivot's story lifecycle subsystem: it bounds
// the steady-state memory of an engine running against an infinite feed
// by retiring cold stories — no new evidence for a configurable window W
// of *event* time — into a durable on-disk archive, and reactivating
// them when new evidence arrives that fingerprints back to them.
//
// The manager implements the stream engine's Retirer hook. The protocol
// per retirement pass (driven by the engine under its own lock, at
// alignment-publish time) is snapshot → archive (fsynced) → detach:
// a story's bytes are durable before its live state is released, so a
// crash at any point loses at most a retirement, never a story. The
// resident footprint per archived story is a small metadata record —
// identity, extent, entity/term fingerprint, disk location — while the
// full state (members, aggregate vectors, Gen) lives in the archive and
// is decoded only on reactivation.
//
// Reactivation is evidence-driven: every ingested snippet consults a
// fingerprint index (time-bucketed, so the common no-match case is one
// map probe) for archived stories whose padded extent covers the snippet
// timestamp and whose entity (or, for entity-free stories, descriptive
// term) fingerprint overlaps it. Matching stories return as whole
// retirement groups — the alignment component they were evicted with —
// restored under their original StoryID with a bumped Gen.
package retire

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/event"
	"repro/internal/storage"
	"repro/internal/vocab"
)

// Config parameterises the retirement policy.
type Config struct {
	// Window is W: a story is cold once the event-time watermark has
	// advanced more than Window past the story's last evidence. 0
	// disables retirement.
	Window time.Duration
	// Grace is the reactivation holdback: a story reactivated at
	// watermark t is not retired again before t+Grace, which stops a
	// fingerprint false positive from thrashing the archive on every
	// upsert of a warm neighbour. Defaults to Window/4.
	Grace time.Duration
	// MinResident pauses retirement while fewer stories are resident —
	// there is no memory pressure to relieve below it.
	MinResident int
	// CheckEvery runs the retirement walk only every n-th alignment
	// publish (default 1: every publish).
	CheckEvery int
	// Dir is the archive directory.
	Dir string

	// IdentWindow is the identification window ω: same-source
	// reactivation triggers when a snippet lands within ω of an archived
	// story's extent (mirroring the identifier's candidate window).
	IdentWindow time.Duration
	// AlignSlack is the aligner's temporal slack: cross-source
	// reactivation triggers within it (mirroring the alignment
	// candidate filter).
	AlignSlack time.Duration
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Window < 0 || c.Grace < 0 {
		return fmt.Errorf("retire: window and grace must be >= 0")
	}
	if c.Window > 0 && c.Dir == "" {
		return fmt.Errorf("retire: archive directory required")
	}
	return nil
}

// member is the resident footprint of one archived story.
type member struct {
	meta  storage.ArchivedStoryMeta
	ents  []uint32 // sorted entity symbols (re-interned for this process)
	terms []uint32 // sorted top-term symbols (entity-free stories only)
}

// group is one retirement set: the alignment component retired together,
// reactivated together.
type group struct {
	id      uint64
	members []member
}

// Manager owns the archive, the fingerprint index over archived stories,
// and the policy state. It is safe for concurrent use; its mutex is a
// leaf in the engine's lock order (engine.mu → shard.mu → retire.mu is
// never held in reverse).
type Manager struct {
	mu  sync.Mutex
	cfg Config

	arch    *storage.Archive
	groups  map[uint64]*group
	byStory map[event.StoryID]uint64 // story → owning group
	// buckets index groups by coarse time: a group appears in every
	// bucket its members' (pad-widened) extents touch, so a snippet
	// lookup probes exactly one bucket.
	buckets     map[int64][]uint64
	bucketWidth time.Duration
	deadGroups  int // removed groups still referenced by buckets

	nextGroup uint64
	pending   map[uint64][]storage.ArchivedStoryMeta // ticket → metas between Archive and Commit

	// grace holds, per reactivated story, the watermark before which it
	// may not be retired again.
	grace map[event.StoryID]time.Time

	watermark time.Time
	passes    int

	// Cumulative totals mirrored into obs counters, kept locally so the
	// window view can report them per-manager.
	retired       uint64
	reactivated   uint64
	archivedBytes uint64
	resident      int
}

// Open opens (creating if needed) the archive in cfg.Dir and rebuilds
// the fingerprint index from the intact records on disk. For stories
// archived more than once (retire → reactivate → retire), the latest
// record wins. The caller reconciles the index against its checkpoint
// (Reconcile) or discards it (Reset) before serving.
func Open(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Grace <= 0 {
		cfg.Grace = cfg.Window / 4
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 1
	}
	arch, metas, err := storage.OpenArchive(cfg.Dir)
	if err != nil {
		return nil, err
	}
	bw := cfg.AlignSlack
	if cfg.IdentWindow > bw {
		bw = cfg.IdentWindow
	}
	if bw <= 0 {
		bw = 24 * time.Hour
	}
	m := &Manager{
		cfg:         cfg,
		arch:        arch,
		groups:      make(map[uint64]*group),
		byStory:     make(map[event.StoryID]uint64),
		buckets:     make(map[int64][]uint64),
		bucketWidth: bw,
		pending:     make(map[uint64][]storage.ArchivedStoryMeta),
		grace:       make(map[event.StoryID]time.Time),
	}
	// Latest record per story wins; groups re-form from the surviving
	// records' group tickets.
	latest := make(map[event.StoryID]storage.ArchivedStoryMeta, len(metas))
	order := make([]event.StoryID, 0, len(metas))
	for _, meta := range metas {
		if _, seen := latest[meta.ID]; !seen {
			order = append(order, meta.ID)
		}
		latest[meta.ID] = meta
		if meta.Group >= m.nextGroup {
			m.nextGroup = meta.Group + 1
		}
	}
	for _, sid := range order {
		m.indexStory(latest[sid])
	}
	metArchived.Set(int64(len(m.byStory)))
	return m, nil
}

// indexStory adds one archived-story record to the fingerprint index
// (under mu, or during single-threaded Open).
func (m *Manager) indexStory(meta storage.ArchivedStoryMeta) {
	g := m.groups[meta.Group]
	if g == nil {
		g = &group{id: meta.Group}
		m.groups[meta.Group] = g
	}
	mem := member{meta: meta}
	mem.ents = make([]uint32, len(meta.Entities))
	for i, s := range meta.Entities {
		mem.ents[i] = vocab.Entities.ID(s)
	}
	sort.Slice(mem.ents, func(i, j int) bool { return mem.ents[i] < mem.ents[j] })
	if len(meta.Entities) == 0 {
		mem.terms = make([]uint32, len(meta.TopTerms))
		for i, s := range meta.TopTerms {
			mem.terms[i] = vocab.Terms.ID(s)
		}
		sort.Slice(mem.terms, func(i, j int) bool { return mem.terms[i] < mem.terms[j] })
	}
	g.members = append(g.members, mem)
	m.byStory[meta.ID] = meta.Group
	m.bucketGroup(g.id, meta)
}

// bucketGroup registers the group in every time bucket the member's
// pad-widened extent touches.
func (m *Manager) bucketGroup(gid uint64, meta storage.ArchivedStoryMeta) {
	pad := m.bucketWidth
	lo := meta.Start.Add(-pad).UnixNano() / int64(m.bucketWidth)
	hi := meta.End.Add(pad).UnixNano() / int64(m.bucketWidth)
	for b := lo; b <= hi; b++ {
		ids := m.buckets[b]
		if n := len(ids); n > 0 && ids[n-1] == gid {
			continue
		}
		m.buckets[b] = append(ids, gid)
	}
}

// compactBuckets rebuilds the bucket index once dead references
// dominate; the long-running ingest path otherwise scans ever-growing
// bucket lists.
func (m *Manager) compactBuckets() {
	if m.deadGroups <= len(m.groups)+16 {
		return
	}
	m.buckets = make(map[int64][]uint64)
	for _, g := range m.groups {
		for _, mem := range g.members {
			m.bucketGroup(g.id, mem.meta)
		}
	}
	m.deadGroups = 0
}

// Due reports whether a retirement walk should run now, and feeds the
// policy its inputs: the engine's resident story count and event-time
// watermark. Called on every alignment publish.
func (m *Manager) Due(resident int, watermark time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if watermark.After(m.watermark) {
		m.watermark = watermark
	}
	m.resident = resident
	metResident.Set(int64(resident))
	if m.cfg.Window <= 0 || watermark.IsZero() || resident <= m.cfg.MinResident {
		return false
	}
	m.passes++
	if m.passes < m.cfg.CheckEvery {
		return false
	}
	m.passes = 0
	metPasses.Inc()
	return true
}

// Cold reports whether a story with the given last-evidence time is
// retirable at the given watermark: outside the window and past any
// reactivation grace.
func (m *Manager) Cold(id event.StoryID, end, watermark time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.Window <= 0 || watermark.Sub(end) <= m.cfg.Window {
		return false
	}
	if until, held := m.grace[id]; held {
		if watermark.Before(until) {
			return false
		}
		delete(m.grace, id)
	}
	return true
}

// Archive durably appends a retirement group and returns a ticket. The
// caller detaches the live stories only after Archive returns, then
// settles the ticket with Commit (members actually detached) or Abort.
func (m *Manager) Archive(stories []*event.Story, watermark time.Time) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ticket := m.nextGroup
	m.nextGroup++
	metas, n, err := m.arch.AppendGroup(ticket, watermark, stories)
	if err != nil {
		return 0, err
	}
	m.pending[ticket] = metas
	m.archivedBytes += uint64(n)
	metArchivedBytes.Add(uint64(n))
	return ticket, nil
}

// Commit indexes the members of a ticket that were actually detached
// from the engine. Members that raced new evidence between snapshot and
// detach stay resident; their on-disk record is superseded by the next
// retirement (latest record wins) and ignored by checkpoint reconcile.
func (m *Manager) Commit(ticket uint64, retired []event.StoryID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	metas := m.pending[ticket]
	delete(m.pending, ticket)
	keep := make(map[event.StoryID]bool, len(retired))
	for _, id := range retired {
		keep[id] = true
	}
	for _, meta := range metas {
		if !keep[meta.ID] {
			continue
		}
		// A story being re-archived replaces its older record.
		m.removeStory(meta.ID)
		m.indexStory(meta)
		delete(m.grace, meta.ID)
		m.retired++
		metRetired.Inc()
	}
	metArchived.Set(int64(len(m.byStory)))
	m.compactBuckets()
}

// Abort discards a ticket whose group could not be detached at all; the
// orphaned disk records are reconciled away on the next open.
func (m *Manager) Abort(ticket uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.pending, ticket)
}

// TakeForSnippet consults the fingerprint index for archived stories the
// given snippet is evidence for, removes every matching group from the
// index, and returns the fully restored stories (original StoryID,
// bumped Gen). The caller re-adopts them into the engine. A nil return
// (the overwhelmingly common case) costs one bucket probe.
func (m *Manager) TakeForSnippet(sn *event.Snippet) []*event.Story {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.groups) == 0 {
		return nil
	}
	b := sn.Timestamp.UnixNano() / int64(m.bucketWidth)
	var out []*event.Story
	for _, gid := range m.buckets[b] {
		g := m.groups[gid]
		if g == nil || !m.groupMatches(g, sn) {
			continue
		}
		until := m.watermark
		if sn.Timestamp.After(until) {
			until = sn.Timestamp
		}
		until = until.Add(m.cfg.Grace)
		for _, mem := range g.members {
			st, err := m.arch.ReadStory(mem.meta.Loc)
			if err != nil {
				metReactivateErrors.Inc()
				continue
			}
			st.BumpGen()
			m.grace[st.ID] = until
			out = append(out, st)
			m.reactivated++
			metReactivated.Inc()
		}
		m.dropGroup(gid)
	}
	if out != nil {
		metArchived.Set(int64(len(m.byStory)))
		m.compactBuckets()
	}
	return out
}

// groupMatches reports whether the snippet is plausible new evidence for
// any member: timestamp within the member's padded extent (ω for the
// snippet's own source, alignment slack across sources) and a
// fingerprint overlap on entities (or top terms for entity-free pairs).
func (m *Manager) groupMatches(g *group, sn *event.Snippet) bool {
	for i := range g.members {
		mem := &g.members[i]
		win := m.cfg.AlignSlack
		if mem.meta.Source == sn.Source {
			win = m.cfg.IdentWindow
		}
		if win <= 0 {
			continue
		}
		if sn.Timestamp.Before(mem.meta.Start.Add(-win)) || sn.Timestamp.After(mem.meta.End.Add(win)) {
			continue
		}
		if len(mem.ents) > 0 {
			for _, e := range sn.EntityIDs {
				if containsSym(mem.ents, e) {
					return true
				}
			}
			continue
		}
		for _, tw := range sn.TermIDs {
			if containsSym(mem.terms, tw.ID) {
				return true
			}
		}
	}
	return false
}

func containsSym(sorted []uint32, x uint32) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= x })
	return i < len(sorted) && sorted[i] == x
}

// dropGroup removes a group from the index (buckets keep stale refs
// until compaction).
func (m *Manager) dropGroup(gid uint64) {
	g := m.groups[gid]
	if g == nil {
		return
	}
	for _, mem := range g.members {
		delete(m.byStory, mem.meta.ID)
	}
	delete(m.groups, gid)
	m.deadGroups++
}

// removeStory prunes one story from its group (under mu).
func (m *Manager) removeStory(sid event.StoryID) {
	gid, ok := m.byStory[sid]
	if !ok {
		return
	}
	g := m.groups[gid]
	if g != nil {
		kept := g.members[:0]
		for _, mem := range g.members {
			if mem.meta.ID != sid {
				kept = append(kept, mem)
			}
		}
		g.members = kept
		if len(g.members) == 0 {
			delete(m.groups, gid)
			m.deadGroups++
		}
	}
	delete(m.byStory, sid)
}

// ForgetSource drops every archived story of a removed source from the
// index; co-grouped stories of other sources remain reactivatable.
func (m *Manager) ForgetSource(src event.SourceID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var drop []event.StoryID
	for sid, gid := range m.byStory {
		g := m.groups[gid]
		if g == nil {
			continue
		}
		for _, mem := range g.members {
			if mem.meta.ID == sid && mem.meta.Source == src {
				drop = append(drop, sid)
			}
		}
	}
	for _, sid := range drop {
		m.removeStory(sid)
	}
	metArchived.Set(int64(len(m.byStory)))
	m.compactBuckets()
}

// ArchivedIDs returns the archived story IDs of one source, sorted —
// the engine embeds them in checkpoints so a restore knows which
// assignment entries not to rebuild stories for.
func (m *Manager) ArchivedIDs(src event.SourceID) []event.StoryID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []event.StoryID
	for sid, gid := range m.byStory {
		g := m.groups[gid]
		if g == nil {
			continue
		}
		for _, mem := range g.members {
			if mem.meta.ID == sid && mem.meta.Source == src {
				out = append(out, sid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Has reports whether a story is currently archived. Checkpoint restore
// uses it to verify that every story the checkpoint calls archived is
// actually recoverable.
func (m *Manager) Has(sid event.StoryID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.byStory[sid]
	return ok
}

// Reconcile drops every indexed story not in keep. After a checkpoint
// restore, keep is the union of the checkpoint's archived sets: records
// for stories the checkpoint says are resident (a retirement the
// checkpoint never saw, or a reactivation it did see) are stale.
func (m *Manager) Reconcile(keep map[event.StoryID]bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var drop []event.StoryID
	for sid := range m.byStory {
		if !keep[sid] {
			drop = append(drop, sid)
		}
	}
	for _, sid := range drop {
		m.removeStory(sid)
	}
	metArchived.Set(int64(len(m.byStory)))
	m.compactBuckets()
}

// Reset discards the archive — index and segments. The pipeline calls it
// when state was rebuilt by full replay (everything resident, archive
// stale by construction) or when running without a persistent store.
func (m *Manager) Reset() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.groups = make(map[uint64]*group)
	m.byStory = make(map[event.StoryID]uint64)
	m.buckets = make(map[int64][]uint64)
	m.pending = make(map[uint64][]storage.ArchivedStoryMeta)
	m.grace = make(map[event.StoryID]time.Time)
	m.deadGroups = 0
	metArchived.Set(0)
	return m.arch.Reset()
}

// Close releases the archive.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.arch.Close()
}

// View is the observable window state served by GET /api/window and
// /healthz.
type View struct {
	Enabled       bool      `json:"enabled"`
	Window        string    `json:"window"`
	Grace         string    `json:"grace"`
	MinResident   int       `json:"min_resident"`
	Watermark     time.Time `json:"watermark"`
	Resident      int       `json:"resident_stories"`
	Archived      int       `json:"archived_stories"`
	Retired       uint64    `json:"retired_total"`
	Reactivated   uint64    `json:"reactivated_total"`
	ArchivedBytes uint64    `json:"archived_bytes_total"`
}

// Snapshot returns the current window state.
func (m *Manager) Snapshot() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return View{
		Enabled:       m.cfg.Window > 0,
		Window:        m.cfg.Window.String(),
		Grace:         m.cfg.Grace.String(),
		MinResident:   m.cfg.MinResident,
		Watermark:     m.watermark,
		Resident:      m.resident,
		Archived:      len(m.byStory),
		Retired:       m.retired,
		Reactivated:   m.reactivated,
		ArchivedBytes: m.archivedBytes,
	}
}

// Update rebases the live policy; nil fields keep their current value
// (the same partial-update shape as the quota admin endpoint).
type Update struct {
	Window      *time.Duration
	Grace       *time.Duration
	MinResident *int
}

// Apply validates and applies a live policy update. Shrinking the window
// takes effect on the next retirement walk; growing it stops retiring
// sooner but does not reactivate already-archived stories (they return
// on evidence, as always).
func (m *Manager) Apply(u Update) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := m.cfg
	if u.Window != nil {
		next.Window = *u.Window
	}
	if u.Grace != nil {
		next.Grace = *u.Grace
	}
	if u.MinResident != nil {
		if *u.MinResident < 0 {
			return fmt.Errorf("retire: min_resident must be >= 0")
		}
		next.MinResident = *u.MinResident
	}
	if next.Window < 0 || next.Grace < 0 {
		return fmt.Errorf("retire: window and grace must be >= 0")
	}
	m.cfg = next
	return nil
}
