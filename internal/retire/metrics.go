package retire

import "repro/internal/obs"

// Retirement lifecycle instrumentation. resident_stories is fed by the
// engine through Due on every alignment publish, so the gauge tracks the
// aligner's registered story count — the quantity retirement bounds.
var (
	metRetired = obs.GetCounter("storypivot_retire_retired_total",
		"stories retired to the cold archive")
	metReactivated = obs.GetCounter("storypivot_retire_reactivated_total",
		"archived stories reactivated by new evidence")
	metArchivedBytes = obs.GetCounter("storypivot_retire_archived_bytes_total",
		"bytes appended to the cold-story archive")
	metReactivateErrors = obs.GetCounter("storypivot_retire_reactivate_errors_total",
		"archived stories that failed to decode during reactivation")
	metResident = obs.GetGauge("storypivot_retire_resident_stories",
		"stories currently resident under alignment")
	metArchived = obs.GetGauge("storypivot_retire_archived_stories",
		"stories currently in the cold archive")
	metPasses = obs.GetCounter("storypivot_retire_passes_total",
		"retirement walks executed")
)
