package retire

import (
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/vocab"
)

var t0 = time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)

const (
	day   = 24 * time.Hour
	omega = 14 * day
	slack = 7 * day
)

func testConfig(dir string) Config {
	return Config{
		Window:      21 * day,
		Dir:         dir,
		IdentWindow: omega,
		AlignSlack:  slack,
	}
}

func open(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// testSnippet builds an interned snippet.
func testSnippet(id uint64, src string, ts time.Time, ents ...string) *event.Snippet {
	sn := &event.Snippet{
		ID:        event.SnippetID(id),
		Source:    event.SourceID(src),
		Timestamp: ts,
	}
	for _, e := range ents {
		sn.Entities = append(sn.Entities, event.Entity(e))
		sn.Terms = append(sn.Terms, event.Term{Token: "about_" + e, Weight: 1})
	}
	sn.Intern()
	return sn
}

// testStory builds a story over [start, end] with the given entities.
func testStory(id uint64, src string, start, end time.Time, ents ...string) *event.Story {
	sns := []*event.Snippet{testSnippet(id*100, src, start, ents...)}
	freq := make([]vocab.IDCount, 0, len(ents))
	for _, e := range ents {
		freq = append(freq, vocab.IDCount{ID: vocab.Entities.ID(e), N: 1})
	}
	var cen []vocab.IDWeight
	for _, e := range ents {
		cen = append(cen, vocab.IDWeight{ID: vocab.Terms.ID("about_" + e), W: 1})
	}
	return event.RestoreStory(event.StoryID(id), event.SourceID(src), sns, freq, cen, start, end, 1)
}

// retireStory runs one story (or group) through Archive+Commit.
func retireStory(t *testing.T, m *Manager, watermark time.Time, stories ...*event.Story) uint64 {
	t.Helper()
	ticket, err := m.Archive(stories, watermark)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]event.StoryID, len(stories))
	for i, st := range stories {
		ids[i] = st.ID
	}
	m.Commit(ticket, ids)
	return ticket
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Window: -1}).Validate(); err == nil {
		t.Error("negative window accepted")
	}
	if err := (Config{Window: day, Grace: -1, Dir: "x"}).Validate(); err == nil {
		t.Error("negative grace accepted")
	}
	if err := (Config{Window: day}).Validate(); err == nil {
		t.Error("enabled window without archive dir accepted")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
}

func TestOpenDefaults(t *testing.T) {
	m := open(t, testConfig(t.TempDir()))
	if want := 21 * day / 4; m.cfg.Grace != want {
		t.Errorf("Grace = %v, want %v (Window/4)", m.cfg.Grace, want)
	}
	if m.cfg.CheckEvery != 1 {
		t.Errorf("CheckEvery = %d, want 1", m.cfg.CheckEvery)
	}
	if m.bucketWidth != omega {
		t.Errorf("bucketWidth = %v, want max(ω, slack) = %v", m.bucketWidth, omega)
	}
}

func TestDuePolicy(t *testing.T) {
	cfg := testConfig(t.TempDir())
	cfg.MinResident = 10
	cfg.CheckEvery = 3
	m := open(t, cfg)

	if m.Due(100, time.Time{}) {
		t.Error("due with zero watermark")
	}
	if m.Due(10, t0) {
		t.Error("due at MinResident")
	}
	// Above MinResident, only every CheckEvery-th publish fires.
	fired := 0
	for i := 0; i < 6; i++ {
		if m.Due(50, t0.Add(time.Duration(i)*day)) {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d walks over 6 publishes with CheckEvery=3, want 2", fired)
	}
	// The watermark is remembered high-water.
	if got := m.Snapshot().Watermark; !got.Equal(t0.Add(5 * day)) {
		t.Errorf("watermark = %v, want %v", got, t0.Add(5*day))
	}
}

func TestCold(t *testing.T) {
	m := open(t, testConfig(t.TempDir()))
	end := t0
	if m.Cold(1, end, end.Add(21*day)) {
		t.Error("cold exactly at the window boundary")
	}
	if !m.Cold(1, end, end.Add(21*day+time.Nanosecond)) {
		t.Error("not cold past the window")
	}
	// Grace holds a reactivated story back, then clears.
	m.grace[1] = t0.Add(30 * day)
	if m.Cold(1, end, t0.Add(29*day)) {
		t.Error("cold during grace")
	}
	if !m.Cold(1, end, t0.Add(30*day)) {
		t.Error("not cold after grace expired")
	}
	if _, held := m.grace[1]; held {
		t.Error("expired grace entry not cleared")
	}
}

func TestArchiveCommitAbort(t *testing.T) {
	m := open(t, testConfig(t.TempDir()))
	a := testStory(1, "alpha", t0, t0.Add(day), "mh17")
	b := testStory(2, "beta", t0, t0.Add(day), "mh17")

	// Commit with only one member detached: the other stays unindexed.
	ticket, err := m.Archive([]*event.Story{a, b}, t0.Add(30*day))
	if err != nil {
		t.Fatal(err)
	}
	m.Commit(ticket, []event.StoryID{1})
	if !m.Has(1) || m.Has(2) {
		t.Fatalf("partial commit indexed Has(1)=%v Has(2)=%v, want true,false", m.Has(1), m.Has(2))
	}
	v := m.Snapshot()
	if v.Retired != 1 || v.Archived != 1 || v.ArchivedBytes == 0 {
		t.Fatalf("view after partial commit: %+v", v)
	}

	// Abort leaves nothing indexed.
	c := testStory(3, "alpha", t0, t0.Add(day), "gaza")
	ticket, err = m.Archive([]*event.Story{c}, t0.Add(30*day))
	if err != nil {
		t.Fatal(err)
	}
	m.Abort(ticket)
	if m.Has(3) {
		t.Error("aborted ticket left story indexed")
	}
}

func TestTakeForSnippetWindows(t *testing.T) {
	m := open(t, testConfig(t.TempDir()))
	st := testStory(1, "alpha", t0, t0.Add(2*day), "mh17")
	retireStory(t, m, t0.Add(40*day), st)

	// Cross-source evidence outside slack but inside ω must NOT match.
	if got := m.TakeForSnippet(testSnippet(10, "beta", t0.Add(2*day+10*day), "mh17")); got != nil {
		t.Fatalf("cross-source evidence beyond slack reactivated %v", got)
	}
	// Same-source evidence at the same lag (inside ω) matches.
	got := m.TakeForSnippet(testSnippet(11, "alpha", t0.Add(2*day+10*day), "mh17"))
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("same-source evidence inside ω returned %v, want story 1", got)
	}
	// Taken means gone: the next probe finds nothing.
	if m.Has(1) {
		t.Error("taken story still indexed")
	}
	if got := m.TakeForSnippet(testSnippet(12, "alpha", t0.Add(3*day), "mh17")); got != nil {
		t.Fatalf("second take returned %v", got)
	}
}

func TestTakeForSnippetRestoresState(t *testing.T) {
	m := open(t, testConfig(t.TempDir()))
	st := testStory(1, "alpha", t0, t0.Add(2*day), "mh17", "ukraine")
	gen := st.Gen()
	retireStory(t, m, t0.Add(40*day), st)
	m.Due(100, t0.Add(40*day)) // grace anchors at the current watermark

	got := m.TakeForSnippet(testSnippet(10, "alpha", t0.Add(3*day), "ukraine"))
	if len(got) != 1 {
		t.Fatalf("reactivation returned %d stories, want 1", len(got))
	}
	r := got[0]
	if r.ID != st.ID || r.Source != st.Source {
		t.Fatalf("restored identity (%d,%s), want (%d,%s)", r.ID, r.Source, st.ID, st.Source)
	}
	if r.Gen() != gen+1 {
		t.Fatalf("restored gen %d, want bumped %d", r.Gen(), gen+1)
	}
	if len(r.Snippets) != 1 || r.Snippets[0].ID != st.Snippets[0].ID {
		t.Fatalf("restored snippets %v, want original members", r.Snippets)
	}
	// Reactivation sets the grace holdback.
	if m.Cold(r.ID, r.End, t0.Add(41*day)) {
		t.Error("reactivated story cold again immediately (grace not set)")
	}
	if v := m.Snapshot(); v.Reactivated != 1 {
		t.Fatalf("view after reactivation: %+v", v)
	}
}

func TestTakeForSnippetGroup(t *testing.T) {
	m := open(t, testConfig(t.TempDir()))
	// Two stories retired as one alignment component: evidence matching
	// either member restores the whole group.
	a := testStory(1, "alpha", t0, t0.Add(2*day), "mh17")
	b := testStory(2, "beta", t0.Add(day), t0.Add(3*day), "mh17", "ukraine")
	retireStory(t, m, t0.Add(40*day), a, b)

	got := m.TakeForSnippet(testSnippet(10, "beta", t0.Add(4*day), "ukraine"))
	if len(got) != 2 {
		t.Fatalf("group reactivation returned %d stories, want both members", len(got))
	}
	if m.Has(1) || m.Has(2) {
		t.Error("taken group members still indexed")
	}
}

func TestTakeForSnippetTermFallback(t *testing.T) {
	m := open(t, testConfig(t.TempDir()))
	// An entity-free story is fingerprinted by its top terms.
	sns := []*event.Snippet{{ID: 100, Source: "alpha", Timestamp: t0,
		Terms: []event.Term{{Token: "volcano", Weight: 2}}}}
	sns[0].Intern()
	cen := []vocab.IDWeight{{ID: vocab.Terms.ID("volcano"), W: 2}}
	st := event.RestoreStory(1, "alpha", sns, nil, cen, t0, t0.Add(day), 1)
	retireStory(t, m, t0.Add(40*day), st)

	miss := &event.Snippet{ID: 10, Source: "alpha", Timestamp: t0.Add(2 * day),
		Terms: []event.Term{{Token: "earthquake", Weight: 1}}}
	miss.Intern()
	if got := m.TakeForSnippet(miss); got != nil {
		t.Fatalf("non-overlapping terms reactivated %v", got)
	}
	hit := &event.Snippet{ID: 11, Source: "alpha", Timestamp: t0.Add(2 * day),
		Terms: []event.Term{{Token: "volcano", Weight: 1}}}
	hit.Intern()
	if got := m.TakeForSnippet(hit); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("term-fingerprint match returned %v, want story 1", got)
	}
}

func TestReopenLatestRecordWins(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	m := open(t, cfg)
	retireStory(t, m, t0.Add(40*day), testStory(1, "alpha", t0, t0.Add(2*day), "mh17"))
	// Reactivate and re-retire with a wider extent: two records on disk.
	taken := m.TakeForSnippet(testSnippet(10, "alpha", t0.Add(3*day), "mh17"))
	if len(taken) != 1 {
		t.Fatal("setup: reactivation failed")
	}
	wider := testStory(1, "alpha", t0, t0.Add(5*day), "mh17", "ukraine")
	retireStory(t, m, t0.Add(50*day), wider)
	m.Close()

	m2 := open(t, cfg)
	if got := m2.ArchivedIDs("alpha"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("reopen indexed %v, want just story 1 once", got)
	}
	// The surviving record is the later one (extended extent + entity).
	got := m2.TakeForSnippet(testSnippet(11, "alpha", t0.Add(6*day), "ukraine"))
	if len(got) != 1 || !got[0].End.Equal(t0.Add(5*day)) {
		t.Fatalf("reopen served %v, want the re-archived record (end %v)", got, t0.Add(5*day))
	}
}

func TestReconcileAndForgetSource(t *testing.T) {
	m := open(t, testConfig(t.TempDir()))
	retireStory(t, m, t0.Add(40*day), testStory(1, "alpha", t0, t0.Add(day), "mh17"))
	retireStory(t, m, t0.Add(40*day), testStory(2, "beta", t0, t0.Add(day), "gaza"))
	retireStory(t, m, t0.Add(40*day), testStory(3, "alpha", t0, t0.Add(day), "ebola"))

	if got := m.ArchivedIDs("alpha"); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("ArchivedIDs(alpha) = %v, want [1 3] sorted", got)
	}
	m.Reconcile(map[event.StoryID]bool{1: true, 2: true})
	if m.Has(3) || !m.Has(1) || !m.Has(2) {
		t.Fatal("reconcile kept the wrong records")
	}
	m.ForgetSource("alpha")
	if m.Has(1) || !m.Has(2) {
		t.Fatal("ForgetSource dropped the wrong records")
	}
	if got := m.TakeForSnippet(testSnippet(10, "alpha", t0.Add(day), "mh17")); got != nil {
		t.Fatalf("forgotten source reactivated %v", got)
	}
}

func TestApply(t *testing.T) {
	m := open(t, testConfig(t.TempDir()))
	w, g, r := 10*day, 2*day, 5
	if err := m.Apply(Update{Window: &w, Grace: &g, MinResident: &r}); err != nil {
		t.Fatal(err)
	}
	v := m.Snapshot()
	if v.Window != w.String() || v.Grace != g.String() || v.MinResident != 5 {
		t.Fatalf("applied view: %+v", v)
	}
	// Partial update keeps the rest.
	g2 := 3 * day
	if err := m.Apply(Update{Grace: &g2}); err != nil {
		t.Fatal(err)
	}
	if v := m.Snapshot(); v.Window != w.String() || v.Grace != g2.String() {
		t.Fatalf("partial update view: %+v", v)
	}
	// Invalid updates are rejected atomically.
	bad := -1
	if err := m.Apply(Update{MinResident: &bad}); err == nil {
		t.Error("negative min_resident accepted")
	}
	neg := -time.Hour
	if err := m.Apply(Update{Window: &neg}); err == nil {
		t.Error("negative window accepted")
	}
	if v := m.Snapshot(); v.MinResident != 5 {
		t.Fatalf("rejected update leaked: %+v", v)
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	m := open(t, cfg)
	retireStory(t, m, t0.Add(40*day), testStory(1, "alpha", t0, t0.Add(day), "mh17"))
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if m.Has(1) {
		t.Error("reset left story indexed")
	}
	m.Close()
	m2 := open(t, cfg)
	if got := m2.ArchivedIDs("alpha"); len(got) != 0 {
		t.Fatalf("reset archive still holds %v on reopen", got)
	}
}
