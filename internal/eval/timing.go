package eval

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Timer accumulates per-event latency samples and reports the summary
// statistics the statistics module displays (Figure 7: execution time in
// ms vs #events).
//
// Timer is safe for concurrent use: Observe and the accessors
// synchronize internally, so callers (the HTTP server records into
// shared timers from concurrent handlers) need no external locking.
type Timer struct {
	mu      sync.Mutex
	samples []time.Duration
	total   time.Duration
}

// NewTimer creates an empty timer.
func NewTimer() *Timer { return &Timer{} }

// Observe records one latency sample.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	t.samples = append(t.samples, d)
	t.total += d
	t.mu.Unlock()
}

// Time runs fn and records its duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.Observe(time.Since(start))
}

// Count returns the number of samples.
func (t *Timer) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.samples)
}

// Total returns the summed duration.
func (t *Timer) Total() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Mean returns the mean sample, or 0 with no samples.
func (t *Timer) Mean() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.samples) == 0 {
		return 0
	}
	return t.total / time.Duration(len(t.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank on a sorted copy.
func (t *Timer) Percentile(p float64) time.Duration {
	t.mu.Lock()
	sorted := append([]time.Duration(nil), t.samples...)
	t.mu.Unlock()
	if len(sorted) == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Summary renders the statistics line used by the bench harness.
func (t *Timer) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v total=%v",
		t.Count(), t.Mean(), t.Percentile(50), t.Percentile(95), t.Percentile(99), t.Total())
}
