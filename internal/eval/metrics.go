// Package eval implements clustering-quality metrics and timing utilities
// for StoryPivot's evaluation (paper Figure 7 reports F-measure and
// execution time per event).
//
// Story identification and alignment are clustering problems: snippets are
// grouped into stories. Quality is measured against ground truth with the
// standard clustering metrics — pairwise precision/recall/F1, B-cubed, and
// normalised mutual information — all computed from a predicted and a true
// assignment of snippet IDs to cluster labels.
package eval

import (
	"math"

	"repro/internal/event"
)

// Assignment maps each snippet to a cluster label. Predicted and truth
// assignments must cover the same snippet IDs; snippets missing from
// either side are ignored by the metrics.
type Assignment map[event.SnippetID]uint64

// PRF holds precision, recall, and their harmonic mean.
type PRF struct {
	Precision, Recall, F1 float64
}

// Pairwise computes pairwise clustering precision/recall/F1: over all
// unordered snippet pairs, a pair is positive if both elements share a
// cluster. Precision is the fraction of predicted-positive pairs that are
// true-positive; recall the fraction of true-positive pairs recovered.
//
// Counting uses the contingency table between predicted and true labels,
// which is O(n) space and O(n) time instead of O(n²) pair enumeration —
// required at the paper's corpus sizes.
func Pairwise(pred, truth Assignment) PRF {
	type key struct{ p, t uint64 }
	cont := make(map[key]int)
	predSize := make(map[uint64]int)
	truthSize := make(map[uint64]int)
	n := 0
	for id, p := range pred {
		t, ok := truth[id]
		if !ok {
			continue
		}
		cont[key{p, t}]++
		predSize[p]++
		truthSize[t]++
		n++
	}
	if n == 0 {
		return PRF{}
	}
	choose2 := func(k int) float64 { return float64(k) * float64(k-1) / 2 }
	var tp, predPairs, truthPairs float64
	for _, c := range cont {
		tp += choose2(c)
	}
	for _, c := range predSize {
		predPairs += choose2(c)
	}
	for _, c := range truthSize {
		truthPairs += choose2(c)
	}
	prf := PRF{}
	if predPairs > 0 {
		prf.Precision = tp / predPairs
	}
	if truthPairs > 0 {
		prf.Recall = tp / truthPairs
	}
	// Edge case: no positive pairs anywhere means both sides agree that
	// everything is a singleton — perfect score.
	if predPairs == 0 && truthPairs == 0 {
		return PRF{Precision: 1, Recall: 1, F1: 1}
	}
	if prf.Precision+prf.Recall > 0 {
		prf.F1 = 2 * prf.Precision * prf.Recall / (prf.Precision + prf.Recall)
	}
	return prf
}

// BCubed computes the B-cubed precision/recall/F1 (Bagga & Baldwin 1998):
// per-element precision is the fraction of the element's predicted cluster
// sharing its true label, per-element recall the fraction of its true
// cluster it is co-clustered with; both are averaged over elements.
// B-cubed penalises lumping small true stories into one big cluster more
// gracefully than pairwise, which is why both are reported.
func BCubed(pred, truth Assignment) PRF {
	type key struct{ p, t uint64 }
	cont := make(map[key]int)
	predSize := make(map[uint64]int)
	truthSize := make(map[uint64]int)
	n := 0
	for id, p := range pred {
		t, ok := truth[id]
		if !ok {
			continue
		}
		cont[key{p, t}]++
		predSize[p]++
		truthSize[t]++
		n++
	}
	if n == 0 {
		return PRF{}
	}
	var sumP, sumR float64
	for k, c := range cont {
		// Each of the c elements in this cell contributes c/|pred cluster|
		// to precision and c/|true cluster| to recall.
		sumP += float64(c) * float64(c) / float64(predSize[k.p])
		sumR += float64(c) * float64(c) / float64(truthSize[k.t])
	}
	prf := PRF{Precision: sumP / float64(n), Recall: sumR / float64(n)}
	if prf.Precision+prf.Recall > 0 {
		prf.F1 = 2 * prf.Precision * prf.Recall / (prf.Precision + prf.Recall)
	}
	return prf
}

// NMI computes normalised mutual information between the two assignments,
// in [0, 1] with 1 for identical clusterings (up to label renaming). The
// normalisation is by the arithmetic mean of the entropies.
func NMI(pred, truth Assignment) float64 {
	type key struct{ p, t uint64 }
	cont := make(map[key]int)
	predSize := make(map[uint64]int)
	truthSize := make(map[uint64]int)
	n := 0
	for id, p := range pred {
		t, ok := truth[id]
		if !ok {
			continue
		}
		cont[key{p, t}]++
		predSize[p]++
		truthSize[t]++
		n++
	}
	if n == 0 {
		return 0
	}
	fn := float64(n)
	var mi float64
	for k, c := range cont {
		pxy := float64(c) / fn
		px := float64(predSize[k.p]) / fn
		py := float64(truthSize[k.t]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	entropy := func(sizes map[uint64]int) float64 {
		var h float64
		for _, c := range sizes {
			p := float64(c) / fn
			h -= p * math.Log(p)
		}
		return h
	}
	hp, ht := entropy(predSize), entropy(truthSize)
	if hp == 0 && ht == 0 {
		return 1 // both trivial clusterings and identical
	}
	denom := (hp + ht) / 2
	if denom == 0 {
		return 0
	}
	v := mi / denom
	if v > 1 {
		v = 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

// ARI computes the Adjusted Rand Index between the two assignments: the
// Rand index corrected for chance, in [-1, 1] with 1 for identical
// partitions and ~0 for random agreement. Reported alongside F-measure
// because pairwise F is not chance-corrected and inflates on skewed
// cluster-size distributions.
func ARI(pred, truth Assignment) float64 {
	type key struct{ p, t uint64 }
	cont := make(map[key]int)
	predSize := make(map[uint64]int)
	truthSize := make(map[uint64]int)
	n := 0
	for id, p := range pred {
		t, ok := truth[id]
		if !ok {
			continue
		}
		cont[key{p, t}]++
		predSize[p]++
		truthSize[t]++
		n++
	}
	if n < 2 {
		return 0
	}
	choose2 := func(k int) float64 { return float64(k) * float64(k-1) / 2 }
	var sumCells, sumPred, sumTruth float64
	for _, c := range cont {
		sumCells += choose2(c)
	}
	for _, c := range predSize {
		sumPred += choose2(c)
	}
	for _, c := range truthSize {
		sumTruth += choose2(c)
	}
	total := choose2(n)
	expected := sumPred * sumTruth / total
	maxIdx := (sumPred + sumTruth) / 2
	if maxIdx == expected {
		// Degenerate: both partitions trivial (all-singleton or
		// all-one-cluster on both sides) — identical by construction.
		return 1
	}
	return (sumCells - expected) / (maxIdx - expected)
}

// FromStories converts a set of per-source stories into an Assignment
// using story IDs as labels.
func FromStories(stories []*event.Story) Assignment {
	a := make(Assignment)
	for _, st := range stories {
		for _, sn := range st.Snippets {
			a[sn.ID] = uint64(st.ID)
		}
	}
	return a
}

// FromIntegrated converts integrated stories into an Assignment over all
// member snippets, using integrated IDs as labels.
func FromIntegrated(stories []*event.IntegratedStory) Assignment {
	a := make(Assignment)
	for _, is := range stories {
		for _, m := range is.Members {
			for _, sn := range m.Snippets {
				a[sn.ID] = uint64(is.ID)
			}
		}
	}
	return a
}

// Restrict returns a copy of the assignment containing only snippets whose
// IDs pass the filter. Used to score a single source's identification
// quality against global ground truth.
func (a Assignment) Restrict(keep func(event.SnippetID) bool) Assignment {
	out := make(Assignment)
	for id, l := range a {
		if keep(id) {
			out[id] = l
		}
	}
	return out
}
