package eval

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/event"
)

func asg(pairs ...uint64) Assignment {
	// pairs are (id, label) alternating.
	a := make(Assignment)
	for i := 0; i+1 < len(pairs); i += 2 {
		a[event.SnippetID(pairs[i])] = pairs[i+1]
	}
	return a
}

func TestPairwisePerfect(t *testing.T) {
	truth := asg(1, 10, 2, 10, 3, 20, 4, 20)
	pred := asg(1, 77, 2, 77, 3, 88, 4, 88) // same partition, different labels
	got := Pairwise(pred, truth)
	if got.Precision != 1 || got.Recall != 1 || got.F1 != 1 {
		t.Fatalf("perfect clustering = %+v", got)
	}
}

func TestPairwiseKnownValues(t *testing.T) {
	// Truth: {1,2,3} {4}. Pred: {1,2} {3,4}.
	truth := asg(1, 1, 2, 1, 3, 1, 4, 2)
	pred := asg(1, 9, 2, 9, 3, 8, 4, 8)
	got := Pairwise(pred, truth)
	// Pred-positive pairs: (1,2), (3,4) -> 2. TP: (1,2) -> 1. P = 1/2.
	// Truth pairs: (1,2),(1,3),(2,3) -> 3. R = 1/3.
	if math.Abs(got.Precision-0.5) > 1e-12 || math.Abs(got.Recall-1.0/3) > 1e-12 {
		t.Fatalf("got %+v, want P=0.5 R=0.333", got)
	}
	wantF1 := 2 * 0.5 * (1.0 / 3) / (0.5 + 1.0/3)
	if math.Abs(got.F1-wantF1) > 1e-12 {
		t.Fatalf("F1 = %g, want %g", got.F1, wantF1)
	}
}

func TestPairwiseAllSingletons(t *testing.T) {
	truth := asg(1, 1, 2, 2, 3, 3)
	pred := asg(1, 5, 2, 6, 3, 7)
	got := Pairwise(pred, truth)
	if got.F1 != 1 {
		t.Fatalf("all-singleton agreement = %+v, want perfect", got)
	}
}

func TestPairwiseOneBigCluster(t *testing.T) {
	// Pred lumps everything together; truth has two clusters of 2.
	truth := asg(1, 1, 2, 1, 3, 2, 4, 2)
	pred := asg(1, 9, 2, 9, 3, 9, 4, 9)
	got := Pairwise(pred, truth)
	if got.Recall != 1 {
		t.Errorf("lumping recall = %g, want 1", got.Recall)
	}
	if got.Precision >= 1 {
		t.Errorf("lumping precision = %g, want < 1", got.Precision)
	}
}

func TestPairwiseDisjointIDs(t *testing.T) {
	truth := asg(1, 1)
	pred := asg(2, 1)
	got := Pairwise(pred, truth)
	if got != (PRF{}) {
		t.Fatalf("no shared IDs = %+v, want zero", got)
	}
}

func TestBCubedKnownValues(t *testing.T) {
	// Truth: {1,2,3,4}. Pred: {1,2},{3,4}.
	truth := asg(1, 1, 2, 1, 3, 1, 4, 1)
	pred := asg(1, 9, 2, 9, 3, 8, 4, 8)
	got := BCubed(pred, truth)
	// Precision: every element's predicted cluster is pure -> 1.
	// Recall: each element reaches 2 of its 4 true peers -> 0.5.
	if math.Abs(got.Precision-1) > 1e-12 || math.Abs(got.Recall-0.5) > 1e-12 {
		t.Fatalf("BCubed = %+v", got)
	}
}

func TestBCubedPerfectAndBounds(t *testing.T) {
	truth := asg(1, 1, 2, 1, 3, 2)
	if got := BCubed(truth, truth); got.F1 != 1 {
		t.Fatalf("self-comparison = %+v", got)
	}
	if got := BCubed(Assignment{}, truth); got != (PRF{}) {
		t.Fatalf("empty pred = %+v", got)
	}
}

func TestNMI(t *testing.T) {
	truth := asg(1, 1, 2, 1, 3, 2, 4, 2)
	// Identical partition (renamed labels).
	if got := NMI(asg(1, 7, 2, 7, 3, 9, 4, 9), truth); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical partitions NMI = %g", got)
	}
	// Orthogonal-ish partition scores lower.
	cross := NMI(asg(1, 1, 2, 2, 3, 1, 4, 2), truth)
	if !(cross < 0.5) {
		t.Errorf("crossed partition NMI = %g, want low", cross)
	}
	// Both trivial (single cluster each side).
	if got := NMI(asg(1, 1, 2, 1), asg(1, 5, 2, 5)); got != 1 {
		t.Errorf("trivial identical NMI = %g", got)
	}
	if got := NMI(Assignment{}, truth); got != 0 {
		t.Errorf("empty NMI = %g", got)
	}
}

func TestMetricsBoundsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		n := 2 + rng.Intn(40)
		pred, truth := make(Assignment), make(Assignment)
		for i := 0; i < n; i++ {
			id := event.SnippetID(i)
			pred[id] = uint64(rng.Intn(5))
			truth[id] = uint64(rng.Intn(5))
		}
		pw, bc, nmi := Pairwise(pred, truth), BCubed(pred, truth), NMI(pred, truth)
		for _, v := range []float64{pw.Precision, pw.Recall, pw.F1, bc.Precision, bc.Recall, bc.F1, nmi} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		// Self-comparison is always perfect.
		self := Pairwise(pred, pred)
		return self.F1 == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromStories(t *testing.T) {
	st1 := event.NewStory(1, "nyt")
	st1.Add(&event.Snippet{ID: 1, Source: "nyt", Timestamp: time.Unix(1, 0)})
	st1.Add(&event.Snippet{ID: 2, Source: "nyt", Timestamp: time.Unix(2, 0)})
	st2 := event.NewStory(2, "nyt")
	st2.Add(&event.Snippet{ID: 3, Source: "nyt", Timestamp: time.Unix(3, 0)})

	a := FromStories([]*event.Story{st1, st2})
	if len(a) != 3 || a[1] != 1 || a[2] != 1 || a[3] != 2 {
		t.Fatalf("FromStories = %v", a)
	}
}

func TestFromIntegrated(t *testing.T) {
	st1 := event.NewStory(1, "nyt")
	st1.Add(&event.Snippet{ID: 1, Source: "nyt", Timestamp: time.Unix(1, 0)})
	st2 := event.NewStory(2, "wsj")
	st2.Add(&event.Snippet{ID: 2, Source: "wsj", Timestamp: time.Unix(1, 0)})
	is := event.NewIntegratedStory(5, []*event.Story{st1, st2})
	a := FromIntegrated([]*event.IntegratedStory{is})
	if len(a) != 2 || a[1] != 5 || a[2] != 5 {
		t.Fatalf("FromIntegrated = %v", a)
	}
}

func TestRestrict(t *testing.T) {
	a := asg(1, 1, 2, 1, 3, 2)
	got := a.Restrict(func(id event.SnippetID) bool { return id != 2 })
	if len(got) != 2 {
		t.Fatalf("Restrict = %v", got)
	}
	if _, ok := got[2]; ok {
		t.Fatal("filtered ID retained")
	}
}

func TestTimer(t *testing.T) {
	tm := NewTimer()
	if tm.Mean() != 0 || tm.Percentile(50) != 0 {
		t.Fatal("empty timer should report zeros")
	}
	for i := 1; i <= 100; i++ {
		tm.Observe(time.Duration(i) * time.Millisecond)
	}
	if tm.Count() != 100 {
		t.Fatalf("Count = %d", tm.Count())
	}
	if got := tm.Mean(); got != 50500*time.Microsecond {
		t.Errorf("Mean = %v", got)
	}
	if got := tm.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := tm.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	tm.Time(func() { time.Sleep(time.Millisecond) })
	if tm.Count() != 101 {
		t.Error("Time did not record")
	}
	if tm.Summary() == "" {
		t.Error("Summary empty")
	}
}

func TestARI(t *testing.T) {
	truth := asg(1, 1, 2, 1, 3, 2, 4, 2)
	// Identical partition (labels renamed) -> 1.
	if got := ARI(asg(1, 9, 2, 9, 3, 8, 4, 8), truth); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical ARI = %g", got)
	}
	// Self comparison -> 1.
	if got := ARI(truth, truth); math.Abs(got-1) > 1e-12 {
		t.Errorf("self ARI = %g", got)
	}
	// Known value: truth {1,2,3},{4}; pred {1,2},{3,4}.
	tr := asg(1, 1, 2, 1, 3, 1, 4, 2)
	pr := asg(1, 9, 2, 9, 3, 8, 4, 8)
	// sumCells = C(2,2)+C(1,2)+C(1,2) = 1; sumPred = 2; sumTruth = 3;
	// total = 6; expected = 1; maxIdx = 2.5 -> ARI = 0.
	if got := ARI(pr, tr); math.Abs(got) > 1e-12 {
		t.Errorf("known ARI = %g, want 0", got)
	}
	// Empty / tiny inputs.
	if got := ARI(Assignment{}, truth); got != 0 {
		t.Errorf("empty ARI = %g", got)
	}
	if got := ARI(asg(1, 1), asg(1, 5)); got != 0 {
		t.Errorf("single-element ARI = %g", got)
	}
	// Degenerate identical trivial partitions.
	if got := ARI(asg(1, 1, 2, 1), asg(1, 7, 2, 7)); got != 1 {
		t.Errorf("trivial identical ARI = %g", got)
	}
}

func TestARIBoundsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(int64) bool {
		n := 3 + rng.Intn(30)
		pred, truth := make(Assignment), make(Assignment)
		for i := 0; i < n; i++ {
			id := event.SnippetID(i)
			pred[id] = uint64(rng.Intn(4))
			truth[id] = uint64(rng.Intn(4))
		}
		v := ARI(pred, truth)
		return v >= -1-1e-9 && v <= 1+1e-9 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTimerConcurrent hammers a shared timer from many goroutines; run
// under -race this pins the documented "safe for concurrent use"
// contract that the HTTP handlers rely on.
func TestTimerConcurrent(t *testing.T) {
	tm := NewTimer()
	const workers, perWorker = 8, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tm.Observe(time.Millisecond)
				_ = tm.Mean()
				_ = tm.Percentile(95)
			}
		}()
	}
	wg.Wait()
	if got := tm.Count(); got != workers*perWorker {
		t.Fatalf("Count = %d, want %d", got, workers*perWorker)
	}
	if got := tm.Total(); got != workers*perWorker*time.Millisecond {
		t.Fatalf("Total = %v", got)
	}
}
