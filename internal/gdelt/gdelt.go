// Package gdelt parses GDELT 1.0 event-table exports (the repository the
// paper's large-scale experiments run on: "the event data explored for
// this demonstration is taken from ... existing event repositories such
// as GDELT") into StoryPivot information snippets.
//
// GDELT distributes daily tab-separated files with 57 columns; this
// adapter consumes the subset the pipeline needs — event ID, date, actor
// codes, the CAMEO event code, and the source URL — and renders them as
// snippets: actors become entities, the CAMEO code expands into
// description terms via the embedded code table, and the source URL's
// host becomes the data source.
package gdelt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/event"
	"repro/internal/text"
)

// Column indices of the GDELT 1.0 daily event export.
const (
	colGlobalEventID = 0
	colDay           = 1 // YYYYMMDD
	colActor1Code    = 5
	colActor2Code    = 15
	colEventCode     = 26
	colGoldstein     = 30
	colNumMentions   = 31
	colSourceURL     = 57
	minColumns       = 58
)

// Record is one parsed GDELT event row.
type Record struct {
	GlobalEventID  uint64
	Day            time.Time
	Actor1, Actor2 string
	EventCode      string
	Goldstein      float64
	NumMentions    int
	SourceURL      string
}

// ErrMalformed reports a row that cannot be parsed.
var ErrMalformed = errors.New("gdelt: malformed row")

// ParseRow parses one tab-separated GDELT line.
func ParseRow(line string) (*Record, error) {
	cols := strings.Split(line, "\t")
	if len(cols) < minColumns {
		return nil, fmt.Errorf("%w: %d columns, want >= %d", ErrMalformed, len(cols), minColumns)
	}
	id, err := strconv.ParseUint(cols[colGlobalEventID], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: event id %q", ErrMalformed, cols[colGlobalEventID])
	}
	day, err := time.Parse("20060102", cols[colDay])
	if err != nil {
		return nil, fmt.Errorf("%w: day %q", ErrMalformed, cols[colDay])
	}
	r := &Record{
		GlobalEventID: id,
		Day:           day.UTC(),
		Actor1:        cols[colActor1Code],
		Actor2:        cols[colActor2Code],
		EventCode:     cols[colEventCode],
		SourceURL:     cols[colSourceURL],
	}
	if g, err := strconv.ParseFloat(cols[colGoldstein], 64); err == nil {
		r.Goldstein = g
	}
	if n, err := strconv.Atoi(cols[colNumMentions]); err == nil {
		r.NumMentions = n
	}
	return r, nil
}

// Snippet converts the record into a StoryPivot snippet. Actor codes
// become entities; the CAMEO event code expands into stemmed description
// terms weighted by the mention count; the URL host becomes the source.
// Records with no actors and no event description yield an invalid
// snippet — callers should Validate.
func (r *Record) Snippet() *event.Snippet {
	sn := &event.Snippet{
		ID:        event.SnippetID(r.GlobalEventID),
		Source:    SourceOf(r.SourceURL),
		Timestamp: r.Day,
		Document:  r.SourceURL,
	}
	if r.Actor1 != "" {
		sn.Entities = append(sn.Entities, event.Entity(r.Actor1))
	}
	if r.Actor2 != "" && r.Actor2 != r.Actor1 {
		sn.Entities = append(sn.Entities, event.Entity(r.Actor2))
	}
	weight := 1.0
	if r.NumMentions > 1 {
		weight = 1 + math.Log(float64(r.NumMentions))
	}
	for _, tok := range text.StemAll(text.FilterStopwords(text.Tokenize(CameoDescription(r.EventCode)))) {
		sn.Terms = append(sn.Terms, event.Term{Token: tok, Weight: weight})
	}
	// The CAMEO code itself is a strong exact-match signal.
	if r.EventCode != "" {
		sn.Terms = append(sn.Terms, event.Term{Token: "cameo" + r.EventCode, Weight: weight})
	}
	sn.Normalize()
	return sn
}

// SourceOf maps a document URL to a StoryPivot source ID (the host,
// without a www. prefix). Unparseable URLs map to "unknown".
func SourceOf(rawURL string) event.SourceID {
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		return "unknown"
	}
	host := strings.TrimPrefix(strings.ToLower(u.Host), "www.")
	return event.SourceID(host)
}

// Reader streams snippets out of a GDELT export. Malformed rows are
// counted and skipped, matching how real GDELT consumers must behave
// (the feed is noisy; the paper's own citation [21] is a data-quality
// caution about GDELT).
type Reader struct {
	sc        *bufio.Scanner
	Malformed int
	Skipped   int // rows parsed but yielding invalid snippets
}

// NewReader wraps a GDELT TSV stream.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &Reader{sc: sc}
}

// Next returns the next valid snippet, or io.EOF at end of stream.
func (g *Reader) Next() (*event.Snippet, error) {
	for g.sc.Scan() {
		line := g.sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		rec, err := ParseRow(line)
		if err != nil {
			g.Malformed++
			continue
		}
		sn := rec.Snippet()
		if sn.Validate() != nil {
			g.Skipped++
			continue
		}
		return sn, nil
	}
	if err := g.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// ReadAll drains the stream.
func ReadAll(r io.Reader) ([]*event.Snippet, *Reader, error) {
	gr := NewReader(r)
	var out []*event.Snippet
	for {
		sn, err := gr.Next()
		if err == io.EOF {
			return out, gr, nil
		}
		if err != nil {
			return out, gr, err
		}
		out = append(out, sn)
	}
}
