package gdelt

import "strings"

// CAMEO event taxonomy (Conflict and Mediation Event Observations), the
// coding scheme GDELT uses for event types. The table covers the twenty
// root codes plus the second-level codes most frequent in the 2014 feeds;
// unknown codes fall back to their root, then to a generic description.
var cameoRoots = map[string]string{
	"01": "make public statement",
	"02": "appeal request",
	"03": "express intent to cooperate",
	"04": "consult meet negotiate",
	"05": "engage in diplomatic cooperation",
	"06": "engage in material cooperation",
	"07": "provide aid assistance",
	"08": "yield concede",
	"09": "investigate inquiry",
	"10": "demand",
	"11": "disapprove criticize accuse",
	"12": "reject refuse",
	"13": "threaten",
	"14": "protest demonstrate",
	"15": "exhibit force posture mobilize",
	"16": "reduce relations sanctions",
	"17": "coerce seize repress",
	"18": "assault attack violence",
	"19": "fight military clash combat",
	"20": "use unconventional mass violence",
}

var cameoDetail = map[string]string{
	"010": "make statement",
	"020": "make appeal",
	"036": "express intent to meet negotiate",
	"042": "make visit",
	"043": "host visit",
	"051": "praise endorse",
	"057": "sign formal agreement",
	"061": "cooperate economically",
	"070": "provide aid",
	"071": "provide economic aid",
	"080": "yield",
	"090": "investigate",
	"091": "investigate crime corruption",
	"092": "investigate human rights abuses",
	"093": "investigate military action",
	"094": "investigate war crimes",
	"100": "demand",
	"110": "criticize denounce",
	"111": "criticize accuse",
	"112": "accuse of crime corruption",
	"120": "reject",
	"130": "threaten",
	"131": "threaten non force",
	"138": "threaten attack",
	"140": "protest",
	"141": "demonstrate rally",
	"145": "protest violently riot",
	"150": "mobilize show of force",
	"160": "reduce relations",
	"162": "impose sanctions embargo",
	"163": "break diplomatic relations",
	"170": "coerce",
	"172": "impose curfew restrictions",
	"173": "arrest detain",
	"180": "attack",
	"181": "abduct hijack take hostage",
	"182": "assault physically",
	"183": "bombing attack suicide",
	"186": "assassinate",
	"190": "fight with conventional forces",
	"193": "fight with small arms light weapons",
	"194": "fight with artillery tanks",
	"195": "attack aerially bomb",
	"196": "violate ceasefire",
	"200": "mass violence",
	"202": "engage in mass killings",
	"204": "use weapons of mass destruction",
}

// CameoDescription expands a CAMEO event code into a keyword description.
func CameoDescription(code string) string {
	code = strings.TrimSpace(code)
	if d, ok := cameoDetail[code]; ok {
		return d
	}
	// Try the three-digit base of a four-digit code.
	if len(code) == 4 {
		if d, ok := cameoDetail[code[:3]]; ok {
			return d
		}
	}
	if len(code) >= 2 {
		if d, ok := cameoRoots[code[:2]]; ok {
			return d
		}
	}
	if code == "" {
		return ""
	}
	return "event activity"
}

// CameoRoot returns the two-digit root class of a code ("" if malformed).
func CameoRoot(code string) string {
	code = strings.TrimSpace(code)
	if len(code) < 2 {
		return ""
	}
	if _, ok := cameoRoots[code[:2]]; !ok {
		return ""
	}
	return code[:2]
}

// IsConflict reports whether the code falls in the material-conflict
// quad class (roots 14-20), the class the political-forecasting use case
// of paper §1 watches.
func IsConflict(code string) bool {
	root := CameoRoot(code)
	return root >= "14" && root <= "20"
}
