package gdelt

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

// row builds a 58-column GDELT line with the fields under test filled in.
func row(id uint64, day, a1, a2, code string, goldstein float64, mentions int, url string) string {
	cols := make([]string, minColumns)
	cols[colGlobalEventID] = fmt.Sprintf("%d", id)
	cols[colDay] = day
	cols[colActor1Code] = a1
	cols[colActor2Code] = a2
	cols[colEventCode] = code
	cols[colGoldstein] = fmt.Sprintf("%g", goldstein)
	cols[colNumMentions] = fmt.Sprintf("%d", mentions)
	cols[colSourceURL] = url
	return strings.Join(cols, "\t")
}

func TestParseRow(t *testing.T) {
	line := row(420001, "20140717", "UKR", "RUS", "195", -10, 25, "http://www.nytimes.com/doc1.html")
	rec, err := ParseRow(line)
	if err != nil {
		t.Fatal(err)
	}
	if rec.GlobalEventID != 420001 || rec.Actor1 != "UKR" || rec.Actor2 != "RUS" {
		t.Fatalf("rec = %+v", rec)
	}
	if rec.Day.Year() != 2014 || rec.Day.Month() != 7 || rec.Day.Day() != 17 {
		t.Fatalf("day = %v", rec.Day)
	}
	if rec.EventCode != "195" || rec.Goldstein != -10 || rec.NumMentions != 25 {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestParseRowErrors(t *testing.T) {
	if _, err := ParseRow("too\tfew\tcolumns"); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := ParseRow(row(1, "notadate", "UKR", "", "195", 0, 1, "http://x.com")); err == nil {
		t.Fatal("bad date accepted")
	}
	bad := strings.Replace(row(1, "20140717", "UKR", "", "195", 0, 1, "http://x.com"), "1\t", "nope\t", 1)
	if _, err := ParseRow(bad); err == nil {
		t.Fatal("bad event id accepted")
	}
}

func TestRecordToSnippet(t *testing.T) {
	rec, _ := ParseRow(row(7, "20140717", "UKR", "RUS", "195", -10, 25, "http://www.nytimes.com/doc.html"))
	sn := rec.Snippet()
	if err := sn.Validate(); err != nil {
		t.Fatal(err)
	}
	if sn.Source != "nytimes.com" {
		t.Fatalf("source = %s", sn.Source)
	}
	if !sn.HasEntity("UKR") || !sn.HasEntity("RUS") {
		t.Fatalf("entities = %v", sn.Entities)
	}
	// "attack aerially bomb" -> stems; plus the exact cameo code token.
	toks := map[string]bool{}
	for _, tm := range sn.Terms {
		toks[tm.Token] = true
		if tm.Weight <= 1 {
			t.Errorf("mention-weighted term has weight %g", tm.Weight)
		}
	}
	if !toks["cameo195"] || !toks["attack"] {
		t.Fatalf("terms = %v", sn.Terms)
	}
	// Duplicate actor collapses.
	rec2, _ := ParseRow(row(8, "20140717", "UKR", "UKR", "195", 0, 1, "http://x.com/a"))
	if got := len(rec2.Snippet().Entities); got != 1 {
		t.Fatalf("duplicate actor entities = %d", got)
	}
}

func TestSourceOf(t *testing.T) {
	cases := map[string]string{
		"http://www.nytimes.com/a/b": "nytimes.com",
		"https://online.wsj.com/doc": "online.wsj.com",
		"http://WWW.EXAMPLE.COM/x":   "example.com",
		"not a url at all ://":       "unknown",
		"":                           "unknown",
	}
	for in, want := range cases {
		if got := SourceOf(in); string(got) != want {
			t.Errorf("SourceOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCameoDescription(t *testing.T) {
	cases := map[string]string{
		"195":  "attack aerially bomb",
		"1951": "attack aerially bomb", // 4-digit falls back to 3-digit
		"19":   "fight military clash combat",
		"1999": "fight military clash combat", // unknown detail -> root
		"99":   "event activity",              // unknown root
		"":     "",
	}
	for in, want := range cases {
		if got := CameoDescription(in); got != want {
			t.Errorf("CameoDescription(%q) = %q, want %q", in, got, want)
		}
	}
	if CameoRoot("195") != "19" || CameoRoot("x") != "" || CameoRoot("99") != "" {
		t.Error("CameoRoot wrong")
	}
	if !IsConflict("195") || IsConflict("010") || IsConflict("") {
		t.Error("IsConflict wrong")
	}
}

func TestReaderSkipsNoise(t *testing.T) {
	input := strings.Join([]string{
		row(1, "20140717", "UKR", "RUS", "195", -10, 5, "http://a.com/1"),
		"garbage line",
		"",
		row(2, "20140718", "", "", "", 0, 1, "http://a.com/2"), // no content -> skipped
		row(3, "20140718", "UKR", "", "112", -2, 2, "http://b.com/3"),
	}, "\n")
	sns, rd, err := ReadAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(sns) != 2 {
		t.Fatalf("snippets = %d", len(sns))
	}
	if rd.Malformed != 1 || rd.Skipped != 1 {
		t.Fatalf("malformed=%d skipped=%d", rd.Malformed, rd.Skipped)
	}
	if sns[0].ID != 1 || sns[1].ID != 3 {
		t.Fatalf("ids = %d, %d", sns[0].ID, sns[1].ID)
	}
}

func TestReaderEOF(t *testing.T) {
	rd := NewReader(strings.NewReader(""))
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
}
