package index

import "repro/internal/obs"

// Instrumentation points of the query-serving index. The gauges reflect
// the most recently active index, which in a serving process is the
// only one.
var (
	metPublishes = obs.GetCounter("storypivot_index_publishes_total",
		"alignment results applied to the index")
	metStoriesUpdated = obs.GetCounter("storypivot_index_stories_updated_total",
		"member stories whose postings were (re)built at publish")
	metStoriesSkipped = obs.GetCounter("storypivot_index_stories_skipped_total",
		"member stories skipped at publish because their generation was unchanged")
	metStoriesRemoved = obs.GetCounter("storypivot_index_stories_removed_total",
		"stories tombstoned because they left the alignment result")
	metSweeps = obs.GetCounter("storypivot_index_sweeps_total",
		"tombstone sweep passes executed by the compactor")
	metSweptPostings = obs.GetCounter("storypivot_index_swept_postings_total",
		"stale postings physically removed by sweeps")
	metQueries = obs.GetCounter("storypivot_index_queries_total",
		"queries answered from the index")
	metStoriesGauge = obs.GetGauge("storypivot_index_stories",
		"stories currently indexed")
	metLiveGauge = obs.GetGauge("storypivot_index_live_postings",
		"live postings across entity, term, and timeline lists")
	metStaleGauge = obs.GetGauge("storypivot_index_stale_postings",
		"tombstoned postings awaiting the next sweep")
	metPublishLat = obs.GetHistogram("storypivot_index_publish_seconds",
		"latency of applying one alignment result delta to the index")
	metQueryLat = obs.GetHistogram("storypivot_index_query_seconds",
		"index query evaluation latency")
	metSweepLat = obs.GetHistogram("storypivot_index_sweep_seconds",
		"tombstone sweep pass latency")
)
