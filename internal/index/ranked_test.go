package index

import (
	"math/rand"
	"sort"
	"testing"
)

func rankedKeys(rs []Ranked) []uint64 {
	out := make([]uint64, len(rs))
	for i, r := range rs {
		out[i] = r.Key
	}
	return out
}

func TestMergeRankedOrdering(t *testing.T) {
	pages := [][]Ranked{
		{{Key: 10, Score: 3.0}, {Key: 11, Score: 1.0}},
		{{Key: 20, Score: 2.0}, {Key: 21, Score: 0.5}},
		{{Key: 30, Score: 2.5}},
	}
	got := MergeRanked(pages, -1)
	want := []uint64{10, 30, 20, 11, 21}
	if len(got) != len(want) {
		t.Fatalf("merged %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i] {
			t.Fatalf("merged order %v, want %v", rankedKeys(got), want)
		}
	}
}

// Ties across shards must break by ascending Key — the same rule the
// worker-side ranking uses (ascending integrated ID), or router
// pagination diverges from single-node pagination.
func TestMergeRankedTieBreak(t *testing.T) {
	pages := [][]Ranked{
		{{Key: 50, Score: 1.0}, {Key: 7, Score: 0.5}},
		{{Key: 3, Score: 1.0}},
		{{Key: 9, Score: 1.0}},
	}
	got := MergeRanked(pages, -1)
	want := []uint64{3, 9, 50, 7}
	for i := range want {
		if got[i].Key != want[i] {
			t.Fatalf("tie order %v, want %v", rankedKeys(got), want)
		}
	}
}

// A story replicated across pages must appear once, keeping its
// best-ranked occurrence.
func TestMergeRankedDedup(t *testing.T) {
	pages := [][]Ranked{
		{{Key: 1, Score: 1.0, Shard: 0}, {Key: 2, Score: 0.9, Shard: 0}},
		{{Key: 1, Score: 2.0, Shard: 1}, {Key: 3, Score: 0.5, Shard: 1}},
	}
	got := MergeRanked(pages, -1)
	if keys := rankedKeys(got); len(keys) != 3 || keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Fatalf("dedup order %v, want [1 2 3]", keys)
	}
	if got[0].Shard != 1 || got[0].Score != 2.0 {
		t.Fatalf("dedup kept worse occurrence: %+v", got[0])
	}
}

func TestMergeRankedEdges(t *testing.T) {
	pages := [][]Ranked{{{Key: 1, Score: 1}}, {{Key: 2, Score: 2}}}
	if got := MergeRanked(pages, 0); got == nil || len(got) != 0 {
		t.Fatalf("k=0: got %v, want empty non-nil", got)
	}
	if got := MergeRanked(nil, 5); got == nil || len(got) != 0 {
		t.Fatalf("no pages: got %v, want empty non-nil", got)
	}
	if got := MergeRanked(pages, 1); len(got) != 1 || got[0].Key != 2 {
		t.Fatalf("k=1: got %v, want [2]", rankedKeys(got))
	}
	// k far beyond the input sorts everything.
	if got := MergeRanked(pages, 100); len(got) != 2 || got[0].Key != 2 || got[1].Key != 1 {
		t.Fatalf("k>len: got %v, want [2 1]", rankedKeys(got))
	}
	// Single short page passes through ranked.
	if got := MergeRanked([][]Ranked{{{Key: 9, Score: 1}}}, 3); len(got) != 1 || got[0].Key != 9 {
		t.Fatalf("short page: got %v", rankedKeys(got))
	}
}

// The bounded-heap path must agree with a full sort for every k — the
// property the router's global pagination rests on.
func TestMergeRankedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nPages := 1 + rng.Intn(4)
		pages := make([][]Ranked, nPages)
		var all []Ranked
		key := uint64(1)
		for p := range pages {
			n := rng.Intn(8)
			for i := 0; i < n; i++ {
				r := Ranked{Key: key, Score: float64(rng.Intn(5)), Shard: int32(p), Pos: int32(i)}
				key++
				pages[p] = append(pages[p], r)
				all = append(all, r)
			}
		}
		sort.Slice(all, func(i, j int) bool { return BetterRanked(all[i], all[j]) })
		for _, k := range []int{0, 1, 3, len(all), len(all) + 5, -1} {
			got := MergeRanked(pages, k)
			want := all
			if k >= 0 && k < len(want) {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d entries, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i].Key != want[i].Key {
					t.Fatalf("trial %d k=%d: order %v, want %v", trial, k, rankedKeys(got), rankedKeys(want))
				}
			}
		}
	}
}
