package index_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/index"
	"repro/internal/stream"
)

// harness builds a two-source engine feeding an index through the
// result-sink hook, with deterministic topical snippets.
type harness struct {
	t      *testing.T
	eng    *stream.Engine
	idx    *index.Index
	nextID event.SnippetID
	base   time.Time
}

func newHarness(t *testing.T, opts index.Options) *harness {
	h := &harness{
		t:      t,
		eng:    stream.NewEngine(stream.DefaultOptions()),
		idx:    index.New(opts),
		nextID: 1,
		base:   time.Date(2014, 7, 17, 0, 0, 0, 0, time.UTC),
	}
	h.eng.SetResultSink(h.idx)
	return h
}

// add ingests one snippet with the given topical signature at an
// hour-offset timestamp.
func (h *harness) add(src event.SourceID, hour int, ents []event.Entity, toks ...string) {
	h.t.Helper()
	sn := &event.Snippet{
		ID:        h.nextID,
		Source:    src,
		Timestamp: h.base.Add(time.Duration(hour) * time.Hour),
		Entities:  append([]event.Entity(nil), ents...),
	}
	for _, tok := range toks {
		sn.Terms = append(sn.Terms, event.Term{Token: tok, Weight: 1})
	}
	h.nextID++
	sn.Normalize()
	if _, err := h.eng.Ingest(sn); err != nil {
		h.t.Fatal(err)
	}
}

var (
	crashEnts  = []event.Entity{"MAL", "UKR"}
	soccerEnts = []event.Entity{"FIFA", "GER"}
)

func (h *harness) seed() {
	for i := 0; i < 4; i++ {
		h.add("nyt", i, crashEnts, "crash", "plane")
		h.add("wsj", i, crashEnts, "crash", "missile")
		h.add("nyt", i, soccerEnts, "final", "goal")
	}
}

// TestPublishDelta verifies the Gen-diff protocol: republishing an
// unchanged result costs no postings, mutating one story tombstones
// exactly its old postings, and removing a source tombstones its
// stories.
func TestPublishDelta(t *testing.T) {
	h := newHarness(t, index.Options{})
	h.seed()
	h.eng.Result() // publish
	s0 := h.idx.Stats()
	if s0.Stories == 0 || s0.LivePostings == 0 || s0.Integrated == 0 {
		t.Fatalf("empty index after publish: %+v", s0)
	}
	if s0.StalePostings != 0 {
		t.Fatalf("fresh index already stale: %+v", s0)
	}
	epoch := h.idx.Epoch()

	// Re-align with nothing changed: every story has an unchanged Gen,
	// so the publish is a pure position refresh.
	h.eng.Align()
	if got := h.idx.Epoch(); got != epoch+1 {
		t.Fatalf("epoch = %d, want %d", got, epoch+1)
	}
	if s := h.idx.Stats(); s != s0 {
		t.Fatalf("no-op publish changed stats: %+v -> %+v", s0, s)
	}

	// Mutate one story: its entry's generation moves on, tombstoning the
	// old postings; the rest of the corpus is untouched.
	h.add("nyt", 5, crashEnts, "crash", "wreckage")
	h.eng.Result()
	s1 := h.idx.Stats()
	if s1.StalePostings == 0 {
		t.Fatalf("mutation produced no tombstones: %+v", s1)
	}
	if s1.Stories != s0.Stories {
		t.Fatalf("stories = %d, want %d", s1.Stories, s0.Stories)
	}

	// Remove a source: its stories leave the entry table entirely.
	if !h.eng.RemoveSource("wsj") {
		t.Fatal("RemoveSource found nothing")
	}
	h.eng.Result()
	s2 := h.idx.Stats()
	if s2.Stories >= s1.Stories {
		t.Fatalf("stories after removal = %d, want < %d", s2.Stories, s1.Stories)
	}
	if s2.StalePostings <= s1.StalePostings {
		t.Fatalf("removal produced no tombstones: %+v -> %+v", s1, s2)
	}

	// A manual sweep drops every tombstone; queries still work.
	h.idx.Sweep()
	if s := h.idx.Stats(); s.StalePostings != 0 {
		t.Fatalf("stale after sweep: %+v", s)
	}
	if got, total := h.idx.StoriesByEntity("MAL", 0, -1); total == 0 || len(got) != total {
		t.Fatalf("post-sweep query broken: %d hits, total %d", len(got), total)
	}
	if got, total := h.idx.Timeline("UKR", 0, -1); total == 0 || len(got) != total {
		t.Fatalf("post-sweep timeline broken: %d hits, total %d", len(got), total)
	}
	// Publishing nil is a no-op.
	before := h.idx.Epoch()
	h.idx.Publish(nil)
	if h.idx.Epoch() != before {
		t.Fatal("Publish(nil) bumped the epoch")
	}
}

// TestAutoSweep verifies Publish itself sweeps once the stale fraction
// crosses the configured thresholds.
func TestAutoSweep(t *testing.T) {
	h := newHarness(t, index.Options{SweepMinStale: 1, SweepRatio: 0.01})
	h.seed()
	h.eng.Result()
	// Mutate and republish: the publish sees stale >= thresholds and
	// sweeps inline.
	h.add("nyt", 5, crashEnts, "crash", "debris")
	h.eng.Result()
	if s := h.idx.Stats(); s.StalePostings != 0 {
		t.Fatalf("auto-sweep did not run: %+v", s)
	}
}

// TestCompactor verifies the background compactor sweeps without an
// explicit call, and that Close is safe and idempotent.
func TestCompactor(t *testing.T) {
	h := newHarness(t, index.Options{SweepMinStale: 1, SweepRatio: 0.01, TimelineBucket: time.Hour})
	h.idx.StartCompactor(5 * time.Millisecond)
	h.seed()
	h.eng.Result()
	// Create tombstones without triggering the inline sweep: mutate,
	// then publish through a result whose sweep check races the ticker.
	// (Inline sweeping may beat the compactor; either way stale must hit
	// zero, and the compactor path is exercised across iterations.)
	h.add("wsj", 6, soccerEnts, "final", "trophy")
	h.eng.Result()
	deadline := time.Now().Add(2 * time.Second)
	for h.idx.Stats().StalePostings != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("compactor never swept: %+v", h.idx.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	h.idx.Close()
	h.idx.Close() // idempotent
	if _, total := h.idx.StoriesByEntity("FIFA", 0, -1); total == 0 {
		t.Fatal("index unreadable after Close")
	}
}

// TestPaginationBounds exercises the paging edge cases of all three
// queries directly against the index.
func TestPaginationBounds(t *testing.T) {
	h := newHarness(t, index.Options{})
	h.seed()
	h.eng.Result()

	full, total := h.idx.Timeline("MAL", 0, -1)
	if total == 0 || len(full) != total {
		t.Fatalf("timeline: %d of %d", len(full), total)
	}
	for _, tc := range []struct {
		name           string
		offset, limit  int
		wantLen, wantT int
	}{
		{"window", 1, 2, 2, total},
		{"zero-limit", 0, 0, 0, total},
		{"beyond-end", total + 5, 3, 0, total},
		{"clamped-tail", total - 1, 10, 1, total},
		{"negative-offset", -3, 2, 2, total},
	} {
		got, gotT := h.idx.Timeline("MAL", tc.offset, tc.limit)
		if len(got) != tc.wantLen || gotT != tc.wantT {
			t.Errorf("timeline %s: %d items total %d, want %d/%d",
				tc.name, len(got), gotT, tc.wantLen, tc.wantT)
		}
	}
	// Ranked queries: the paged window is the same slice of the full
	// ranking.
	fullHits, ht := h.idx.StoriesByEntity("MAL", 0, -1)
	if ht == 0 {
		t.Fatal("no entity hits")
	}
	page, _ := h.idx.StoriesByEntity("MAL", 0, 1)
	if len(page) != 1 || page[0] != fullHits[0] {
		t.Fatalf("top-1 page != head of full ranking")
	}
	// Misses and empty queries.
	if got, total := h.idx.StoriesByEntity("NOPE", 0, -1); len(got) != 0 || total != 0 {
		t.Fatalf("miss: %d/%d", len(got), total)
	}
	if got, total := h.idx.Search("", 0, -1); got == nil || len(got) != 0 || total != 0 {
		t.Fatalf("empty query: %v/%d", got, total)
	}
	if got, total := h.idx.Timeline("NOPE", 0, -1); got == nil || len(got) != 0 || total != 0 {
		t.Fatalf("timeline miss must be empty, not nil: %v/%d", got, total)
	}
	if got, total := h.idx.Search("crash", 0, 0); len(got) != 0 || total == 0 {
		t.Fatalf("zero-limit search: %d/%d", len(got), total)
	}
}

// TestCompactorLifecycleRaces exercises StartCompactor/Close from
// concurrent goroutines (the shutdown path can race the serving path);
// under -race this pins the lifecycle's lock discipline, and repeated
// or post-Close starts must be harmless no-ops.
func TestCompactorLifecycleRaces(t *testing.T) {
	h := newHarness(t, index.Options{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.idx.StartCompactor(time.Millisecond)
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.idx.Close()
		}()
	}
	wg.Wait()
	h.idx.Close()
	h.idx.StartCompactor(time.Millisecond) // post-Close start: no-op
	h.idx.Close()
}
