package index

import (
	"repro/internal/event"
	"repro/internal/text"
	"repro/internal/vocab"
)

// Query evaluation. All queries run under the read lock, rank with the
// per-query pooled accumulator, and return a page [offset, offset+limit)
// of the ranked hits plus the total hit count. limit < 0 returns
// everything from offset on. Ranking and tie-breaking reproduce the
// legacy scan path exactly: Search orders by summed centroid weight of
// the matched terms, StoriesByEntity by total mention count, both with
// ties broken by ascending integrated ID; Timeline is chronological
// with ties broken by snippet ID.

// Search answers free-text queries: the query is tokenised, stopword-
// filtered, and stemmed, then scored through the term postings.
func (x *Index) Search(query string, offset, limit int) ([]*event.IntegratedStory, int) {
	toks := text.Pipeline(query)
	if len(toks) == 0 {
		return nil, 0
	}
	span := metQueryLat.Start()
	defer span.End()
	metQueries.Inc()
	x.mu.RLock()
	defer x.mu.RUnlock()
	a := getAccum(len(x.integrated))
	defer putAccum(a)
	for _, tok := range toks {
		tid, ok := vocab.Terms.Lookup(tok)
		if !ok {
			continue
		}
		for _, p := range x.terms[tid] {
			if e, ok := x.live(p.story, p.gen); ok {
				a.add(e.pos, p.w)
			}
		}
	}
	return x.pageHits(a, offset, limit)
}

// StoriesByEntity answers entity queries through the entity postings,
// ranked by how prominently the integrated story mentions the entity.
func (x *Index) StoriesByEntity(ent event.Entity, offset, limit int) ([]*event.IntegratedStory, int) {
	span := metQueryLat.Start()
	defer span.End()
	metQueries.Inc()
	x.mu.RLock()
	defer x.mu.RUnlock()
	eid, ok := vocab.Entities.Lookup(string(ent))
	if !ok {
		return []*event.IntegratedStory{}, 0
	}
	a := getAccum(len(x.integrated))
	defer putAccum(a)
	for _, p := range x.ents[eid] {
		if e, ok := x.live(p.story, p.gen); ok {
			a.add(e.pos, float64(p.n))
		}
	}
	return x.pageHits(a, offset, limit)
}

// pageHits ranks the accumulated scores and materialises the requested
// page. Caller holds the read lock.
func (x *Index) pageHits(a *accum, offset, limit int) ([]*event.IntegratedStory, int) {
	hits := a.collectHits()
	total := len(hits)
	k := -1
	if limit >= 0 {
		if offset < 0 {
			offset = 0
		}
		k = offset + limit
	}
	ranked := rankHits(hits, k)
	lo, hi := pageBounds(len(ranked), offset, limit)
	out := make([]*event.IntegratedStory, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = x.integrated[ranked[i].pos]
	}
	return out, total
}

// Timeline answers per-entity chronology queries by walking only the
// entity's timeline segments in bucket order.
func (x *Index) Timeline(ent event.Entity, offset, limit int) ([]*event.Snippet, int) {
	span := metQueryLat.Start()
	defer span.End()
	metQueries.Inc()
	x.mu.RLock()
	defer x.mu.RUnlock()
	eid, ok := vocab.Entities.Lookup(string(ent))
	if !ok {
		return nil, 0
	}
	tl := x.timelines[eid]
	if tl == nil {
		return nil, 0
	}
	// Two passes: count the live postings first so the result slice is
	// allocated exactly once, then fill the requested window.
	total := 0
	for _, key := range tl.keys {
		for _, p := range tl.buckets[key].posts {
			if _, ok := x.live(p.story, p.gen); ok {
				total++
			}
		}
	}
	lo, hi := pageBounds(total, offset, limit)
	if hi == lo {
		return nil, total
	}
	out := make([]*event.Snippet, 0, hi-lo)
	i := 0
	for _, key := range tl.keys {
		for _, p := range tl.buckets[key].posts {
			if _, ok := x.live(p.story, p.gen); !ok {
				continue
			}
			if i >= lo {
				out = append(out, p.sn)
				if len(out) == hi-lo {
					return out, total
				}
			}
			i++
		}
	}
	return out, total
}
