package index

import (
	"repro/internal/event"
	"repro/internal/text"
	"repro/internal/vocab"
)

// Query evaluation. All queries run under the read lock, rank with the
// per-query pooled accumulator, and return a page [offset, offset+limit)
// of the ranked hits plus the total hit count. limit < 0 returns
// everything from offset on. Ranking and tie-breaking reproduce the
// legacy scan path exactly: Search orders by summed centroid weight of
// the matched terms, StoriesByEntity by total mention count, both with
// ties broken by ascending integrated ID; Timeline is chronological
// with ties broken by snippet ID.

// Shared empty results. Every query path returns a non-nil slice on
// zero hits so the HTTP layer serialises `[]`, never `null`, and does it
// without allocating (the miss paths are pinned at zero allocations).
var (
	emptyStories  = []*event.IntegratedStory{}
	emptySnippets = []*event.Snippet{}
	emptyScores   = []float64{}
)

// Search answers free-text queries: the query is tokenised, stopword-
// filtered, and stemmed, then scored through the term postings.
func (x *Index) Search(query string, offset, limit int) ([]*event.IntegratedStory, int) {
	out, _, total := x.searchOpt(query, offset, limit, false)
	return out, total
}

// SearchScored is Search plus the per-result scores — the side channel a
// scatter-gather router needs to merge shard pages under the exact
// single-node ordering (see MergeRanked in ranked.go).
func (x *Index) SearchScored(query string, offset, limit int) ([]*event.IntegratedStory, []float64, int) {
	return x.searchOpt(query, offset, limit, true)
}

func (x *Index) searchOpt(query string, offset, limit int, withScores bool) ([]*event.IntegratedStory, []float64, int) {
	toks := text.Pipeline(query)
	if len(toks) == 0 {
		return emptyStories, emptyScores, 0
	}
	span := metQueryLat.Start()
	defer span.End()
	metQueries.Inc()
	x.mu.RLock()
	defer x.mu.RUnlock()
	a := getAccum(len(x.integrated))
	defer putAccum(a)
	for _, tok := range toks {
		tid, ok := vocab.Terms.Lookup(tok)
		if !ok {
			continue
		}
		for _, p := range x.terms[tid] {
			if e, ok := x.live(p.story, p.gen); ok {
				a.add(e.pos, p.w)
			}
		}
	}
	return x.pageHits(a, offset, limit, withScores)
}

// StoriesByEntity answers entity queries through the entity postings,
// ranked by how prominently the integrated story mentions the entity.
func (x *Index) StoriesByEntity(ent event.Entity, offset, limit int) ([]*event.IntegratedStory, int) {
	out, _, total := x.entityOpt(ent, offset, limit, false)
	return out, total
}

// StoriesByEntityScored is StoriesByEntity plus per-result scores, for
// the same router-side merge as SearchScored.
func (x *Index) StoriesByEntityScored(ent event.Entity, offset, limit int) ([]*event.IntegratedStory, []float64, int) {
	return x.entityOpt(ent, offset, limit, true)
}

func (x *Index) entityOpt(ent event.Entity, offset, limit int, withScores bool) ([]*event.IntegratedStory, []float64, int) {
	span := metQueryLat.Start()
	defer span.End()
	metQueries.Inc()
	x.mu.RLock()
	defer x.mu.RUnlock()
	eid, ok := vocab.Entities.Lookup(string(ent))
	if !ok {
		return emptyStories, emptyScores, 0
	}
	a := getAccum(len(x.integrated))
	defer putAccum(a)
	for _, p := range x.ents[eid] {
		if e, ok := x.live(p.story, p.gen); ok {
			a.add(e.pos, float64(p.n))
		}
	}
	return x.pageHits(a, offset, limit, withScores)
}

// pageHits ranks the accumulated scores and materialises the requested
// page, optionally with the parallel score slice. Caller holds the read
// lock.
func (x *Index) pageHits(a *accum, offset, limit int, withScores bool) ([]*event.IntegratedStory, []float64, int) {
	hits := a.collectHits()
	total := len(hits)
	k := -1
	if limit >= 0 {
		if offset < 0 {
			offset = 0
		}
		k = offset + limit
	}
	ranked := rankHits(hits, k)
	lo, hi := pageBounds(len(ranked), offset, limit)
	if hi == lo {
		return emptyStories, emptyScores, total
	}
	out := make([]*event.IntegratedStory, hi-lo)
	scores := emptyScores
	if withScores {
		scores = make([]float64, hi-lo)
	}
	for i := lo; i < hi; i++ {
		out[i-lo] = x.integrated[ranked[i].pos]
		if withScores {
			scores[i-lo] = ranked[i].score
		}
	}
	return out, scores, total
}

// Timeline answers per-entity chronology queries by walking only the
// entity's timeline segments in bucket order.
func (x *Index) Timeline(ent event.Entity, offset, limit int) ([]*event.Snippet, int) {
	span := metQueryLat.Start()
	defer span.End()
	metQueries.Inc()
	x.mu.RLock()
	defer x.mu.RUnlock()
	eid, ok := vocab.Entities.Lookup(string(ent))
	if !ok {
		return emptySnippets, 0
	}
	tl := x.timelines[eid]
	if tl == nil {
		return emptySnippets, 0
	}
	if limit < 0 {
		// Unbounded page: count the live postings first so the result
		// slice is allocated exactly once at its final size, then fill.
		total := 0
		for _, key := range tl.keys {
			for _, p := range tl.buckets[key].posts {
				if _, ok := x.live(p.story, p.gen); ok {
					total++
				}
			}
		}
		lo, hi := pageBounds(total, offset, limit)
		if hi == lo {
			return emptySnippets, total
		}
		out := make([]*event.Snippet, 0, hi-lo)
		i := 0
		for _, key := range tl.keys {
			for _, p := range tl.buckets[key].posts {
				if _, ok := x.live(p.story, p.gen); !ok {
					continue
				}
				if i >= lo {
					out = append(out, p.sn)
					if len(out) == hi-lo {
						return out, total
					}
				}
				i++
			}
		}
		return out, total
	}
	// Bounded page: a single walk both counts the live postings and
	// fills the window, so liveness resolves once per posting instead of
	// twice. The page slice is allocated lazily at cap limit — empty
	// pages (offset past the end, limit 0) stay allocation-free.
	lo := offset
	if lo < 0 {
		lo = 0
	}
	var out []*event.Snippet
	total := 0
	for _, key := range tl.keys {
		for _, p := range tl.buckets[key].posts {
			if _, ok := x.live(p.story, p.gen); !ok {
				continue
			}
			if total >= lo && len(out) < limit {
				if out == nil {
					out = make([]*event.Snippet, 0, limit)
				}
				out = append(out, p.sn)
			}
			total++
		}
	}
	if out == nil {
		return emptySnippets, total
	}
	return out, total
}
