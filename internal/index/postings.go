package index

import (
	"sort"
	"sync"

	"repro/internal/event"
)

// Posting layout. Every posting carries the generation of the story it
// was written for; a posting is live iff the story's index entry still
// exists and records the same generation. Mutating a story therefore
// tombstones all of its old postings in O(1) — the entry's generation
// moves on — and the stale entries are physically removed later by the
// compactor (see sweepLocked). Readers only ever skip them.

// cpost is one entity posting: the story mentions the entity in n
// snippets.
type cpost struct {
	story event.StoryID
	gen   uint64
	n     int32
}

// wpost is one term posting: the story's centroid carries weight w for
// the term.
type wpost struct {
	story event.StoryID
	gen   uint64
	w     float64
}

// hit is one scored integrated story during query ranking. pos indexes
// the published integrated slice; integrated IDs ascend with position,
// so ordering by pos equals ordering by IntegratedID.
type hit struct {
	pos   int32
	score float64
}

// accum is the per-query scratch: a dense score accumulator over
// integrated-story positions plus the list of touched positions (so
// reset cost is proportional to the result, not the corpus) and a
// reusable hits buffer. Pooled so steady-state queries do not allocate.
type accum struct {
	score   []float64
	touched []int32
	hits    []hit
}

var accumPool = sync.Pool{New: func() any { return new(accum) }}

func getAccum(n int) *accum {
	a := accumPool.Get().(*accum)
	if cap(a.score) < n {
		a.score = make([]float64, n)
	}
	a.score = a.score[:n]
	return a
}

func putAccum(a *accum) {
	for _, pos := range a.touched {
		a.score[pos] = 0
	}
	a.touched = a.touched[:0]
	a.hits = a.hits[:0]
	accumPool.Put(a)
}

// add accumulates delta into position pos, tracking first touches.
func (a *accum) add(pos int32, delta float64) {
	if a.score[pos] == 0 {
		a.touched = append(a.touched, pos)
	}
	a.score[pos] += delta
}

// collectHits materialises the touched positions with positive scores
// into the hits buffer.
func (a *accum) collectHits() []hit {
	for _, pos := range a.touched {
		if s := a.score[pos]; s > 0 {
			a.hits = append(a.hits, hit{pos: pos, score: s})
		}
	}
	return a.hits
}

// better reports whether x ranks strictly before y: higher score first,
// ties by ascending position (== ascending IntegratedID, matching the
// legacy scan path's tie-break).
func better(x, y hit) bool {
	if x.score != y.score {
		return x.score > y.score
	}
	return x.pos < y.pos
}

// rankHits orders hits so that the first min(k, len) entries are the
// best, in rank order. k < 0 (or k >= len) sorts everything; otherwise a
// bounded min-heap keeps selection O(n log k) — the top-k path of paged
// queries, where k = offset+limit is usually far below the hit count.
func rankHits(hits []hit, k int) []hit { return topK(hits, k, better) }

// topK is the bounded selection core shared by the worker-side rankHits
// and the router-side MergeRanked (see ranked.go): it orders h so that
// the first min(k, len) entries are the best under cmp, in rank order.
// k < 0 (or k >= len) sorts everything; otherwise h[:k] is maintained as
// a min-heap rooted at the worst kept element while the tail streams
// through, O(n log k).
func topK[T any](h []T, k int, cmp func(T, T) bool) []T {
	if k < 0 || k >= len(h) {
		sort.Slice(h, func(i, j int) bool { return cmp(h[i], h[j]) })
		return h
	}
	if k == 0 {
		return h[:0]
	}
	heap := h[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(heap, i, cmp)
	}
	for _, x := range h[k:] {
		if cmp(x, heap[0]) {
			heap[0] = x
			siftDown(heap, 0, cmp)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return cmp(heap[i], heap[j]) })
	return heap
}

// siftDown restores the min-heap property (worst element at the root)
// from index i.
func siftDown[T any](h []T, i int, cmp func(T, T) bool) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h) && cmp(h[worst], h[l]) {
			worst = l
		}
		if r < len(h) && cmp(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// pageBounds clamps [offset, offset+limit) to n items. limit < 0 means
// "everything after offset".
func pageBounds(n, offset, limit int) (lo, hi int) {
	if offset < 0 {
		offset = 0
	}
	if offset > n {
		offset = n
	}
	if limit < 0 {
		return offset, n
	}
	hi = offset + limit
	if hi > n {
		hi = n
	}
	return offset, hi
}
