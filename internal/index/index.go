// Package index is StoryPivot's incremental query-serving index: an
// inverted view over the current alignment result that answers the
// demo's exploration queries — free-text search, stories-by-entity, and
// per-entity timelines (paper §4.2) — without scanning every integrated
// story and without materialising map-form centroids per query.
//
// Three structures are maintained:
//
//   - entity postings: entity symbol → {story, mentionCount} list,
//     backing StoriesByEntity ranking;
//   - term postings: term symbol → {story, centroidWeight} list,
//     backing ranked free-text Search;
//   - timeline segments: entity symbol → time-bucketed chronological
//     snippet runs, backing Timeline without walking unrelated stories.
//
// The index is updated by delta, never rebuilt: Publish diffs each fresh
// alignment result against the entry table keyed on Story.Gen (the
// mutation counter introduced for the windowed-aggregate cache). A story
// whose generation is unchanged costs an O(1) position update; a changed
// story tombstones its old postings in O(1) — the entry's generation
// moves past them — and appends new ones. Stale postings are skipped by
// readers and physically removed by the compactor once they exceed a
// fraction of the live set.
//
// Reads run under an RWMutex read lock and never block each other;
// Publish and sweeps take the write lock. Queries therefore never
// contend with ingest shards — ingestion only touches the index when an
// alignment pass publishes.
package index

import (
	"sync"
	"time"

	"repro/internal/align"
	"repro/internal/event"
)

// Writer is the narrow mutation interface through which the stream
// engine feeds the index: every freshly computed alignment result —
// whether triggered by ingest, auto-alignment, refinement moves, or
// source removal — is published exactly once. *Index implements it.
type Writer interface {
	Publish(res *align.Result)
}

// Options configures an Index. The zero value selects defaults.
type Options struct {
	// TimelineBucket is the width of the timeline time partitions
	// (default 72h).
	TimelineBucket time.Duration
	// SweepMinStale is the minimum number of tombstoned postings before
	// a sweep is considered (default 64).
	SweepMinStale int
	// SweepRatio triggers a sweep when stale postings exceed this
	// fraction of live postings (default 0.25).
	SweepRatio float64
}

func (o Options) withDefaults() Options {
	if o.TimelineBucket <= 0 {
		o.TimelineBucket = defaultTimelineBucket
	}
	if o.SweepMinStale <= 0 {
		o.SweepMinStale = 64
	}
	if o.SweepRatio <= 0 {
		o.SweepRatio = 0.25
	}
	return o
}

// storyEntry is the per-story index record. The generation is the
// liveness oracle for every posting of the story; pos locates the
// integrated story the member currently belongs to (positions are
// reassigned wholesale on every publish, so they are never stale).
type storyEntry struct {
	gen   uint64
	pos   int32
	npost int32 // postings written for this (story, gen): entity + term + timeline
}

// Index is the incrementally maintained read index. It is safe for
// concurrent use: any number of readers proceed in parallel; Publish
// and Sweep serialise behind the write lock.
type Index struct {
	opts        Options
	bucketWidth time.Duration

	mu         sync.RWMutex
	stories    map[event.StoryID]*storyEntry
	ents       map[uint32][]cpost
	terms      map[uint32][]wpost
	timelines  map[uint32]*timeline
	integrated []*event.IntegratedStory

	// livePosts/stalePosts track posting population for sweep pacing.
	livePosts  int
	stalePosts int

	// dirtySegs collects timeline segments appended to during the
	// in-progress publish; finishTimelines drains it.
	dirtySegs []*tlSegment

	epoch uint64

	// Compactor lifecycle. lifeMu makes StartCompactor/Close safe to
	// race from different goroutines (the server's shutdown path closes
	// the pipeline from a signal handler while the serving goroutines
	// are still live).
	lifeMu   sync.Mutex
	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// New creates an empty index.
func New(opts Options) *Index {
	opts = opts.withDefaults()
	return &Index{
		opts:        opts,
		bucketWidth: opts.TimelineBucket,
		stories:     make(map[event.StoryID]*storyEntry),
		ents:        make(map[uint32][]cpost),
		terms:       make(map[uint32][]wpost),
		timelines:   make(map[uint32]*timeline),
		stopCh:      make(chan struct{}),
	}
}

// Publish applies one alignment result to the index as a delta. Member
// stories are diffed against the entry table by Story.Gen: unchanged
// generations only refresh their integrated-story position; changed or
// new stories rebuild their postings from the flat vocab vectors
// (EntityFreq, Centroid, snippet EntityIDs); stories absent from the
// result are tombstoned. Implements Writer.
func (x *Index) Publish(res *align.Result) {
	if res == nil {
		return
	}
	span := metPublishLat.Start()
	defer span.End()
	x.mu.Lock()
	defer x.mu.Unlock()
	x.epoch++
	metPublishes.Inc()

	seen := make(map[event.StoryID]struct{}, len(x.stories))
	var updated, skipped uint64
	for pos, is := range res.Integrated {
		for _, m := range is.Members {
			seen[m.ID] = struct{}{}
			e := x.stories[m.ID]
			switch {
			case e != nil && e.gen == m.Gen():
				e.pos = int32(pos)
				skipped++
			case e != nil:
				// Changed: the generation bump below invalidates every
				// posting written for the old generation.
				x.stalePosts += int(e.npost)
				x.livePosts -= int(e.npost)
				e.gen = m.Gen()
				e.pos = int32(pos)
				e.npost = x.addPostings(m)
				updated++
			default:
				x.stories[m.ID] = &storyEntry{
					gen:   m.Gen(),
					pos:   int32(pos),
					npost: x.addPostings(m),
				}
				updated++
			}
		}
	}
	var removed uint64
	for id, e := range x.stories {
		if _, ok := seen[id]; !ok {
			x.stalePosts += int(e.npost)
			x.livePosts -= int(e.npost)
			delete(x.stories, id)
			removed++
		}
	}
	x.integrated = res.Integrated
	x.finishTimelines()
	if x.shouldSweepLocked() {
		x.sweepLocked()
	}

	metStoriesUpdated.Add(updated)
	metStoriesSkipped.Add(skipped)
	metStoriesRemoved.Add(removed)
	metStoriesGauge.Set(int64(len(x.stories)))
	metLiveGauge.Set(int64(x.livePosts))
	metStaleGauge.Set(int64(x.stalePosts))
}

// addPostings writes the story's postings under the given entry
// generation and returns how many were written. Reads only the flat
// interned vectors — never the map-form aggregates.
func (x *Index) addPostings(st *event.Story) int32 {
	gen := st.Gen()
	n := 0
	for _, ec := range st.EntityFreq {
		x.ents[ec.ID] = append(x.ents[ec.ID], cpost{story: st.ID, gen: gen, n: ec.N})
		n++
	}
	for _, tw := range st.Centroid {
		x.terms[tw.ID] = append(x.terms[tw.ID], wpost{story: st.ID, gen: gen, w: tw.W})
		n++
	}
	n += x.addTimelinePosts(st, gen)
	x.livePosts += n
	return int32(n)
}

// live reports whether a posting written for (story, gen) is still
// current. Callers hold at least the read lock.
func (x *Index) live(story event.StoryID, gen uint64) (*storyEntry, bool) {
	e := x.stories[story]
	if e == nil || e.gen != gen {
		return nil, false
	}
	return e, true
}

// Epoch returns the number of publishes applied so far (diagnostics and
// tests).
func (x *Index) Epoch() uint64 {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.epoch
}

// Stats is a point-in-time size snapshot of the index.
type Stats struct {
	Stories       int
	LivePostings  int
	StalePostings int
	Integrated    int
}

// Stats returns current population counters.
func (x *Index) Stats() Stats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return Stats{
		Stories:       len(x.stories),
		LivePostings:  x.livePosts,
		StalePostings: x.stalePosts,
		Integrated:    len(x.integrated),
	}
}

func (x *Index) shouldSweepLocked() bool {
	return x.stalePosts >= x.opts.SweepMinStale &&
		float64(x.stalePosts) >= x.opts.SweepRatio*float64(x.livePosts)
}

// Sweep forces a full tombstone sweep regardless of thresholds.
func (x *Index) Sweep() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.sweepLocked()
}

// SweepIfStale sweeps only when the stale fraction crossed the
// configured thresholds; the background compactor calls this.
func (x *Index) SweepIfStale() bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	if !x.shouldSweepLocked() {
		return false
	}
	x.sweepLocked()
	return true
}

// sweepLocked compacts every posting list and timeline segment in
// place, dropping postings whose (story, gen) is no longer live.
func (x *Index) sweepLocked() {
	span := metSweepLat.Start()
	defer span.End()
	metSweeps.Inc()
	var swept uint64
	for id, list := range x.ents {
		w := 0
		for _, p := range list {
			if _, ok := x.live(p.story, p.gen); ok {
				list[w] = p
				w++
			}
		}
		swept += uint64(len(list) - w)
		if w == 0 {
			delete(x.ents, id)
		} else {
			x.ents[id] = list[:w]
		}
	}
	for id, list := range x.terms {
		w := 0
		for _, p := range list {
			if _, ok := x.live(p.story, p.gen); ok {
				list[w] = p
				w++
			}
		}
		swept += uint64(len(list) - w)
		if w == 0 {
			delete(x.terms, id)
		} else {
			x.terms[id] = list[:w]
		}
	}
	for eid, tl := range x.timelines {
		keys := tl.keys[:0]
		for _, key := range tl.keys {
			seg := tl.buckets[key]
			w := 0
			for _, p := range seg.posts {
				if _, ok := x.live(p.story, p.gen); ok {
					seg.posts[w] = p
					w++
				}
			}
			swept += uint64(len(seg.posts) - w)
			if w == 0 {
				delete(tl.buckets, key)
			} else {
				seg.posts = seg.posts[:w]
				keys = append(keys, key)
			}
		}
		tl.keys = keys
		if len(tl.keys) == 0 {
			delete(x.timelines, eid)
		}
	}
	x.stalePosts = 0
	metSweptPostings.Add(swept)
	metStaleGauge.Set(0)
	metLiveGauge.Set(int64(x.livePosts))
}

// StartCompactor launches the background tombstone compactor: a
// goroutine that periodically sweeps stale postings once they cross the
// configured thresholds. Stop it with Close. Calling StartCompactor
// more than once, or after Close, is a no-op.
func (x *Index) StartCompactor(interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	x.lifeMu.Lock()
	defer x.lifeMu.Unlock()
	select {
	case <-x.stopCh:
		return // already closed
	default:
	}
	if x.done != nil {
		return // already running
	}
	x.done = make(chan struct{})
	go func() {
		defer close(x.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-x.stopCh:
				return
			case <-t.C:
				x.SweepIfStale()
			}
		}
	}()
}

// Close stops the background compactor (if started) and waits for it
// to exit. The index remains queryable after Close; it is idempotent
// and safe to race with StartCompactor.
func (x *Index) Close() {
	x.stopOnce.Do(func() { close(x.stopCh) })
	x.lifeMu.Lock()
	done := x.done
	x.lifeMu.Unlock()
	if done != nil {
		<-done
	}
}
