package index

import (
	"sort"
	"time"

	"repro/internal/event"
)

// Timeline segments: per-entity chronological snippet runs partitioned
// by fixed time windows. The per-entity Timeline query walks only the
// buckets of that entity, in key order, instead of every snippet of
// every integrated story. Buckets are keyed by timestamp/width, so the
// concatenation of sorted buckets in key order is globally sorted by
// (timestamp, snippet ID) — equal timestamps always share a bucket.

// tlPost is one timeline posting: a snippet reference plus the
// (story, generation) pair that validates it against the entry table.
type tlPost struct {
	sn    *event.Snippet
	story event.StoryID
	gen   uint64
}

// tlSegment is one (entity, time-bucket) run.
type tlSegment struct {
	posts []tlPost
	// dirty marks segments appended to during the current publish;
	// finishTimelines re-sorts them before the write lock is released,
	// so readers always see sorted runs.
	dirty bool
}

// timeline is one entity's segment set. keys mirrors the bucket map in
// ascending order so queries walk chronologically without sorting.
type timeline struct {
	buckets map[int64]*tlSegment
	keys    []int64
}

func (tl *timeline) segment(key int64) *tlSegment {
	if seg, ok := tl.buckets[key]; ok {
		return seg
	}
	seg := &tlSegment{}
	tl.buckets[key] = seg
	i := sort.Search(len(tl.keys), func(i int) bool { return tl.keys[i] >= key })
	tl.keys = append(tl.keys, 0)
	copy(tl.keys[i+1:], tl.keys[i:])
	tl.keys[i] = key
	return seg
}

// addTimelinePosts writes one posting per (snippet, entity) of the story
// into the entity timelines and returns how many were written.
func (x *Index) addTimelinePosts(st *event.Story, gen uint64) int {
	n := 0
	for _, sn := range st.Snippets {
		key := sn.Timestamp.UnixNano() / int64(x.bucketWidth)
		for _, eid := range sn.EntityIDs {
			tl := x.timelines[eid]
			if tl == nil {
				tl = &timeline{buckets: make(map[int64]*tlSegment)}
				x.timelines[eid] = tl
			}
			seg := tl.segment(key)
			seg.posts = append(seg.posts, tlPost{sn: sn, story: st.ID, gen: gen})
			if !seg.dirty {
				seg.dirty = true
				x.dirtySegs = append(x.dirtySegs, seg)
			}
			n++
		}
	}
	return n
}

// finishTimelines restores sorted order in every segment touched by the
// current publish. Called under the write lock, once per publish.
func (x *Index) finishTimelines() {
	for _, seg := range x.dirtySegs {
		sort.Slice(seg.posts, func(i, j int) bool {
			a, b := seg.posts[i].sn, seg.posts[j].sn
			if !a.Timestamp.Equal(b.Timestamp) {
				return a.Timestamp.Before(b.Timestamp)
			}
			if a.ID != b.ID {
				return a.ID < b.ID
			}
			// Same snippet posted for an old and a new story generation:
			// order is immaterial (at most one is live) but must be
			// deterministic.
			if seg.posts[i].story != seg.posts[j].story {
				return seg.posts[i].story < seg.posts[j].story
			}
			return seg.posts[i].gen < seg.posts[j].gen
		})
		seg.dirty = false
	}
	x.dirtySegs = x.dirtySegs[:0]
}

// defaultTimelineBucket partitions entity timelines into 3-day runs: a
// week-scale story contributes to a handful of segments, while a
// half-year corpus stays ~60 buckets deep for even the most persistent
// entity.
const defaultTimelineBucket = 72 * time.Hour
