package index

// Router-side merge of per-shard ranked pages. A scatter-gather router
// fetches the top offset+limit results from every shard and must reduce
// them to the global top-k under exactly the ordering the worker-side
// query path uses (see better in postings.go): score descending, ties by
// ascending integrated ID. Exporting the merge from this package — on
// the same bounded-heap core as rankHits — is what makes the sharded
// byte-identity differential an invariant rather than a coincidence.

// Ranked is one entry of a shard's ranked result page: the integrated
// story ID (the global tie-break key), its score, and where it came from
// (shard number and position within that shard's page) so the caller can
// map merged winners back to the payloads it is holding.
type Ranked struct {
	Key   uint64  // integrated story ID
	Score float64 // query score as reported by the shard
	Shard int32   // index of the originating shard
	Pos   int32   // position within that shard's page
}

// BetterRanked reports whether x ranks strictly before y: higher score
// first, ties by ascending Key. This mirrors better(hit, hit) — the two
// must agree or router pagination diverges from single-node pagination.
func BetterRanked(x, y Ranked) bool {
	if x.Score != y.Score {
		return x.Score > y.Score
	}
	return x.Key < y.Key
}

// MergeRanked merges per-shard ranked pages into the global top-k, in
// rank order. Entries sharing a Key (a story replicated across pages,
// e.g. after a shard handoff replay) are deduplicated keeping the
// best-ranked occurrence. k < 0 means "all". The result is never nil and
// is safe for the caller to retain; the input pages are not modified.
func MergeRanked(pages [][]Ranked, k int) []Ranked {
	n := 0
	for _, p := range pages {
		n += len(p)
	}
	all := make([]Ranked, 0, n)
	for _, p := range pages {
		all = append(all, p...)
	}
	if len(all) > 1 {
		seen := make(map[uint64]int, len(all))
		uniq := all[:0]
		for _, r := range all {
			if i, dup := seen[r.Key]; dup {
				if BetterRanked(r, uniq[i]) {
					uniq[i] = r
				}
				continue
			}
			seen[r.Key] = len(uniq)
			uniq = append(uniq, r)
		}
		all = uniq
	}
	if k == 0 {
		return all[:0]
	}
	return topK(all, k, BetterRanked)
}
