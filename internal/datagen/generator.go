package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/event"
)

// Config parameterises corpus generation. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	Seed int64

	// Corpus shape.
	Sources  int // number of data sources
	Stories  int // number of ground-truth stories
	Entities int // size of the entity universe (Zipfian popularity)
	Vocab    int // size of the description vocabulary

	// Story lifecycle.
	Start          time.Time     // corpus start (paper: June 1st 2014)
	Span           time.Duration // corpus span (paper: 6 months)
	MeanStoryLife  time.Duration // mean story duration
	EventsPerStory int           // mean number of real-world events per story
	Phases         int           // vocabulary phases per story (evolution)
	PhaseOverlap   float64       // fraction of vocabulary shared by adjacent phases

	// Topics models the domain structure of real news: stories belong to
	// topic families (conflicts, elections, markets, ...) and draw their
	// phase vocabulary from the family's shared pool, so *distinct*
	// stories of the same topic share vocabulary even though they are
	// separate real-world stories. This is the regime where
	// complete-history matching overfits (it chains temporally disjoint
	// same-topic stories) while sliding-window matching does not.
	// 0 means one isolated vocabulary per story (no sharing).
	Topics int
	// TopicVocab is the per-topic vocabulary pool size.
	TopicVocab int
	// EntityDrift is the fraction of a snippet's entities drawn from the
	// *current phase's* entity set rather than the story-wide backbone.
	// Real stories drift this way — the paper's Ukraine example starts
	// with protests (Kiev, protesters) and evolves into military conflict
	// (Donetsk, separatists) — and it is what makes whole-history
	// matching pay for its accumulated past. 0 disables drift.
	EntityDrift float64

	// Per-event snippet emission.
	Coverage     float64 // probability a source reports a given event
	MaxLag       time.Duration
	EntitiesPer  int     // entities sampled per snippet from the story core
	TermsPer     int     // description terms per snippet
	NoiseTermPct float64 // chance each term is drawn from global noise vocab
	NoiseEntPct  float64 // chance of one extra unrelated entity

	// Structural evolution (exercised by experiment E7).
	SplitFraction float64 // fraction of story pairs planted as "splits"
	MergeFraction float64 // fraction of stories whose early phase is split into two threads
}

// DefaultConfig mirrors the flavour of the paper's dataset panel at a
// laptop-friendly scale; experiments scale the knobs as needed.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Sources:        10,
		Stories:        40,
		Entities:       500,
		Vocab:          4000,
		Start:          time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC),
		Span:           183 * 24 * time.Hour,
		MeanStoryLife:  30 * 24 * time.Hour,
		EventsPerStory: 20,
		Phases:         3,
		PhaseOverlap:   0.5,
		Topics:         10,
		TopicVocab:     40,
		EntityDrift:    0.4,
		Coverage:       0.6,
		MaxLag:         36 * time.Hour,
		EntitiesPer:    3,
		TermsPer:       8,
		NoiseTermPct:   0.15,
		NoiseEntPct:    0.08,
		SplitFraction:  0,
		MergeFraction:  0,
	}
}

// StoryTruth describes one planted ground-truth story.
type StoryTruth struct {
	Label     uint64
	Core      []event.Entity
	Start     time.Time
	End       time.Time
	SplitOf   uint64 // non-zero: this story shares its first phase with that label
	HasThread bool   // true: first phase is split into two vocab threads (merge case)
}

// Corpus is a generated dataset: snippets in chronological order plus the
// ground-truth story assignment.
type Corpus struct {
	Config   Config
	Snippets []*event.Snippet
	Truth    map[event.SnippetID]uint64
	Stories  []StoryTruth
	Sources  []event.SourceID
}

// SourceOf returns the per-source snippet lists, preserving chronological
// order within each source.
func (c *Corpus) BySource() map[event.SourceID][]*event.Snippet {
	out := make(map[event.SourceID][]*event.Snippet, len(c.Sources))
	for _, s := range c.Snippets {
		out[s.Source] = append(out[s.Source], s)
	}
	return out
}

// Shuffled returns a copy of the snippet sequence in which approximately
// fraction of the snippets are displaced from chronological order
// (experiment E5: out-of-order delivery). The displacement is local — a
// displaced snippet swaps with a neighbour up to maxDisp positions away —
// matching the paper's observation that local media pick stories up faster
// than international media (bounded delays, not arbitrary reordering).
func (c *Corpus) Shuffled(fraction float64, maxDisp int, seed int64) []*event.Snippet {
	out := append([]*event.Snippet(nil), c.Snippets...)
	if fraction <= 0 || maxDisp <= 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range out {
		if rng.Float64() < fraction {
			j := i + 1 + rng.Intn(maxDisp)
			if j >= len(out) {
				j = len(out) - 1
			}
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// sourceProfile is a data source's reporting perspective (paper §1: sources
// report "with varying content and with varying levels of timeliness").
type sourceProfile struct {
	id       event.SourceID
	coverage float64       // probability of reporting an event
	lag      time.Duration // mean reporting lag
	bias     []string      // house vocabulary injected into descriptions
}

// Generate produces a corpus from the configuration. Generation is fully
// deterministic in Config.Seed.
func Generate(cfg Config) *Corpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Sources <= 0 || cfg.Stories <= 0 {
		return &Corpus{Config: cfg, Truth: map[event.SnippetID]uint64{}}
	}

	// Source profiles: coverage and lag vary per source around the config
	// means; each source gets a small house vocabulary.
	sources := make([]sourceProfile, cfg.Sources)
	srcIDs := make([]event.SourceID, cfg.Sources)
	for i := range sources {
		bias := make([]string, 3)
		for j := range bias {
			bias[j] = Word(cfg.Vocab + i*10 + j) // outside the story vocab range
		}
		sources[i] = sourceProfile{
			id:       event.SourceID(fmt.Sprintf("src%02d", i)),
			coverage: clamp01(cfg.Coverage * (0.6 + 0.8*rng.Float64())),
			lag:      time.Duration(rng.Int63n(int64(cfg.MaxLag) + 1)),
			bias:     bias,
		}
		srcIDs[i] = sources[i].id
	}

	entZipf := newZipf(cfg.Entities, 1.1)

	type phase struct {
		vocab []string
		extra []event.Entity
	}
	type story struct {
		truth  StoryTruth
		phases []phase
		events []time.Time
	}

	// Build stories.
	stories := make([]*story, cfg.Stories)
	nextVocab := 0
	takeVocab := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = Word(nextVocab % cfg.Vocab)
			nextVocab++
		}
		return out
	}
	// Topic vocabulary pools; stories of the same topic share a pool, and
	// topics also share an entity skew so same-topic stories look alike
	// the way recurring real-world coverage does.
	var topicPools [][]string
	for t := 0; t < cfg.Topics; t++ {
		size := cfg.TopicVocab
		if size <= 0 {
			size = 40
		}
		topicPools = append(topicPools, takeVocab(size))
	}
	sampleVocab := func(rng *rand.Rand, pool []string, n int) []string {
		if n >= len(pool) {
			return append([]string(nil), pool...)
		}
		perm := rng.Perm(len(pool))
		out := make([]string, n)
		for i := range out {
			out[i] = pool[perm[i]]
		}
		return out
	}
	for si := range stories {
		st := &story{}
		st.truth.Label = uint64(si + 1)
		// Core entities, Zipfian-popular.
		nCore := 2 + rng.Intn(3)
		seen := map[int]bool{}
		for len(st.truth.Core) < nCore {
			k := entZipf.draw(rng)
			if !seen[k] {
				seen[k] = true
				st.truth.Core = append(st.truth.Core, event.Entity(EntityName(k)))
			}
		}
		// Lifecycle.
		life := time.Duration(float64(cfg.MeanStoryLife) * (0.5 + rng.Float64()))
		if life > cfg.Span {
			life = cfg.Span
		}
		maxStart := cfg.Span - life
		var startOff time.Duration
		if maxStart > 0 {
			startOff = time.Duration(rng.Int63n(int64(maxStart)))
		}
		st.truth.Start = cfg.Start.Add(startOff)
		st.truth.End = st.truth.Start.Add(life)
		// Phases with overlapping vocabulary, drawn from the story's
		// topic pool when topics are configured.
		phases := cfg.Phases
		if phases < 1 {
			phases = 1
		}
		var pool []string
		if len(topicPools) > 0 {
			pool = topicPools[rng.Intn(len(topicPools))]
		}
		vocabPer := 12
		var prev []string
		for p := 0; p < phases; p++ {
			keep := int(float64(vocabPer) * cfg.PhaseOverlap)
			var v []string
			if p > 0 && keep > 0 && keep <= len(prev) {
				v = append(v, prev[len(prev)-keep:]...)
			}
			if pool != nil {
				v = append(v, sampleVocab(rng, pool, vocabPer-len(v))...)
			} else {
				v = append(v, takeVocab(vocabPer-len(v))...)
			}
			ph := phase{vocab: v}
			if cfg.EntityDrift > 0 {
				// Phase-specific entities: the actors that enter the
				// story during this phase.
				for k := 0; k < 2; k++ {
					ph.extra = append(ph.extra, event.Entity(EntityName(entZipf.draw(rng))))
				}
			} else if rng.Float64() < 0.5 {
				ph.extra = []event.Entity{event.Entity(EntityName(entZipf.draw(rng)))}
			}
			st.phases = append(st.phases, ph)
			prev = v
		}
		// Bursty event times: a burst at the start, Poisson-ish afterwards.
		n := 1 + int(float64(cfg.EventsPerStory)*(0.5+rng.Float64()))
		for e := 0; e < n; e++ {
			var frac float64
			if e < n/3 {
				frac = rng.Float64() * 0.25 // opening burst
			} else {
				frac = rng.Float64()
			}
			st.events = append(st.events, st.truth.Start.Add(time.Duration(frac*float64(life))))
		}
		sort.Slice(st.events, func(i, j int) bool { return st.events[i].Before(st.events[j]) })
		stories[si] = st
	}

	// Plant splits: story pairs (2i, 2i+1) model the paper's story
	// bifurcation ("political and economic events were interwoven during
	// the height of the Ukraine crisis while they started to separate
	// after the situation had stabilized"). The child story b:
	//   - starts mid-life of the parent a,
	//   - shares the parent's actors (core entities) plus one of its own,
	//   - opens with the parent's then-active vocabulary (the interwoven
	//     moment), then diverges into its own phases.
	// Single-pass identification glues b onto a (shared actors, shared
	// opening content); the split repair must separate the diverged tail.
	nSplit := int(cfg.SplitFraction * float64(cfg.Stories) / 2)
	for i := 0; i < nSplit && 2*i+1 < len(stories); i++ {
		a, b := stories[2*i], stories[2*i+1]
		aLife := a.truth.End.Sub(a.truth.Start)
		b.truth.Start = a.truth.Start.Add(aLife / 2)
		bLife := b.truth.End.Sub(b.truth.Start)
		if bLife <= 0 {
			bLife = aLife / 2
		}
		b.truth.End = b.truth.Start.Add(bLife)
		b.truth.SplitOf = a.truth.Label
		// Shared actors plus one own entity.
		own := b.truth.Core
		b.truth.Core = append(append([]event.Entity(nil), a.truth.Core...), own[0])
		// Opening phase = parent's mid-life phase; later phases stay b's.
		b.phases[0] = a.phases[len(a.phases)/2]
		// Re-anchor b's events into its new lifetime.
		for j := range b.events {
			frac := float64(j) / float64(len(b.events))
			b.events[j] = b.truth.Start.Add(time.Duration(frac * float64(bLife)))
		}
	}
	// Plant merges: a story's first phase is split into two disjoint vocab
	// threads; snippets alternate threads early, then converge. Single-pass
	// identification opens two stories; merge repair must join them.
	nMerge := int(cfg.MergeFraction * float64(cfg.Stories))
	for i := 0; i < nMerge; i++ {
		idx := len(stories) - 1 - i
		if idx < 2*nSplit {
			break
		}
		st := stories[idx]
		if len(st.phases) < 2 {
			continue
		}
		st.truth.HasThread = true
		st.phases = append([]phase{{vocab: takeVocab(12)}}, st.phases...)
	}

	// Emit snippets.
	corpus := &Corpus{Config: cfg, Truth: make(map[event.SnippetID]uint64), Sources: srcIDs}
	var nextID uint64
	for _, st := range stories {
		life := st.truth.End.Sub(st.truth.Start)
		for ei, et := range st.events {
			// Which phase is active at this event time?
			var pi int
			if life > 0 {
				pi = int(float64(et.Sub(st.truth.Start)) / float64(life) * float64(len(st.phases)))
			}
			if pi >= len(st.phases) {
				pi = len(st.phases) - 1
			}
			// Merge-thread stories alternate between phase 0 and 1 early.
			if st.truth.HasThread && pi <= 1 {
				pi = ei % 2
			}
			ph := st.phases[pi]
			for _, src := range sources {
				if rng.Float64() >= src.coverage {
					continue
				}
				nextID++
				lag := time.Duration(rng.Int63n(int64(src.lag) + 1))
				sn := &event.Snippet{
					ID:        event.SnippetID(nextID),
					Source:    src.id,
					Timestamp: et.Add(lag),
					Document:  fmt.Sprintf("http://%s/doc%d.html", src.id, nextID),
				}
				// Entities: a drifting mix of the story backbone and the
				// current phase's own actors.
				nDrift := 0
				if cfg.EntityDrift > 0 && len(ph.extra) > 0 {
					nDrift = int(float64(cfg.EntitiesPer)*cfg.EntityDrift + 0.5)
					if nDrift > len(ph.extra) {
						nDrift = len(ph.extra)
					}
				}
				nEnt := cfg.EntitiesPer - nDrift
				if nEnt > len(st.truth.Core) {
					nEnt = len(st.truth.Core)
				}
				perm := rng.Perm(len(st.truth.Core))
				for _, k := range perm[:nEnt] {
					sn.Entities = append(sn.Entities, st.truth.Core[k])
				}
				permD := rng.Perm(len(ph.extra))
				for _, k := range permD[:nDrift] {
					sn.Entities = append(sn.Entities, ph.extra[k])
				}
				if rng.Float64() < cfg.NoiseEntPct {
					sn.Entities = append(sn.Entities, event.Entity(EntityName(entZipf.draw(rng))))
				}
				// Terms: drawn from the active phase vocabulary with noise
				// and source-bias words.
				for t := 0; t < cfg.TermsPer; t++ {
					var tok string
					if rng.Float64() < cfg.NoiseTermPct {
						tok = Word(rng.Intn(cfg.Vocab))
					} else {
						tok = ph.vocab[rng.Intn(len(ph.vocab))]
					}
					sn.Terms = append(sn.Terms, event.Term{Token: tok, Weight: 0.5 + rng.Float64()})
				}
				sn.Terms = append(sn.Terms, event.Term{
					Token:  src.bias[rng.Intn(len(src.bias))],
					Weight: 0.3,
				})
				sn.Normalize()
				corpus.Snippets = append(corpus.Snippets, sn)
				corpus.Truth[sn.ID] = st.truth.Label
			}
		}
		corpus.Stories = append(corpus.Stories, st.truth)
	}
	sort.Sort(event.ByTimestamp(corpus.Snippets))
	return corpus
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
