package datagen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// ExportGDELT renders the corpus as a GDELT 1.0 event-table export (58
// tab-separated columns, one row per snippet), for testing the GDELT
// ingestion path end to end. GDELT rows carry no free text, so the
// snippet's description terms are reduced to a CAMEO event code derived
// deterministically from its ground-truth story — exactly the fidelity
// loss a real GDELT consumer lives with.
func ExportGDELT(w io.Writer, c *Corpus, seed int64) error {
	bw := bufio.NewWriter(w)
	rng := rand.New(rand.NewSource(seed))
	cols := make([]string, 58)
	for _, sn := range c.Snippets {
		for i := range cols {
			cols[i] = ""
		}
		cols[0] = fmt.Sprintf("%d", sn.ID)
		cols[1] = sn.Timestamp.Format("20060102")
		if len(sn.Entities) > 0 {
			cols[5] = strings.ToUpper(string(sn.Entities[0]))
		}
		if len(sn.Entities) > 1 {
			cols[15] = strings.ToUpper(string(sn.Entities[1]))
		}
		cols[26] = storyCameoCode(c.Truth[sn.ID])
		cols[30] = fmt.Sprintf("%.1f", -10+20*rng.Float64()) // Goldstein
		cols[31] = fmt.Sprintf("%d", 1+rng.Intn(30))         // NumMentions
		cols[57] = fmt.Sprintf("http://%s.example.com/doc%d.html", sn.Source, sn.ID)
		if _, err := bw.WriteString(strings.Join(cols, "\t")); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// storyCameoCode deterministically maps a ground-truth story label onto a
// plausible CAMEO code, so same-story rows share an event-type signal the
// way real coverage of one story clusters in a few CAMEO classes.
func storyCameoCode(label uint64) string {
	codes := []string{
		"010", "020", "036", "042", "051", "057", "061", "071",
		"090", "094", "100", "111", "112", "120", "130", "138",
		"141", "145", "162", "173", "180", "183", "190", "193", "195",
	}
	return codes[label%uint64(len(codes))]
}
