// Package datagen synthesises multi-source news-event corpora with ground
// truth. It substitutes the GDELT/EventRegistry feeds used by the paper
// (10M snippets, 50 sources, 500 entities, June–December 2014): the
// algorithms consume (source, timestamp, entities, description) tuples,
// and this generator produces tuples with the same schema and the same
// statistical structure — Zipfian entity popularity, bursty story
// lifecycles, evolving story vocabulary, per-source reporting perspectives
// — plus the ground-truth story labels real feeds lack, which makes the
// F-measure axis of the paper's Figure 7 computable.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
)

// syllables used to build pronounceable synthetic vocabulary words. Words
// are deterministic functions of their index, so corpora with equal seeds
// are identical across runs and platforms.
var onsets = []string{"b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "dr", "st", "tr", "kr", "pl"}
var nuclei = []string{"a", "e", "i", "o", "u", "ai", "ei", "ou"}
var codas = []string{"", "n", "r", "s", "t", "l", "m", "x"}

// Word returns the idx-th synthetic vocabulary word (2–3 syllables).
func Word(idx int) string {
	rng := rand.New(rand.NewSource(int64(idx)*2654435761 + 7))
	n := 2 + rng.Intn(2)
	w := ""
	for i := 0; i < n; i++ {
		w += onsets[rng.Intn(len(onsets))] + nuclei[rng.Intn(len(nuclei))]
	}
	return w + codas[rng.Intn(len(codas))]
}

// EntityName returns the idx-th synthetic entity identifier.
func EntityName(idx int) string { return fmt.Sprintf("ent_%04d", idx) }

// zipf draws from {0..n-1} with P(k) ∝ 1/(k+1)^s using the provided RNG.
// A small alias-free inversion over precomputed cumulative weights is
// built per call site via newZipf.
type zipfSampler struct {
	cum []float64
}

func newZipf(n int, s float64) *zipfSampler {
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / pow(float64(k+1), s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &zipfSampler{cum: cum}
}

func (z *zipfSampler) draw(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
