package datagen

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Sources = 4
	cfg.Stories = 8
	cfg.EventsPerStory = 6
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a.Snippets) != len(b.Snippets) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Snippets), len(b.Snippets))
	}
	for i := range a.Snippets {
		x, y := a.Snippets[i], b.Snippets[i]
		if x.ID != y.ID || x.Source != y.Source || !x.Timestamp.Equal(y.Timestamp) ||
			len(x.Entities) != len(y.Entities) || len(x.Terms) != len(y.Terms) {
			t.Fatalf("snippet %d differs: %+v vs %+v", i, x, y)
		}
	}
	// Different seed -> different corpus.
	cfg := smallConfig()
	cfg.Seed = 99
	c := Generate(cfg)
	if len(c.Snippets) == len(a.Snippets) {
		same := true
		for i := range c.Snippets {
			if c.Snippets[i].Source != a.Snippets[i].Source {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical corpora")
		}
	}
}

func TestGenerateInvariants(t *testing.T) {
	cfg := smallConfig()
	c := Generate(cfg)
	if len(c.Snippets) == 0 {
		t.Fatal("empty corpus")
	}
	if len(c.Sources) != cfg.Sources {
		t.Fatalf("Sources = %d", len(c.Sources))
	}
	if len(c.Stories) != cfg.Stories {
		t.Fatalf("Stories = %d", len(c.Stories))
	}
	end := cfg.Start.Add(cfg.Span + cfg.MaxLag + time.Hour)
	seenIDs := map[event.SnippetID]bool{}
	for i, s := range c.Snippets {
		if err := s.Validate(); err != nil {
			t.Fatalf("snippet %d invalid: %v", i, err)
		}
		if seenIDs[s.ID] {
			t.Fatalf("duplicate snippet ID %d", s.ID)
		}
		seenIDs[s.ID] = true
		if _, ok := c.Truth[s.ID]; !ok {
			t.Fatalf("snippet %d missing from ground truth", s.ID)
		}
		if s.Timestamp.Before(cfg.Start) || s.Timestamp.After(end) {
			t.Fatalf("timestamp %s outside corpus span", s.Timestamp)
		}
		if i > 0 && s.Timestamp.Before(c.Snippets[i-1].Timestamp) {
			t.Fatal("snippets not chronological")
		}
	}
	// Every story label in truth is a planted story.
	labels := map[uint64]bool{}
	for _, st := range c.Stories {
		labels[st.Label] = true
	}
	for id, l := range c.Truth {
		if !labels[l] {
			t.Fatalf("snippet %d has unknown label %d", id, l)
		}
	}
}

func TestGenerateSnippetsShareStorySignal(t *testing.T) {
	// Two snippets of the same story should share at least one entity far
	// more often than snippets of different stories.
	c := Generate(smallConfig())
	byStory := map[uint64][]*event.Snippet{}
	for _, s := range c.Snippets {
		l := c.Truth[s.ID]
		byStory[l] = append(byStory[l], s)
	}
	shareEntity := func(a, b *event.Snippet) bool {
		for _, e := range a.Entities {
			if b.HasEntity(e) {
				return true
			}
		}
		return false
	}
	sameShare, sameTotal := 0, 0
	for _, sns := range byStory {
		for i := 0; i+1 < len(sns) && i < 20; i++ {
			sameTotal++
			if shareEntity(sns[i], sns[i+1]) {
				sameShare++
			}
		}
	}
	if sameTotal == 0 {
		t.Fatal("no same-story pairs")
	}
	if frac := float64(sameShare) / float64(sameTotal); frac < 0.8 {
		t.Fatalf("same-story entity sharing %.2f too low", frac)
	}
}

func TestBySourcePartition(t *testing.T) {
	c := Generate(smallConfig())
	parts := c.BySource()
	total := 0
	for src, sns := range parts {
		total += len(sns)
		for i, s := range sns {
			if s.Source != src {
				t.Fatalf("wrong partition for %d", s.ID)
			}
			if i > 0 && s.Timestamp.Before(sns[i-1].Timestamp) {
				t.Fatal("partition not chronological")
			}
		}
	}
	if total != len(c.Snippets) {
		t.Fatalf("partitions cover %d of %d", total, len(c.Snippets))
	}
}

func TestShuffled(t *testing.T) {
	c := Generate(smallConfig())
	// Zero fraction: identical order.
	same := c.Shuffled(0, 10, 1)
	for i := range same {
		if same[i].ID != c.Snippets[i].ID {
			t.Fatal("zero-fraction shuffle changed order")
		}
	}
	// Positive fraction: same multiset, different order, original intact.
	sh := c.Shuffled(0.5, 20, 1)
	if len(sh) != len(c.Snippets) {
		t.Fatal("shuffle changed length")
	}
	moved := 0
	seen := map[event.SnippetID]bool{}
	for i := range sh {
		seen[sh[i].ID] = true
		if sh[i].ID != c.Snippets[i].ID {
			moved++
		}
	}
	if len(seen) != len(c.Snippets) {
		t.Fatal("shuffle lost snippets")
	}
	if moved == 0 {
		t.Fatal("shuffle moved nothing")
	}
	for i := 1; i < len(c.Snippets); i++ {
		if c.Snippets[i].Timestamp.Before(c.Snippets[i-1].Timestamp) {
			t.Fatal("original corpus mutated by Shuffled")
		}
	}
}

func TestPlantedSplits(t *testing.T) {
	cfg := smallConfig()
	cfg.SplitFraction = 0.5
	c := Generate(cfg)
	splits := 0
	for _, st := range c.Stories {
		if st.SplitOf == 0 {
			continue
		}
		splits++
		var parent *StoryTruth
		for i := range c.Stories {
			if c.Stories[i].Label == st.SplitOf {
				parent = &c.Stories[i]
			}
		}
		if parent == nil {
			t.Fatal("split parent missing")
		}
		// The child shares all of the parent's actors plus one of its own.
		if len(st.Core) != len(parent.Core)+1 {
			t.Fatalf("child core size %d, want parent %d + 1", len(st.Core), len(parent.Core))
		}
		for i := range parent.Core {
			if st.Core[i] != parent.Core[i] {
				t.Fatal("child does not share parent cores")
			}
		}
		// The child starts mid-life of the parent.
		if !st.Start.After(parent.Start) {
			t.Fatal("child does not start after parent")
		}
	}
	if splits == 0 {
		t.Fatal("no splits planted")
	}
}

func TestPlantedMerges(t *testing.T) {
	cfg := smallConfig()
	cfg.MergeFraction = 0.4
	c := Generate(cfg)
	merges := 0
	for _, st := range c.Stories {
		if st.HasThread {
			merges++
		}
	}
	if merges == 0 {
		t.Fatal("no merge threads planted")
	}
}

func TestGenerateDegenerate(t *testing.T) {
	c := Generate(Config{})
	if len(c.Snippets) != 0 {
		t.Fatal("zero config should be empty")
	}
	cfg := DefaultConfig()
	cfg.Sources = 1
	cfg.Stories = 1
	cfg.EventsPerStory = 1
	c = Generate(cfg)
	if len(c.Snippets) == 0 {
		// With coverage < 1 a tiny corpus may be empty for some seeds;
		// ensure it is not systematically broken by trying a full-coverage
		// run.
		cfg.Coverage = 1.0
		c = Generate(cfg)
		if len(c.Snippets) == 0 {
			t.Fatal("single-story full-coverage corpus is empty")
		}
	}
}

func TestWordsDeterministicAndPlausible(t *testing.T) {
	if Word(17) != Word(17) {
		t.Fatal("Word not deterministic")
	}
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		w := Word(i)
		if len(w) < 3 {
			t.Fatalf("Word(%d) = %q too short", i, w)
		}
		seen[w] = true
	}
	if len(seen) < 400 {
		t.Fatalf("only %d distinct words in 500", len(seen))
	}
	if EntityName(3) != "ent_0003" {
		t.Fatalf("EntityName = %q", EntityName(3))
	}
}

func TestZipfSkew(t *testing.T) {
	z := newZipf(100, 1.1)
	rng := randNew(5)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.draw(rng)]++
	}
	if !(counts[0] > counts[10] && counts[10] > counts[50]) {
		t.Fatalf("zipf not skewed: head=%d mid=%d tail=%d", counts[0], counts[10], counts[50])
	}
}

func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestExportGDELTFormat(t *testing.T) {
	cfg := smallConfig()
	c := Generate(cfg)
	var buf bytes.Buffer
	if err := ExportGDELT(&buf, c, 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(c.Snippets) {
		t.Fatalf("exported %d rows for %d snippets", len(lines), len(c.Snippets))
	}
	// Same truth story -> same CAMEO code; rows have 58 columns.
	codeByStory := map[uint64]string{}
	for i, line := range lines {
		cols := strings.Split(line, "\t")
		if len(cols) != 58 {
			t.Fatalf("row %d has %d columns", i, len(cols))
		}
		sn := c.Snippets[i]
		label := c.Truth[sn.ID]
		if prev, ok := codeByStory[label]; ok && prev != cols[26] {
			t.Fatalf("story %d has codes %s and %s", label, prev, cols[26])
		}
		codeByStory[label] = cols[26]
		if cols[26] == "" {
			t.Fatalf("row %d missing CAMEO code", i)
		}
		if !strings.HasPrefix(cols[57], "http://") {
			t.Fatalf("row %d bad source URL %q", i, cols[57])
		}
	}
	// Deterministic in the seed.
	var buf2 bytes.Buffer
	ExportGDELT(&buf2, c, 1)
	if buf.String() != buf2.String() {
		t.Fatal("ExportGDELT not deterministic")
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-0.5) != 0 || clamp01(1.5) != 1 || clamp01(0.3) != 0.3 {
		t.Fatal("clamp01 wrong")
	}
}
