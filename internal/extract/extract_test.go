package extract

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/text"
)

func TestGazetteerSingleWord(t *testing.T) {
	g := NewGazetteer()
	g.Add("ukraine", "UKR")
	g.Add("russia", "RUS")
	toks := text.StemAll(text.Tokenize("Russia accused Ukraine over the incident in Ukraine"))
	got := g.FindAll(toks)
	want := []event.Entity{"RUS", "UKR"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FindAll = %v, want %v (deduplicated, first-mention order)", got, want)
	}
}

func TestGazetteerLongestMatchWins(t *testing.T) {
	g := NewGazetteer()
	g.Add("malaysia", "MAL")
	g.Add("malaysia airlines", "MAL_AIR")
	toks := text.StemAll(text.Tokenize("Malaysia Airlines confirmed the crash in Malaysia"))
	got := g.FindAll(toks)
	want := []event.Entity{"MAL_AIR", "MAL"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FindAll = %v, want %v", got, want)
	}
}

func TestGazetteerInflectedForms(t *testing.T) {
	g := NewGazetteer()
	g.Add("russian", "RUS") // stems to "russian"; "Russians" also stems to "russian"
	toks := text.StemAll(text.Tokenize("The Russians deny involvement"))
	if got := g.FindAll(toks); len(got) != 1 || got[0] != "RUS" {
		t.Fatalf("inflected mention missed: %v", got)
	}
}

func TestGazetteerEmpty(t *testing.T) {
	g := NewGazetteer()
	g.Add("", "X") // no-op
	if g.Len() != 0 {
		t.Fatal("empty surface registered")
	}
	if got := g.FindAll([]string{"anything"}); got != nil {
		t.Fatalf("empty gazetteer matched: %v", got)
	}
}

func TestAnnotateExcludesEntityTokensFromContent(t *testing.T) {
	g := DefaultGazetteer()
	ents, content := g.Annotate("Malaysia Airlines plane crashed over Ukraine")
	if len(ents) != 2 || ents[0] != "MAL_AIR" || ents[1] != "UKR" {
		t.Fatalf("entities = %v", ents)
	}
	joined := strings.Join(content, " ")
	if strings.Contains(joined, "malaysia") || strings.Contains(joined, "ukrain") {
		t.Fatalf("entity tokens leaked into content: %v", content)
	}
	if !strings.Contains(joined, "crash") || !strings.Contains(joined, "plane") {
		t.Fatalf("content tokens missing: %v", content)
	}
}

func TestNormalizeEntityName(t *testing.T) {
	if got := NormalizeEntityName("Wall Street Journal"); got != "wall_street_journal" {
		t.Fatalf("NormalizeEntityName = %q", got)
	}
}

func doc(src event.SourceID, title, body string) *Document {
	return &Document{
		Source:    src,
		URL:       "http://example.com/doc",
		Title:     title,
		Body:      body,
		Published: time.Date(2014, 7, 17, 12, 0, 0, 0, time.UTC),
	}
}

func TestExtractorBasic(t *testing.T) {
	x := NewExtractor(DefaultGazetteer())
	d := doc("nyt", "Jetliner Explodes over Ukraine",
		"A Malaysian airplane with 298 people aboard exploded and crashed.\n\nPro-Russia separatists are suspected of shooting it down.")
	sns, err := x.Extract(d)
	if err != nil {
		t.Fatal(err)
	}
	// Title + 2 paragraphs = 3 snippets.
	if len(sns) != 3 {
		t.Fatalf("got %d snippets, want 3", len(sns))
	}
	for i, s := range sns {
		if err := s.Validate(); err != nil {
			t.Errorf("snippet %d invalid: %v", i, err)
		}
		if s.Source != "nyt" || !s.Timestamp.Equal(d.Published) || s.Document != d.URL {
			t.Errorf("snippet %d metadata wrong: %+v", i, s)
		}
	}
	// IDs strictly increasing.
	if !(sns[0].ID < sns[1].ID && sns[1].ID < sns[2].ID) {
		t.Error("snippet IDs not increasing")
	}
	// Title snippet mentions Ukraine.
	if !sns[0].HasEntity("UKR") {
		t.Errorf("title snippet entities = %v", sns[0].Entities)
	}
	// Terms carry positive weights.
	for _, tm := range sns[0].Terms {
		if tm.Weight <= 0 {
			t.Errorf("non-positive term weight: %+v", tm)
		}
	}
}

func TestExtractorDropsNoise(t *testing.T) {
	x := NewExtractor(DefaultGazetteer())
	d := doc("nyt", "", "Ok.\n\nHm.")
	if _, err := x.Extract(d); err != ErrNoContent {
		t.Fatalf("noise document error = %v, want ErrNoContent", err)
	}
}

func TestExtractorValidatesDocument(t *testing.T) {
	x := NewExtractor(DefaultGazetteer())
	if _, err := x.Extract(&Document{Body: "text", Published: time.Now()}); err != event.ErrNoSource {
		t.Errorf("missing source: %v", err)
	}
	if _, err := x.Extract(&Document{Source: "nyt", Body: "text"}); err != event.ErrNoTimestamp {
		t.Errorf("missing timestamp: %v", err)
	}
}

func TestExtractorIDFEvolves(t *testing.T) {
	x := NewExtractor(DefaultGazetteer())
	// Flood the corpus with "crash" so its IDF drops relative to a rare term.
	for i := 0; i < 20; i++ {
		x.Extract(doc("nyt", "", "The plane crash investigation continues today"))
	}
	sns, err := x.Extract(doc("nyt", "", "The plane crash shocked prosecutors worldwide"))
	if err != nil {
		t.Fatal(err)
	}
	var crashW, prosecutorW float64
	for _, tm := range sns[0].Terms {
		switch tm.Token {
		case "crash":
			crashW = tm.Weight
		case "prosecutor":
			prosecutorW = tm.Weight
		}
	}
	if crashW == 0 || prosecutorW == 0 {
		t.Fatalf("expected both terms present: %+v", sns[0].Terms)
	}
	if !(prosecutorW > crashW) {
		t.Fatalf("rare term weight %g should exceed common term %g", prosecutorW, crashW)
	}
}

func TestExtractAllSkipsBadDocuments(t *testing.T) {
	x := NewExtractor(DefaultGazetteer())
	docs := []*Document{
		doc("nyt", "Ukraine crisis deepens", "Sanctions were announced by the European Union."),
		{Source: "nyt"}, // invalid
		doc("wsj", "Google battles Yelp", "Yelp says Google is promoting its own content."),
	}
	got := x.ExtractAll(docs)
	if len(got) != 4 {
		t.Fatalf("ExtractAll yielded %d snippets, want 4 (2 docs x title+para)", len(got))
	}
}

func TestExtractorConcurrent(t *testing.T) {
	x := NewExtractor(DefaultGazetteer())
	done := make(chan int, 4)
	for g := 0; g < 4; g++ {
		go func() {
			n := 0
			for i := 0; i < 25; i++ {
				sns, err := x.Extract(doc("nyt", "Ukraine update", "Fighting continued around Donetsk as investigators waited."))
				if err == nil {
					n += len(sns)
				}
			}
			done <- n
		}()
	}
	total := 0
	for g := 0; g < 4; g++ {
		total += <-done
	}
	if total != 4*25*2 {
		t.Fatalf("extracted %d snippets, want %d", total, 4*25*2)
	}
	if int(x.NextID())-1 != total {
		t.Fatalf("ID counter %d != snippet count %d", x.NextID()-1, total)
	}
}

func TestExtractorBigrams(t *testing.T) {
	x := NewExtractor(DefaultGazetteer())
	x.Bigrams = true
	sns, err := x.Extract(doc("nyt", "", "The plane was shot down by prosecutors worldwide"))
	if err != nil {
		t.Fatal(err)
	}
	toks := map[string]bool{}
	for _, tm := range sns[0].Terms {
		toks[tm.Token] = true
	}
	if !toks["plane"] || !toks["shot"] {
		t.Fatalf("unigrams missing: %v", sns[0].Terms)
	}
	if !toks["plane_shot"] && !toks["shot_prosecutor"] {
		t.Fatalf("no bigrams emitted: %v", sns[0].Terms)
	}
	// Bigrams off by default.
	x2 := NewExtractor(DefaultGazetteer())
	sns2, _ := x2.Extract(doc("nyt", "", "The plane was shot down by prosecutors worldwide"))
	for _, tm := range sns2[0].Terms {
		if strings.Contains(tm.Token, "_") {
			t.Fatalf("bigram emitted with Bigrams off: %s", tm.Token)
		}
	}
}
