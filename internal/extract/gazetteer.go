// Package extract implements StoryPivot's snippet extraction pipeline
// (paper §2.1, Figure 1a): documents are broken into excerpts (title and
// paragraphs), each excerpt is annotated with the entities it mentions and
// a weighted description-term vector, and the result is emitted as an
// information snippet.
//
// The paper forwards excerpts to Open Calais for annotation; offline we
// substitute a gazetteer-based annotator: a dictionary of surface forms
// (including multi-word phrases such as "malaysia airlines") mapped to
// canonical entity identifiers, matched greedily over the token stream.
// This reproduces the property the downstream algorithms rely on — snippets
// carry entity sets and keyword vectors — without a network service.
package extract

import (
	"sort"
	"strings"

	"repro/internal/event"
	"repro/internal/text"
)

// Gazetteer maps surface-form phrases to canonical entities. Surface forms
// are stored as stemmed token sequences so that inflected mentions
// ("Russians") still resolve. Longest-match-wins at each position.
type Gazetteer struct {
	// entries maps the first token of each phrase to the candidate
	// phrases starting with it, longest first.
	entries map[string][]gazEntry
	size    int
}

type gazEntry struct {
	tokens []string
	entity event.Entity
}

// NewGazetteer creates an empty gazetteer.
func NewGazetteer() *Gazetteer {
	return &Gazetteer{entries: make(map[string][]gazEntry)}
}

// Add registers a surface form for an entity. The surface form is
// tokenised and stemmed with the standard pipeline (stopwords are kept:
// entity names like "United Nations" may contain them).
func (g *Gazetteer) Add(surface string, e event.Entity) {
	toks := text.StemAll(text.Tokenize(surface))
	if len(toks) == 0 {
		return
	}
	head := toks[0]
	g.entries[head] = append(g.entries[head], gazEntry{tokens: toks, entity: e})
	// Keep longest phrases first so greedy matching prefers them.
	sort.SliceStable(g.entries[head], func(i, j int) bool {
		return len(g.entries[head][i].tokens) > len(g.entries[head][j].tokens)
	})
	g.size++
}

// Len returns the number of registered surface forms.
func (g *Gazetteer) Len() int { return g.size }

// FindAll scans the stemmed token sequence and returns the entities
// mentioned, deduplicated, in order of first mention. Matching is greedy:
// at each position the longest registered phrase wins and consumes its
// tokens.
func (g *Gazetteer) FindAll(stemmedTokens []string) []event.Entity {
	var out []event.Entity
	seen := make(map[event.Entity]bool)
	for i := 0; i < len(stemmedTokens); {
		matched := false
		for _, entry := range g.entries[stemmedTokens[i]] {
			if i+len(entry.tokens) > len(stemmedTokens) {
				continue
			}
			ok := true
			for j, tok := range entry.tokens {
				if stemmedTokens[i+j] != tok {
					ok = false
					break
				}
			}
			if ok {
				if !seen[entry.entity] {
					seen[entry.entity] = true
					out = append(out, entry.entity)
				}
				i += len(entry.tokens)
				matched = true
				break
			}
		}
		if !matched {
			i++
		}
	}
	return out
}

// Annotate tokenises raw text and returns (entities, stemmed non-entity
// content tokens). Tokens consumed by entity mentions are excluded from
// the content tokens so that "Malaysia Airlines" does not also contribute
// description terms. Stopwords are tested against the *original* tokens
// (before stemming: "has" is a stopword, its stem "ha" is not a word).
func (g *Gazetteer) Annotate(raw string) ([]event.Entity, []string) {
	raws := text.Tokenize(raw)
	stemmed := make([]string, len(raws))
	for i, tok := range raws {
		stemmed[i] = text.Stem(tok)
	}
	var ents []event.Entity
	seen := make(map[event.Entity]bool)
	var content []string
	for i := 0; i < len(stemmed); {
		matched := false
		for _, entry := range g.entries[stemmed[i]] {
			if i+len(entry.tokens) > len(stemmed) {
				continue
			}
			ok := true
			for j, tok := range entry.tokens {
				if stemmed[i+j] != tok {
					ok = false
					break
				}
			}
			if ok {
				if !seen[entry.entity] {
					seen[entry.entity] = true
					ents = append(ents, entry.entity)
				}
				i += len(entry.tokens)
				matched = true
				break
			}
		}
		if !matched {
			if !text.IsStopword(raws[i]) && !text.IsStopword(stemmed[i]) {
				content = append(content, stemmed[i])
			}
			i++
		}
	}
	return ents, content
}

// DefaultGazetteer returns a gazetteer seeded with the entities of the
// paper's running examples (the MH17 downing, the Ukraine crisis, and the
// Google/Yelp story from Figure 3), useful for demos and tests.
func DefaultGazetteer() *Gazetteer {
	g := NewGazetteer()
	for surface, e := range map[string]event.Entity{
		"ukraine":           "UKR",
		"ukrainian":         "UKR",
		"russia":            "RUS",
		"russian":           "RUS",
		"malaysia":          "MAL",
		"malaysian":         "MAL",
		"malaysia airlines": "MAL_AIR",
		"netherlands":       "NTH",
		"dutch":             "NTH",
		"amsterdam":         "NTH",
		"united nations":    "UN",
		"united states":     "US",
		"european union":    "EU",
		"crimea":            "CRIMEA",
		"donetsk":           "DONETSK",
		"google":            "GOOG",
		"yelp":              "YELP",
		"israel":            "ISL",
		"israeli":           "ISL",
		"palestine":         "PAL",
		"palestinian":       "PAL",
		"boeing":            "BOEING",
		"wall street":       "WSTR",
		"new york":          "NYC",
	} {
		g.Add(surface, e)
	}
	return g
}

// NormalizeEntityName produces a canonical entity identifier from a free
// surface form: lowercase, words joined with underscores. Used by data
// generators when inventing entity universes.
func NormalizeEntityName(surface string) event.Entity {
	toks := text.Tokenize(surface)
	return event.Entity(strings.Join(toks, "_"))
}
