package extract

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/text"
)

// Document is a raw input document as fetched from a data source: a news
// article, a blog post, a report (paper Figure 1a).
type Document struct {
	Source    event.SourceID
	URL       string
	Title     string
	Body      string
	Published time.Time
}

// ErrNoContent is returned when a document yields no usable excerpts.
var ErrNoContent = errors.New("extract: document has no usable content")

// Extractor converts documents into annotated snippets. It owns a
// monotonically increasing snippet-ID counter and the TF-IDF corpus used
// to weigh description terms, so snippets from all sources share one
// weighting space. An Extractor is safe for concurrent use.
type Extractor struct {
	gaz    *Gazetteer
	corpus *text.Corpus
	nextID atomic.Uint64

	// MinTokens drops excerpts with fewer content tokens than this
	// (defaults to 2); one-word excerpts carry no matchable description.
	MinTokens int

	// Bigrams additionally emits adjacent-token bigrams ("shot_down")
	// as description terms. Phrase matches are a much stronger story
	// signal than the individual words; the cost is a larger term
	// vocabulary.
	Bigrams bool

	mu sync.Mutex
}

// NewExtractor creates an extractor over the given gazetteer.
func NewExtractor(gaz *Gazetteer) *Extractor {
	return &Extractor{gaz: gaz, corpus: text.NewCorpus(), MinTokens: 2}
}

// Corpus exposes the shared TF-IDF corpus (read-mostly; used by tests and
// the statistics module).
func (x *Extractor) Corpus() *text.Corpus { return x.corpus }

// NextID returns the next snippet ID without consuming it.
func (x *Extractor) NextID() event.SnippetID {
	return event.SnippetID(x.nextID.Load() + 1)
}

// SetNextID advances the ID counter so that future snippets receive IDs
// strictly greater than n. Used when resuming over a persisted store to
// avoid colliding with already-issued IDs; it never moves backwards.
func (x *Extractor) SetNextID(n uint64) {
	for {
		cur := x.nextID.Load()
		if cur >= n || x.nextID.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Extract breaks a document into excerpts (title plus paragraphs),
// annotates each, and returns the resulting snippets. Excerpts with no
// entities and fewer than MinTokens content tokens are dropped as noise.
// The document's publication time stamps every snippet; per the paper the
// timestamp records "when the event(s) in the snippet occurred", which the
// black-box extractor approximates with publication time.
func (x *Extractor) Extract(doc *Document) ([]*event.Snippet, error) {
	if doc.Source == "" {
		return nil, event.ErrNoSource
	}
	if doc.Published.IsZero() {
		return nil, event.ErrNoTimestamp
	}
	var excerpts []string
	if doc.Title != "" {
		excerpts = append(excerpts, doc.Title)
	}
	excerpts = append(excerpts, text.Paragraphs(doc.Body)...)

	var out []*event.Snippet
	for _, ex := range excerpts {
		ents, content := x.gaz.Annotate(ex)
		if len(ents) == 0 && len(content) < x.MinTokens {
			continue
		}
		if x.Bigrams {
			content = withBigrams(content)
		}
		// Update corpus stats, then weigh. Observing before weighing
		// means a term's own document counts toward its DF, which keeps
		// IDF finite for first occurrences.
		x.corpus.Observe(content)
		weighted := x.corpus.Weigh(content)
		terms := make([]event.Term, len(weighted))
		for i, wt := range weighted {
			terms[i] = event.Term{Token: wt.Token, Weight: wt.Weight}
		}
		sn := &event.Snippet{
			ID:        event.SnippetID(x.nextID.Add(1)),
			Source:    doc.Source,
			Timestamp: doc.Published,
			Entities:  ents,
			Terms:     terms,
			Text:      ex,
			Document:  doc.URL,
		}
		sn.Normalize()
		out = append(out, sn)
	}
	if len(out) == 0 {
		return nil, ErrNoContent
	}
	return out, nil
}

// withBigrams appends adjacent-token bigrams to the content tokens.
func withBigrams(tokens []string) []string {
	out := append([]string(nil), tokens...)
	for i := 0; i+1 < len(tokens); i++ {
		out = append(out, tokens[i]+"_"+tokens[i+1])
	}
	return out
}

// ExtractAll extracts a batch of documents, skipping documents that yield
// no content and collecting snippets in input order.
func (x *Extractor) ExtractAll(docs []*Document) []*event.Snippet {
	var out []*event.Snippet
	for _, d := range docs {
		sns, err := x.Extract(d)
		if err != nil {
			continue
		}
		out = append(out, sns...)
	}
	return out
}
