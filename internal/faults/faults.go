// Package faults is a fault-injection harness for end-to-end testing
// of the serving layer. It builds HTTP handlers (and an Injector
// middleware) that misbehave on demand — hang, panic, abort the
// connection mid-response, or fail N times — so tests can prove the
// resilience properties the httpx stack claims: shutdown drains,
// overload sheds, panics are contained.
//
// The primitives are deterministic, not probabilistic: a Blocker
// signals when a request has entered the handler and parks it until
// the test releases it, which lets tests overlap in-flight requests
// with shutdown or rebuild without sleeping and hoping.
package faults

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Blocker is a two-phase rendezvous for holding requests in flight.
// Each Wait() call signals Entered and then parks until Release (or
// the request context is cancelled). Tests typically: issue a request
// in a goroutine, receive from Entered to know it is inside the
// handler, trigger the behaviour under test, then Release.
type Blocker struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

// NewBlocker creates a Blocker able to buffer up to capacity
// concurrent Entered signals without a receiver.
func NewBlocker(capacity int) *Blocker {
	return &Blocker{
		entered: make(chan struct{}, capacity),
		release: make(chan struct{}),
	}
}

// Entered receives one signal per request that reached Wait.
func (b *Blocker) Entered() <-chan struct{} { return b.entered }

// Release unparks all current and future Wait calls. Idempotent.
func (b *Blocker) Release() { b.once.Do(func() { close(b.release) }) }

// Wait signals entry and parks until Release or done is closed.
func (b *Blocker) Wait(done <-chan struct{}) {
	select {
	case b.entered <- struct{}{}:
	default: // more entries than capacity: still park, just don't signal
	}
	select {
	case <-b.release:
	case <-done:
	}
}

// Handler returns a handler that parks in the Blocker, then (once
// released) delegates to inner. A nil inner answers 200 "ok".
func (b *Blocker) Handler(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.Wait(r.Context().Done())
		serveInner(inner, w, r)
	})
}

func serveInner(inner http.Handler, w http.ResponseWriter, r *http.Request) {
	if inner == nil {
		w.Write([]byte("ok"))
		return
	}
	inner.ServeHTTP(w, r)
}

// Slow returns a handler that sleeps d (or until the request context
// is cancelled) before delegating to inner.
func Slow(d time.Duration, inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
		}
		serveInner(inner, w, r)
	})
}

// Panicking returns a handler that panics with v on every request.
func Panicking(v any) http.Handler {
	return http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(v)
	})
}

// Abort returns a handler that writes a partial body and then aborts
// the connection via http.ErrAbortHandler — the sanctioned mid-response
// failure, as produced by a backend dying between header and body.
func Abort(partial string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if partial != "" {
			w.Write([]byte(partial))
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
		panic(http.ErrAbortHandler)
	})
}

// Injector is programmable per-request fault middleware: tests arm a
// behaviour (delay, one-shot panic, one-shot abort, fail-N) and every
// request consults the armed state before reaching the wrapped
// handler. All methods are safe for concurrent use.
type Injector struct {
	delay     atomic.Int64 // nanoseconds applied to every request
	panicOnce atomic.Bool
	abortOnce atomic.Bool
	failN     atomic.Int64
	failCode  atomic.Int64
}

// SetDelay makes every subsequent request sleep d before proceeding.
func (i *Injector) SetDelay(d time.Duration) { i.delay.Store(int64(d)) }

// PanicOnce arms a panic for the next request only.
func (i *Injector) PanicOnce() { i.panicOnce.Store(true) }

// AbortOnce arms a mid-response connection abort for the next request.
func (i *Injector) AbortOnce() { i.abortOnce.Store(true) }

// FailN makes the next n requests answer code without reaching the
// wrapped handler.
func (i *Injector) FailN(n int, code int) {
	i.failCode.Store(int64(code))
	i.failN.Store(int64(n))
}

// Wrap returns inner with the injector's armed faults applied first.
func (i *Injector) Wrap(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if i.panicOnce.CompareAndSwap(true, false) {
			panic("faults: injected panic")
		}
		if i.abortOnce.CompareAndSwap(true, false) {
			Abort("{\"partial\":").ServeHTTP(w, r)
			return
		}
		if n := i.failN.Add(-1); n >= 0 {
			http.Error(w, "injected failure", int(i.failCode.Load()))
			return
		}
		i.failN.Store(-1) // keep the counter from wandering toward MinInt64
		if d := time.Duration(i.delay.Load()); d > 0 {
			Slow(d, inner).ServeHTTP(w, r)
			return
		}
		serveInner(inner, w, r)
	})
}
