package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestBlockerRendezvous(t *testing.T) {
	b := NewBlocker(2)
	ts := httptest.NewServer(b.Handler(nil))
	defer ts.Close()

	var wg sync.WaitGroup
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL)
			if err != nil {
				results <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-b.Entered():
		case <-time.After(5 * time.Second):
			t.Fatal("request never entered the handler")
		}
	}
	select {
	case <-results:
		t.Fatal("request completed before Release")
	default:
	}
	b.Release()
	b.Release() // idempotent
	wg.Wait()
	close(results)
	for code := range results {
		if code != http.StatusOK {
			t.Fatalf("blocked request finished with %d", code)
		}
	}
}

func TestBlockerHonoursContextCancel(t *testing.T) {
	b := NewBlocker(1)
	done := make(chan struct{})
	close(done)
	finished := make(chan struct{})
	go func() {
		b.Wait(done) // released by done, never by Release
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait ignored done channel")
	}
}

func TestSlowDelaysThenServes(t *testing.T) {
	start := time.Now()
	rec := httptest.NewRecorder()
	Slow(30*time.Millisecond, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("served after %v, want >= 30ms", d)
	}
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Fatalf("slow handler = %d %q", rec.Code, rec.Body.String())
	}
}

func TestPanickingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("handler did not panic")
		}
	}()
	Panicking("boom").ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestInjectorFaults(t *testing.T) {
	var inj Injector
	ts := httptest.NewServer(inj.Wrap(nil))
	defer ts.Close()

	get := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get(); code != http.StatusOK {
		t.Fatalf("unarmed injector = %d", code)
	}
	inj.FailN(2, http.StatusServiceUnavailable)
	if a, b := get(), get(); a != http.StatusServiceUnavailable || b != http.StatusServiceUnavailable {
		t.Fatalf("FailN(2) = %d, %d", a, b)
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("after FailN exhausted = %d", code)
	}

	// An injected abort kills the connection mid-response: the client
	// sees a transport error, not a clean status.
	inj.AbortOnce()
	resp, err := http.Get(ts.URL)
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatal("aborted response read cleanly")
		}
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("after abort = %d", code)
	}
}

func TestInjectorDelay(t *testing.T) {
	var inj Injector
	inj.SetDelay(25 * time.Millisecond)
	start := time.Now()
	rec := httptest.NewRecorder()
	inj.Wrap(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delayed request served after %v", d)
	}
	inj.SetDelay(0)
}
