package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/event"
	"repro/internal/vocab"
)

// Archive is the cold-story archive: a reopenable, append-only segment
// log holding the full state of retired stories — members, aggregate
// vectors, and mutation counter — in the same CRC-framed record format
// as the event store and the feed DLQ. One record archives one story;
// records written in the same retirement pass share a group ticket so
// reactivation can restore a whole retired alignment component at once.
//
// The archive is a write-mostly structure: appends happen on every
// retirement pass and are fsynced before the engine detaches the live
// story (durable-before-detach — a crash can lose a retirement, never a
// story). Reads happen only on reactivation, via ReadStory against a
// record location, so nothing decoded stays resident. Entity and term
// symbols are stored as strings: vocab IDs are process-local and a
// reopened archive re-interns on decode.
//
// An Archive is not safe for concurrent use; the retirement manager
// serialises access behind its own lock.
type Archive struct {
	dir      string
	segLimit int64

	seg    *segment
	closed bool
}

// archiveVersion versions the record payload (inside the storage frame).
const archiveVersion = 1

// archiveSegLimit rotates archive segments past this size.
const archiveSegLimit = 64 << 20

// archiveTopTerms caps the descriptive-term fingerprint kept in metadata
// for stories with no entities.
const archiveTopTerms = 8

// ErrArchiveClosed reports use of a closed archive.
var ErrArchiveClosed = errors.New("storage: archive is closed")

// ArchiveLoc addresses one archived-story record on disk.
type ArchiveLoc struct {
	Seg int   // segment index
	Off int64 // byte offset of the record frame
	Len int   // frame length (header + payload)
}

// ArchivedStoryMeta is the resident footprint of one archived story: the
// identity, extent, and fingerprint needed to decide reactivation, plus
// the record location to decode the full state from. Snippets are NOT
// held here — that is the point of retirement.
type ArchivedStoryMeta struct {
	Loc        ArchiveLoc
	Group      uint64 // retirement-pass ticket shared by co-retired stories
	ID         event.StoryID
	Source     event.SourceID
	Gen        uint64
	Start, End time.Time
	Entities   []string // entity fingerprint (all entities, ascending count order not guaranteed)
	TopTerms   []string // fallback fingerprint for entity-free stories
}

// OpenArchive opens (creating if needed) the archive in dir and scans
// every segment, returning the metadata of each intact record in scan
// order (oldest first; for re-archived stories the latest record is the
// live one — callers reconcile by keeping the last meta per story ID).
// Torn tails are truncated exactly like the event store's recovery scan.
func OpenArchive(dir string) (*Archive, []ArchivedStoryMeta, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("storage: creating archive dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	var metas []ArchivedStoryMeta
	last := 0
	for _, idx := range segs {
		if idx > last {
			last = idx
		}
		ms, err := scanArchiveSegment(dir, idx)
		if err != nil {
			return nil, nil, err
		}
		metas = append(metas, ms...)
	}
	seg, err := openSegmentForAppend(dir, last)
	if err != nil {
		return nil, nil, err
	}
	return &Archive{dir: dir, segLimit: archiveSegLimit, seg: seg}, metas, nil
}

// scanArchiveSegment replays one segment, collecting record metadata with
// byte-accurate locations, truncating a torn or corrupt tail.
func scanArchiveSegment(dir string, idx int) ([]ArchivedStoryMeta, error) {
	path := segmentPath(dir, idx)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var metas []ArchivedStoryMeta
	var off int64
	var buf []byte
	for {
		payload, rerr := readRecord(f, buf)
		if rerr == io.EOF {
			return metas, nil
		}
		if errors.Is(rerr, ErrCorruptRecord) {
			if terr := os.Truncate(path, off); terr != nil {
				return nil, fmt.Errorf("storage: truncating torn archive tail of %s: %w", path, terr)
			}
			return metas, nil
		}
		if rerr != nil {
			return nil, rerr
		}
		frameLen := headerSize + len(payload)
		meta, merr := decodeArchiveMeta(payload)
		if merr != nil {
			// An intact frame with an undecodable payload is corruption the
			// CRC cannot explain; treat like a torn tail (WAL semantics).
			if terr := os.Truncate(path, off); terr != nil {
				return nil, fmt.Errorf("storage: truncating corrupt archive record of %s: %w", path, terr)
			}
			return metas, nil
		}
		meta.Loc = ArchiveLoc{Seg: idx, Off: off, Len: frameLen}
		metas = append(metas, meta)
		off += int64(frameLen)
		buf = payload[:0]
	}
}

// AppendGroup archives the given stories under one group ticket: all
// records are framed into a single buffer, written with one Write, and
// fsynced before returning, so the caller may detach the live stories
// the moment AppendGroup succeeds. Returns the per-story metadata
// (including disk locations) and the number of bytes appended.
func (a *Archive) AppendGroup(group uint64, watermark time.Time, stories []*event.Story) ([]ArchivedStoryMeta, int64, error) {
	if len(stories) == 0 {
		return nil, 0, nil
	}
	if a.closed {
		return nil, 0, ErrArchiveClosed
	}
	if a.seg.size > a.segLimit {
		next, err := openSegmentForAppend(a.dir, a.seg.index+1)
		if err != nil {
			return nil, 0, err
		}
		a.seg.close()
		a.seg = next
	}
	metas := make([]ArchivedStoryMeta, 0, len(stories))
	var frame []byte
	off := a.seg.size
	for _, st := range stories {
		payload := appendArchivedStory(nil, group, watermark, st)
		if len(payload) > maxRecordSize {
			return nil, 0, fmt.Errorf("storage: archived story %d exceeds record limit (%d bytes)", st.ID, len(payload))
		}
		before := len(frame)
		frame = appendRecord(frame, payload)
		meta, err := decodeArchiveMeta(payload)
		if err != nil {
			return nil, 0, err // unreachable: we just encoded it
		}
		meta.Loc = ArchiveLoc{Seg: a.seg.index, Off: off + int64(before), Len: len(frame) - before}
		metas = append(metas, meta)
	}
	if err := a.seg.append(frame); err != nil {
		return nil, 0, err
	}
	if err := a.seg.sync(); err != nil {
		return nil, 0, err
	}
	return metas, int64(len(frame)), nil
}

// ReadStory decodes the full archived story at loc. The returned story
// carries its archived Gen; reactivation bumps it via BumpGen so caches
// keyed on (story, gen) observe the transition.
func (a *Archive) ReadStory(loc ArchiveLoc) (*event.Story, error) {
	if a.closed {
		return nil, ErrArchiveClosed
	}
	f, err := os.Open(segmentPath(a.dir, loc.Seg))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, loc.Len)
	if _, err := f.ReadAt(buf, loc.Off); err != nil {
		return nil, fmt.Errorf("storage: reading archived story: %w", err)
	}
	payload, err := readRecord(bytes.NewReader(buf), nil)
	if err != nil {
		return nil, err
	}
	return decodeArchivedStory(payload)
}

// Reset deletes every archive segment and starts fresh. The pipeline
// calls it when a checkpoint restore fell back to full replay: after a
// replay everything is resident again, so any archived state is stale by
// construction.
func (a *Archive) Reset() error {
	if a.closed {
		return ErrArchiveClosed
	}
	a.seg.close()
	segs, err := listSegments(a.dir)
	if err != nil {
		return err
	}
	for _, idx := range segs {
		if err := os.Remove(segmentPath(a.dir, idx)); err != nil {
			return err
		}
	}
	seg, err := openSegmentForAppend(a.dir, 0)
	if err != nil {
		return err
	}
	a.seg = seg
	return nil
}

// Close releases the append handle.
func (a *Archive) Close() error {
	if a.closed {
		return nil
	}
	a.closed = true
	return a.seg.close()
}

// record payload codec ------------------------------------------------------

// appendArchivedStory encodes one story:
//
//	u8 version | u64 group | i64 watermark | u64 storyID | str source |
//	u64 gen | i64 start | i64 end |
//	u32 #entities (str, u32 count)... | u32 #terms (str, f64 weight)... |
//	u32 #snippets (u32 len, snippet-encoding)...
//
// Aggregates are stored as the already-summed values so a restore is
// bit-identical to the archived snapshot; symbols are strings because
// vocab IDs do not survive the process.
func appendArchivedStory(buf []byte, group uint64, watermark time.Time, st *event.Story) []byte {
	buf = append(buf, archiveVersion)
	buf = binary.LittleEndian.AppendUint64(buf, group)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(watermark.UnixNano()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.ID))
	buf = appendArchiveString(buf, string(st.Source))
	buf = binary.LittleEndian.AppendUint64(buf, st.Gen())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Start.UnixNano()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(st.End.UnixNano()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.EntityFreq)))
	for _, ec := range st.EntityFreq {
		buf = appendArchiveString(buf, vocab.Entities.String(ec.ID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(ec.N))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Centroid)))
	for _, tw := range st.Centroid {
		buf = appendArchiveString(buf, vocab.Terms.String(tw.ID))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tw.W))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Snippets)))
	for _, sn := range st.Snippets {
		lenPos := len(buf)
		buf = append(buf, 0, 0, 0, 0)
		buf = event.AppendEncode(buf, sn)
		binary.LittleEndian.PutUint32(buf[lenPos:], uint32(len(buf)-lenPos-4))
	}
	return buf
}

// archiveCursor walks a record payload. termStrings carries the decoded
// term symbols from the header to the full-story decode (metadata-only
// decodes discard it).
type archiveCursor struct {
	buf         []byte
	termStrings []string
}

var errArchiveCorrupt = fmt.Errorf("%w: archive payload", ErrCorruptRecord)

func (c *archiveCursor) u8() (byte, error) {
	if len(c.buf) < 1 {
		return 0, errArchiveCorrupt
	}
	v := c.buf[0]
	c.buf = c.buf[1:]
	return v, nil
}

func (c *archiveCursor) u32() (uint32, error) {
	if len(c.buf) < 4 {
		return 0, errArchiveCorrupt
	}
	v := binary.LittleEndian.Uint32(c.buf)
	c.buf = c.buf[4:]
	return v, nil
}

func (c *archiveCursor) u64() (uint64, error) {
	if len(c.buf) < 8 {
		return 0, errArchiveCorrupt
	}
	v := binary.LittleEndian.Uint64(c.buf)
	c.buf = c.buf[8:]
	return v, nil
}

func (c *archiveCursor) str() (string, error) {
	n, err := c.u32()
	if err != nil {
		return "", err
	}
	if n > maxRecordSize || int(n) > len(c.buf) {
		return "", errArchiveCorrupt
	}
	s := string(c.buf[:n])
	c.buf = c.buf[n:]
	return s, nil
}

func (c *archiveCursor) skip(n int) error {
	if n < 0 || n > len(c.buf) {
		return errArchiveCorrupt
	}
	c.buf = c.buf[n:]
	return nil
}

// decodeArchiveHeader parses the shared prefix of a record payload up to
// and including the aggregate vectors, leaving the cursor at the snippet
// section. keepWeights selects whether term weights are materialised.
func decodeArchiveHeader(c *archiveCursor) (meta ArchivedStoryMeta, entCounts []uint32, termWeights []float64, err error) {
	v, err := c.u8()
	if err != nil {
		return meta, nil, nil, err
	}
	if v != archiveVersion {
		return meta, nil, nil, fmt.Errorf("%w: unknown archive version %d", ErrCorruptRecord, v)
	}
	if meta.Group, err = c.u64(); err != nil {
		return meta, nil, nil, err
	}
	wm, err := c.u64()
	if err != nil {
		return meta, nil, nil, err
	}
	_ = wm // informational; not surfaced in meta
	id, err := c.u64()
	if err != nil {
		return meta, nil, nil, err
	}
	meta.ID = event.StoryID(id)
	src, err := c.str()
	if err != nil {
		return meta, nil, nil, err
	}
	meta.Source = event.SourceID(src)
	if meta.Gen, err = c.u64(); err != nil {
		return meta, nil, nil, err
	}
	start, err := c.u64()
	if err != nil {
		return meta, nil, nil, err
	}
	end, err := c.u64()
	if err != nil {
		return meta, nil, nil, err
	}
	meta.Start = time.Unix(0, int64(start)).UTC()
	meta.End = time.Unix(0, int64(end)).UTC()
	ne, err := c.u32()
	if err != nil {
		return meta, nil, nil, err
	}
	if int64(ne)*5 > int64(len(c.buf)) {
		return meta, nil, nil, errArchiveCorrupt
	}
	meta.Entities = make([]string, 0, ne)
	entCounts = make([]uint32, 0, ne)
	for i := uint32(0); i < ne; i++ {
		s, err := c.str()
		if err != nil {
			return meta, nil, nil, err
		}
		n, err := c.u32()
		if err != nil {
			return meta, nil, nil, err
		}
		meta.Entities = append(meta.Entities, s)
		entCounts = append(entCounts, n)
	}
	nt, err := c.u32()
	if err != nil {
		return meta, nil, nil, err
	}
	if int64(nt)*12 > int64(len(c.buf)) {
		return meta, nil, nil, errArchiveCorrupt
	}
	terms := make([]string, 0, nt)
	termWeights = make([]float64, 0, nt)
	for i := uint32(0); i < nt; i++ {
		s, err := c.str()
		if err != nil {
			return meta, nil, nil, err
		}
		w, err := c.u64()
		if err != nil {
			return meta, nil, nil, err
		}
		terms = append(terms, s)
		termWeights = append(termWeights, math.Float64frombits(w))
	}
	if len(meta.Entities) == 0 {
		meta.TopTerms = topTermsByWeight(terms, termWeights, archiveTopTerms)
	}
	// The full term list rides back via closure state only when decoding
	// the complete story; metadata keeps just the fingerprint.
	c.termStrings = terms
	return meta, entCounts, termWeights, nil
}

// decodeArchiveMeta parses a record payload into resident metadata,
// skipping over the snippet bytes.
func decodeArchiveMeta(payload []byte) (ArchivedStoryMeta, error) {
	c := &archiveCursor{buf: payload}
	meta, _, _, err := decodeArchiveHeader(c)
	if err != nil {
		return meta, err
	}
	ns, err := c.u32()
	if err != nil {
		return meta, err
	}
	for i := uint32(0); i < ns; i++ {
		n, err := c.u32()
		if err != nil {
			return meta, err
		}
		if err := c.skip(int(n)); err != nil {
			return meta, err
		}
	}
	if len(c.buf) != 0 {
		return meta, errArchiveCorrupt
	}
	return meta, nil
}

// decodeArchivedStory parses a record payload into a fully restored
// story: snippets decoded through the event codec (which re-interns
// them), aggregates re-interned and re-sorted by the current process's
// symbol IDs with their archived values intact.
func decodeArchivedStory(payload []byte) (*event.Story, error) {
	c := &archiveCursor{buf: payload}
	meta, entCounts, termWeights, err := decodeArchiveHeader(c)
	if err != nil {
		return nil, err
	}
	ents := make([]vocab.IDCount, len(meta.Entities))
	for i, s := range meta.Entities {
		ents[i] = vocab.IDCount{ID: vocab.Entities.ID(s), N: int32(entCounts[i])}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].ID < ents[j].ID })
	cen := make([]vocab.IDWeight, len(c.termStrings))
	for i, s := range c.termStrings {
		cen[i] = vocab.IDWeight{ID: vocab.Terms.ID(s), W: termWeights[i]}
	}
	sort.Slice(cen, func(i, j int) bool { return cen[i].ID < cen[j].ID })
	ns, err := c.u32()
	if err != nil {
		return nil, err
	}
	if int64(ns)*4 > int64(len(c.buf)) {
		return nil, errArchiveCorrupt
	}
	snippets := make([]*event.Snippet, 0, ns)
	for i := uint32(0); i < ns; i++ {
		n, err := c.u32()
		if err != nil {
			return nil, err
		}
		if int(n) > len(c.buf) {
			return nil, errArchiveCorrupt
		}
		sn, err := event.Decode(c.buf[:n])
		if err != nil {
			return nil, err
		}
		snippets = append(snippets, sn)
		c.buf = c.buf[n:]
	}
	if len(c.buf) != 0 {
		return nil, errArchiveCorrupt
	}
	return event.RestoreStory(meta.ID, meta.Source, snippets, ents, cen, meta.Start, meta.End, meta.Gen), nil
}

// topTermsByWeight returns the k highest-weight terms (ties broken
// alphabetically) — the fallback fingerprint for entity-free stories.
func topTermsByWeight(terms []string, weights []float64, k int) []string {
	idx := make([]int, len(terms))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if weights[idx[a]] != weights[idx[b]] {
			return weights[idx[a]] > weights[idx[b]]
		}
		return terms[idx[a]] < terms[idx[b]]
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = terms[j]
	}
	return out
}

func appendArchiveString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}
