package storage

import (
	"os"
	"strings"
	"testing"

	"repro/internal/event"
)

// TestRecoveryWarningsTornTail checks that a torn final record is not
// just silently truncated: the open must report what it dropped through
// both RecoveredDrop and the warning list.
func TestRecoveryWarningsTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RecoveryWarnings(); len(got) != 0 {
		t.Fatalf("fresh store has warnings: %v", got)
	}
	for i := 1; i <= 3; i++ {
		if err := st.Append(snip(event.SnippetID(i), "nyt", i, "UKR")); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	segs, _ := listSegments(dir)
	path := segmentPath(dir, segs[len(segs)-1])
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	frame := appendRecord(nil, event.Encode(snip(4, "nyt", 4, "UKR")))
	f.Write(frame[:len(frame)-5]) // crash mid-write
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st2.Len())
	}
	if st2.RecoveredDrop() != int64(len(frame)-5) {
		t.Fatalf("RecoveredDrop = %d, want %d", st2.RecoveredDrop(), len(frame)-5)
	}
	warns := st2.RecoveryWarnings()
	if len(warns) != 1 || !strings.Contains(warns[0], "torn-tail") {
		t.Fatalf("warnings = %v, want one torn-tail finding", warns)
	}
	// The returned slice is a copy; mutating it must not leak back.
	warns[0] = "mutated"
	if got := st2.RecoveryWarnings(); got[0] == "mutated" {
		t.Fatal("RecoveryWarnings aliases internal state")
	}
}

// TestRecoveryWarningsUndecodableRecord covers the logical-corruption
// path: a record whose frame (magic, length, CRC) is intact but whose
// payload is not a snippet. Unlike a torn tail this is not a crash
// artefact, so the store must keep everything after it, skip just the
// bad record, and say so.
func TestRecoveryWarningsUndecodableRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(snip(1, "nyt", 1, "UKR")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Splice a well-framed garbage record between two valid ones.
	segs, _ := listSegments(dir)
	path := segmentPath(dir, segs[len(segs)-1])
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(appendRecord(nil, []byte("not a snippet payload")))
	f.Write(appendRecord(nil, event.Encode(snip(2, "nyt", 2, "UKR"))))
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open failed on logically corrupt record: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (records after the bad one must survive)", st2.Len())
	}
	if st2.Get(2) == nil {
		t.Fatal("snippet appended after the corrupt record was lost")
	}
	if st2.RecoveredDrop() != 0 {
		t.Fatalf("RecoveredDrop = %d, want 0 (nothing was truncated)", st2.RecoveredDrop())
	}
	warns := st2.RecoveryWarnings()
	if len(warns) != 1 || !strings.Contains(warns[0], "undecodable") {
		t.Fatalf("warnings = %v, want one undecodable-payload finding", warns)
	}
}

// TestRecoveryWarningsBothKinds stacks logical corruption and a torn
// tail in the same segment: both findings must be reported.
func TestRecoveryWarningsBothKinds(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(snip(1, "nyt", 1, "UKR")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	segs, _ := listSegments(dir)
	path := segmentPath(dir, segs[len(segs)-1])
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(appendRecord(nil, []byte{0xde, 0xad, 0xbe, 0xef}))
	frame := appendRecord(nil, event.Encode(snip(2, "nyt", 2, "UKR")))
	f.Write(frame[:len(frame)-1])
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st2.Len())
	}
	warns := st2.RecoveryWarnings()
	if len(warns) != 2 {
		t.Fatalf("warnings = %v, want both an undecodable and a torn-tail finding", warns)
	}
	joined := strings.Join(warns, "\n")
	if !strings.Contains(joined, "undecodable") || !strings.Contains(joined, "torn-tail") {
		t.Fatalf("warnings = %v, missing a finding kind", warns)
	}
}
