package storage

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/event"
)

// The GDELT-scale benchmarks ingest 1M/5M/10M synthetic snippets into
// the tiered store and the flat (fully resident) store and report the
// Go heap after ingest plus the random-read latency over the full ID
// space. The acceptance criterion is the shape, not the absolute
// numbers: tiered heap must stay flat from 1M to 10M while flat-store
// heap grows linearly.
//
// heap_MB is runtime.ReadMemStats HeapAlloc after a forced GC. Warm
// chunks are mmap'd, so their bytes are deliberately outside this
// number (and outside the steady-state page-cache-evictable RSS the
// tiers exist to bound); the hot tier, the inflate LRU, and all
// per-chunk metadata are inside it.
//
// STORYPIVOT_SCALE_EVENTS overrides the 1M base unit (the 1M/5M/10M
// benchmark names keep their labels; the smoke run only proves the
// benchmarks still run and report).
func scaleBase() int {
	if s := os.Getenv("STORYPIVOT_SCALE_EVENTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1_000_000
}

var scaleSources = []event.SourceID{"nyt", "wsj", "bbc", "cnn", "ap", "afp", "rt", "dw"}

// scaleSnippet builds one synthetic snippet with a ~200-byte display
// payload — the part the tiers keep out of memory.
func scaleSnippet(id uint64, t0 time.Time) *event.Snippet {
	src := scaleSources[id%uint64(len(scaleSources))]
	return &event.Snippet{
		ID:        event.SnippetID(id),
		Source:    src,
		Timestamp: t0.Add(time.Duration(id) * time.Second),
		Entities:  []event.Entity{event.Entity(fmt.Sprintf("ent_%d", id%997))},
		Terms: []event.Term{
			{Token: fmt.Sprintf("tok_%d", id%4999), Weight: 1},
			{Token: fmt.Sprintf("tok_%d", id%311), Weight: 0.5},
		},
		Text: fmt.Sprintf("synthetic GDELT-scale event %d from %s: "+
			"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"+
			"bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"+
			"cccccccccccccccccccccccccccccccccccccccccccccccccccccccccccc", id, src),
		Document: fmt.Sprintf("http://%s.example.com/doc%d.html", src, id),
	}
}

func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

func benchScale(b *testing.B, n int, tier *TierOptions) {
	t0 := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		st, err := Open(dir, Options{Tier: tier})
		if err != nil {
			b.Fatal(err)
		}
		before := heapMB()
		start := time.Now()
		for id := uint64(1); id <= uint64(n); id++ {
			if err := st.Append(scaleSnippet(id, t0)); err != nil {
				b.Fatal(err)
			}
		}
		ingest := time.Since(start)
		b.ReportMetric(float64(ingest.Nanoseconds())/float64(n), "ns/event")
		b.ReportMetric(heapMB(), "heap_MB")
		b.ReportMetric(before, "heap_base_MB")

		// Random reads across the whole ID space: cold faults, LRU
		// churn, and promotions for the tiered arm; map lookups for the
		// flat arm. The stride jumps chunks so the tiered p99 is the
		// cold-read path (inflate + decode), not a hot-tier hit.
		const probes = 2000
		lats := make([]float64, probes)
		stride := uint64(n)/probes*7 + 1
		id := uint64(1)
		var total time.Duration
		for p := 0; p < probes; p++ {
			t := time.Now()
			text, _, ok := st.SnippetText(event.SnippetID(id))
			lat := time.Since(t)
			if !ok || text == "" {
				b.Fatalf("SnippetText(%d) lost its payload", id)
			}
			total += lat
			lats[p] = float64(lat.Nanoseconds()) / 1e3
			id = (id+stride-1)%uint64(n) + 1
		}
		sort.Float64s(lats)
		b.ReportMetric(float64(total.Microseconds())/probes, "read_us")
		b.ReportMetric(lats[probes/2], "read_p50_us")
		b.ReportMetric(lats[probes*99/100], "read_p99_us")
		if ts, ok := st.TierStats(); ok {
			b.ReportMetric(float64(ts.Hot), "hot_chunks")
			b.ReportMetric(float64(ts.Warm), "warm_chunks")
			b.ReportMetric(float64(ts.Cold), "cold_chunks")
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		os.RemoveAll(dir)
	}
}

// scaleTier sizes chunks for a 10M-row corpus: per-chunk metadata is
// O(1), so rows-per-chunk sets the heap slope — 16384 rows keeps the
// 10M-row metadata tail well under the fixed hot-tier footprint (the
// 4096 default is tuned for interactive demo corpora instead).
func scaleTier() *TierOptions { return &TierOptions{ChunkRows: 16384, Compress: true} }

func BenchmarkScaleTiered1M(b *testing.B)  { benchScale(b, scaleBase(), scaleTier()) }
func BenchmarkScaleTiered5M(b *testing.B)  { benchScale(b, 5*scaleBase(), scaleTier()) }
func BenchmarkScaleTiered10M(b *testing.B) { benchScale(b, 10*scaleBase(), scaleTier()) }
func BenchmarkScaleFlat1M(b *testing.B)    { benchScale(b, scaleBase(), nil) }
func BenchmarkScaleFlat5M(b *testing.B)    { benchScale(b, 5*scaleBase(), nil) }
func BenchmarkScaleFlat10M(b *testing.B)   { benchScale(b, 10*scaleBase(), nil) }
