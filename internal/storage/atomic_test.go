package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestAtomicWritePublishesContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := AtomicWrite(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("content = %q, want v1", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file survived a successful write: %v", err)
	}
}

// TestAtomicWriteErrorLeavesNoTemp is the checkpoint-durability
// satellite's guarantee: a failed write must remove its temp file and
// leave the previously published content byte-identical.
func TestAtomicWriteErrorLeavesNoTemp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := AtomicWrite(path, func(w io.Writer) error {
		_, err := w.Write([]byte("good"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := AtomicWrite(path, func(w io.Writer) error {
		w.Write([]byte("partial garbage")) // bytes hit the temp file...
		return boom                        // ...then the write fails
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
		t.Fatalf("temp file survived the error path: %v", serr)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "good" {
		t.Fatalf("published content corrupted by failed write: %q", got)
	}
}

func TestAtomicWriteReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	for _, v := range []string{"one", "two"} {
		v := v
		if err := AtomicWrite(path, func(w io.Writer) error {
			_, err := io.WriteString(w, v)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := os.ReadFile(path)
	if string(got) != "two" {
		t.Fatalf("content = %q, want two", got)
	}
}
