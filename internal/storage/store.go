package storage

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/event"
)

// SyncPolicy controls when appends are fsynced to disk.
type SyncPolicy int

const (
	// SyncNever leaves flushing to the OS; fastest, loses recent appends
	// on machine crash (process crash is still safe: writes go straight to
	// the page cache).
	SyncNever SyncPolicy = iota
	// SyncAlways fsyncs after every append; durable, slow.
	SyncAlways
	// SyncBatch fsyncs every Options.SyncEvery appends.
	SyncBatch
)

// Options configures a Store.
type Options struct {
	// SegmentSize is the rotation threshold in bytes (default 64 MiB).
	SegmentSize int64
	// Sync selects the durability policy (default SyncNever).
	Sync SyncPolicy
	// SyncEvery is the batch size for SyncBatch (default 256).
	SyncEvery int
	// Tier, when non-nil, replaces the flat log + fully-resident indexes
	// with the chunked hot/warm/cold store: only per-chunk metadata stays
	// in memory and snippet payloads are fetched from their tier on
	// demand. See TierOptions. Accessors behave identically except that
	// All returns display-text-stripped snippets (callers hydrate via
	// SnippetText) and per-snippet reads may touch disk.
	Tier *TierOptions
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 64 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 256
	}
	return o
}

// Store is the embedded event repository. All snippets are persisted in an
// append-only segmented log and indexed in memory by ID, time, source, and
// entity. A Store is safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu           sync.RWMutex
	active       *segment
	closed       bool
	sinceSync    int
	frameBuf     []byte
	recoveryDrop int64    // bytes dropped from torn tails at open
	warnings     []string // partial-corruption findings from replay at open

	// Indexes. byTime is kept sorted by (timestamp, ID); the common append
	// pattern is mostly-chronological so insertion is near the end.
	// In tiered mode these stay nil and tier serves every lookup.
	byID     map[event.SnippetID]*event.Snippet
	byTime   []*event.Snippet
	bySource map[event.SourceID][]*event.Snippet
	byEntity map[event.Entity][]*event.Snippet
	tier     *TierStore
}

// Open opens (creating if necessary) a store in dir, replaying all
// segments to rebuild the indexes. Partial corruption does not fail the
// open; it is surfaced instead: torn tails from a previous crash are
// truncated (RecoveredDrop reports how many bytes were discarded),
// well-framed records whose payload no longer decodes are skipped, and
// every such finding is recorded in RecoveryWarnings and counted in the
// obs registry.
func Open(dir string, opts Options) (*Store, error) {
	span := metOpenLat.Start()
	defer span.End()
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		byID:     make(map[event.SnippetID]*event.Snippet),
		bySource: make(map[event.SourceID][]*event.Snippet),
		byEntity: make(map[event.Entity][]*event.Snippet),
	}
	if opts.Tier != nil {
		t, err := openTierStore(dir, *opts.Tier, opts.Sync, opts.SyncEvery)
		if err != nil {
			return nil, err
		}
		// Carry a pre-tiering corpus forward: any flat-log segments in
		// the directory are replayed into chunks (idempotently).
		if err := t.importSegments(dir); err != nil {
			t.Close()
			return nil, err
		}
		s.tier = t
		s.warnings = append(s.warnings, t.warnings...)
		s.recoveryDrop += t.dropped
		s.byID, s.bySource, s.byEntity = nil, nil, nil
		return s, nil
	}
	indices, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, idx := range indices {
		corrupt := 0
		dropped, err := scanSegment(segmentPath(dir, idx), func(payload []byte) error {
			metReplayed.Inc()
			sn, derr := event.Decode(payload)
			if derr != nil {
				// The frame's CRC was intact but the payload is not a
				// snippet: logical corruption (or a foreign writer).
				// Dropping one record loses one snippet; failing the
				// open loses the store. Skip, count, and report.
				corrupt++
				metReplayCorrupt.Inc()
				return nil
			}
			// Replay is idempotent: a crash mid-compaction can leave the
			// same record in two segments; the first occurrence wins.
			if _, dup := s.byID[sn.ID]; dup {
				return nil
			}
			s.indexLocked(sn)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if corrupt > 0 {
			s.warnings = append(s.warnings, fmt.Sprintf(
				"segment %d: skipped %d well-framed records with undecodable payloads", idx, corrupt))
		}
		if dropped > 0 {
			metReplayTornBytes.Add(uint64(dropped))
			s.warnings = append(s.warnings, fmt.Sprintf(
				"segment %d: truncated %d torn-tail bytes", idx, dropped))
		}
		s.recoveryDrop += dropped
	}
	// Replay may leave byTime unsorted if ingestion was out of order
	// across segments; normalise once.
	sort.Sort(event.ByTimestamp(s.byTime))

	next := 1
	if len(indices) > 0 {
		next = indices[len(indices)-1]
	}
	seg, err := openSegmentForAppend(dir, next)
	if err != nil {
		return nil, err
	}
	s.active = seg
	return s, nil
}

// RecoveredDrop returns the number of torn-tail bytes truncated at Open.
func (s *Store) RecoveredDrop() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recoveryDrop
}

// RecoveryWarnings returns a copy of the partial-corruption findings
// from the replay at Open: torn tails truncated and undecodable records
// skipped. An empty list means the log replayed clean.
func (s *Store) RecoveryWarnings() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.warnings...)
}

// Append validates, persists, and indexes a snippet. The snippet must have
// a unique ID; duplicate IDs are rejected.
func (s *Store) Append(sn *event.Snippet) error {
	if err := sn.Validate(); err != nil {
		return err
	}
	span := metAppendLat.Start()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.tier != nil {
		if s.tier.Has(sn.ID) {
			return fmt.Errorf("%w %d", ErrDuplicate, sn.ID)
		}
		if err := s.tier.Append(sn); err != nil {
			return err
		}
		span.End()
		return nil
	}
	if _, dup := s.byID[sn.ID]; dup {
		return fmt.Errorf("%w %d", ErrDuplicate, sn.ID)
	}
	s.frameBuf = appendRecord(s.frameBuf[:0], event.AppendEncode(nil, sn))
	if err := s.active.append(s.frameBuf); err != nil {
		return err
	}
	switch s.opts.Sync {
	case SyncAlways:
		if err := s.active.sync(); err != nil {
			return err
		}
		metSyncs.Inc()
	case SyncBatch:
		if s.sinceSync++; s.sinceSync >= s.opts.SyncEvery {
			if err := s.active.sync(); err != nil {
				return err
			}
			metSyncs.Inc()
			s.sinceSync = 0
		}
	}
	if s.active.size >= s.opts.SegmentSize {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	metAppends.Inc()
	metAppendBytes.Add(uint64(len(s.frameBuf)))
	s.indexLocked(sn.Clone())
	span.End()
	return nil
}

func (s *Store) rotateLocked() error {
	if err := s.active.sync(); err != nil {
		return err
	}
	if err := s.active.close(); err != nil {
		return err
	}
	seg, err := openSegmentForAppend(s.dir, s.active.index+1)
	if err != nil {
		return err
	}
	s.active = seg
	metRotations.Inc()
	return nil
}

func (s *Store) indexLocked(sn *event.Snippet) {
	s.byID[sn.ID] = sn
	// Insert into byTime maintaining order; appends are usually in order.
	n := len(s.byTime)
	if n == 0 || !lessSnip(sn, s.byTime[n-1]) {
		s.byTime = append(s.byTime, sn)
	} else {
		i := sort.Search(n, func(i int) bool { return lessSnip(sn, s.byTime[i]) })
		s.byTime = append(s.byTime, nil)
		copy(s.byTime[i+1:], s.byTime[i:])
		s.byTime[i] = sn
	}
	s.bySource[sn.Source] = append(s.bySource[sn.Source], sn)
	for _, e := range sn.Entities {
		s.byEntity[e] = append(s.byEntity[e], sn)
	}
}

func lessSnip(a, b *event.Snippet) bool {
	if !a.Timestamp.Equal(b.Timestamp) {
		return a.Timestamp.Before(b.Timestamp)
	}
	return a.ID < b.ID
}

// Get returns the snippet with the given ID, or nil if absent. In
// tiered mode the snippet is decoded from its chunk (a fresh copy per
// call) and a read failure surfaces as nil plus a recovery warning.
func (s *Store) Get(id event.SnippetID) *event.Snippet {
	if s.tier != nil {
		// Tier reads mutate LRU/promotion state; take the write lock.
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return nil
		}
		sn, err := s.tier.Get(id)
		if err != nil {
			s.warnings = append(s.warnings, err.Error())
			return nil
		}
		return sn
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byID[id]
}

// SnippetText returns the display text and source document of a stored
// snippet. It is the hydration point for result rendering when the
// engine holds text-stripped snippets (tiered mode).
func (s *Store) SnippetText(id event.SnippetID) (text, document string, ok bool) {
	if s.tier != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return "", "", false
		}
		sn, err := s.tier.Get(id)
		if err != nil || sn == nil {
			return "", "", false
		}
		return sn.Text, sn.Document, true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sn := s.byID[id]
	if sn == nil {
		return "", "", false
	}
	return sn.Text, sn.Document, true
}

// Len returns the number of stored snippets.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.tier != nil {
		return int(s.tier.Rows())
	}
	return len(s.byID)
}

// Sources returns the distinct source IDs present, sorted.
func (s *Store) Sources() []event.SourceID {
	s.mu.RLock()
	var out []event.SourceID
	if s.tier != nil {
		out = s.tier.SourceIDs()
	} else {
		out = make([]event.SourceID, 0, len(s.bySource))
		for src := range s.bySource {
			out = append(out, src)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ScanRange invokes fn with every snippet whose timestamp lies in
// [from, to], in chronological order, stopping early if fn returns false.
func (s *Store) ScanRange(from, to time.Time, fn func(*event.Snippet) bool) {
	if s.tier != nil {
		for _, sn := range s.scanTier(func(sn *event.Snippet) bool {
			return !sn.Timestamp.Before(from) && !sn.Timestamp.After(to)
		}, true) {
			if !fn(sn) {
				return
			}
		}
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	lo := sort.Search(len(s.byTime), func(i int) bool {
		return !s.byTime[i].Timestamp.Before(from)
	})
	for i := lo; i < len(s.byTime); i++ {
		if s.byTime[i].Timestamp.After(to) {
			return
		}
		if !fn(s.byTime[i]) {
			return
		}
	}
}

// scanTier collects the snippets matching keep from every chunk,
// chronologically sorted when chrono is set (chunk order otherwise).
func (s *Store) scanTier(keep func(*event.Snippet) bool, chrono bool) []*event.Snippet {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	var out []*event.Snippet
	err := s.tier.Scan(func(sn *event.Snippet) error {
		if keep == nil || keep(sn) {
			out = append(out, sn)
		}
		return nil
	})
	if err != nil {
		s.warnings = append(s.warnings, err.Error())
	}
	s.mu.Unlock()
	if chrono {
		sort.Sort(event.ByTimestamp(out))
	}
	return out
}

// BySource returns the snippets of a source in insertion order. The
// returned slice is a copy.
func (s *Store) BySource(src event.SourceID) []*event.Snippet {
	if s.tier != nil {
		return s.scanTier(func(sn *event.Snippet) bool { return sn.Source == src }, false)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*event.Snippet(nil), s.bySource[src]...)
}

// ByEntity returns the snippets mentioning the entity, chronologically.
func (s *Store) ByEntity(e event.Entity) []*event.Snippet {
	if s.tier != nil {
		return s.scanTier(func(sn *event.Snippet) bool {
			for _, se := range sn.Entities {
				if se == e {
					return true
				}
			}
			return false
		}, true)
	}
	s.mu.RLock()
	out := append([]*event.Snippet(nil), s.byEntity[e]...)
	s.mu.RUnlock()
	sort.Sort(event.ByTimestamp(out))
	return out
}

// All returns every snippet in chronological order (a copy). In tiered
// mode the returned snippets carry entities, terms, and timestamps but
// have their display text and source document stripped — replay and
// identification never read them, and keeping 10M text bodies out of
// one slice is the whole point of the tiers. Callers that render text
// hydrate through SnippetText.
func (s *Store) All() []*event.Snippet {
	if s.tier != nil {
		return s.scanTier(func(sn *event.Snippet) bool {
			sn.Text, sn.Document = "", ""
			return true
		}, true)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*event.Snippet(nil), s.byTime...)
}

// Tiered reports whether the store runs the chunked hot/warm/cold tiers.
func (s *Store) Tiered() bool { return s.tier != nil }

// TierStats summarises chunk tier occupancy; ok is false when tiering
// is off.
func (s *Store) TierStats() (TierStats, bool) {
	if s.tier == nil {
		return TierStats{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tier.Stats(), true
}

// TierManifestJSON serialises the live chunk manifest for checkpoint v3;
// nil when tiering is off.
func (s *Store) TierManifestJSON() ([]byte, error) {
	if s.tier == nil {
		return nil, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tier.ManifestJSON()
}

// TierReconcile compares a checkpointed chunk manifest against the live
// chunk state, returning divergence findings (the chunks themselves
// already self-healed at Open).
func (s *Store) TierReconcile(manifest []byte) []string {
	if s.tier == nil || len(manifest) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tier.ReconcileManifest(manifest)
}

// Sync forces an fsync of the active segment (or open chunk).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.tier != nil {
		return s.tier.Sync()
	}
	return s.active.sync()
}

// Close syncs and closes the store. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	if s.tier != nil {
		return s.tier.Close()
	}
	if err := s.active.sync(); err != nil {
		s.active.close()
		return err
	}
	return s.active.close()
}
