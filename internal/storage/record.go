// Package storage implements StoryPivot's embedded event repository: a
// crash-safe, append-only store for information snippets with time, entity,
// and source indexes.
//
// The paper assumes extractions are "stored in repositories that get
// updated regularly" (GDELT/EventRegistry-style). This package is the
// offline substitute: a write-ahead segmented log on disk (every append is
// a CRC-framed record; torn tails are detected and truncated at recovery)
// plus in-memory indexes rebuilt on open that serve the access patterns
// the pipeline needs — chronological scans, per-source partitions, and
// entity lookups.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record framing on disk:
//
//	u32 magic | u8 version | u32 payloadLen | u32 crc32(payload) | payload
//
// The magic number guards against scanning garbage after a torn write; the
// CRC detects partial or corrupted payloads. Records are written with a
// single Write call so a crash can only tear the final record of a segment.
const (
	recordMagic   = 0x53505631 // "SPV1"
	recordVersion = 1
	headerSize    = 4 + 1 + 4 + 4
	// maxRecordSize bounds payload length to keep a corrupt length prefix
	// from driving huge allocations during recovery scans.
	maxRecordSize = 64 << 20
)

// Errors surfaced by the record layer.
var (
	// ErrCorruptRecord reports a record whose header or checksum is
	// invalid. During recovery this is expected at a torn tail.
	ErrCorruptRecord = errors.New("storage: corrupt record")
	// ErrClosed reports use of a closed store.
	ErrClosed = errors.New("storage: store is closed")
	// ErrDuplicate reports an append whose snippet ID is already stored.
	// At-least-once delivery paths (feed redelivery after a cursor
	// rollback) match it with errors.Is and treat it as an ack.
	ErrDuplicate = errors.New("storage: duplicate snippet ID")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord frames payload into buf and returns the extended buffer.
func appendRecord(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, recordMagic)
	buf = append(buf, recordVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// readRecord reads one framed record from r. It returns io.EOF cleanly at
// end of stream, and ErrCorruptRecord for torn or damaged data.
func readRecord(r io.Reader, payloadBuf []byte) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		// A header torn mid-way is a torn tail.
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: torn header", ErrCorruptRecord)
		}
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != recordMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptRecord)
	}
	if hdr[4] != recordVersion {
		return nil, fmt.Errorf("%w: unknown version %d", ErrCorruptRecord, hdr[4])
	}
	n := binary.LittleEndian.Uint32(hdr[5:9])
	if n > maxRecordSize {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorruptRecord, n)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[9:13])
	if cap(payloadBuf) < int(n) {
		payloadBuf = make([]byte, n)
	}
	payloadBuf = payloadBuf[:n]
	if _, err := io.ReadFull(r, payloadBuf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: torn payload", ErrCorruptRecord)
		}
		return nil, err
	}
	if crc32.Checksum(payloadBuf, crcTable) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	return payloadBuf, nil
}
