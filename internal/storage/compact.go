package storage

import (
	"fmt"
	"os"

	"repro/internal/event"
)

// Compact rewrites all sealed segments into a single fresh segment,
// dropping torn bytes and coalescing small segments produced by frequent
// rotation. Compaction holds the store lock for its duration (it only
// copies sealed bytes, so the pause is proportional to sealed data, and
// the in-memory indexes are untouched); it is safe to call on a live
// store at any time.
//
// Layout after compaction: one segment holding everything previously
// sealed, followed by the active segment.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	indices, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	// Sealed segments are all but the active one.
	var sealed []int
	for _, idx := range indices {
		if idx != s.active.index {
			sealed = append(sealed, idx)
		}
	}
	if len(sealed) <= 1 {
		return nil // nothing to coalesce
	}

	// Write all sealed records into a temporary segment file.
	tmpPath := segmentPath(s.dir, 0) + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	var frame []byte
	for _, idx := range sealed {
		_, err := scanSegment(segmentPath(s.dir, idx), func(payload []byte) error {
			frame = appendRecord(frame[:0], payload)
			_, werr := tmp.Write(frame)
			return werr
		})
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("storage: compacting segment %d: %w", idx, err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}

	// Swap: atomically rename the compacted file over the first sealed
	// segment, then delete the rest. A crash after the rename but before
	// the deletes leaves records duplicated across the compacted segment
	// and the not-yet-deleted old ones; recovery tolerates this because
	// replay skips already-indexed snippet IDs (see Open).
	first := sealed[0]
	if err := os.Rename(tmpPath, segmentPath(s.dir, first)); err != nil {
		os.Remove(tmpPath)
		return err
	}
	for _, idx := range sealed[1:] {
		if err := os.Remove(segmentPath(s.dir, idx)); err != nil {
			return err
		}
	}
	metCompactions.Inc()
	return nil
}

// SegmentCount returns the number of segment files on disk.
func (s *Store) SegmentCount() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	indices, err := listSegments(s.dir)
	if err != nil {
		return 0, err
	}
	return len(indices), nil
}

// Iterate streams every stored snippet in chronological order without
// copying the index slice; fn returning false stops the iteration. The
// store's lock is held for the duration — keep fn cheap.
func (s *Store) Iterate(fn func(*event.Snippet) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sn := range s.byTime {
		if !fn(sn) {
			return
		}
	}
}
