package storage

import (
	"errors"
	"os"
	"testing"
	"time"
)

func TestDLQRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	in := []DLQEntry{
		{Source: "srcA", Cursor: "12", Reason: "json: bad", Raw: []byte("{broken")},
		{Source: "srcB", Cursor: "0", Reason: "empty snippet", Raw: nil,
			At: time.Date(2014, 7, 17, 0, 0, 0, 0, time.UTC)},
	}
	for _, e := range in {
		if err := d.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(in))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(DLQEntry{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}

	// Reopen: entries must have survived, in order, byte-identical.
	d2, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := d2.Entries()
	if len(got) != len(in) {
		t.Fatalf("reopened Len = %d, want %d", len(got), len(in))
	}
	for i, e := range got {
		if e.Source != in[i].Source || e.Cursor != in[i].Cursor ||
			e.Reason != in[i].Reason || string(e.Raw) != string(in[i].Raw) {
			t.Fatalf("entry %d = %+v, want %+v", i, e, in[i])
		}
		if e.At.IsZero() {
			t.Fatalf("entry %d lost its timestamp", i)
		}
	}
}

// TestDLQTornTail proves the DLQ recovers from its own torn writes: a
// crash mid-append must not keep the queue from opening.
func TestDLQTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(DLQEntry{Source: "s", Reason: "r", Raw: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Tear the tail: append garbage that looks like a partial record.
	f, err := os.OpenFile(segmentPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x31, 0x56, 0x50})
	f.Close()

	d2, err := OpenDLQ(dir)
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 1 {
		t.Fatalf("Len after torn tail = %d, want 1", d2.Len())
	}
}
