package storage

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"
)

func TestDLQRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	in := []DLQEntry{
		{Source: "srcA", Cursor: "12", Reason: "json: bad", Raw: []byte("{broken")},
		{Source: "srcB", Cursor: "0", Reason: "empty snippet", Raw: nil,
			At: time.Date(2014, 7, 17, 0, 0, 0, 0, time.UTC)},
	}
	for _, e := range in {
		if err := d.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if d.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(in))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(DLQEntry{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}

	// Reopen: entries must have survived, in order, byte-identical.
	d2, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := d2.Entries()
	if len(got) != len(in) {
		t.Fatalf("reopened Len = %d, want %d", len(got), len(in))
	}
	for i, e := range got {
		if e.Source != in[i].Source || e.Cursor != in[i].Cursor ||
			e.Reason != in[i].Reason || string(e.Raw) != string(in[i].Raw) {
			t.Fatalf("entry %d = %+v, want %+v", i, e, in[i])
		}
		if e.At.IsZero() {
			t.Fatalf("entry %d lost its timestamp", i)
		}
	}
}

// TestDLQTornTail proves the DLQ recovers from its own torn writes: a
// crash mid-append must not keep the queue from opening.
func TestDLQTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append(DLQEntry{Source: "s", Reason: "r", Raw: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Tear the tail: append garbage that looks like a partial record.
	f, err := os.OpenFile(segmentPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x31, 0x56, 0x50})
	f.Close()

	d2, err := OpenDLQ(dir)
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 1 {
		t.Fatalf("Len after torn tail = %d, want 1", d2.Len())
	}
}

// TestDLQSegmentRotation pins the rotation the event log and the
// archive already have: past the size limit, appends move to a fresh
// segment instead of growing one file without bound, and a reopen
// replays every segment in order.
func TestDLQSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.segLimit = 256 // force rotation quickly
	const n = 20
	for i := 0; i < n; i++ {
		e := DLQEntry{Source: "s", Cursor: fmt.Sprint(i), Reason: "r",
			Raw: []byte("padding padding padding padding padding")}
		if err := d.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %v (%v)", segs, err)
	}

	d2, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := d2.Entries()
	if len(got) != n {
		t.Fatalf("reopen replayed %d entries across %d segments, want %d", len(got), len(segs), n)
	}
	for i, e := range got {
		if e.Cursor != fmt.Sprint(i) {
			t.Fatalf("entry %d has cursor %q, want %q (order lost across segments)", i, e.Cursor, fmt.Sprint(i))
		}
	}
	// Appends keep working on the reopened queue.
	if err := d2.Append(DLQEntry{Source: "s", Reason: "post-reopen"}); err != nil {
		t.Fatal(err)
	}
}

// TestDLQTornFrameAtRotationBoundary crashes the queue right at a
// rotation: the rotated-out segment keeps a torn frame at its tail
// while the successor segment already holds intact records. Recovery
// must truncate the torn bytes and keep every intact record from BOTH
// segments — a torn boundary frame must not poison the directory.
func TestDLQTornFrameAtRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.segLimit = 128
	for i := 0; i < 8; i++ {
		e := DLQEntry{Source: "s", Cursor: fmt.Sprint(i), Reason: "r",
			Raw: []byte("padding padding padding padding padding")}
		if err := d.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("need at least two segments for the boundary crash, got %v (%v)", segs, err)
	}
	before, err := OpenDLQ(dir)
	if err != nil {
		t.Fatal(err)
	}
	intact := before.Len()
	before.Close()

	// Tear the tail of the FIRST (rotated-out) segment, not the last.
	first := segmentPath(dir, segs[0])
	f, err := os.OpenFile(first, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x31, 0x56, 0x50, 0x53, 0x01, 0xff, 0xff})
	f.Close()

	d2, err := OpenDLQ(dir)
	if err != nil {
		t.Fatalf("torn rotation boundary broke reopen: %v", err)
	}
	defer d2.Close()
	if d2.Len() != intact {
		t.Fatalf("Len after boundary tear = %d, want %d (later segments must survive)", d2.Len(), intact)
	}
}
