package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// DLQ instrumentation.
var (
	metDLQAppends = obs.GetCounter("storypivot_dlq_entries_total",
		"records appended to the dead-letter queue")
	metDLQDepth = obs.GetGauge("storypivot_dlq_depth",
		"dead-letter entries currently held")
)

// DLQEntry is one quarantined input record: a payload that could not be
// decoded into a snippet (or could not be ingested), kept verbatim with
// enough context to inspect and replay it later.
type DLQEntry struct {
	Source string    // feed source the record came from
	Cursor string    // source cursor at which the record was fetched
	Reason string    // why it was dead-lettered
	At     time.Time // when it was dead-lettered
	Raw    []byte    // the offending bytes, verbatim
}

// DLQ is an append-only, crash-safe dead-letter queue. Entries use the
// same CRC-framed record layout as the event log, so torn tails from a
// crash are truncated on open rather than poisoning recovery. Appends
// are fsynced: a dead-lettered record is evidence of a misbehaving
// upstream, and losing it to a crash defeats its purpose. A DLQ is safe
// for concurrent use.
// dlqSegLimit rotates DLQ segments past this size, matching the event
// log and archive. Without rotation one misbehaving upstream grows a
// single unbounded file whose full rescan every open pays for.
const dlqSegLimit = 64 << 20

type DLQ struct {
	mu       sync.Mutex
	dir      string
	segLimit int64
	seg      *segment
	frameBuf []byte
	entries  []DLQEntry
	closed   bool
}

// OpenDLQ opens (creating if necessary) a dead-letter queue in dir,
// replaying existing entries into memory. Undecodable but well-framed
// payloads are skipped — the DLQ must never refuse to open because of
// the very corruption it exists to capture.
func OpenDLQ(dir string) (*DLQ, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	d := &DLQ{dir: dir, segLimit: dlqSegLimit}
	indices, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, idx := range indices {
		if _, err := scanSegment(segmentPath(dir, idx), func(payload []byte) error {
			if e, derr := decodeDLQEntry(payload); derr == nil {
				d.entries = append(d.entries, e)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	next := 1
	if len(indices) > 0 {
		next = indices[len(indices)-1]
	}
	seg, err := openSegmentForAppend(dir, next)
	if err != nil {
		return nil, err
	}
	d.seg = seg
	metDLQDepth.Set(int64(len(d.entries)))
	return d, nil
}

// Append persists one entry durably (fsync) and indexes it in memory.
func (d *DLQ) Append(e DLQEntry) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if e.At.IsZero() {
		e.At = time.Now()
	}
	if d.seg.size > d.segLimit {
		next, err := openSegmentForAppend(d.dir, d.seg.index+1)
		if err != nil {
			return err
		}
		d.seg.close()
		d.seg = next
	}
	d.frameBuf = appendRecord(d.frameBuf[:0], encodeDLQEntry(nil, e))
	if err := d.seg.append(d.frameBuf); err != nil {
		return err
	}
	if err := d.seg.sync(); err != nil {
		return err
	}
	// Entries hold their own copy: callers commonly pass scan buffers.
	e.Raw = append([]byte(nil), e.Raw...)
	d.entries = append(d.entries, e)
	metDLQAppends.Inc()
	metDLQDepth.Set(int64(len(d.entries)))
	return nil
}

// Len returns the number of entries held.
func (d *DLQ) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Entries returns a copy of all entries in append order.
func (d *DLQ) Entries() []DLQEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]DLQEntry(nil), d.entries...)
}

// Close closes the queue. Further appends return ErrClosed.
func (d *DLQ) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	d.closed = true
	return d.seg.close()
}

// DLQ entry payload layout (all little-endian):
//
//	i64 unixNano | str source | str cursor | str reason | str raw
//
// where str is u32 length + bytes.
func encodeDLQEntry(buf []byte, e DLQEntry) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.At.UnixNano()))
	for _, s := range [][]byte{[]byte(e.Source), []byte(e.Cursor), []byte(e.Reason), e.Raw} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

func decodeDLQEntry(buf []byte) (DLQEntry, error) {
	var e DLQEntry
	if len(buf) < 8 {
		return e, fmt.Errorf("storage: dlq entry truncated")
	}
	e.At = time.Unix(0, int64(binary.LittleEndian.Uint64(buf[:8]))).UTC()
	buf = buf[8:]
	fields := make([][]byte, 4)
	for i := range fields {
		if len(buf) < 4 {
			return e, fmt.Errorf("storage: dlq entry truncated")
		}
		n := binary.LittleEndian.Uint32(buf[:4])
		buf = buf[4:]
		if uint32(len(buf)) < n {
			return e, fmt.Errorf("storage: dlq entry truncated")
		}
		fields[i] = append([]byte(nil), buf[:n]...)
		buf = buf[n:]
	}
	e.Source, e.Cursor, e.Reason, e.Raw = string(fields[0]), string(fields[1]), string(fields[2]), fields[3]
	return e, nil
}
