package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/event"
)

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

func snip(id event.SnippetID, src event.SourceID, d int, ents ...event.Entity) *event.Snippet {
	s := &event.Snippet{
		ID: id, Source: src, Timestamp: day(d),
		Entities: ents,
		Terms:    []event.Term{{Token: "crash", Weight: 1}},
	}
	s.Normalize()
	return s
}

func TestRecordRoundTrip(t *testing.T) {
	payload := []byte("hello snippets")
	frame := appendRecord(nil, payload)
	got, err := readRecord(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatalf("readRecord: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
	// Subsequent read hits EOF cleanly.
	r := bytes.NewReader(frame)
	readRecord(r, nil)
	if _, err := readRecord(r, nil); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRecordCorruption(t *testing.T) {
	payload := []byte("data")
	frame := appendRecord(nil, payload)

	// Flip a payload byte -> checksum error.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xff
	if _, err := readRecord(bytes.NewReader(bad), nil); !errors.Is(err, ErrCorruptRecord) {
		t.Errorf("flipped payload: %v", err)
	}
	// Bad magic.
	bad2 := append([]byte(nil), frame...)
	bad2[0] ^= 0xff
	if _, err := readRecord(bytes.NewReader(bad2), nil); !errors.Is(err, ErrCorruptRecord) {
		t.Errorf("bad magic: %v", err)
	}
	// Torn header.
	if _, err := readRecord(bytes.NewReader(frame[:5]), nil); !errors.Is(err, ErrCorruptRecord) {
		t.Errorf("torn header: %v", err)
	}
	// Torn payload.
	if _, err := readRecord(bytes.NewReader(frame[:len(frame)-2]), nil); !errors.Is(err, ErrCorruptRecord) {
		t.Errorf("torn payload: %v", err)
	}
	// Unknown version.
	bad3 := append([]byte(nil), frame...)
	bad3[4] = 99
	if _, err := readRecord(bytes.NewReader(bad3), nil); !errors.Is(err, ErrCorruptRecord) {
		t.Errorf("bad version: %v", err)
	}
}

func TestStoreAppendAndIndexes(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if err := st.Append(snip(1, "nyt", 17, "UKR", "MAL")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(snip(2, "wsj", 18, "UKR")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(snip(3, "nyt", 16, "RUS")); err != nil { // out of order
		t.Fatal(err)
	}

	if st.Len() != 3 {
		t.Fatalf("Len = %d", st.Len())
	}
	if got := st.Get(2); got == nil || got.Source != "wsj" {
		t.Fatalf("Get(2) = %+v", got)
	}
	if got := st.Get(99); got != nil {
		t.Fatal("Get(99) should be nil")
	}
	srcs := st.Sources()
	if len(srcs) != 2 || srcs[0] != "nyt" || srcs[1] != "wsj" {
		t.Fatalf("Sources = %v", srcs)
	}
	if got := st.BySource("nyt"); len(got) != 2 {
		t.Fatalf("BySource(nyt) = %d", len(got))
	}
	if got := st.ByEntity("UKR"); len(got) != 2 || got[0].ID != 1 {
		t.Fatalf("ByEntity(UKR) = %v", got)
	}
	// Chronological scan despite out-of-order append.
	var ids []event.SnippetID
	st.ScanRange(day(1), day(30), func(s *event.Snippet) bool {
		ids = append(ids, s.ID)
		return true
	})
	if len(ids) != 3 || ids[0] != 3 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("ScanRange order = %v", ids)
	}
	// Early stop.
	count := 0
	st.ScanRange(day(1), day(30), func(*event.Snippet) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
	// Bounded range.
	count = 0
	st.ScanRange(day(17), day(17), func(*event.Snippet) bool { count++; return true })
	if count != 1 {
		t.Fatalf("bounded range visited %d", count)
	}
}

func TestStoreRejectsInvalidAndDuplicates(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(&event.Snippet{ID: 1}); err == nil {
		t.Fatal("invalid snippet accepted")
	}
	if err := st.Append(snip(1, "nyt", 17, "UKR")); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(snip(1, "nyt", 18, "UKR")); err == nil {
		t.Fatal("duplicate ID accepted")
	}
}

func TestStoreReopenRecoversData(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := st.Append(snip(event.SnippetID(i), "nyt", i, "UKR")); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 10 {
		t.Fatalf("recovered Len = %d, want 10", st2.Len())
	}
	got := st2.Get(7)
	if got == nil || !got.Timestamp.Equal(day(7)) || got.Entities[0] != "UKR" {
		t.Fatalf("recovered snippet 7 = %+v", got)
	}
	// Appends continue with no duplicate complaints.
	if err := st2.Append(snip(11, "wsj", 20, "RUS")); err != nil {
		t.Fatal(err)
	}
}

func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		st.Append(snip(event.SnippetID(i), "nyt", i, "UKR"))
	}
	st.Close()

	// Simulate a crash mid-write: append garbage + a truncated frame.
	segs, _ := listSegments(dir)
	path := segmentPath(dir, segs[len(segs)-1])
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := appendRecord(nil, event.Encode(snip(6, "nyt", 6, "UKR")))
	f.Write(full[:len(full)-3]) // torn record
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 5 {
		t.Fatalf("recovered Len = %d, want 5 (torn record dropped)", st2.Len())
	}
	if st2.RecoveredDrop() == 0 {
		t.Error("RecoveredDrop should report truncated bytes")
	}
	// The torn bytes must be gone from disk so new appends start clean.
	if err := st2.Append(snip(6, "nyt", 6, "UKR")); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Len() != 6 {
		t.Fatalf("after re-append Len = %d, want 6", st3.Len())
	}
}

func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentSize: 256}) // tiny segments
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := st.Append(snip(event.SnippetID(i), "nyt", i%28+1, "UKR")); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	// Everything still recoverable across segments.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 50 {
		t.Fatalf("recovered %d snippets across segments, want 50", st2.Len())
	}
}

func TestStoreClosedErrors(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if err := st.Append(snip(1, "nyt", 1, "UKR")); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after close: %v", err)
	}
	if err := st.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after close: %v", err)
	}
	if err := st.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close: %v", err)
	}
}

func TestStoreSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncNever, SyncAlways, SyncBatch} {
		t.Run(fmt.Sprintf("policy%d", pol), func(t *testing.T) {
			st, err := Open(t.TempDir(), Options{Sync: pol, SyncEvery: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			for i := 1; i <= 10; i++ {
				if err := st.Append(snip(event.SnippetID(i), "nyt", i, "UKR")); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStoreConcurrentAppendAndRead(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for i := 0; i < 100; i++ {
				id := event.SnippetID(g*1000 + i + 1)
				if err := st.Append(snip(id, event.SourceID(fmt.Sprintf("s%d", g)), i%28+1, "UKR")); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				st.ScanRange(day(1), day(28), func(*event.Snippet) bool { return true })
				st.ByEntity("UKR")
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 400 {
		t.Fatalf("Len = %d, want 400", st.Len())
	}
}

func TestStoreIsolationFromCallerMutation(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := snip(1, "nyt", 17, "UKR")
	st.Append(s)
	s.Entities[0] = "XXX" // caller mutates after append
	if got := st.Get(1); got.Entities[0] != "UKR" {
		t.Fatal("store shares memory with caller's snippet")
	}
}

func TestListSegmentsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "seg-notanumber.log"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, segmentPrefix+"00000002"+segmentSuffix), nil, 0o644)
	got, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("listSegments = %v", got)
	}
}

func TestCompactCoalescesSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 60; i++ {
		if err := st.Append(snip(event.SnippetID(i), "nyt", i%28+1, "UKR")); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := st.SegmentCount()
	if before < 3 {
		t.Skipf("only %d segments; rotation config too large", before)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := st.SegmentCount()
	if after != 2 { // one compacted sealed + one active
		t.Fatalf("segments after compact = %d, want 2 (was %d)", after, before)
	}
	// Everything still readable after reopen.
	st.Close()
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 60 {
		t.Fatalf("recovered %d snippets after compaction, want 60", st2.Len())
	}
	// Appends continue normally.
	if err := st2.Append(snip(61, "nyt", 5, "UKR")); err != nil {
		t.Fatal(err)
	}
}

func TestCompactNoopOnSingleSegment(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Append(snip(1, "nyt", 1, "UKR"))
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	n, _ := st.SegmentCount()
	if n != 1 {
		t.Fatalf("segments = %d", n)
	}
}

func TestCompactClosedStore(t *testing.T) {
	st, _ := Open(t.TempDir(), Options{})
	st.Close()
	if err := st.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact on closed store: %v", err)
	}
}

func TestReplaySkipsDuplicateRecords(t *testing.T) {
	// Simulate the crash window: the same record present in two segments.
	dir := t.TempDir()
	st, _ := Open(dir, Options{})
	st.Append(snip(1, "nyt", 1, "UKR"))
	st.Close()
	// Duplicate segment 1's content into a new segment 2.
	data, err := os.ReadFile(segmentPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentPath(dir, 2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Fatalf("Len with duplicated segments = %d, want 1", st2.Len())
	}
}

func TestIterate(t *testing.T) {
	st, _ := Open(t.TempDir(), Options{})
	defer st.Close()
	for i := 1; i <= 5; i++ {
		st.Append(snip(event.SnippetID(i), "nyt", i, "UKR"))
	}
	var got []event.SnippetID
	st.Iterate(func(s *event.Snippet) bool {
		got = append(got, s.ID)
		return len(got) < 3
	})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Iterate = %v", got)
	}
}

// TestStoreQuickRoundTrip persists randomly generated snippets and checks
// that a reopened store returns byte-identical contents.
func TestStoreQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		st, err := Open(dir, Options{SegmentSize: 512})
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(20)
		want := make(map[event.SnippetID]*event.Snippet, n)
		for i := 0; i < n; i++ {
			s := &event.Snippet{
				ID:        event.SnippetID(i + 1),
				Source:    event.SourceID(fmt.Sprintf("s%d", rng.Intn(3))),
				Timestamp: day(1 + rng.Intn(28)),
				Entities:  []event.Entity{event.Entity(fmt.Sprintf("e%d", rng.Intn(5)))},
				Terms:     []event.Term{{Token: fmt.Sprintf("t%d", rng.Intn(9)), Weight: rng.Float64() + 0.1}},
				Text:      fmt.Sprintf("text-%d", rng.Int()),
			}
			s.Normalize()
			want[s.ID] = s
			if err := st.Append(s); err != nil {
				return false
			}
		}
		st.Close()
		st2, err := Open(dir, Options{})
		if err != nil {
			return false
		}
		defer st2.Close()
		if st2.Len() != n {
			return false
		}
		for id, w := range want {
			g := st2.Get(id)
			if g == nil || !reflect.DeepEqual(g, w) {
				t.Logf("seed %d: snippet %d mismatch:\n got %+v\nwant %+v", seed, id, g, w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreAll(t *testing.T) {
	st, _ := Open(t.TempDir(), Options{})
	defer st.Close()
	st.Append(snip(2, "nyt", 5, "A"))
	st.Append(snip(1, "nyt", 3, "A"))
	all := st.All()
	if len(all) != 2 || all[0].ID != 1 || all[1].ID != 2 {
		t.Fatalf("All = %v", all)
	}
}

func TestCompactConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 1; i <= 40; i++ {
		st.Append(snip(event.SnippetID(i), "nyt", i%28+1, "UKR"))
	}
	done := make(chan error, 2)
	go func() {
		for i := 41; i <= 80; i++ {
			if err := st.Append(snip(event.SnippetID(i), "nyt", i%28+1, "UKR")); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() { done <- st.Compact() }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 80 {
		t.Fatalf("Len = %d", st.Len())
	}
}
