//go:build linux

package storage

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The mapping outlives the file
// descriptor, so callers may close f immediately. The second return
// reports whether the bytes are an actual mapping (and must go through
// munmapChunk) or a plain heap read.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func munmapChunk(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
