package storage

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// segment is one append-only log file. Segments are named
// seg-<8-digit-index>.log and rotated when they exceed the store's segment
// size limit. Only the newest segment is open for writing.
type segment struct {
	index int
	path  string
	f     *os.File
	size  int64
}

const segmentPrefix = "seg-"
const segmentSuffix = ".log"

func segmentPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segmentPrefix, index, segmentSuffix))
}

// listSegments returns the segment indices present in dir, sorted.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue // unrelated file that happens to match the affixes
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// openSegmentForAppend opens (creating if needed) the segment file for
// appending and records its current size.
func openSegmentForAppend(dir string, index int) (*segment, error) {
	path := segmentPath(dir, index)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &segment{index: index, path: path, f: f, size: st.Size()}, nil
}

// append writes one framed record and returns its size on disk.
func (s *segment) append(frame []byte) error {
	n, err := s.f.Write(frame)
	s.size += int64(n)
	return err
}

func (s *segment) sync() error  { return s.f.Sync() }
func (s *segment) close() error { return s.f.Close() }

// scanSegment replays every intact record of a segment file, invoking fn
// with each payload (valid only during the call). On a torn or corrupt
// tail it truncates the file at the last intact record boundary and
// returns the number of dropped trailing bytes. Corruption that is *not*
// at the tail (intact records follow it) cannot be distinguished from a
// torn tail by a sequential scan; everything after the first bad record is
// dropped, which matches WAL semantics.
func scanSegment(path string, fn func(payload []byte) error) (dropped int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var validBytes int64
	var buf []byte
	for {
		payload, rerr := readRecord(br, buf)
		if rerr == io.EOF {
			return 0, nil
		}
		if errors.Is(rerr, ErrCorruptRecord) {
			// Torn tail: truncate to the last valid boundary.
			if terr := os.Truncate(path, validBytes); terr != nil {
				return 0, fmt.Errorf("storage: truncating torn tail of %s: %w", path, terr)
			}
			return st.Size() - validBytes, nil
		}
		if rerr != nil {
			return 0, rerr
		}
		buf = payload[:0]
		if err := fn(payload); err != nil {
			return 0, err
		}
		validBytes += int64(headerSize + len(payload))
	}
}
