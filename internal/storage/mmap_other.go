//go:build !linux

package storage

import (
	"io"
	"os"
)

// mmapFile on platforms without the mmap syscall wiring falls back to a
// plain read; the warm tier then behaves like the hot tier (resident
// bytes) with the same interface.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	b := make([]byte, size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, false, err
	}
	return b, false, nil
}

func munmapChunk(b []byte) error { return nil }
