package storage

import "repro/internal/obs"

// Event-store instrumentation: append/replay/compaction throughput and
// the recovery counters that back Store.RecoveryWarnings.
var (
	metAppends = obs.GetCounter("storypivot_storage_appends_total",
		"snippets appended to the event log")
	metAppendBytes = obs.GetCounter("storypivot_storage_append_bytes_total",
		"framed bytes appended to the event log")
	metAppendLat = obs.GetHistogram("storypivot_storage_append_seconds",
		"per-snippet append latency (encode, write, policy sync)")
	metSyncs = obs.GetCounter("storypivot_storage_syncs_total",
		"fsyncs issued by the durability policy")
	metRotations = obs.GetCounter("storypivot_storage_rotations_total",
		"segment rotations")
	metCompactions = obs.GetCounter("storypivot_storage_compactions_total",
		"segment compactions completed")
	metOpenLat = obs.GetHistogram("storypivot_storage_open_seconds",
		"store open latency including full replay")
	metReplayed = obs.GetCounter("storypivot_storage_replayed_records_total",
		"records replayed from segments at open")
	metReplayCorrupt = obs.GetCounter("storypivot_storage_replay_corrupt_records_total",
		"well-framed records skipped at replay because their payload failed to decode")
	metReplayTornBytes = obs.GetCounter("storypivot_storage_replay_torn_bytes_total",
		"torn-tail bytes truncated from segments at replay")
)
