package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
)

// tsnip builds a snippet with display text, the payload the tiers exist
// to keep off-heap.
func tsnip(id event.SnippetID, d int) *event.Snippet {
	s := snip(id, "ap", d, event.Entity("kiev"))
	s.Text = fmt.Sprintf("snippet %d body text with some padding to compress", id)
	s.Document = fmt.Sprintf("doc-%d", id)
	return s
}

func tinyTier() *TierOptions {
	return &TierOptions{ChunkRows: 4, HotChunks: 1, WarmChunks: 2, Compress: true, ColdCache: 1, PromoteAfter: -1}
}

func openTiered(t *testing.T, dir string, opts *TierOptions) *Store {
	t.Helper()
	st, err := Open(dir, Options{Tier: opts})
	if err != nil {
		t.Fatalf("Open tiered: %v", err)
	}
	return st
}

func TestTierAppendGetRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st := openTiered(t, dir, tinyTier())
	defer st.Close()
	const n = 50
	for i := 1; i <= n; i++ {
		if err := st.Append(tsnip(event.SnippetID(i), 1+i%20)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if st.Len() != n {
		t.Fatalf("Len = %d, want %d", st.Len(), n)
	}
	for i := 1; i <= n; i++ {
		sn := st.Get(event.SnippetID(i))
		if sn == nil {
			t.Fatalf("Get(%d) = nil", i)
		}
		if want := fmt.Sprintf("snippet %d body text with some padding to compress", i); sn.Text != want {
			t.Fatalf("Get(%d).Text = %q, want %q", i, sn.Text, want)
		}
		text, doc, ok := st.SnippetText(event.SnippetID(i))
		if !ok || text != sn.Text || doc != sn.Document {
			t.Fatalf("SnippetText(%d) = %q,%q,%v", i, text, doc, ok)
		}
	}
	if err := st.Append(tsnip(3, 3)); err == nil {
		t.Fatal("duplicate append accepted")
	}
	stats, ok := st.TierStats()
	if !ok {
		t.Fatal("TierStats reported non-tiered")
	}
	// 50 rows / 4 per chunk = 12 sealed + open. Budgets: 1 hot sealed
	// (+ open), 2 warm, rest cold.
	if stats.Cold == 0 || stats.Warm == 0 || stats.Hot == 0 {
		t.Fatalf("expected all three tiers populated: %+v", stats)
	}
	if stats.Warm > 2 {
		t.Fatalf("warm budget exceeded: %+v", stats)
	}
	// Compressed cold chunks must actually exist (and their raw twins not).
	spz, _ := filepath.Glob(filepath.Join(dir, "chunks", "*.spz"))
	if len(spz) == 0 {
		t.Fatal("no compressed chunk files on disk")
	}
}

func TestTierAllStripsTextButKeepsMetadata(t *testing.T) {
	st := openTiered(t, t.TempDir(), tinyTier())
	defer st.Close()
	for i := 1; i <= 20; i++ {
		if err := st.Append(tsnip(event.SnippetID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	all := st.All()
	if len(all) != 20 {
		t.Fatalf("All len = %d", len(all))
	}
	for i, sn := range all {
		if sn.Text != "" || sn.Document != "" {
			t.Fatalf("All()[%d] carries display text in tiered mode", i)
		}
		if len(sn.Entities) == 0 || len(sn.Terms) == 0 {
			t.Fatalf("All()[%d] lost identification metadata", i)
		}
		if i > 0 && all[i-1].Timestamp.After(sn.Timestamp) {
			t.Fatal("All() not chronological")
		}
	}
}

// TestTieredAccessorsMatchFlat drives the same corpus through a flat and
// a tiered store and asserts every accessor answers identically (modulo
// the documented text-stripping of tiered All).
func TestTieredAccessorsMatchFlat(t *testing.T) {
	flat, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	tiered := openTiered(t, t.TempDir(), tinyTier())
	defer tiered.Close()

	srcs := []event.SourceID{"ap", "bbc", "rt"}
	for i := 1; i <= 60; i++ {
		sn := snip(event.SnippetID(i), srcs[i%3], 1+i%25, event.Entity(fmt.Sprintf("e%d", i%5)))
		sn.Text = fmt.Sprintf("text %d", i)
		if err := flat.Append(sn.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := tiered.Append(sn.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	ids := func(sns []*event.Snippet) []event.SnippetID {
		out := make([]event.SnippetID, len(sns))
		for i, sn := range sns {
			out[i] = sn.ID
		}
		return out
	}
	eq := func(name string, a, b []event.SnippetID) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d results", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: position %d: %d vs %d", name, i, a[i], b[i])
			}
		}
	}
	eq("All", ids(flat.All()), ids(tiered.All()))
	for _, src := range srcs {
		eq("BySource "+string(src), ids(flat.BySource(src)), ids(tiered.BySource(src)))
	}
	for i := 0; i < 5; i++ {
		e := event.Entity(fmt.Sprintf("e%d", i))
		eq("ByEntity", ids(flat.ByEntity(e)), ids(tiered.ByEntity(e)))
	}
	var a, b []event.SnippetID
	flat.ScanRange(day(5), day(15), func(sn *event.Snippet) bool { a = append(a, sn.ID); return true })
	tiered.ScanRange(day(5), day(15), func(sn *event.Snippet) bool { b = append(b, sn.ID); return true })
	eq("ScanRange", a, b)
	if got, want := fmt.Sprint(tiered.Sources()), fmt.Sprint(flat.Sources()); got != want {
		t.Fatalf("Sources: %s vs %s", got, want)
	}
}

func TestTierReopenCleanAndAfterCrash(t *testing.T) {
	dir := t.TempDir()
	st := openTiered(t, dir, tinyTier())
	for i := 1; i <= 30; i++ {
		if err := st.Append(tsnip(event.SnippetID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st = openTiered(t, dir, tinyTier())
	if st.Len() != 30 {
		t.Fatalf("after clean reopen Len = %d", st.Len())
	}
	for i := 1; i <= 35; i++ {
		if i <= 30 {
			if sn := st.Get(event.SnippetID(i)); sn == nil || sn.Document != fmt.Sprintf("doc-%d", i) {
				t.Fatalf("Get(%d) after reopen = %+v", i, sn)
			}
			continue
		}
		if err := st.Append(tsnip(event.SnippetID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: drop the store without Close — manifest is stale (written
	// at the last seal), the open chunk has unsealed rows.
	st.tier.openFile.Sync()
	st.tier.openFile.Close()

	st = openTiered(t, dir, tinyTier())
	defer st.Close()
	if st.Len() != 35 {
		t.Fatalf("after crash reopen Len = %d, want 35", st.Len())
	}
	for i := 1; i <= 35; i++ {
		if sn := st.Get(event.SnippetID(i)); sn == nil {
			t.Fatalf("Get(%d) = nil after crash reopen", i)
		}
	}
}

func TestTierTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st := openTiered(t, dir, tinyTier())
	for i := 1; i <= 10; i++ {
		if err := st.Append(tsnip(event.SnippetID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	openIdx := st.tier.open.index
	st.Close()
	// Tear the open chunk: a partial frame after the last good record.
	path := chunkRawPath(filepath.Join(dir, "chunks"), openIdx)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x31, 0x56, 0x50, 0x53, 0x01, 0xff}) // magic + version + torn length
	f.Close()

	st = openTiered(t, dir, tinyTier())
	defer st.Close()
	if st.Len() != 10 {
		t.Fatalf("Len after torn tail = %d, want 10", st.Len())
	}
	if st.RecoveredDrop() == 0 {
		t.Fatal("torn-tail bytes not reported")
	}
	found := false
	for _, w := range st.RecoveryWarnings() {
		if strings.Contains(w, "torn-tail") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no torn-tail warning in %q", st.RecoveryWarnings())
	}
	// The store must still accept appends into the repaired chunk.
	if err := st.Append(tsnip(11, 11)); err != nil {
		t.Fatal(err)
	}
}

// TestTierKillDuringDemotion simulates a crash in the demotion window
// where the compressed copy has been published but the raw file not yet
// unlinked: both copies exist. Open must keep the intact raw copy and
// delete the compressed one.
func TestTierKillDuringDemotion(t *testing.T) {
	dir := t.TempDir()
	st := openTiered(t, dir, tinyTier())
	for i := 1; i <= 30; i++ {
		if err := st.Append(tsnip(event.SnippetID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	// Find a compressed cold chunk and resurrect its raw twin, as if the
	// crash hit between rename and unlink.
	var cold *chunk
	for _, c := range st.tier.chunks {
		if c.state == tierCold && c.compressed {
			cold = c
			break
		}
	}
	if cold == nil {
		t.Fatal("no compressed cold chunk to test with")
	}
	st.Close()
	cdir := filepath.Join(dir, "chunks")
	raw, err := inflateFile(chunkColdPath(cdir, cold.index))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(chunkRawPath(cdir, cold.index), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// A leftover temp file from the same crash must be swept too.
	os.WriteFile(filepath.Join(cdir, "chunk-99999999.spz.tmp"), []byte("junk"), 0o644)

	st = openTiered(t, dir, tinyTier())
	defer st.Close()
	// Open keeps the intact raw copy (the tier rebalance may re-compress
	// it afterwards); the crash invariant is that exactly one copy
	// survives, never both.
	_, rawErr := os.Stat(chunkRawPath(cdir, cold.index))
	_, coldErr := os.Stat(chunkColdPath(cdir, cold.index))
	if rawErr == nil && coldErr == nil {
		t.Fatal("both raw and compressed copies survived recovery")
	}
	if rawErr != nil && coldErr != nil {
		t.Fatal("chunk lost entirely during recovery")
	}
	if _, err := os.Stat(filepath.Join(cdir, "chunk-99999999.spz.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale temp file not swept at open")
	}
	if st.Len() != 30 {
		t.Fatalf("Len = %d after demotion-crash recovery", st.Len())
	}
	for i := 1; i <= 30; i++ {
		if sn := st.Get(event.SnippetID(i)); sn == nil || sn.Text == "" {
			t.Fatalf("Get(%d) lost payload after demotion-crash recovery", i)
		}
	}
}

// TestTierKillDuringPromotion simulates the mirror crash during
// promotion: the raw file was rematerialised but is torn (partial
// write survived only via the directory, e.g. a truncated page), while
// the compressed copy is still present. Open must fall back to the
// compressed copy and drop the damaged raw file.
func TestTierKillDuringPromotion(t *testing.T) {
	dir := t.TempDir()
	st := openTiered(t, dir, tinyTier())
	for i := 1; i <= 30; i++ {
		if err := st.Append(tsnip(event.SnippetID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	var cold *chunk
	for _, c := range st.tier.chunks {
		if c.state == tierCold && c.compressed {
			cold = c
			break
		}
	}
	if cold == nil {
		t.Fatal("no compressed cold chunk to test with")
	}
	st.Close()
	cdir := filepath.Join(dir, "chunks")
	raw, err := inflateFile(chunkColdPath(cdir, cold.index))
	if err != nil {
		t.Fatal(err)
	}
	// Torn rematerialisation: only half the raw bytes made it.
	if err := os.WriteFile(chunkRawPath(cdir, cold.index), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	st = openTiered(t, dir, tinyTier())
	defer st.Close()
	if _, err := os.Stat(chunkRawPath(cdir, cold.index)); !os.IsNotExist(err) {
		t.Fatal("torn raw copy not removed in favour of compressed copy")
	}
	if st.Len() != 30 {
		t.Fatalf("Len = %d after promotion-crash recovery", st.Len())
	}
	for i := 1; i <= 30; i++ {
		if sn := st.Get(event.SnippetID(i)); sn == nil || sn.Text == "" {
			t.Fatalf("Get(%d) lost payload after promotion-crash recovery", i)
		}
	}
}

func TestTierPromotionAfterRepeatedFaults(t *testing.T) {
	opts := tinyTier()
	opts.PromoteAfter = 2
	st := openTiered(t, t.TempDir(), opts)
	defer st.Close()
	for i := 1; i <= 40; i++ {
		if err := st.Append(tsnip(event.SnippetID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := st.TierStats()
	if before.Cold == 0 {
		t.Fatalf("no cold chunks: %+v", before)
	}
	// Hammer the oldest rows; the LRU holds one chunk, so alternating
	// between two cold chunks faults every time until promotion.
	for pass := 0; pass < 4; pass++ {
		for _, id := range []event.SnippetID{1, 9} {
			if sn := st.Get(id); sn == nil {
				t.Fatalf("Get(%d) = nil", id)
			}
		}
	}
	after, _ := st.TierStats()
	if after.Faults == 0 {
		t.Fatalf("cold reads recorded no faults: %+v", after)
	}
	if after.Promotions == 0 {
		t.Fatalf("repeated faults did not promote: %+v", after)
	}
}

func TestTierSparseIDs(t *testing.T) {
	dir := t.TempDir()
	st := openTiered(t, dir, tinyTier())
	ids := []event.SnippetID{100, 7, 350, 12, 90, 200, 5, 999, 404, 1}
	for i, id := range ids {
		if err := st.Append(tsnip(id, 1+i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	st = openTiered(t, dir, tinyTier())
	defer st.Close()
	for _, id := range ids {
		if sn := st.Get(id); sn == nil || sn.ID != id {
			t.Fatalf("Get(%d) after sparse reopen = %+v", id, sn)
		}
	}
	if st.Get(55) != nil {
		t.Fatal("Get of absent ID in sparse range returned a snippet")
	}
	if err := st.Append(tsnip(100, 3)); err == nil {
		t.Fatal("sparse duplicate accepted")
	}
}

func TestTierImportsLegacySegments(t *testing.T) {
	dir := t.TempDir()
	flat, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		if err := flat.Append(tsnip(event.SnippetID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	flat.Close()

	st := openTiered(t, dir, tinyTier())
	if st.Len() != 12 {
		t.Fatalf("tiered open imported %d snippets, want 12", st.Len())
	}
	for i := 1; i <= 12; i++ {
		if sn := st.Get(event.SnippetID(i)); sn == nil || sn.Text == "" {
			t.Fatalf("imported snippet %d unreadable", i)
		}
	}
	st.Close()
	// Second tiered open must not duplicate the imported records.
	st = openTiered(t, dir, tinyTier())
	defer st.Close()
	if st.Len() != 12 {
		t.Fatalf("re-import duplicated records: Len = %d", st.Len())
	}
}

func TestTierManifestReconcile(t *testing.T) {
	dir := t.TempDir()
	st := openTiered(t, dir, tinyTier())
	for i := 1; i <= 20; i++ {
		if err := st.Append(tsnip(event.SnippetID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	manifest, err := st.TierManifestJSON()
	if err != nil || len(manifest) == 0 {
		t.Fatalf("TierManifestJSON: %v", err)
	}
	if w := st.TierReconcile(manifest); len(w) != 0 {
		t.Fatalf("self-reconcile produced findings: %q", w)
	}
	st.Close()
	// Remove a sealed chunk behind the checkpoint's back; reconcile must
	// surface it as a divergence finding.
	os.Remove(chunkColdPath(filepath.Join(dir, "chunks"), 0))
	os.Remove(chunkRawPath(filepath.Join(dir, "chunks"), 0))
	st = openTiered(t, dir, tinyTier())
	defer st.Close()
	w := st.TierReconcile(manifest)
	if len(w) == 0 {
		t.Fatal("reconcile missed a vanished chunk")
	}
	if !strings.Contains(strings.Join(w, " "), "chunk 0") {
		t.Fatalf("findings do not name the chunk: %q", w)
	}
}

// TestTierConcurrentHammer mixes ingest, point reads (forcing cold
// faults and promotions), text hydration, and range scans; run under
// -race this is the tier manager's concurrency gate.
func TestTierConcurrentHammer(t *testing.T) {
	opts := tinyTier()
	opts.PromoteAfter = 3
	st := openTiered(t, t.TempDir(), opts)
	defer st.Close()
	for i := 1; i <= 40; i++ {
		if err := st.Append(tsnip(event.SnippetID(i), 1+i%20)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: keeps sealing chunks, driving demotions
		defer wg.Done()
		for i := 41; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := st.Append(tsnip(event.SnippetID(i), 1+i%20)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) { // readers: cold faults, hydration, scans
			defer wg.Done()
			for i := 0; i < 300; i++ {
				id := event.SnippetID(1 + (i*7+g*13)%40)
				if sn := st.Get(id); sn == nil {
					t.Errorf("Get(%d) = nil", id)
					return
				}
				if _, _, ok := st.SnippetText(id); !ok {
					t.Errorf("SnippetText(%d) missing", id)
					return
				}
				if i%50 == 0 {
					st.ScanRange(day(1), day(20), func(*event.Snippet) bool { return true })
					st.Len()
					st.TierStats()
				}
			}
		}(g)
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
}
