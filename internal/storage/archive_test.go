package storage

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/event"
	"repro/internal/vocab"
)

// archStory builds a fully populated story for archive tests: snippets,
// an entity-frequency vector, and a term centroid with non-trivial
// weights, at a non-zero generation.
func archStory(id event.StoryID, src event.SourceID, gen uint64, ents ...event.Entity) *event.Story {
	sns := []*event.Snippet{
		snip(event.SnippetID(uint64(id)*10+1), src, 1, ents...),
		snip(event.SnippetID(uint64(id)*10+2), src, 3, ents...),
	}
	freq := make([]vocab.IDCount, 0, len(ents))
	for _, e := range ents {
		freq = append(freq, vocab.IDCount{ID: vocab.Entities.ID(string(e)), N: 2})
	}
	cen := []vocab.IDWeight{
		{ID: vocab.Terms.ID("crash"), W: 1.25},
		{ID: vocab.Terms.ID("inquiry"), W: 0.5},
	}
	return event.RestoreStory(id, src, sns, freq, cen, day(1), day(3), gen)
}

// sameStory compares the archive-visible state of two stories: identity,
// extent, generation, snippet IDs, and bit-exact aggregate values.
func sameStory(t *testing.T, got, want *event.Story) {
	t.Helper()
	if got.ID != want.ID || got.Source != want.Source || got.Gen() != want.Gen() {
		t.Fatalf("identity mismatch: got (%d,%s,gen %d), want (%d,%s,gen %d)",
			got.ID, got.Source, got.Gen(), want.ID, want.Source, want.Gen())
	}
	if !got.Start.Equal(want.Start) || !got.End.Equal(want.End) {
		t.Fatalf("extent mismatch: got [%v,%v], want [%v,%v]", got.Start, got.End, want.Start, want.End)
	}
	if len(got.Snippets) != len(want.Snippets) {
		t.Fatalf("snippet count %d, want %d", len(got.Snippets), len(want.Snippets))
	}
	for i := range got.Snippets {
		if got.Snippets[i].ID != want.Snippets[i].ID {
			t.Fatalf("snippet %d has ID %d, want %d", i, got.Snippets[i].ID, want.Snippets[i].ID)
		}
	}
	if !reflect.DeepEqual(got.EntityFreq, want.EntityFreq) {
		t.Fatalf("entity freq mismatch:\n got %v\nwant %v", got.EntityFreq, want.EntityFreq)
	}
	if len(got.Centroid) != len(want.Centroid) {
		t.Fatalf("centroid length %d, want %d", len(got.Centroid), len(want.Centroid))
	}
	for i := range got.Centroid {
		if got.Centroid[i].ID != want.Centroid[i].ID ||
			math.Float64bits(got.Centroid[i].W) != math.Float64bits(want.Centroid[i].W) {
			t.Fatalf("centroid[%d] = %+v, want %+v (weights must survive bit-exact)",
				i, got.Centroid[i], want.Centroid[i])
		}
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	arch, metas, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 0 {
		t.Fatalf("fresh archive reported %d records", len(metas))
	}
	a := archStory(1, "alpha", 3, "mh17", "ukraine")
	b := archStory(2, "alpha", 1, "gaza")
	got, n, err := arch.AppendGroup(7, day(20), []*event.Story{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || n <= 0 {
		t.Fatalf("AppendGroup returned %d metas, %d bytes", len(got), n)
	}
	for i, want := range []*event.Story{a, b} {
		m := got[i]
		if m.Group != 7 || m.ID != want.ID || m.Source != want.Source || m.Gen != want.Gen() {
			t.Fatalf("meta[%d] = %+v, want identity of story %d", i, m, want.ID)
		}
		if !m.Start.Equal(want.Start) || !m.End.Equal(want.End) {
			t.Fatalf("meta[%d] extent [%v,%v], want [%v,%v]", i, m.Start, m.End, want.Start, want.End)
		}
		st, err := arch.ReadStory(m.Loc)
		if err != nil {
			t.Fatalf("ReadStory(%d): %v", want.ID, err)
		}
		sameStory(t, st, want)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := arch.ReadStory(got[0].Loc); err != ErrArchiveClosed {
		t.Fatalf("read after close: %v, want ErrArchiveClosed", err)
	}
}

func TestArchiveReopenLatestWins(t *testing.T) {
	dir := t.TempDir()
	arch, _, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := archStory(5, "alpha", 1, "mh17")
	if _, _, err := arch.AppendGroup(1, day(10), []*event.Story{first}); err != nil {
		t.Fatal(err)
	}
	// The same story re-archived later (retire → reactivate → retire):
	// a new record under a new group at a higher generation.
	second := archStory(5, "alpha", 4, "mh17", "ukraine")
	if _, _, err := arch.AppendGroup(2, day(30), []*event.Story{second}); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}

	arch2, metas, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer arch2.Close()
	// Scan order is oldest-first; the caller keeps the last meta per ID.
	if len(metas) != 2 {
		t.Fatalf("reopen scanned %d records, want 2", len(metas))
	}
	if metas[0].Gen != 1 || metas[1].Gen != 4 {
		t.Fatalf("scan order gens = %d,%d, want 1,4 (oldest first)", metas[0].Gen, metas[1].Gen)
	}
	st, err := arch2.ReadStory(metas[1].Loc)
	if err != nil {
		t.Fatal(err)
	}
	sameStory(t, st, second)
	// Appends keep working on the reopened handle.
	if _, _, err := arch2.AppendGroup(3, day(40), []*event.Story{archStory(6, "beta", 1, "ebola")}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

func TestArchiveTornTail(t *testing.T) {
	dir := t.TempDir()
	arch, _, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep := archStory(1, "alpha", 1, "mh17")
	if _, _, err := arch.AppendGroup(1, day(10), []*event.Story{keep}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := arch.AppendGroup(2, day(20), []*event.Story{archStory(2, "alpha", 1, "gaza")}); err != nil {
		t.Fatal(err)
	}
	arch.Close()

	seg := segmentPath(dir, 0)
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	arch2, metas, err := OpenArchive(dir)
	if err != nil {
		t.Fatalf("torn tail broke reopen: %v", err)
	}
	defer arch2.Close()
	if len(metas) != 1 || metas[0].ID != 1 {
		t.Fatalf("torn reopen kept %v, want just story 1", metas)
	}
	// The tail was truncated to the intact prefix: new appends land on a
	// clean boundary and survive another reopen.
	if _, _, err := arch2.AppendGroup(3, day(30), []*event.Story{archStory(3, "alpha", 1, "ebola")}); err != nil {
		t.Fatal(err)
	}
	arch2.Close()
	_, metas, err = OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[1].ID != 3 {
		t.Fatalf("post-repair reopen scanned %v, want stories 1 and 3", metas)
	}
}

func TestArchiveReset(t *testing.T) {
	dir := t.TempDir()
	arch, _, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	if _, _, err := arch.AppendGroup(1, day(10), []*event.Story{archStory(1, "alpha", 1, "mh17")}); err != nil {
		t.Fatal(err)
	}
	if err := arch.Reset(); err != nil {
		t.Fatal(err)
	}
	// Post-reset appends work, and a reopen sees only them.
	if _, _, err := arch.AppendGroup(2, day(20), []*event.Story{archStory(2, "alpha", 1, "gaza")}); err != nil {
		t.Fatal(err)
	}
	arch.Close()
	_, metas, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].ID != 2 {
		t.Fatalf("reset archive scanned %v, want just story 2", metas)
	}
}

func TestArchiveSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	arch, _, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	arch.segLimit = 256 // force rotation quickly
	var want []event.StoryID
	locs := make(map[event.StoryID]ArchiveLoc)
	for i := 1; i <= 20; i++ {
		st := archStory(event.StoryID(i), "alpha", 1, "mh17", "ukraine")
		metas, _, err := arch.AppendGroup(uint64(i), day(10), []*event.Story{st})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, st.ID)
		locs[st.ID] = metas[0].Loc
	}
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %v (%v)", segs, err)
	}
	// Records in rotated-out segments stay readable.
	for id, loc := range locs {
		if _, err := arch.ReadStory(loc); err != nil {
			t.Fatalf("ReadStory(%d) in seg %d: %v", id, loc.Seg, err)
		}
	}
	arch.Close()
	_, metas, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != len(want) {
		t.Fatalf("reopen scanned %d records across segments, want %d", len(metas), len(want))
	}
	for i, m := range metas {
		if m.ID != want[i] {
			t.Fatalf("scan order[%d] = story %d, want %d", i, m.ID, want[i])
		}
	}
}

func TestArchiveEntityFreeFingerprint(t *testing.T) {
	dir := t.TempDir()
	arch, _, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	// No entities: the meta falls back to the highest-weight terms.
	sns := []*event.Snippet{{
		ID: 1, Source: "alpha", Timestamp: day(1),
		Terms: []event.Term{{Token: "volcano", Weight: 2}, {Token: "ash", Weight: 1}},
	}}
	cen := []vocab.IDWeight{
		{ID: vocab.Terms.ID("volcano"), W: 2},
		{ID: vocab.Terms.ID("ash"), W: 1},
	}
	st := event.RestoreStory(9, "alpha", sns, nil, cen, day(1), day(1), 1)
	metas, _, err := arch.AppendGroup(1, day(10), []*event.Story{st})
	if err != nil {
		t.Fatal(err)
	}
	if len(metas[0].Entities) != 0 {
		t.Fatalf("entity-free story got entities %v", metas[0].Entities)
	}
	if len(metas[0].TopTerms) != 2 || metas[0].TopTerms[0] != "volcano" {
		t.Fatalf("TopTerms = %v, want volcano first (weight order)", metas[0].TopTerms)
	}
}

// TestArchiveTornFrameAtRotationBoundary crashes an archive right at a
// segment rotation: the rotated-out segment keeps a torn frame at its
// tail while the successor already holds intact records. Recovery must
// truncate the torn bytes in place and keep every intact record from
// both segments — one torn boundary frame must not poison the
// directory.
func TestArchiveTornFrameAtRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	arch, _, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	arch.segLimit = 256
	var want []event.StoryID
	for i := 1; i <= 12; i++ {
		st := archStory(event.StoryID(i), "alpha", 1, "mh17", "ukraine")
		if _, _, err := arch.AppendGroup(uint64(i), day(10), []*event.Story{st}); err != nil {
			t.Fatal(err)
		}
		want = append(want, st.ID)
	}
	arch.Close()
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("need at least two segments for the boundary crash, got %v (%v)", segs, err)
	}

	// Tear the tail of the FIRST (rotated-out) segment, not the last.
	first := segmentPath(dir, segs[0])
	f, err := os.OpenFile(first, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x31, 0x56, 0x50, 0x53, 0x01, 0xff, 0xff})
	f.Close()

	arch2, metas, err := OpenArchive(dir)
	if err != nil {
		t.Fatalf("torn rotation boundary broke reopen: %v", err)
	}
	defer arch2.Close()
	if len(metas) != len(want) {
		t.Fatalf("boundary tear dropped records: scanned %d, want %d", len(metas), len(want))
	}
	for i, m := range metas {
		if m.ID != want[i] {
			t.Fatalf("scan order[%d] = story %d, want %d", i, m.ID, want[i])
		}
	}
	// The torn bytes are gone: another reopen scans the same set.
	arch2.Close()
	_, metas, err = OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != len(want) {
		t.Fatalf("second reopen scanned %d, want %d", len(metas), len(want))
	}
}

// TestArchiveResetRemovesAllSegments pins Reset against a rotated
// archive: every segment must go, not just the one currently open for
// append — stale rotated-out segments would resurrect retired stories
// the replay just rebuilt as live.
func TestArchiveResetRemovesAllSegments(t *testing.T) {
	dir := t.TempDir()
	arch, _, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer arch.Close()
	arch.segLimit = 256
	for i := 1; i <= 12; i++ {
		st := archStory(event.StoryID(i), "alpha", 1, "mh17", "ukraine")
		if _, _, err := arch.AppendGroup(uint64(i), day(10), []*event.Story{st}); err != nil {
			t.Fatal(err)
		}
	}
	if segs, _ := listSegments(dir); len(segs) < 2 {
		t.Fatalf("need a rotated archive, got segments %v", segs)
	}
	if err := arch.Reset(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != 0 {
		t.Fatalf("segments after Reset = %v, want just the fresh seg 0", segs)
	}
	if _, _, err := arch.AppendGroup(99, day(20), []*event.Story{archStory(99, "alpha", 1, "gaza")}); err != nil {
		t.Fatal(err)
	}
	arch.Close()
	_, metas, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].ID != 99 {
		t.Fatalf("post-reset reopen scanned %v, want just story 99", metas)
	}
}
