package storage

import (
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/event"
	"repro/internal/obs"
)

// Tiered chunk storage. In tiered mode the flat segment log is replaced
// by fixed-row chunk files under <dir>/chunks/: every append goes into
// the open chunk (the same CRC framing as the segment log, so a crash
// can only tear the final record), and sealed chunks migrate through
// three tiers as they age:
//
//	hot   — the newest sealed chunks, raw bytes resident in memory;
//	warm  — older chunks mmap'd read-only (page cache owns the bytes);
//	cold  — the long tail, optionally gzip-compressed on disk
//	        (chunk-%08d.spz) and inflated on demand into a small LRU.
//
// Only per-chunk metadata (ID range, row count, event-time bounds) stays
// resident for cold chunks, so process RSS is bounded by the hot+warm
// budgets instead of the corpus size. A manifest (chunks/manifest.json)
// caches sealed-chunk metadata so reopen does not have to decode the
// whole corpus; the chunk files themselves stay the source of truth, and
// any divergence (crash mid-demotion, deleted manifest) is reconciled at
// open by rescanning the affected chunk.
const (
	chunkPrefix     = "chunk-"
	chunkRawSuffix  = ".log"
	chunkColdSuffix = ".spz"
	manifestName    = "manifest.json"
)

// Chunk tier states.
const (
	tierHot = iota
	tierWarm
	tierCold
)

// TierOptions configures the tiered chunk store. The zero value of every
// field selects a sensible default; tiering as a whole is enabled by
// setting Options.Tier to a non-nil TierOptions.
type TierOptions struct {
	// ChunkRows is the number of snippets per sealed chunk (default 4096).
	ChunkRows int
	// HotChunks is how many sealed chunks stay decoded in memory
	// (default 4). The open chunk is always resident on top of this.
	HotChunks int
	// WarmChunks is how many chunks past the hot tier stay mmap'd
	// read-only (default 16).
	WarmChunks int
	// Compress gzips chunks demoted past the warm tier. Off, cold chunks
	// stay raw on disk and are read on demand.
	Compress bool
	// ColdCache is the LRU capacity, in chunks, for inflated cold chunks
	// (default 2).
	ColdCache int
	// PromoteAfter promotes a cold chunk back to the warm tier after this
	// many faults since it went cold (default 4; negative disables).
	PromoteAfter int
}

func (o TierOptions) withDefaults() TierOptions {
	if o.ChunkRows <= 0 {
		o.ChunkRows = 4096
	}
	if o.HotChunks <= 0 {
		o.HotChunks = 4
	}
	if o.WarmChunks <= 0 {
		o.WarmChunks = 16
	}
	if o.ColdCache <= 0 {
		o.ColdCache = 2
	}
	if o.PromoteAfter == 0 {
		o.PromoteAfter = 4
	}
	return o
}

// Tier-store instrumentation.
var (
	metTierHot = obs.GetGauge("storypivot_store_hot_chunks",
		"chunks resident in the hot tier (including the open chunk)")
	metTierWarm = obs.GetGauge("storypivot_store_warm_chunks",
		"chunks mmap'd in the warm tier")
	metTierCold = obs.GetGauge("storypivot_store_cold_chunks",
		"chunks demoted to the cold tier")
	metTierFaults = obs.GetCounter("storypivot_store_chunk_faults_total",
		"cold-chunk reads that had to load (and possibly inflate) a chunk")
	metTierPromotions = obs.GetCounter("storypivot_store_chunk_promotions_total",
		"cold chunks promoted back to the warm tier")
	metTierDemotions = obs.GetCounter("storypivot_store_chunk_demotions_total",
		"chunk demotions (hot→warm and warm→cold)")
	metTierColdReadLat = obs.GetHistogram("storypivot_store_cold_read_seconds",
		"latency of snippet reads served from the cold tier")
)

// chunk is the resident metadata (and, for hot/warm chunks, the bytes)
// of one chunk file.
type chunk struct {
	index int
	state int
	// sealed is false only for the single open chunk.
	sealed bool
	rows   int
	// dense chunks hold exactly the consecutive IDs firstID..lastID in
	// order, so a row is located by subtraction and no per-row ID list
	// is kept resident. Extractor-assigned IDs are monotonic, so almost
	// every chunk is dense; sparse chunks (out-of-order external IDs)
	// keep ids.
	firstID event.SnippetID
	lastID  event.SnippetID
	dense   bool
	ids     []event.SnippetID
	// Event-time bounds (unix nanos) for range pruning.
	minTS, maxTS int64
	// data is the raw framed bytes: a heap copy for hot chunks, an mmap
	// region for warm chunks, nil for cold chunks (cold bytes live in
	// the store's inflate LRU).
	data   []byte
	mapped bool
	offs   []uint32
	// rawBytes is the sealed raw file size (manifest-validated on open).
	rawBytes   int64
	compressed bool
	faults     int
	sources    []event.SourceID
}

func (c *chunk) hasID(id event.SnippetID) (int, bool) {
	if c.rows == 0 || id < c.firstID || id > c.lastID {
		return 0, false
	}
	if c.dense {
		return int(id - c.firstID), true
	}
	for i, cid := range c.ids {
		if cid == id {
			return i, true
		}
	}
	return 0, false
}

// inflated is one entry of the cold-chunk LRU.
type inflated struct {
	idx  int
	data []byte
	offs []uint32
}

// TierStore manages the chunk files of a tiered store. All methods are
// called with the owning Store's lock held; TierStore itself does no
// locking.
type TierStore struct {
	dir  string
	opts TierOptions
	sync SyncPolicy
	// syncEvery batches fsyncs under SyncBatch.
	syncEvery int
	sinceSync int

	chunks   []*chunk // ascending index; last is the open chunk
	open     *chunk
	openFile *os.File
	frameBuf []byte
	// lookup holds the sealed non-empty chunks in seal order. While
	// ordered is true their ID ranges are disjoint and ascending
	// (monotone extractor IDs, the common case), so a binary search
	// finds the owning chunk; out-of-order IDs drop to a linear scan.
	lookup  []*chunk
	ordered bool

	lru []inflated

	rows     int64
	sources  map[event.SourceID]int64
	warnings []string
	dropped  int64

	faults, promotions, demotions uint64
}

func chunkRawPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", chunkPrefix, index, chunkRawSuffix))
}

func chunkColdPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", chunkPrefix, index, chunkColdSuffix))
}

// chunkManifest is the JSON shape of chunks/manifest.json and of the
// checkpoint v3 tier manifest.
type chunkManifest struct {
	Version int         `json:"version"`
	Rows    int64       `json:"rows"`
	Chunks  []chunkMeta `json:"chunks"`
}

type chunkMeta struct {
	Index      int      `json:"index"`
	Rows       int      `json:"rows"`
	FirstID    uint64   `json:"first_id"`
	LastID     uint64   `json:"last_id"`
	Dense      bool     `json:"dense"`
	IDs        []uint64 `json:"ids,omitempty"`
	MinTS      int64    `json:"min_ts"`
	MaxTS      int64    `json:"max_ts"`
	RawBytes   int64    `json:"raw_bytes"`
	Compressed bool     `json:"compressed,omitempty"`
	State      string   `json:"state"`
	Sources    []string `json:"sources,omitempty"`
}

func tierStateName(state int) string {
	switch state {
	case tierHot:
		return "hot"
	case tierWarm:
		return "warm"
	default:
		return "cold"
	}
}

func (c *chunk) meta() chunkMeta {
	m := chunkMeta{
		Index:      c.index,
		Rows:       c.rows,
		FirstID:    uint64(c.firstID),
		LastID:     uint64(c.lastID),
		Dense:      c.dense,
		MinTS:      c.minTS,
		MaxTS:      c.maxTS,
		RawBytes:   c.rawBytes,
		Compressed: c.compressed,
		State:      tierStateName(c.state),
	}
	if !c.dense {
		m.IDs = make([]uint64, len(c.ids))
		for i, id := range c.ids {
			m.IDs[i] = uint64(id)
		}
	}
	for _, src := range c.sources {
		m.Sources = append(m.Sources, string(src))
	}
	return m
}

// scanFrames walks the CRC framing of raw chunk bytes, returning the
// frame offsets and the number of leading valid bytes. A torn or corrupt
// tail simply ends the scan (valid < len(data)); that is the crash
// signature of the open chunk.
func scanFrames(data []byte) (offs []uint32, valid int) {
	off := 0
	for off+headerSize <= len(data) {
		if binary.LittleEndian.Uint32(data[off:off+4]) != recordMagic || data[off+4] != recordVersion {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off+5 : off+9]))
		if n > maxRecordSize || off+headerSize+n > len(data) {
			break
		}
		payload := data[off+headerSize : off+headerSize+n]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[off+9:off+13]) {
			break
		}
		offs = append(offs, uint32(off))
		off += headerSize + n
	}
	return offs, off
}

// framePayload returns the payload of the frame starting at offs[row].
func framePayload(data []byte, off uint32) []byte {
	n := binary.LittleEndian.Uint32(data[off+5 : off+9])
	return data[off+headerSize : uint32(headerSize)+off+n]
}

// openTierStore opens (creating if necessary) the chunk directory under
// dir, reconciling any crash leftovers: *.tmp files are removed, a chunk
// present both raw and compressed keeps whichever copy is intact
// (preferring raw), and the open chunk's torn tail is truncated exactly
// like a segment's.
func openTierStore(dir string, opts TierOptions, sync SyncPolicy, syncEvery int) (*TierStore, error) {
	cdir := filepath.Join(dir, "chunks")
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		return nil, err
	}
	t := &TierStore{
		dir:       cdir,
		opts:      opts.withDefaults(),
		sync:      sync,
		syncEvery: syncEvery,
		sources:   make(map[event.SourceID]int64),
		ordered:   true,
	}
	raw, cold, err := t.listChunks()
	if err != nil {
		return nil, err
	}
	manifest := t.loadManifest()
	indices := unionSorted(raw, cold)
	for _, idx := range indices {
		last := idx == indices[len(indices)-1]
		c, err := t.recoverChunk(idx, raw[idx], cold[idx], manifest[idx], last)
		if err != nil {
			return nil, err
		}
		if c == nil {
			continue // unrecoverable chunk; warning already recorded
		}
		t.addChunkLocked(c)
	}
	if t.open == nil || t.open.sealed {
		if err := t.startChunkLocked(t.nextIndex()); err != nil {
			return nil, err
		}
	} else {
		// Reopen the recovered open chunk for appending.
		f, err := os.OpenFile(chunkRawPath(t.dir, t.open.index), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		t.openFile = f
	}
	if err := t.rebalanceLocked(); err != nil {
		return nil, err
	}
	t.updateGauges()
	return t, nil
}

// listChunks returns the raw (.log) and compressed (.spz) chunk indices
// present, removing stale temp files on the way.
func (t *TierStore) listChunks() (raw, cold map[int]bool, err error) {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return nil, nil, err
	}
	raw, cold = make(map[int]bool), make(map[int]bool)
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(t.dir, name))
			continue
		}
		if !strings.HasPrefix(name, chunkPrefix) {
			continue
		}
		var set map[int]bool
		switch {
		case strings.HasSuffix(name, chunkRawSuffix):
			set = raw
		case strings.HasSuffix(name, chunkColdSuffix):
			set = cold
		default:
			continue
		}
		numStr := strings.TrimSuffix(strings.TrimSuffix(
			strings.TrimPrefix(name, chunkPrefix), chunkRawSuffix), chunkColdSuffix)
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		set[n] = true
	}
	return raw, cold, nil
}

func unionSorted(a, b map[int]bool) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for k := range a {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

// loadManifest reads chunks/manifest.json, returning metadata keyed by
// chunk index. A missing or corrupt manifest is not an error: the chunk
// files are the source of truth and are rescanned instead.
func (t *TierStore) loadManifest() map[int]*chunkMeta {
	out := make(map[int]*chunkMeta)
	data, err := os.ReadFile(filepath.Join(t.dir, manifestName))
	if err != nil {
		return out
	}
	var m chunkManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.warnings = append(t.warnings, fmt.Sprintf("chunk manifest unreadable (%v); rescanning chunks", err))
		return out
	}
	for i := range m.Chunks {
		cm := m.Chunks[i]
		out[cm.Index] = &cm
	}
	return out
}

// recoverChunk rebuilds one chunk's resident state from its on-disk
// files, applying the crash rules. last marks the highest-index chunk,
// which is the only one whose raw file may legitimately have a torn tail.
func (t *TierStore) recoverChunk(idx int, hasRaw, hasCold bool, meta *chunkMeta, last bool) (*chunk, error) {
	rawPath := chunkRawPath(t.dir, idx)
	coldPath := chunkColdPath(t.dir, idx)
	if hasRaw {
		data, err := os.ReadFile(rawPath)
		if err != nil {
			return nil, err
		}
		offs, valid := scanFrames(data)
		if hasCold {
			// Crash between a demotion's compress and its raw unlink, or
			// between a promotion's raw rematerialise and its spz unlink.
			// The raw copy, when intact, is authoritative.
			if valid == len(data) && (meta == nil || len(offs) >= meta.Rows) {
				os.Remove(coldPath)
				hasCold = false
			} else {
				os.Remove(rawPath)
				t.warnings = append(t.warnings, fmt.Sprintf(
					"chunk %d: raw copy torn at %d/%d bytes; using compressed copy", idx, valid, len(data)))
				return t.recoverColdChunk(idx, coldPath, meta)
			}
		}
		if valid < len(data) {
			if !last && meta != nil {
				t.warnings = append(t.warnings, fmt.Sprintf(
					"chunk %d: sealed chunk truncated from %d to %d rows", idx, meta.Rows, len(offs)))
			}
			if err := os.Truncate(rawPath, int64(valid)); err != nil {
				return nil, fmt.Errorf("storage: truncating torn chunk %s: %w", rawPath, err)
			}
			metReplayTornBytes.Add(uint64(len(data) - valid))
			t.dropped += int64(len(data) - valid)
			if last {
				t.warnings = append(t.warnings, fmt.Sprintf(
					"chunk %d: truncated %d torn-tail bytes", idx, len(data)-valid))
			}
			data = data[:valid]
		}
		c := t.buildChunk(idx, data, offs, meta)
		c.rawBytes = int64(valid)
		c.sealed = !last || c.rows >= t.opts.ChunkRows
		c.state = tierHot
		if c.sealed && c.dense {
			c.ids = nil
		}
		return c, nil
	}
	if hasCold {
		return t.recoverColdChunk(idx, coldPath, meta)
	}
	if meta != nil {
		t.warnings = append(t.warnings, fmt.Sprintf(
			"chunk %d: manifest entry has no chunk file; %d rows lost", idx, meta.Rows))
	}
	return nil, nil
}

// recoverColdChunk rebuilds a compressed-only chunk. With a matching
// manifest entry it stays on disk untouched; otherwise it is inflated
// once to rebuild its metadata.
func (t *TierStore) recoverColdChunk(idx int, coldPath string, meta *chunkMeta) (*chunk, error) {
	if meta != nil && meta.Rows > 0 {
		c := metaChunk(idx, meta)
		c.compressed = true
		c.sealed = true
		c.state = tierCold
		return c, nil
	}
	data, err := inflateFile(coldPath)
	if err != nil {
		t.warnings = append(t.warnings, fmt.Sprintf("chunk %d: compressed chunk unreadable (%v); dropped", idx, err))
		os.Remove(coldPath)
		return nil, nil
	}
	offs, valid := scanFrames(data)
	if valid < len(data) {
		t.warnings = append(t.warnings, fmt.Sprintf(
			"chunk %d: compressed chunk torn at %d/%d bytes", idx, valid, len(data)))
		t.dropped += int64(len(data) - valid)
		data = data[:valid]
	}
	c := t.buildChunk(idx, data, offs, nil)
	c.rawBytes = int64(valid)
	c.compressed = true
	c.sealed = true
	c.state = tierCold
	c.data, c.offs = nil, nil
	if c.dense {
		c.ids = nil
	}
	return c, nil
}

// metaChunk materialises resident chunk state from a manifest entry
// without touching the chunk file.
func metaChunk(idx int, m *chunkMeta) *chunk {
	c := &chunk{
		index:    idx,
		rows:     m.Rows,
		firstID:  event.SnippetID(m.FirstID),
		lastID:   event.SnippetID(m.LastID),
		dense:    m.Dense,
		minTS:    m.MinTS,
		maxTS:    m.MaxTS,
		rawBytes: m.RawBytes,
	}
	if !m.Dense {
		c.ids = make([]event.SnippetID, len(m.IDs))
		for i, id := range m.IDs {
			c.ids[i] = event.SnippetID(id)
		}
	}
	for _, s := range m.Sources {
		c.sources = append(c.sources, event.SourceID(s))
	}
	return c
}

// buildChunk decodes raw chunk bytes into resident chunk state. When a
// trusted manifest entry matches the file size, the per-row decode is
// skipped and metadata comes from the manifest.
func (t *TierStore) buildChunk(idx int, data []byte, offs []uint32, meta *chunkMeta) *chunk {
	if meta != nil && meta.RawBytes == int64(len(data)) && meta.Rows == len(offs) {
		c := metaChunk(idx, meta)
		c.data = append([]byte(nil), data...)
		c.offs = offs
		return c
	}
	c := &chunk{index: idx, dense: true, data: append([]byte(nil), data...), offs: offs}
	for _, off := range offs {
		sn, err := event.Decode(framePayload(data, off))
		if err != nil {
			// A well-framed record whose payload no longer decodes: skip
			// it but keep the row so offsets stay aligned with frames.
			metReplayCorrupt.Inc()
			t.warnings = append(t.warnings, fmt.Sprintf("chunk %d: undecodable record skipped", idx))
			sn = &event.Snippet{}
		}
		c.noteRow(sn)
	}
	return c
}

// noteRow folds one decoded snippet into the chunk's metadata.
func (c *chunk) noteRow(sn *event.Snippet) {
	ts := sn.Timestamp.UnixNano()
	if c.rows == 0 {
		c.firstID, c.lastID = sn.ID, sn.ID
		c.minTS, c.maxTS = ts, ts
	} else {
		if sn.ID != c.lastID+1 {
			c.dense = false
		}
		if sn.ID < c.firstID {
			c.firstID = sn.ID
		}
		if sn.ID > c.lastID {
			c.lastID = sn.ID
		}
		if ts < c.minTS {
			c.minTS = ts
		}
		if ts > c.maxTS {
			c.maxTS = ts
		}
	}
	c.ids = append(c.ids, sn.ID)
	c.rows++
	found := false
	for _, s := range c.sources {
		if s == sn.Source {
			found = true
			break
		}
	}
	if !found && sn.Source != "" {
		c.sources = append(c.sources, sn.Source)
	}
}

func (t *TierStore) addChunkLocked(c *chunk) {
	t.chunks = append(t.chunks, c)
	if c.sealed {
		t.noteSealed(c)
	} else {
		t.open = c
	}
	t.rows += int64(c.rows)
	for _, src := range c.sources {
		t.sources[src] += 0 // presence only; counts refined on append
	}
}

// noteSealed registers a sealed chunk with the lookup structures.
func (t *TierStore) noteSealed(c *chunk) {
	if c.rows == 0 {
		return
	}
	if n := len(t.lookup); n > 0 && c.firstID <= t.lookup[n-1].lastID {
		// While ordered, earlier ranges all end below the previous
		// chunk's lastID, so comparing against it alone is sufficient.
		t.ordered = false
	}
	t.lookup = append(t.lookup, c)
}

func (t *TierStore) nextIndex() int {
	if len(t.chunks) == 0 {
		return 0
	}
	return t.chunks[len(t.chunks)-1].index + 1
}

// startChunkLocked creates and opens a fresh chunk for appending.
func (t *TierStore) startChunkLocked(idx int) error {
	f, err := os.OpenFile(chunkRawPath(t.dir, idx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	c := &chunk{index: idx, dense: true, state: tierHot}
	t.chunks = append(t.chunks, c)
	t.open = c
	t.openFile = f
	return nil
}

// Has reports whether id is stored in any chunk.
func (t *TierStore) Has(id event.SnippetID) bool {
	_, _, ok := t.locate(id)
	return ok
}

// locate finds the chunk and row holding id. The open chunk is probed
// first (recent IDs dominate), then the sealed chunks — by binary
// search over their disjoint ascending ranges in the common case.
func (t *TierStore) locate(id event.SnippetID) (*chunk, int, bool) {
	if t.open != nil {
		if row, ok := t.open.hasID(id); ok {
			return t.open, row, true
		}
	}
	if t.ordered {
		i := sort.Search(len(t.lookup), func(i int) bool { return t.lookup[i].firstID > id })
		if i == 0 {
			return nil, 0, false
		}
		c := t.lookup[i-1]
		row, ok := c.hasID(id)
		return c, row, ok
	}
	for i := len(t.lookup) - 1; i >= 0; i-- {
		if row, ok := t.lookup[i].hasID(id); ok {
			return t.lookup[i], row, true
		}
	}
	return nil, 0, false
}

// Append frames and persists one snippet into the open chunk, sealing
// and rebalancing the tiers when the chunk fills.
func (t *TierStore) Append(sn *event.Snippet) error {
	t.frameBuf = appendRecord(t.frameBuf[:0], event.AppendEncode(nil, sn))
	if _, err := t.openFile.Write(t.frameBuf); err != nil {
		return err
	}
	switch t.sync {
	case SyncAlways:
		if err := t.openFile.Sync(); err != nil {
			return err
		}
		metSyncs.Inc()
	case SyncBatch:
		if t.sinceSync++; t.sinceSync >= t.syncEvery {
			if err := t.openFile.Sync(); err != nil {
				return err
			}
			metSyncs.Inc()
			t.sinceSync = 0
		}
	}
	c := t.open
	c.offs = append(c.offs, uint32(len(c.data)))
	c.data = append(c.data, t.frameBuf...)
	c.rawBytes = int64(len(c.data))
	c.noteRow(sn)
	t.rows++
	t.sources[sn.Source]++
	metAppends.Inc()
	metAppendBytes.Add(uint64(len(t.frameBuf)))
	if c.rows >= t.opts.ChunkRows {
		return t.sealOpenLocked()
	}
	return nil
}

// sealOpenLocked seals the open chunk, starts a fresh one, rebalances
// the tiers, and persists the manifest.
func (t *TierStore) sealOpenLocked() error {
	c := t.open
	if err := t.openFile.Sync(); err != nil {
		return err
	}
	if err := t.openFile.Close(); err != nil {
		return err
	}
	t.openFile = nil
	c.sealed = true
	if c.dense {
		c.ids = nil
	}
	t.noteSealed(c)
	if err := t.startChunkLocked(c.index + 1); err != nil {
		return err
	}
	if err := t.rebalanceLocked(); err != nil {
		return err
	}
	t.updateGauges()
	return t.writeManifest()
}

// rebalanceLocked enforces the hot and warm budgets, demoting the oldest
// chunks of an over-budget tier.
func (t *TierStore) rebalanceLocked() error {
	var hot, warm []*chunk
	for _, c := range t.chunks {
		if !c.sealed {
			continue
		}
		switch c.state {
		case tierHot:
			hot = append(hot, c)
		case tierWarm:
			warm = append(warm, c)
		}
	}
	for len(hot) > t.opts.HotChunks {
		c := hot[0]
		hot = hot[1:]
		if err := t.demoteHotToWarm(c); err != nil {
			return err
		}
		warm = append(warm, c)
	}
	// Demotion order for warm is by age (chunk index), not promotion
	// recency: a promoted chunk younger than the warm window's tail
	// should not evict newer chunks.
	sort.Slice(warm, func(i, j int) bool { return warm[i].index < warm[j].index })
	for len(warm) > t.opts.WarmChunks {
		c := warm[0]
		warm = warm[1:]
		if err := t.demoteWarmToCold(c); err != nil {
			return err
		}
	}
	return nil
}

// demoteHotToWarm swaps a chunk's resident heap copy for a read-only
// mmap of its raw file.
func (t *TierStore) demoteHotToWarm(c *chunk) error {
	f, err := os.Open(chunkRawPath(t.dir, c.index))
	if err != nil {
		return err
	}
	data, mapped, err := mmapFile(f, c.rawBytes)
	f.Close()
	if err != nil {
		return err
	}
	c.data = data
	c.mapped = mapped
	c.state = tierWarm
	t.demotions++
	metTierDemotions.Inc()
	return nil
}

// demoteWarmToCold releases a chunk's mapping and, when compression is
// enabled, gzips the raw file (tmp + fsync + rename, then unlink raw) so
// only the compressed copy remains.
func (t *TierStore) demoteWarmToCold(c *chunk) error {
	if c.mapped {
		if err := munmapChunk(c.data); err != nil {
			return err
		}
	}
	c.data = nil
	c.mapped = false
	c.offs = nil
	c.state = tierCold
	c.faults = 0
	if t.opts.Compress && !c.compressed {
		if err := t.compressChunk(c); err != nil {
			return err
		}
	}
	t.demotions++
	metTierDemotions.Inc()
	return nil
}

func (t *TierStore) compressChunk(c *chunk) error {
	rawPath := chunkRawPath(t.dir, c.index)
	data, err := os.ReadFile(rawPath)
	if err != nil {
		return err
	}
	coldPath := chunkColdPath(t.dir, c.index)
	if err := AtomicWrite(coldPath, func(w io.Writer) error {
		zw := gzip.NewWriter(w)
		if _, err := zw.Write(data); err != nil {
			return err
		}
		return zw.Close()
	}); err != nil {
		return err
	}
	c.compressed = true
	// Crash window: both copies exist until this unlink; open prefers
	// the intact raw copy and re-deletes the spz.
	return os.Remove(rawPath)
}

func inflateFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

// coldBytes returns a cold chunk's raw bytes and offsets, serving from
// the inflate LRU when possible and faulting the chunk in otherwise.
// Enough faults promote the chunk back to the warm tier.
func (t *TierStore) coldBytes(c *chunk) ([]byte, []uint32, error) {
	for i, e := range t.lru {
		if e.idx == c.index {
			// Refresh recency.
			t.lru = append(append(t.lru[:i:i], t.lru[i+1:]...), e)
			return e.data, e.offs, nil
		}
	}
	span := metTierColdReadLat.Start()
	var data []byte
	var err error
	if c.compressed {
		data, err = inflateFile(chunkColdPath(t.dir, c.index))
	} else {
		data, err = os.ReadFile(chunkRawPath(t.dir, c.index))
	}
	if err != nil {
		return nil, nil, err
	}
	offs, valid := scanFrames(data)
	data = data[:valid]
	t.faults++
	metTierFaults.Inc()
	t.lru = append(t.lru, inflated{idx: c.index, data: data, offs: offs})
	if len(t.lru) > t.opts.ColdCache {
		t.lru = append(t.lru[:0:0], t.lru[1:]...)
	}
	span.End()
	c.faults++
	if t.opts.PromoteAfter > 0 && c.faults >= t.opts.PromoteAfter {
		if err := t.promote(c, data, offs); err != nil {
			return nil, nil, err
		}
	}
	return data, offs, nil
}

// promote moves a cold chunk back to the warm tier: the raw file is
// rematerialised if only the compressed copy exists (tmp + fsync +
// rename, then unlink spz), then mmap'd read-only.
func (t *TierStore) promote(c *chunk, data []byte, offs []uint32) error {
	rawPath := chunkRawPath(t.dir, c.index)
	if c.compressed {
		if err := AtomicWrite(rawPath, func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		}); err != nil {
			return err
		}
		c.compressed = false
		// Crash window mirror of demotion: both copies exist until the
		// unlink; open prefers the raw copy.
		if err := os.Remove(chunkColdPath(t.dir, c.index)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	f, err := os.Open(rawPath)
	if err != nil {
		return err
	}
	mdata, mapped, err := mmapFile(f, int64(len(data)))
	f.Close()
	if err != nil {
		return err
	}
	c.data = mdata
	c.mapped = mapped
	c.offs = offs
	c.state = tierWarm
	c.faults = 0
	// Drop the promoted chunk from the inflate LRU; it is served from
	// the mapping now.
	for i, e := range t.lru {
		if e.idx == c.index {
			t.lru = append(t.lru[:i:i], t.lru[i+1:]...)
			break
		}
	}
	t.promotions++
	metTierPromotions.Inc()
	if err := t.rebalanceLocked(); err != nil {
		return err
	}
	t.updateGauges()
	return t.writeManifest()
}

// rowBytes returns the raw bytes and frame offset table for a chunk,
// whatever its tier.
func (t *TierStore) rowBytes(c *chunk) ([]byte, []uint32, error) {
	if c.state != tierCold && c.data != nil {
		if c.offs == nil {
			offs, _ := scanFrames(c.data)
			c.offs = offs
		}
		return c.data, c.offs, nil
	}
	return t.coldBytes(c)
}

// Get decodes and returns the snippet with the given ID, or nil.
func (t *TierStore) Get(id event.SnippetID) (*event.Snippet, error) {
	c, row, ok := t.locate(id)
	if !ok {
		return nil, nil
	}
	data, offs, err := t.rowBytes(c)
	if err != nil {
		return nil, err
	}
	if row >= len(offs) {
		return nil, fmt.Errorf("storage: chunk %d row %d beyond recovered frames", c.index, row)
	}
	sn, err := event.Decode(framePayload(data, offs[row]))
	if err != nil {
		return nil, fmt.Errorf("storage: chunk %d row %d: %w", c.index, row, err)
	}
	return sn, nil
}

// Scan invokes fn with every stored snippet in chunk order. The decoded
// snippet is freshly allocated and owned by fn.
func (t *TierStore) Scan(fn func(*event.Snippet) error) error {
	for _, c := range t.chunks {
		if c.rows == 0 {
			continue
		}
		data, offs, err := t.rowBytes(c)
		if err != nil {
			return err
		}
		for _, off := range offs {
			sn, derr := event.Decode(framePayload(data, off))
			if derr != nil {
				continue // counted at open
			}
			if err := fn(sn); err != nil {
				return err
			}
		}
	}
	return nil
}

// ScanOverlap is Scan restricted to chunks whose event-time bounds
// intersect [fromNS, toNS].
func (t *TierStore) ScanOverlap(fromNS, toNS int64, fn func(*event.Snippet) error) error {
	for _, c := range t.chunks {
		if c.rows == 0 || c.minTS > toNS || c.maxTS < fromNS {
			continue
		}
		data, offs, err := t.rowBytes(c)
		if err != nil {
			return err
		}
		for _, off := range offs {
			sn, derr := event.Decode(framePayload(data, off))
			if derr != nil {
				continue
			}
			if err := fn(sn); err != nil {
				return err
			}
		}
	}
	return nil
}

// Rows returns the number of stored snippets.
func (t *TierStore) Rows() int64 { return t.rows }

// SourceIDs returns the distinct sources seen, unsorted.
func (t *TierStore) SourceIDs() []event.SourceID {
	out := make([]event.SourceID, 0, len(t.sources))
	for src := range t.sources {
		out = append(out, src)
	}
	return out
}

func (t *TierStore) updateGauges() {
	hot, warm, cold := t.tierCounts()
	metTierHot.Set(int64(hot))
	metTierWarm.Set(int64(warm))
	metTierCold.Set(int64(cold))
}

func (t *TierStore) tierCounts() (hot, warm, cold int) {
	for _, c := range t.chunks {
		switch c.state {
		case tierHot:
			hot++
		case tierWarm:
			warm++
		default:
			cold++
		}
	}
	return hot, warm, cold
}

func (t *TierStore) manifest() chunkManifest {
	m := chunkManifest{Version: 1, Rows: t.rows}
	for _, c := range t.chunks {
		if !c.sealed {
			continue
		}
		m.Chunks = append(m.Chunks, c.meta())
	}
	return m
}

func (t *TierStore) writeManifest() error {
	m := t.manifest()
	return AtomicWrite(filepath.Join(t.dir, manifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(m)
	})
}

// ManifestJSON serialises the current chunk manifest (for checkpoint v3).
func (t *TierStore) ManifestJSON() ([]byte, error) {
	return json.Marshal(t.manifest())
}

// ReconcileManifest compares a previously checkpointed manifest against
// the live chunk state and returns human-readable divergence findings.
// The chunk files have already self-healed at open; the findings only
// surface what changed behind the checkpoint's back, mirroring the
// retire manager's archive reconcile.
func (t *TierStore) ReconcileManifest(data []byte) []string {
	var cp chunkManifest
	if err := json.Unmarshal(data, &cp); err != nil {
		return []string{fmt.Sprintf("checkpoint tier manifest unreadable: %v", err)}
	}
	live := make(map[int]*chunk, len(t.chunks))
	for _, c := range t.chunks {
		live[c.index] = c
	}
	var out []string
	for _, cm := range cp.Chunks {
		c, ok := live[cm.Index]
		switch {
		case !ok:
			out = append(out, fmt.Sprintf(
				"tier reconcile: checkpointed chunk %d (%d rows) missing on disk", cm.Index, cm.Rows))
		case c.rows != cm.Rows:
			out = append(out, fmt.Sprintf(
				"tier reconcile: chunk %d has %d rows, checkpoint recorded %d", cm.Index, c.rows, cm.Rows))
		}
	}
	return out
}

// Stats summarises the tier state for tests and benchmarks.
type TierStats struct {
	Hot, Warm, Cold               int
	Rows                          int64
	Faults, Promotions, Demotions uint64
}

func (t *TierStore) Stats() TierStats {
	hot, warm, cold := t.tierCounts()
	return TierStats{
		Hot: hot, Warm: warm, Cold: cold,
		Rows:   t.rows,
		Faults: t.faults, Promotions: t.promotions, Demotions: t.demotions,
	}
}

// Sync fsyncs the open chunk.
func (t *TierStore) Sync() error { return t.openFile.Sync() }

// Close syncs the open chunk, releases every mapping, and persists the
// manifest.
func (t *TierStore) Close() error {
	var first error
	if t.openFile != nil {
		if err := t.openFile.Sync(); err != nil && first == nil {
			first = err
		}
		if err := t.openFile.Close(); err != nil && first == nil {
			first = err
		}
		t.openFile = nil
	}
	for _, c := range t.chunks {
		if c.mapped {
			if err := munmapChunk(c.data); err != nil && first == nil {
				first = err
			}
			c.data = nil
			c.mapped = false
		}
	}
	if err := t.writeManifest(); err != nil && first == nil {
		first = err
	}
	return first
}

// importSegments replays legacy flat-log segments (seg-*.log) found in
// the parent directory into the chunk store, so a store created before
// tiering was enabled carries its corpus forward. Records already
// present in a chunk are skipped, making the import idempotent.
func (t *TierStore) importSegments(dir string) error {
	indices, err := listSegments(dir)
	if err != nil {
		return err
	}
	imported := 0
	for _, idx := range indices {
		dropped, err := scanSegment(segmentPath(dir, idx), func(payload []byte) error {
			sn, derr := event.Decode(payload)
			if derr != nil {
				metReplayCorrupt.Inc()
				return nil
			}
			if t.Has(sn.ID) {
				return nil
			}
			imported++
			return t.Append(sn)
		})
		if err != nil {
			return err
		}
		t.dropped += dropped
	}
	if imported > 0 {
		t.warnings = append(t.warnings, fmt.Sprintf(
			"imported %d snippets from %d legacy segment files", imported, len(indices)))
	}
	return nil
}
