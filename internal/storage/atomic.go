package storage

import (
	"io"
	"os"
	"path/filepath"
)

// AtomicWrite publishes a file at path with full crash consistency:
// the content is written to a sibling temp file, fsynced, closed, and
// renamed over path, and the parent directory is fsynced afterwards so
// the rename itself survives a crash. On any error the temp file is
// removed — no partially written temp ever outlives the call — and the
// previous content of path (if any) is untouched.
//
// This is the write path for every piece of small mutable state that
// sits next to the append-only logs: the pipeline checkpoint and the
// feed resume cursors. Without the two fsyncs a crash immediately
// after a "successful" write can publish an empty or stale file even
// though the rename claimed durability.
func AtomicWrite(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a preceding rename within it is
// durable. Some filesystems do not support fsync on directories; those
// errors are surfaced to the caller, which may treat checkpointing as
// best-effort.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
