// Package stream implements StoryPivot's dynamic integration of story
// identification and story alignment (paper §2.4): snippets arrive
// continuously — and not necessarily in timestamp order — from a changing
// set of data sources; the engine routes each snippet through its source's
// incremental identifier, tracks which stories changed, and re-aligns only
// the dirty stories, so users always see near-real-time integrated
// stories.
package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/align"
	"repro/internal/event"
	"repro/internal/identify"
	"repro/internal/sketch"
)

// Options configures an Engine.
type Options struct {
	// Identify configures the per-source identifiers.
	Identify identify.Config
	// Align configures the shared aligner.
	Align align.Config
	// Refine configures refinement; applied when RefineOnAlign is true.
	Refine align.RefineConfig
	// RefineOnAlign runs a refinement pass after every (re-)alignment.
	RefineOnAlign bool
	// AutoAlignEvery re-aligns automatically after this many ingested
	// snippets (0 disables; callers then call Align explicitly).
	AutoAlignEvery int
	// DedupCapacity sizes the per-source duplicate-delivery filter
	// (0 disables deduplication).
	DedupCapacity int
}

// DefaultOptions mirrors the demo system's configuration.
func DefaultOptions() Options {
	return Options{
		Identify:       identify.DefaultConfig(),
		Align:          align.DefaultConfig(),
		Refine:         align.DefaultRefineConfig(),
		RefineOnAlign:  false,
		AutoAlignEvery: 0,
		DedupCapacity:  1 << 16,
	}
}

// Errors returned by the engine.
var (
	// ErrUnknownSource is returned by Ingest when the snippet's source was
	// never added (or was removed) and auto-registration is off.
	ErrUnknownSource = errors.New("stream: unknown source")
	// ErrDuplicate is returned for a snippet the per-source deduplication
	// filter has (very probably) seen before.
	ErrDuplicate = errors.New("stream: duplicate snippet delivery")
)

// Engine is the live StoryPivot pipeline. It is safe for concurrent use;
// internally a single mutex serialises state changes (ingest latency is
// micro-seconds, so a finer scheme is not warranted — the paper's 10M
// corpus processes in minutes through this path).
type Engine struct {
	opts Options

	mu          sync.Mutex
	alloc       identify.IDAlloc
	identifiers map[event.SourceID]*identify.Identifier
	dedup       map[event.SourceID]*sketch.Bloom
	aligner     *align.Aligner
	dirty       map[event.StoryID]bool
	// storyOwner tracks which source produced a story so removals can
	// clean the aligner.
	storyOwner map[event.StoryID]event.SourceID

	sinceAlign int
	ingested   uint64
	result     *align.Result

	// entHLL estimates the distinct-entity count of everything ingested
	// (the "# Entities" figure of the statistics module's dataset panel)
	// in fixed memory.
	entHLL *sketch.HyperLogLog
	// firstTS/lastTS track the ingested time range for the same panel.
	firstTS, lastTS time.Time
}

// NewEngine creates an engine with no sources.
func NewEngine(opts Options) *Engine {
	hll, err := sketch.NewHyperLogLog(12)
	if err != nil {
		panic(err) // precision 12 is statically valid
	}
	return &Engine{
		opts:        opts,
		identifiers: make(map[event.SourceID]*identify.Identifier),
		dedup:       make(map[event.SourceID]*sketch.Bloom),
		aligner:     align.NewAligner(opts.Align),
		dirty:       make(map[event.StoryID]bool),
		storyOwner:  make(map[event.StoryID]event.SourceID),
		entHLL:      hll,
	}
}

// AddSource registers a data source. Adding an existing source is a no-op.
// Snippets for unregistered sources are auto-registered by Ingest, so
// explicit AddSource is only needed to pre-create empty sources.
func (e *Engine) AddSource(src event.SourceID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.addSourceLocked(src)
}

func (e *Engine) addSourceLocked(src event.SourceID) *identify.Identifier {
	if id, ok := e.identifiers[src]; ok {
		return id
	}
	id := identify.New(src, e.opts.Identify, &e.alloc)
	e.identifiers[src] = id
	if e.opts.DedupCapacity > 0 {
		e.dedup[src] = sketch.NewBloom(e.opts.DedupCapacity, 0.001)
	}
	metSourcesGauge.Set(int64(len(e.identifiers)))
	return id
}

// RemoveSource detaches a source: its stories leave the aligner and the
// integrated result (paper §2.4: "any story detection system should allow
// the addition or removal of data sources"). It reports whether the source
// existed.
func (e *Engine) RemoveSource(src event.SourceID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	id, ok := e.identifiers[src]
	if !ok {
		return false
	}
	for _, st := range id.Stories() {
		e.aligner.Remove(st.ID)
		delete(e.dirty, st.ID)
		delete(e.storyOwner, st.ID)
	}
	delete(e.identifiers, src)
	delete(e.dedup, src)
	e.result = nil
	metSourcesGauge.Set(int64(len(e.identifiers)))
	metDirtyGauge.Set(int64(len(e.dirty)))
	return true
}

// Sources returns the registered sources, sorted.
func (e *Engine) Sources() []event.SourceID {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]event.SourceID, 0, len(e.identifiers))
	for src := range e.identifiers {
		out = append(out, src)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ingest routes one snippet through its source's identifier and marks the
// touched story dirty for the next alignment. Unknown sources are
// registered on first sight. Returns the per-source story the snippet
// joined.
func (e *Engine) Ingest(s *event.Snippet) (event.StoryID, error) {
	if err := s.Validate(); err != nil {
		metInvalid.Inc()
		return 0, err
	}
	span := metIngestLat.Start()
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.addSourceLocked(s.Source)
	if bloom := e.dedup[s.Source]; bloom != nil {
		key := fmt.Sprintf("%d", s.ID)
		if bloom.Contains(key) {
			metDuplicates.Inc()
			return 0, fmt.Errorf("%w: snippet %d", ErrDuplicate, s.ID)
		}
		bloom.Add(key)
	}
	sid := id.Process(s)
	e.dirty[sid] = true
	e.storyOwner[sid] = s.Source
	e.ingested++
	metIngested.Inc()
	metDirtyGauge.Set(int64(len(e.dirty)))
	for _, ent := range s.Entities {
		e.entHLL.Add(string(ent))
	}
	if e.firstTS.IsZero() || s.Timestamp.Before(e.firstTS) {
		e.firstTS = s.Timestamp
	}
	if s.Timestamp.After(e.lastTS) {
		e.lastTS = s.Timestamp
	}
	// The span stops here: auto-alignment below is measured by its own
	// histogram, and folding a ms-scale align pass into the µs-scale
	// ingest distribution would swamp its upper quantiles.
	span.End()
	if e.opts.AutoAlignEvery > 0 {
		if e.sinceAlign++; e.sinceAlign >= e.opts.AutoAlignEvery {
			e.alignLocked()
			e.sinceAlign = 0
		}
	}
	return sid, nil
}

// IngestAll ingests a batch, skipping invalid and duplicate snippets, and
// returns how many were accepted.
func (e *Engine) IngestAll(snippets []*event.Snippet) int {
	n := 0
	for _, s := range snippets {
		if _, err := e.Ingest(s); err == nil {
			n++
		}
	}
	return n
}

// Align re-aligns the dirty stories and returns the fresh integrated
// result. Repair inside identifiers may have split/merged stories since
// the last call; stories that vanished are removed from the aligner.
func (e *Engine) Align() *align.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.alignLocked()
}

func (e *Engine) alignLocked() *align.Result {
	span := metAlignLat.Start()
	defer span.End()
	metAlignRuns.Inc()
	defer func() { metDirtyGauge.Set(int64(len(e.dirty))) }()
	// Reconcile: identifier repair can retire story IDs (merge/split) at
	// any time, so dirty bookkeeping is advisory; we resync the touched
	// sources' full story sets, which is still far cheaper than global
	// recomputation when few sources changed.
	touchedSources := make(map[event.SourceID]bool)
	for sid := range e.dirty {
		if src, ok := e.storyOwner[sid]; ok {
			touchedSources[src] = true
		}
	}
	for src := range touchedSources {
		id := e.identifiers[src]
		if id == nil {
			continue
		}
		live := make(map[event.StoryID]bool)
		for _, st := range id.Stories() {
			live[st.ID] = true
			e.aligner.Upsert(st)
			e.storyOwner[st.ID] = src
		}
		// Drop stories of this source that no longer exist.
		for sid, owner := range e.storyOwner {
			if owner == src && !live[sid] {
				e.aligner.Remove(sid)
				delete(e.storyOwner, sid)
			}
		}
	}
	e.dirty = make(map[event.StoryID]bool)
	e.result = e.aligner.Result()

	if e.opts.RefineOnAlign {
		movers := make(map[event.SourceID]align.Mover, len(e.identifiers))
		for src, id := range e.identifiers {
			movers[src] = id
		}
		if corr := align.Refine(e.result, movers, e.opts.Refine); len(corr) > 0 {
			metRefineMoves.Add(uint64(len(corr)))
			// Moves changed story contents; refresh and re-align once.
			for _, c := range corr {
				e.dirty[c.From] = true
				e.dirty[c.To] = true
			}
			for sid := range e.dirty {
				if src, ok := e.storyOwner[sid]; ok {
					if id := e.identifiers[src]; id != nil {
						if st := id.Story(sid); st != nil {
							e.aligner.Upsert(st)
						} else {
							e.aligner.Remove(sid)
							delete(e.storyOwner, sid)
						}
					}
				}
			}
			e.dirty = make(map[event.StoryID]bool)
			e.result = e.aligner.Result()
		}
	}
	return e.result
}

// Result returns the most recent alignment result, aligning first if none
// exists or ingests happened since.
func (e *Engine) Result() *align.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.result == nil || len(e.dirty) > 0 {
		return e.alignLocked()
	}
	return e.result
}

// Stories returns the current per-source stories of one source, as
// snapshots that stay consistent while ingestion continues.
func (e *Engine) Stories(src event.SourceID) []*event.Story {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := e.identifiers[src]
	if id == nil {
		return nil
	}
	live := id.Stories()
	out := make([]*event.Story, len(live))
	for i, st := range live {
		out[i] = st.Snapshot()
	}
	return out
}

// Identifier exposes a source's identifier (primarily for the statistics
// module and tests).
func (e *Engine) Identifier(src event.SourceID) *identify.Identifier {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.identifiers[src]
}

// Ingested returns the number of accepted snippets.
func (e *Engine) Ingested() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ingested
}

// DistinctEntities estimates the number of distinct entities ingested
// (HyperLogLog, ~1.6% standard error).
func (e *Engine) DistinctEntities() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.entHLL.Count()
}

// TimeRange returns the [earliest, latest] snippet timestamps ingested;
// zero times when nothing was ingested.
func (e *Engine) TimeRange() (start, end time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firstTS, e.lastTS
}
