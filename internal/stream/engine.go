// Package stream implements StoryPivot's dynamic integration of story
// identification and story alignment (paper §2.4): snippets arrive
// continuously — and not necessarily in timestamp order — from a changing
// set of data sources; the engine routes each snippet through its source's
// incremental identifier, tracks which stories changed, and re-aligns only
// the dirty stories, so users always see near-real-time integrated
// stories.
package stream

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/align"
	"repro/internal/event"
	"repro/internal/identify"
	"repro/internal/sketch"
)

// Options configures an Engine.
type Options struct {
	// Identify configures the per-source identifiers.
	Identify identify.Config
	// Align configures the shared aligner.
	Align align.Config
	// Refine configures refinement; applied when RefineOnAlign is true.
	Refine align.RefineConfig
	// RefineOnAlign runs a refinement pass after every (re-)alignment.
	RefineOnAlign bool
	// AutoAlignEvery re-aligns automatically after this many ingested
	// snippets (0 disables; callers then call Align explicitly).
	AutoAlignEvery int
	// DedupCapacity sizes the per-source duplicate-delivery filter
	// (0 disables deduplication).
	DedupCapacity int
}

// DefaultOptions mirrors the demo system's configuration.
func DefaultOptions() Options {
	return Options{
		Identify:       identify.DefaultConfig(),
		Align:          align.DefaultConfig(),
		Refine:         align.DefaultRefineConfig(),
		RefineOnAlign:  false,
		AutoAlignEvery: 0,
		DedupCapacity:  1 << 16,
	}
}

// ResultSink consumes every freshly computed alignment result. The
// query-serving index (internal/index, via its Writer interface)
// implements it; the engine publishes synchronously from every
// alignment pass — ingest-triggered, auto-align, explicit Align, and
// post-refinement re-alignment — so a sink always reflects the result
// the engine would hand to readers.
type ResultSink interface {
	Publish(res *align.Result)
}

// Retirer is the story lifecycle hook (implemented by retire.Manager):
// it decides when resident stories go cold, archives them durably before
// the engine detaches them, and hands back archived stories that new
// evidence reactivates. The engine calls Due/Cold/Archive/Commit/Abort
// under its own mutex during alignment passes and TakeForSnippet from
// the lock-free prefix of Ingest; implementations synchronise
// internally and must never call back into the engine.
type Retirer interface {
	// Due reports whether a retirement walk should run, given the
	// resident story count and the event-time watermark. Called on every
	// alignment publish (also serving as the watermark feed).
	Due(resident int, watermark time.Time) bool
	// Cold reports whether a story whose last evidence is at end is
	// retirable at the given watermark.
	Cold(id event.StoryID, end, watermark time.Time) bool
	// Archive durably persists a retirement group, returning a ticket.
	Archive(stories []*event.Story, watermark time.Time) (uint64, error)
	// Commit finalises a ticket with the members actually detached.
	Commit(ticket uint64, retired []event.StoryID)
	// Abort discards a ticket none of whose members could be detached.
	Abort(ticket uint64)
	// TakeForSnippet returns archived stories (whole retirement groups)
	// the snippet is evidence for, removing them from the archive index.
	TakeForSnippet(sn *event.Snippet) []*event.Story
	// ForgetSource drops a removed source's archived stories.
	ForgetSource(src event.SourceID)
	// ArchivedIDs lists a source's archived story IDs for checkpoints.
	ArchivedIDs(src event.SourceID) []event.StoryID
}

// Errors returned by the engine.
var (
	// ErrUnknownSource is returned by Ingest when the snippet's source was
	// never added (or was removed) and auto-registration is off.
	ErrUnknownSource = errors.New("stream: unknown source")
	// ErrDuplicate is returned for a snippet the per-source deduplication
	// filter has (very probably) seen before.
	ErrDuplicate = errors.New("stream: duplicate snippet delivery")
	// ErrSourceCollision is returned when a source's deterministic
	// ID-namespace tag (identify.SourceTag) collides with an already
	// registered source. The probability is ~k²/2^23 for k sources;
	// renaming the source resolves it. Refusing beats remapping, which
	// would depend on registration order and break the determinism the
	// cluster's differential proofs rely on.
	ErrSourceCollision = errors.New("stream: source ID-namespace collision")
)

// shard is one source's slice of the engine: the identifier and the
// duplicate-delivery filter, guarded by their own mutex so sources ingest
// in parallel. Identification is per-source by construction (paper §2.2),
// which makes the source the natural sharding key: two snippets of
// different sources share no identifier state at all.
type shard struct {
	mu    sync.Mutex
	id    *identify.Identifier
	dedup *sketch.Bloom
	// gone is set (under mu) when RemoveSource detaches the shard; an
	// Ingest that raced the removal re-resolves the registry instead of
	// processing into a dead identifier.
	gone bool
	// err, when set at registration, poisons the shard: Ingest refuses
	// every snippet with it (currently only ErrSourceCollision).
	err error
}

// Engine is the live StoryPivot pipeline. It is safe for concurrent use.
// Ingestion is sharded per source: each source's identifier and dedup
// filter sit behind a per-shard mutex, so a multi-source feed ingests on
// all cores; only the narrow shared section (aligner, dirty set, dataset
// statistics) is serialised behind the engine mutex. Lock order, for any
// path that holds more than one: mu → regMu → shard.mu.
type Engine struct {
	opts Options

	// regMu guards the shard registry and the allocator/tag tables. The
	// common Ingest path takes only the read lock; the write lock is held
	// for source add/remove.
	regMu  sync.RWMutex
	shards map[event.SourceID]*shard

	// allocs holds each source's deterministic ID allocator. Entries are
	// deliberately kept across RemoveSource: a re-registered source must
	// continue its sequence, never recycle story IDs — stale postings in
	// downstream consumers (the query index's (story, gen) liveness) may
	// outlive the removal, and a recycled ID could alias them.
	allocs map[event.SourceID]*identify.IDAlloc
	// tagOwner maps an ID-namespace tag to the source that claimed it,
	// for collision detection (see ErrSourceCollision). Like allocs it
	// survives RemoveSource: the removed source's IDs remain reserved.
	tagOwner map[uint32]event.SourceID

	// mu guards the shared section: aligner, dirty bookkeeping, the cached
	// result, and dataset statistics.
	mu      sync.Mutex
	aligner *align.Aligner
	dirty   map[event.StoryID]bool
	// storyOwner tracks which source produced a story so removals can
	// clean the aligner.
	storyOwner map[event.StoryID]event.SourceID

	sinceAlign int
	ingested   uint64
	result     *align.Result
	// sinks receive every freshly computed result, in attach order
	// (guarded by mu like the result itself). Slot 0 is reserved for
	// the primary sink set via SetResultSink (the query index; primary
	// tracks whether that slot is occupied); AddResultSink appends
	// after it, so secondary consumers — e.g. a result-cache
	// invalidator — always observe a state the index has already
	// incorporated.
	sinks   []ResultSink
	primary bool

	// retirer, when set, bounds resident memory: see Retirer. Written
	// once during pipeline wiring, before concurrent use.
	retirer Retirer

	// entHLL estimates the distinct-entity count of everything ingested
	// (the "# Entities" figure of the statistics module's dataset panel)
	// in fixed memory.
	entHLL *sketch.HyperLogLog
	// firstTS/lastTS track the ingested time range for the same panel.
	firstTS, lastTS time.Time
}

// NewEngine creates an engine with no sources.
func NewEngine(opts Options) *Engine {
	hll, err := sketch.NewHyperLogLog(12)
	if err != nil {
		panic(err) // precision 12 is statically valid
	}
	return &Engine{
		opts:       opts,
		shards:     make(map[event.SourceID]*shard),
		allocs:     make(map[event.SourceID]*identify.IDAlloc),
		tagOwner:   make(map[uint32]event.SourceID),
		aligner:    align.NewAligner(opts.Align),
		dirty:      make(map[event.StoryID]bool),
		storyOwner: make(map[event.StoryID]event.SourceID),
		entHLL:     hll,
	}
}

// AddSource registers a data source. Adding an existing source is a no-op.
// Snippets for unregistered sources are auto-registered by Ingest, so
// explicit AddSource is only needed to pre-create empty sources.
func (e *Engine) AddSource(src event.SourceID) {
	e.shard(src)
}

// lookupShard returns the source's shard or nil, taking only the registry
// read lock.
func (e *Engine) lookupShard(src event.SourceID) *shard {
	e.regMu.RLock()
	sh := e.shards[src]
	e.regMu.RUnlock()
	return sh
}

// shard returns the source's shard, creating it on first sight.
func (e *Engine) shard(src event.SourceID) *shard {
	if sh := e.lookupShard(src); sh != nil {
		return sh
	}
	e.regMu.Lock()
	defer e.regMu.Unlock()
	if sh := e.shards[src]; sh != nil {
		return sh
	}
	sh := &shard{}
	tag := identify.SourceTag(src)
	if owner, taken := e.tagOwner[tag]; taken && owner != src {
		// The source's deterministic ID namespace is already claimed:
		// poison the shard so Ingest reports the collision instead of
		// minting IDs that alias the other source's stories.
		sh.err = fmt.Errorf("%w: %q vs %q (tag %d)", ErrSourceCollision, src, owner, tag)
		sh.id = identify.New(src, e.opts.Identify, nil)
	} else {
		e.tagOwner[tag] = src
		alloc := e.allocs[src]
		if alloc == nil {
			alloc = identify.NewSourceAlloc(src)
			e.allocs[src] = alloc
		}
		sh.id = identify.New(src, e.opts.Identify, alloc)
	}
	if e.opts.DedupCapacity > 0 {
		sh.dedup = sketch.NewBloom(e.opts.DedupCapacity, 0.001)
	}
	e.shards[src] = sh
	metSourcesGauge.Set(int64(len(e.shards)))
	return sh
}

// SetResultSink attaches (or detaches, with nil) the primary alignment
// result sink, replacing any previous primary; sinks added with
// AddResultSink are unaffected. If a result already exists it is
// published immediately, so a sink attached after
// restore-from-checkpoint or replay never misses the state the engine
// already computed.
func (e *Engine) SetResultSink(s ResultSink) {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case s == nil && e.primary:
		e.sinks = e.sinks[1:]
		e.primary = false
	case s != nil && e.primary:
		e.sinks[0] = s
	case s != nil && !e.primary:
		e.sinks = append([]ResultSink{s}, e.sinks...)
		e.primary = true
	}
	if s != nil && e.result != nil {
		s.Publish(e.result)
	}
}

// AddResultSink appends a secondary result sink. Sinks are published
// to in attach order on every alignment pass, after the primary sink,
// so a secondary consumer (e.g. a cache invalidator) never observes a
// result the primary index has not yet incorporated. If a result
// already exists it is published to the new sink immediately.
func (e *Engine) AddResultSink(s ResultSink) {
	if s == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sinks = append(e.sinks, s)
	if e.result != nil {
		s.Publish(e.result)
	}
}

// SetRetirer attaches the story lifecycle hook. It must be called during
// wiring, before the engine sees concurrent traffic: the field is read
// without synchronisation on the ingest hot path.
func (e *Engine) SetRetirer(r Retirer) {
	e.retirer = r
}

// RemoveSource detaches a source: its stories leave the aligner and the
// integrated result (paper §2.4: "any story detection system should allow
// the addition or removal of data sources"). It reports whether the source
// existed.
func (e *Engine) RemoveSource(src event.SourceID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.regMu.Lock()
	sh := e.shards[src]
	if sh == nil {
		e.regMu.Unlock()
		return false
	}
	delete(e.shards, src)
	metSourcesGauge.Set(int64(len(e.shards)))
	e.regMu.Unlock()
	sh.mu.Lock()
	sh.gone = true
	sh.mu.Unlock()
	for sid, owner := range e.storyOwner {
		if owner == src {
			e.aligner.Remove(sid)
			delete(e.dirty, sid)
			delete(e.storyOwner, sid)
		}
	}
	e.result = nil
	metDirtyGauge.Set(int64(len(e.dirty)))
	if e.retirer != nil {
		e.retirer.ForgetSource(src)
	}
	return true
}

// Sources returns the registered sources, sorted.
func (e *Engine) Sources() []event.SourceID {
	e.regMu.RLock()
	out := make([]event.SourceID, 0, len(e.shards))
	for src := range e.shards {
		out = append(out, src)
	}
	e.regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ingest routes one snippet through its source's identifier and marks the
// touched story dirty for the next alignment. Unknown sources are
// registered on first sight. Returns the per-source story the snippet
// joined.
//
// Ingest for different sources runs in parallel: identification — the
// expensive part — happens under the source's shard lock only; the engine
// mutex is taken afterwards just for the dirty-set and statistics updates.
func (e *Engine) Ingest(s *event.Snippet) (event.StoryID, error) {
	if err := s.Validate(); err != nil {
		metInvalid.Inc()
		return 0, err
	}
	span := metIngestLat.Start()
	// Reactivation: if the snippet fingerprints to archived stories, the
	// whole retirement groups come back — adopted into their identifiers
	// *before* this snippet is processed, so it can attach to a
	// reactivated story exactly as it would have pre-retirement. No lock
	// is held across adoptions (shards are taken one at a time), so
	// cross-source groups cannot deadlock concurrent ingests.
	var reactivated []*event.Story
	if e.retirer != nil {
		s.EnsureInterned()
		if reactivated = e.retirer.TakeForSnippet(s); reactivated != nil {
			for _, st := range reactivated {
				e.adoptStory(st)
			}
		}
	}
	sh := e.shard(s.Source)
	sh.mu.Lock()
	for sh.gone {
		// Raced with RemoveSource after the registry lookup: the shard we
		// hold is detached, so re-resolve (auto-registering a fresh one).
		sh.mu.Unlock()
		sh = e.shard(s.Source)
		sh.mu.Lock()
	}
	if sh.err != nil {
		sh.mu.Unlock()
		metInvalid.Inc()
		return 0, sh.err
	}
	if sh.dedup != nil {
		key := strconv.FormatUint(uint64(s.ID), 10)
		if sh.dedup.Contains(key) {
			sh.mu.Unlock()
			metDuplicates.Inc()
			return 0, fmt.Errorf("%w: snippet %d", ErrDuplicate, s.ID)
		}
		sh.dedup.Add(key)
	}
	sid := sh.id.Process(s)
	sh.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	e.dirty[sid] = true
	e.storyOwner[sid] = s.Source
	for _, st := range reactivated {
		e.dirty[st.ID] = true
		e.storyOwner[st.ID] = st.Source
	}
	e.ingested++
	metIngested.Inc()
	metDirtyGauge.Set(int64(len(e.dirty)))
	for _, ent := range s.Entities {
		e.entHLL.Add(string(ent))
	}
	if e.firstTS.IsZero() || s.Timestamp.Before(e.firstTS) {
		e.firstTS = s.Timestamp
	}
	if s.Timestamp.After(e.lastTS) {
		e.lastTS = s.Timestamp
	}
	// The span stops here: auto-alignment below is measured by its own
	// histogram, and folding a ms-scale align pass into the µs-scale
	// ingest distribution would swamp its upper quantiles.
	span.End()
	if e.opts.AutoAlignEvery > 0 {
		if e.sinceAlign++; e.sinceAlign >= e.opts.AutoAlignEvery {
			e.alignLocked()
			e.sinceAlign = 0
		}
	}
	return sid, nil
}

// IngestAll ingests a batch, skipping invalid and duplicate snippets, and
// returns how many were accepted.
func (e *Engine) IngestAll(snippets []*event.Snippet) int {
	n := 0
	for _, s := range snippets {
		if _, err := e.Ingest(s); err == nil {
			n++
		}
	}
	return n
}

// snapshotStories returns consistent snapshots of one source's live
// stories, taken under the shard lock.
func (e *Engine) snapshotStories(src event.SourceID) []*event.Story {
	sh := e.lookupShard(src)
	if sh == nil {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.gone {
		return nil
	}
	live := sh.id.Stories()
	out := make([]*event.Story, len(live))
	for i, st := range live {
		out[i] = st.Snapshot()
	}
	return out
}

// snapshotStory returns a snapshot of one story, or nil if it no longer
// exists.
func (e *Engine) snapshotStory(src event.SourceID, sid event.StoryID) *event.Story {
	sh := e.lookupShard(src)
	if sh == nil {
		return nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.gone {
		return nil
	}
	st := sh.id.Story(sid)
	if st == nil {
		return nil
	}
	return st.Snapshot()
}

// adoptStory re-homes a reactivated story into its source's identifier.
// A story already resident (the retirement raced a concurrent detach
// verification and kept it) is left untouched — the live copy is newer
// than the archived one.
func (e *Engine) adoptStory(st *event.Story) {
	sh := e.shard(st.Source)
	sh.mu.Lock()
	if !sh.gone && sh.err == nil && sh.id.Story(st.ID) == nil {
		sh.id.Adopt(st)
	}
	sh.mu.Unlock()
}

// lockedMover applies refinement moves under the shard lock, so refine
// passes stay correct while other sources keep ingesting.
type lockedMover struct{ sh *shard }

func (m lockedMover) Move(snID event.SnippetID, to event.StoryID) bool {
	m.sh.mu.Lock()
	defer m.sh.mu.Unlock()
	if m.sh.gone {
		return false
	}
	return m.sh.id.Move(snID, to)
}

// Align re-aligns the dirty stories and returns the fresh integrated
// result. Repair inside identifiers may have split/merged stories since
// the last call; stories that vanished are removed from the aligner.
func (e *Engine) Align() *align.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.alignLocked()
}

func (e *Engine) alignLocked() *align.Result {
	span := metAlignLat.Start()
	defer span.End()
	metAlignRuns.Inc()
	defer func() { metDirtyGauge.Set(int64(len(e.dirty))) }()
	// Reconcile: identifier repair can retire story IDs (merge/split) at
	// any time, so dirty bookkeeping is advisory; we resync the touched
	// sources' full story sets, which is still far cheaper than global
	// recomputation when few sources changed. The aligner holds story
	// *snapshots*, never live stories: concurrent shards keep mutating
	// their stories while alignment runs, and the aligner must see a
	// frozen, internally consistent view.
	touchedSources := make(map[event.SourceID]bool)
	for sid := range e.dirty {
		if src, ok := e.storyOwner[sid]; ok {
			touchedSources[src] = true
		}
	}
	for src := range touchedSources {
		stories := e.snapshotStories(src)
		if stories == nil {
			// Source raced away (or was removed): drop its leftovers.
			for sid, owner := range e.storyOwner {
				if owner == src {
					e.aligner.Remove(sid)
					delete(e.storyOwner, sid)
				}
			}
			continue
		}
		live := make(map[event.StoryID]bool)
		for _, st := range stories {
			live[st.ID] = true
			e.aligner.Upsert(st)
			e.storyOwner[st.ID] = src
		}
		// Drop stories of this source that no longer exist.
		for sid, owner := range e.storyOwner {
			if owner == src && !live[sid] {
				e.aligner.Remove(sid)
				delete(e.storyOwner, sid)
			}
		}
	}
	e.dirty = make(map[event.StoryID]bool)
	e.result = e.aligner.Result()

	if e.opts.RefineOnAlign {
		e.regMu.RLock()
		movers := make(map[event.SourceID]align.Mover, len(e.shards))
		for src, sh := range e.shards {
			movers[src] = lockedMover{sh}
		}
		e.regMu.RUnlock()
		if corr := align.Refine(e.result, movers, e.opts.Refine); len(corr) > 0 {
			metRefineMoves.Add(uint64(len(corr)))
			// Moves changed story contents; refresh and re-align once.
			for _, c := range corr {
				e.dirty[c.From] = true
				e.dirty[c.To] = true
			}
			for sid := range e.dirty {
				if src, ok := e.storyOwner[sid]; ok {
					if st := e.snapshotStory(src, sid); st != nil {
						e.aligner.Upsert(st)
					} else {
						e.aligner.Remove(sid)
						delete(e.storyOwner, sid)
					}
				}
			}
			e.dirty = make(map[event.StoryID]bool)
			e.result = e.aligner.Result()
		}
	}
	// Retirement walks the settled (post-refinement) active set: cold
	// alignment components are archived and detached, then the result is
	// recomputed once so the publish below already excludes them — the
	// sinks' Gen-delta protocols (query index liveness, cache
	// invalidation) see the eviction as an ordinary delta.
	if e.retirer != nil && e.retirer.Due(len(e.storyOwner), e.lastTS) {
		if e.retireLocked() > 0 {
			e.result = e.aligner.Result()
		}
	}
	// Published after refinement so the sinks' delta protocols (keyed
	// on Story.Gen) see refine moves exactly once, as part of the
	// final result of the pass.
	for _, s := range e.sinks {
		s.Publish(e.result)
	}
	return e.result
}

// retireLocked runs one retirement walk under e.mu and returns how many
// stories were retired. Per retirable set the protocol is:
//
//  1. snapshot every member under its shard lock, re-verifying coldness
//     against the live story (any member that changed aborts the set);
//  2. archive the snapshots durably (fsynced) — on error retirement
//     stops for this pass, nothing was detached;
//  3. detach each member, verifying under the shard lock that its Gen
//     still equals the snapshot's — a story that raced new evidence
//     between 1 and 3 stays resident and is pruned from the group.
//
// The ordering makes the archive a superset of what was detached at
// every instant, so a crash anywhere loses at most a retirement.
func (e *Engine) retireLocked() int {
	watermark := e.lastTS
	cold := func(st *event.Story) bool {
		return e.retirer.Cold(st.ID, st.End, watermark)
	}
	// The same-source guard exists for repair-merge reachability (its
	// sweep pairs stories whose ω-padded extents overlap); with repair
	// disabled there is nothing to guard and a single long-lived warm
	// story would otherwise pin every cold story of its source forever.
	pad := e.opts.Identify.Window
	if e.opts.Identify.RepairEvery <= 0 {
		pad = -1
	}
	sets := e.aligner.RetirableSets(cold, pad)
	total := 0
	for _, set := range sets {
		snaps := make([]*event.Story, 0, len(set))
		ok := true
		for _, sid := range set {
			src, owned := e.storyOwner[sid]
			if !owned {
				ok = false
				break
			}
			st := e.snapshotStory(src, sid)
			if st == nil || !e.retirer.Cold(sid, st.End, watermark) {
				ok = false
				break
			}
			snaps = append(snaps, st)
		}
		if !ok || len(snaps) == 0 {
			continue
		}
		ticket, err := e.retirer.Archive(snaps, watermark)
		if err != nil {
			metRetireArchiveErrors.Inc()
			break
		}
		retired := make([]event.StoryID, 0, len(snaps))
		for _, snap := range snaps {
			src := e.storyOwner[snap.ID]
			sh := e.lookupShard(src)
			if sh == nil {
				continue
			}
			sh.mu.Lock()
			live := sh.id.Story(snap.ID)
			if sh.gone || live == nil || live.Gen() != snap.Gen() {
				sh.mu.Unlock()
				continue
			}
			sh.id.Detach(snap.ID)
			sh.mu.Unlock()
			e.aligner.Remove(snap.ID)
			delete(e.storyOwner, snap.ID)
			delete(e.dirty, snap.ID)
			retired = append(retired, snap.ID)
		}
		if len(retired) == 0 {
			e.retirer.Abort(ticket)
			continue
		}
		e.retirer.Commit(ticket, retired)
		total += len(retired)
	}
	return total
}

// Result returns the most recent alignment result, aligning first if none
// exists or ingests happened since.
func (e *Engine) Result() *align.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.result == nil || len(e.dirty) > 0 {
		return e.alignLocked()
	}
	return e.result
}

// Stories returns the current per-source stories of one source, as
// snapshots that stay consistent while ingestion continues.
func (e *Engine) Stories(src event.SourceID) []*event.Story {
	return e.snapshotStories(src)
}

// Identifier exposes a source's identifier (primarily for the statistics
// module and tests). Callers must not invoke it concurrently with
// ingestion for the same source.
func (e *Engine) Identifier(src event.SourceID) *identify.Identifier {
	sh := e.lookupShard(src)
	if sh == nil {
		return nil
	}
	return sh.id
}

// Ingested returns the number of accepted snippets.
func (e *Engine) Ingested() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ingested
}

// DistinctEntities estimates the number of distinct entities ingested
// (HyperLogLog, ~1.6% standard error).
func (e *Engine) DistinctEntities() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.entHLL.Count()
}

// TimeRange returns the [earliest, latest] snippet timestamps ingested;
// zero times when nothing was ingested.
func (e *Engine) TimeRange() (start, end time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.firstTS, e.lastTS
}
