package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/event"
	"repro/internal/identify"
	"repro/internal/sketch"
)

// Checkpoint is a serialisable snapshot of the engine's identification
// state: for every source, the snippet→story assignment. Together with
// the snippets themselves (which the event store persists), it lets a
// restart rebuild the exact story structure in O(n) instead of
// re-running similarity search over the whole history.
//
// Alignment state is deliberately NOT checkpointed: it is derived from
// the per-source stories and rebuilding it is a single alignment pass.
type Checkpoint struct {
	Version int                                 `json:"version"`
	Sources map[event.SourceID]SourceCheckpoint `json:"sources"`
	// Tier carries the tiered store's chunk manifest (version 3). The
	// stream layer treats it as opaque: the pipeline fills it in when
	// tiered storage is enabled and hands it back to the store at
	// restore, which reconciles it against the on-disk chunks the same
	// way retire's archive reconcile works.
	Tier json.RawMessage `json:"tier,omitempty"`
}

// SourceCheckpoint is one source's assignment table.
type SourceCheckpoint struct {
	// Assign maps snippet ID → story ID.
	Assign map[event.SnippetID]event.StoryID `json:"assign"`
	// Archived lists the source's stories that were retired to the cold
	// archive at checkpoint time (version 2). Their snippets still appear
	// in Assign — the identifier keeps assignment entries past
	// detachment — but the stories themselves must be recovered from the
	// archive, not rebuilt from snippets.
	Archived []event.StoryID `json:"archived,omitempty"`
}

const checkpointVersion = 3

// ErrCheckpointStale reports a checkpoint that does not cover the
// snippets it is being restored against.
var ErrCheckpointStale = errors.New("stream: checkpoint stale")

// Checkpoint captures the current identification state.
func (e *Engine) Checkpoint() *Checkpoint {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.regMu.RLock()
	shards := make(map[event.SourceID]*shard, len(e.shards))
	for src, sh := range e.shards {
		shards[src] = sh
	}
	e.regMu.RUnlock()
	cp := &Checkpoint{Version: checkpointVersion, Sources: make(map[event.SourceID]SourceCheckpoint, len(shards))}
	for src, sh := range shards {
		sh.mu.Lock()
		sc := SourceCheckpoint{Assign: sh.id.Assignments()}
		sh.mu.Unlock()
		if e.retirer != nil {
			// Retirement (detach + archive-index insert) runs under e.mu,
			// held here, so Archived can't miss a concurrent retirement.
			// Reactivation runs outside e.mu; a story taken concurrently
			// is absent from both sets and restore rebuilds it from its
			// snippets — correct, just slower for that one story.
			sc.Archived = e.retirer.ArchivedIDs(src)
		}
		cp.Sources[src] = sc
	}
	return cp
}

// Write serialises the checkpoint as JSON.
func (c *Checkpoint) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(c)
}

// ReadCheckpoint parses a checkpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("stream: reading checkpoint: %w", err)
	}
	if c.Version < 1 || c.Version > checkpointVersion {
		return nil, fmt.Errorf("stream: unsupported checkpoint version %d", c.Version)
	}
	return &c, nil
}

// RestoreEngine rebuilds an engine from persisted snippets plus a
// checkpoint. The snippets are partitioned by source; every snippet must
// be covered by the checkpoint or ErrCheckpointStale is returned (the
// caller then falls back to replaying through Ingest). The restored
// engine's dedup filters, entity statistics, and time range are rebuilt
// from the snippets.
func RestoreEngine(opts Options, snippets []*event.Snippet, cp *Checkpoint) (*Engine, error) {
	return RestoreEngineArchived(opts, snippets, cp, nil)
}

// RestoreEngineArchived is RestoreEngine for checkpoints written under
// story retirement. verify reports whether an archived story ID is still
// present in the cold archive; every ID in the checkpoint's Archived
// lists must pass it, otherwise the checkpoint and archive have diverged
// and ErrCheckpointStale sends the caller to replay. A nil verify with a
// non-empty Archived list is likewise stale: the caller has no archive
// to recover those stories from.
func RestoreEngineArchived(opts Options, snippets []*event.Snippet, cp *Checkpoint,
	verify func(event.StoryID) bool) (*Engine, error) {
	if cp == nil || cp.Sources == nil {
		return nil, ErrCheckpointStale
	}
	archived := make(map[event.StoryID]bool)
	for src, sc := range cp.Sources {
		for _, sid := range sc.Archived {
			if verify == nil {
				return nil, fmt.Errorf("%w: source %s has archived stories but no archive", ErrCheckpointStale, src)
			}
			if !verify(sid) {
				return nil, fmt.Errorf("%w: archived story %d missing from archive", ErrCheckpointStale, sid)
			}
			archived[sid] = true
		}
	}
	e := NewEngine(opts)
	bySource := make(map[event.SourceID][]*event.Snippet)
	var order []event.SourceID
	for _, sn := range snippets {
		if _, ok := bySource[sn.Source]; !ok {
			order = append(order, sn.Source)
		}
		bySource[sn.Source] = append(bySource[sn.Source], sn)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, src := range order {
		sc, ok := cp.Sources[src]
		if !ok {
			return nil, fmt.Errorf("%w: source %s not covered", ErrCheckpointStale, src)
		}
		tag := identify.SourceTag(src)
		if owner, taken := e.tagOwner[tag]; taken && owner != src {
			return nil, fmt.Errorf("%w: %v (%q vs %q)", ErrCheckpointStale, ErrSourceCollision, src, owner)
		}
		e.tagOwner[tag] = src
		alloc := identify.NewSourceAlloc(src)
		e.allocs[src] = alloc
		id, err := identify.RestoreWithArchived(src, opts.Identify, alloc, bySource[src], sc.Assign, archived)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCheckpointStale, err)
		}
		sh := &shard{id: id}
		if opts.DedupCapacity > 0 {
			sh.dedup = sketch.NewBloom(opts.DedupCapacity, 0.001)
			for _, sn := range bySource[src] {
				sh.dedup.Add(strconv.FormatUint(uint64(sn.ID), 10))
			}
		}
		e.shards[src] = sh
		for _, st := range id.Stories() {
			e.dirty[st.ID] = true
			e.storyOwner[st.ID] = src
		}
		for _, sn := range bySource[src] {
			e.ingested++
			for _, ent := range sn.Entities {
				e.entHLL.Add(string(ent))
			}
			if e.firstTS.IsZero() || sn.Timestamp.Before(e.firstTS) {
				e.firstTS = sn.Timestamp
			}
			if sn.Timestamp.After(e.lastTS) {
				e.lastTS = sn.Timestamp
			}
		}
	}
	metRestoreOK.Inc()
	metSourcesGauge.Set(int64(len(e.shards)))
	metDirtyGauge.Set(int64(len(e.dirty)))
	return e, nil
}
