package stream

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/event"
)

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

func snip(id event.SnippetID, src event.SourceID, d int, ents []event.Entity, toks ...string) *event.Snippet {
	s := &event.Snippet{ID: id, Source: src, Timestamp: day(d), Entities: ents}
	for _, tok := range toks {
		s.Terms = append(s.Terms, event.Term{Token: tok, Weight: 1})
	}
	s.Normalize()
	return s
}

func TestEngineBasicFlow(t *testing.T) {
	e := NewEngine(DefaultOptions())
	crash := []event.Entity{"UKR", "MAL"}

	sid1, err := e.Ingest(snip(1, "nyt", 17, crash, "crash", "plane"))
	if err != nil {
		t.Fatal(err)
	}
	sid2, err := e.Ingest(snip(2, "nyt", 18, crash, "crash", "investig"))
	if err != nil {
		t.Fatal(err)
	}
	if sid1 != sid2 {
		t.Fatal("related snippets in different stories")
	}
	if _, err := e.Ingest(snip(11, "wsj", 17, crash, "crash", "plane", "explod")); err != nil {
		t.Fatal(err)
	}
	if got := e.Sources(); len(got) != 2 || got[0] != "nyt" || got[1] != "wsj" {
		t.Fatalf("Sources = %v", got)
	}
	res := e.Align()
	if len(res.MultiSource()) != 1 {
		t.Fatalf("MultiSource = %d", len(res.MultiSource()))
	}
	if e.Ingested() != 3 {
		t.Fatalf("Ingested = %d", e.Ingested())
	}
	if got := e.Stories("nyt"); len(got) != 1 {
		t.Fatalf("nyt stories = %d", len(got))
	}
	if e.Identifier("nyt") == nil || e.Identifier("nope") != nil {
		t.Fatal("Identifier accessor wrong")
	}
}

func TestEngineRejectsInvalidAndDuplicates(t *testing.T) {
	e := NewEngine(DefaultOptions())
	if _, err := e.Ingest(&event.Snippet{ID: 1}); err == nil {
		t.Fatal("invalid snippet accepted")
	}
	s := snip(1, "nyt", 17, []event.Entity{"UKR"}, "crash")
	if _, err := e.Ingest(s); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest(s); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate delivery error = %v", err)
	}
	// With dedup disabled duplicates pass (caller's responsibility).
	opts := DefaultOptions()
	opts.DedupCapacity = 0
	e2 := NewEngine(opts)
	e2.Ingest(s)
	if _, err := e2.Ingest(s); err != nil {
		t.Fatalf("dedup-off duplicate rejected: %v", err)
	}
}

func TestEngineRemoveSource(t *testing.T) {
	e := NewEngine(DefaultOptions())
	crash := []event.Entity{"UKR", "MAL"}
	e.Ingest(snip(1, "nyt", 17, crash, "crash", "plane"))
	e.Ingest(snip(11, "wsj", 17, crash, "crash", "plane"))
	if len(e.Align().MultiSource()) != 1 {
		t.Fatal("setup alignment failed")
	}
	if !e.RemoveSource("wsj") {
		t.Fatal("RemoveSource = false")
	}
	if e.RemoveSource("wsj") {
		t.Fatal("second RemoveSource = true")
	}
	res := e.Result()
	if len(res.MultiSource()) != 0 {
		t.Fatal("removed source still aligned")
	}
	if len(res.Integrated) != 1 {
		t.Fatalf("Integrated = %d after removal", len(res.Integrated))
	}
}

func TestEngineAddSourceIdempotent(t *testing.T) {
	e := NewEngine(DefaultOptions())
	e.AddSource("nyt")
	e.AddSource("nyt")
	if got := e.Sources(); len(got) != 1 {
		t.Fatalf("Sources = %v", got)
	}
}

func TestEngineAutoAlign(t *testing.T) {
	opts := DefaultOptions()
	opts.AutoAlignEvery = 2
	e := NewEngine(opts)
	crash := []event.Entity{"UKR", "MAL"}
	e.Ingest(snip(1, "nyt", 17, crash, "crash", "plane"))
	e.Ingest(snip(11, "wsj", 17, crash, "crash", "plane"))
	// Auto-align fired; Result should not need recomputation (no dirty).
	res := e.Result()
	if len(res.MultiSource()) != 1 {
		t.Fatal("auto-align did not produce integrated story")
	}
}

func TestEngineOutOfOrderMatchesInOrder(t *testing.T) {
	gen := datagen.DefaultConfig()
	gen.Sources = 3
	gen.Stories = 8
	gen.EventsPerStory = 8
	corpus := datagen.Generate(gen)

	truth := eval.Assignment{}
	for id, l := range corpus.Truth {
		truth[id] = l
	}
	run := func(snips []*event.Snippet) float64 {
		e := NewEngine(DefaultOptions())
		e.IngestAll(snips)
		res := e.Align()
		return eval.Pairwise(eval.FromIntegrated(res.Integrated), truth).F1
	}
	inOrder := run(corpus.Snippets)
	outOfOrder := run(corpus.Shuffled(0.3, 25, 7))
	if inOrder < 0.55 {
		t.Fatalf("in-order F1 = %.3f too low", inOrder)
	}
	if outOfOrder < inOrder-0.2 {
		t.Fatalf("out-of-order F1 %.3f collapsed vs in-order %.3f", outOfOrder, inOrder)
	}
}

func TestEngineIncrementalSourceAddition(t *testing.T) {
	gen := datagen.DefaultConfig()
	gen.Sources = 4
	gen.Stories = 8
	gen.EventsPerStory = 6
	corpus := datagen.Generate(gen)
	parts := corpus.BySource()

	// Stream sources one at a time, aligning between additions — the
	// paper's "new source appears" flow.
	e := NewEngine(DefaultOptions())
	var lastCount int
	for _, src := range corpus.Sources {
		e.IngestAll(parts[src])
		res := e.Align()
		if len(res.Integrated) == 0 {
			t.Fatalf("no integrated stories after adding %s", src)
		}
		lastCount = len(res.Integrated)
	}

	// Compare against a single batch run over everything.
	e2 := NewEngine(DefaultOptions())
	e2.IngestAll(corpus.Snippets)
	batch := e2.Align()

	f := eval.Pairwise(
		eval.FromIntegrated(e.Result().Integrated),
		eval.FromIntegrated(batch.Integrated),
	)
	if f.F1 < 0.8 {
		t.Fatalf("incremental-by-source vs batch agreement F1 = %.3f (counts %d vs %d)",
			f.F1, lastCount, len(batch.Integrated))
	}
}

func TestEngineRefineOnAlign(t *testing.T) {
	opts := DefaultOptions()
	opts.RefineOnAlign = true
	e := NewEngine(opts)
	crash := []event.Entity{"UKR", "MAL"}
	goog := []event.Entity{"GOOG", "YELP"}
	e.Ingest(snip(1, "nyt", 17, crash, "crash", "plane", "shot"))
	e.Ingest(snip(2, "nyt", 18, crash, "crash", "investig", "shot"))
	e.Ingest(snip(3, "nyt", 18, goog, "search", "antitrust", "content"))
	e.Ingest(snip(11, "wsj", 17, crash, "crash", "plane", "shot"))
	e.Ingest(snip(12, "wsj", 18, crash, "crash", "investig", "shot"))
	e.Ingest(snip(13, "wsj", 18, goog, "search", "antitrust", "content"))

	// Inject a mistake directly through the identifier, then re-align
	// with refinement enabled.
	nyt := e.Identifier("nyt")
	if !nyt.Move(2, nyt.StoryOf(3)) {
		t.Fatal("setup move failed")
	}
	e.Align()
	if nyt.StoryOf(2) != nyt.StoryOf(1) {
		t.Fatal("refinement during Align did not correct the mistake")
	}
	res := e.Result()
	// The result must reflect the corrected stories: snippet 2 in the
	// crash integrated story.
	var crashIS *event.IntegratedStory
	for _, is := range res.Integrated {
		for _, sn := range is.Snippets() {
			if sn.ID == 1 {
				crashIS = is
			}
		}
	}
	if crashIS == nil {
		t.Fatal("crash story missing")
	}
	found := false
	for _, sn := range crashIS.Snippets() {
		if sn.ID == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("corrected snippet not in the integrated crash story")
	}
}

func TestEngineConcurrentIngest(t *testing.T) {
	gen := datagen.DefaultConfig()
	gen.Sources = 4
	gen.Stories = 6
	gen.EventsPerStory = 6
	corpus := datagen.Generate(gen)
	parts := corpus.BySource()

	e := NewEngine(DefaultOptions())
	var wg sync.WaitGroup
	for _, src := range corpus.Sources {
		wg.Add(1)
		go func(snips []*event.Snippet) {
			defer wg.Done()
			for _, s := range snips {
				e.Ingest(s)
			}
		}(parts[src])
	}
	// Concurrent aligns while ingesting.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			e.Align()
		}
	}()
	wg.Wait()
	if int(e.Ingested()) != len(corpus.Snippets) {
		t.Fatalf("Ingested = %d, want %d", e.Ingested(), len(corpus.Snippets))
	}
	res := e.Align()
	covered := 0
	for _, is := range res.Integrated {
		covered += is.Len()
	}
	if covered != len(corpus.Snippets) {
		t.Fatalf("integrated stories cover %d of %d snippets", covered, len(corpus.Snippets))
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	gen := datagen.DefaultConfig()
	gen.Sources = 3
	gen.Stories = 6
	gen.EventsPerStory = 6
	corpus := datagen.Generate(gen)

	e := NewEngine(DefaultOptions())
	e.IngestAll(corpus.Snippets)
	before := eval.FromIntegrated(e.Align().Integrated)

	var buf bytes.Buffer
	if err := e.Checkpoint().Write(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := RestoreEngine(DefaultOptions(), corpus.Snippets, cp)
	if err != nil {
		t.Fatal(err)
	}
	after := eval.FromIntegrated(e2.Align().Integrated)
	if f := eval.Pairwise(after, before).F1; f != 1 {
		t.Fatalf("restored partition differs: agreement F1 = %.3f", f)
	}
	// Statistics rebuilt.
	if e2.Ingested() != e.Ingested() {
		t.Fatalf("ingested %d, want %d", e2.Ingested(), e.Ingested())
	}
	if e2.DistinctEntities() == 0 {
		t.Fatal("entity HLL not rebuilt")
	}
	s1, e1 := e.TimeRange()
	s2, e2t := e2.TimeRange()
	if !s1.Equal(s2) || !e1.Equal(e2t) {
		t.Fatal("time range not rebuilt")
	}
	// Dedup filters rebuilt: re-delivery rejected.
	if _, err := e2.Ingest(corpus.Snippets[0]); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("restored dedup missed duplicate: %v", err)
	}
	// New ingestion gets fresh story IDs (allocator bumped).
	fresh := corpus.Snippets[0].Clone()
	fresh.ID = event.SnippetID(1 << 50)
	fresh.Timestamp = fresh.Timestamp.Add(365 * 24 * time.Hour)
	sid, err := e2.Ingest(fresh)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range e2.Stories(fresh.Source) {
		if st.ID == sid {
			continue
		}
		if st.ID > sid {
			t.Fatalf("allocator not bumped: new story %d below existing %d", sid, st.ID)
		}
	}
}

func TestRestoreEngineStaleCheckpoint(t *testing.T) {
	gen := datagen.DefaultConfig()
	gen.Sources = 2
	gen.Stories = 3
	gen.EventsPerStory = 4
	corpus := datagen.Generate(gen)

	e := NewEngine(DefaultOptions())
	e.IngestAll(corpus.Snippets[:len(corpus.Snippets)/2])
	cp := e.Checkpoint()

	// Restoring against MORE snippets than the checkpoint covers fails.
	if _, err := RestoreEngine(DefaultOptions(), corpus.Snippets, cp); !errors.Is(err, ErrCheckpointStale) {
		t.Fatalf("stale checkpoint accepted: %v", err)
	}
	// Nil checkpoint fails.
	if _, err := RestoreEngine(DefaultOptions(), corpus.Snippets, nil); !errors.Is(err, ErrCheckpointStale) {
		t.Fatalf("nil checkpoint accepted: %v", err)
	}
	// Wrong version rejected at read time.
	if _, err := ReadCheckpoint(strings.NewReader(`{"version":99,"sources":{}}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestEngineSoakBoundedState streams a larger corpus with aggressive
// repair and verifies internal bookkeeping stays bounded: the aligner and
// identifiers must not accumulate unbounded stale story references, and
// the final result must still cover every snippet exactly once.
func TestEngineSoakBoundedState(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	gen := datagen.DefaultConfig()
	gen.Sources = 6
	gen.Stories = 40
	gen.EventsPerStory = 30
	corpus := datagen.Generate(gen)

	opts := DefaultOptions()
	opts.Identify.RepairEvery = 16 // aggressive churn
	opts.AutoAlignEvery = 997
	e := NewEngine(opts)
	if got := e.IngestAll(corpus.Snippets); got != len(corpus.Snippets) {
		t.Fatalf("accepted %d of %d", got, len(corpus.Snippets))
	}
	res := e.Align()

	covered := map[event.SnippetID]bool{}
	for _, is := range res.Integrated {
		for _, sn := range is.Snippets() {
			if covered[sn.ID] {
				t.Fatalf("snippet %d in two integrated stories", sn.ID)
			}
			covered[sn.ID] = true
		}
	}
	if len(covered) != len(corpus.Snippets) {
		t.Fatalf("result covers %d of %d", len(covered), len(corpus.Snippets))
	}
	// Repair churn actually happened (the soak is meaningless otherwise).
	splits, merges := 0, 0
	for _, src := range e.Sources() {
		st := e.Identifier(src).Stats()
		splits += st.Splits
		merges += st.Merges
	}
	if splits+merges == 0 {
		t.Fatal("no repair churn during soak")
	}
}
