package stream

import "repro/internal/obs"

// Instrumentation points of the live pipeline. Counters and histograms
// are process-global (registered in obs.Default); the gauges reflect
// the most recently active engine, which in a serving process is the
// only one.
var (
	metIngested = obs.GetCounter("storypivot_stream_ingested_total",
		"snippets accepted by the stream engine")
	metDuplicates = obs.GetCounter("storypivot_stream_duplicates_total",
		"snippets rejected by the per-source duplicate-delivery filter")
	metInvalid = obs.GetCounter("storypivot_stream_invalid_total",
		"snippets rejected by validation")
	metAlignRuns = obs.GetCounter("storypivot_stream_align_runs_total",
		"dirty-story re-alignment passes executed")
	metRefineMoves = obs.GetCounter("storypivot_stream_refine_moves_total",
		"snippet moves applied by post-alignment refinement")
	metSourcesGauge = obs.GetGauge("storypivot_stream_sources",
		"registered data sources")
	metDirtyGauge = obs.GetGauge("storypivot_stream_dirty_stories",
		"stories awaiting re-alignment")
	metIngestLat = obs.GetHistogram("storypivot_stream_ingest_seconds",
		"per-snippet ingest latency through identification")
	metAlignLat = obs.GetHistogram("storypivot_stream_align_seconds",
		"dirty-story re-alignment pass latency")
	metRestoreOK = obs.GetCounter("storypivot_stream_checkpoint_restores_total",
		"engines rebuilt from a checkpoint fast path")
	metRestoreFail = obs.GetCounter("storypivot_stream_checkpoint_restore_failures_total",
		"checkpoint restores that failed and fell back to replay")
	metRetireArchiveErrors = obs.GetCounter("storypivot_stream_retire_archive_errors_total",
		"retirement passes aborted by an archive write failure")
)
