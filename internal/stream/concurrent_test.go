package stream

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/event"
)

// TestEngineConcurrentIngestCounts hammers one engine from many
// goroutines and checks that no snippet is lost or double-counted at
// any layer: the engine's own Ingested() counter, the obs ingest
// counter, and the per-source story memberships must all agree exactly
// with the number of snippets sent.
func TestEngineConcurrentIngestCounts(t *testing.T) {
	const (
		workers   = 8
		perWorker = 250
		total     = workers * perWorker
	)
	e := NewEngine(DefaultOptions())
	ingestedBefore := metIngested.Value()
	dupesBefore := metDuplicates.Value()

	// Each worker is its own source with disjoint snippet IDs, so every
	// ingest is unique and must be accepted.
	var wg sync.WaitGroup
	errs := make(chan error, total)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := event.SourceID(fmt.Sprintf("src%d", w))
			for i := 0; i < perWorker; i++ {
				id := event.SnippetID(w*perWorker + i + 1)
				ents := []event.Entity{event.Entity(fmt.Sprintf("ENT%d", w))}
				if _, err := e.Ingest(snip(id, src, 1+i%28, ents, "crash", "plane")); err != nil {
					errs <- fmt.Errorf("worker %d snippet %d: %w", w, id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := e.Ingested(); got != total {
		t.Fatalf("Ingested() = %d, want %d", got, total)
	}
	if got := metIngested.Value() - ingestedBefore; got != total {
		t.Fatalf("obs ingest counter advanced by %d, want %d", got, total)
	}
	if got := metDuplicates.Value() - dupesBefore; got != 0 {
		t.Fatalf("obs duplicate counter advanced by %d, want 0", got)
	}

	// Every accepted snippet must be a member of exactly one per-source
	// story; summing story sizes re-derives the ingest count.
	seen := make(map[event.SnippetID]bool, total)
	var storyTotal int
	for _, src := range e.Sources() {
		for _, st := range e.Stories(src) {
			storyTotal += len(st.Snippets)
			for _, sn := range st.Snippets {
				if seen[sn.ID] {
					t.Fatalf("snippet %d appears in more than one story", sn.ID)
				}
				seen[sn.ID] = true
			}
		}
	}
	if storyTotal != total {
		t.Fatalf("story membership total = %d, want %d (ingest counter and story state diverged)", storyTotal, total)
	}

	// Re-ingesting an already-seen snippet must be rejected as a
	// duplicate and counted as such, not silently re-admitted.
	if _, err := e.Ingest(snip(1, "src0", 1, []event.Entity{"ENT0"}, "crash")); err == nil {
		t.Fatal("duplicate ingest accepted")
	}
	if got := metDuplicates.Value() - dupesBefore; got != 1 {
		t.Fatalf("duplicate counter advanced by %d, want 1", got)
	}
	if got := e.Ingested(); got != total {
		t.Fatalf("Ingested() moved to %d after duplicate, want %d", got, total)
	}
}

// TestEngineConcurrentIngestWithSourceChurn races ingestion against
// source removal, re-registration, checkpointing, and result reads —
// the paths where the sharded engine's registry lock, per-shard gone
// flags, and the aligner's snapshot discipline all interact. Run under
// -race this is the main correctness check for the per-source sharding;
// without churn a stale shard could be processed into after removal, or
// the aligner could observe a story mid-mutation.
func TestEngineConcurrentIngestWithSourceChurn(t *testing.T) {
	const (
		workers   = 4
		perWorker = 200
	)
	opts := DefaultOptions()
	opts.AutoAlignEvery = 32
	e := NewEngine(opts)

	var ingesters, aux sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		ingesters.Add(1)
		go func(w int) {
			defer ingesters.Done()
			src := event.SourceID(fmt.Sprintf("churn%d", w))
			for i := 0; i < perWorker; i++ {
				id := event.SnippetID(w*perWorker + i + 1)
				ents := []event.Entity{event.Entity(fmt.Sprintf("ENT%d", w))}
				// ErrDuplicate is legal here: removal and re-creation of a
				// source resets its dedup filter, but a snippet that raced
				// into the old shard may also be re-offered by the test.
				if _, err := e.Ingest(snip(id, src, 1+i%28, ents, "crash", "plane")); err != nil && !errors.Is(err, ErrDuplicate) {
					t.Errorf("worker %d snippet %d: %v", w, id, err)
					return
				}
			}
		}(w)
	}
	// Churn goroutine: remove and implicitly re-add (via Ingest's
	// auto-registration) the workers' sources while they ingest.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.RemoveSource(event.SourceID(fmt.Sprintf("churn%d", i%workers)))
		}
	}()
	// Reader goroutine: results and checkpoints must stay internally
	// consistent while everything above is in flight.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if res := e.Result(); res != nil {
				for _, is := range res.Integrated {
					_ = is.Len()
				}
			}
			cp := e.Checkpoint()
			for _, sc := range cp.Sources {
				_ = len(sc.Assign)
			}
			for _, src := range e.Sources() {
				for _, st := range e.Stories(src) {
					if len(st.Snippets) != st.Len() {
						t.Error("story snapshot internally inconsistent")
						return
					}
				}
			}
		}
	}()
	// Ingest workers finish on their own; then stop the churn/reader
	// loops and wait for them to drain.
	ingesters.Wait()
	close(stop)
	aux.Wait()

	// Post-churn sanity: the surviving sources' stories form a partition
	// (no snippet in two stories), even though totals depend on timing.
	seen := make(map[event.SnippetID]bool)
	for _, src := range e.Sources() {
		for _, st := range e.Stories(src) {
			for _, sn := range st.Snippets {
				if seen[sn.ID] {
					t.Fatalf("snippet %d appears in more than one story after churn", sn.ID)
				}
				seen[sn.ID] = true
			}
		}
	}
}

// TestEngineConcurrentIngestWithAutoAlign repeats the concurrent
// ingest while auto-alignment fires every few snippets, so alignment
// runs interleave with ingestion on other goroutines. Run under -race
// this exercises the engine's lock discipline end to end.
func TestEngineConcurrentIngestWithAutoAlign(t *testing.T) {
	const (
		workers   = 4
		perWorker = 150
		total     = workers * perWorker
	)
	opts := DefaultOptions()
	opts.AutoAlignEvery = 64
	e := NewEngine(opts)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := event.SourceID(fmt.Sprintf("s%d", w))
			for i := 0; i < perWorker; i++ {
				id := event.SnippetID(w*perWorker + i + 1)
				// Fresh entity slice per snippet: Normalize sorts in
				// place, and an ingested snippet belongs to the engine —
				// sharing one backing array across snippets would have
				// the test mutating engine-owned state.
				ents := []event.Entity{"UKR", "MAL"}
				if _, err := e.Ingest(snip(id, src, 1+i%28, ents, "crash")); err != nil {
					t.Errorf("ingest %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := e.Ingested(); got != total {
		t.Fatalf("Ingested() = %d, want %d", got, total)
	}
	res := e.Result()
	if res == nil || len(res.Integrated) == 0 {
		t.Fatal("no integrated stories after concurrent ingest with auto-align")
	}
}
