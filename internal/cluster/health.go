package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// MemberState is a worker's position in the router's health state
// machine — the cluster-level analogue of the per-source circuit
// breaker in internal/feed/breaker.go:
//
//	healthy ──(failure)──▶ suspect ──(threshold consecutive)──▶ quarantined
//	quarantined ──(cooldown elapses, half-open probe succeeds)──▶ healthy
//	suspect ──(any success)──▶ healthy
//
// Failures come from two channels: the background prober, and passive
// signals from live scatter/ingest traffic (a failed shard request is
// a free probe). Readmission is probe-only: a quarantined member must
// answer a deliberate half-open /healthz probe before it re-enters the
// scatter set, so a flapping worker cannot readmit itself off a single
// lucky response.
type MemberState int

const (
	MemberHealthy MemberState = iota
	MemberSuspect
	MemberQuarantined
)

func (s MemberState) String() string {
	switch s {
	case MemberSuspect:
		return "suspect"
	case MemberQuarantined:
		return "quarantined"
	default:
		return "ok"
	}
}

// MarshalJSON renders the state as its string form.
func (s MemberState) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// HealthConfig tunes the monitor. The zero value uses the defaults.
type HealthConfig struct {
	// ProbeInterval is the background probe period.
	ProbeInterval time.Duration // default 2s
	// ProbeTimeout bounds each health probe request.
	ProbeTimeout time.Duration // default 1s
	// FailThreshold is the number of consecutive failures (probe or
	// passive) that quarantines a member.
	FailThreshold int // default 3
	// Cooldown is how long a quarantined member waits before the prober
	// grants it a half-open readmission probe.
	Cooldown time.Duration // default 10s
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	return c
}

var (
	metQuarantines = obs.GetCounter("storypivot_cluster_quarantines_total",
		"member transitions into quarantine")
	metReadmissions = obs.GetCounter("storypivot_cluster_readmissions_total",
		"quarantined members readmitted by a half-open probe")
	metProbes = obs.GetCounter("storypivot_cluster_probes_total",
		"background health probes issued")
	metMembersQuarantined = obs.GetGauge("storypivot_cluster_members_quarantined",
		"members currently quarantined")
	metMembersSuspect = obs.GetGauge("storypivot_cluster_members_suspect",
		"members currently suspect (failing, below the quarantine threshold)")
)

// memberHealth is the monitor's per-member record.
type memberHealth struct {
	url           string
	state         MemberState
	fails         int // consecutive failures since last success
	quarantinedAt time.Time
	lastErr       string
	lastProbe     time.Time

	// Per-member series, named with an inline label so the flat obs
	// registry exports them as one Prometheus family.
	errCounter *obs.Counter
	stateGauge *obs.Gauge
}

// MemberHealthView is the externally visible health snapshot of one
// member, served by the router's cached /healthz.
type MemberHealthView struct {
	Name                string      `json:"name"`
	State               MemberState `json:"state"`
	ConsecutiveFailures int         `json:"consecutive_failures,omitempty"`
	LastError           string      `json:"last_error,omitempty"`
	LastProbe           time.Time   `json:"last_probe,omitempty"`
}

// Monitor tracks member health for a router. All methods are safe for
// concurrent use; the probe loop runs under Router.Start.
type Monitor struct {
	cfg    HealthConfig
	client *Client
	// onChange is invoked (outside the lock) after a quarantine or
	// readmission transition; the router uses it to kick the feed
	// coordinator into an immediate reconcile.
	onChange func()

	mu      sync.Mutex
	members map[string]*memberHealth
}

func newMonitor(cfg HealthConfig, client *Client) *Monitor {
	return &Monitor{
		cfg:     cfg.withDefaults(),
		client:  client,
		members: make(map[string]*memberHealth),
	}
}

// SetMembers reconciles the tracked set against a new member list. New
// members start healthy (optimistic until probed — the scatter path
// treats unknown as healthy too); removed members are dropped and their
// state gauge zeroed.
func (mon *Monitor) SetMembers(members []Member) {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	keep := make(map[string]bool, len(members))
	for _, m := range members {
		keep[m.Name] = true
		if mh, ok := mon.members[m.Name]; ok {
			mh.url = m.URL
			continue
		}
		mon.members[m.Name] = &memberHealth{
			url: m.URL,
			errCounter: obs.GetCounter(
				fmt.Sprintf("storypivot_cluster_shard_errors_total{member=%q}", m.Name),
				"shard requests that failed, by member"),
			stateGauge: obs.GetGauge(
				fmt.Sprintf("storypivot_cluster_member_state{member=%q}", m.Name),
				"member health state: 0 healthy, 1 suspect, 2 quarantined"),
		}
	}
	for name, mh := range mon.members {
		if !keep[name] {
			mh.stateGauge.Set(0)
			delete(mon.members, name)
		}
	}
	mon.refreshGaugesLocked()
}

// State returns a member's cached health state. Unknown members report
// healthy — the scatter path should try them rather than invent a
// verdict.
func (mon *Monitor) State(name string) MemberState {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	if mh, ok := mon.members[name]; ok {
		return mh.state
	}
	return MemberHealthy
}

// RecordSuccess feeds a passive success signal (a shard request that
// answered) into the state machine. It never readmits a quarantined
// member — that is the half-open probe's job.
func (mon *Monitor) RecordSuccess(name string) {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	mh, ok := mon.members[name]
	if !ok || mh.state == MemberQuarantined {
		return
	}
	mh.fails = 0
	mon.setStateLocked(name, mh, MemberHealthy)
}

// RecordFailure feeds a passive failure signal (a failed shard request)
// into the state machine and bumps the member's error series.
func (mon *Monitor) RecordFailure(name, reason string) {
	mon.mu.Lock()
	changed := mon.failLocked(name, reason, time.Time{})
	mon.mu.Unlock()
	if changed && mon.onChange != nil {
		mon.onChange()
	}
}

// failLocked applies one failure. When now is non-zero the failure came
// from a probe, and a quarantined member's cooldown restarts (a failed
// half-open probe re-opens the breaker). Returns true on a transition
// into quarantine.
func (mon *Monitor) failLocked(name, reason string, now time.Time) bool {
	mh, ok := mon.members[name]
	if !ok {
		return false
	}
	mh.errCounter.Inc()
	mh.lastErr = reason
	if mh.state == MemberQuarantined {
		if !now.IsZero() {
			mh.quarantinedAt = now
		}
		return false
	}
	mh.fails++
	if mh.fails >= mon.cfg.FailThreshold {
		if now.IsZero() {
			now = time.Now()
		}
		mh.quarantinedAt = now
		mon.setStateLocked(name, mh, MemberQuarantined)
		metQuarantines.Inc()
		return true
	}
	mon.setStateLocked(name, mh, MemberSuspect)
	return false
}

func (mon *Monitor) setStateLocked(name string, mh *memberHealth, next MemberState) {
	if mh.state == next {
		return
	}
	mh.state = next
	mh.stateGauge.Set(int64(next))
	mon.refreshGaugesLocked()
}

func (mon *Monitor) refreshGaugesLocked() {
	var suspect, quarantined int64
	for _, mh := range mon.members {
		switch mh.state {
		case MemberSuspect:
			suspect++
		case MemberQuarantined:
			quarantined++
		}
	}
	metMembersSuspect.Set(suspect)
	metMembersQuarantined.Set(quarantined)
}

// Snapshot returns every member's health view, sorted by name.
func (mon *Monitor) Snapshot() []MemberHealthView {
	mon.mu.Lock()
	out := make([]MemberHealthView, 0, len(mon.members))
	for name, mh := range mon.members {
		out = append(out, MemberHealthView{
			Name:                name,
			State:               mh.state,
			ConsecutiveFailures: mh.fails,
			LastError:           mh.lastErr,
			LastProbe:           mh.lastProbe,
		})
	}
	mon.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// run is the background probe loop.
func (mon *Monitor) run(ctx context.Context) {
	t := time.NewTicker(mon.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			mon.ProbeRound(ctx)
		}
	}
}

// ProbeRound probes every member once, synchronously (members in
// parallel). Quarantined members inside their cooldown are skipped;
// past it, the probe is the half-open readmission attempt. Exposed (via
// Router.ProbeNow) so tests drive the state machine deterministically.
func (mon *Monitor) ProbeRound(ctx context.Context) {
	type target struct {
		name, url string
		skip      bool
	}
	now := time.Now()
	mon.mu.Lock()
	targets := make([]target, 0, len(mon.members))
	for name, mh := range mon.members {
		cooling := mh.state == MemberQuarantined && now.Sub(mh.quarantinedAt) < mon.cfg.Cooldown
		targets = append(targets, target{name: name, url: mh.url, skip: cooling})
	}
	mon.mu.Unlock()

	var wg sync.WaitGroup
	results := make([]string, len(targets)) // "" = success, else failure reason
	for i, tg := range targets {
		if tg.skip {
			continue
		}
		wg.Add(1)
		go func(i int, tg target) {
			defer wg.Done()
			results[i] = mon.probe(ctx, tg.url)
		}(i, tg)
	}
	wg.Wait()

	changed := false
	mon.mu.Lock()
	for i, tg := range targets {
		if tg.skip {
			continue
		}
		mh, ok := mon.members[tg.name]
		if !ok {
			continue
		}
		mh.lastProbe = now
		if results[i] == "" {
			if mh.state == MemberQuarantined {
				// Half-open probe succeeded: readmit.
				mh.fails = 0
				mon.setStateLocked(tg.name, mh, MemberHealthy)
				metReadmissions.Inc()
				changed = true
			} else {
				mh.fails = 0
				mon.setStateLocked(tg.name, mh, MemberHealthy)
			}
			continue
		}
		if mon.failLocked(tg.name, results[i], now) {
			changed = true
		}
	}
	mon.mu.Unlock()
	if changed && mon.onChange != nil {
		mon.onChange()
	}
}

// probe issues one health probe; "" means the member is serviceable.
// A 503 whose body says "quarantined" counts as alive: that is the
// worker reporting its *feed sources* are quarantined (an upstream
// problem moving the runners would not fix), while "draining"/"closed"
// mean the process is going away and its feeds should move now.
func (mon *Monitor) probe(ctx context.Context, url string) string {
	pctx, cancel := context.WithTimeout(ctx, mon.cfg.ProbeTimeout)
	defer cancel()
	metProbes.Inc()
	status, body, err := mon.client.Get(pctx, url, "/healthz", nil)
	if err != nil {
		return err.Error()
	}
	if status == http.StatusOK {
		return ""
	}
	var hv struct {
		Status string `json:"status"`
	}
	if status == http.StatusServiceUnavailable && json.Unmarshal(body, &hv) == nil && hv.Status == "quarantined" {
		return ""
	}
	return fmt.Sprintf("healthz status %d", status)
}
