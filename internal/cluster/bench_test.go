package cluster_test

// Shard-scaling benchmarks: the same saturating query+ingest workload
// against a single node and against the router over 1, 2, and 4 worker
// shards. scripts/bench.sh turns the section into BENCH_shard.json.
//
// Why sharding wins on one machine: every query settles pending
// alignment under the engine's exclusive mutex (stream.Engine.Result),
// so on a single node a concurrent ingest stream serializes all query
// traffic behind whole-corpus alignment passes. Workers settle only
// their own partition, concurrently — the stall a query sees becomes
// max(per-shard settle) instead of the sum.
//
// Run with:
//
//	go test -run '^$' -bench 'BenchmarkCluster' ./internal/cluster
//
// The result cache stays OFF on every configuration: the point is the
// serving fabric, not the cache paper-over.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/event"
	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/text"
)

const benchSources = 8

var clusterBench struct {
	sync.Once
	corpus   *datagen.Corpus
	bySource map[event.SourceID][]*event.Snippet
	sources  []event.SourceID
	queries  []string
	entities []string
}

func clusterBenchSetup(b *testing.B) {
	b.Helper()
	clusterBench.Do(func() {
		c := datagen.Generate(experiments.CorpusScale(4000, benchSources, 1))
		clusterBench.corpus = c
		clusterBench.bySource = c.BySource()
		for src := range clusterBench.bySource {
			clusterBench.sources = append(clusterBench.sources, src)
		}
		sort.Slice(clusterBench.sources, func(i, j int) bool {
			return clusterBench.sources[i] < clusterBench.sources[j]
		})
		freq := map[string]int{}
		var tokens []string
		seen := map[string]bool{}
		for _, sn := range c.Snippets {
			for _, e := range sn.Entities {
				freq[string(e)]++
			}
			for _, tm := range sn.Terms {
				if seen[tm.Token] || len(tokens) >= 8 {
					continue
				}
				seen[tm.Token] = true
				if toks := text.Pipeline(tm.Token); len(toks) == 1 && toks[0] == tm.Token {
					tokens = append(tokens, tm.Token)
				}
			}
		}
		type ef struct {
			e string
			n int
		}
		var es []ef
		for e, n := range freq {
			es = append(es, ef{e, n})
		}
		sort.Slice(es, func(i, j int) bool {
			if es[i].n != es[j].n {
				return es[i].n > es[j].n
			}
			return es[i].e < es[j].e
		})
		for i := 0; i < 6 && i < len(es); i++ {
			clusterBench.entities = append(clusterBench.entities, es[i].e)
		}
		for i := 0; i+1 < len(tokens); i += 2 {
			clusterBench.queries = append(clusterBench.queries, tokens[i]+" "+tokens[i+1])
		}
	})
}

// benchTarget is one serving configuration under test: either a bare
// single node (shards == 0) or the router over N workers, each worker
// preloaded with its partition of the corpus.
type benchTarget struct {
	url     string
	workers []*server.Server
	owner   func(src event.SourceID) int
}

func newBenchTarget(b *testing.B, shards int) *benchTarget {
	b.Helper()
	clusterBenchSetup(b)
	t := &benchTarget{}
	n := shards
	if n == 0 {
		n = 1
	}
	// Partition sources round-robin and pin them, so the split is
	// balanced by construction and identical across runs.
	srcShard := map[event.SourceID]int{}
	pins := map[string]string{}
	for i, src := range clusterBench.sources {
		srcShard[src] = i % n
		pins[string(src)] = fmt.Sprintf("w%d", i%n)
	}
	t.owner = func(src event.SourceID) int { return srcShard[src] }
	var members []cluster.Member
	for g := 0; g < n; g++ {
		w, err := server.New()
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { w.Close() })
		t.workers = append(t.workers, w)
		ts := httptest.NewServer(w.Handler())
		b.Cleanup(ts.Close)
		members = append(members, cluster.Member{Name: fmt.Sprintf("w%d", g), URL: ts.URL})
	}
	for src, snippets := range clusterBench.bySource {
		w := t.workers[srcShard[src]]
		for _, sn := range snippets {
			cp := *sn
			cp.TermIDs, cp.EntityIDs, cp.TermNorm = nil, nil, 0
			if err := w.Pipeline().Ingest(&cp); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, w := range t.workers {
		w.Pipeline().Result() // settle the preload outside the timer
	}
	if shards == 0 {
		t.url = members[0].URL
		return t
	}
	rt, err := cluster.NewRouter(cluster.Config{Members: members, Pins: pins})
	if err != nil {
		b.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	b.Cleanup(rts.Close)
	t.url = rts.URL
	return t
}

// ingestOne feeds one synthetic snippet (a fresh copy of a corpus
// snippet under a new ID and shifted timestamp) straight into the
// owning worker's pipeline, dirtying it so the next query pays an
// alignment settle — the contention the benchmark exists to measure.
func (t *benchTarget) ingestOne(b *testing.B, seq uint64) {
	tpl := clusterBench.corpus.Snippets[int(seq)%len(clusterBench.corpus.Snippets)]
	cp := *tpl
	cp.TermIDs, cp.EntityIDs, cp.TermNorm = nil, nil, 0
	cp.ID = event.SnippetID(10_000_000 + seq)
	cp.Timestamp = tpl.Timestamp.Add(time.Duration(seq) * time.Second)
	if err := t.workers[t.owner(cp.Source)].Pipeline().Ingest(&cp); err != nil {
		b.Fatal(err)
	}
}

// benchServe drives the mixed workload: every ingestEvery-th operation
// ingests, the rest are HTTP queries round-robin over search, timeline,
// and by-entity. Per-op latencies feed p50/p99 metrics; ns/op under
// RunParallel is aggregate wall time per op, so 1e9/ns is cluster QPS.
func benchServe(b *testing.B, t *benchTarget) {
	const ingestEvery = 16
	paths := make([]string, 0, len(clusterBench.queries)+2*len(clusterBench.entities))
	for _, q := range clusterBench.queries {
		paths = append(paths, "/api/search?q="+strings.ReplaceAll(q, " ", "+"))
	}
	for _, e := range clusterBench.entities {
		paths = append(paths, "/api/timeline?entity="+e, "/api/stories/by-entity?entity="+e)
	}
	var seq atomic.Uint64
	var mu sync.Mutex
	var all []time.Duration
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 1024)
		for pb.Next() {
			i := seq.Add(1)
			t0 := time.Now()
			if i%ingestEvery == 0 {
				t.ingestOne(b, i)
			} else {
				resp, err := client.Get(t.url + paths[int(i)%len(paths)])
				if err != nil {
					b.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
			local = append(local, time.Since(t0))
		}
		mu.Lock()
		all = append(all, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		k := int(q * float64(len(all)-1))
		return float64(all[k].Nanoseconds()) / 1e3
	}
	b.ReportMetric(pct(0.50), "p50_us")
	b.ReportMetric(pct(0.99), "p99_us")
}

func BenchmarkClusterQuerySingle(b *testing.B)  { benchServe(b, newBenchTarget(b, 0)) }
func BenchmarkClusterQueryShards1(b *testing.B) { benchServe(b, newBenchTarget(b, 1)) }
func BenchmarkClusterQueryShards2(b *testing.B) { benchServe(b, newBenchTarget(b, 2)) }
func BenchmarkClusterQueryShards4(b *testing.B) { benchServe(b, newBenchTarget(b, 4)) }

// --- Ingest: direct to a node vs routed through the ring -----------------

// benchIngest posts documents over HTTP — direct to a single node or
// through the router, which forwards each to its ring owner. Sources
// rotate so routed ingest actually spreads across the shard set.
func benchIngest(b *testing.B, t *benchTarget) {
	var seq atomic.Uint64
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			doc := fmt.Sprintf(`{"source":"feed%02d","url":"http://bench/%d","title":"Bench document %d","published":"2014-07-%02dT0%d:00:00Z","body":"A jet crashed near the border and investigators from the commission reached the site to recover the recorders."}`,
				i%16, i, i, 1+i%27, i%10)
			resp, err := client.Post(t.url+"/api/documents", "application/json", strings.NewReader(doc))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("ingest status %d", resp.StatusCode)
				return
			}
		}
	})
}

func BenchmarkClusterIngestDirect(b *testing.B) { benchIngest(b, newBenchTarget(b, 0)) }
func BenchmarkClusterIngestRouted(b *testing.B) { benchIngest(b, newBenchTarget(b, 4)) }

// --- Failover: availability and tail latency through a worker kill -------

// BenchmarkFailoverAvailability measures the self-healing loop end to
// end: one iteration is a full kill → passive detection → quarantine →
// restart → half-open readmission cycle over three workers, with
// scatter queries issued through every phase. Reported metrics:
// avail_pct is the fraction of queries answered below 500 across the
// whole cycle (the contract is 100 — outages degrade to partial, never
// error), and p99_us is the query tail during the outage window (kill
// through readmission), the interval the health monitor exists to keep
// short.
func BenchmarkFailoverAvailability(b *testing.B) {
	clusterBenchSetup(b)
	type wk struct {
		s    *server.Server
		ts   *httptest.Server
		addr string
	}
	workers := make([]*wk, 3)
	members := make([]cluster.Member, 3)
	pins := map[string]string{}
	for i, src := range clusterBench.sources {
		pins[string(src)] = fmt.Sprintf("w%d", i%3)
	}
	for g := 0; g < 3; g++ {
		s, err := server.New()
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		workers[g] = &wk{s: s, ts: ts, addr: ts.Listener.Addr().String()}
		members[g] = cluster.Member{Name: fmt.Sprintf("w%d", g), URL: "http://" + workers[g].addr}
	}
	b.Cleanup(func() {
		for _, w := range workers {
			w.ts.Close()
			w.s.Close()
		}
	})
	for i, src := range clusterBench.sources {
		w := workers[i%3]
		for _, sn := range clusterBench.bySource[src] {
			cp := *sn
			cp.TermIDs, cp.EntityIDs, cp.TermNorm = nil, nil, 0
			if err := w.s.Pipeline().Ingest(&cp); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, w := range workers {
		w.s.Pipeline().Result()
	}
	const cooldown = 20 * time.Millisecond
	rt, err := cluster.NewRouter(cluster.Config{
		Members: members,
		Pins:    pins,
		Client:  cluster.ClientConfig{Timeout: 2 * time.Second},
		Health: cluster.HealthConfig{
			FailThreshold: 2,
			Cooldown:      cooldown,
			ProbeTimeout:  time.Second,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	b.Cleanup(rts.Close)
	ctx := context.Background()

	paths := make([]string, 0, len(clusterBench.queries))
	for _, q := range clusterBench.queries {
		paths = append(paths, "/api/search?q="+strings.ReplaceAll(q, " ", "+"))
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	var total, served int
	var outage []time.Duration
	query := func(n int, rec bool) {
		for i := 0; i < n; i++ {
			t0 := time.Now()
			resp, err := client.Get(rts.URL + paths[total%len(paths)])
			d := time.Since(t0)
			total++
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode < 500 {
					served++
				}
			}
			if rec {
				outage = append(outage, d)
			}
		}
	}

	victim := workers[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query(20, false) // healthy baseline
		victim.ts.Close()
		query(4, true) // detection window: failed fan-outs are the signal
		rt.ProbeNow(ctx)
		query(40, true) // quarantined: dead member skipped, not timed out
		ln, err := net.Listen("tcp", victim.addr)
		if err != nil {
			b.Fatal(err)
		}
		nts := httptest.NewUnstartedServer(victim.s.Handler())
		nts.Listener.Close()
		nts.Listener = ln
		nts.Start()
		victim.ts = nts
		time.Sleep(cooldown + 10*time.Millisecond)
		rt.ProbeNow(ctx) // half-open readmission
		query(20, false) // healed
	}
	b.StopTimer()
	if total > 0 {
		b.ReportMetric(100*float64(served)/float64(total), "avail_pct")
	}
	if len(outage) > 0 {
		sort.Slice(outage, func(i, j int) bool { return outage[i] < outage[j] })
		k := int(0.99 * float64(len(outage)-1))
		b.ReportMetric(float64(outage[k].Nanoseconds())/1e3, "p99_us")
	}
}
