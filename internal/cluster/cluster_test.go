package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	storypivot "repro"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/event"
	"repro/internal/experiments"
	"repro/internal/qcache"
	"repro/internal/server"
	"repro/internal/text"
)

// The differential proof. A sharded deployment answers byte-identically
// to a single node when every alignment component lies entirely within
// one shard. The harness constructs exactly that regime: three corpora
// with disjoint vocabularies (tokens, entities, and sources prefixed
// per group, snippet IDs offset), so the maximum cross-group similarity
// — the temporal component alone, weight 0.20 — stays below the match
// threshold (0.38) and no alignment edge can cross a shard boundary.
// Entity-IDF weighting is off on both sides: its statistics aggregate
// over the whole corpus under alignment, which a shard cannot observe
// (DESIGN.md §3.12).
//
// Both sides then ingest the same global snippet stream — the single
// node takes everything, each worker its own group — and every HTTP
// query is asserted byte-for-byte equal through the router and the
// single node, envelope included.

const nGroups = 3

// remapGroup namespaces a generated corpus into group g: sources,
// entities, and description tokens get a group prefix, snippet IDs an
// offset. Prefixing preserves sort order (Entities and Terms stay
// sorted), and fresh Snippet values leave interning to each pipeline.
func remapGroup(c *datagen.Corpus, g int) []*event.Snippet {
	out := make([]*event.Snippet, 0, len(c.Snippets))
	for _, sn := range c.Snippets {
		cp := &event.Snippet{
			ID:        sn.ID + event.SnippetID(g*1_000_000),
			Source:    event.SourceID(fmt.Sprintf("g%d-%s", g, sn.Source)),
			Timestamp: sn.Timestamp,
			Text:      sn.Text,
			Document:  sn.Document,
		}
		for _, e := range sn.Entities {
			cp.Entities = append(cp.Entities, event.Entity(fmt.Sprintf("g%dx%s", g, e)))
		}
		for _, tm := range sn.Terms {
			cp.Terms = append(cp.Terms, event.Term{Token: fmt.Sprintf("g%dx%s", g, tm.Token), Weight: tm.Weight})
		}
		out = append(out, cp)
	}
	return out
}

// groupOf recovers the owning group from a remapped source.
func groupOf(src event.SourceID) int {
	var g int
	fmt.Sscanf(string(src), "g%d-", &g)
	return g
}

func pipelineOpts() []storypivot.Option {
	return []storypivot.Option{
		storypivot.WithRefinement(true),
		storypivot.WithRepairEvery(100),
		storypivot.WithAlignEntityIDF(false),
	}
}

type harness struct {
	single  *server.Server
	workers [nGroups]*server.Server
	// singleTS serves the single node; routerTS the scatter-gather
	// router over the three worker listeners.
	singleTS, routerTS *httptest.Server
	stream             []*event.Snippet
	entities           []string
	queries            []string
}

func newHarness(t *testing.T, seed int64, perGroup int) *harness {
	t.Helper()
	h := &harness{}
	var err error
	h.single, err = server.New(pipelineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.single.Close() })
	members := make([]cluster.Member, nGroups)
	pins := map[string]string{}
	for g := 0; g < nGroups; g++ {
		w, err := server.New(pipelineOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		// Workers run with the query cache ON: the differential then
		// also proves cached bytes equal freshly computed ones.
		w.EnableCache(qcache.Config{TTL: time.Minute, Shards: 4, MaxEntries: 1024})
		h.workers[g] = w
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(ts.Close)
		members[g] = cluster.Member{Name: fmt.Sprintf("w%d", g), URL: ts.URL}
	}
	// Three disjoint corpora; the interleaved global stream orders by
	// (timestamp, id) so both sides see the same arrival sequence.
	for g := 0; g < nGroups; g++ {
		c := datagen.Generate(experiments.CorpusScale(perGroup, 3, seed+int64(g)*17))
		snippets := remapGroup(c, g)
		h.stream = append(h.stream, snippets...)
		pins[string(snippets[0].Source)] = members[g].Name
	}
	sort.SliceStable(h.stream, func(i, j int) bool {
		if !h.stream[i].Timestamp.Equal(h.stream[j].Timestamp) {
			return h.stream[i].Timestamp.Before(h.stream[j].Timestamp)
		}
		return h.stream[i].ID < h.stream[j].ID
	})
	rt, err := cluster.NewRouter(cluster.Config{Members: members, Pins: pins})
	if err != nil {
		t.Fatal(err)
	}
	h.singleTS = httptest.NewServer(h.single.Handler())
	t.Cleanup(h.singleTS.Close)
	h.routerTS = httptest.NewServer(rt.Handler())
	t.Cleanup(h.routerTS.Close)
	h.buildPanel()
	return h
}

// buildPanel picks query entities and search tokens from every group —
// most frequent plus rare per group, and a guaranteed miss — keeping
// only tokens the text pipeline leaves unchanged so queries can hit.
func (h *harness) buildPanel() {
	freq := map[string]int{}
	tokens := map[int][]string{}
	tokenSeen := map[string]bool{}
	for _, sn := range h.stream {
		for _, e := range sn.Entities {
			freq[string(e)]++
		}
		g := groupOf(sn.Source)
		for _, tm := range sn.Terms {
			if tokenSeen[tm.Token] || len(tokens[g]) >= 4 {
				continue
			}
			tokenSeen[tm.Token] = true
			if toks := text.Pipeline(tm.Token); len(toks) == 1 && toks[0] == tm.Token {
				tokens[g] = append(tokens[g], tm.Token)
			}
		}
	}
	type ef struct {
		e string
		n int
	}
	perGroup := map[int][]ef{}
	for e, n := range freq {
		var g int
		fmt.Sscanf(e, "g%dx", &g)
		perGroup[g] = append(perGroup[g], ef{e, n})
	}
	h.entities = []string{"no_such_entity_zzz"}
	for g := 0; g < nGroups; g++ {
		es := perGroup[g]
		sort.Slice(es, func(i, j int) bool {
			if es[i].n != es[j].n {
				return es[i].n > es[j].n
			}
			return es[i].e < es[j].e
		})
		if len(es) > 0 {
			h.entities = append(h.entities, es[0].e, es[len(es)-1].e)
		}
	}
	h.queries = []string{"zzzzqq xqqqz"}
	for g := 0; g < nGroups; g++ {
		ts := tokens[g]
		if len(ts) > 0 {
			h.queries = append(h.queries, ts[0])
		}
		if len(ts) > 1 {
			h.queries = append(h.queries, ts[0]+" "+ts[1])
		}
	}
	// A cross-group query: hits stories on several shards at once, the
	// case the merge exists for.
	var cross []string
	for g := 0; g < nGroups; g++ {
		if len(tokens[g]) > 0 {
			cross = append(cross, tokens[g][0])
		}
	}
	if len(cross) > 1 {
		h.queries = append(h.queries, strings.Join(cross, " "))
	}
}

// ingest feeds the global stream prefix [from, to) to both sides in
// lockstep: the single node takes every snippet, each worker only its
// group's.
func (h *harness) ingest(t *testing.T, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		sn := h.stream[i]
		g := groupOf(sn.Source)
		single := &event.Snippet{
			ID: sn.ID, Source: sn.Source, Timestamp: sn.Timestamp,
			Entities: sn.Entities, Terms: sn.Terms, Text: sn.Text, Document: sn.Document,
		}
		worker := &event.Snippet{
			ID: sn.ID, Source: sn.Source, Timestamp: sn.Timestamp,
			Entities: sn.Entities, Terms: sn.Terms, Text: sn.Text, Document: sn.Document,
		}
		if err := h.single.Pipeline().Ingest(single); err != nil {
			t.Fatal(err)
		}
		if err := h.workers[g].Pipeline().Ingest(worker); err != nil {
			t.Fatal(err)
		}
	}
}

func get(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// compare asserts the router and the single node answer the path with
// identical status and identical bytes.
func (h *harness) compare(t *testing.T, path, at string) {
	t.Helper()
	sc, sb := get(t, h.singleTS.URL, path)
	rc, rb := get(t, h.routerTS.URL, path)
	if sc != rc {
		t.Fatalf("%s %s: status single=%d router=%d\nsingle: %s\nrouter: %s", at, path, sc, rc, sb, rb)
	}
	if !bytes.Equal(sb, rb) {
		t.Fatalf("%s %s: bytes differ\nsingle: %s\nrouter: %s", at, path, sb, rb)
	}
}

func (h *harness) comparePanel(t *testing.T, at string) {
	t.Helper()
	for _, q := range h.queries {
		h.compare(t, "/api/search?q="+urlEscape(q), at)
	}
	for _, e := range h.entities {
		h.compare(t, "/api/timeline?entity="+urlEscape(e), at)
		h.compare(t, "/api/stories/by-entity?entity="+urlEscape(e), at)
	}
}

// assertNonTrivial guards the differential against vacuous success:
// byte-identity over all-empty pages proves nothing. The panel must
// produce hits, and the cross-group query (the last one) must pull
// stories from more than one shard — the case the merge exists for.
func (h *harness) assertNonTrivial(t *testing.T) {
	t.Helper()
	var page struct {
		Total   int `json:"total"`
		Results []struct {
			ID uint64 `json:"id"`
		} `json:"results"`
	}
	cross := h.queries[len(h.queries)-1]
	_, body := get(t, h.routerTS.URL, "/api/search?q="+urlEscape(cross)+"&limit=500")
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatal(err)
	}
	if page.Total == 0 {
		t.Fatalf("cross-group query %q returned no hits; differential is vacuous", cross)
	}
	hitWorkers := 0
	for g := 0; g < nGroups; g++ {
		hits, _, _ := h.workers[g].Pipeline().SearchScoredN(cross, 0, 1)
		if len(hits) > 0 {
			hitWorkers++
		}
	}
	if hitWorkers < 2 {
		t.Fatalf("cross-group query %q hit only %d worker(s); merge path untested", cross, hitWorkers)
	}
	hitEntities := 0
	for _, e := range h.entities {
		_, body := get(t, h.routerTS.URL, "/api/stories/by-entity?entity="+urlEscape(e))
		var p struct {
			Total int `json:"total"`
		}
		if err := json.Unmarshal(body, &p); err != nil {
			t.Fatal(err)
		}
		if p.Total > 0 {
			hitEntities++
		}
	}
	if hitEntities < nGroups {
		t.Fatalf("only %d panel entities hit; want at least one per group", hitEntities)
	}
}

func urlEscape(s string) string { return strings.ReplaceAll(s, " ", "+") }

func TestClusterDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness ingests thousands of snippets")
	}
	for _, seed := range []int64{7, 21, 63} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			h := newHarness(t, seed, 250)
			n := len(h.stream)
			removeAt := n * 3 / 5

			h.ingest(t, 0, n/3)
			h.comparePanel(t, "third")

			h.ingest(t, n/3, removeAt)
			// Mid-stream source removal on one shard: both sides drop the
			// same source; the worker's index tombstones and the router
			// must reflect it identically.
			victim := h.stream[0].Source
			g := groupOf(victim)
			if !h.single.Pipeline().RemoveSource(victim) {
				t.Fatalf("single RemoveSource(%s) removed nothing", victim)
			}
			if !h.workers[g].Pipeline().RemoveSource(victim) {
				t.Fatalf("worker %d RemoveSource(%s) removed nothing", g, victim)
			}
			h.comparePanel(t, "after RemoveSource")

			h.ingest(t, removeAt, n)
			h.comparePanel(t, "final")
			h.assertNonTrivial(t)

			// Paged windows, including deep offsets and windows past the
			// end — global pagination must stitch identically.
			for _, q := range h.queries[:min(len(h.queries), 4)] {
				for _, window := range []string{
					"&offset=0&limit=3", "&offset=3&limit=3", "&offset=2&limit=7",
					"&offset=50&limit=10", "&offset=100000&limit=5",
				} {
					h.compare(t, "/api/search?q="+urlEscape(q)+window, "paged")
				}
			}
			for _, e := range h.entities[:min(len(h.entities), 5)] {
				for _, window := range []string{
					"&offset=0&limit=4", "&offset=4&limit=4", "&offset=1&limit=9",
					"&offset=100000&limit=5",
				} {
					h.compare(t, "/api/timeline?entity="+urlEscape(e)+window, "paged")
					h.compare(t, "/api/stories/by-entity?entity="+urlEscape(e)+window, "paged")
				}
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestClusterDegradedServing pins the failure contract: with one worker
// of three gone, scatter endpoints answer 200 with "partial": true
// (never a 5xx), and /healthz stays 200 until a majority is down.
func TestClusterDegradedServing(t *testing.T) {
	var members []cluster.Member
	var tss []*httptest.Server
	for g := 0; g < 3; g++ {
		w, err := server.New(pipelineOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		ts := httptest.NewServer(w.Handler())
		members = append(members, cluster.Member{Name: fmt.Sprintf("w%d", g), URL: ts.URL})
		tss = append(tss, ts)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Members: members,
		Client:  cluster.ClientConfig{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	type env struct {
		Total   int               `json:"total"`
		Results []json.RawMessage `json:"results"`
		Partial bool              `json:"partial"`
	}
	code, body := get(t, rts.URL, "/api/search?q=anything")
	if code != http.StatusOK {
		t.Fatalf("healthy search: %d: %s", code, body)
	}
	var e env
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Partial {
		t.Fatalf("healthy cluster answered partial: %s", body)
	}
	if code, _ := get(t, rts.URL, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthy healthz: %d", code)
	}

	tss[2].Close() // one worker down: degraded, never 5xx
	for _, path := range []string{
		"/api/search?q=anything",
		"/api/timeline?entity=UKR",
		"/api/stories/by-entity?entity=UKR",
	} {
		code, body := get(t, rts.URL, path)
		if code != http.StatusOK {
			t.Fatalf("degraded %s: status %d (must stay 200): %s", path, code, body)
		}
		var e env
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatal(err)
		}
		if !e.Partial {
			t.Fatalf("degraded %s: partial flag missing: %s", path, body)
		}
	}
	// The three failed scatters above are passive health signals: with
	// the default threshold of 3 consecutive failures, w2 is now
	// quarantined without a single background probe having run — and
	// /healthz reports the cached verdict without fanning out.
	code, body = get(t, rts.URL, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz with 2/3 up: %d (quorum intact): %s", code, body)
	}
	if !strings.Contains(string(body), `"w2": "quarantined"`) {
		t.Fatalf("healthz does not name the dead worker: %s", body)
	}

	// With w2 quarantined, scatters skip it outright: still 200, still
	// partial, without burning the shard timeout on a known-dead member.
	code, body = get(t, rts.URL, "/api/search?q=anything")
	if code != http.StatusOK {
		t.Fatalf("post-quarantine search: %d: %s", code, body)
	}
	var pq env
	if err := json.Unmarshal(body, &pq); err != nil {
		t.Fatal(err)
	}
	if !pq.Partial {
		t.Fatalf("post-quarantine search not partial: %s", body)
	}

	tss[1].Close() // majority down: quorum lost
	// The cached verdict lags until probes (or passive traffic) see the
	// second death; drive the prober deterministically.
	for i := 0; i < 3; i++ {
		rt.ProbeNow(context.Background())
	}
	if code, body := get(t, rts.URL, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with 1/3 up: %d, want 503: %s", code, body)
	}
	// Queries still degrade to 200 even with quorum lost.
	if code, _ := get(t, rts.URL, "/api/search?q=anything"); code != http.StatusOK {
		t.Fatalf("search with 1/3 up: %d, want 200", code)
	}
}

// TestClusterIngestRouting pins the write path: a document POSTed to
// the router lands on exactly the worker the ring assigns its source,
// and the aggregated document listing sees it wherever it lives.
func TestClusterIngestRouting(t *testing.T) {
	var members []cluster.Member
	var workers []*server.Server
	for g := 0; g < 3; g++ {
		w, err := server.New(pipelineOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(ts.Close)
		members = append(members, cluster.Member{Name: fmt.Sprintf("w%d", g), URL: ts.URL})
		workers = append(workers, w)
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Members: members,
		Pins:    map[string]string{"pinned-src": "w1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	post := func(src, url string) {
		t.Helper()
		doc := fmt.Sprintf(`{"source":%q,"url":%q,"title":"Jet crash in Ukraine","published":"2014-07-17T00:00:00Z","body":"A jet crashed near Donetsk in Ukraine and investigators reached the site."}`, src, url)
		resp, err := http.Post(rts.URL+"/api/documents", "application/json", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST %s: %d: %s", src, resp.StatusCode, body)
		}
	}
	sources := []string{"alpha", "bravo", "charlie", "delta", "pinned-src"}
	for i, src := range sources {
		post(src, fmt.Sprintf("http://example.com/%s/%d", src, i))
	}
	ring := rt.Ring()
	for _, src := range sources {
		want := ring.OwnerIndex(src)
		for g, w := range workers {
			has := false
			for _, s := range w.Pipeline().Sources() {
				if string(s) == src {
					has = true
				}
			}
			if has != (g == want) {
				t.Fatalf("source %s on worker %d (has=%v), ring owner %d", src, g, has, want)
			}
		}
	}
	if ring.Owner("pinned-src").Name != "w1" {
		t.Fatalf("pin ignored: %s", ring.Owner("pinned-src").Name)
	}
	// Aggregated listing sees every document exactly once.
	code, body := get(t, rts.URL, "/api/documents")
	if code != http.StatusOK {
		t.Fatalf("GET /api/documents: %d", code)
	}
	var docs []struct {
		Source string `json:"source"`
		URL    string `json:"url"`
	}
	if err := json.Unmarshal(body, &docs); err != nil {
		t.Fatalf("aggregate documents: %v: %s", err, body)
	}
	if len(docs) != len(sources) {
		t.Fatalf("aggregate lists %d documents, want %d: %s", len(docs), len(sources), body)
	}
	if !sort.SliceIsSorted(docs, func(i, j int) bool {
		if docs[i].Source != docs[j].Source {
			return docs[i].Source < docs[j].Source
		}
		return docs[i].URL < docs[j].URL
	}) {
		t.Fatalf("aggregate not sorted by (source, url): %s", body)
	}
}

// TestClusterMembersReconfigure pins the admin surface: PUT swaps the
// ring atomically and rejects invalid configurations.
func TestClusterMembersReconfigure(t *testing.T) {
	w, err := server.New(pipelineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	ts := httptest.NewServer(w.Handler())
	t.Cleanup(ts.Close)
	rt, err := cluster.NewRouter(cluster.Config{
		Members: []cluster.Member{{Name: "w0", URL: ts.URL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	ts2 := httptest.NewServer(w.Handler())
	t.Cleanup(ts2.Close)

	put := func(body string) int {
		req, _ := http.NewRequest(http.MethodPut, rts.URL+"/api/cluster/members", strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(fmt.Sprintf(`{"members":[{"name":"w0","url":%q},{"name":"w1","url":%q}],"pins":{"hot":"w1"}}`, ts.URL, ts2.URL)); code != http.StatusOK {
		t.Fatalf("valid reconfigure: %d", code)
	}
	if got := len(rt.Ring().Members()); got != 2 {
		t.Fatalf("ring has %d members after PUT, want 2", got)
	}
	if rt.Ring().Owner("hot").Name != "w1" {
		t.Fatal("pin not applied after PUT")
	}
	for what, body := range map[string]string{
		"empty member list": `{"members":[]}`,
		"empty url":         `{"members":[{"name":"a","url":""}]}`,
		"unparseable url":   `{"members":[{"name":"a","url":"u"}]}`,
		"non-http scheme":   `{"members":[{"name":"a","url":"ftp://h:1"}]}`,
		"hostless url":      `{"members":[{"name":"a","url":"http://"}]}`,
		"duplicate name":    fmt.Sprintf(`{"members":[{"name":"a","url":%q},{"name":"a","url":%q}]}`, ts.URL, ts2.URL),
		"duplicate url":     fmt.Sprintf(`{"members":[{"name":"a","url":%q},{"name":"b","url":%q}]}`, ts.URL, ts.URL),
		"bad pin":           `{"members":[{"name":"a","url":"http://h:1"}],"pins":{"x":"nope"}}`,
	} {
		if code := put(body); code != http.StatusBadRequest {
			t.Fatalf("%s accepted: %d", what, code)
		}
	}
	if got := len(rt.Ring().Members()); got != 2 {
		t.Fatalf("failed PUT mutated the ring: %d members", got)
	}
}

// TestClusterPagedEnvelopeEdgeCases pins the degenerate pagination
// inputs against byte-identity. The near-MaxInt offset makes
// offset+limit overflow int: the router used to forward the negative
// sum as the shard limit, every worker answered 400, and the "merged"
// envelope came back partial with total=0 — silently diverging from
// the single node, which reports the true total over an empty window.
func TestClusterPagedEnvelopeEdgeCases(t *testing.T) {
	h := newHarness(t, 7, 40)
	h.ingest(t, 0, len(h.stream))

	q := h.queries[len(h.queries)-1]
	e := h.entities[1]
	const hugeOffset = "9223372036854775800" // MaxInt64 - 7: +limit overflows
	for _, path := range []string{
		"/api/search?q=" + urlEscape(q) + "&offset=" + hugeOffset + "&limit=500",
		"/api/timeline?entity=" + urlEscape(e) + "&offset=" + hugeOffset + "&limit=500",
		"/api/stories/by-entity?entity=" + urlEscape(e) + "&offset=" + hugeOffset + "&limit=500",
		"/api/search?q=" + urlEscape(q) + "&offset=" + hugeOffset + "&limit=500&deep=1",
		// limit=0 is rejected as invalid — by both layers, identically.
		"/api/search?q=" + urlEscape(q) + "&limit=0",
		"/api/timeline?entity=" + urlEscape(e) + "&limit=0",
		"/api/stories/by-entity?entity=" + urlEscape(e) + "&limit=0",
	} {
		h.compare(t, path, "edge")
	}

	// Beyond byte-identity: the overflow window must still carry the
	// true corpus-wide total from healthy shards, not a partial zero.
	_, body := get(t, h.routerTS.URL, "/api/search?q="+urlEscape(q)+"&offset="+hugeOffset+"&limit=500")
	var pg struct {
		Total   int  `json:"total"`
		Partial bool `json:"partial"`
	}
	if err := json.Unmarshal(body, &pg); err != nil {
		t.Fatal(err)
	}
	if pg.Partial {
		t.Fatalf("overflowing offset marked the response partial: %s", body)
	}
	if pg.Total == 0 {
		t.Fatalf("overflowing offset lost the total: %s", body)
	}
}
