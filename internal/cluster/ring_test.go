package cluster

import (
	"fmt"
	"testing"
)

func testMembers(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{Name: fmt.Sprintf("w%d", i+1), URL: fmt.Sprintf("http://w%d", i+1)}
	}
	return out
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, nil); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewRing([]Member{{Name: "", URL: "u"}}, nil); err == nil {
		t.Fatal("nameless member accepted")
	}
	if _, err := NewRing([]Member{{Name: "a", URL: ""}}, nil); err == nil {
		t.Fatal("urlless member accepted")
	}
	ms := []Member{{Name: "a", URL: "u1"}, {Name: "a", URL: "u2"}}
	if _, err := NewRing(ms, nil); err == nil {
		t.Fatal("duplicate member name accepted")
	}
	if _, err := NewRing(testMembers(2), map[string]string{"src": "nope"}); err == nil {
		t.Fatal("pin to unknown member accepted")
	}
}

func TestRingDeterministicAndStable(t *testing.T) {
	r1, err := NewRing(testMembers(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(testMembers(3), nil)
	for i := 0; i < 500; i++ {
		src := fmt.Sprintf("source-%d", i)
		if r1.Owner(src) != r2.Owner(src) {
			t.Fatalf("ownership of %s not deterministic", src)
		}
	}
	// Consistent hashing: growing the ring must move only a bounded
	// share of sources (≈1/(n+1)), not reshuffle everything.
	r4, _ := NewRing(testMembers(4), nil)
	moved := 0
	const total = 2000
	for i := 0; i < total; i++ {
		src := fmt.Sprintf("source-%d", i)
		if r1.Owner(src).Name != r4.Owner(src).Name {
			moved++
		}
	}
	if moved == 0 || moved > total/2 {
		t.Fatalf("adding a member moved %d/%d sources; want a bounded nonzero share", moved, total)
	}
}

func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		r, err := NewRing(testMembers(n), nil)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		const total = 20000
		for i := 0; i < total; i++ {
			counts[r.Owner(fmt.Sprintf("src-%d", i)).Name]++
		}
		want := total / n
		for name, c := range counts {
			if c < want/2 || c > want*2 {
				t.Fatalf("%d members: %s owns %d of %d (expected ≈%d)", n, name, c, total, want)
			}
		}
	}
}

func TestRingPins(t *testing.T) {
	ms := testMembers(3)
	r, err := NewRing(ms, map[string]string{"hot-source": "w3"})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owner("hot-source").Name; got != "w3" {
		t.Fatalf("pinned source owned by %s, want w3", got)
	}
	if pins := r.Pins(); pins["hot-source"] != "w3" {
		t.Fatalf("Pins() = %v", pins)
	}
	// Unpinned sources keep hash placement.
	free, _ := NewRing(ms, nil)
	for i := 0; i < 100; i++ {
		src := fmt.Sprintf("other-%d", i)
		if r.Owner(src) != free.Owner(src) {
			t.Fatalf("pin changed placement of unpinned %s", src)
		}
	}
}
