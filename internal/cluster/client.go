package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/obs"
)

var (
	metShardRequests = obs.GetCounter("storypivot_cluster_shard_requests_total",
		"requests the router issued to worker shards")
	metShardErrors = obs.GetCounter("storypivot_cluster_shard_errors_total",
		"shard requests that failed (transport error, timeout, or 5xx)")
	metShardHedges = obs.GetCounter("storypivot_cluster_shard_hedges_total",
		"duplicate shard requests launched because the first was slow")
	metPartial = obs.GetCounter("storypivot_cluster_partial_responses_total",
		"router responses served degraded because at least one shard failed")
)

// PageEnv is the paged query envelope as workers serialise it
// (server.SearchPageView / TimelinePageView). Results stay raw: the
// router re-ranks by the score/timestamp side channels and re-emits the
// winning members verbatim, so worker bytes flow through untouched and
// the merged response is byte-identical to a single node's.
type PageEnv struct {
	Total   int               `json:"total"`
	Offset  int               `json:"offset"`
	Limit   int               `json:"limit"`
	Results []json.RawMessage `json:"results"`
	Scores  []float64         `json:"scores,omitempty"`
	Partial bool              `json:"partial,omitempty"`
}

// Client issues requests to worker shards. One Client serves all
// shards: the transport below it keeps per-host connection pools, so
// per-shard connection reuse falls out of a single shared transport.
type Client struct {
	hc         *http.Client
	timeout    time.Duration // per-shard request deadline
	hedgeAfter time.Duration // 0 disables hedging
}

// ClientConfig configures shard fan-out behaviour.
type ClientConfig struct {
	// Timeout bounds every shard request (default 5s).
	Timeout time.Duration
	// HedgeAfter launches a second identical GET if the first has not
	// answered within this duration; the first response wins. 0
	// disables hedging. Only idempotent requests hedge.
	HedgeAfter time.Duration
}

// NewClient builds a shard client.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	return &Client{
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		timeout:    cfg.Timeout,
		hedgeAfter: cfg.HedgeAfter,
	}
}

type httpResult struct {
	status int
	body   []byte
	err    error
}

// Get fetches base+path?query from a shard, hedging if configured.
// A non-2xx status is returned with err == nil; transport failures and
// deadline overruns come back as err.
func (c *Client) Get(ctx context.Context, base, path string, query url.Values) (int, []byte, error) {
	u := base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	ch := make(chan httpResult, 2)
	issue := func() {
		metShardRequests.Inc()
		ch <- c.do(ctx, http.MethodGet, u, nil, "")
	}
	go issue()
	if c.hedgeAfter > 0 {
		t := time.NewTimer(c.hedgeAfter)
		defer t.Stop()
		select {
		case res := <-ch:
			return finish(res)
		case <-t.C:
			metShardHedges.Inc()
			go issue()
		}
	}
	res := <-ch
	return finish(res)
}

// Post forwards a request body to a shard. Never hedged: ingest is not
// idempotent.
func (c *Client) Post(ctx context.Context, method, base, path string, query url.Values, body []byte, contentType string) (int, []byte, error) {
	u := base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	metShardRequests.Inc()
	return finish(c.do(ctx, method, u, body, contentType))
}

func finish(res httpResult) (int, []byte, error) {
	if res.err != nil {
		metShardErrors.Inc()
		return 0, nil, res.err
	}
	if res.status >= 500 {
		metShardErrors.Inc()
	}
	return res.status, res.body, nil
}

func (c *Client) do(ctx context.Context, method, u string, body []byte, contentType string) httpResult {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return httpResult{err: err}
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return httpResult{err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return httpResult{err: err}
	}
	return httpResult{status: resp.StatusCode, body: b}
}

// StatusError reports a shard answering with an unexpected HTTP status.
// Scatter paths use it to distinguish "the worker is up but rejected
// this request" (4xx — not a health signal) from "the worker is down or
// broken" (transport error or 5xx — counts toward quarantine).
type StatusError struct {
	Code int
}

func (e *StatusError) Error() string { return fmt.Sprintf("shard status %d", e.Code) }

// GetPage fetches and decodes a worker's paged query envelope.
func (c *Client) GetPage(ctx context.Context, base, path string, query url.Values) (*PageEnv, error) {
	status, body, err := c.Get(ctx, base, path, query)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: shard %s%s: %w", base, path, &StatusError{Code: status})
	}
	var env PageEnv
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, fmt.Errorf("cluster: shard %s%s: %w", base, path, err)
	}
	return &env, nil
}
