package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientHedging pins the hedge contract on a slow-then-fast pair:
// the stalled first request triggers exactly one hedge, the hedge's
// response wins and is returned byte-for-byte, and the losing in-flight
// request is cancelled rather than left running to completion.
func TestClientHedging(t *testing.T) {
	const fastBody = `{"total":7,"offset":0,"limit":1,"results":[{"id":1}]}`
	hedgesBefore := metShardHedges.Value()
	var calls atomic.Int64
	loserCancelled := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First request stalls until its context dies; if it ever
			// completes normally the cancel contract is broken.
			select {
			case <-r.Context().Done():
				close(loserCancelled)
			case <-time.After(10 * time.Second):
				t.Error("losing request ran to completion")
			}
			return
		}
		w.Write([]byte(fastBody))
	}))
	defer ts.Close()

	c := NewClient(ClientConfig{Timeout: 10 * time.Second, HedgeAfter: 20 * time.Millisecond})
	status, body, err := c.Get(context.Background(), ts.URL, "/page", nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if string(body) != fastBody {
		t.Fatalf("winner bytes not returned verbatim: %q", body)
	}
	if got := metShardHedges.Value() - hedgesBefore; got != 1 {
		t.Fatalf("hedge counter moved by %d, want 1", got)
	}
	select {
	case <-loserCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing request was not cancelled")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d requests issued, want 2", got)
	}
}

// TestHealthMonitorStateMachine drives the member state machine through
// quarantine and half-open readmission, asserting the per-member
// metrics track every transition.
func TestHealthMonitorStateMachine(t *testing.T) {
	var mode atomic.Value // "ok" | "err" | "quarantined" | "draining"
	mode.Store("ok")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch mode.Load().(string) {
		case "ok":
			w.Write([]byte(`{"status":"ok"}`))
		case "err":
			http.Error(w, "boom", http.StatusInternalServerError)
		case "quarantined":
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"status":"quarantined"}`))
		case "draining":
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"status":"draining"}`))
		}
	}))
	defer ts.Close()

	const name = "hm-w0"
	mon := newMonitor(HealthConfig{
		FailThreshold: 2,
		Cooldown:      60 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
	}, NewClient(ClientConfig{Timeout: 2 * time.Second}))
	mon.SetMembers([]Member{{Name: name, URL: ts.URL}})
	ctx := context.Background()

	stateGauge := func() int64 {
		mon.mu.Lock()
		defer mon.mu.Unlock()
		return mon.members[name].stateGauge.Value()
	}
	errCounter := func() uint64 {
		mon.mu.Lock()
		defer mon.mu.Unlock()
		return mon.members[name].errCounter.Value()
	}
	errsBefore := errCounter()
	quarBefore := metQuarantines.Value()
	readmitBefore := metReadmissions.Value()

	if mon.State(name) != MemberHealthy {
		t.Fatal("new member not healthy")
	}
	mon.ProbeRound(ctx)
	if mon.State(name) != MemberHealthy || stateGauge() != 0 {
		t.Fatal("healthy probe changed state")
	}

	// A worker whose *feed sources* are breaker-quarantined answers 503
	// {"status":"quarantined"} — that is an upstream problem, not a dead
	// worker; the probe must count it alive.
	mode.Store("quarantined")
	mon.ProbeRound(ctx)
	if mon.State(name) != MemberHealthy {
		t.Fatal("feed-level 503 treated as member failure")
	}

	// Real failures: passive signal then probe → threshold 2 → quarantine.
	mode.Store("err")
	mon.RecordFailure(name, "shard status 500")
	if mon.State(name) != MemberSuspect || stateGauge() != 1 {
		t.Fatalf("after 1 failure: state %v gauge %d", mon.State(name), stateGauge())
	}
	mon.ProbeRound(ctx)
	if mon.State(name) != MemberQuarantined || stateGauge() != 2 {
		t.Fatalf("after 2 failures: state %v gauge %d", mon.State(name), stateGauge())
	}
	if got := errCounter() - errsBefore; got != 2 {
		t.Fatalf("per-member error counter moved by %d, want 2", got)
	}
	if metQuarantines.Value() != quarBefore+1 {
		t.Fatal("quarantine counter did not move")
	}

	// Passive successes must NOT readmit a quarantined member.
	mode.Store("ok")
	mon.RecordSuccess(name)
	if mon.State(name) != MemberQuarantined {
		t.Fatal("passive success readmitted a quarantined member")
	}
	// Neither does a probe inside the cooldown (it is skipped entirely).
	mon.ProbeRound(ctx)
	if mon.State(name) != MemberQuarantined {
		t.Fatal("probe inside cooldown readmitted")
	}

	// A failed half-open probe restarts the cooldown.
	mode.Store("draining")
	time.Sleep(80 * time.Millisecond)
	mon.ProbeRound(ctx)
	if mon.State(name) != MemberQuarantined {
		t.Fatal("draining 503 readmitted")
	}

	// Past the (restarted) cooldown, a successful half-open probe
	// readmits.
	mode.Store("ok")
	time.Sleep(80 * time.Millisecond)
	mon.ProbeRound(ctx)
	if mon.State(name) != MemberHealthy || stateGauge() != 0 {
		t.Fatalf("half-open probe did not readmit: state %v gauge %d", mon.State(name), stateGauge())
	}
	if metReadmissions.Value() != readmitBefore+1 {
		t.Fatal("readmission counter did not move")
	}

	// Members removed from the ring stop being tracked.
	mon.SetMembers(nil)
	if len(mon.Snapshot()) != 0 {
		t.Fatal("removed member still tracked")
	}
}

// TestRingOwnerIndexAmong pins the failover placement walk: ineligible
// members are skipped clockwise, pins hold only while their target is
// eligible, and an all-ineligible ring yields -1.
func TestRingOwnerIndexAmong(t *testing.T) {
	members := []Member{
		{Name: "w0", URL: "http://h:1"},
		{Name: "w1", URL: "http://h:2"},
		{Name: "w2", URL: "http://h:3"},
	}
	r, err := NewRing(members, map[string]string{"pinned": "w1"})
	if err != nil {
		t.Fatal(err)
	}
	all := func(int) bool { return true }
	for _, src := range []string{"a", "b", "c", "pinned"} {
		if got, want := r.OwnerIndexAmong(src, all), r.OwnerIndex(src); got != want {
			t.Fatalf("%s: all-eligible disagrees with OwnerIndex: %d != %d", src, got, want)
		}
	}
	// Excluding the natural owner moves the source elsewhere, and every
	// source still lands somewhere.
	for _, src := range []string{"a", "b", "c", "x", "y", "z"} {
		own := r.OwnerIndex(src)
		got := r.OwnerIndexAmong(src, func(i int) bool { return i != own })
		if got == own || got < 0 {
			t.Fatalf("%s: failover owner %d (natural %d)", src, got, own)
		}
	}
	// A pinned source follows the pin only while the pin is eligible.
	if got := r.OwnerIndexAmong("pinned", all); got != 1 {
		t.Fatalf("pin ignored: %d", got)
	}
	if got := r.OwnerIndexAmong("pinned", func(i int) bool { return i != 1 }); got == 1 || got < 0 {
		t.Fatalf("ineligible pin placement: %d", got)
	}
	if got := r.OwnerIndexAmong("a", func(int) bool { return false }); got != -1 {
		t.Fatalf("all-ineligible ring returned %d, want -1", got)
	}
}
