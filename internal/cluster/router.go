package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/feed"
	"repro/internal/httpx"
	"repro/internal/index"
	"repro/internal/obs"
)

// Pagination bounds, mirroring internal/server: the router's public
// envelope must carry exactly the offset/limit a single node would, so
// the two layers clamp identically.
const (
	defaultPageLimit = 50
	maxPageLimit     = 500
	deepPageLimit    = 10000
)

// Router is the scatter-gather front of a sharded deployment. It owns
// no pipeline: reads fan out to every worker and merge; ingest routes
// to the worker owning the document's source. Failed shards degrade the
// response (partial: true) instead of failing it — a reader losing one
// shard's stories is strictly more useful than a 502.
//
// The router is also the cluster's health authority: a background
// prober (plus passive signals from live traffic) classifies each
// member healthy/suspect/quarantined, scatters skip quarantined members
// without burning their shard timeout, and the feed coordinator moves
// quarantined members' feed runners to their ring successors. Start
// launches the background loops; a router that is never started still
// serves, updating health only from passive traffic signals.
type Router struct {
	client  *Client
	ring    atomic.Pointer[Ring]
	monitor *Monitor
	coord   *coordinator
	ingest  IngestConfig

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// IngestConfig tunes the failover behaviour of routed ingest
// (POST /api/documents). The zero value uses the defaults.
type IngestConfig struct {
	// Retries is how many times a failed ingest is retried against the
	// owner before giving up (attempts = Retries+1).
	Retries int // default 3
	// RetryBase/RetryCap bound the full-jitter backoff between retries.
	RetryBase time.Duration // default 50ms
	RetryCap  time.Duration // default 2s
	// RetryAfter is the hint returned in the Retry-After header when the
	// owner is quarantined and the client should come back later.
	RetryAfter time.Duration // default 10s
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.Retries <= 0 {
		c.Retries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 10 * time.Second
	}
	return c
}

// Config assembles a router.
type Config struct {
	Members []Member
	// Pins maps source → member name, overriding hash placement.
	Pins   map[string]string
	Client ClientConfig
	// Health tunes the background member prober.
	Health HealthConfig
	// Ingest tunes routed-ingest retry behaviour.
	Ingest IngestConfig
	// Feeds are cluster-managed feed definitions: the coordinator starts
	// each source's runner on its ring owner and moves it on membership
	// change or quarantine.
	Feeds []feed.Spec
	// ReconcileInterval is the feed coordinator's steady-state period
	// (default 2s); health transitions trigger immediate reconciles.
	ReconcileInterval time.Duration
}

// NewRouter builds a router over the initial member list.
func NewRouter(cfg Config) (*Router, error) {
	ring, err := NewRing(cfg.Members, cfg.Pins)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		client: NewClient(cfg.Client),
		ingest: cfg.Ingest.withDefaults(),
	}
	rt.ring.Store(ring)
	rt.monitor = newMonitor(cfg.Health, rt.client)
	rt.monitor.SetMembers(cfg.Members)
	if len(cfg.Feeds) > 0 {
		rt.coord, err = newCoordinator(rt, cfg.Feeds, cfg.ReconcileInterval)
		if err != nil {
			return nil, err
		}
		rt.monitor.onChange = rt.coord.kick
	}
	return rt, nil
}

// Start launches the background health prober and (when feeds are
// configured) the feed coordinator. Close stops them.
func (rt *Router) Start() {
	if rt.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt.cancel = cancel
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		rt.monitor.run(ctx)
	}()
	if rt.coord != nil {
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			rt.coord.run(ctx)
		}()
	}
}

// Close stops the background loops started by Start.
func (rt *Router) Close() {
	if rt.cancel == nil {
		return
	}
	rt.cancel()
	rt.wg.Wait()
	rt.cancel = nil
}

// ProbeNow runs one synchronous health-probe round — the determinism
// hook for tests and for operators poking at a cluster.
func (rt *Router) ProbeNow(ctx context.Context) { rt.monitor.ProbeRound(ctx) }

// ReconcileNow runs one synchronous feed-reconcile round (no-op without
// configured feeds).
func (rt *Router) ReconcileNow(ctx context.Context) {
	if rt.coord != nil {
		rt.coord.reconcileRound(ctx)
	}
}

// Health returns the member health monitor.
func (rt *Router) Health() *Monitor { return rt.monitor }

// Ring returns the current ring snapshot.
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

// scatterSet returns the members a fan-out should target: every member
// not currently quarantined. Skipping quarantined members keeps their
// shard timeout out of the critical path — the response is flagged
// partial instead. If everything is quarantined the full list comes
// back (trying known-bad members beats returning an empty page on a
// verdict that may be stale).
func (rt *Router) scatterSet() (members []Member, skipped bool) {
	all := rt.Ring().Members()
	alive := make([]Member, 0, len(all))
	for _, m := range all {
		if rt.monitor.State(m.Name) != MemberQuarantined {
			alive = append(alive, m)
		}
	}
	if len(alive) == 0 {
		return all, false
	}
	return alive, len(alive) < len(all)
}

// recordScatter feeds scatter outcomes to the health monitor: live
// traffic is a free probe.
func (rt *Router) recordScatter(members []Member, errs []error) {
	for i, m := range members {
		if errs[i] == nil || !shardDown(errs[i]) {
			rt.monitor.RecordSuccess(m.Name)
		} else {
			rt.monitor.RecordFailure(m.Name, errs[i].Error())
		}
	}
}

// shardDown reports whether a shard error means the worker itself is
// unhealthy (transport failure, timeout, or 5xx) as opposed to a
// request the worker rejected while perfectly alive (4xx).
func shardDown(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	return true
}

// Handler returns the router's HTTP handler with the always-on
// middleware (recovery, instrumentation), mirroring server.Handler.
func (rt *Router) Handler() http.Handler {
	return httpx.Chain(httpx.Instrument(), httpx.Recover())(rt.rawMux())
}

// HandlerWith wraps the routes in the full httpx production stack.
func (rt *Router) HandlerWith(cfg httpx.Config) http.Handler {
	return httpx.Wrap(rt.rawMux(), cfg)
}

func (rt *Router) rawMux() http.Handler {
	mux := http.NewServeMux()
	debug := obs.DebugMux()
	mux.Handle("GET /metrics", debug)
	mux.Handle("GET /debug/", debug)
	mux.HandleFunc("GET /api/search", func(w http.ResponseWriter, r *http.Request) {
		rt.handleRanked(w, r, "/api/search", "q")
	})
	mux.HandleFunc("GET /api/stories/by-entity", func(w http.ResponseWriter, r *http.Request) {
		rt.handleRanked(w, r, "/api/stories/by-entity", "entity")
	})
	mux.HandleFunc("GET /api/timeline", rt.handleTimeline)
	mux.HandleFunc("GET /api/documents", rt.handleDocuments)
	mux.HandleFunc("POST /api/documents", rt.handleAddDocument)
	mux.HandleFunc("POST /api/documents/select", rt.handleSelect)
	mux.HandleFunc("DELETE /api/documents", rt.handleRemoveDocument)
	mux.HandleFunc("GET /api/feeds", rt.handleFeeds)
	mux.HandleFunc("GET /api/cluster/members", rt.handleMembersGet)
	mux.HandleFunc("PUT /api/cluster/members", rt.handleMembersPut)
	mux.HandleFunc("GET /api/cluster/feeds", rt.handleFeedAssignments)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return mux
}

// encodeJSON matches server.encodeJSON byte for byte: two-space indent,
// trailing newline. json.Indent re-tokenises embedded RawMessage
// contents, so worker-encoded members come out in canonical form and
// the merged envelope is byte-identical to a single node's.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := encodeJSON(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "response encoding failed: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	w.Write(body)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func pageParams(w http.ResponseWriter, vals url.Values) (offset, limit int, ok bool) {
	offset, limit = 0, defaultPageLimit
	if v := vals.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "invalid offset parameter")
			return 0, 0, false
		}
		offset = n
	}
	if v := vals.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "invalid limit parameter")
			return 0, 0, false
		}
		limit = n
	}
	ceil := maxPageLimit
	if vals.Get("deep") == "1" {
		ceil = deepPageLimit
	}
	if limit > ceil {
		limit = ceil
	}
	return offset, limit, true
}

// scatter runs f once per member concurrently and collects the
// results; errs[i] != nil marks shard i failed.
func scatter[T any](ctx context.Context, members []Member, f func(ctx context.Context, m Member) (T, error)) ([]T, []error) {
	out := make([]T, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			out[i], errs[i] = f(ctx, m)
		}(i, m)
	}
	wg.Wait()
	return out, errs
}

// handleRanked serves the two score-ranked scatter endpoints
// (/api/search, /api/stories/by-entity). Global pagination: every shard
// is asked for its top offset+limit with scores, the router merges them
// under index.MergeRanked — the exact ordering the worker index uses —
// and re-emits the winning window's raw members.
func (rt *Router) handleRanked(w http.ResponseWriter, r *http.Request, path, param string) {
	vals := r.URL.Query()
	qv := vals.Get(param)
	if qv == "" {
		httpError(w, http.StatusBadRequest, "missing "+param+" parameter")
		return
	}
	offset, limit, ok := pageParams(w, vals)
	if !ok {
		return
	}
	k := offset + limit
	if k < 0 {
		// offset+limit overflowed int. A window that deep is empty on
		// any real corpus, but the envelope must still carry the true
		// total — forwarding the negative sum as the shard limit would
		// 400 every worker and "merge" a partial zero.
		k = math.MaxInt
	}
	shardLimit := k
	if shardLimit > deepPageLimit {
		shardLimit = deepPageLimit
	}
	q := url.Values{
		param:    {qv},
		"offset": {"0"},
		"limit":  {strconv.Itoa(shardLimit)},
		"scores": {"1"},
		"deep":   {"1"},
	}
	members, skipped := rt.scatterSet()
	envs, errs := scatter(r.Context(), members, func(ctx context.Context, m Member) (*PageEnv, error) {
		return rt.client.GetPage(ctx, m.URL, path, q)
	})
	rt.recordScatter(members, errs)
	partial := skipped
	total := 0
	pages := make([][]index.Ranked, 0, len(envs))
	for si, env := range envs {
		if errs[si] != nil || env == nil {
			partial = true
			continue
		}
		total += env.Total
		page := make([]index.Ranked, 0, len(env.Results))
		for i, raw := range env.Results {
			var idv struct {
				ID uint64 `json:"id"`
			}
			if err := json.Unmarshal(raw, &idv); err != nil {
				continue
			}
			var score float64
			if i < len(env.Scores) {
				score = env.Scores[i]
			}
			page = append(page, index.Ranked{Key: idv.ID, Score: score, Shard: int32(si), Pos: int32(i)})
		}
		pages = append(pages, page)
	}
	merged := index.MergeRanked(pages, k)
	results := make([]json.RawMessage, 0, limit)
	for i := offset; i < len(merged) && i < k; i++ {
		results = append(results, envs[merged[i].Shard].Results[merged[i].Pos])
	}
	if partial {
		metPartial.Inc()
	}
	writeJSON(w, http.StatusOK, PageEnv{
		Total: total, Offset: offset, Limit: limit,
		Results: results, Partial: partial,
	})
}

// handleTimeline merges per-shard chronological windows. Snippets carry
// their ordering keys (timestamp, id) in the payload itself, so no side
// channel is needed; each shard contributes its first offset+limit live
// snippets and the router takes the globally-earliest window.
func (rt *Router) handleTimeline(w http.ResponseWriter, r *http.Request) {
	vals := r.URL.Query()
	e := vals.Get("entity")
	if e == "" {
		httpError(w, http.StatusBadRequest, "missing entity parameter")
		return
	}
	offset, limit, ok := pageParams(w, vals)
	if !ok {
		return
	}
	k := offset + limit
	if k < 0 {
		// offset+limit overflowed int. A window that deep is empty on
		// any real corpus, but the envelope must still carry the true
		// total — forwarding the negative sum as the shard limit would
		// 400 every worker and "merge" a partial zero.
		k = math.MaxInt
	}
	shardLimit := k
	if shardLimit > deepPageLimit {
		shardLimit = deepPageLimit
	}
	q := url.Values{
		"entity": {e},
		"offset": {"0"},
		"limit":  {strconv.Itoa(shardLimit)},
		"deep":   {"1"},
	}
	members, skipped := rt.scatterSet()
	envs, errs := scatter(r.Context(), members, func(ctx context.Context, m Member) (*PageEnv, error) {
		return rt.client.GetPage(ctx, m.URL, "/api/timeline", q)
	})
	rt.recordScatter(members, errs)
	type entry struct {
		ts         time.Time
		id         uint64
		shard, pos int
	}
	partial := skipped
	total := 0
	var all []entry
	for si, env := range envs {
		if errs[si] != nil || env == nil {
			partial = true
			continue
		}
		total += env.Total
		for i, raw := range env.Results {
			var sv struct {
				ID        uint64    `json:"id"`
				Timestamp time.Time `json:"timestamp"`
			}
			if err := json.Unmarshal(raw, &sv); err != nil {
				continue
			}
			all = append(all, entry{ts: sv.Timestamp, id: sv.ID, shard: si, pos: i})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].ts.Equal(all[j].ts) {
			return all[i].ts.Before(all[j].ts)
		}
		return all[i].id < all[j].id
	})
	results := make([]json.RawMessage, 0, limit)
	for i := offset; i < len(all) && i < k; i++ {
		results = append(results, envs[all[i].shard].Results[all[i].pos])
	}
	if partial {
		metPartial.Inc()
	}
	writeJSON(w, http.StatusOK, PageEnv{
		Total: total, Offset: offset, Limit: limit,
		Results: results, Partial: partial,
	})
}

// handleDocuments aggregates every shard's document list, ordered by
// (source, url) for a stable cluster-wide view.
func (rt *Router) handleDocuments(w http.ResponseWriter, r *http.Request) {
	members, skipped := rt.scatterSet()
	bodies, errs := scatter(r.Context(), members, func(ctx context.Context, m Member) ([]byte, error) {
		status, body, err := rt.client.Get(ctx, m.URL, "/api/documents", nil)
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, &StatusError{Code: status}
		}
		return body, nil
	})
	rt.recordScatter(members, errs)
	type doc struct {
		source, url string
		raw         json.RawMessage
	}
	partial := skipped
	var docs []doc
	for si, body := range bodies {
		if errs[si] != nil {
			partial = true
			continue
		}
		var raws []json.RawMessage
		if err := json.Unmarshal(body, &raws); err != nil {
			partial = true
			continue
		}
		for _, raw := range raws {
			var dv struct {
				Source string `json:"source"`
				URL    string `json:"url"`
			}
			if err := json.Unmarshal(raw, &dv); err != nil {
				continue
			}
			docs = append(docs, doc{source: dv.Source, url: dv.URL, raw: raw})
		}
	}
	sort.Slice(docs, func(i, j int) bool {
		if docs[i].source != docs[j].source {
			return docs[i].source < docs[j].source
		}
		return docs[i].url < docs[j].url
	})
	out := make([]json.RawMessage, 0, len(docs))
	for _, d := range docs {
		out = append(out, d.raw)
	}
	if partial {
		metPartial.Inc()
		writeJSON(w, http.StatusOK, map[string]any{"documents": out, "partial": true})
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleAddDocument routes an ingest to the worker owning the
// document's source and relays the worker's response verbatim.
//
// Transient owner failures (transport errors, 5xx) are retried with
// full-jitter backoff: retrying a POST the owner may have already
// applied is safe because ingest is at-least-once by contract — the
// worker's engine acknowledges a redelivered snippet as a duplicate
// (stream.ErrDuplicate) rather than storing it twice. Once the owner is
// quarantined (or retries are exhausted against a quarantined owner)
// the client gets 503 + Retry-After instead of burning more attempts:
// ingest cannot degrade to partial the way reads can, so "come back
// shortly" is the honest answer while the source's runner fails over.
func (rt *Router) handleAddDocument(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var dv struct {
		Source string `json:"source"`
	}
	if err := json.Unmarshal(body, &dv); err != nil {
		httpError(w, http.StatusBadRequest, "invalid document JSON: "+err.Error())
		return
	}
	if dv.Source == "" {
		httpError(w, http.StatusBadRequest, "document needs a source")
		return
	}
	owner := rt.Ring().Owner(dv.Source)
	var lastErr string
	for attempt := 0; ; attempt++ {
		if rt.monitor.State(owner.Name) == MemberQuarantined {
			rt.ingestUnavailable(w, owner.Name, lastErr)
			return
		}
		status, respBody, err := rt.client.Post(r.Context(), http.MethodPost, owner.URL, "/api/documents", nil, body, "application/json")
		if err == nil && status < 500 {
			rt.monitor.RecordSuccess(owner.Name)
			relay(w, status, respBody)
			return
		}
		if err != nil {
			lastErr = err.Error()
		} else {
			lastErr = fmt.Sprintf("status %d", status)
		}
		rt.monitor.RecordFailure(owner.Name, lastErr)
		if attempt >= rt.ingest.Retries {
			if rt.monitor.State(owner.Name) == MemberQuarantined {
				rt.ingestUnavailable(w, owner.Name, lastErr)
			} else {
				httpError(w, http.StatusBadGateway,
					fmt.Sprintf("shard %s failed after %d attempts: %s", owner.Name, attempt+1, lastErr))
			}
			return
		}
		select {
		case <-r.Context().Done():
			httpError(w, http.StatusBadGateway,
				fmt.Sprintf("shard %s: request cancelled during retry: %s", owner.Name, lastErr))
			return
		case <-time.After(ingestBackoff(rt.ingest, attempt)):
		}
	}
}

// ingestBackoff returns the full-jitter delay before retry attempt+1:
// uniform in [0, min(cap, base<<attempt)]. Full jitter (rather than
// equal or decorrelated) because the common failure here is a worker
// restarting — spreading the herd matters more than a tight lower
// bound.
func ingestBackoff(cfg IngestConfig, attempt int) time.Duration {
	ceil := cfg.RetryBase << uint(attempt)
	if ceil > cfg.RetryCap || ceil <= 0 {
		ceil = cfg.RetryCap
	}
	return time.Duration(rand.Int63n(int64(ceil) + 1))
}

// ingestUnavailable answers an ingest whose owner is quarantined: 503
// with a Retry-After hint sized to the readmission cooldown.
func (rt *Router) ingestUnavailable(w http.ResponseWriter, ownerName, lastErr string) {
	secs := int(rt.ingest.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	msg := fmt.Sprintf("shard %s quarantined; retry later", ownerName)
	if lastErr != "" {
		msg += ": " + lastErr
	}
	httpError(w, http.StatusServiceUnavailable, msg)
}

// handleSelect broadcasts a selection change; every worker applies it
// to the documents it holds.
func (rt *Router) handleSelect(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var req struct {
		URLs []string `json:"urls"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid selection JSON: "+err.Error())
		return
	}
	members, skipped := rt.scatterSet()
	_, errs := scatter(r.Context(), members, func(ctx context.Context, m Member) (struct{}, error) {
		status, _, err := rt.client.Post(ctx, http.MethodPost, m.URL, "/api/documents/select", nil, body, "application/json")
		if err != nil {
			return struct{}{}, err
		}
		if status != http.StatusOK {
			return struct{}{}, &StatusError{Code: status}
		}
		return struct{}{}, nil
	})
	rt.recordScatter(members, errs)
	partial := skipped
	for _, e := range errs {
		if e != nil {
			partial = true
		}
	}
	resp := map[string]any{"status": "selected", "count": len(req.URLs)}
	if partial {
		metPartial.Inc()
		resp["partial"] = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRemoveDocument broadcasts a removal; the owning worker answers
// 200, the rest 404. Any 200 wins.
func (rt *Router) handleRemoveDocument(w http.ResponseWriter, r *http.Request) {
	u := r.URL.Query().Get("url")
	if u == "" {
		httpError(w, http.StatusBadRequest, "missing url parameter")
		return
	}
	q := url.Values{"url": {u}}
	members, _ := rt.scatterSet()
	type resp struct {
		status int
		body   []byte
	}
	resps, errs := scatter(r.Context(), members, func(ctx context.Context, m Member) (resp, error) {
		status, body, err := rt.client.Post(ctx, http.MethodDelete, m.URL, "/api/documents", q, nil, "")
		return resp{status, body}, err
	})
	rt.recordScatter(members, errs)
	for i, rp := range resps {
		if errs[i] == nil && rp.status == http.StatusOK {
			relay(w, rp.status, rp.body)
			return
		}
	}
	for i, rp := range resps {
		if errs[i] == nil && rp.status != http.StatusNotFound {
			relay(w, rp.status, rp.body)
			return
		}
	}
	httpError(w, http.StatusNotFound, "document not selected: "+u)
}

// handleFeeds aggregates every worker's feed status keyed by member
// name.
func (rt *Router) handleFeeds(w http.ResponseWriter, r *http.Request) {
	members, skipped := rt.scatterSet()
	bodies, errs := scatter(r.Context(), members, func(ctx context.Context, m Member) ([]byte, error) {
		status, body, err := rt.client.Get(ctx, m.URL, "/api/feeds", nil)
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, &StatusError{Code: status}
		}
		return body, nil
	})
	rt.recordScatter(members, errs)
	workers := make(map[string]json.RawMessage, len(members))
	partial := skipped
	for i, m := range members {
		if errs[i] != nil {
			partial = true
			continue
		}
		workers[m.Name] = bodies[i]
	}
	out := map[string]any{"workers": workers}
	if partial {
		metPartial.Inc()
		out["partial"] = true
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMembersGet reports the live ring configuration.
func (rt *Router) handleMembersGet(w http.ResponseWriter, _ *http.Request) {
	ring := rt.Ring()
	writeJSON(w, http.StatusOK, map[string]any{
		"role":    "router",
		"members": ring.Members(),
		"pins":    ring.Pins(),
	})
}

// handleMembersPut swaps in a new member list and/or pin set without
// restart. The new ring is validated before the atomic swap; in-flight
// requests finish on the ring they started with.
func (rt *Router) handleMembersPut(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Members []Member          `json:"members"`
		Pins    map[string]string `json:"pins"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid members JSON: "+err.Error())
		return
	}
	ring, err := NewRing(req.Members, req.Pins)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	rt.ring.Store(ring)
	rt.monitor.SetMembers(req.Members)
	if rt.coord != nil {
		rt.coord.kick()
	}
	rt.handleMembersGet(w, r)
}

// handleHealthz folds the workers' health into a quorum verdict: the
// cluster is up while a strict majority of workers are not quarantined.
// A minority outage keeps serving (degraded, flagged per worker) — the
// scatter endpoints already mark those responses partial.
//
// The verdict comes from the monitor's cache, not a live fan-out: a
// load balancer polling /healthz every second must not multiply into
// N×QPS probe traffic against the workers, and must not hang for the
// shard timeout when a worker is down. The cache is at most one probe
// interval stale, and passive traffic signals tighten that in practice.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := rt.monitor.Snapshot()
	up := 0
	workers := make(map[string]string, len(snap))
	for _, v := range snap {
		workers[v.Name] = v.State.String()
		if v.State != MemberQuarantined {
			up++
		}
	}
	code := http.StatusOK
	status := "ok"
	if up*2 <= len(snap) {
		code = http.StatusServiceUnavailable
		status = "quorum lost"
	} else if up < len(snap) {
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{"status": status, "workers": workers})
}

// handleFeedAssignments reports the coordinator's assignment table:
// which member runs each cluster-managed source, whether the placement
// is an interim (failover) tenure, and the last cursor the coordinator
// observed for it.
func (rt *Router) handleFeedAssignments(w http.ResponseWriter, _ *http.Request) {
	if rt.coord == nil {
		writeJSON(w, http.StatusOK, map[string]any{"assignments": []any{}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"assignments": rt.coord.statusView()})
}

// relay re-emits a worker's response verbatim.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}
