package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/feed"
	"repro/internal/obs"
)

var (
	metReconciles = obs.GetCounter("storypivot_cluster_feed_reconciles_total",
		"feed coordinator reconcile rounds")
	metAssignPuts = obs.GetCounter("storypivot_cluster_feed_assign_puts_total",
		"assignment PUTs issued to workers")
	metAssignPutErrs = obs.GetCounter("storypivot_cluster_feed_assign_put_errors_total",
		"assignment PUTs that failed (including stale-epoch rejections)")
	metFeedMoves = obs.GetCounter("storypivot_cluster_feed_moves_total",
		"feed sources that changed workers")
)

// coordinator places cluster-managed feed runners: each source runs on
// its ring owner, and when the owner is quarantined the runner moves to
// the owner's ring successor as an *interim* tenure that is withdrawn
// (data dropped, owner resumes from its own durable cursor) when the
// owner is readmitted. See DESIGN.md §3.15 for the handoff protocol and
// its at-least-once reasoning.
//
// Reconciliation is level-triggered: every round recomputes the full
// desired placement from (ring, health) and PUTs each eligible member's
// complete assignment list, so a worker that restarted (losing its
// runners) or missed a round converges on the next one. The kick
// channel collapses bursts of health/membership changes into one
// immediate round.
type coordinator struct {
	rt       *Router
	specs    map[string]feed.Spec
	order    []string // spec sources, sorted
	interval time.Duration
	kickc    chan struct{}
	epoch    atomic.Uint64

	// roundMu serialises reconcile rounds (ticker, kicks, and
	// ReconcileNow may race).
	roundMu sync.Mutex

	mu         sync.Mutex
	assignedTo map[string]string // source → member it verifiably runs on
	interim    map[string]bool   // source → current tenure is interim
	lastCursor map[string]string // source → last durably observed cursor
	caughtUp   map[string]bool
	putErr     map[string]string // member → last assignment-PUT failure
}

func newCoordinator(rt *Router, specs []feed.Spec, interval time.Duration) (*coordinator, error) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	c := &coordinator{
		rt:         rt,
		specs:      make(map[string]feed.Spec, len(specs)),
		interval:   interval,
		kickc:      make(chan struct{}, 1),
		assignedTo: make(map[string]string),
		interim:    make(map[string]bool),
		lastCursor: make(map[string]string),
		caughtUp:   make(map[string]bool),
		putErr:     make(map[string]string),
	}
	for _, sp := range specs {
		if sp.Source == "" {
			return nil, fmt.Errorf("cluster: feed spec with empty source")
		}
		if _, dup := c.specs[sp.Source]; dup {
			return nil, fmt.Errorf("cluster: duplicate feed spec for source %q", sp.Source)
		}
		c.specs[sp.Source] = sp
		c.order = append(c.order, sp.Source)
	}
	sort.Strings(c.order)
	return c, nil
}

// kick requests an immediate reconcile round; coalesces.
func (c *coordinator) kick() {
	select {
	case c.kickc <- struct{}{}:
	default:
	}
}

func (c *coordinator) run(ctx context.Context) {
	c.reconcileRound(ctx)
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.reconcileRound(ctx)
		case <-c.kickc:
			c.reconcileRound(ctx)
		}
	}
}

// assignPut is the wire request of PUT /api/cluster/feeds on a worker.
type assignPut struct {
	Epoch       uint64            `json:"epoch"`
	Assignments []feed.Assignment `json:"assignments"`
}

// assignPutResp is the worker's response: its post-apply runner state.
type assignPutResp struct {
	Epoch   uint64                `json:"epoch"`
	Running []feed.AssignedStatus `json:"running"`
	Stopped map[string]string     `json:"stopped"`
	Dropped []string              `json:"dropped"`
	Error   string                `json:"error"`
}

// reconcileRound drives the cluster toward the desired placement once.
func (c *coordinator) reconcileRound(ctx context.Context) {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	metReconciles.Inc()

	ring := c.rt.Ring()
	members := ring.Members()
	eligible := func(i int) bool {
		return c.rt.monitor.State(members[i].Name) != MemberQuarantined
	}

	// Desired placement: the ring owner if eligible, else its first
	// eligible ring successor as an interim tenure. A source with no
	// eligible member at all is left wherever it is (its current holder
	// is down anyway; nothing useful can move).
	type placement struct {
		member  string
		interim bool
	}
	desired := make(map[string]placement, len(c.specs))
	desiredMember := make(map[string]string, len(c.specs))
	for _, src := range c.order {
		idx := ring.OwnerIndexAmong(src, eligible)
		if idx < 0 {
			continue
		}
		desired[src] = placement{
			member:  members[idx].Name,
			interim: idx != ring.OwnerIndex(src),
		}
		desiredMember[src] = members[idx].Name
	}

	c.mu.Lock()
	lists := make(map[string][]feed.Assignment, len(members))
	for i, m := range members {
		if eligible(i) {
			lists[m.Name] = []feed.Assignment{} // explicit empty list stops strays
		}
	}
	moved := make(map[string]bool, len(desired))
	for _, src := range c.order {
		pl, ok := desired[src]
		if !ok {
			continue
		}
		if _, up := lists[pl.member]; !up {
			continue
		}
		a := feed.Assignment{Spec: c.specs[src], Interim: pl.interim}
		if c.assignedTo[src] != pl.member {
			moved[src] = true
			// A placement change carries the coordinator's last durably
			// observed cursor. For a readmitted owner this is empty — the
			// interim's tenure was dropped and its cursor deleted — which
			// tells the owner to resume from its own restored checkpoint,
			// the exact point interim coverage began at.
			a.Cursor = c.lastCursor[src]
		}
		lists[pl.member] = append(lists[pl.member], a)
	}
	// Losers first: a member about to hand a source away must drain (or
	// drop) it — and we must harvest the resulting cursor — before the
	// gaining member starts the source, or two runners would feed it at
	// once.
	losers := make(map[string]bool)
	for src, owner := range c.assignedTo {
		if pl, ok := desired[src]; ok && pl.member != owner {
			losers[owner] = true
		}
		if _, ok := desired[src]; !ok {
			losers[owner] = true // spec no longer placeable; still drains on PUT
		}
	}
	c.mu.Unlock()

	order := make([]string, 0, len(lists))
	for name := range lists {
		if losers[name] {
			order = append(order, name)
		}
	}
	sort.Strings(order)
	rest := make([]string, 0, len(lists))
	for name := range lists {
		if !losers[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	order = append(order, rest...)

	ep := c.epoch.Add(1)
	memberByName := make(map[string]Member, len(members))
	for _, m := range members {
		memberByName[m.Name] = m
	}

	// blocked: sources whose current (eligible) holder failed its drain
	// PUT this round. Starting them elsewhere now could double-run the
	// source; skip until the drain lands.
	blocked := make(map[string]bool)
	for _, name := range order {
		list := lists[name]
		if len(blocked) > 0 && !losers[name] {
			kept := list[:0]
			for _, a := range list {
				if !blocked[a.Spec.Source] {
					kept = append(kept, a)
				}
			}
			list = kept
		}
		resp, err := c.put(ctx, memberByName[name], ep, list)
		if err != nil {
			c.mu.Lock()
			c.putErr[name] = err.Error()
			if losers[name] {
				for src, owner := range c.assignedTo {
					if owner == name {
						blocked[src] = true
					}
				}
			}
			c.mu.Unlock()
			if shardDown(err) {
				c.rt.monitor.RecordFailure(name, "assign: "+err.Error())
			}
			continue
		}
		c.rt.monitor.RecordSuccess(name)
		c.applyResp(name, desiredMember, resp, moved)
	}
}

// applyResp folds one worker's post-PUT runner state into the
// coordinator's book-keeping.
func (c *coordinator) applyResp(name string, desired map[string]string, resp *assignPutResp, moved map[string]bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.putErr, name)
	for src, cursor := range resp.Stopped {
		// A drained handoff: the final cursor is durable on the old
		// worker; the gainer resumes from it.
		c.lastCursor[src] = cursor
		if c.assignedTo[src] == name {
			delete(c.assignedTo, src)
			delete(c.interim, src)
			delete(c.caughtUp, src)
		}
	}
	for _, src := range resp.Dropped {
		// A withdrawn interim tenure: its data is gone, so its cursors
		// mean nothing. Forgetting the cursor is what makes the next
		// placement (normally the returning owner) resume from its own
		// durable state — and makes a *chained* failover refetch from
		// scratch rather than trust coverage that just got deleted.
		delete(c.lastCursor, src)
		if c.assignedTo[src] == name {
			delete(c.assignedTo, src)
			delete(c.interim, src)
			delete(c.caughtUp, src)
		}
	}
	for _, st := range resp.Running {
		if desired[st.Source] != name {
			continue
		}
		if c.assignedTo[st.Source] != name && moved[st.Source] {
			metFeedMoves.Inc()
		}
		c.assignedTo[st.Source] = name
		c.interim[st.Source] = st.Interim
		c.caughtUp[st.Source] = st.CaughtUp
		// Harvest the runner's position so a later move has a resume
		// point. Prefer the durable (checkpointed) cursor: it is ≤ what
		// the worker itself would resume from after a crash, so an
		// interim starting there can only overlap (deduped), never skip.
		if st.Durable != "" {
			c.lastCursor[st.Source] = st.Durable
		} else if st.Cursor != "" && c.interim[st.Source] {
			// An interim tenure that has not checkpointed yet: its live
			// cursor is still safe to record, because the tenure's data
			// is dropped (and this cursor deleted) before anyone else
			// takes over permanently.
			c.lastCursor[st.Source] = st.Cursor
		}
	}
}

// put sends one worker its full assignment list.
func (c *coordinator) put(ctx context.Context, m Member, ep uint64, list []feed.Assignment) (*assignPutResp, error) {
	metAssignPuts.Inc()
	body, err := json.Marshal(assignPut{Epoch: ep, Assignments: list})
	if err != nil {
		return nil, err
	}
	status, respBody, err := c.rt.client.Post(ctx, http.MethodPut, m.URL, "/api/cluster/feeds", nil, body, "application/json")
	if err != nil {
		metAssignPutErrs.Inc()
		return nil, err
	}
	var resp assignPutResp
	if jerr := json.Unmarshal(respBody, &resp); jerr != nil && status == http.StatusOK {
		metAssignPutErrs.Inc()
		return nil, fmt.Errorf("cluster: worker %s assign response: %w", m.Name, jerr)
	}
	if status == http.StatusConflict {
		// Stale epoch — typically a coordinator restart racing a worker
		// that outlived it. Adopt the worker's epoch; the next round's
		// bump wins everywhere.
		metAssignPutErrs.Inc()
		for {
			cur := c.epoch.Load()
			if resp.Epoch <= cur || c.epoch.CompareAndSwap(cur, resp.Epoch) {
				break
			}
		}
		return nil, &StatusError{Code: status}
	}
	if status != http.StatusOK {
		metAssignPutErrs.Inc()
		return nil, &StatusError{Code: status}
	}
	return &resp, nil
}

// FeedAssignment is one row of the coordinator's assignment table as
// served by GET /api/cluster/feeds on the router.
type FeedAssignment struct {
	Source string `json:"source"`
	// Member is the worker the source verifiably runs on; empty while
	// unplaced (e.g. its drain is pending or no member is eligible).
	Member   string `json:"member,omitempty"`
	Interim  bool   `json:"interim,omitempty"`
	Cursor   string `json:"cursor,omitempty"`
	CaughtUp bool   `json:"caught_up"`
}

func (c *coordinator) statusView() []FeedAssignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]FeedAssignment, 0, len(c.order))
	for _, src := range c.order {
		out = append(out, FeedAssignment{
			Source:   src,
			Member:   c.assignedTo[src],
			Interim:  c.interim[src],
			Cursor:   c.lastCursor[src],
			CaughtUp: c.caughtUp[src],
		})
	}
	return out
}
