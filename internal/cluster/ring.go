// Package cluster partitions a StoryPivot deployment across worker
// processes behind a thin scatter-gather router.
//
// The unit of partitioning is the source: identification is per-source
// by construction (internal/identify shards on SourceID already), and
// alignment only ever links stories whose vocabularies overlap, so a
// worker that owns every snippet of its sources computes exactly the
// same per-source stories a single node would. The router owns no
// pipeline at all — it routes ingest to the owning worker by consistent
// hash, fans reads out to every worker, and merges the per-shard ranked
// pages under the same ordering rules the in-process index uses
// (index.MergeRanked). See DESIGN.md §3.12.
package cluster

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"sort"
)

// Member is one worker shard.
type Member struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// vnodesPerMember is the number of virtual nodes each member projects
// onto the ring. 128 keeps the per-member load spread within a few
// percent while the ring stays small enough to rebuild on every
// membership change.
const vnodesPerMember = 128

// Ring is an immutable consistent-hash ring over the member list, with
// optional per-source pins overriding the hash placement (operators use
// pins to keep a hot source on dedicated hardware, or to drain a member
// before removing it). Reconfiguration builds a new Ring and swaps it
// atomically; in-flight requests keep the ring they started with.
type Ring struct {
	members []Member
	points  []ringPoint      // sorted by hash
	pins    map[string]int   // source → member index
	byName  map[string]int   // member name → index
}

type ringPoint struct {
	hash   uint64
	member int
}

// NewRing builds a ring. Member names must be unique and non-empty;
// URLs must be unique, parseable, and http(s) with a host (a ring with
// two names for one worker double-counts its sources, and a garbage URL
// would only surface as a transport error under load); pins must
// reference existing members.
func NewRing(members []Member, pins map[string]string) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	r := &Ring{
		members: append([]Member(nil), members...),
		points:  make([]ringPoint, 0, len(members)*vnodesPerMember),
		pins:    make(map[string]int, len(pins)),
		byName:  make(map[string]int, len(members)),
	}
	byURL := make(map[string]string, len(members))
	for i, m := range r.members {
		if m.Name == "" || m.URL == "" {
			return nil, fmt.Errorf("cluster: member %d needs both name and url", i)
		}
		if _, dup := r.byName[m.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate member name %q", m.Name)
		}
		u, err := url.Parse(m.URL)
		if err != nil {
			return nil, fmt.Errorf("cluster: member %q: unparseable url %q", m.Name, m.URL)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: member %q: url %q must be http(s) with a host", m.Name, m.URL)
		}
		if prev, dup := byURL[m.URL]; dup {
			return nil, fmt.Errorf("cluster: members %q and %q share url %q", prev, m.Name, m.URL)
		}
		byURL[m.URL] = m.Name
		r.byName[m.Name] = i
		for v := 0; v < vnodesPerMember; v++ {
			r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", m.Name, v)), i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	for src, name := range pins {
		i, ok := r.byName[name]
		if !ok {
			return nil, fmt.Errorf("cluster: pin %q → unknown member %q", src, name)
		}
		r.pins[src] = i
	}
	return r, nil
}

// Members returns the member list (callers must not mutate it).
func (r *Ring) Members() []Member { return r.members }

// Pins returns the source pins as source → member name.
func (r *Ring) Pins() map[string]string {
	out := make(map[string]string, len(r.pins))
	for src, i := range r.pins {
		out[src] = r.members[i].Name
	}
	return out
}

// Owner returns the member owning the given source.
func (r *Ring) Owner(source string) Member {
	return r.members[r.OwnerIndex(source)]
}

// OwnerIndex returns the index of the member owning the given source:
// the pin if one exists, otherwise the first ring point at or after the
// source's hash (wrapping).
func (r *Ring) OwnerIndex(source string) int {
	if i, ok := r.pins[source]; ok {
		return i
	}
	h := hash64(source)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// OwnerIndexAmong returns the index of the member that owns source when
// placement is restricted to members for which eligible(i) is true —
// the failover variant of OwnerIndex. A pinned source stays pinned if
// its pin is eligible; otherwise (and for unpinned sources) the walk
// continues clockwise past ineligible members, so each quarantined
// member's sources spill to its ring successor rather than re-shuffling
// the whole ring. Returns -1 when no member is eligible.
func (r *Ring) OwnerIndexAmong(source string, eligible func(int) bool) int {
	if i, ok := r.pins[source]; ok && eligible(i) {
		return i
	}
	h := hash64(source)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < len(r.points); k++ {
		p := r.points[(start+k)%len(r.points)]
		if eligible(p.member) {
			return p.member
		}
	}
	return -1
}

// hash64 is FNV-1a with a splitmix64 finaliser. Raw FNV of short,
// similar keys ("w2#17") leaves the high bits — which decide ring
// placement — poorly diffused, clustering a member's vnodes and
// skewing ownership several-fold; the finaliser restores avalanche.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
