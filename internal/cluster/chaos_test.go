package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	storypivot "repro"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/event"
	"repro/internal/experiments"
	"repro/internal/feed"
	"repro/internal/server"
	"repro/internal/text"
)

// The chaos test: kill one worker of three mid ingest-and-query-replay
// and prove the cluster self-heals end to end. Every transition is
// driven deterministically (ProbeNow / ReconcileNow / an explicit
// cursor checkpoint) rather than by background timers, so the test
// asserts the protocol, not a race:
//
//  1. three workers with durable stores and cursor files run
//     coordinator-assigned replay feeds, one per source, each pinned to
//     its worker; the victim's source is gated to stall halfway;
//  2. the victim is killed (listener closed, manager crash-aborted, no
//     final checkpoint) with acknowledged-but-uncheckpointed records in
//     its WAL — the at-least-once window;
//  3. scatter queries stay 200 (partial, never 5xx) throughout, and
//     post-quarantine p99 stays within 5× the healthy baseline because
//     the quarantined member is skipped, not timed out;
//  4. ingest for the victim-owned source answers 503 + Retry-After;
//  5. the coordinator moves the source to an interim owner resuming
//     from the last durably observed cursor;
//  6. the victim restarts on the same address and store, restores its
//     WAL past its cursor file, is readmitted by a half-open probe, the
//     interim tenure is dropped, and the runner rebalances home;
//  7. the gate lifts, ingest finishes, and the final differential shows
//     every corpus snippet on exactly one worker exactly once: zero
//     acknowledged-record loss, zero duplicates, despite the refetched
//     WAL tail (absorbed as engine dedup rejections).

type chaosWorker struct {
	s    *server.Server
	mgr  *feed.Manager
	ts   *httptest.Server
	addr string
}

func (w *chaosWorker) kill() {
	w.ts.Close()
	w.mgr.Abort()
	// The pipeline is deliberately NOT closed: a crash writes no final
	// checkpoint, leaving the WAL ahead of the cursor file — the
	// at-least-once window the restart must absorb.
}

func TestClusterChaosFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness replays a full corpus through three workers")
	}
	corpus := datagen.Generate(experiments.CorpusScale(420, 3, 11))
	bySource := corpus.BySource()
	var srcs []string
	for src := range bySource {
		srcs = append(srcs, string(src))
	}
	sort.Strings(srcs)
	if len(srcs) != 3 {
		t.Fatalf("corpus has %d sources, want 3", len(srcs))
	}
	stalled := srcs[0]
	stalledN := len(bySource[event.SourceID(stalled)])
	half := stalledN / 2
	const tail = 8 // acknowledged-but-uncheckpointed records lost to the crash window
	var gate atomic.Int64
	gate.Store(int64(half))

	dir := t.TempDir()
	storeDir := func(g int) string { return filepath.Join(dir, fmt.Sprintf("store%d", g)) }
	cursorPath := func(g int) string { return filepath.Join(dir, fmt.Sprintf("cursors%d.json", g)) }

	specFetch := func(sp feed.Spec) (feed.Fetcher, error) {
		sns, ok := bySource[event.SourceID(sp.Source)]
		if !ok {
			return nil, fmt.Errorf("no corpus for %q", sp.Source)
		}
		var f feed.Fetcher = feed.NewReplay(event.SourceID(sp.Source), sns, 0)
		if sp.Source == stalled {
			f = &gatedFetcher{inner: f, stopAt: &gate}
		}
		return f, nil
	}

	start := func(g int, addr string) *chaosWorker {
		t.Helper()
		s, err := server.New(append(pipelineOpts(), storypivot.WithStorage(storeDir(g)))...)
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := feed.NewManager(s.Pipeline(), feed.Config{
			BackoffBase:  time.Millisecond,
			BackoffCap:   4 * time.Millisecond,
			FetchTimeout: 2 * time.Second,
			BatchSize:    16,
			PollInterval: 3 * time.Millisecond,
			CursorPath:   cursorPath(g),
			// No periodic checkpointing: the test checkpoints explicitly
			// so the durable/acknowledged gap at the crash is exact.
			SpecFetcher: specFetch,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.Start(); err != nil {
			t.Fatal(err)
		}
		s.AttachFeeds(mgr)
		ts := httptest.NewUnstartedServer(s.Handler())
		if addr != "" { // restart on the exact address the ring still holds
			ts.Listener.Close()
			ln, err := net.Listen("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			ts.Listener = ln
		}
		ts.Start()
		return &chaosWorker{s: s, mgr: mgr, ts: ts, addr: ts.Listener.Addr().String()}
	}

	workers := make([]*chaosWorker, 3)
	members := make([]cluster.Member, 3)
	pins := map[string]string{}
	for g := 0; g < 3; g++ {
		workers[g] = start(g, "")
		members[g] = cluster.Member{Name: fmt.Sprintf("w%d", g), URL: "http://" + workers[g].addr}
		pins[srcs[g]] = members[g].Name
	}
	t.Cleanup(func() {
		for _, w := range workers {
			w.ts.Close()
			w.mgr.Close()
			w.s.Close()
		}
	})

	var specs []feed.Spec
	for _, src := range srcs {
		specs = append(specs, feed.Spec{Source: src, Type: "chaos"})
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Members: members,
		Pins:    pins,
		Client:  cluster.ClientConfig{Timeout: 2 * time.Second},
		Health: cluster.HealthConfig{
			FailThreshold: 2,
			Cooldown:      50 * time.Millisecond,
			ProbeTimeout:  time.Second,
		},
		Feeds: specs,
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	ctx := t.Context()

	assignments := func() map[string]cluster.FeedAssignment {
		t.Helper()
		code, body := get(t, rts.URL, "/api/cluster/feeds")
		if code != http.StatusOK {
			t.Fatalf("GET /api/cluster/feeds: %d: %s", code, body)
		}
		var view struct {
			Assignments []cluster.FeedAssignment `json:"assignments"`
		}
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatal(err)
		}
		out := map[string]cluster.FeedAssignment{}
		for _, a := range view.Assignments {
			out[a.Source] = a
		}
		return out
	}
	waitFor := func(d time.Duration, cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	ingested := func(g int) uint64 { return workers[g].s.Pipeline().Engine().Ingested() }

	// --- Placement: one reconcile puts every runner on its pinned owner.
	rt.ReconcileNow(ctx)
	for g, src := range srcs {
		a := assignments()[src]
		if a.Member != members[g].Name || a.Interim {
			t.Fatalf("initial placement of %s: %+v", src, a)
		}
	}

	// --- Ingest until the free sources finish and the gated one stalls.
	waitFor(30*time.Second, func() bool {
		return ingested(0) == uint64(half) &&
			ingested(1) == uint64(len(bySource[event.SourceID(srcs[1])])) &&
			ingested(2) == uint64(len(bySource[event.SourceID(srcs[2])]))
	}, "replay to reach the gate")
	// Durable cursors: the victim's checkpoint pins the stalled source at
	// `half` — the cursor the coordinator must hand any interim owner.
	for _, w := range workers {
		if err := w.mgr.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	rt.ReconcileNow(ctx) // harvest the durable cursors
	if a := assignments()[stalled]; a.Cursor != strconv.Itoa(half) {
		t.Fatalf("coordinator durable cursor for %s = %q, want %d", stalled, a.Cursor, half)
	}

	// --- Query replay: healthy baseline.
	queries := chaosPanel(corpus)
	type reply struct {
		Partial bool `json:"partial"`
	}
	phase := func(n int, wantPartial bool, at string) (p99 time.Duration) {
		t.Helper()
		lat := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			q := queries[i%len(queries)]
			begin := time.Now()
			code, body := get(t, rts.URL, "/api/search?q="+urlEscape(q))
			lat = append(lat, time.Since(begin))
			if code != http.StatusOK {
				t.Fatalf("%s: query %q answered %d (must never 5xx): %s", at, q, code, body)
			}
			var r reply
			if err := json.Unmarshal(body, &r); err != nil {
				t.Fatal(err)
			}
			if r.Partial != wantPartial {
				t.Fatalf("%s: query %q partial=%v, want %v", at, q, r.Partial, wantPartial)
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)*99/100]
	}
	baseline := phase(100, false, "healthy")

	// --- Open the crash window: a tail of records is acknowledged into
	// the victim's WAL but never cursor-checkpointed.
	gate.Store(int64(half + tail))
	waitFor(10*time.Second, func() bool { return ingested(0) == uint64(half+tail) }, "tail past the gate")

	// --- Kill the victim mid-replay.
	victim := workers[0]
	victim.kill()

	// Queries between the kill and the quarantine verdict degrade but
	// never error; their failed fan-outs double as the passive health
	// signal that trips the threshold.
	for i := 0; i < 2; i++ {
		if code, _ := get(t, rts.URL, "/api/search?q="+urlEscape(queries[0])); code != http.StatusOK {
			t.Fatalf("query during failure detection answered %d", code)
		}
	}
	rt.ProbeNow(ctx)
	code, body := get(t, rts.URL, "/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"w0": "quarantined"`) {
		t.Fatalf("healthz after kill: %d %s", code, body)
	}

	// --- Post-quarantine: still 200/partial, and fast — the dead member
	// is skipped outright, so p99 must stay near the healthy baseline.
	outageP99 := phase(100, true, "quarantined")
	if bound := maxDur(5*baseline, 250*time.Millisecond); outageP99 > bound {
		t.Fatalf("post-quarantine p99 %v exceeds bound %v (baseline %v)", outageP99, bound, baseline)
	}

	// --- Ingest addressed to the quarantined owner: 503 + Retry-After.
	doc := fmt.Sprintf(`{"source":%q,"url":"http://example.com/x","title":"Jet crash in Ukraine","published":"2014-07-17T00:00:00Z","body":"A jet crashed near Donetsk in Ukraine and investigators reached the site."}`, stalled)
	resp, err := http.Post(rts.URL+"/api/documents", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest to quarantined owner: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quarantined-owner 503 missing Retry-After")
	}

	// --- Failover: the coordinator hands the source to an interim owner
	// at the durable cursor. The interim refetches the crash-window tail
	// (the victim's uncheckpointed WAL records are invisible — the
	// victim is out of every scatter — so visibility never exceeds one).
	rt.ReconcileNow(ctx)
	a := assignments()[stalled]
	if a.Member == "" || a.Member == "w0" || !a.Interim {
		t.Fatalf("no interim takeover: %+v", a)
	}
	interimG := int(a.Member[1] - '0')
	interimOwn := uint64(len(bySource[event.SourceID(srcs[interimG])]))
	waitFor(10*time.Second, func() bool { return ingested(interimG) == interimOwn+tail }, "interim to refetch the tail")

	// --- Restart the victim on the same address, store, and cursor file.
	workers[0] = start(0, victim.addr)
	if got := ingested(0); got != uint64(half+tail) {
		t.Fatalf("restored WAL has %d snippets, want %d (checkpoint restore)", got, half+tail)
	}

	// Readmission is probe-only, after the cooldown, via half-open probe.
	time.Sleep(120 * time.Millisecond)
	rt.ProbeNow(ctx)
	if code, body := get(t, rts.URL, "/healthz"); code != http.StatusOK || !strings.Contains(string(body), `"w0": "ok"`) {
		t.Fatalf("healthz after readmission: %d %s", code, body)
	}

	// --- Rebalance home: the interim tenure is dropped (rows removed,
	// cursor forgotten) and the owner resumes from its own cursor file.
	rt.ReconcileNow(ctx)
	if a := assignments()[stalled]; a.Member != "w0" || a.Interim {
		t.Fatalf("runner did not rebalance home: %+v", a)
	}
	for _, s := range workers[interimG].s.Pipeline().Sources() {
		if string(s) == stalled {
			t.Fatalf("interim owner %s still holds dropped source %s", a.Member, stalled)
		}
	}

	// The write path recovers with the worker.
	rdoc := strings.Replace(doc, stalled, "recovery-probe", 1)
	resp, err = http.Post(rts.URL+"/api/documents", "application/json", strings.NewReader(rdoc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after readmission: %d, want 200", resp.StatusCode)
	}

	// --- Lift the gate and drain the stream to the end. The restored
	// owner refetches [half, half+tail) — already in its WAL — and the
	// engine dedup turns the redelivery into rejections, not duplicates.
	gate.Store(int64(stalledN))
	waitFor(30*time.Second, func() bool {
		for _, st := range workers[0].mgr.Status() {
			if st.Source == stalled && st.CaughtUp && st.Cursor == strconv.Itoa(stalledN) {
				return true
			}
		}
		return false
	}, "restarted owner to finish the stream")
	var dups uint64
	for _, st := range workers[0].mgr.Status() {
		if st.Source == stalled {
			dups = st.Duplicates
		}
	}
	if dups < tail {
		t.Fatalf("crash-window redelivery saw %d dedup rejections, want >= %d", dups, tail)
	}

	// --- Final differential: every corpus snippet lives on exactly one
	// worker exactly once. Zero acknowledged-record loss, zero
	// duplicates.
	for g, src := range srcs {
		for og := range workers {
			has := false
			for _, s := range workers[og].s.Pipeline().Sources() {
				if string(s) == src {
					has = true
				}
			}
			if has != (og == g) {
				t.Fatalf("source %s on worker %d (has=%v), want only on %d", src, og, has, g)
			}
		}
		want := map[event.SnippetID]bool{}
		for _, sn := range bySource[event.SourceID(src)] {
			want[sn.ID] = true
		}
		got := map[event.SnippetID]int{}
		for _, st := range workers[g].s.Pipeline().Stories(event.SourceID(src)) {
			for _, sn := range st.Snippets {
				got[sn.ID]++
			}
		}
		for id := range want {
			if got[id] != 1 {
				t.Fatalf("source %s snippet %d appears %d times, want exactly 1", src, id, got[id])
			}
		}
		if len(got) != len(want) {
			t.Fatalf("source %s holds %d snippets, corpus has %d", src, len(got), len(want))
		}
	}
	// And the cluster serves full (non-partial) answers again.
	phase(len(queries), false, "healed")
}

// gatedFetcher stalls a replay fetcher at a movable high-water mark:
// fetches at or past the gate report caught-up (so the runner idles at
// PollInterval instead of erroring), fetches below it are capped at the
// gate. The gate instance outlives worker restarts, so a restarted
// victim resumes against the same stall.
type gatedFetcher struct {
	inner  feed.Fetcher
	stopAt *atomic.Int64
}

func (g *gatedFetcher) Source() event.SourceID { return g.inner.Source() }

func (g *gatedFetcher) Fetch(ctx context.Context, cursor string, limit int) (feed.Batch, error) {
	start := 0
	if cursor != "" {
		n, err := strconv.Atoi(cursor)
		if err != nil {
			return feed.Batch{}, err
		}
		start = n
	}
	stop := int(g.stopAt.Load())
	if start >= stop {
		return feed.Batch{Next: cursor, Done: true}, nil
	}
	if limit > stop-start {
		limit = stop - start
	}
	return g.inner.Fetch(ctx, cursor, limit)
}

// chaosPanel picks search tokens that survive the text pipeline
// unchanged, one per source plus a cross-source pair.
func chaosPanel(c *datagen.Corpus) []string {
	seen := map[string]bool{}
	var out []string
	for _, sn := range c.Snippets {
		for _, tm := range sn.Terms {
			if seen[tm.Token] || len(out) >= 4 {
				continue
			}
			seen[tm.Token] = true
			if toks := text.Pipeline(tm.Token); len(toks) == 1 && toks[0] == tm.Token {
				out = append(out, tm.Token)
			}
		}
		if len(out) >= 4 {
			break
		}
	}
	if len(out) >= 2 {
		out = append(out, out[0]+" "+out[1])
	}
	return out
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
