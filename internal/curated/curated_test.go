package curated

import (
	"sort"
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/eval"
	"repro/internal/event"
	"repro/internal/extract"
	"repro/internal/identify"
)

func TestCorpusWellFormed(t *testing.T) {
	docs := Corpus()
	if len(docs) < 15 {
		t.Fatalf("curated corpus has %d documents", len(docs))
	}
	urls := map[string]bool{}
	stories := map[uint64]int{}
	sources := map[event.SourceID]bool{}
	for _, d := range docs {
		if d.Doc.Source == "" || d.Doc.URL == "" || d.Doc.Title == "" || d.Doc.Body == "" || d.Doc.Published.IsZero() {
			t.Fatalf("incomplete document: %+v", d.Doc.URL)
		}
		if urls[d.Doc.URL] {
			t.Fatalf("duplicate URL %s", d.Doc.URL)
		}
		urls[d.Doc.URL] = true
		stories[d.Truth]++
		sources[d.Doc.Source] = true
	}
	if len(stories) != 5 {
		t.Fatalf("stories = %d, want 5", len(stories))
	}
	if len(sources) != 3 {
		t.Fatalf("sources = %d, want 3", len(sources))
	}
	for label, n := range stories {
		if n < 3 {
			t.Errorf("story %d has only %d documents", label, n)
		}
	}
}

func TestExtractionFindsCuratedEntities(t *testing.T) {
	x := extract.NewExtractor(Gazetteer())
	sns, truth := TruthBySnippet(x)
	if len(sns) < 30 {
		t.Fatalf("extracted %d snippets", len(sns))
	}
	if len(truth) != len(sns) {
		t.Fatalf("truth covers %d of %d", len(truth), len(sns))
	}
	// Every story's snippets must mention its anchor entity somewhere.
	anchors := map[uint64]event.Entity{
		StoryMH17:     "UKR",
		StoryGaza:     "GAZA",
		StoryEbola:    "EBOLA",
		StoryScotland: "SCO",
		StoryGoogle:   "GOOG",
	}
	found := map[uint64]bool{}
	for _, sn := range sns {
		if sn.HasEntity(anchors[truth[sn.ID]]) {
			found[truth[sn.ID]] = true
		}
	}
	for label, anchor := range anchors {
		if !found[label] {
			t.Errorf("story %d: anchor entity %s never extracted", label, anchor)
		}
	}
}

// TestCuratedPipelineQuality is the demo's curated-story comparison
// (paper §4.2): the full extraction + identification + alignment pipeline
// must reconstruct the five real-world stories with high fidelity.
func TestCuratedPipelineQuality(t *testing.T) {
	x := extract.NewExtractor(Gazetteer())
	sns, rawTruth := TruthBySnippet(x)
	sort.Sort(event.ByTimestamp(sns))

	// Curated story arcs span July–September with multi-week coverage
	// gaps; a 14-day window fragments them by design (that trade-off is
	// experiment E3). For sparse archival data the demo selects complete
	// mode — exactly the mode-choice interaction of paper §4.1.
	idCfg := identify.DefaultConfig()
	idCfg.Mode = identify.ModeComplete
	ids := identify.RunAll(sns, idCfg, nil)
	alCfg := align.DefaultConfig()
	alCfg.Slack = 60 * 24 * time.Hour
	res := align.Align(identify.StoriesBySource(ids), alCfg)

	truth := eval.Assignment{}
	for id, l := range rawTruth {
		truth[id] = l
	}
	pred := eval.FromIntegrated(res.Integrated)
	prf := eval.Pairwise(pred, truth)
	if prf.F1 < 0.7 {
		t.Fatalf("curated corpus F1 = %.3f (P=%.3f R=%.3f)", prf.F1, prf.Precision, prf.Recall)
	}
	// The five stories must not collapse into fewer than 4 integrated
	// stories nor shatter into more than 12.
	if n := len(res.Integrated); n < 4 || n > 12 {
		t.Fatalf("curated corpus produced %d integrated stories", n)
	}
	// MH17 coverage must align across at least 2 sources.
	srcCount := 0
	for _, is := range res.Integrated {
		hasMH17 := false
		for _, sn := range is.Snippets() {
			if truth[sn.ID] == StoryMH17 {
				hasMH17 = true
				break
			}
		}
		if hasMH17 && len(is.Sources()) > srcCount {
			srcCount = len(is.Sources())
		}
	}
	if srcCount < 2 {
		t.Fatalf("MH17 story aligned across %d sources", srcCount)
	}
}
