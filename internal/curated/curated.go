// Package curated provides the hand-curated evaluation corpus the demo
// uses for quality comparison (paper §4.2: "to understand the actual
// performance of STORYPIVOT and to be able to compare it against existing
// approaches, we will provide users with manually curated stories taken
// from well-known news providers").
//
// The corpus covers five real-world stories of mid-2014 — the MH17
// downing, the Gaza conflict, the Ebola outbreak, the Scottish
// independence referendum, and the Google/EU antitrust case — each
// reported by up to three sources with source-specific wording, lag, and
// exclusive angles. Every document carries its ground-truth story label,
// so identification and alignment quality are measurable end to end
// through the extraction pipeline.
package curated

import (
	"time"

	"repro/internal/event"
	"repro/internal/extract"
)

// Story labels of the curated corpus.
const (
	StoryMH17 uint64 = iota + 1
	StoryGaza
	StoryEbola
	StoryScotland
	StoryGoogle
)

// Document pairs a raw document with its ground-truth story.
type Document struct {
	Doc   extract.Document
	Truth uint64
}

func day(m time.Month, d int) time.Time {
	return time.Date(2014, m, d, 0, 0, 0, 0, time.UTC)
}

// Gazetteer returns the entity gazetteer covering the curated corpus.
func Gazetteer() *extract.Gazetteer {
	g := extract.DefaultGazetteer()
	for surface, e := range map[string]event.Entity{
		"gaza":                      "GAZA",
		"hamas":                     "HAMAS",
		"ebola":                     "EBOLA",
		"liberia":                   "LBR",
		"sierra leone":              "SLE",
		"guinea":                    "GIN",
		"world health organization": "WHO",
		"scotland":                  "SCO",
		"scottish":                  "SCO",
		"edinburgh":                 "SCO",
		"united kingdom":            "GBR",
		"britain":                   "GBR",
		"london":                    "GBR",
		"brussels":                  "EU",
	} {
		g.Add(surface, e)
	}
	return g
}

// Corpus returns the curated documents in chronological order.
func Corpus() []Document {
	return []Document{
		// ------------------------------------------------ MH17 --------
		{Truth: StoryMH17, Doc: extract.Document{
			Source: "nyt", URL: "http://nytimes.com/mh17-1", Published: day(time.July, 17),
			Title: "Malaysia Airlines Jet Crashes Over Ukraine",
			Body: "A Malaysia Airlines Boeing 777 carrying 298 people crashed in eastern Ukraine " +
				"near Donetsk on Thursday after being shot down, officials said.\n\n" +
				"The plane crashed in territory held by pro-Russia separatists, and American " +
				"officials said a missile shot the plane down over Ukraine.",
		}},
		{Truth: StoryMH17, Doc: extract.Document{
			Source: "wsj", URL: "http://wsj.com/mh17-1", Published: day(time.July, 17),
			Title: "Passenger Plane Shot Down Over Eastern Ukraine",
			Body: "A Malaysia Airlines plane crashed over eastern Ukraine after being struck by a " +
				"missile, killing all aboard, in an escalation of the Ukraine conflict.\n\n" +
				"Officials in Ukraine accused separatists of shooting down the plane; Russia denied involvement.",
		}},
		{Truth: StoryMH17, Doc: extract.Document{
			Source: "guardian", URL: "http://guardian.example/mh17-1", Published: day(time.July, 18),
			Title: "World Demands Answers Over Downed Jet in Ukraine",
			Body: "Investigators demanded access to the crash site in eastern Ukraine where the " +
				"Malaysia Airlines plane was shot down by a missile.\n\n" +
				"The United Nations called for a full and independent investigation of the crash.",
		}},
		{Truth: StoryMH17, Doc: extract.Document{
			Source: "nyt", URL: "http://nytimes.com/mh17-2", Published: day(time.July, 21),
			Title: "Investigators Blocked From Ukraine Crash Site",
			Body: "International investigators were blocked from the site in Ukraine where the " +
				"Malaysia Airlines plane crashed, as evidence of the missile attack degraded.\n\n" +
				"The Netherlands, which lost the most citizens in the crash, pressed Russia to " +
				"help secure access to the site in Ukraine.",
		}},
		{Truth: StoryMH17, Doc: extract.Document{
			Source: "wsj", URL: "http://wsj.com/mh17-2", Published: day(time.July, 22),
			Title: "Dutch Experts Reach Ukraine Crash Site",
			Body: "Investigators from the Netherlands finally reached the Ukraine crash site and " +
				"began recovering the remains of victims of the downed Malaysia Airlines plane.\n\n" +
				"Amsterdam declared a day of mourning as the first bodies from the Ukraine crash " +
				"arrived in the Netherlands.",
		}},
		{Truth: StoryMH17, Doc: extract.Document{
			Source: "guardian", URL: "http://guardian.example/mh17-2", Published: day(time.September, 9),
			Title: "Dutch Report: Jet Over Ukraine Broke Up After External Impacts",
			Body: "A preliminary Dutch report into the Malaysia Airlines crash over Ukraine found the " +
				"plane broke up in the air after being hit by high-energy objects, consistent with a missile.",
		}},

		// ------------------------------------------------ Gaza --------
		{Truth: StoryGaza, Doc: extract.Document{
			Source: "nyt", URL: "http://nytimes.com/gaza-1", Published: day(time.July, 8),
			Title: "Israel Launches Offensive in Gaza",
			Body: "Israel launched a military offensive against Hamas in Gaza, with airstrikes " +
				"hitting dozens of targets after rocket fire into Israel.\n\n" +
				"Hamas fired rockets toward Israeli cities as the Gaza conflict escalated.",
		}},
		{Truth: StoryGaza, Doc: extract.Document{
			Source: "guardian", URL: "http://guardian.example/gaza-1", Published: day(time.July, 9),
			Title: "Gaza Conflict Escalates as Airstrikes Continue",
			Body: "Airstrikes pounded Gaza for a second day as Israel pressed its offensive against " +
				"Hamas and rockets continued to fly.\n\n" +
				"Casualties in Gaza mounted and hospitals struggled with the wounded.",
		}},
		{Truth: StoryGaza, Doc: extract.Document{
			Source: "nyt", URL: "http://nytimes.com/gaza-2", Published: day(time.July, 17),
			Title: "Israel Begins Ground Operation in Gaza",
			Body: "Israel sent ground forces into Gaza, widening its offensive against Hamas after " +
				"ceasefire talks collapsed.\n\n" +
				"The ground operation targeted tunnels Hamas used to cross into Israel from Gaza.",
		}},
		{Truth: StoryGaza, Doc: extract.Document{
			Source: "wsj", URL: "http://wsj.com/gaza-1", Published: day(time.July, 18),
			Title: "Ground Forces Push Into Gaza",
			Body: "Israeli ground forces pushed into Gaza in the largest operation of the conflict, " +
				"with Hamas vowing resistance.\n\n" +
				"The United Nations warned of a humanitarian crisis in Gaza as casualties rose.",
		}},
		{Truth: StoryGaza, Doc: extract.Document{
			Source: "guardian", URL: "http://guardian.example/gaza-2", Published: day(time.August, 26),
			Title: "Open-Ended Ceasefire Reached in Gaza",
			Body: "Israel and Hamas agreed to an open-ended ceasefire, ending seven weeks of " +
				"fighting in Gaza.\n\n" +
				"Celebrations broke out in Gaza as the ceasefire took hold; both Israel and Hamas claimed victory.",
		}},

		// ------------------------------------------------ Ebola -------
		{Truth: StoryEbola, Doc: extract.Document{
			Source: "nyt", URL: "http://nytimes.com/ebola-1", Published: day(time.July, 27),
			Title: "Ebola Outbreak Spreads in West Africa",
			Body: "The Ebola outbreak in West Africa spread further as Liberia closed most of its " +
				"borders and Sierra Leone declared an emergency.\n\n" +
				"The World Health Organization said the Ebola epidemic in Guinea, Liberia and " +
				"Sierra Leone was outpacing containment efforts.",
		}},
		{Truth: StoryEbola, Doc: extract.Document{
			Source: "guardian", URL: "http://guardian.example/ebola-1", Published: day(time.July, 28),
			Title: "Liberia Shuts Borders as Ebola Spreads",
			Body: "Liberia closed its borders to slow the Ebola outbreak as the death toll in West " +
				"Africa climbed.\n\n" +
				"Health workers fighting Ebola in Sierra Leone and Guinea reported being overwhelmed.",
		}},
		{Truth: StoryEbola, Doc: extract.Document{
			Source: "wsj", URL: "http://wsj.com/ebola-1", Published: day(time.August, 8),
			Title: "WHO Declares Ebola an International Emergency",
			Body: "The World Health Organization declared the Ebola outbreak in West Africa an " +
				"international public health emergency.\n\n" +
				"The declaration urged screening at borders in Liberia, Sierra Leone and Guinea " +
				"to contain the Ebola epidemic.",
		}},
		{Truth: StoryEbola, Doc: extract.Document{
			Source: "nyt", URL: "http://nytimes.com/ebola-2", Published: day(time.September, 16),
			Title: "US to Send Troops to Fight Ebola in Liberia",
			Body: "The United States announced it would send troops and build treatment centers in " +
				"Liberia to fight the Ebola epidemic.\n\n" +
				"The World Health Organization welcomed the escalated response to the Ebola outbreak.",
		}},

		// ------------------------------------------------ Scotland ----
		{Truth: StoryScotland, Doc: extract.Document{
			Source: "guardian", URL: "http://guardian.example/scot-1", Published: day(time.September, 7),
			Title: "Scottish Independence Poll Puts Yes Ahead",
			Body: "A poll put the Scottish independence campaign ahead for the first time, sending " +
				"shockwaves through Britain days before the referendum.\n\n" +
				"Leaders in London scrambled to promise Scotland new powers if it voted to stay " +
				"in the United Kingdom.",
		}},
		{Truth: StoryScotland, Doc: extract.Document{
			Source: "wsj", URL: "http://wsj.com/scot-1", Published: day(time.September, 8),
			Title: "Markets Rattled by Scotland Referendum Poll",
			Body: "The pound fell sharply after a poll showed the Scottish independence referendum " +
				"too close to call.\n\n" +
				"Investors weighed the consequences for Britain if Scotland voted to leave the United Kingdom.",
		}},
		{Truth: StoryScotland, Doc: extract.Document{
			Source: "nyt", URL: "http://nytimes.com/scot-1", Published: day(time.September, 19),
			Title: "Scotland Votes to Stay in United Kingdom",
			Body: "Scotland voted to remain in the United Kingdom, rejecting independence in a " +
				"referendum with record turnout.\n\n" +
				"The referendum result was greeted with relief in London and promises of further " +
				"devolution for Scotland.",
		}},
		{Truth: StoryScotland, Doc: extract.Document{
			Source: "guardian", URL: "http://guardian.example/scot-2", Published: day(time.September, 19),
			Title: "Scotland Says No: Referendum Rejects Independence",
			Body: "Scotland rejected independence in the referendum, with the No campaign winning " +
				"clearly as turnout hit historic highs.\n\n" +
				"Edinburgh and Glasgow diverged in the vote, but Scotland as a whole chose the United Kingdom.",
		}},

		// ------------------------------------------------ Google ------
		{Truth: StoryGoogle, Doc: extract.Document{
			Source: "wsj", URL: "http://wsj.com/goog-1", Published: day(time.July, 18),
			Title: "Google Battles Yelp Over Search Results",
			Body: "Google rival Yelp said the search giant promotes its own content in search " +
				"results at the expense of users, escalating the antitrust fight.\n\n" +
				"Regulators in Brussels weighed reopening the Google antitrust settlement after " +
				"complaints from Yelp and others.",
		}},
		{Truth: StoryGoogle, Doc: extract.Document{
			Source: "nyt", URL: "http://nytimes.com/goog-1", Published: day(time.September, 5),
			Title: "Europe Hardens Stance in Google Antitrust Case",
			Body: "The European Union signaled a harder line in the Google antitrust case, saying " +
				"the proposed search settlement may not go far enough.\n\n" +
				"Critics including Yelp pressed Brussels to demand deeper changes to Google search results.",
		}},
		{Truth: StoryGoogle, Doc: extract.Document{
			Source: "guardian", URL: "http://guardian.example/goog-1", Published: day(time.September, 23),
			Title: "Google Antitrust Settlement in Doubt",
			Body: "The Google antitrust settlement with the European Union appeared in doubt as " +
				"the incoming competition chief promised a fresh look at the search case.",
		}},
	}
}

// TruthBySnippet runs the corpus through an extractor and returns the
// snippets together with their ground-truth labels (one label per
// document, inherited by all snippets extracted from it).
func TruthBySnippet(x *extract.Extractor) ([]*event.Snippet, map[event.SnippetID]uint64) {
	var sns []*event.Snippet
	truth := make(map[event.SnippetID]uint64)
	for _, cd := range Corpus() {
		doc := cd.Doc
		got, err := x.Extract(&doc)
		if err != nil {
			continue
		}
		for _, sn := range got {
			truth[sn.ID] = cd.Truth
			sns = append(sns, sn)
		}
	}
	return sns, truth
}
