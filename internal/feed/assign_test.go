package feed

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
)

// remSink is a recSink that also implements SourceRemover, recording
// which sources were removed — the worker-side half of an interim
// tenure withdrawal.
type remSink struct {
	*recSink
	mu      sync.Mutex
	removed []event.SourceID
}

func (s *remSink) RemoveSource(src event.SourceID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removed = append(s.removed, src)
	return true
}

func (s *remSink) removedSources() []event.SourceID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]event.SourceID(nil), s.removed...)
}

// testSpecFetcher serves "test" specs from a fixed snippet corpus.
func testSpecFetcher(corpus map[string][]*event.Snippet) SpecFetcher {
	return func(sp Spec) (Fetcher, error) {
		sns, ok := corpus[sp.Source]
		if !ok {
			return nil, fmt.Errorf("no corpus for %q", sp.Source)
		}
		return NewReplay(event.SourceID(sp.Source), sns, sp.IDOffset), nil
	}
}

func TestAssignLifecycle(t *testing.T) {
	sink := &remSink{recSink: newRecSink(0)}
	sink.dedup = true
	cfg := fastCfg()
	cfg.SpecFetcher = testSpecFetcher(map[string][]*event.Snippet{
		"a": makeSnips("a", 10),
		"b": makeSnips("b", 10),
	})
	m, err := NewManager(sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Assign(nil); !errors.Is(err, ErrManagerState) {
		t.Fatalf("Assign before Start: %v", err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	specA := Spec{Source: "a", Type: "test"}
	specB := Spec{Source: "b", Type: "test", IDOffset: 100}
	res, err := m.Assign([]Assignment{{Spec: specA}, {Spec: specB, Interim: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Running) != 2 || len(res.Stopped) != 0 || len(res.Dropped) != 0 {
		t.Fatalf("initial assign: %+v", res)
	}
	waitFor(t, 10*time.Second, func() bool { return sink.accepted() >= 20 }, "both sources ingested")

	// Idempotent re-send: same specs, nothing restarts, state reported.
	res, err = m.Assign([]Assignment{{Spec: specA}, {Spec: specB, Interim: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stopped) != 0 || len(res.Dropped) != 0 {
		t.Fatalf("idempotent assign stopped something: %+v", res)
	}
	for _, st := range res.Running {
		if st.Source == "b" && !st.Interim {
			t.Fatal("interim flag lost on re-send")
		}
	}

	// Withdraw both: the owner drains (final cursor reported and kept),
	// the interim drops (data removed, cursors forgotten).
	waitFor(t, 10*time.Second, func() bool {
		for _, st := range m.Assigned() {
			if !st.CaughtUp {
				return false
			}
		}
		return true
	}, "assigned runners caught up")
	res, err = m.Assign(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stopped["a"]; got != "10" {
		t.Fatalf("drained cursor for a = %q, want \"10\"", got)
	}
	if len(res.Dropped) != 1 || res.Dropped[0] != "b" {
		t.Fatalf("dropped = %v, want [b]", res.Dropped)
	}
	if rm := sink.removedSources(); len(rm) != 1 || rm[0] != "b" {
		t.Fatalf("RemoveSource calls = %v, want [b]", rm)
	}
	if len(m.Assigned()) != 0 {
		t.Fatalf("runners survive withdrawal: %+v", m.Assigned())
	}

	// Re-assigning the drained source resumes from its kept cursor: the
	// dedup sink sees no redelivery at all.
	accepted := sink.accepted()
	if _, err := m.Assign([]Assignment{{Spec: specA}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool {
		for _, st := range m.Assigned() {
			if st.Source == "a" && st.CaughtUp {
				return true
			}
		}
		return false
	}, "re-assigned source caught up")
	if sink.accepted() != accepted || sink.dupRejections() != 0 {
		t.Fatalf("resume re-ingested: accepted %d→%d, dups %d",
			accepted, sink.accepted(), sink.dupRejections())
	}

	// The dropped interim source lost its cursor: re-assigning refetches
	// from the start (10 fresh snippets on a sink that forgot nothing —
	// dedup absorbs them as the engine would after a RemoveSource).
	if _, err := m.Assign([]Assignment{{Spec: specA}, {Spec: specB}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return sink.dupRejections() >= 10 }, "interim refetch deduped")
}

func TestAssignValidation(t *testing.T) {
	sink := newRecSink(0)
	cfg := fastCfg()
	cfg.SpecFetcher = testSpecFetcher(map[string][]*event.Snippet{"a": nil})
	m, err := NewManager(sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(NewReplay("static", nil, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, err := m.Assign([]Assignment{{Spec: Spec{Source: "", Type: "test"}}}); err == nil {
		t.Fatal("empty source accepted")
	}
	if _, err := m.Assign([]Assignment{
		{Spec: Spec{Source: "a", Type: "test"}},
		{Spec: Spec{Source: "a", Type: "test"}},
	}); err == nil {
		t.Fatal("duplicate source accepted")
	}
	if _, err := m.Assign([]Assignment{{Spec: Spec{Source: "static", Type: "test"}}}); err == nil {
		t.Fatal("static-fetcher clash accepted")
	}
	if _, err := m.Assign([]Assignment{{Spec: Spec{Source: "nope", Type: "test"}}}); err == nil {
		t.Fatal("unbuildable spec accepted")
	}
	// A rejected PUT must not half-apply: valid source "a" rode along
	// with the clash above and must not be running.
	if got := len(m.Assigned()); got != 0 {
		t.Fatalf("rejected assign left %d runners", got)
	}
}
