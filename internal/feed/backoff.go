package feed

import (
	"math/rand"
	"time"
)

// backoff computes retry sleeps: exponential growth doubled per
// consecutive failure, capped, with full jitter (uniform in [0, d]).
// Full jitter — rather than jittering around the exponential value —
// decorrelates a fleet of runners that all started failing at the same
// moment (the thundering-herd case when a shared upstream recovers).
//
// A backoff is owned by a single runner goroutine; it is not safe for
// concurrent use.
type backoff struct {
	base time.Duration
	cap  time.Duration
	rng  *rand.Rand
	n    int // consecutive failures so far
}

func newBackoff(base, cap time.Duration, seed int64) *backoff {
	return &backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// next registers one more failure and returns the sleep before the
// next attempt.
func (b *backoff) next() time.Duration {
	b.n++
	d := b.base
	// Shift with overflow care: past ~63 doublings (or past the cap)
	// the exponential is saturated anyway.
	for i := 1; i < b.n && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(b.rng.Int63n(int64(d) + 1))
}

// reset clears the failure streak after a success.
func (b *backoff) reset() { b.n = 0 }
