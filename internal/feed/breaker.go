package feed

import (
	"sync"
	"time"
)

// breakerState is the circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a consecutive-failure circuit breaker:
//
//	closed ──(threshold consecutive failures)──▶ open
//	open ──(cooldown elapses)──▶ half-open (one probe admitted)
//	half-open ──probe success──▶ closed
//	half-open ──probe failure──▶ open (cooldown restarts)
//
// Mutations come from the owning runner goroutine; the mutex exists so
// Status snapshots from API handlers read a consistent state.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     breakerState
	failures  int // consecutive, since last success
	openedAt  time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a fetch may proceed now. While open it returns
// false until the cooldown elapses, at which point the breaker moves
// to half-open and admits exactly one probe. wait is how long to sleep
// before asking again when the answer is no.
func (b *breaker) allow(now time.Time) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if remaining := b.cooldown - now.Sub(b.openedAt); remaining > 0 {
			return false, remaining
		}
		b.state = breakerHalfOpen
		return true, 0
	default:
		// closed, or half-open with the probe already admitted (the
		// runner is single-threaded, so only one probe is in flight).
		return true, 0
	}
}

// success records a successful fetch, closing the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.state = breakerClosed
}

// failure records a failed fetch. It returns true when this failure
// opened the breaker (either the closed→open trip or a failed
// half-open probe re-opening it).
func (b *breaker) failure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		return true
	case breakerClosed:
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			return true
		}
	}
	return false
}

// snapshot returns the state and consecutive-failure count.
func (b *breaker) snapshot() (breakerState, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.failures
}
