package feed

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/event"
	"repro/internal/storage"
	"repro/internal/stream"
)

// Manager owns the feed runners, the shared bounded ingest queue, the
// dead-letter queue, and the cursor checkpoints. Lifecycle: NewManager
// → Add fetchers → Start → (serve) → Close. Close stops the runners,
// drains the queue fully, writes a final cursor checkpoint, and only
// then returns — the drain ordering the server relies on.
type Manager struct {
	cfg  Config
	sink Sink
	dlq  *storage.DLQ

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan qItem

	runnerWG sync.WaitGroup
	workerWG sync.WaitGroup
	loopWG   sync.WaitGroup

	// assignMu serialises Assign calls (the coordinator's reconcile
	// PUTs) so overlapping reconfigurations cannot interleave their
	// stop/start phases.
	assignMu sync.Mutex

	mu       sync.Mutex
	runners  []*runner
	cursors  map[string]cursorEntry // restored from CursorPath at New
	lastCkpt map[string]cursorEntry // last durably checkpointed cursors
	started  bool
	closing  bool
	closed   bool
}

// qItem is one queued snippet awaiting ingest; wg is the owning
// batch's acknowledgement barrier.
type qItem struct {
	sn *event.Snippet
	r  *runner
	wg *sync.WaitGroup
}

// ErrManagerState reports a lifecycle misuse (Add after Start, double
// Start, Close before Start, ...).
var ErrManagerState = errors.New("feed: invalid manager lifecycle")

// cursorFile is the persisted resume state, one entry per source.
type cursorFile struct {
	Version int                    `json:"version"`
	Sources map[string]cursorEntry `json:"sources"`
}

type cursorEntry struct {
	Cursor   string `json:"cursor"`
	CaughtUp bool   `json:"caught_up"`
}

const cursorVersion = 1

// NewManager creates a manager ingesting into sink. When cfg.DLQDir is
// set the dead-letter queue is opened (and replayed) immediately; when
// cfg.CursorPath is set, previously checkpointed cursors are restored
// so Added fetchers resume where the last run acknowledged.
func NewManager(sink Sink, cfg Config) (*Manager, error) {
	if sink == nil {
		return nil, errors.New("feed: nil sink")
	}
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:     cfg,
		sink:    sink,
		cursors: make(map[string]cursorEntry),
		queue:   make(chan qItem, cfg.QueueDepth),
	}
	m.ctx, m.cancel = context.WithCancel(context.Background())
	if cfg.DLQDir != "" {
		dlq, err := storage.OpenDLQ(cfg.DLQDir)
		if err != nil {
			return nil, fmt.Errorf("feed: opening DLQ: %w", err)
		}
		m.dlq = dlq
	}
	if cfg.CursorPath != "" {
		if err := m.loadCursors(); err != nil {
			if m.dlq != nil {
				m.dlq.Close()
			}
			return nil, err
		}
	}
	// Restored cursors are by definition durable: they were read from
	// the checkpoint file this process will keep appending to.
	m.lastCkpt = make(map[string]cursorEntry, len(m.cursors))
	for src, ce := range m.cursors {
		m.lastCkpt[src] = ce
	}
	return m, nil
}

// loadCursors restores the cursor file; a missing file is a fresh
// start, a corrupt one is an error (losing cursors silently would
// silently re-ingest everything — at-least-once makes that *safe*, but
// the operator should know).
func (m *Manager) loadCursors() error {
	f, err := os.Open(m.cfg.CursorPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("feed: opening cursor file: %w", err)
	}
	defer f.Close()
	var cf cursorFile
	if err := json.NewDecoder(f).Decode(&cf); err != nil {
		return fmt.Errorf("feed: decoding cursor file: %w", err)
	}
	if cf.Version != cursorVersion {
		return fmt.Errorf("feed: unsupported cursor file version %d", cf.Version)
	}
	if cf.Sources != nil {
		m.cursors = cf.Sources
	}
	return nil
}

// Add registers a fetcher. All fetchers must be added before Start.
// The runner resumes from the source's restored cursor, if any.
func (m *Manager) Add(f Fetcher) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return fmt.Errorf("%w: Add after Start", ErrManagerState)
	}
	src := string(f.Source())
	for _, r := range m.runners {
		if r.src == src {
			return fmt.Errorf("feed: duplicate source %q", src)
		}
	}
	r := &runner{
		m:      m,
		f:      f,
		src:    src,
		bo:     newBackoff(m.cfg.BackoffBase, m.cfg.BackoffCap, m.cfg.Seed+int64(len(m.runners))),
		br:     newBreaker(m.cfg.BreakerThreshold, m.cfg.BreakerCooldown),
		cursor: m.cursors[src].Cursor,
		state:  StateHealthy,
	}
	m.runners = append(m.runners, r)
	return nil
}

// Start launches the ingest workers, one runner per fetcher, and the
// periodic checkpoint loop.
func (m *Manager) Start() error {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return fmt.Errorf("%w: double Start", ErrManagerState)
	}
	m.started = true
	for i := 0; i < m.cfg.IngestWorkers; i++ {
		m.workerWG.Add(1)
		go m.worker()
	}
	for _, r := range m.runners {
		m.startRunnerLocked(r)
	}
	if m.cfg.CheckpointEvery > 0 {
		m.loopWG.Add(1)
		go m.checkpointLoop()
	}
	// Gauge refresh happens outside m.mu: it reads runner state through
	// Status, which takes the lock itself.
	m.mu.Unlock()
	m.updateStateGauges()
	return nil
}

// startRunnerLocked launches one runner goroutine with its own
// cancellable context nested inside the manager's, so Assign can stop
// it individually while Close still stops everything at once. Caller
// holds m.mu.
func (m *Manager) startRunnerLocked(r *runner) {
	rctx, cancel := context.WithCancel(m.ctx)
	r.cancel = cancel
	r.done = make(chan struct{})
	m.runnerWG.Add(1)
	go func() {
		defer close(r.done)
		r.run(rctx)
	}()
}

// worker drains the shared queue into the sink. Duplicate rejections
// (engine dedup or storage ID collision) are acknowledgements — that
// is what makes at-least-once redelivery after a cursor rollback safe.
// Other sink rejections are dead-lettered so the batch they rode in on
// is not poisoned.
func (m *Manager) worker() {
	defer m.workerWG.Done()
	for it := range m.queue {
		metQueueDepth.Set(int64(len(m.queue)))
		err := m.sink.Ingest(it.sn)
		switch {
		case err == nil:
			it.r.snippets.Add(1)
			metSnippets.Inc()
		case errors.Is(err, stream.ErrDuplicate) || errors.Is(err, storage.ErrDuplicate):
			it.r.duplicates.Add(1)
			metDuplicates.Inc()
		default:
			it.r.ingestErrors.Add(1)
			metIngestErrs.Inc()
			it.r.setLastError(err.Error())
			m.deadLetter(it.r, event.Encode(it.sn), err.Error())
		}
		it.wg.Done()
	}
}

// submit enqueues a batch's snippets and waits until every one is
// acknowledged. Under the block policy a full queue exerts lossless
// backpressure on the runner; under the shed policy overflow snippets
// are dropped and counted. Returns false when shutdown interrupted the
// enqueue — the caller must not advance its cursor.
func (m *Manager) submit(ctx context.Context, r *runner, sns []*event.Snippet) bool {
	wg := new(sync.WaitGroup)
	aborted := false
	for _, sn := range sns {
		it := qItem{sn: sn, r: r, wg: wg}
		wg.Add(1)
		if m.cfg.Shed {
			select {
			case m.queue <- it:
				metQueueDepth.Set(int64(len(m.queue)))
			default:
				wg.Done()
				r.shed.Add(1)
				metShed.Inc()
			}
			continue
		}
		select {
		case m.queue <- it:
			metQueueDepth.Set(int64(len(m.queue)))
		case <-ctx.Done():
			wg.Done()
			aborted = true
		}
		if aborted {
			break
		}
	}
	// Wait for the enqueued part either way: the workers keep draining
	// until the queue is closed (which happens only after all runners
	// exit), so this cannot deadlock during shutdown.
	wg.Wait()
	return !aborted
}

// deadLetter persists one record to the DLQ (no-op without one).
func (m *Manager) deadLetter(r *runner, raw []byte, reason string) {
	if m.dlq == nil {
		return
	}
	cursor, _ := r.cursorSnapshot()
	if err := m.dlq.Append(storage.DLQEntry{
		Source: r.src,
		Cursor: cursor,
		Reason: reason,
		Raw:    raw,
	}); err != nil {
		r.setLastError("dlq append: " + err.Error())
	}
}

// Checkpoint persists the sink's checkpoint (when it has one) and then
// the feed cursors, in that order: the cursor file must never be newer
// than the pipeline state it presumes. Cursors only ever cover
// acknowledged records, so a crash between the two costs a bounded
// redelivery, never a loss.
//
// A FAILED sink checkpoint skips the cursor write entirely. Advancing
// cursors past pipeline state that was never persisted would invert the
// ordering above: under story retirement, records whose stories were
// evicted mid-drain would be acknowledged by a cursor while the only
// durable trace of them is an archive the stale on-disk checkpoint does
// not reference — a crash then loses them for good. Keeping the old
// cursors costs a redelivery instead.
func (m *Manager) Checkpoint() error {
	var errs []error
	if cp, ok := m.sink.(Checkpointer); ok {
		if err := cp.WriteCheckpoint(); err != nil {
			errs = append(errs, fmt.Errorf("feed: sink checkpoint: %w", err))
			return errors.Join(errs...)
		}
	}
	if m.cfg.CursorPath != "" {
		cf := cursorFile{Version: cursorVersion, Sources: make(map[string]cursorEntry)}
		m.mu.Lock()
		// Carry over restored cursors for sources not (re-)added this
		// run, so a partial fetcher set does not erase siblings' state.
		for src, ce := range m.cursors {
			cf.Sources[src] = ce
		}
		runners := append([]*runner(nil), m.runners...)
		m.mu.Unlock()
		for _, r := range runners {
			c, cu := r.cursorSnapshot()
			cf.Sources[r.src] = cursorEntry{Cursor: c, CaughtUp: cu}
		}
		if err := storage.AtomicWrite(m.cfg.CursorPath, func(w io.Writer) error {
			return json.NewEncoder(w).Encode(&cf)
		}); err != nil {
			errs = append(errs, fmt.Errorf("feed: writing cursors: %w", err))
		} else {
			metCheckpoints.Inc()
			// Remember what just became durable: these are the cursors a
			// coordinator may safely hand to another worker, because a
			// crash-restart of this process resumes from exactly here.
			m.mu.Lock()
			for src, ce := range cf.Sources {
				m.lastCkpt[src] = ce
			}
			m.mu.Unlock()
		}
	}
	return errors.Join(errs...)
}

// checkpointLoop checkpoints on the configured period until shutdown.
func (m *Manager) checkpointLoop() {
	defer m.loopWG.Done()
	for sleepCtx(m.ctx, m.cfg.CheckpointEvery) {
		m.Checkpoint()
	}
}

// Close drains and stops the subsystem: runners stop fetching, the
// queue flushes through the workers, a final checkpoint persists the
// cursors (and the sink's checkpoint), and the DLQ closes. Idempotent
// in effect; second and later calls return ErrManagerState.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed || m.closing {
		m.mu.Unlock()
		return fmt.Errorf("%w: double Close", ErrManagerState)
	}
	m.closing = true
	started := m.started
	m.mu.Unlock()

	m.cancel()
	if started {
		m.runnerWG.Wait()
		close(m.queue)
		m.workerWG.Wait()
		m.loopWG.Wait()
	}
	err := m.Checkpoint()
	if m.dlq != nil {
		if cerr := m.dlq.Close(); cerr != nil && !errors.Is(cerr, storage.ErrClosed) {
			err = errors.Join(err, cerr)
		}
	}
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.updateStateGauges()
	return err
}

// Abort stops the subsystem like a crash would: runners and workers
// stop and the queue drains (acknowledged data is never thrown away),
// but NO final checkpoint is written — the durable cursor stays wherever
// the last periodic checkpoint left it. Chaos tests and kill drills use
// this to exercise the restart path the sink-first checkpoint ordering
// exists for; production shutdown should use Close.
func (m *Manager) Abort() error {
	m.mu.Lock()
	if m.closed || m.closing {
		m.mu.Unlock()
		return fmt.Errorf("%w: Abort after Close", ErrManagerState)
	}
	m.closing = true
	started := m.started
	m.mu.Unlock()

	m.cancel()
	if started {
		m.runnerWG.Wait()
		close(m.queue)
		m.workerWG.Wait()
		m.loopWG.Wait()
	}
	var err error
	if m.dlq != nil {
		if cerr := m.dlq.Close(); cerr != nil && !errors.Is(cerr, storage.ErrClosed) {
			err = cerr
		}
	}
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.updateStateGauges()
	return err
}

// Draining reports that Close has begun (or finished); /healthz flips
// to 503 on this signal so load balancers stop routing to a process
// that is on its way out.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closing
}

// Status returns per-source runner snapshots, sorted by source name.
func (m *Manager) Status() []SourceStatus {
	m.mu.Lock()
	runners := append([]*runner(nil), m.runners...)
	m.mu.Unlock()
	out := make([]SourceStatus, 0, len(runners))
	for _, r := range runners {
		out = append(out, r.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// StateCounts tallies sources per health state.
func (m *Manager) StateCounts() (healthy, degraded, quarantined int) {
	for _, st := range m.Status() {
		switch st.State {
		case StateQuarantined:
			quarantined++
		case StateDegraded:
			degraded++
		default:
			healthy++
		}
	}
	return
}

// CaughtUp reports that every runner has drained its source and the
// ingest queue is empty — the "replay finished" condition for batch
// demos and tests.
func (m *Manager) CaughtUp() bool {
	if len(m.queue) > 0 {
		return false
	}
	sts := m.Status()
	for _, st := range sts {
		if !st.CaughtUp {
			return false
		}
	}
	return len(sts) > 0
}

// DLQ exposes the dead-letter queue (nil when not configured).
func (m *Manager) DLQ() *storage.DLQ { return m.dlq }

// updateStateGauges recomputes the per-state source gauges.
func (m *Manager) updateStateGauges() {
	h, d, q := m.StateCounts()
	metHealthy.Set(int64(h))
	metDegraded.Set(int64(d))
	metQuarantined.Set(int64(q))
}
