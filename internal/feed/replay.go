package feed

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/event"
)

// Replay is a datagen-backed fetcher: it serves a fixed chronological
// snippet slice in cursor-addressed batches, which makes it the
// deterministic stand-in for a live feed in tests, demos, and load
// runs. The cursor is the decimal index of the next snippet.
type Replay struct {
	src      event.SourceID
	snippets []*event.Snippet
	idOffset uint64
}

// NewReplay creates a replay fetcher for one source's snippets.
// idOffset, when non-zero, is added to every emitted snippet ID (on a
// clone) so replayed corpora cannot collide with IDs minted by the
// extraction pipeline in the same process.
func NewReplay(src event.SourceID, snippets []*event.Snippet, idOffset uint64) *Replay {
	return &Replay{src: src, snippets: snippets, idOffset: idOffset}
}

// Source implements Fetcher.
func (r *Replay) Source() event.SourceID { return r.src }

// Fetch implements Fetcher.
func (r *Replay) Fetch(ctx context.Context, cursor string, limit int) (Batch, error) {
	if err := ctx.Err(); err != nil {
		return Batch{}, err
	}
	start := 0
	if cursor != "" {
		n, err := strconv.Atoi(cursor)
		if err != nil || n < 0 {
			return Batch{}, errors.New("feed: bad replay cursor " + strconv.Quote(cursor))
		}
		start = n
	}
	if start > len(r.snippets) {
		start = len(r.snippets)
	}
	end := start + limit
	if end > len(r.snippets) {
		end = len(r.snippets)
	}
	b := Batch{Next: strconv.Itoa(end), Done: end == len(r.snippets)}
	for _, sn := range r.snippets[start:end] {
		if r.idOffset != 0 {
			c := sn.Clone()
			c.ID += event.SnippetID(r.idOffset)
			sn = c
		}
		b.Snippets = append(b.Snippets, sn)
	}
	return b, nil
}

// Flaky wraps a fetcher with deterministic injected failures, for the
// feed demo and tests: the first FailFirst fetches fail, and after
// that every FailEvery-th fetch fails (0 disables the recurring part).
type Flaky struct {
	Fetcher
	FailFirst int
	FailEvery int
	calls     atomic.Int64
}

// ErrInjected is the failure Flaky returns.
var ErrInjected = errors.New("feed: injected fetch failure")

// Fetch implements Fetcher.
func (f *Flaky) Fetch(ctx context.Context, cursor string, limit int) (Batch, error) {
	n := f.calls.Add(1)
	if n <= int64(f.FailFirst) {
		return Batch{}, ErrInjected
	}
	if f.FailEvery > 0 && n%int64(f.FailEvery) == 0 {
		return Batch{}, ErrInjected
	}
	return f.Fetcher.Fetch(ctx, cursor, limit)
}

// Func adapts a closure into a Fetcher (test and integration glue).
type Func struct {
	Src event.SourceID
	Fn  func(ctx context.Context, cursor string, limit int) (Batch, error)

	mu sync.Mutex
}

// Source implements Fetcher.
func (f *Func) Source() event.SourceID { return f.Src }

// Fetch implements Fetcher.
func (f *Func) Fetch(ctx context.Context, cursor string, limit int) (Batch, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.Fn(ctx, cursor, limit)
}
