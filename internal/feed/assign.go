package feed

import (
	"fmt"
	"sort"

	"repro/internal/event"
)

// Assign reconciles the manager's cluster-assigned runners against the
// desired list: runners for sources no longer assigned here are stopped
// (drained — their batch in flight is acknowledged — and their final
// cursor checkpointed), new assignments are started at the requested
// cursor, and unchanged assignments keep running untouched. Statically
// Added fetchers are never touched; a desired source that collides with
// one is an error.
//
// Interim tenures get the inverse treatment on withdrawal: instead of a
// drain-and-checkpoint, the tenure's ingested data is deleted from the
// sink (SourceRemover) and its cursors forgotten, because the returning
// ring owner re-ingests the same records from its own durable cursor —
// two copies would otherwise both be visible once the owner is back in
// the scatter set.
//
// Assign is idempotent: re-sending the current assignment is a no-op
// that just reports runner state, which the coordinator uses as its
// cursor observation channel.
func (m *Manager) Assign(assignments []Assignment) (AssignResult, error) {
	m.assignMu.Lock()
	defer m.assignMu.Unlock()

	desired := make(map[string]Assignment, len(assignments))
	for _, a := range assignments {
		if a.Spec.Source == "" {
			return AssignResult{}, fmt.Errorf("feed: assignment with empty source")
		}
		if _, dup := desired[a.Spec.Source]; dup {
			return AssignResult{}, fmt.Errorf("feed: duplicate assignment for source %q", a.Spec.Source)
		}
		desired[a.Spec.Source] = a
	}

	m.mu.Lock()
	if !m.started || m.closing || m.closed {
		m.mu.Unlock()
		return AssignResult{}, fmt.Errorf("%w: Assign outside Start..Close", ErrManagerState)
	}
	var stops []*runner
	running := make(map[string]*runner)
	for _, r := range m.runners {
		if !r.assigned {
			if _, clash := desired[r.src]; clash {
				m.mu.Unlock()
				return AssignResult{}, fmt.Errorf("feed: source %q already has a static fetcher", r.src)
			}
			continue
		}
		a, keep := desired[r.src]
		if keep && a.Spec == r.spec {
			running[r.src] = r
			continue
		}
		// Removed here, or respecified: stop (a spec change restarts).
		stops = append(stops, r)
	}
	m.mu.Unlock()

	// Build every new fetcher before stopping anything, so a malformed
	// assignment rejects the whole PUT instead of half-applying it.
	starts := make(map[string]Fetcher)
	var startOrder []string
	for src, a := range desired {
		if _, ok := running[src]; ok {
			continue
		}
		f, err := m.buildFetcher(a.Spec)
		if err != nil {
			return AssignResult{}, err
		}
		starts[src] = f
		startOrder = append(startOrder, src)
	}
	sort.Strings(startOrder)

	res := AssignResult{Stopped: make(map[string]string)}
	for _, r := range stops {
		r.cancel()
		<-r.done
		cursor, caughtUp := r.cursorSnapshot()
		wasInterim := r.interimSnapshot()
		m.mu.Lock()
		for i, rr := range m.runners {
			if rr == r {
				m.runners = append(m.runners[:i], m.runners[i+1:]...)
				break
			}
		}
		if wasInterim {
			delete(m.cursors, r.src)
			delete(m.lastCkpt, r.src)
		} else {
			m.cursors[r.src] = cursorEntry{Cursor: cursor, CaughtUp: caughtUp}
		}
		m.mu.Unlock()
		if wasInterim {
			if rem, ok := m.sink.(SourceRemover); ok {
				rem.RemoveSource(event.SourceID(r.src))
			}
			metInterimDrops.Inc()
			res.Dropped = append(res.Dropped, r.src)
		} else {
			res.Stopped[r.src] = cursor
		}
		metAssignStops.Inc()
	}
	if len(stops) > 0 {
		// The drain contract: a withdrawn source's final cursor (and the
		// interim deletions) are durable before the coordinator hears
		// about them and hands the source to someone else.
		m.Checkpoint()
	}

	for _, src := range startOrder {
		a := desired[src]
		m.mu.Lock()
		cursor := a.Cursor
		if cursor == "" {
			cursor = m.cursors[src].Cursor
		}
		r := &runner{
			m:        m,
			f:        starts[src],
			src:      src,
			assigned: true,
			spec:     a.Spec,
			interim:  a.Interim,
			bo:       newBackoff(m.cfg.BackoffBase, m.cfg.BackoffCap, m.cfg.Seed+int64(len(m.runners))),
			br:       newBreaker(m.cfg.BreakerThreshold, m.cfg.BreakerCooldown),
			cursor:   cursor,
			state:    StateHealthy,
		}
		m.runners = append(m.runners, r)
		m.startRunnerLocked(r)
		m.mu.Unlock()
		metAssignStarts.Inc()
	}

	// Unchanged runners may still flip interim ↔ owner in place (a
	// membership change can make the covering member the ring owner,
	// legitimising its tenure without a restart).
	for src, r := range running {
		r.setInterim(desired[src].Interim)
	}

	res.Running = m.Assigned()
	m.updateAssignGauge()
	return res, nil
}

// Assigned snapshots the cluster-assigned runners, sorted by source.
func (m *Manager) Assigned() []AssignedStatus {
	m.mu.Lock()
	runners := make([]*runner, 0, len(m.runners))
	durable := make(map[string]string, len(m.runners))
	for _, r := range m.runners {
		if r.assigned {
			runners = append(runners, r)
			durable[r.src] = m.lastCkpt[r.src].Cursor
		}
	}
	m.mu.Unlock()
	out := make([]AssignedStatus, 0, len(runners))
	for _, r := range runners {
		out = append(out, r.assignedStatus(durable[r.src]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

func (m *Manager) updateAssignGauge() {
	m.mu.Lock()
	n := 0
	for _, r := range m.runners {
		if r.assigned {
			n++
		}
	}
	m.mu.Unlock()
	metAssigned.Set(int64(n))
}

func (r *runner) interimSnapshot() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.interim
}

func (r *runner) setInterim(v bool) {
	r.mu.Lock()
	r.interim = v
	r.mu.Unlock()
}
