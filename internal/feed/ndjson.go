package feed

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/event"
)

// NDJSON wire format: one JSON object per line. This is the shape of
// EventRegistry/GDELT-style extraction repositories served over HTTP —
// the feed's cursor maps to a line offset, so any static file server
// with range-ish semantics (or the NDJSONSource below) can back it.
type wireSnippet struct {
	ID        uint64     `json:"id"`
	Source    string     `json:"source"`
	Timestamp time.Time  `json:"ts"`
	Entities  []string   `json:"entities,omitempty"`
	Terms     []wireTerm `json:"terms,omitempty"`
	Text      string     `json:"text,omitempty"`
	Document  string     `json:"doc,omitempty"`
}

type wireTerm struct {
	Token  string  `json:"t"`
	Weight float64 `json:"w"`
}

// EncodeNDJSON renders one snippet as its NDJSON line (no newline).
func EncodeNDJSON(sn *event.Snippet) []byte {
	w := wireSnippet{
		ID:        uint64(sn.ID),
		Source:    string(sn.Source),
		Timestamp: sn.Timestamp,
		Text:      sn.Text,
		Document:  sn.Document,
	}
	for _, e := range sn.Entities {
		w.Entities = append(w.Entities, string(e))
	}
	for _, t := range sn.Terms {
		w.Terms = append(w.Terms, wireTerm{Token: t.Token, Weight: t.Weight})
	}
	b, _ := json.Marshal(w)
	return b
}

// decodeNDJSON parses one line into a validated, normalized snippet.
func decodeNDJSON(line []byte) (*event.Snippet, error) {
	var w wireSnippet
	if err := json.Unmarshal(line, &w); err != nil {
		return nil, err
	}
	sn := &event.Snippet{
		ID:        event.SnippetID(w.ID),
		Source:    event.SourceID(w.Source),
		Timestamp: w.Timestamp,
		Text:      w.Text,
		Document:  w.Document,
	}
	for _, e := range w.Entities {
		sn.Entities = append(sn.Entities, event.Entity(e))
	}
	for _, t := range w.Terms {
		sn.Terms = append(sn.Terms, event.Term{Token: t.Token, Weight: t.Weight})
	}
	sn.Normalize()
	if err := sn.Validate(); err != nil {
		return nil, err
	}
	return sn, nil
}

// feedDoneHeader marks a response that exhausted the currently
// available data (the fetcher reports Done and falls back to polling).
const feedDoneHeader = "X-Feed-Done"

// HTTPFetcher pulls NDJSON batches from a URL speaking the offset/limit
// protocol of NDJSONSource: GET url?offset=N&limit=M returns up to M
// lines starting at line N, with X-Feed-Done: true when the response
// reaches the current end of stream. Undecodable lines are returned as
// Malformed — the transport succeeding while individual records are
// garbage is the normal failure mode of real feeds.
type HTTPFetcher struct {
	src    event.SourceID
	url    string
	client *http.Client
}

// NewHTTPFetcher creates an NDJSON fetcher. A nil client uses a
// dedicated default client (no global state; per-fetch deadlines come
// from the runner's context).
func NewHTTPFetcher(src event.SourceID, rawURL string, client *http.Client) *HTTPFetcher {
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPFetcher{src: src, url: rawURL, client: client}
}

// Source implements Fetcher.
func (h *HTTPFetcher) Source() event.SourceID { return h.src }

// Fetch implements Fetcher.
func (h *HTTPFetcher) Fetch(ctx context.Context, cursor string, limit int) (Batch, error) {
	offset := 0
	if cursor != "" {
		n, err := strconv.Atoi(cursor)
		if err != nil || n < 0 {
			return Batch{}, fmt.Errorf("feed: bad http cursor %q", cursor)
		}
		offset = n
	}
	u, err := url.Parse(h.url)
	if err != nil {
		return Batch{}, err
	}
	q := u.Query()
	q.Set("offset", strconv.Itoa(offset))
	q.Set("limit", strconv.Itoa(limit))
	u.RawQuery = q.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return Batch{}, err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return Batch{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Batch{}, fmt.Errorf("feed: %s answered %s", h.src, resp.Status)
	}
	b := Batch{Done: resp.Header.Get(feedDoneHeader) == "true"}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			lines++ // blank lines advance the cursor but carry nothing
			continue
		}
		sn, derr := decodeNDJSON(line)
		if derr != nil {
			b.Malformed = append(b.Malformed, Malformed{
				Raw:    append([]byte(nil), line...),
				Reason: derr.Error(),
			})
		} else {
			b.Snippets = append(b.Snippets, sn)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		// A transport error mid-body (server died between lines) fails
		// the whole fetch: the cursor stays put and the batch is
		// redelivered, rather than acknowledging a truncated read.
		return Batch{}, fmt.Errorf("feed: reading %s body: %w", h.src, err)
	}
	if lines == 0 {
		b.Done = true
	}
	b.Next = strconv.Itoa(offset + lines)
	return b, nil
}

// NDJSONSource is an in-process NDJSON feed endpoint: an append-only
// sequence of lines served with the offset/limit protocol. Tests and
// the feed demo wrap it in faults.Injector middleware to produce every
// transport failure deterministically; AppendRaw plants malformed
// records for DLQ scenarios.
type NDJSONSource struct {
	mu    sync.Mutex
	lines [][]byte
}

// Append encodes snippets onto the stream.
func (s *NDJSONSource) Append(sns ...*event.Snippet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sn := range sns {
		s.lines = append(s.lines, EncodeNDJSON(sn))
	}
}

// AppendRaw appends one verbatim line (e.g. garbage for DLQ tests).
func (s *NDJSONSource) AppendRaw(line []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lines = append(s.lines, append([]byte(nil), line...))
}

// Len returns the number of lines currently in the stream.
func (s *NDJSONSource) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lines)
}

// ServeHTTP implements the offset/limit NDJSON protocol.
func (s *NDJSONSource) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	offset, _ := strconv.Atoi(q.Get("offset"))
	limit, _ := strconv.Atoi(q.Get("limit"))
	if offset < 0 {
		offset = 0
	}
	if limit <= 0 {
		limit = 64
	}
	s.mu.Lock()
	total := len(s.lines)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	batch := make([][]byte, end-offset)
	copy(batch, s.lines[offset:end])
	s.mu.Unlock()
	if end == total {
		w.Header().Set(feedDoneHeader, "true")
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, line := range batch {
		w.Write(line)
		w.Write([]byte{'\n'})
	}
}
