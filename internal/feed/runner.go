package feed

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// runner drives one source: fetch → decode → enqueue → ack → advance
// cursor, forever. All failure handling is local to the runner, so a
// flapping or quarantined source never stalls its siblings — the only
// shared resource is the bounded ingest queue, and that is bounded
// precisely so one fast source cannot starve the sink either.
type runner struct {
	m   *Manager
	f   Fetcher
	src string
	bo  *backoff
	br  *breaker

	// Cluster-assignment plumbing: assigned runners are started and
	// stopped at runtime by Manager.Assign; cancel/done give each one an
	// individually stoppable lifetime nested inside the manager's.
	assigned bool
	spec     Spec
	cancel   context.CancelFunc
	done     chan struct{}

	mu        sync.Mutex
	cursor    string
	caughtUp  bool
	state     State
	interim   bool
	lastError string
	lastFetch time.Time

	fetches      atomic.Uint64
	fetchErrors  atomic.Uint64
	snippets     atomic.Uint64
	duplicates   atomic.Uint64
	malformed    atomic.Uint64
	ingestErrors atomic.Uint64
	shed         atomic.Uint64
}

// run is the runner goroutine body.
func (r *runner) run(ctx context.Context) {
	defer r.m.runnerWG.Done()
	metRunners.Add(1)
	defer metRunners.Add(-1)
	for ctx.Err() == nil {
		// Quarantine gate: while the breaker is open the runner sleeps
		// out the cooldown instead of hammering a dead source. When the
		// cooldown elapses, allow admits exactly one half-open probe.
		if ok, wait := r.br.allow(time.Now()); !ok {
			r.refreshState()
			if !sleepCtx(ctx, wait) {
				return
			}
			continue
		}
		batch, err := r.fetch(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return // shutdown, not a source failure
			}
			r.fetchErrors.Add(1)
			metFetchErrors.Inc()
			r.setLastError(err.Error())
			if r.br.failure(time.Now()) {
				metBreakerOpens.Inc()
			}
			r.refreshState()
			metRetries.Inc()
			if !sleepCtx(ctx, r.bo.next()) {
				return
			}
			continue
		}
		r.bo.reset()
		r.br.success()
		r.refreshState()

		// Malformed records are acknowledged into the DLQ: the cursor
		// moves past them, so one poison record is quarantined once
		// instead of re-fetched forever.
		for _, mf := range batch.Malformed {
			r.malformed.Add(1)
			metMalformed.Inc()
			r.m.deadLetter(r, mf.Raw, mf.Reason)
		}
		if !r.m.submit(ctx, r, batch.Snippets) {
			return // cancelled mid-batch: cursor stays put, redelivered next run
		}
		r.advance(batch.Next, batch.Done)
		if batch.Done {
			// Caught up: poll for growth instead of spinning.
			if !sleepCtx(ctx, r.m.cfg.PollInterval) {
				return
			}
		}
	}
}

// fetch runs one Fetch under the per-fetch timeout, containing fetcher
// panics: a buggy fetcher costs one failed attempt, not the process.
func (r *runner) fetch(ctx context.Context) (batch Batch, err error) {
	fctx, cancel := context.WithTimeout(ctx, r.m.cfg.FetchTimeout)
	defer cancel()
	r.fetches.Add(1)
	metFetches.Inc()
	r.mu.Lock()
	cursor := r.cursor
	r.lastFetch = time.Now()
	r.mu.Unlock()
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("feed: fetcher panic: %v", p)
		}
	}()
	return r.f.Fetch(fctx, cursor, r.m.cfg.BatchSize)
}

// advance adopts the post-batch cursor. It runs only after every record
// of the batch was acknowledged, so a checkpointed cursor never claims
// data that is neither in the sink, the DLQ, nor the shed counter.
func (r *runner) advance(next string, done bool) {
	r.mu.Lock()
	if next != "" {
		r.cursor = next
	}
	r.caughtUp = done
	r.mu.Unlock()
}

// refreshState re-derives the health state from the breaker and
// failure streak, updating the obs gauges on transitions.
func (r *runner) refreshState() {
	bst, fails := r.br.snapshot()
	next := StateHealthy
	switch {
	case bst != breakerClosed:
		next = StateQuarantined
	case fails > 0:
		next = StateDegraded
	}
	r.mu.Lock()
	changed := r.state != next
	r.state = next
	r.mu.Unlock()
	if changed {
		r.m.updateStateGauges()
	}
}

func (r *runner) setLastError(msg string) {
	r.mu.Lock()
	r.lastError = msg
	r.mu.Unlock()
}

// assignedStatus snapshots the runner for the cluster assignment API.
// durable is the last checkpointed cursor the manager holds for this
// source — the resume point a coordinator may hand to another worker.
func (r *runner) assignedStatus(durable string) AssignedStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return AssignedStatus{
		Source:   r.src,
		Cursor:   r.cursor,
		Durable:  durable,
		CaughtUp: r.caughtUp,
		Interim:  r.interim,
		State:    r.state,
	}
}

// cursorSnapshot returns the acknowledged cursor and caught-up flag.
func (r *runner) cursorSnapshot() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cursor, r.caughtUp
}

// status snapshots the runner for /api/feeds.
func (r *runner) status() SourceStatus {
	bst, fails := r.br.snapshot()
	r.mu.Lock()
	st := SourceStatus{
		Source:              r.src,
		State:               r.state,
		Breaker:             bst.String(),
		Cursor:              r.cursor,
		CaughtUp:            r.caughtUp,
		ConsecutiveFailures: fails,
		LastError:           r.lastError,
		LastFetch:           r.lastFetch,
	}
	r.mu.Unlock()
	st.Fetches = r.fetches.Load()
	st.FetchErrors = r.fetchErrors.Load()
	st.Snippets = r.snippets.Load()
	st.Duplicates = r.duplicates.Load()
	st.Malformed = r.malformed.Load()
	st.IngestErrors = r.ingestErrors.Load()
	st.Shed = r.shed.Load()
	return st
}

// sleepCtx sleeps d or until ctx is cancelled; it reports whether the
// full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
