package feed

import "repro/internal/obs"

// Feed instrumentation. Counters aggregate across sources; the
// per-source breakdown is served live by GET /api/feeds.
var (
	metFetches = obs.GetCounter("storypivot_feed_fetches_total",
		"fetch attempts across all sources")
	metFetchErrors = obs.GetCounter("storypivot_feed_fetch_errors_total",
		"fetch attempts that failed (including timeouts and contained panics)")
	metRetries = obs.GetCounter("storypivot_feed_retries_total",
		"backoff sleeps taken before re-fetching a failing source")
	metSnippets = obs.GetCounter("storypivot_feed_snippets_total",
		"snippets accepted by the sink via feed ingest")
	metDuplicates = obs.GetCounter("storypivot_feed_duplicates_total",
		"redelivered snippets acknowledged as duplicates by the sink")
	metIngestErrs = obs.GetCounter("storypivot_feed_ingest_errors_total",
		"snippets the sink rejected (dead-lettered when a DLQ is attached)")
	metMalformed = obs.GetCounter("storypivot_feed_malformed_total",
		"fetched records that failed to decode (dead-lettered)")
	metShed = obs.GetCounter("storypivot_feed_shed_total",
		"snippets dropped by the shed backpressure policy")
	metBreakerOpens = obs.GetCounter("storypivot_feed_breaker_opens_total",
		"circuit-breaker open transitions")
	metCheckpoints = obs.GetCounter("storypivot_feed_checkpoints_total",
		"cursor checkpoints written")
	metAssignStarts = obs.GetCounter("storypivot_feed_assign_starts_total",
		"cluster-assigned runners started by Assign")
	metAssignStops = obs.GetCounter("storypivot_feed_assign_stops_total",
		"cluster-assigned runners stopped by Assign (drains and drops)")
	metInterimDrops = obs.GetCounter("storypivot_feed_interim_drops_total",
		"withdrawn interim tenures whose ingested data was removed")

	metQueueDepth = obs.GetGauge("storypivot_feed_queue_depth",
		"snippets waiting in the bounded ingest queue")
	metRunners = obs.GetGauge("storypivot_feed_runners",
		"feed runner goroutines currently live")
	metHealthy = obs.GetGauge("storypivot_feed_sources_healthy",
		"sources currently healthy")
	metDegraded = obs.GetGauge("storypivot_feed_sources_degraded",
		"sources currently degraded (failing, breaker closed)")
	metQuarantined = obs.GetGauge("storypivot_feed_sources_quarantined",
		"sources currently quarantined by an open breaker")
	metAssigned = obs.GetGauge("storypivot_feed_assigned_runners",
		"runners currently under cluster assignment")
)
