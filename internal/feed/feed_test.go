package feed

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/event"
)

func TestBackoffBoundsAndReset(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	b := newBackoff(base, cap, 42)
	for n := 1; n <= 10; n++ {
		d := b.next()
		limit := base << (n - 1)
		if limit > cap || limit <= 0 {
			limit = cap
		}
		if d < 0 || d > limit {
			t.Fatalf("attempt %d: sleep %v outside [0, %v]", n, d, limit)
		}
	}
	b.reset()
	if d := b.next(); d > base {
		t.Fatalf("after reset, first sleep %v > base %v", d, base)
	}
}

func TestBackoffFullJitterSpread(t *testing.T) {
	// Full jitter must actually spread: over many draws at a saturated
	// exponent the samples should not all collapse to one value.
	b := newBackoff(time.Millisecond, 64*time.Millisecond, 7)
	b.n = 20 // saturated at cap
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		b.n = 20
		seen[b.next()] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct sleeps in 50 draws", len(seen))
	}
}

func TestBreakerTransitions(t *testing.T) {
	t0 := time.Unix(1000, 0)
	br := newBreaker(3, time.Minute)

	// closed → open after 3 consecutive failures.
	if br.failure(t0) || br.failure(t0) {
		t.Fatal("breaker opened before threshold")
	}
	if !br.failure(t0) {
		t.Fatal("threshold failure did not open the breaker")
	}
	if st, _ := br.snapshot(); st != breakerOpen {
		t.Fatalf("state = %v, want open", st)
	}

	// Open: rejects until the cooldown elapses.
	if ok, wait := br.allow(t0.Add(30 * time.Second)); ok || wait != 30*time.Second {
		t.Fatalf("allow mid-cooldown = (%v, %v)", ok, wait)
	}

	// Cooldown elapsed: half-open admits one probe.
	if ok, _ := br.allow(t0.Add(61 * time.Second)); !ok {
		t.Fatal("half-open probe rejected")
	}
	if st, _ := br.snapshot(); st != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", st)
	}

	// Failed probe re-opens and restarts the cooldown.
	if !br.failure(t0.Add(61 * time.Second)) {
		t.Fatal("failed probe did not re-open")
	}
	if ok, _ := br.allow(t0.Add(90 * time.Second)); ok {
		t.Fatal("allow during restarted cooldown")
	}
	if ok, _ := br.allow(t0.Add(3 * time.Minute)); !ok {
		t.Fatal("second probe rejected")
	}

	// Successful probe closes and clears the streak.
	br.success()
	if st, fails := br.snapshot(); st != breakerClosed || fails != 0 {
		t.Fatalf("after success: state %v fails %d", st, fails)
	}
}

func TestReplayFetcherCursorsAndOffsets(t *testing.T) {
	sns := makeSnips("srcA", 5)
	r := NewReplay("srcA", sns, 1000)
	ctx := context.Background()

	b, err := r.Fetch(ctx, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Snippets) != 2 || b.Next != "2" || b.Done {
		t.Fatalf("first batch: %d snippets, next %q, done %v", len(b.Snippets), b.Next, b.Done)
	}
	if b.Snippets[0].ID != 1001 {
		t.Fatalf("idOffset not applied: ID %d", b.Snippets[0].ID)
	}
	if sns[0].ID != 1 {
		t.Fatalf("idOffset mutated the backing snippet: ID %d", sns[0].ID)
	}

	b, err = r.Fetch(ctx, "2", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Snippets) != 3 || b.Next != "5" || !b.Done {
		t.Fatalf("final batch: %d snippets, next %q, done %v", len(b.Snippets), b.Next, b.Done)
	}
	// Caught up: polling past the end stays Done and empty.
	b, _ = r.Fetch(ctx, "5", 10)
	if len(b.Snippets) != 0 || !b.Done {
		t.Fatalf("past-end batch: %d snippets, done %v", len(b.Snippets), b.Done)
	}
	if _, err := r.Fetch(ctx, "bogus", 1); err == nil {
		t.Fatal("bad cursor accepted")
	}
}

func TestFlakyDeterminism(t *testing.T) {
	inner := NewReplay("srcA", makeSnips("srcA", 4), 0)
	f := &Flaky{Fetcher: inner, FailFirst: 2, FailEvery: 3}
	ctx := context.Background()
	var got []bool
	for i := 0; i < 8; i++ {
		_, err := f.Fetch(ctx, "0", 1)
		got = append(got, err == nil)
	}
	// calls 1,2 fail (FailFirst), then every 3rd call fails: 3,6 ok?
	// call numbering: 3 %3==0 → fail; 4,5 ok; 6 fail; 7,8 ok.
	want := []bool{false, false, false, true, true, false, true, true}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fail pattern %v, want %v", got, want)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	in := makeSnips("srcA", 1)[0]
	out, err := decodeNDJSON(EncodeNDJSON(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Source != in.Source || !out.Timestamp.Equal(in.Timestamp) {
		t.Fatalf("identity fields differ: %+v vs %+v", out, in)
	}
	if fmt.Sprint(out.Entities) != fmt.Sprint(in.Entities) {
		t.Fatalf("entities %v != %v", out.Entities, in.Entities)
	}
	if len(out.Terms) != len(in.Terms) {
		t.Fatalf("terms %v != %v", out.Terms, in.Terms)
	}
	if _, err := decodeNDJSON([]byte("{not json")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := decodeNDJSON([]byte(`{"id":9,"source":"s","ts":"2014-07-17T00:00:00Z"}`)); err == nil {
		t.Fatal("empty snippet validated")
	}
}

func TestManagerLifecycle(t *testing.T) {
	if _, err := NewManager(nil, Config{}); err == nil {
		t.Fatal("nil sink accepted")
	}
	sink := newRecSink(0)
	m, err := NewManager(sink, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(NewReplay("a", nil, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(NewReplay("a", nil, 0)); err == nil {
		t.Fatal("duplicate source accepted")
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); !errors.Is(err, ErrManagerState) {
		t.Fatalf("double Start: %v", err)
	}
	if err := m.Add(NewReplay("b", nil, 0)); !errors.Is(err, ErrManagerState) {
		t.Fatalf("Add after Start: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); !errors.Is(err, ErrManagerState) {
		t.Fatalf("double Close: %v", err)
	}
}

// makeSnips builds n deterministic snippets for src with IDs 1..n in
// chronological order.
func makeSnips(src string, n int) []*event.Snippet {
	base := time.Date(2014, 7, 17, 0, 0, 0, 0, time.UTC)
	out := make([]*event.Snippet, 0, n)
	for i := 1; i <= n; i++ {
		sn := &event.Snippet{
			ID:        event.SnippetID(i),
			Source:    event.SourceID(src),
			Timestamp: base.Add(time.Duration(i) * time.Minute),
			Entities:  []event.Entity{"ukraine", "mh17"},
			Terms: []event.Term{
				{Token: "crash", Weight: 1},
				{Token: "w" + strconv.Itoa(i%7), Weight: 0.5},
			},
			Document: "http://" + src + "/doc" + strconv.Itoa(i),
		}
		sn.Normalize()
		out = append(out, sn)
	}
	return out
}
