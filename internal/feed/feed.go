// Package feed is StoryPivot's resilient continuous-ingest subsystem:
// it pulls snippets from pluggable per-source Fetchers and drives them
// into the pipeline through isolated per-source runner goroutines.
//
// The paper's deployment consumed live EventRegistry/GDELT feeds from
// 50 sources over six months; at that scale individual sources flap,
// stall, and emit garbage as a matter of course. Each runner therefore
// gets the full production-robustness kit:
//
//   - retry with exponential backoff and full jitter, plus a per-fetch
//     timeout, so a slow or erroring source costs only itself;
//   - a circuit breaker (closed → open → half-open probe) so a
//     persistently failing source is quarantined without stalling its
//     siblings, and re-admitted by a single cheap probe;
//   - a health state machine (healthy / degraded / quarantined)
//     exported via obs gauges and GET /api/feeds;
//   - a bounded ingest queue shared by all runners, with a block-or-
//     shed backpressure policy;
//   - a dead-letter queue for malformed or unacceptable records, so one
//     poison record never sinks its batch;
//   - per-source resume cursors checkpointed atomically alongside the
//     pipeline checkpoint, giving at-least-once delivery across
//     restarts with engine-level dedup collapsing the redeliveries.
package feed

import (
	"context"
	"time"

	"repro/internal/event"
)

// Batch is one fetch result: decoded snippets, records that failed to
// decode (destined for the dead-letter queue), and the cursor that
// resumes the stream *after* this batch.
type Batch struct {
	Snippets []*event.Snippet
	// Malformed holds fetched records that could not be decoded into
	// snippets. They are acknowledged like snippets (the cursor moves
	// past them) but persisted to the DLQ instead of the pipeline.
	Malformed []Malformed
	// Next is the opaque resume cursor positioned after this batch. The
	// runner adopts it only once every record of the batch has been
	// acknowledged (ingested, dead-lettered, or shed under the shed
	// policy), so a persisted cursor never claims unacknowledged data.
	Next string
	// Done reports that the fetcher is caught up: there was no more
	// data at Next when the fetch returned. Runners keep polling a
	// caught-up source at Config.PollInterval (live feeds grow).
	Done bool
}

// Malformed is one undecodable fetched record.
type Malformed struct {
	Raw    []byte
	Reason string
}

// Fetcher pulls records for one source. Implementations must be safe
// for use from a single runner goroutine; Fetch is never called
// concurrently for the same fetcher. A Fetch that returns an error (or
// panics — the runner contains it) is retried with backoff and counts
// toward the circuit breaker.
type Fetcher interface {
	// Source names the feed; it doubles as the cursor key and should be
	// stable across restarts.
	Source() event.SourceID
	// Fetch returns up to limit records starting at cursor ("" = start
	// of stream). It must honour ctx cancellation.
	Fetch(ctx context.Context, cursor string, limit int) (Batch, error)
}

// Sink receives acknowledged snippets. *storypivot.Pipeline satisfies
// it directly.
type Sink interface {
	Ingest(*event.Snippet) error
}

// SinkFunc adapts a function to a Sink (e.g. routing to the live
// pipeline snapshot of a server that rebuilds pipelines).
type SinkFunc func(*event.Snippet) error

// Ingest implements Sink.
func (f SinkFunc) Ingest(sn *event.Snippet) error { return f(sn) }

// Checkpointer is optionally implemented by a Sink (the pipeline is
// one). When present, the manager persists the sink's checkpoint
// immediately before the feed cursors, so the cursor file is always
// paired with a pipeline state at least as new as it claims.
type Checkpointer interface {
	WriteCheckpoint() error
}

// Config tunes the manager and its runners. The zero value is usable;
// every field falls back to the default below.
type Config struct {
	// BackoffBase and BackoffCap bound the exponential retry backoff:
	// the sleep before attempt n is uniform in [0, min(Cap, Base·2ⁿ⁻¹)]
	// (full jitter).
	BackoffBase time.Duration // default 100ms
	BackoffCap  time.Duration // default 30s

	// BreakerThreshold is the number of consecutive fetch failures that
	// opens a source's circuit breaker; BreakerCooldown is how long the
	// breaker stays open before admitting a half-open probe.
	BreakerThreshold int           // default 5
	BreakerCooldown  time.Duration // default 30s

	// FetchTimeout bounds each Fetch call.
	FetchTimeout time.Duration // default 10s

	// BatchSize is the per-fetch record limit passed to Fetch.
	BatchSize int // default 64

	// QueueDepth bounds the shared ingest queue. When full, runners
	// either block (default, lossless backpressure) or shed (Shed=true:
	// drop the snippet, count it, and move on — explicit lossy mode).
	QueueDepth int  // default 256
	Shed       bool // default false (block)

	// IngestWorkers is the number of goroutines draining the queue into
	// the sink.
	IngestWorkers int // default 2

	// PollInterval is how long a caught-up runner sleeps before polling
	// its source again.
	PollInterval time.Duration // default 500ms

	// CursorPath, when set, persists per-source resume cursors there
	// (atomically, fsynced) and restores them at NewManager.
	CursorPath string

	// DLQDir, when set, opens a dead-letter queue there for malformed
	// records and snippets the sink permanently rejects.
	DLQDir string

	// CheckpointEvery, when > 0, checkpoints cursors (and the sink, if
	// it implements Checkpointer) on that period while running. A final
	// checkpoint always happens during Close.
	CheckpointEvery time.Duration

	// Seed makes the jitter deterministic for tests; 0 uses the default
	// seed (jitter is deterministic per-process either way — the
	// fault-injection tests drive failure *sequences* via injectors and
	// keep timing bounded by Base/Cap).
	Seed int64

	// SpecFetcher builds Fetchers for Assign specs whose Type the feed
	// package does not know natively ("ndjson" is built in). Required
	// only when the manager receives cluster feed assignments of other
	// types (the cmd layer injects the "replay" builder here).
	SpecFetcher SpecFetcher
}

func (c Config) withDefaults() Config {
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 30 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 10 * time.Second
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.IngestWorkers <= 0 {
		c.IngestWorkers = 2
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// State is a source's health classification.
type State string

const (
	// StateHealthy: recent fetches succeed.
	StateHealthy State = "healthy"
	// StateDegraded: the source is failing and retrying with backoff,
	// but the breaker has not tripped.
	StateDegraded State = "degraded"
	// StateQuarantined: the breaker is open (or probing half-open); the
	// runner touches the source at most once per cooldown.
	StateQuarantined State = "quarantined"
)

// SourceStatus is the externally visible state of one runner, served
// by GET /api/feeds.
type SourceStatus struct {
	Source              string    `json:"source"`
	State               State     `json:"state"`
	Breaker             string    `json:"breaker"`
	Cursor              string    `json:"cursor"`
	CaughtUp            bool      `json:"caught_up"`
	Fetches             uint64    `json:"fetches"`
	FetchErrors         uint64    `json:"fetch_errors"`
	ConsecutiveFailures int       `json:"consecutive_failures"`
	Snippets            uint64    `json:"snippets"`
	Duplicates          uint64    `json:"duplicates"`
	Malformed           uint64    `json:"malformed"`
	IngestErrors        uint64    `json:"ingest_errors"`
	Shed                uint64    `json:"shed"`
	LastError           string    `json:"last_error,omitempty"`
	LastFetch           time.Time `json:"last_fetch,omitempty"`
}
