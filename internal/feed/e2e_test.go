package feed

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/faults"
	"repro/internal/storage"
	"repro/internal/stream"
)

// recSink is a recording Sink. With dedup set it mirrors the engine's
// contract: a second ingest of the same ID is rejected with
// stream.ErrDuplicate, which the feed must treat as an acknowledgement.
type recSink struct {
	delay time.Duration
	dedup bool

	mu       sync.Mutex
	counts   map[event.SnippetID]int
	rejected int
}

func newRecSink(delay time.Duration) *recSink {
	return &recSink{delay: delay, counts: make(map[event.SnippetID]int)}
}

func (s *recSink) Ingest(sn *event.Snippet) error {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dedup && s.counts[sn.ID] > 0 {
		s.rejected++
		return fmt.Errorf("replayed snippet %d: %w", sn.ID, stream.ErrDuplicate)
	}
	s.counts[sn.ID]++
	return nil
}

func (s *recSink) accepted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.counts {
		n += c
	}
	return n
}

func (s *recSink) count(id event.SnippetID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts[id]
}

func (s *recSink) dupRejections() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

// fastCfg is a test config with millisecond-scale timings.
func fastCfg() Config {
	return Config{
		BackoffBase:      time.Millisecond,
		BackoffCap:       4 * time.Millisecond,
		BreakerThreshold: 100, // effectively disabled unless a test lowers it
		BreakerCooldown:  50 * time.Millisecond,
		FetchTimeout:     2 * time.Second,
		BatchSize:        8,
		QueueDepth:       16,
		PollInterval:     3 * time.Millisecond,
		Seed:             1,
	}
}

// Scenario 1: a source that flaps — one mid-body connection abort, two
// 503s — recovers via backoff without operator action and without the
// breaker tripping, and every record still arrives exactly once.
func TestFeedFlapAndRecover(t *testing.T) {
	src := &NDJSONSource{}
	src.Append(makeSnips("srcA", 30)...)
	inj := &faults.Injector{}
	ts := httptest.NewServer(inj.Wrap(src))
	defer ts.Close()

	inj.AbortOnce()   // fetch 1: dies between header and body
	inj.FailN(2, 503) // fetches 2-3: plain server errors

	sink := newRecSink(0)
	m, err := NewManager(sink, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(NewHTTPFetcher("srcA", ts.URL, nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	waitFor(t, 10*time.Second, func() bool { return sink.accepted() == 30 && m.CaughtUp() },
		"all 30 snippets ingested after flap")
	st := m.Status()[0]
	if st.FetchErrors != 3 {
		t.Fatalf("fetch errors = %d, want 3 (abort + two 503s)", st.FetchErrors)
	}
	if st.State != StateHealthy || st.Breaker != "closed" {
		t.Fatalf("after recovery: state %s breaker %s", st.State, st.Breaker)
	}
	for i := 1; i <= 30; i++ {
		if sink.count(event.SnippetID(i)) != 1 {
			t.Fatalf("snippet %d ingested %d times", i, sink.count(event.SnippetID(i)))
		}
	}
}

// Scenario 2: enough consecutive failures trip the breaker; the source
// is quarantined through the cooldown, the first half-open probe fails
// and re-opens it, the second probe succeeds and closes it, and ingest
// then completes. FetchErrors == 4 proves the fourth failure was the
// half-open probe: only one request is admitted per cooldown.
func TestFeedBreakerLifecycle(t *testing.T) {
	src := &NDJSONSource{}
	src.Append(makeSnips("srcB", 12)...)
	inj := &faults.Injector{}
	ts := httptest.NewServer(inj.Wrap(src))
	defer ts.Close()

	inj.FailN(4, http.StatusBadGateway) // 3 to trip + 1 failed probe

	cfg := fastCfg()
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = 40 * time.Millisecond
	sink := newRecSink(0)
	m, err := NewManager(sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(NewHTTPFetcher("srcB", ts.URL, nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var sawBreaker string
	waitFor(t, 10*time.Second, func() bool {
		st := m.Status()[0]
		if st.State == StateQuarantined {
			sawBreaker = st.Breaker
			return true
		}
		return false
	}, "source quarantined after breaker tripped")
	if sawBreaker != "open" && sawBreaker != "half-open" {
		t.Fatalf("quarantined with breaker %q", sawBreaker)
	}

	waitFor(t, 10*time.Second, func() bool { return sink.accepted() == 12 && m.CaughtUp() },
		"ingest completed after breaker closed")
	st := m.Status()[0]
	if st.State != StateHealthy || st.Breaker != "closed" {
		t.Fatalf("after recovery: state %s breaker %s", st.State, st.Breaker)
	}
	if st.FetchErrors != 4 {
		t.Fatalf("fetch errors = %d, want 4 (trip + one failed probe)", st.FetchErrors)
	}
}

// Scenario 3: malformed records land in the DLQ with source and cursor
// context, the cursor moves past them (no poison loop), the rest of
// the batch ingests normally, and the DLQ survives reopening.
func TestFeedDLQCaptureNoPoisoning(t *testing.T) {
	src := &NDJSONSource{}
	src.Append(makeSnips("srcC", 4)...)
	src.AppendRaw([]byte("{this is not json"))
	src.AppendRaw([]byte(`{"id":99,"source":"srcC","ts":"2014-07-17T05:00:00Z"}`)) // valid JSON, fails Validate
	more := makeSnips("srcC", 8)
	src.Append(more[4:]...)
	ts := httptest.NewServer(src)
	defer ts.Close()

	dlqDir := t.TempDir()
	cfg := fastCfg()
	cfg.DLQDir = dlqDir
	sink := newRecSink(0)
	m, err := NewManager(sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(NewHTTPFetcher("srcC", ts.URL, nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 10*time.Second, func() bool { return sink.accepted() == 8 && m.CaughtUp() },
		"valid snippets ingested around the poison records")
	st := m.Status()[0]
	if st.Malformed != 2 {
		t.Fatalf("malformed = %d, want 2", st.Malformed)
	}
	if st.Cursor != "10" {
		t.Fatalf("cursor = %q, want %q (past the poison lines)", st.Cursor, "10")
	}
	if st.FetchErrors != 0 {
		t.Fatalf("fetch errors = %d: malformed records must not fail the fetch", st.FetchErrors)
	}
	if got := m.DLQ().Len(); got != 2 {
		t.Fatalf("DLQ holds %d entries, want 2", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// The DLQ is durable: reopening from disk yields both entries with
	// their capture context.
	dlq, err := storage.OpenDLQ(dlqDir)
	if err != nil {
		t.Fatal(err)
	}
	defer dlq.Close()
	entries := dlq.Entries()
	if len(entries) != 2 {
		t.Fatalf("reopened DLQ holds %d entries, want 2", len(entries))
	}
	if string(entries[0].Raw) != "{this is not json" {
		t.Fatalf("first DLQ entry raw = %q", entries[0].Raw)
	}
	for _, e := range entries {
		if e.Source != "srcC" || e.Reason == "" {
			t.Fatalf("DLQ entry missing context: %+v", e)
		}
	}
}

// Scenario 4: kill the manager mid-stream, restart from the cursor
// file, and finish. The restart must resume at the acknowledged cursor
// (never from zero) and redelivered records from the unacknowledged
// tail must be collapsed by sink-level dedup — zero double-acceptance.
func TestFeedCursorResumeNoDuplicates(t *testing.T) {
	const n = 120
	src := &NDJSONSource{}
	src.Append(makeSnips("srcD", n)...)

	// Track the smallest offset requested per phase to prove resume.
	var minOffset atomic.Int64
	minOffset.Store(math.MaxInt64)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		off, _ := strconv.Atoi(r.URL.Query().Get("offset"))
		for {
			cur := minOffset.Load()
			if int64(off) >= cur || minOffset.CompareAndSwap(cur, int64(off)) {
				break
			}
		}
		src.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	cursorPath := filepath.Join(t.TempDir(), "cursors.json")
	cfg := fastCfg()
	cfg.CursorPath = cursorPath
	sink := newRecSink(300 * time.Microsecond)
	sink.dedup = true

	// Phase 1: ingest part of the stream, then stop. Close drains the
	// queue and persists the acknowledged cursor.
	m1, err := NewManager(sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Add(NewHTTPFetcher("srcD", ts.URL, nil)); err != nil {
		t.Fatal(err)
	}
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return sink.accepted() >= 20 },
		"phase 1 ingested a prefix")
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	k1 := readCursor(t, cursorPath, "srcD")
	if k1 <= 0 || k1 >= n {
		t.Fatalf("phase 1 cursor = %d, want mid-stream (0, %d)", k1, n)
	}

	// Phase 2: a fresh manager against the same cursor file and sink
	// (the sink plays the role of the restored pipeline).
	minOffset.Store(math.MaxInt64)
	m2, err := NewManager(sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Add(NewHTTPFetcher("srcD", ts.URL, nil)); err != nil {
		t.Fatal(err)
	}
	if err := m2.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return sink.accepted() == n && m2.CaughtUp() },
		"phase 2 completed the stream")
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}

	if got := minOffset.Load(); got != int64(k1) {
		t.Fatalf("phase 2 first offset = %d, want resume at acknowledged cursor %d", got, k1)
	}
	for i := 1; i <= n; i++ {
		if c := sink.count(event.SnippetID(i)); c != 1 {
			t.Fatalf("snippet %d accepted %d times, want exactly once", i, c)
		}
	}
	// Redeliveries from the unacknowledged tail must have been rejected
	// by dedup and counted as duplicates, not re-accepted.
	st := m2.Status()[0]
	if int(st.Duplicates) != sink.dupRejections() {
		t.Fatalf("runner duplicates %d != sink rejections %d", st.Duplicates, sink.dupRejections())
	}
	if k2 := readCursor(t, cursorPath, "srcD"); k2 != n {
		t.Fatalf("final cursor = %d, want %d", k2, n)
	}
}

// Scenario 5: graceful drain mid-burst under the lossless (block)
// policy. Whatever cursor K the final checkpoint acknowledges, records
// 1..K are all in the sink — no acknowledged loss, nothing shed.
func TestFeedDrainMidBurstNoAcknowledgedLoss(t *testing.T) {
	const n = 300
	cursorPath := filepath.Join(t.TempDir(), "cursors.json")
	cfg := fastCfg()
	cfg.CursorPath = cursorPath
	cfg.QueueDepth = 8
	sink := newRecSink(200 * time.Microsecond)
	m, err := NewManager(sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(NewReplay("srcE", makeSnips("srcE", n), 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return sink.accepted() >= 40 },
		"burst in flight")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	k := readCursor(t, cursorPath, "srcE")
	if k <= 0 {
		t.Fatalf("acknowledged cursor = %d, want > 0", k)
	}
	for i := 1; i <= k; i++ {
		if sink.count(event.SnippetID(i)) == 0 {
			t.Fatalf("cursor acknowledges %d records but snippet %d never reached the sink", k, i)
		}
	}
	st := m.Status()[0]
	if st.Shed != 0 {
		t.Fatalf("shed = %d under the block policy, want 0", st.Shed)
	}
	if int(st.Snippets) != sink.accepted() {
		t.Fatalf("runner counted %d ingested, sink accepted %d", st.Snippets, sink.accepted())
	}
}

// A hung source trips the per-fetch timeout, is retried with backoff,
// and ingest completes once the source wakes up.
func TestFeedFetchTimeoutRecovers(t *testing.T) {
	src := &NDJSONSource{}
	src.Append(makeSnips("srcF", 6)...)
	inj := &faults.Injector{}
	ts := httptest.NewServer(inj.Wrap(src))
	defer ts.Close()

	cfg := fastCfg()
	cfg.FetchTimeout = 25 * time.Millisecond
	inj.SetDelay(500 * time.Millisecond) // every fetch hangs past the timeout

	sink := newRecSink(0)
	m, err := NewManager(sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(NewHTTPFetcher("srcF", ts.URL, nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	waitFor(t, 10*time.Second, func() bool { return m.Status()[0].FetchErrors >= 2 },
		"timeouts recorded while the source hangs")
	inj.SetDelay(0)
	waitFor(t, 10*time.Second, func() bool { return sink.accepted() == 6 && m.CaughtUp() },
		"ingest completed after the source woke up")
}

// A panicking fetcher costs one failed attempt, not the process.
func TestFeedFetcherPanicContained(t *testing.T) {
	inner := NewReplay("srcG", makeSnips("srcG", 5), 0)
	var calls atomic.Int64
	f := &Func{Src: "srcG", Fn: func(ctx context.Context, cursor string, limit int) (Batch, error) {
		if calls.Add(1) == 1 {
			panic("fetcher bug")
		}
		return inner.Fetch(ctx, cursor, limit)
	}}
	sink := newRecSink(0)
	m, err := NewManager(sink, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(f); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	waitFor(t, 10*time.Second, func() bool { return sink.accepted() == 5 && m.CaughtUp() },
		"ingest completed despite the fetcher panic")
	st := m.Status()[0]
	if st.FetchErrors < 1 {
		t.Fatalf("fetch errors = %d, want the panic counted as a failure", st.FetchErrors)
	}
}

// Under the shed policy a full queue drops overflow instead of
// blocking, the drops are counted, and the cursor still advances —
// lossy but live, by construction.
func TestFeedShedPolicyCountsDrops(t *testing.T) {
	const n = 200
	cfg := fastCfg()
	cfg.Shed = true
	cfg.QueueDepth = 2
	cfg.BatchSize = 32
	cfg.IngestWorkers = 1
	sink := newRecSink(time.Millisecond)
	m, err := NewManager(sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(NewReplay("srcH", makeSnips("srcH", n), 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return m.Status()[0].CaughtUp },
		"replay drained under shed policy")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	st := m.Status()[0]
	if st.Shed == 0 {
		t.Fatal("expected sheds with a 2-deep queue and a slow sink")
	}
	if int(st.Snippets)+int(st.Shed) != n {
		t.Fatalf("ingested %d + shed %d != %d", st.Snippets, st.Shed, n)
	}
}

// readCursor parses the persisted cursor file and returns src's cursor
// as an integer offset.
func readCursor(t *testing.T, path, src string) int {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading cursor file: %v", err)
	}
	var cf cursorFile
	if err := json.Unmarshal(b, &cf); err != nil {
		t.Fatalf("decoding cursor file: %v", err)
	}
	ent, ok := cf.Sources[src]
	if !ok {
		t.Fatalf("cursor file has no entry for %s: %s", src, b)
	}
	n, err := strconv.Atoi(ent.Cursor)
	if err != nil {
		t.Fatalf("cursor %q not an offset: %v", ent.Cursor, err)
	}
	return n
}
