package feed

import (
	"fmt"

	"repro/internal/event"
)

// Spec is a declarative feed definition: enough to (re)construct the
// source's Fetcher on whichever worker the cluster assigns it to. Specs
// travel over the wire (router → worker admin endpoint), so they carry
// data, never code — the receiving manager turns a Spec into a Fetcher
// via the built-in constructors or Config.SpecFetcher.
type Spec struct {
	// Source names the feed; it is the assignment key, the cursor key,
	// and the consistent-hash routing key, so it must be stable.
	Source string `json:"source"`
	// Type selects the fetcher constructor: "ndjson" is built in; any
	// other value is delegated to Config.SpecFetcher.
	Type string `json:"type"`
	// URL is the endpoint for "ndjson" specs.
	URL string `json:"url,omitempty"`
	// Events, Sources, and Seed parameterise generated-corpus replay
	// specs (type "replay"): the corpus is regenerated deterministically
	// on the assigned worker rather than shipped.
	Events  int   `json:"events,omitempty"`
	Sources int   `json:"sources,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	// IDOffset is added to replayed snippet IDs so replay corpora cannot
	// collide with IDs minted by the extraction pipeline.
	IDOffset uint64 `json:"id_offset,omitempty"`
}

// SpecFetcher builds a Fetcher from a Spec for types the feed package
// does not know natively (e.g. "replay", which needs datagen — injected
// by the cmd layer to keep this package dependency-free).
type SpecFetcher func(Spec) (Fetcher, error)

// Assignment is one source the cluster coordinator wants running on
// this worker.
type Assignment struct {
	Spec Spec `json:"spec"`
	// Cursor is where the runner should resume. Empty means "resume
	// from this worker's own restored cursor" — the right choice both
	// for an unchanged assignment and for a readmitted owner whose
	// durable cursor is exactly the point the interim coverage started
	// at. Non-empty cursors carry the coordinator's last durably
	// observed position across a permanent handoff.
	Cursor string `json:"cursor,omitempty"`
	// Interim marks a takeover tenure: this worker is covering for a
	// quarantined ring owner. When the assignment is later withdrawn,
	// the manager deletes the tenure's ingested data (SourceRemover) so
	// the returning owner's copy is the only one — the mechanism that
	// keeps the handoff dup-free without cross-worker cursor agreement.
	Interim bool `json:"interim,omitempty"`
}

// SourceRemover is optionally implemented by a Sink. The manager calls
// it when an interim assignment is withdrawn: the covering worker's
// tenure data is removed wholesale, because the readmitted ring owner
// re-ingests the same records from its own durable cursor.
type SourceRemover interface {
	RemoveSource(event.SourceID) bool
}

// AssignedStatus describes one cluster-assigned runner.
type AssignedStatus struct {
	Source   string `json:"source"`
	Cursor   string `json:"cursor"`
	Durable  string `json:"durable"` // last checkpointed cursor: safe failover resume point
	CaughtUp bool   `json:"caught_up"`
	Interim  bool   `json:"interim"`
	State    State  `json:"state"`
}

// AssignResult reports what one Assign call changed.
type AssignResult struct {
	Running []AssignedStatus  `json:"running"`
	Stopped map[string]string `json:"stopped,omitempty"` // source → drained final cursor
	Dropped []string          `json:"dropped,omitempty"` // interim tenures whose data was removed
}

// buildFetcher turns a Spec into a Fetcher.
func (m *Manager) buildFetcher(sp Spec) (Fetcher, error) {
	if sp.Source == "" {
		return nil, fmt.Errorf("feed: spec needs a source")
	}
	switch sp.Type {
	case "ndjson":
		if sp.URL == "" {
			return nil, fmt.Errorf("feed: ndjson spec %q needs a url", sp.Source)
		}
		return NewHTTPFetcher(event.SourceID(sp.Source), sp.URL, nil), nil
	default:
		if m.cfg.SpecFetcher == nil {
			return nil, fmt.Errorf("feed: no fetcher builder for spec type %q", sp.Type)
		}
		f, err := m.cfg.SpecFetcher(sp)
		if err != nil {
			return nil, err
		}
		if string(f.Source()) != sp.Source {
			return nil, fmt.Errorf("feed: spec fetcher for %q reports source %q", sp.Source, f.Source())
		}
		return f, nil
	}
}
