package identify

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/datagen"
	"repro/internal/event"
)

// Property-based invariants of story identification, checked on random
// mini-corpora:
//
//  1. Partition: every processed snippet is in exactly one story, and
//     Assignment agrees with story membership.
//  2. Source purity: every story holds only its own source's snippets.
//  3. Aggregate consistency: EntityFreq and Centroid equal the sums over
//     member snippets.
//  4. Chronology: story snippet lists are time-ordered.

func randomMiniCorpus(seed int64) []*event.Snippet {
	cfg := datagen.DefaultConfig()
	cfg.Seed = seed
	cfg.Sources = 1 + int(seed%3)
	cfg.Stories = 3 + int(seed%5)
	cfg.EventsPerStory = 4
	return datagen.Generate(cfg).Snippets
}

func checkInvariants(t *testing.T, seed int64, cfg Config) bool {
	t.Helper()
	snippets := randomMiniCorpus(seed)
	ids := RunAll(snippets, cfg, nil)

	seen := map[event.SnippetID]event.StoryID{}
	for src, id := range ids {
		for _, st := range id.Stories() {
			if st.Source != src {
				t.Logf("seed %d: story %d source %s in identifier %s", seed, st.ID, st.Source, src)
				return false
			}
			entFreq := map[event.Entity]int{}
			centroid := map[string]float64{}
			for i, sn := range st.Snippets {
				if prev, dup := seen[sn.ID]; dup {
					t.Logf("seed %d: snippet %d in stories %d and %d", seed, sn.ID, prev, st.ID)
					return false
				}
				seen[sn.ID] = st.ID
				if id.StoryOf(sn.ID) != st.ID {
					t.Logf("seed %d: assignment mismatch for %d", seed, sn.ID)
					return false
				}
				if sn.Source != st.Source {
					return false
				}
				if i > 0 && sn.Timestamp.Before(st.Snippets[i-1].Timestamp) {
					t.Logf("seed %d: story %d not chronological", seed, st.ID)
					return false
				}
				for _, e := range sn.Entities {
					entFreq[e]++
				}
				for _, tm := range sn.Terms {
					centroid[tm.Token] += tm.Weight
				}
			}
			gotFreq, gotCen := st.EntityFreqMap(), st.CentroidMap()
			if len(entFreq) != len(gotFreq) {
				t.Logf("seed %d: story %d entity aggregate drift", seed, st.ID)
				return false
			}
			for e, c := range entFreq {
				if gotFreq[e] != c {
					return false
				}
			}
			for tok, w := range centroid {
				if d := gotCen[tok] - w; d > 1e-9 || d < -1e-9 {
					t.Logf("seed %d: story %d centroid drift on %s", seed, st.ID, tok)
					return false
				}
			}
		}
	}
	if len(seen) != len(snippets) {
		t.Logf("seed %d: %d of %d snippets assigned", seed, len(seen), len(snippets))
		return false
	}
	return true
}

func TestInvariantsQuickTemporal(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		return checkInvariants(t, seed%1000, DefaultConfig())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsQuickComplete(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeComplete
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		return checkInvariants(t, seed%1000, cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsSurviveRepairAndMoves(t *testing.T) {
	// Aggressive repair plus random moves must preserve the partition.
	cfg := DefaultConfig()
	cfg.RepairEvery = 8
	snippets := randomMiniCorpus(42)
	ids := RunAll(snippets, cfg, nil)
	rng := rand.New(rand.NewSource(42))
	for _, id := range ids {
		stories := id.Stories()
		if len(stories) < 2 {
			continue
		}
		for i := 0; i < 10; i++ {
			from := stories[rng.Intn(len(stories))]
			to := stories[rng.Intn(len(stories))]
			if from.Len() == 0 || from.ID == to.ID || to.Len() == 0 {
				continue
			}
			id.Move(from.Snippets[0].ID, to.ID)
			stories = id.Stories() // refresh: moves can drop stories
			if len(stories) < 2 {
				break
			}
		}
	}
	// Re-verify partition.
	seen := map[event.SnippetID]bool{}
	for _, id := range ids {
		for _, st := range id.Stories() {
			for _, sn := range st.Snippets {
				if seen[sn.ID] {
					t.Fatalf("snippet %d duplicated after moves", sn.ID)
				}
				seen[sn.ID] = true
				if id.StoryOf(sn.ID) != st.ID {
					t.Fatalf("assignment stale for %d", sn.ID)
				}
			}
		}
	}
	if len(seen) != len(snippets) {
		t.Fatalf("partition lost snippets: %d of %d", len(seen), len(snippets))
	}
}

func TestWindowAggregateCacheCorrectness(t *testing.T) {
	// The cached windowed score must match a freshly computed one for
	// query times within the same bucket, and refresh across buckets.
	cfg := DefaultConfig()
	cfg.RepairEvery = 0
	cfg.UseEntityIDF = false
	id := New("nyt", cfg, nil)
	base := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		sn := &event.Snippet{
			ID: event.SnippetID(i + 1), Source: "nyt",
			Timestamp: base.Add(time.Duration(i) * 24 * time.Hour),
			Entities:  []event.Entity{"UKR"},
			Terms:     []event.Term{{Token: datagen.Word(i % 6), Weight: 1}},
		}
		sn.Normalize()
		id.Process(sn)
	}
	for _, st := range id.Stories() {
		probe := &event.Snippet{
			ID: 999, Source: "nyt", Timestamp: base.Add(10 * 24 * time.Hour),
			Entities: []event.Entity{"UKR"},
			Terms:    []event.Term{{Token: datagen.Word(1), Weight: 1}},
		}
		probe.Normalize()
		s1 := id.score(probe, st)
		s2 := id.score(probe, st) // cache hit
		if s1 != s2 {
			t.Fatalf("cached score %g != fresh %g", s2, s1)
		}
		// A probe in a far bucket must not reuse the stale aggregate: its
		// score against a story with no window content is 0.
		far := probe.Clone()
		far.Timestamp = base.Add(400 * 24 * time.Hour)
		if got := id.score(far, st); got != 0 {
			t.Fatalf("far probe scored %g against out-of-window story", got)
		}
	}
}
