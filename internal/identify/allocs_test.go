package identify

import (
	"testing"
	"time"

	"repro/internal/event"
)

// TestProcessSteadyStateAllocs pins the steady-state allocation profile of
// the identification hot path. After warm-up (stories exist, scratch
// buffers and vector capacities are grown), a Process call whose snippet
// attaches to an existing story must not allocate at all: candidate
// scanning reuses candScratch, scoring runs the ID-space kernels on
// pre-interned vectors, and the story aggregates update in place. The test
// processes a probe and then removes it again so every measured iteration
// sees the identical warm state.
func TestProcessSteadyStateAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeComplete
	cfg.RepairEvery = 0
	cfg.UseSketchIndex = false
	cfg.UseEntityIDF = false
	id := New("nyt", cfg, nil)
	base := time.Date(2014, 7, 1, 0, 0, 0, 0, time.UTC)

	// Warm-up corpus: three clearly separated stories.
	topics := []struct {
		ents  []event.Entity
		terms []event.Term
	}{
		{[]event.Entity{"MAL", "UKR"}, []event.Term{{Token: "crash", Weight: 2}, {Token: "plane", Weight: 1}}},
		{[]event.Entity{"GAZ", "ISR"}, []event.Term{{Token: "strike", Weight: 2}, {Token: "border", Weight: 1}}},
		{[]event.Entity{"FIFA", "GER"}, []event.Term{{Token: "final", Weight: 2}, {Token: "goal", Weight: 1}}},
	}
	next := event.SnippetID(1)
	for i := 0; i < 30; i++ {
		tp := topics[i%len(topics)]
		sn := &event.Snippet{
			ID: next, Source: "nyt",
			Timestamp: base.Add(time.Duration(i) * time.Hour),
			Entities:  append([]event.Entity(nil), tp.ents...),
			Terms:     append([]event.Term(nil), tp.terms...),
		}
		next++
		sn.Normalize()
		id.Process(sn)
	}

	probe := &event.Snippet{
		ID: next, Source: "nyt",
		Timestamp: base.Add(40 * time.Hour),
		Entities:  []event.Entity{"MAL", "UKR"},
		Terms:     []event.Term{{Token: "crash", Weight: 2}, {Token: "plane", Weight: 1}},
	}
	probe.Normalize()

	cycle := func() {
		sid := id.Process(probe)
		st := id.stories[sid]
		if st == nil || !st.Remove(probe.ID) {
			t.Fatalf("probe did not attach cleanly to story %d", sid)
		}
		delete(id.assign, probe.ID)
	}
	// Extra warm cycles beyond AllocsPerRun's own warm-up run: the first
	// attach may still grow the story's snippet slice capacity.
	for i := 0; i < 3; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("steady-state Process: %v allocs/op, want 0", allocs)
	}
}
