package identify

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/datagen"
	"repro/internal/event"
)

// canonicalPartition serialises the story assignments of a run into a
// representation independent of story-ID *values*: per source, each
// story becomes its sorted snippet-ID list, and stories are ordered by
// their smallest member. Two runs that partition the snippets the same
// way produce byte-identical output even though the shared atomic
// allocator hands out different IDs depending on goroutine timing.
func canonicalPartition(ids map[event.SourceID]*Identifier) []byte {
	sources := make([]event.SourceID, 0, len(ids))
	for src := range ids {
		sources = append(sources, src)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })

	var buf bytes.Buffer
	for _, src := range sources {
		stories := make([][]event.SnippetID, 0, len(ids[src].Stories()))
		for _, st := range ids[src].Stories() {
			members := make([]event.SnippetID, 0, len(st.Snippets))
			for _, sn := range st.Snippets {
				members = append(members, sn.ID)
			}
			sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
			stories = append(stories, members)
		}
		sort.Slice(stories, func(i, j int) bool { return stories[i][0] < stories[j][0] })
		fmt.Fprintf(&buf, "source %s\n", src)
		for _, members := range stories {
			fmt.Fprintf(&buf, "  %v\n", members)
		}
	}
	return buf.Bytes()
}

// TestRunAllParallelDeterministic proves that the parallel batch runner
// produces the same story partition as the sequential one, across three
// generated corpora. Run under -race this also validates that the only
// state the per-source goroutines share — the atomic ID allocator and
// the result map — is synchronised correctly.
func TestRunAllParallelDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := datagen.DefaultConfig()
			cfg.Seed = seed
			corpus := datagen.Generate(cfg)
			if len(corpus.Snippets) == 0 {
				t.Fatal("empty corpus")
			}

			idCfg := DefaultConfig()
			seq := canonicalPartition(RunAll(corpus.Snippets, idCfg, nil))

			// Three parallel runs per seed: goroutine interleavings vary
			// between runs, the partition must not.
			for rep := 0; rep < 3; rep++ {
				par := canonicalPartition(RunAllParallel(corpus.Snippets, idCfg, nil))
				if !bytes.Equal(seq, par) {
					t.Fatalf("seed %d rep %d: parallel partition differs from sequential\nsequential:\n%s\nparallel:\n%s",
						seed, rep, seq, par)
				}
			}
		})
	}
}
