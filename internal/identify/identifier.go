package identify

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/event"
	"repro/internal/similarity"
	"repro/internal/sketch"
)

// Identifier performs incremental story identification for a single data
// source. Snippets are fed in arrival order through Process; the evolving
// story set is available through Stories/Assignment at any time.
//
// An Identifier is not safe for concurrent use; the stream engine
// serialises access per source.
type Identifier struct {
	source event.SourceID
	cfg    Config
	alloc  *IDAlloc

	stories map[event.StoryID]*event.Story
	order   []event.StoryID // creation order, for deterministic iteration
	assign  map[event.SnippetID]event.StoryID

	// Sketch index (optional): MinHash signatures over story content with
	// a banded LSH index for candidate retrieval.
	hasher *sketch.MinHasher
	lsh    *sketch.LSH
	sigs   map[event.StoryID]sketch.Signature

	// winCache memoises per-story windowed aggregates. Queries are
	// quantised to buckets of width ω/2, so the near-chronological
	// snippet stream reuses one aggregate for many scores instead of
	// rebuilding the window centroid per comparison (which would make
	// temporal mode pay more per comparison than the complete baseline
	// saves in comparison count).
	winCache map[event.StoryID]*windowAggregate

	// entCount tracks how many processed snippets mention each entity;
	// it backs the IDF-style entity weighting (popular entities carry
	// little story-discriminating signal on real news streams). entTotal
	// is the sum of all counts, so the weighter can normalise by the mean
	// and stay neutral on corpora with near-uniform entity usage.
	entCount map[event.Entity]int
	entTotal int

	sinceRepair int
	stats       Stats
}

// New creates an identifier for one source. All identifiers of a run share
// the allocator so story IDs are globally unique.
func New(source event.SourceID, cfg Config, alloc *IDAlloc) *Identifier {
	if alloc == nil {
		alloc = &IDAlloc{}
	}
	id := &Identifier{
		source:   source,
		cfg:      cfg,
		alloc:    alloc,
		stories:  make(map[event.StoryID]*event.Story),
		assign:   make(map[event.SnippetID]event.StoryID),
		winCache: make(map[event.StoryID]*windowAggregate),
		entCount: make(map[event.Entity]int),
	}
	if cfg.UseSketchIndex {
		bands, rows := cfg.SketchBands, cfg.SketchRows
		if bands <= 0 {
			bands = 32
		}
		if rows <= 0 {
			rows = 2
		}
		id.hasher = sketch.NewMinHasher(bands*rows, 0x5350)
		id.lsh = sketch.NewLSH(bands, rows)
		id.sigs = make(map[event.StoryID]sketch.Signature)
	}
	return id
}

// Source returns the identifier's data source.
func (id *Identifier) Source() event.SourceID { return id.source }

// Stats returns a snapshot of the work counters.
func (id *Identifier) Stats() Stats { return id.stats }

// StoryCount returns the current number of stories.
func (id *Identifier) StoryCount() int { return len(id.stories) }

// Process assigns one snippet to its best-matching story, creating a new
// story when nothing clears the attach threshold, and returns the story ID.
// Process panics if the snippet belongs to a different source — routing is
// the caller's job.
func (id *Identifier) Process(s *event.Snippet) event.StoryID {
	if s.Source != id.source {
		panic(fmt.Sprintf("identify: snippet of source %q fed to identifier of %q", s.Source, id.source))
	}
	span := metProcessLat.Start()
	startComparisons := id.stats.Comparisons
	id.stats.Processed++
	if id.cfg.UseEntityIDF {
		for _, e := range s.Entities {
			id.entCount[e]++
			id.entTotal++
		}
	}

	best, bestScore := event.StoryID(0), 0.0
	for _, cand := range id.candidates(s) {
		score := id.score(s, cand)
		id.stats.Comparisons++
		if score > bestScore {
			best, bestScore = cand.ID, score
		}
	}

	var target event.StoryID
	if best != 0 && bestScore >= id.cfg.AttachThreshold {
		id.stories[best].Add(s)
		id.updateSketch(best, s)
		id.stats.Attached++
		metAttached.Inc()
		target = best
	} else {
		st := event.NewStory(id.alloc.Next(), id.source)
		st.Add(s)
		id.stories[st.ID] = st
		id.order = append(id.order, st.ID)
		id.indexStory(st)
		id.stats.Created++
		metCreated.Inc()
		target = st.ID
	}
	id.assign[s.ID] = target
	metProcessed.Inc()
	metComparisons.Add(uint64(id.stats.Comparisons - startComparisons))
	span.End()

	if id.cfg.RepairEvery > 0 {
		if id.sinceRepair++; id.sinceRepair >= id.cfg.RepairEvery {
			id.Repair()
			id.sinceRepair = 0
		}
	}
	return target
}

// candidates returns the stories worth scoring for snippet s, per the
// configured mode (Figure 2) and sketch-index setting.
func (id *Identifier) candidates(s *event.Snippet) []*event.Story {
	var out []*event.Story
	if id.cfg.UseSketchIndex {
		sig := id.hasher.Sign(snippetElems(s))
		for _, key := range id.lsh.Query(sig, ^uint64(0)) {
			st, ok := id.stories[event.StoryID(key)]
			if !ok {
				continue
			}
			if id.cfg.Mode == ModeTemporal && !id.inWindow(st, s.Timestamp) {
				continue
			}
			out = append(out, st)
		}
		// Deterministic scoring order.
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out
	}
	for _, sid := range id.order {
		st := id.stories[sid]
		if st == nil {
			continue
		}
		if id.cfg.Mode == ModeTemporal && !id.inWindow(st, s.Timestamp) {
			continue
		}
		out = append(out, st)
	}
	return out
}

// inWindow reports whether the story has any snippet inside [t−ω, t+ω].
func (id *Identifier) inWindow(st *event.Story, t time.Time) bool {
	return !st.Start.After(t.Add(id.cfg.Window)) && !st.End.Before(t.Add(-id.cfg.Window))
}

// windowAggregate is a cached windowed story summary. Queries quantise
// the snippet timestamp to buckets of ω/2; a cache entry is valid while
// the query falls in the same bucket and the story is unchanged, so the
// near-chronological stream amortises the window-centroid construction
// across many scores.
type windowAggregate struct {
	bucket   int64 // quantised query time
	version  int   // story length when built
	centroid map[string]float64
	ents     map[event.Entity]int
	norm     float64
}

// entityWeight is the IDF-style weighter over the source's entity-mention
// counts, normalised by the mean count: w(e) = 1 / (1 + ln(1 + c(e)/mean)).
// On near-uniform corpora every weight is ≈ 1/(1+ln 2) and the weighted
// Jaccard reduces to the unweighted one; only genuinely skewed entities
// are down-weighted.
func (id *Identifier) entityWeight(e event.Entity) float64 {
	mean := 1.0
	if n := len(id.entCount); n > 0 {
		mean = float64(id.entTotal) / float64(n)
	}
	return 1 / (1 + logf(1+float64(id.entCount[e])/mean))
}

func (id *Identifier) weighter() similarity.EntityWeighter {
	if !id.cfg.UseEntityIDF {
		return nil
	}
	return id.entityWeight
}

// score computes the snippet-story similarity. In temporal mode the story
// is summarised by only the snippets inside the window, so the comparison
// reflects "the story as it currently is"; in complete mode the whole
// history is used (the overfitting baseline).
func (id *Identifier) score(s *event.Snippet, st *event.Story) float64 {
	switch id.cfg.Mode {
	case ModeTemporal:
		agg := id.windowAggregateFor(s.Timestamp, st)
		if agg == nil {
			return 0
		}
		ref := nearestTimestamp(st, s.Timestamp)
		return similarity.SnippetStoryW(s, agg.ents, agg.centroid, agg.norm, ref,
			id.cfg.TemporalScale, id.cfg.Weights, id.weighter())
	default: // ModeComplete
		ref := nearestTimestamp(st, s.Timestamp)
		return similarity.SnippetStoryW(s, st.EntityFreq, st.Centroid, st.CentroidNorm(), ref,
			id.cfg.TemporalScale, id.cfg.Weights, id.weighter())
	}
}

// windowAggregateFor returns the (possibly cached) windowed aggregate of
// st around t. The window is anchored at the bucket's midpoint and spans
// [mid−ω−ω/4, mid+ω+ω/4], which covers the exact window of every query
// time inside the bucket.
func (id *Identifier) windowAggregateFor(t time.Time, st *event.Story) *windowAggregate {
	half := id.cfg.Window / 2
	if half <= 0 {
		half = time.Nanosecond
	}
	bucket := t.UnixNano() / int64(half)
	if agg := id.winCache[st.ID]; agg != nil && agg.bucket == bucket && agg.version == st.Len() {
		return agg
	}
	mid := time.Unix(0, bucket*int64(half)+int64(half)/2).UTC()
	pad := id.cfg.Window + id.cfg.Window/4
	centroid, ents := st.WindowedCentroid(mid.Add(-pad), mid.Add(pad))
	if len(centroid) == 0 && len(ents) == 0 {
		return nil
	}
	var cnorm float64
	for _, w := range centroid {
		cnorm += w * w
	}
	agg := &windowAggregate{
		bucket:   bucket,
		version:  st.Len(),
		centroid: centroid,
		ents:     ents,
		norm:     sqrt(cnorm),
	}
	id.winCache[st.ID] = agg
	return agg
}

// nearestTimestamp returns the story snippet timestamp closest to t.
func nearestTimestamp(st *event.Story, t time.Time) time.Time {
	n := len(st.Snippets)
	if n == 0 {
		return t
	}
	i := sort.Search(n, func(i int) bool { return !st.Snippets[i].Timestamp.Before(t) })
	switch {
	case i == 0:
		return st.Snippets[0].Timestamp
	case i == n:
		return st.Snippets[n-1].Timestamp
	default:
		before, after := st.Snippets[i-1].Timestamp, st.Snippets[i].Timestamp
		if t.Sub(before) <= after.Sub(t) {
			return before
		}
		return after
	}
}

// Stories returns the current story set in creation order. The returned
// stories are live; callers must not mutate them.
func (id *Identifier) Stories() []*event.Story {
	out := make([]*event.Story, 0, len(id.stories))
	for _, sid := range id.order {
		if st := id.stories[sid]; st != nil && st.Len() > 0 {
			out = append(out, st)
		}
	}
	return out
}

// Story returns the story with the given ID, or nil.
func (id *Identifier) Story(sid event.StoryID) *event.Story { return id.stories[sid] }

// StoryOf returns the story a snippet is currently assigned to (0 if the
// snippet is unknown).
func (id *Identifier) StoryOf(snID event.SnippetID) event.StoryID { return id.assign[snID] }

// Assignment returns a copy of the snippet→story assignment.
func (id *Identifier) Assignment() map[event.SnippetID]event.StoryID {
	out := make(map[event.SnippetID]event.StoryID, len(id.assign))
	for k, v := range id.assign {
		out[k] = v
	}
	return out
}

// Move re-homes a snippet from one story to another (used by story
// refinement, paper Figure 1d). Both stories must belong to this source.
// Emptied stories are dropped. It reports whether the move happened.
func (id *Identifier) Move(snID event.SnippetID, to event.StoryID) bool {
	fromID, ok := id.assign[snID]
	if !ok || fromID == to {
		return false
	}
	from, target := id.stories[fromID], id.stories[to]
	if from == nil || target == nil {
		return false
	}
	var moved *event.Snippet
	for _, s := range from.Snippets {
		if s.ID == snID {
			moved = s
			break
		}
	}
	if moved == nil {
		return false
	}
	from.Remove(snID)
	target.Add(moved)
	id.assign[snID] = to
	id.reindexStory(from)
	id.reindexStory(target)
	if from.Len() == 0 {
		id.dropStory(fromID)
	}
	return true
}

// sketch maintenance --------------------------------------------------------

// snippetElems renders a snippet as sketch elements. Sketches are built
// over the *entity set* — small, stable across a story's evolution, and
// highly overlapping between a story and its snippets — rather than the
// description vocabulary, whose union grows with story length and would
// drive the snippet-vs-story Jaccard (and hence LSH recall) toward zero.
// Entity-free snippets fall back to description tokens so they still
// sketch to something.
func snippetElems(s *event.Snippet) []string {
	if len(s.Entities) > 0 {
		elems := make([]string, len(s.Entities))
		for i, e := range s.Entities {
			elems[i] = "e:" + string(e)
		}
		return elems
	}
	elems := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		elems[i] = "t:" + t.Token
	}
	return elems
}

func storyElems(st *event.Story) []string {
	if len(st.EntityFreq) > 0 {
		elems := make([]string, 0, len(st.EntityFreq))
		for e := range st.EntityFreq {
			elems = append(elems, "e:"+string(e))
		}
		return elems
	}
	elems := make([]string, 0, len(st.Centroid))
	for tok := range st.Centroid {
		elems = append(elems, "t:"+tok)
	}
	return elems
}

func (id *Identifier) indexStory(st *event.Story) {
	if id.lsh == nil {
		return
	}
	sig := id.hasher.Sign(storyElems(st))
	id.sigs[st.ID] = sig
	id.lsh.Add(uint64(st.ID), sig)
}

func (id *Identifier) updateSketch(sid event.StoryID, s *event.Snippet) {
	if id.lsh == nil {
		return
	}
	sig := id.sigs[sid]
	if sig == nil {
		id.indexStory(id.stories[sid])
		return
	}
	// MinHash is a running minimum: folding the new snippet's elements in
	// is equivalent to re-signing the union.
	id.hasher.Update(sig, snippetElems(s))
	id.lsh.Add(uint64(sid), sig)
}

func (id *Identifier) reindexStory(st *event.Story) {
	if id.lsh == nil || st == nil {
		return
	}
	// Removal invalidates the running-minimum signature; re-sign fully.
	id.indexStory(st)
}

func (id *Identifier) dropStory(sid event.StoryID) {
	delete(id.stories, sid)
	delete(id.winCache, sid)
	if id.lsh != nil {
		id.lsh.Remove(uint64(sid))
		delete(id.sigs, sid)
	}
	// order keeps the stale ID (Stories() skips missing entries); compact
	// once stale entries dominate, or a long-running stream with heavy
	// merge repair would scan an ever-growing list per snippet.
	if len(id.order) > 2*len(id.stories)+16 {
		live := id.order[:0]
		for _, s := range id.order {
			if _, ok := id.stories[s]; ok {
				live = append(live, s)
			}
		}
		id.order = live
	}
}
