package identify

import (
	"fmt"
	"time"

	"repro/internal/event"
	"repro/internal/similarity"
	"repro/internal/sketch"
	"repro/internal/vocab"
)

// Identifier performs incremental story identification for a single data
// source. Snippets are fed in arrival order through Process; the evolving
// story set is available through Stories/Assignment at any time.
//
// An Identifier is not safe for concurrent use; the stream engine
// serialises access per source.
type Identifier struct {
	source event.SourceID
	cfg    Config
	alloc  *IDAlloc

	stories map[event.StoryID]*event.Story
	order   []event.StoryID // creation order, for deterministic iteration
	assign  map[event.SnippetID]event.StoryID

	// Sketch index (optional): MinHash signatures over story content with
	// a banded LSH index for candidate retrieval.
	hasher *sketch.MinHasher
	lsh    *sketch.LSH
	sigs   map[event.StoryID]sketch.Signature

	// winCache memoises per-story windowed aggregates. Queries are
	// quantised to buckets of width ω/2, so the near-chronological
	// snippet stream reuses one aggregate for many scores instead of
	// rebuilding the window centroid per comparison (which would make
	// temporal mode pay more per comparison than the complete baseline
	// saves in comparison count).
	winCache map[event.StoryID]*windowAggregate

	// entCount tracks how many processed snippets mention each entity,
	// indexed by interned entity symbol; it backs the IDF-style entity
	// weighting (popular entities carry little story-discriminating signal
	// on real news streams). entTotal is the sum of all counts and
	// entDistinct the number of entities seen at least once, so the
	// weighter can normalise by the mean and stay neutral on corpora with
	// near-uniform entity usage.
	entCount    []int32
	entTotal    int
	entDistinct int

	// ew is the entity weighter handed to the similarity kernels, bound
	// once at construction: rebuilding the method value per score call
	// would put one allocation on every comparison.
	ew similarity.IDWeighter

	// candScratch is the reusable backing array for candidates(), so the
	// per-snippet candidate scan does not allocate in steady state.
	candScratch []*event.Story

	// ufScratch is the reusable union-find parent buffer of the repair
	// pass's connectivity check (see components).
	ufScratch []int

	// sigScratch and lshScratch are the sketch-index per-event buffers:
	// the probe signature and the LSH candidate list are rebuilt in place
	// for every snippet instead of allocated.
	sigScratch sketch.Signature
	lshScratch []uint64

	sinceRepair int
	stats       Stats
}

// New creates an identifier for one source. All identifiers of a run share
// the allocator so story IDs are globally unique.
func New(source event.SourceID, cfg Config, alloc *IDAlloc) *Identifier {
	if alloc == nil {
		alloc = &IDAlloc{}
	}
	id := &Identifier{
		source:   source,
		cfg:      cfg,
		alloc:    alloc,
		stories:  make(map[event.StoryID]*event.Story),
		assign:   make(map[event.SnippetID]event.StoryID),
		winCache: make(map[event.StoryID]*windowAggregate),
	}
	if cfg.UseEntityIDF {
		id.ew = id.entityWeightID
	}
	if cfg.UseSketchIndex {
		bands, rows := cfg.SketchBands, cfg.SketchRows
		if bands <= 0 {
			bands = 32
		}
		if rows <= 0 {
			rows = 2
		}
		id.hasher = sketch.NewMinHasher(bands*rows, 0x5350)
		id.lsh = sketch.NewLSH(bands, rows)
		id.sigs = make(map[event.StoryID]sketch.Signature)
		id.sigScratch = make(sketch.Signature, bands*rows)
	}
	return id
}

// Source returns the identifier's data source.
func (id *Identifier) Source() event.SourceID { return id.source }

// Stats returns a snapshot of the work counters.
func (id *Identifier) Stats() Stats { return id.stats }

// StoryCount returns the current number of stories.
func (id *Identifier) StoryCount() int { return len(id.stories) }

// Process assigns one snippet to its best-matching story, creating a new
// story when nothing clears the attach threshold, and returns the story ID.
// Process panics if the snippet belongs to a different source — routing is
// the caller's job.
func (id *Identifier) Process(s *event.Snippet) event.StoryID {
	if s.Source != id.source {
		panic(fmt.Sprintf("identify: snippet of source %q fed to identifier of %q", s.Source, id.source))
	}
	s.EnsureInterned()
	span := metProcessLat.Start()
	startComparisons := id.stats.Comparisons
	id.stats.Processed++
	if id.cfg.UseEntityIDF {
		for _, e := range s.EntityIDs {
			id.noteEntity(e)
		}
	}

	best, bestScore := event.StoryID(0), 0.0
	for _, cand := range id.candidates(s) {
		score := id.score(s, cand)
		id.stats.Comparisons++
		if score > bestScore {
			best, bestScore = cand.ID, score
		}
	}

	var target event.StoryID
	if best != 0 && bestScore >= id.cfg.AttachThreshold {
		id.stories[best].Add(s)
		id.updateSketch(best, s)
		id.stats.Attached++
		metAttached.Inc()
		target = best
	} else {
		st := event.NewStory(id.alloc.Next(), id.source)
		st.Add(s)
		id.stories[st.ID] = st
		id.order = append(id.order, st.ID)
		id.indexStory(st)
		id.stats.Created++
		metCreated.Inc()
		target = st.ID
	}
	id.assign[s.ID] = target
	metProcessed.Inc()
	metComparisons.Add(uint64(id.stats.Comparisons - startComparisons))
	span.End()

	if id.cfg.RepairEvery > 0 {
		if id.sinceRepair++; id.sinceRepair >= id.cfg.RepairEvery {
			id.Repair()
			id.sinceRepair = 0
		}
	}
	return target
}

// candidates returns the stories worth scoring for snippet s, per the
// configured mode (Figure 2) and sketch-index setting.
func (id *Identifier) candidates(s *event.Snippet) []*event.Story {
	out := id.candScratch[:0]
	defer func() { id.candScratch = out[:0] }()
	if id.cfg.UseSketchIndex {
		sig := id.sigScratch
		sketch.ResetSignature(sig)
		id.foldSnippetElems(sig, s)
		id.lshScratch = id.lsh.QueryAppend(sig, ^uint64(0), id.lshScratch[:0])
		for _, key := range id.lshScratch {
			st, ok := id.stories[event.StoryID(key)]
			if !ok {
				continue
			}
			if id.cfg.Mode == ModeTemporal && !id.inWindow(st, s.Timestamp) {
				continue
			}
			out = append(out, st)
		}
		// Deterministic scoring order. Insertion sort: candidate lists are
		// small and sort.Slice's reflection machinery allocates per call.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j].ID < out[j-1].ID; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	for _, sid := range id.order {
		st := id.stories[sid]
		if st == nil {
			continue
		}
		if id.cfg.Mode == ModeTemporal && !id.inWindow(st, s.Timestamp) {
			continue
		}
		out = append(out, st)
	}
	return out
}

// inWindow reports whether the story has any snippet inside [t−ω, t+ω].
func (id *Identifier) inWindow(st *event.Story, t time.Time) bool {
	return !st.Start.After(t.Add(id.cfg.Window)) && !st.End.Before(t.Add(-id.cfg.Window))
}

// windowAggregate is a cached windowed story summary. Queries quantise
// the snippet timestamp to buckets of ω/2; a cache entry is valid while
// the query falls in the same bucket and the story's mutation counter is
// unchanged, so the near-chronological stream amortises the
// window-centroid construction across many scores. Keying on Gen()
// rather than Len() matters during refinement: a remove+add pair leaves
// the length identical while changing the content, which a length-keyed
// cache would serve stale.
type windowAggregate struct {
	bucket   int64  // quantised query time
	gen      uint64 // story Gen() when built
	centroid []vocab.IDWeight
	ents     []vocab.IDCount
	norm     float64
}

// noteEntity records one mention of entity symbol e for the IDF
// statistics, growing the count table on first sight of a new symbol.
func (id *Identifier) noteEntity(e uint32) {
	if int(e) >= len(id.entCount) {
		if int(e) < cap(id.entCount) {
			id.entCount = id.entCount[:int(e)+1]
		} else {
			grown := make([]int32, int(e)+1, (int(e)+1)*2)
			copy(grown, id.entCount)
			id.entCount = grown
		}
	}
	if id.entCount[e] == 0 {
		id.entDistinct++
	}
	id.entCount[e]++
	id.entTotal++
}

// entityWeightID is the IDF-style weighter over the source's
// entity-mention counts, normalised by the mean count:
// w(e) = 1 / (1 + ln(1 + c(e)/mean)). On near-uniform corpora every
// weight is ≈ 1/(1+ln 2) and the weighted Jaccard reduces to the
// unweighted one; only genuinely skewed entities are down-weighted.
func (id *Identifier) entityWeightID(e uint32) float64 {
	mean := 1.0
	if id.entDistinct > 0 {
		mean = float64(id.entTotal) / float64(id.entDistinct)
	}
	var c int32
	if int(e) < len(id.entCount) {
		c = id.entCount[e]
	}
	return 1 / (1 + logf(1+float64(c)/mean))
}

func (id *Identifier) weighter() similarity.IDWeighter { return id.ew }

// score computes the snippet-story similarity. In temporal mode the story
// is summarised by only the snippets inside the window, so the comparison
// reflects "the story as it currently is"; in complete mode the whole
// history is used (the overfitting baseline).
func (id *Identifier) score(s *event.Snippet, st *event.Story) float64 {
	switch id.cfg.Mode {
	case ModeTemporal:
		agg := id.windowAggregateFor(s.Timestamp, st)
		if agg == nil {
			return 0
		}
		ref := nearestTimestamp(st, s.Timestamp)
		return similarity.SnippetStoryIDs(s, agg.ents, agg.centroid, agg.norm, ref,
			id.cfg.TemporalScale, id.cfg.Weights, id.ew)
	default: // ModeComplete
		ref := nearestTimestamp(st, s.Timestamp)
		return similarity.SnippetStoryIDs(s, st.EntityFreq, st.Centroid, st.CentroidNorm(), ref,
			id.cfg.TemporalScale, id.cfg.Weights, id.ew)
	}
}

// windowAggregateFor returns the (possibly cached) windowed aggregate of
// st around t. The window is anchored at the bucket's midpoint and spans
// [mid−ω−ω/4, mid+ω+ω/4], which covers the exact window of every query
// time inside the bucket.
func (id *Identifier) windowAggregateFor(t time.Time, st *event.Story) *windowAggregate {
	half := id.cfg.Window / 2
	if half <= 0 {
		half = time.Nanosecond
	}
	bucket := t.UnixNano() / int64(half)
	agg := id.winCache[st.ID]
	if agg != nil && agg.bucket == bucket && agg.gen == st.Gen() {
		if len(agg.centroid) == 0 && len(agg.ents) == 0 {
			return nil // cached empty window
		}
		return agg
	}
	if agg == nil {
		agg = &windowAggregate{}
		id.winCache[st.ID] = agg
	}
	mid := time.Unix(0, bucket*int64(half)+int64(half)/2).UTC()
	pad := id.cfg.Window + id.cfg.Window/4
	// Rebuild into the stale aggregate's buffers: bucket advances are the
	// common case on a near-chronological stream, and reusing the arrays
	// makes the rebuild allocation-free in steady state.
	agg.centroid, agg.ents = st.AppendWindowedCentroidIDs(mid.Add(-pad), mid.Add(pad), agg.centroid[:0], agg.ents[:0])
	agg.bucket = bucket
	agg.gen = st.Gen()
	agg.norm = vocab.WeightNorm(agg.centroid)
	if len(agg.centroid) == 0 && len(agg.ents) == 0 {
		return nil
	}
	return agg
}

// nearestTimestamp returns the story snippet timestamp closest to t.
// Manual binary search: this sits inside the per-candidate scoring loop
// and must not allocate a search closure.
func nearestTimestamp(st *event.Story, t time.Time) time.Time {
	n := len(st.Snippets)
	if n == 0 {
		return t
	}
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if st.Snippets[mid].Timestamp.Before(t) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	i := lo
	switch {
	case i == 0:
		return st.Snippets[0].Timestamp
	case i == n:
		return st.Snippets[n-1].Timestamp
	default:
		before, after := st.Snippets[i-1].Timestamp, st.Snippets[i].Timestamp
		if t.Sub(before) <= after.Sub(t) {
			return before
		}
		return after
	}
}

// Stories returns the current story set in creation order. The returned
// stories are live; callers must not mutate them.
func (id *Identifier) Stories() []*event.Story {
	out := make([]*event.Story, 0, len(id.stories))
	for _, sid := range id.order {
		if st := id.stories[sid]; st != nil && st.Len() > 0 {
			out = append(out, st)
		}
	}
	return out
}

// Story returns the story with the given ID, or nil.
func (id *Identifier) Story(sid event.StoryID) *event.Story { return id.stories[sid] }

// StoryOf returns the story a snippet is currently assigned to (0 if the
// snippet is unknown).
func (id *Identifier) StoryOf(snID event.SnippetID) event.StoryID { return id.assign[snID] }

// Assignment returns a copy of the snippet→story assignment.
func (id *Identifier) Assignment() map[event.SnippetID]event.StoryID {
	out := make(map[event.SnippetID]event.StoryID, len(id.assign))
	for k, v := range id.assign {
		out[k] = v
	}
	return out
}

// Move re-homes a snippet from one story to another (used by story
// refinement, paper Figure 1d). Both stories must belong to this source.
// Emptied stories are dropped. It reports whether the move happened.
func (id *Identifier) Move(snID event.SnippetID, to event.StoryID) bool {
	fromID, ok := id.assign[snID]
	if !ok || fromID == to {
		return false
	}
	from, target := id.stories[fromID], id.stories[to]
	if from == nil || target == nil {
		return false
	}
	var moved *event.Snippet
	for _, s := range from.Snippets {
		if s.ID == snID {
			moved = s
			break
		}
	}
	if moved == nil {
		return false
	}
	from.Remove(snID)
	target.Add(moved)
	id.assign[snID] = to
	id.reindexStory(from)
	id.reindexStory(target)
	if from.Len() == 0 {
		id.dropStory(fromID)
	}
	return true
}

// Detach removes a story from the identifier's working set — story table,
// window cache, LSH signature — and returns it. The snippet→story
// assignment is deliberately kept (exactly as dropStory does for emptied
// stories): checkpoints must still cover the archived snippets, and the
// retained entries let a reactivated story's snippets resolve without
// rebuild. Returns nil if the story does not exist.
//
// Detach is the retirement half of the retire/reactivate pair; Adopt is
// the inverse.
func (id *Identifier) Detach(sid event.StoryID) *event.Story {
	st := id.stories[sid]
	if st == nil {
		return nil
	}
	id.dropStory(sid)
	return st
}

// Adopt inserts a fully built story into the identifier's working set:
// story table, creation order, assignment entries, and sketch index. It
// is the reactivation path for archived stories, so it does NOT touch the
// entity IDF statistics — those are cumulative over processed snippets
// and were never decremented when the story was detached. The story ID
// must not collide with a resident story (callers check; the ID allocator
// never recycles).
func (id *Identifier) Adopt(st *event.Story) {
	if st == nil || st.Len() == 0 {
		return
	}
	if _, exists := id.stories[st.ID]; exists {
		return
	}
	id.stories[st.ID] = st
	id.order = append(id.order, st.ID)
	for _, sn := range st.Snippets {
		id.assign[sn.ID] = st.ID
	}
	id.indexStory(st)
}

// sketch maintenance --------------------------------------------------------

// snippetElems renders a snippet as sketch elements. Sketches are built
// over the *entity set* — small, stable across a story's evolution, and
// highly overlapping between a story and its snippets — rather than the
// description vocabulary, whose union grows with story length and would
// drive the snippet-vs-story Jaccard (and hence LSH recall) toward zero.
// foldSnippetElems folds s's sketch elements into sig and reports whether
// the signature changed. Entity-free snippets fall back to description
// tokens so they still sketch to something. Elements are hashed in place
// (sketch.HashElem) rather than materialised as tagged strings — this runs
// per event on the sketch-index path and must not allocate.
func (id *Identifier) foldSnippetElems(sig sketch.Signature, s *event.Snippet) bool {
	changed := false
	if len(s.Entities) > 0 {
		for _, e := range s.Entities {
			if id.hasher.UpdateHash(sig, sketch.HashElem('e', string(e))) {
				changed = true
			}
		}
		return changed
	}
	for _, t := range s.Terms {
		if id.hasher.UpdateHash(sig, sketch.HashElem('t', t.Token)) {
			changed = true
		}
	}
	return changed
}

// foldStoryElems folds the story's aggregate elements into sig.
func (id *Identifier) foldStoryElems(sig sketch.Signature, st *event.Story) {
	if len(st.EntityFreq) > 0 {
		for _, ec := range st.EntityFreq {
			id.hasher.UpdateHash(sig, sketch.HashElem('e', vocab.Entities.String(ec.ID)))
		}
		return
	}
	for _, tw := range st.Centroid {
		id.hasher.UpdateHash(sig, sketch.HashElem('t', vocab.Terms.String(tw.ID)))
	}
}

func (id *Identifier) indexStory(st *event.Story) {
	if id.lsh == nil {
		return
	}
	sig := id.sigs[st.ID]
	if sig == nil {
		sig = make(sketch.Signature, id.hasher.Length())
		id.sigs[st.ID] = sig
	}
	sketch.ResetSignature(sig)
	id.foldStoryElems(sig, st)
	id.lsh.Add(uint64(st.ID), sig)
}

func (id *Identifier) updateSketch(sid event.StoryID, s *event.Snippet) {
	if id.lsh == nil {
		return
	}
	sig := id.sigs[sid]
	if sig == nil {
		id.indexStory(id.stories[sid])
		return
	}
	// MinHash is a running minimum: folding the new snippet's elements in
	// is equivalent to re-signing the union. When the fold leaves the
	// signature unchanged — the common case once a story's element set has
	// converged — the index's buckets are still exact and re-adding would
	// only churn them.
	if id.foldSnippetElems(sig, s) {
		id.lsh.Add(uint64(sid), sig)
	}
}

func (id *Identifier) reindexStory(st *event.Story) {
	if id.lsh == nil || st == nil {
		return
	}
	// Removal invalidates the running-minimum signature; re-sign fully.
	id.indexStory(st)
}

func (id *Identifier) dropStory(sid event.StoryID) {
	delete(id.stories, sid)
	delete(id.winCache, sid)
	if id.lsh != nil {
		id.lsh.Remove(uint64(sid))
		delete(id.sigs, sid)
	}
	// order keeps the stale ID (Stories() skips missing entries); compact
	// once stale entries dominate, or a long-running stream with heavy
	// merge repair would scan an ever-growing list per snippet.
	if len(id.order) > 2*len(id.stories)+16 {
		live := id.order[:0]
		for _, s := range id.order {
			if _, ok := id.stories[s]; ok {
				live = append(live, s)
			}
		}
		id.order = live
	}
}
