package identify

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/event"
)

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

func snip(id event.SnippetID, src event.SourceID, d int, ents []event.Entity, toks ...string) *event.Snippet {
	s := &event.Snippet{ID: id, Source: src, Timestamp: day(d), Entities: ents}
	for _, tok := range toks {
		s.Terms = append(s.Terms, event.Term{Token: tok, Weight: 1})
	}
	s.Normalize()
	return s
}

func TestProcessGroupsRelatedSnippets(t *testing.T) {
	cfg := DefaultConfig()
	id := New("nyt", cfg, nil)

	crash := []event.Entity{"UKR", "MAL"}
	google := []event.Entity{"GOOG", "YELP"}

	a := id.Process(snip(1, "nyt", 17, crash, "crash", "plane", "shot"))
	b := id.Process(snip(2, "nyt", 18, crash, "crash", "investig", "plane"))
	c := id.Process(snip(3, "nyt", 18, google, "search", "antitrust", "content"))
	d := id.Process(snip(4, "nyt", 19, crash, "investig", "crash", "report"))

	if a != b || b != d {
		t.Fatalf("crash snippets scattered: %d %d %d", a, b, d)
	}
	if c == a {
		t.Fatal("unrelated snippet joined the crash story")
	}
	if id.StoryCount() != 2 {
		t.Fatalf("StoryCount = %d, want 2", id.StoryCount())
	}
	st := id.Story(a)
	if st.Len() != 3 {
		t.Fatalf("crash story has %d snippets", st.Len())
	}
	if id.StoryOf(3) != c {
		t.Fatal("StoryOf mismatch")
	}
	stats := id.Stats()
	if stats.Processed != 4 || stats.Created != 2 || stats.Attached != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestProcessWrongSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong source")
		}
	}()
	id := New("nyt", DefaultConfig(), nil)
	id.Process(snip(1, "wsj", 17, []event.Entity{"A"}, "x"))
}

func TestTemporalWindowExcludesDistantStories(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeTemporal
	cfg.Window = 3 * 24 * time.Hour
	cfg.RepairEvery = 0
	id := New("nyt", cfg, nil)

	ents := []event.Entity{"UKR"}
	first := id.Process(snip(1, "nyt", 1, ents, "protest", "squar"))
	// 20 days later, same entities, same-ish terms — outside the window,
	// must start a new story.
	second := id.Process(snip(2, "nyt", 21, ents, "protest", "squar"))
	if first == second {
		t.Fatal("temporal mode attached across a 20-day gap with ω=3d")
	}
	// Complete mode would have attached it.
	cfg.Mode = ModeComplete
	idC := New("nyt", cfg, nil)
	f := idC.Process(snip(1, "nyt", 1, ents, "protest", "squar"))
	s := idC.Process(snip(2, "nyt", 21, ents, "protest", "squar"))
	if f != s {
		t.Fatal("complete mode should chain across the gap (that is its failure mode)")
	}
}

func TestTemporalModeTracksEvolution(t *testing.T) {
	// A story whose vocabulary evolves: protests -> crimea -> fights.
	// Complete mode compares against the full history (diluted centroid);
	// temporal mode compares against the recent window. Both should keep
	// the chain here because adjacent phases share terms.
	cfg := DefaultConfig()
	cfg.RepairEvery = 0
	id := New("nyt", cfg, nil)
	ents := []event.Entity{"UKR"}
	ids := []event.StoryID{
		id.Process(snip(1, "nyt", 1, ents, "protest", "squar", "civilian")),
		id.Process(snip(2, "nyt", 3, ents, "protest", "crimea", "civilian")),
		id.Process(snip(3, "nyt", 6, ents, "crimea", "split", "militari")),
		id.Process(snip(4, "nyt", 9, ents, "militari", "fight", "donetsk")),
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[0] {
			t.Fatalf("evolution chain broken at %d: %v", i, ids)
		}
	}
}

func TestRepairSplitsGluedStories(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RepairEvery = 0 // manual repair
	cfg.AttachThreshold = 0.05
	cfg.SplitThreshold = 0.5
	id := New("nyt", cfg, nil)

	// Force two unrelated snippet groups into one story via a tiny attach
	// threshold, then verify Repair pulls them apart.
	first := id.Process(snip(1, "nyt", 1, []event.Entity{"UKR"}, "crash", "plane"))
	id.Process(snip(2, "nyt", 1, []event.Entity{"UKR"}, "crash", "plane"))
	id.Process(snip(3, "nyt", 2, []event.Entity{"GOOG"}, "search", "antitrust"))
	id.Process(snip(4, "nyt", 2, []event.Entity{"GOOG"}, "search", "antitrust"))
	if id.StoryCount() != 1 {
		t.Skipf("setup did not glue stories (count=%d)", id.StoryCount())
	}
	id.Repair()
	if id.StoryCount() != 2 {
		t.Fatalf("after repair StoryCount = %d, want 2", id.StoryCount())
	}
	// The original ID survives on the larger (here: equal, first) part.
	if id.Story(first) == nil {
		t.Fatal("original story ID vanished")
	}
	if id.Stats().Splits == 0 {
		t.Fatal("split not counted")
	}
	// Assignment stays consistent.
	if id.StoryOf(1) == id.StoryOf(3) {
		t.Fatal("assignment not updated by split")
	}
}

func TestRepairMergesConvergedStories(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RepairEvery = 0
	cfg.AttachThreshold = 0.95 // force every snippet into its own story
	cfg.MergeThreshold = 0.5
	id := New("nyt", cfg, nil)
	ents := []event.Entity{"UKR", "MAL"}
	id.Process(snip(1, "nyt", 17, ents, "crash", "plane"))
	id.Process(snip(2, "nyt", 17, ents, "crash", "plane"))
	if id.StoryCount() != 2 {
		t.Skipf("setup produced %d stories", id.StoryCount())
	}
	id.Repair()
	if id.StoryCount() != 1 {
		t.Fatalf("after repair StoryCount = %d, want 1", id.StoryCount())
	}
	if id.Stats().Merges == 0 {
		t.Fatal("merge not counted")
	}
	if id.StoryOf(1) != id.StoryOf(2) {
		t.Fatal("assignment not updated by merge")
	}
}

func TestMoveSnippet(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RepairEvery = 0
	id := New("nyt", cfg, nil)
	a := id.Process(snip(1, "nyt", 17, []event.Entity{"UKR"}, "crash", "plane"))
	b := id.Process(snip(2, "nyt", 18, []event.Entity{"GOOG"}, "search", "antitrust"))
	if a == b {
		t.Fatal("setup: expected two stories")
	}
	if !id.Move(1, b) {
		t.Fatal("Move failed")
	}
	if id.StoryOf(1) != b {
		t.Fatal("assignment not updated")
	}
	// Source story is empty now and dropped.
	if id.Story(a) != nil {
		t.Fatal("emptied story not dropped")
	}
	if got := len(id.Stories()); got != 1 {
		t.Fatalf("Stories() = %d", got)
	}
	// No-op moves.
	if id.Move(1, b) {
		t.Fatal("self-move should report false")
	}
	if id.Move(99, b) {
		t.Fatal("unknown snippet move should report false")
	}
}

func TestSketchIndexAgreesWithScan(t *testing.T) {
	c := datagen.Generate(datagen.Config{
		Seed: 3, Sources: 1, Stories: 6, Entities: 100, Vocab: 800,
		Start: day(1), Span: 60 * 24 * time.Hour, MeanStoryLife: 20 * 24 * time.Hour,
		EventsPerStory: 10, Phases: 2, PhaseOverlap: 0.5, Coverage: 1.0,
		MaxLag: time.Hour, EntitiesPer: 3, TermsPer: 8,
	})
	src := c.Sources[0]
	sns := c.BySource()[src]

	cfgScan := DefaultConfig()
	cfgScan.RepairEvery = 0
	cfgSketch := cfgScan
	cfgSketch.UseSketchIndex = true

	idScan := RunSource(src, sns, cfgScan, nil)
	idSketch := RunSource(src, sns, cfgSketch, nil)

	truth := eval.Assignment{}
	for id, l := range c.Truth {
		truth[id] = l
	}
	toAsg := func(id *Identifier) eval.Assignment {
		a := eval.Assignment{}
		for k, v := range id.Assignment() {
			a[k] = uint64(v)
		}
		return a
	}
	fScan := eval.Pairwise(toAsg(idScan), truth).F1
	fSketch := eval.Pairwise(toAsg(idSketch), truth).F1
	if fScan < 0.5 {
		t.Fatalf("scan identification F1 = %.3f too weak for the comparison", fScan)
	}
	if fSketch < fScan-0.25 {
		t.Fatalf("sketch index degraded F1 too much: scan %.3f vs sketch %.3f", fScan, fSketch)
	}
	// The sketch index must reduce similarity evaluations.
	if idSketch.Stats().Comparisons >= idScan.Stats().Comparisons {
		t.Fatalf("sketch comparisons %d >= scan %d", idSketch.Stats().Comparisons, idScan.Stats().Comparisons)
	}
}

func TestRunAllPartitionInvariants(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.Sources = 3
	cfg.Stories = 6
	cfg.EventsPerStory = 5
	c := datagen.Generate(cfg)

	ids := RunAll(c.Snippets, DefaultConfig(), nil)
	if len(ids) != 3 {
		t.Fatalf("identifiers for %d sources", len(ids))
	}
	// Invariant: every snippet appears in exactly one story of exactly its
	// own source, and story IDs are globally unique.
	seenStory := map[event.StoryID]event.SourceID{}
	seenSnip := map[event.SnippetID]bool{}
	for src, id := range ids {
		for _, st := range id.Stories() {
			if st.Source != src {
				t.Fatalf("story %d of source %s in identifier %s", st.ID, st.Source, src)
			}
			if owner, dup := seenStory[st.ID]; dup {
				t.Fatalf("story ID %d reused across %s and %s", st.ID, owner, src)
			}
			seenStory[st.ID] = src
			for _, sn := range st.Snippets {
				if seenSnip[sn.ID] {
					t.Fatalf("snippet %d in two stories", sn.ID)
				}
				seenSnip[sn.ID] = true
			}
		}
	}
	if len(seenSnip) != len(c.Snippets) {
		t.Fatalf("stories cover %d of %d snippets", len(seenSnip), len(c.Snippets))
	}
	// MergedAssignment covers everything.
	if got := len(MergedAssignment(ids)); got != len(c.Snippets) {
		t.Fatalf("MergedAssignment size = %d", got)
	}
	if got := len(StoriesBySource(ids)); got != 3 {
		t.Fatalf("StoriesBySource size = %d", got)
	}
}

func TestIdentificationQualityOnGroundTruth(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.Sources = 2
	cfg.Stories = 12
	cfg.EventsPerStory = 12
	c := datagen.Generate(cfg)

	ids := RunAll(c.Snippets, DefaultConfig(), nil)
	pred := eval.Assignment{}
	for k, v := range MergedAssignment(ids) {
		pred[k] = uint64(v)
	}
	// Per-source scoring: ground truth restricted per source, since
	// identification never links across sources.
	for src, id := range ids {
		inSrc := map[event.SnippetID]bool{}
		for _, st := range id.Stories() {
			for _, sn := range st.Snippets {
				inSrc[sn.ID] = true
			}
		}
		truth := eval.Assignment{}
		for sid, l := range c.Truth {
			if inSrc[sid] {
				truth[sid] = l
			}
		}
		sub := pred.Restrict(func(sid event.SnippetID) bool { return inSrc[sid] })
		f1 := eval.Pairwise(sub, truth).F1
		if f1 < 0.55 {
			t.Errorf("source %s identification F1 = %.3f, want >= 0.55", src, f1)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeTemporal.String() != "temporal" || ModeComplete.String() != "complete" {
		t.Fatal("Mode.String wrong")
	}
}

func TestIDAllocUnique(t *testing.T) {
	var a IDAlloc
	seen := map[event.StoryID]bool{}
	done := make(chan []event.StoryID, 4)
	for g := 0; g < 4; g++ {
		go func() {
			var got []event.StoryID
			for i := 0; i < 1000; i++ {
				got = append(got, a.Next())
			}
			done <- got
		}()
	}
	for g := 0; g < 4; g++ {
		for _, id := range <-done {
			if seen[id] {
				t.Fatalf("duplicate story ID %d", id)
			}
			seen[id] = true
		}
	}
}

func TestNearestTimestamp(t *testing.T) {
	st := event.NewStory(1, "s")
	for _, d := range []int{5, 10, 20} {
		st.Add(snip(event.SnippetID(d), "s", d, []event.Entity{"A"}, "x"))
	}
	cases := []struct{ probe, want int }{
		{1, 5}, {5, 5}, {7, 5}, {8, 10}, {14, 10}, {16, 20}, {25, 20},
	}
	for _, c := range cases {
		if got := nearestTimestamp(st, day(c.probe)); !got.Equal(day(c.want)) {
			t.Errorf("nearest(%d) = %v, want day %d", c.probe, got, c.want)
		}
	}
	empty := event.NewStory(2, "s")
	if got := nearestTimestamp(empty, day(3)); !got.Equal(day(3)) {
		t.Error("empty story nearest should echo probe")
	}
}

func BenchmarkProcessTemporal(b *testing.B) {
	benchmarkProcess(b, ModeTemporal)
}

func BenchmarkProcessComplete(b *testing.B) {
	benchmarkProcess(b, ModeComplete)
}

func benchmarkProcess(b *testing.B, mode Mode) {
	gen := datagen.DefaultConfig()
	gen.Sources = 1
	gen.Stories = 30
	gen.EventsPerStory = 40
	gen.Coverage = 1
	c := datagen.Generate(gen)
	src := c.Sources[0]
	sns := c.BySource()[src]
	cfg := DefaultConfig()
	cfg.Mode = mode
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := New(src, cfg, nil)
		for _, s := range sns {
			id.Process(s)
		}
	}
	b.ReportMetric(float64(len(sns)), "events/op")
}

func ExampleIdentifier() {
	id := New("nyt", DefaultConfig(), nil)
	s1 := snip(1, "nyt", 17, []event.Entity{"UKR", "MAL"}, "crash", "plane")
	s2 := snip(2, "nyt", 18, []event.Entity{"UKR"}, "crash", "investig")
	a := id.Process(s1)
	bID := id.Process(s2)
	fmt.Println(a == bID, id.StoryCount())
	// Output: true 1
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	complete := DefaultConfig()
	complete.Mode = ModeComplete
	complete.Window = 0
	if err := complete.Validate(); err != nil {
		t.Fatalf("complete mode with zero window rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Mode = Mode(9) },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.AttachThreshold = 0 },
		func(c *Config) { c.AttachThreshold = 1.2 },
		func(c *Config) { c.TemporalScale = 0 },
		func(c *Config) { c.RepairEvery = -1 },
		func(c *Config) { c.SplitThreshold = 0 },
		func(c *Config) { c.MergeThreshold = 2 },
		func(c *Config) { c.UseSketchIndex = true; c.SketchBands = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSourceAccessorAndSketchFallbacks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseSketchIndex = true
	id := New("nyt", cfg, nil)
	if id.Source() != "nyt" {
		t.Fatal("Source accessor wrong")
	}
	// Entity-free snippets sketch on their description terms.
	s := &event.Snippet{ID: 1, Source: "nyt", Timestamp: day(1),
		Terms: []event.Term{{Token: "crash", Weight: 1}}}
	s.Normalize()
	id.Process(s)
	s2 := &event.Snippet{ID: 2, Source: "nyt", Timestamp: day(1),
		Terms: []event.Term{{Token: "crash", Weight: 1}}}
	s2.Normalize()
	if got := id.Process(s2); got != id.StoryOf(1) {
		t.Fatal("entity-free snippets did not group through the sketch index")
	}
}

func TestOrderCompaction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RepairEvery = 0
	cfg.AttachThreshold = 0.95 // every snippet its own story
	id := New("nyt", cfg, nil)
	// Create many singleton stories, then drain them with moves so
	// dropStory fires repeatedly and compaction kicks in.
	n := 80
	for i := 1; i <= n; i++ {
		s := snip(event.SnippetID(i), "nyt", i%28+1, []event.Entity{event.Entity(fmt.Sprintf("e%d", i))}, fmt.Sprintf("w%d", i))
		id.Process(s)
	}
	stories := id.Stories()
	if len(stories) < n/2 {
		t.Skipf("setup produced %d stories", len(stories))
	}
	target := stories[0].ID
	for _, st := range stories[1:] {
		for _, sn := range append([]*event.Snippet(nil), st.Snippets...) {
			id.Move(sn.ID, target)
		}
	}
	if got := len(id.Stories()); got != 1 {
		t.Fatalf("stories after drain = %d", got)
	}
	if got := len(id.order); got > 2*len(id.stories)+16 {
		t.Fatalf("order not compacted: %d entries for %d stories", got, len(id.stories))
	}
}

func TestRunAllParallelMatchesSequential(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.Sources = 4
	cfg.Stories = 8
	cfg.EventsPerStory = 6
	c := datagen.Generate(cfg)
	truth := eval.Assignment{}
	for id, l := range c.Truth {
		truth[id] = l
	}
	toAsg := func(ids map[event.SourceID]*Identifier) eval.Assignment {
		a := eval.Assignment{}
		for k, v := range MergedAssignment(ids) {
			a[k] = uint64(v)
		}
		return a
	}
	seq := toAsg(RunAll(c.Snippets, DefaultConfig(), nil))
	par := toAsg(RunAllParallel(c.Snippets, DefaultConfig(), nil))
	// Story IDs differ across runs (allocation order), but the partition
	// must be identical.
	if f := eval.Pairwise(par, seq).F1; f != 1 {
		t.Fatalf("parallel partition differs from sequential: F1 = %.3f", f)
	}
	if len(par) != len(seq) {
		t.Fatalf("coverage differs: %d vs %d", len(par), len(seq))
	}
}
