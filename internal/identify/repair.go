package identify

import (
	"math"
	"sort"

	"repro/internal/event"
	"repro/internal/similarity"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }
func logf(x float64) float64 { return math.Log(x) }

// splitWeights is the similarity combination used for the intra-story
// connectivity graph. Story splits are about *content* divergence despite
// shared actors — the paper's example is the Ukraine crisis, whose
// political and economic threads "were interwoven ... while they started
// to separate after the situation had (temporarily) stabilized" with the
// same entities throughout. Entity overlap therefore gets little weight
// here; it would glue every thread of a shared-actor story together.
var splitWeights = similarity.Weights{Entity: 0.15, Description: 0.70, Temporal: 0.15}

// Repair runs the incremental split/merge pass (paper §2.2: "we observe
// that it is possible for stories to split into multiple substories or to
// merge into a bigger story ... we incrementally construct stories").
//
// Split: within each story, snippets are connected when their pairwise
// similarity (restricted to temporal neighbours) clears SplitThreshold;
// if the graph decomposes into multiple connected components the story is
// split, the largest component keeping the original ID.
//
// Merge: story pairs whose extents overlap and whose story-level
// similarity clears MergeThreshold are merged, the larger story absorbing
// the smaller.
func (id *Identifier) Repair() {
	span := metRepairLat.Start()
	defer span.End()
	startSplits, startMerges := id.stats.Splits, id.stats.Merges
	defer func() {
		metSplits.Add(uint64(id.stats.Splits - startSplits))
		metMerges.Add(uint64(id.stats.Merges - startMerges))
	}()
	id.stats.RepairRuns++
	id.repairSplits()
	id.repairMerges()
}

// neighborSpan bounds how many temporal neighbours each snippet is
// compared against when building the internal connectivity graph; this
// keeps split detection O(n·k) per story.
const neighborSpan = 6

func (id *Identifier) repairSplits() {
	// Collect story IDs first: splitting mutates the story map.
	ids := make([]event.StoryID, 0, len(id.stories))
	for _, sid := range id.order {
		if id.stories[sid] != nil {
			ids = append(ids, sid)
		}
	}
	for _, sid := range ids {
		st := id.stories[sid]
		if st == nil || st.Len() < 4 {
			continue
		}
		comps := id.components(st)
		if len(comps) < 2 {
			continue
		}
		// Largest component keeps the original story ID; the others get
		// fresh stories.
		sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
		for _, comp := range comps[1:] {
			ns := event.NewStory(id.alloc.Next(), id.source)
			for _, sn := range comp {
				st.Remove(sn.ID)
				ns.Add(sn)
				id.assign[sn.ID] = ns.ID
			}
			id.stories[ns.ID] = ns
			id.order = append(id.order, ns.ID)
			id.indexStory(ns)
			id.stats.Splits++
		}
		id.reindexStory(st)
	}
}

// ufFind is union-find lookup with path halving over a parent slice.
func ufFind(parent []int, x int) int {
	for parent[x] != x {
		parent[x] = parent[parent[x]]
		x = parent[x]
	}
	return x
}

// components builds the windowed similarity graph over the story's
// snippets and returns its connected components, or nil when the story is
// fully connected. Repair runs this for every sufficiently large story on
// every pass, and almost all stories are NOT split — so the common path
// must not allocate: the union-find scratch lives on the identifier and
// the per-component slices are only built once a split is certain.
func (id *Identifier) components(st *event.Story) [][]*event.Snippet {
	n := st.Len()
	if cap(id.ufScratch) < n {
		id.ufScratch = make([]int, n)
	}
	parent := id.ufScratch[:n]
	for i := range parent {
		parent[i] = i
	}
	sns := st.Snippets // chronological
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j <= i+neighborSpan; j++ {
			if similarity.Snippets(sns[i], sns[j], id.cfg.TemporalScale, splitWeights) >= id.cfg.SplitThreshold {
				if ra, rb := ufFind(parent, i), ufFind(parent, j); ra != rb {
					parent[ra] = rb
				}
			}
		}
	}
	roots := 0
	for i := range parent {
		if ufFind(parent, i) == i {
			roots++
		}
	}
	if roots < 2 {
		return nil
	}
	groups := make(map[int][]*event.Snippet, roots)
	for i, sn := range sns {
		r := ufFind(parent, i)
		groups[r] = append(groups[r], sn)
	}
	out := make([][]*event.Snippet, 0, len(groups))
	// Deterministic order: by first snippet ID.
	order := make([]int, 0, len(groups))
	for r := range groups {
		order = append(order, r)
	}
	sort.Slice(order, func(i, j int) bool {
		return groups[order[i]][0].ID < groups[order[j]][0].ID
	})
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

func (id *Identifier) repairMerges() {
	storyCfg := similarity.StoryConfig{
		Weights:          id.cfg.Weights,
		GapScale:         id.cfg.TemporalScale,
		EvolutionBuckets: 0, // shape comparison is an alignment concern
		EntityWeight:     id.weighter(),
	}
	// Candidate pairs: stories with overlapping extents. Sort by start
	// time and sweep.
	live := id.Stories()
	sort.Slice(live, func(i, j int) bool { return live[i].Start.Before(live[j].Start) })
	absorbed := make(map[event.StoryID]bool)
	for i := 0; i < len(live); i++ {
		a := live[i]
		if absorbed[a.ID] {
			continue
		}
		for j := i + 1; j < len(live); j++ {
			b := live[j]
			if absorbed[b.ID] || absorbed[a.ID] {
				continue
			}
			if b.Start.After(a.End.Add(id.cfg.Window)) {
				break // sweep: no later story can overlap a
			}
			if similarity.Stories(a, b, storyCfg) < id.cfg.MergeThreshold {
				continue
			}
			// Merge the smaller into the larger.
			big, small := a, b
			if small.Len() > big.Len() {
				big, small = small, big
			}
			for _, sn := range append([]*event.Snippet(nil), small.Snippets...) {
				small.Remove(sn.ID)
				big.Add(sn)
				id.assign[sn.ID] = big.ID
			}
			absorbed[small.ID] = true
			id.dropStory(small.ID)
			id.reindexStory(big)
			id.stats.Merges++
			if big == b { // a was absorbed; stop extending it
				break
			}
		}
	}
}
