package identify

import (
	"fmt"

	"repro/internal/event"
)

// Bump advances the allocator so that Next never returns an ID <= n.
// Restoring from a checkpoint uses it to continue the ID space past the
// stories it rebuilt. n is a full story ID: the allocator's namespace
// base is stripped before advancing the sequence, so restore works both
// for namespaced IDs and for legacy checkpoints whose IDs predate the
// namespace scheme (their full value simply becomes the sequence floor).
func (a *IDAlloc) Bump(n uint64) {
	if n > a.base {
		n -= a.base
	} else {
		n = 0
	}
	for {
		cur := a.n.Load()
		if cur >= n || a.n.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Restore rebuilds an identifier from a persisted assignment: the
// snippets of one source plus the snippet→story mapping captured by a
// checkpoint. The rebuilt identifier is behaviourally identical to the
// one that produced the checkpoint — same stories, same aggregates, same
// entity statistics — but costs O(n) map updates instead of the full
// similarity search of reprocessing.
//
// Snippets not present in the assignment are rejected (the checkpoint is
// stale); callers should fall back to reprocessing in that case.
func Restore(source event.SourceID, cfg Config, alloc *IDAlloc,
	snippets []*event.Snippet, assign map[event.SnippetID]event.StoryID) (*Identifier, error) {
	return RestoreWithArchived(source, cfg, alloc, snippets, assign, nil)
}

// RestoreWithArchived is Restore for engines running under story
// retirement: snippets assigned to an archived story are accounted for —
// assignment entry, processed count, entity IDF statistics, all of which
// the live identifier retained past the story's detachment — but their
// stories are NOT rebuilt, so a restart stays as bounded as the process
// that wrote the checkpoint. The archived stories themselves live in the
// cold-story archive and return through the reactivation path.
func RestoreWithArchived(source event.SourceID, cfg Config, alloc *IDAlloc,
	snippets []*event.Snippet, assign map[event.SnippetID]event.StoryID,
	archived map[event.StoryID]bool) (*Identifier, error) {
	id := New(source, cfg, alloc)
	var maxStory event.StoryID
	for _, sn := range snippets {
		if sn.Source != source {
			return nil, fmt.Errorf("identify: snippet %d of source %q in restore of %q", sn.ID, sn.Source, source)
		}
		sid, ok := assign[sn.ID]
		if !ok {
			return nil, fmt.Errorf("identify: snippet %d missing from checkpoint assignment", sn.ID)
		}
		if sid > maxStory {
			maxStory = sid
		}
		if archived[sid] {
			sn.EnsureInterned()
			id.assign[sn.ID] = sid
			id.stats.Processed++
			if cfg.UseEntityIDF {
				for _, e := range sn.EntityIDs {
					id.noteEntity(e)
				}
			}
			continue
		}
		st := id.stories[sid]
		if st == nil {
			st = event.NewStory(sid, source)
			id.stories[sid] = st
			id.order = append(id.order, sid)
		}
		st.Add(sn) // interns sn as a side effect
		id.assign[sn.ID] = sid
		id.stats.Processed++
		if cfg.UseEntityIDF {
			for _, e := range sn.EntityIDs {
				id.noteEntity(e)
			}
		}
	}
	if id.lsh != nil {
		for _, st := range id.stories {
			id.indexStory(st)
		}
	}
	alloc.Bump(uint64(maxStory))
	return id, nil
}

// Assignments exports the per-snippet story assignment for checkpointing.
// (Assignment already returns a copy; this alias names the intent.)
func (id *Identifier) Assignments() map[event.SnippetID]event.StoryID { return id.Assignment() }
