package identify

import "repro/internal/obs"

// Process/Repair instrumentation, aggregated across all sources (the
// per-source split remains available through Identifier.Stats). The
// counters are batched per call — one atomic add for a whole
// candidate-scoring loop — so the observe cost stays off the
// per-comparison hot path.
var (
	metProcessLat = obs.GetHistogram("storypivot_identify_process_seconds",
		"per-snippet story-identification latency")
	metRepairLat = obs.GetHistogram("storypivot_identify_repair_seconds",
		"split/merge repair pass latency")
	metProcessed = obs.GetCounter("storypivot_identify_processed_total",
		"snippets routed through identification")
	metComparisons = obs.GetCounter("storypivot_identify_comparisons_total",
		"snippet-story similarity evaluations")
	metCreated = obs.GetCounter("storypivot_identify_stories_created_total",
		"stories created by identification")
	metAttached = obs.GetCounter("storypivot_identify_attached_total",
		"snippets attached to existing stories")
	metSplits = obs.GetCounter("storypivot_identify_splits_total",
		"stories created by split repair")
	metMerges = obs.GetCounter("storypivot_identify_merges_total",
		"story merges performed by repair")
)
