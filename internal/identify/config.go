// Package identify implements StoryPivot's story identification phase
// (paper §2.2, Figure 2): the incremental, per-source clustering of
// information snippets into evolving stories.
//
// Two execution modes are provided, matching Figure 2:
//
//   - ModeComplete compares an incoming snippet against the *entire
//     history* of every story of the source. It serves as the baseline; the
//     paper observes it "overfits" evolving stories (old snippets of the
//     same story may look nothing like the new ones) and its per-event cost
//     grows with the corpus.
//
//   - ModeTemporal restricts candidate retrieval and comparison to a
//     sliding window [t−ω, t+ω] around the incoming snippet's timestamp,
//     giving both better evolution tracking and bounded per-event cost.
//
// Stories are constructed incrementally (paper ref [5], Incremental Record
// Linkage): a periodic repair pass splits stories whose windowed similarity
// graph has fallen apart and merges stories that have converged.
package identify

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/similarity"
)

// Mode selects the identification execution mode of Figure 2.
type Mode int

const (
	// ModeTemporal is sliding-window identification (Figure 2b), the
	// system's default.
	ModeTemporal Mode = iota
	// ModeComplete is whole-history identification (Figure 2a), the
	// baseline.
	ModeComplete
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeComplete {
		return "complete"
	}
	return "temporal"
}

// Config parameterises an Identifier. Use DefaultConfig as the base.
type Config struct {
	// Mode selects complete vs temporal identification.
	Mode Mode
	// Window is ω, the sliding-window half-width for ModeTemporal.
	Window time.Duration
	// AttachThreshold is the minimum combined similarity for a snippet to
	// join an existing story; below it a new story is created.
	AttachThreshold float64
	// Weights combine entity/description/temporal similarity.
	Weights similarity.Weights
	// TemporalScale is the decay scale of the snippet-story temporal
	// component.
	TemporalScale time.Duration

	// RepairEvery runs the split/merge repair pass every n insertions
	// (0 disables repair — "single pass" identification, the behaviour of
	// the prior work the paper contrasts against).
	RepairEvery int
	// SplitThreshold: snippet pairs below this similarity are disconnected
	// in the story's internal graph; components fall apart into new
	// stories.
	SplitThreshold float64
	// MergeThreshold: story pairs above this story-level similarity are
	// merged.
	MergeThreshold float64

	// UseEntityIDF weights entities by inverse mention frequency in all
	// similarity computations: ubiquitous entities (every story of a
	// crisis month mentions "Ukraine") contribute less than rare ones.
	UseEntityIDF bool

	// UseSketchIndex retrieves candidate stories through a MinHash/LSH
	// index over story entity+term sketches instead of scanning all
	// temporally eligible stories (paper §2.4).
	UseSketchIndex bool
	// SketchBands/SketchRows shape the LSH index (signature length is
	// bands*rows).
	SketchBands, SketchRows int
}

// DefaultConfig returns the configuration used by the demo system.
func DefaultConfig() Config {
	return Config{
		Mode:            ModeTemporal,
		Window:          14 * 24 * time.Hour,
		AttachThreshold: 0.32,
		Weights:         similarity.DefaultWeights(),
		TemporalScale:   4 * 24 * time.Hour,
		RepairEvery:     64,
		SplitThreshold:  0.22,
		MergeThreshold:  0.55,
		UseEntityIDF:    true,
		UseSketchIndex:  false,
		SketchBands:     32,
		SketchRows:      2,
	}
}

// Validate reports configuration errors that would make an Identifier
// misbehave silently (a zero window in temporal mode matches nothing; a
// non-positive attach threshold glues everything).
func (c Config) Validate() error {
	if c.Mode != ModeTemporal && c.Mode != ModeComplete {
		return fmt.Errorf("identify: unknown mode %d", c.Mode)
	}
	if c.Mode == ModeTemporal && c.Window <= 0 {
		return errors.New("identify: temporal mode requires a positive window")
	}
	if c.AttachThreshold <= 0 || c.AttachThreshold >= 1 {
		return fmt.Errorf("identify: attach threshold %g outside (0, 1)", c.AttachThreshold)
	}
	if c.TemporalScale <= 0 {
		return errors.New("identify: temporal scale must be positive")
	}
	if c.RepairEvery < 0 {
		return errors.New("identify: repair interval must be >= 0")
	}
	if c.RepairEvery > 0 {
		if c.SplitThreshold <= 0 || c.SplitThreshold >= 1 {
			return fmt.Errorf("identify: split threshold %g outside (0, 1)", c.SplitThreshold)
		}
		if c.MergeThreshold <= 0 || c.MergeThreshold >= 1 {
			return fmt.Errorf("identify: merge threshold %g outside (0, 1)", c.MergeThreshold)
		}
	}
	if c.UseSketchIndex && (c.SketchBands < 0 || c.SketchRows < 0) {
		return errors.New("identify: sketch shape must be non-negative")
	}
	return nil
}

// Story-ID namespacing. Story IDs must be unique across every source of a
// deployment — the alignment phase references them globally — and, for the
// cluster's scatter-gather proofs, *deterministic*: a source must mint the
// same IDs whether it is ingested by a single process or by whichever
// worker shard owns it. Both follow from giving every source its own ID
// namespace derived from the source name alone:
//
//	StoryID = SourceTag(source)<<sourceSeqBits | perSourceSequence
//
// The tag is sourceTagBits wide and the sequence sourceSeqBits, so IDs
// stay below 2^53 and survive JSON consumers that read numbers as IEEE
// doubles. Two distinct sources can collide in tag space with probability
// ~k²/2^23 for k sources; the engine detects that at registration and
// refuses the second source rather than silently corrupting the ID space
// (a remap would depend on registration order and break determinism).
const (
	sourceSeqBits = 31
	sourceTagBits = 22
)

// SourceTag returns the ID-namespace tag of a source name: the low
// sourceTagBits of a mixed FNV-1a hash. Exported so the engine can detect
// tag collisions between registered sources.
func SourceTag(src event.SourceID) uint32 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(src); i++ {
		h ^= uint64(src[i])
		h *= 1099511628211
	}
	h ^= h >> 32
	return uint32(h) & (1<<sourceTagBits - 1)
}

// IDAlloc hands out story IDs unique within its namespace. The zero value
// is the legacy un-namespaced allocator (IDs 1, 2, 3, ...), which unit
// tests and single-identifier tools use; the engine gives every source a
// NewSourceAlloc so IDs are simultaneously process-unique and
// deterministic per source.
type IDAlloc struct {
	base uint64
	n    atomic.Uint64
}

// NewSourceAlloc returns the allocator for one source's deterministic ID
// namespace.
func NewSourceAlloc(src event.SourceID) *IDAlloc {
	return &IDAlloc{base: uint64(SourceTag(src)) << sourceSeqBits}
}

// Next returns a fresh story ID.
func (a *IDAlloc) Next() event.StoryID { return event.StoryID(a.base | a.n.Add(1)) }

// Stats counts the work done by an Identifier; the statistics module and
// the benchmarks report them.
type Stats struct {
	Processed   int // snippets processed
	Comparisons int // snippet-story similarity evaluations
	Created     int // stories created
	Attached    int // snippets attached to existing stories
	Splits      int // stories created by split repair
	Merges      int // story merges by repair
	RepairRuns  int // repair passes executed
}
