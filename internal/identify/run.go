package identify

import (
	"sort"
	"sync"

	"repro/internal/event"
)

// RunSource batch-identifies a single source's snippets (processed in the
// order given) and returns the identifier for inspection.
func RunSource(source event.SourceID, snippets []*event.Snippet, cfg Config, alloc *IDAlloc) *Identifier {
	id := New(source, cfg, alloc)
	for _, s := range snippets {
		id.Process(s)
	}
	if cfg.RepairEvery > 0 {
		id.Repair() // final pass over the tail
	}
	return id
}

// RunAll partitions a mixed-source snippet stream by source (preserving
// order within each source, per the paper's Figure 1b: sources are
// processed independently) and identifies each. It returns the per-source
// identifiers keyed by source.
func RunAll(snippets []*event.Snippet, cfg Config, alloc *IDAlloc) map[event.SourceID]*Identifier {
	if alloc == nil {
		alloc = &IDAlloc{}
	}
	bySource := make(map[event.SourceID][]*event.Snippet)
	var order []event.SourceID
	for _, s := range snippets {
		if _, ok := bySource[s.Source]; !ok {
			order = append(order, s.Source)
		}
		bySource[s.Source] = append(bySource[s.Source], s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make(map[event.SourceID]*Identifier, len(order))
	for _, src := range order {
		out[src] = RunSource(src, bySource[src], cfg, alloc)
	}
	return out
}

// RunAllParallel is RunAll with one goroutine per source. Sources are
// identified independently (paper Figure 1b), so this is an
// embarrassingly parallel speedup on multi-core machines; results are
// identical to RunAll because identifiers share only the atomic story-ID
// allocator (story ID *values* differ between runs, but the partition is
// the same).
func RunAllParallel(snippets []*event.Snippet, cfg Config, alloc *IDAlloc) map[event.SourceID]*Identifier {
	if alloc == nil {
		alloc = &IDAlloc{}
	}
	bySource := make(map[event.SourceID][]*event.Snippet)
	for _, s := range snippets {
		bySource[s.Source] = append(bySource[s.Source], s)
	}
	out := make(map[event.SourceID]*Identifier, len(bySource))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for src, sns := range bySource {
		wg.Add(1)
		go func(src event.SourceID, sns []*event.Snippet) {
			defer wg.Done()
			id := RunSource(src, sns, cfg, alloc)
			mu.Lock()
			out[src] = id
			mu.Unlock()
		}(src, sns)
	}
	wg.Wait()
	return out
}

// StoriesBySource extracts the story sets from a set of identifiers, the
// input shape story alignment consumes.
func StoriesBySource(ids map[event.SourceID]*Identifier) map[event.SourceID][]*event.Story {
	out := make(map[event.SourceID][]*event.Story, len(ids))
	for src, id := range ids {
		out[src] = id.Stories()
	}
	return out
}

// MergedAssignment combines the per-source snippet→story assignments of
// several identifiers into one map (story IDs are globally unique, so no
// relabelling is needed).
func MergedAssignment(ids map[event.SourceID]*Identifier) map[event.SnippetID]event.StoryID {
	out := make(map[event.SnippetID]event.StoryID)
	for _, id := range ids {
		for k, v := range id.assign {
			out[k] = v
		}
	}
	return out
}
