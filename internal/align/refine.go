package align

import (
	"sort"
	"time"

	"repro/internal/event"
	"repro/internal/similarity"
	"repro/internal/vocab"
)

// RefineConfig parameterises story refinement (paper Figure 1d): the
// correction of story-identification mistakes using cross-source evidence
// surfaced by alignment.
type RefineConfig struct {
	// Margin is the score advantage a foreign story must have over the
	// snippet's home story (with the snippet's own contribution removed)
	// before the snippet is moved. Larger margins make refinement more
	// conservative.
	Margin float64
	// SupportThreshold is the minimum snippet-level similarity to a
	// snippet of *another source* inside the target integrated story; a
	// move needs independent cross-source support, which is exactly the
	// "irregularity" signal of the paper (related snippets across sources
	// land in different stories).
	SupportThreshold float64
	// SupportScale is the temporal tolerance for support snippets.
	SupportScale time.Duration
	// MinTargetScore is the absolute floor a target story must clear
	// regardless of how weak the home story is; it stops snippets in
	// singleton stories from drifting to any temporally close story.
	MinTargetScore float64
	// Weights for snippet-level and snippet-story comparisons.
	Weights similarity.Weights
	// TemporalScale for the snippet-story temporal component.
	TemporalScale time.Duration
}

// DefaultRefineConfig returns the configuration used by the demo system.
func DefaultRefineConfig() RefineConfig {
	return RefineConfig{
		Margin:           0.08,
		SupportThreshold: 0.4,
		SupportScale:     3 * 24 * time.Hour,
		MinTargetScore:   0.3,
		Weights:          similarity.DefaultWeights(),
		TemporalScale:    4 * 24 * time.Hour,
	}
}

// Mover re-homes a snippet within one source's story set; the per-source
// Identifier satisfies it.
type Mover interface {
	Move(snID event.SnippetID, to event.StoryID) bool
}

// Correction records one refinement decision.
type Correction struct {
	Snippet  event.SnippetID
	Source   event.SourceID
	From, To event.StoryID
	Gain     float64 // target score minus home score
}

// Refine examines every snippet of every integrated story and moves
// snippets whose cross-source evidence places them in a different story of
// their own source (paper Figure 1d: v¹₄ moves from c¹₁ to c¹₃). Moves are
// applied through the per-source movers so identifier state stays
// consistent. The alignment result is stale after refinement; the caller
// re-runs alignment if it needs fresh integrated stories.
func Refine(res *Result, movers map[event.SourceID]Mover, cfg RefineConfig) []Correction {
	span := metRefineLat.Start()
	defer span.End()
	metRefineRuns.Inc()
	var corrections []Correction
	defer func() { metRefineMovesApplied.Add(uint64(len(corrections))) }()

	// Plan all moves first, then apply: applying while scanning would make
	// later scores depend on earlier moves within the same pass.
	type plan struct {
		c      Correction
		target *event.Story
	}
	var plans []plan

	for _, is := range res.Integrated {
		for _, home := range is.Members {
			mover := movers[home.Source]
			if mover == nil {
				continue
			}
			for _, sn := range home.Snippets {
				homeScore := scoreWithoutSelf(sn, home, cfg)
				best := plan{}
				bestScore := homeScore + cfg.Margin
				if bestScore < cfg.MinTargetScore {
					bestScore = cfg.MinTargetScore
				}
				// Candidate targets: other stories of the same source —
				// in other integrated components or the snippet's own —
				// inside components that have cross-source support for
				// this snippet. The support requirement is the paper's
				// "irregularity" signal: related snippets in other
				// sources sit with the candidate story, not the home.
				for _, other := range res.Integrated {
					if !hasCrossSourceSupport(sn, other, cfg) {
						continue
					}
					for _, cand := range other.Members {
						if cand.Source != home.Source || cand.ID == home.ID {
							continue
						}
						ref := nearestTime(cand, sn.Timestamp)
						score := similarity.SnippetStoryIDs(sn, cand.EntityFreq, cand.Centroid,
							cand.CentroidNorm(), ref, cfg.TemporalScale, cfg.Weights, nil)
						if score > bestScore {
							bestScore = score
							best = plan{
								c: Correction{
									Snippet: sn.ID, Source: home.Source,
									From: home.ID, To: cand.ID,
									Gain: score - homeScore,
								},
								target: cand,
							}
						}
					}
				}
				if best.target != nil {
					plans = append(plans, best)
				}
			}
		}
	}
	// Apply best-gain-first; once a story has been modified by an applied
	// move, the remaining plans that read or write it are stale — their
	// scores were computed against the old contents — so they are skipped
	// and left for the next refinement round.
	sort.Slice(plans, func(i, j int) bool {
		if plans[i].c.Gain != plans[j].c.Gain {
			return plans[i].c.Gain > plans[j].c.Gain
		}
		return plans[i].c.Snippet < plans[j].c.Snippet
	})
	touched := make(map[event.StoryID]bool)
	for _, p := range plans {
		if touched[p.c.From] || touched[p.c.To] {
			continue
		}
		if movers[p.c.Source].Move(p.c.Snippet, p.c.To) {
			corrections = append(corrections, p.c)
			touched[p.c.From] = true
			touched[p.c.To] = true
		}
	}
	return corrections
}

// scoreWithoutSelf computes the snippet's similarity to its home story
// with the snippet's own contribution removed from the aggregates, so a
// snippet cannot vouch for itself.
func scoreWithoutSelf(sn *event.Snippet, home *event.Story, cfg RefineConfig) float64 {
	if home.Len() <= 1 {
		return 0 // alone in its story: any supported alternative wins
	}
	sn.EnsureInterned()
	centroid := vocab.SubWeights(append([]vocab.IDWeight(nil), home.Centroid...), sn.TermIDs)
	ents := vocab.DecCounts(append([]vocab.IDCount(nil), home.EntityFreq...), sn.EntityIDs)
	ref := nearestOtherTime(home, sn)
	return similarity.SnippetStoryIDs(sn, ents, centroid, vocab.WeightNorm(centroid), ref,
		cfg.TemporalScale, cfg.Weights, nil)
}

// hasCrossSourceSupport reports whether the integrated story contains a
// temporally close, similar snippet from a source other than sn's.
func hasCrossSourceSupport(sn *event.Snippet, is *event.IntegratedStory, cfg RefineConfig) bool {
	for _, m := range is.Members {
		if m.Source == sn.Source {
			continue
		}
		lo := sn.Timestamp.Add(-cfg.SupportScale)
		hi := sn.Timestamp.Add(cfg.SupportScale)
		for _, other := range m.WindowSnippets(lo, hi) {
			if similarity.Snippets(sn, other, cfg.SupportScale, cfg.Weights) >= cfg.SupportThreshold {
				return true
			}
		}
	}
	return false
}

func nearestTime(st *event.Story, t time.Time) time.Time {
	n := st.Len()
	if n == 0 {
		return t
	}
	i := sort.Search(n, func(i int) bool { return !st.Snippets[i].Timestamp.Before(t) })
	switch {
	case i == 0:
		return st.Snippets[0].Timestamp
	case i == n:
		return st.Snippets[n-1].Timestamp
	default:
		before, after := st.Snippets[i-1].Timestamp, st.Snippets[i].Timestamp
		if t.Sub(before) <= after.Sub(t) {
			return before
		}
		return after
	}
}

// nearestOtherTime is nearestTime excluding the snippet itself.
func nearestOtherTime(st *event.Story, sn *event.Snippet) time.Time {
	bestDiff := time.Duration(-1)
	best := sn.Timestamp
	for _, other := range st.Snippets {
		if other.ID == sn.ID {
			continue
		}
		d := other.Timestamp.Sub(sn.Timestamp)
		if d < 0 {
			d = -d
		}
		if bestDiff < 0 || d < bestDiff {
			bestDiff, best = d, other.Timestamp
		}
	}
	return best
}
