package align

import (
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/event"
	"repro/internal/identify"
)

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

func snip(id event.SnippetID, src event.SourceID, d int, ents []event.Entity, toks ...string) *event.Snippet {
	s := &event.Snippet{ID: id, Source: src, Timestamp: day(d), Entities: ents}
	for _, tok := range toks {
		s.Terms = append(s.Terms, event.Term{Token: tok, Weight: 1})
	}
	s.Normalize()
	return s
}

func mkStory(id event.StoryID, src event.SourceID, snips ...*event.Snippet) *event.Story {
	st := event.NewStory(id, src)
	for _, s := range snips {
		st.Add(s)
	}
	return st
}

// twoSourceFixture builds the paper's running example: an MH17 story
// reported by both sources plus an unrelated Google story in one source.
func twoSourceFixture() map[event.SourceID][]*event.Story {
	crash := []event.Entity{"UKR", "MAL"}
	goog := []event.Entity{"GOOG", "YELP"}
	nytCrash := mkStory(1, "nyt",
		snip(1, "nyt", 17, crash, "crash", "plane", "shot"),
		snip(2, "nyt", 18, crash, "crash", "investig"),
		snip(3, "nyt", 20, crash, "sanction", "report"),
	)
	wsjCrash := mkStory(2, "wsj",
		snip(11, "wsj", 17, crash, "crash", "plane", "explod"),
		snip(12, "wsj", 19, crash, "investig", "report"),
	)
	wsjGoog := mkStory(3, "wsj",
		snip(21, "wsj", 18, goog, "search", "antitrust", "content"),
	)
	return map[event.SourceID][]*event.Story{
		"nyt": {nytCrash},
		"wsj": {wsjCrash, wsjGoog},
	}
}

func TestAlignMatchesSameStoryAcrossSources(t *testing.T) {
	res := Align(twoSourceFixture(), DefaultConfig())
	if len(res.Integrated) != 2 {
		t.Fatalf("got %d integrated stories, want 2 (crash aligned + google singleton)", len(res.Integrated))
	}
	multi := res.MultiSource()
	if len(multi) != 1 {
		t.Fatalf("MultiSource = %d, want 1", len(multi))
	}
	crash := multi[0]
	if len(crash.Members) != 2 || crash.Len() != 5 {
		t.Fatalf("crash integrated story: %d members, %d snippets", len(crash.Members), crash.Len())
	}
	// Singleton story survives (paper §2.3).
	var foundGoog bool
	for _, is := range res.Integrated {
		for _, m := range is.Members {
			if m.ID == 3 {
				foundGoog = true
				if len(is.Members) != 1 {
					t.Error("google story wrongly aligned")
				}
			}
		}
	}
	if !foundGoog {
		t.Fatal("unaligned story dropped from result")
	}
	// Match edge recorded.
	if len(res.Matches) != 1 || res.Matches[0].Score < DefaultConfig().MatchThreshold {
		t.Fatalf("Matches = %+v", res.Matches)
	}
	// IntegratedOf lookups.
	if res.IntegratedOf(1) != crash || res.IntegratedOf(2) != crash {
		t.Fatal("IntegratedOf wrong")
	}
	if res.IntegratedOf(3) == crash {
		t.Fatal("google story mapped to crash component")
	}
	if res.IntegratedOf(99) != nil {
		t.Fatal("unknown story should map to nil")
	}
}

func TestAlignTemporalGapBlocksMatch(t *testing.T) {
	crash := []event.Entity{"UKR", "MAL"}
	a := mkStory(1, "nyt",
		snip(1, "nyt", 1, crash, "crash", "plane"),
		snip(2, "nyt", 2, crash, "crash", "investig"),
	)
	// Same content, but months later (beyond slack).
	b := event.NewStory(2, "wsj")
	b.Add(&event.Snippet{ID: 11, Source: "wsj", Timestamp: time.Date(2014, 11, 1, 0, 0, 0, 0, time.UTC),
		Entities: crash, Terms: []event.Term{{Token: "crash", Weight: 1}, {Token: "plane", Weight: 1}}})
	res := Align(map[event.SourceID][]*event.Story{"nyt": {a}, "wsj": {b}}, DefaultConfig())
	if len(res.MultiSource()) != 0 {
		t.Fatal("temporally disjoint stories aligned (paper: ti << tj must block)")
	}
}

func TestAlignSameSourceNeverMatches(t *testing.T) {
	crash := []event.Entity{"UKR", "MAL"}
	a := mkStory(1, "nyt", snip(1, "nyt", 17, crash, "crash", "plane"))
	b := mkStory(2, "nyt", snip(2, "nyt", 17, crash, "crash", "plane"))
	res := Align(map[event.SourceID][]*event.Story{"nyt": {a, b}}, DefaultConfig())
	if len(res.MultiSource()) != 0 {
		t.Fatal("same-source stories aligned; alignment is cross-source only")
	}
	if len(res.Integrated) != 2 {
		t.Fatalf("Integrated = %d", len(res.Integrated))
	}
}

func TestRolesAligningVsEnriching(t *testing.T) {
	crash := []event.Entity{"UKR", "MAL"}
	nyt := mkStory(1, "nyt",
		snip(1, "nyt", 17, crash, "crash", "plane", "shot"),
		// A special report with no counterpart anywhere near it.
		snip(2, "nyt", 28, crash, "feature", "profil", "victim"),
	)
	wsj := mkStory(2, "wsj",
		snip(11, "wsj", 17, crash, "crash", "plane", "explod"),
		snip(12, "wsj", 18, crash, "crash", "investig", "shot"),
	)
	res := Align(map[event.SourceID][]*event.Story{"nyt": {nyt}, "wsj": {wsj}}, DefaultConfig())
	multi := res.MultiSource()
	if len(multi) != 1 {
		t.Skipf("fixture did not align (%d multi)", len(multi))
	}
	is := multi[0]
	if is.Roles[1] != event.RoleAligning {
		t.Errorf("snippet 1 role = %v, want aligning", is.Roles[1])
	}
	if is.Roles[11] != event.RoleAligning {
		t.Errorf("snippet 11 role = %v, want aligning", is.Roles[11])
	}
	if is.Roles[2] != event.RoleEnriching {
		t.Errorf("special report role = %v, want enriching", is.Roles[2])
	}
}

func TestSingletonComponentRolesAllEnriching(t *testing.T) {
	st := mkStory(1, "nyt", snip(1, "nyt", 1, []event.Entity{"A"}, "x", "y"))
	res := Align(map[event.SourceID][]*event.Story{"nyt": {st}}, DefaultConfig())
	if res.Integrated[0].Roles[1] != event.RoleEnriching {
		t.Fatal("singleton member snippets must be enriching")
	}
}

func TestAlignerIncrementalUpsertRemove(t *testing.T) {
	fix := twoSourceFixture()
	a := NewAligner(DefaultConfig())
	for _, sts := range fix {
		for _, st := range sts {
			a.Upsert(st)
		}
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	res1 := a.Result()
	if len(res1.MultiSource()) != 1 {
		t.Fatalf("incremental result: %d multi", len(res1.MultiSource()))
	}
	// Removing the wsj crash story dissolves the component.
	a.Remove(2)
	res2 := a.Result()
	if len(res2.MultiSource()) != 0 {
		t.Fatal("match survived story removal")
	}
	// Re-adding restores it (Upsert is idempotent re-add).
	a.Upsert(fix["wsj"][0])
	res3 := a.Result()
	if len(res3.MultiSource()) != 1 {
		t.Fatal("re-upsert did not restore the match")
	}
	// Upserting the same story twice must not duplicate edges.
	a.Upsert(fix["wsj"][0])
	if got := len(a.Matches()); got != 1 {
		t.Fatalf("duplicate edges after re-upsert: %d", got)
	}
	// Empty or nil stories are ignored.
	a.Upsert(nil)
	a.Upsert(event.NewStory(99, "nyt"))
	if a.Len() != 3 {
		t.Fatalf("empty story changed Len to %d", a.Len())
	}
	a.Remove(12345) // unknown: no-op
}

func TestAlignIncrementalEqualsBatch(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.Sources = 4
	cfg.Stories = 10
	cfg.EventsPerStory = 8
	c := datagen.Generate(cfg)
	ids := identify.RunAll(c.Snippets, identify.DefaultConfig(), nil)
	bySource := identify.StoriesBySource(ids)

	batch := Align(bySource, DefaultConfig())

	// Incremental: insert sources one at a time (the "new source appears"
	// flow of paper §2.1).
	a := NewAligner(DefaultConfig())
	for _, src := range c.Sources {
		for _, st := range bySource[src] {
			a.Upsert(st)
		}
	}
	incr := a.Result()

	asg := func(r *Result) eval.Assignment { return eval.FromIntegrated(r.Integrated) }
	f := eval.Pairwise(asg(batch), asg(incr))
	if f.F1 != 1 {
		t.Fatalf("incremental and batch alignment disagree: F1 = %.3f", f.F1)
	}
}

func TestAlignmentImprovesOverIdentificationAlone(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.Sources = 4
	cfg.Stories = 10
	cfg.EventsPerStory = 10
	c := datagen.Generate(cfg)
	ids := identify.RunAll(c.Snippets, identify.DefaultConfig(), nil)
	res := Align(identify.StoriesBySource(ids), DefaultConfig())

	truth := eval.Assignment{}
	for id, l := range c.Truth {
		truth[id] = l
	}
	// Identification alone cannot link cross-source snippets: its recall
	// against global truth is bounded. Alignment recovers those links.
	pred := eval.Assignment{}
	for k, v := range identify.MergedAssignment(ids) {
		pred[k] = uint64(v)
	}
	idOnly := eval.Pairwise(pred, truth)
	aligned := eval.Pairwise(eval.FromIntegrated(res.Integrated), truth)
	if !(aligned.Recall > idOnly.Recall) {
		t.Fatalf("alignment recall %.3f must exceed identification-only %.3f", aligned.Recall, idOnly.Recall)
	}
	if aligned.F1 < idOnly.F1 {
		t.Fatalf("alignment F1 %.3f dropped below identification-only %.3f", aligned.F1, idOnly.F1)
	}
	if aligned.F1 < 0.6 {
		t.Fatalf("aligned F1 = %.3f too low", aligned.F1)
	}
}

func TestSketchFilterReducesComparisons(t *testing.T) {
	cfg := datagen.DefaultConfig()
	cfg.Sources = 5
	cfg.Stories = 15
	cfg.EventsPerStory = 8
	c := datagen.Generate(cfg)
	ids := identify.RunAll(c.Snippets, identify.DefaultConfig(), nil)
	bySource := identify.StoriesBySource(ids)

	plain := NewAligner(DefaultConfig())
	scfg := DefaultConfig()
	scfg.UseSketchFilter = true
	sk := NewAligner(scfg)
	for _, src := range c.Sources {
		for _, st := range bySource[src] {
			plain.Upsert(st)
			sk.Upsert(st)
		}
	}
	if sk.Stats().SketchSkipped == 0 {
		t.Fatal("sketch filter skipped nothing")
	}
	if sk.Stats().Comparisons >= plain.Stats().Comparisons {
		t.Fatalf("sketch comparisons %d >= plain %d", sk.Stats().Comparisons, plain.Stats().Comparisons)
	}
	// Quality must stay close.
	f := eval.Pairwise(eval.FromIntegrated(plain.Result().Integrated), eval.FromIntegrated(sk.Result().Integrated))
	if f.F1 < 0.9 {
		t.Fatalf("sketch filter changed results too much: agreement F1 = %.3f", f.F1)
	}
}

func TestRefineCorrectsMisassignment(t *testing.T) {
	// Build identification state with a deliberate mistake, mirroring
	// Figure 1d: nyt snippet 4 really belongs to the crash story but sits
	// in the google story.
	crash := []event.Entity{"UKR", "MAL"}
	goog := []event.Entity{"GOOG", "YELP"}

	alloc := &identify.IDAlloc{}
	idCfg := identify.DefaultConfig()
	idCfg.RepairEvery = 0
	nyt := identify.New("nyt", idCfg, alloc)
	wsj := identify.New("wsj", idCfg, alloc)

	nyt.Process(snip(1, "nyt", 17, crash, "crash", "plane", "shot"))
	nyt.Process(snip(2, "nyt", 18, crash, "crash", "investig", "shot"))
	nyt.Process(snip(3, "nyt", 18, goog, "search", "antitrust", "content"))
	wsj.Process(snip(11, "wsj", 17, crash, "crash", "plane", "shot"))
	wsj.Process(snip(12, "wsj", 18, crash, "crash", "investig", "shot"))
	wsj.Process(snip(13, "wsj", 18, goog, "search", "antitrust", "content"))

	// Inject the mistake: move nyt snippet 2 into the google story.
	googStory := nyt.StoryOf(3)
	if !nyt.Move(2, googStory) {
		t.Fatal("setup move failed")
	}

	bySource := map[event.SourceID][]*event.Story{"nyt": nyt.Stories(), "wsj": wsj.Stories()}
	res := Align(bySource, DefaultConfig())

	movers := map[event.SourceID]Mover{"nyt": nyt, "wsj": wsj}
	corrections := Refine(res, movers, DefaultRefineConfig())
	if len(corrections) == 0 {
		t.Fatal("refinement found no corrections")
	}
	found := false
	for _, c := range corrections {
		if c.Snippet == 2 && c.Source == "nyt" {
			found = true
			if c.Gain <= 0 {
				t.Errorf("correction gain = %g", c.Gain)
			}
		}
	}
	if !found {
		t.Fatalf("snippet 2 not corrected; corrections = %+v", corrections)
	}
	if nyt.StoryOf(2) != nyt.StoryOf(1) {
		t.Fatal("snippet 2 not re-homed to the crash story")
	}
}

func TestRefineNoFalseMoves(t *testing.T) {
	// Clean identification: refinement must leave everything in place.
	cfg := datagen.DefaultConfig()
	cfg.Sources = 3
	cfg.Stories = 8
	cfg.EventsPerStory = 8
	cfg.NoiseTermPct = 0
	cfg.NoiseEntPct = 0
	c := datagen.Generate(cfg)
	ids := identify.RunAll(c.Snippets, identify.DefaultConfig(), nil)

	truth := eval.Assignment{}
	for id, l := range c.Truth {
		truth[id] = l
	}
	pred := eval.Assignment{}
	for k, v := range identify.MergedAssignment(ids) {
		pred[k] = uint64(v)
	}
	before := eval.BCubed(pred, truth).F1

	res := Align(identify.StoriesBySource(ids), DefaultConfig())
	movers := map[event.SourceID]Mover{}
	for src, id := range ids {
		movers[src] = id
	}
	Refine(res, movers, DefaultRefineConfig())

	after := eval.Assignment{}
	for k, v := range identify.MergedAssignment(ids) {
		after[k] = uint64(v)
	}
	if got := eval.BCubed(after, truth).F1; got < before-0.02 {
		t.Fatalf("refinement degraded clean identification: %.3f -> %.3f", before, got)
	}
}
