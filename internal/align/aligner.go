// Package align implements StoryPivot's story alignment phase (paper
// §2.3): integrating per-source stories across data sources into
// integrated stories, classifying snippets as aligning vs enriching, and
// refining per-source identification results with cross-source evidence
// (paper Figure 1c/1d).
//
// The Aligner is incremental: stories can be upserted or removed one at a
// time and only their match edges are recomputed, which is what makes
// adding a new data source cheap (paper §2.1: "as new sources become
// available, we first identify the stories associated with them and then
// align them with existing stories").
package align

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/event"
	"repro/internal/similarity"
	"repro/internal/sketch"
	"repro/internal/vocab"
)

// Config parameterises alignment. Use DefaultConfig as the base.
type Config struct {
	// MatchThreshold is the minimum story-level similarity for two stories
	// of different sources to be aligned.
	MatchThreshold float64
	// Story configures the story-vs-story similarity kernel.
	Story similarity.StoryConfig
	// Slack widens the temporal-overlap candidate filter: stories whose
	// extents are further apart than this can never align. Alignment is
	// more temporally tolerant than identification (paper §4.1).
	Slack time.Duration
	// ComponentGuard scales MatchThreshold for the aggregate-similarity
	// merge guard (see Result): two components only merge when their
	// aggregates score at least ComponentGuard*MatchThreshold. Values
	// below 1 account for aggregate dilution; 0 disables the guard
	// (pure single-linkage, which snowballs at scale).
	ComponentGuard float64
	// GuardGrowth stiffens the guard as components grow: the effective
	// guard is ComponentGuard * (1 + GuardGrowth*ln(1+minMembers)), where
	// minMembers is the smaller component's member-story count. Larger
	// corpora produce more fragments per real story and more same-topic
	// near-misses, so the evidence bar for merging already-large
	// components must rise with their size; singleton merges keep the
	// base guard.
	GuardGrowth float64

	// UseSketchFilter short-circuits candidate pairs through MinHash
	// signatures before computing the full similarity.
	UseSketchFilter bool
	// SketchThreshold is the minimum estimated entity-Jaccard for a
	// candidate pair to survive the sketch filter.
	SketchThreshold float64
	// SketchLength is the MinHash signature length.
	SketchLength int

	// RoleScale is the temporal tolerance when classifying a snippet as
	// "aligning" (it has a counterpart in another source within this
	// distance) versus "enriching".
	RoleScale time.Duration
	// RoleThreshold is the minimum snippet-snippet similarity for a
	// cross-source counterpart.
	RoleThreshold float64
	// Weights for snippet-level comparisons (roles, refinement).
	Weights similarity.Weights
	// UseEntityIDF weights entities by inverse mention frequency across
	// all upserted stories, mirroring the identification-side option.
	UseEntityIDF bool
}

// DefaultConfig returns the configuration used by the demo system.
func DefaultConfig() Config {
	return Config{
		MatchThreshold:  0.38,
		Story:           similarity.DefaultStoryConfig(),
		Slack:           7 * 24 * time.Hour,
		ComponentGuard:  0.9,
		GuardGrowth:     0.2,
		UseSketchFilter: false,
		SketchThreshold: 0.08,
		SketchLength:    64,
		RoleScale:       3 * 24 * time.Hour,
		RoleThreshold:   0.35,
		Weights:         similarity.DefaultWeights(),
		UseEntityIDF:    true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MatchThreshold <= 0 || c.MatchThreshold >= 1 {
		return fmt.Errorf("align: match threshold %g outside (0, 1)", c.MatchThreshold)
	}
	if c.Slack < 0 {
		return errors.New("align: slack must be >= 0")
	}
	if c.ComponentGuard < 0 || c.GuardGrowth < 0 {
		return errors.New("align: guard parameters must be >= 0")
	}
	if c.RoleScale <= 0 {
		return errors.New("align: role scale must be positive")
	}
	if c.RoleThreshold <= 0 || c.RoleThreshold >= 1 {
		return fmt.Errorf("align: role threshold %g outside (0, 1)", c.RoleThreshold)
	}
	if c.UseSketchFilter && c.SketchLength < 0 {
		return errors.New("align: sketch length must be >= 0")
	}
	return nil
}

// Match records one cross-source story pair that cleared the threshold.
type Match struct {
	A, B  event.StoryID
	Score float64
}

// Stats counts alignment work for the statistics module.
type Stats struct {
	CandidatePairs int // pairs surviving the temporal filter
	SketchSkipped  int // pairs rejected by the sketch filter
	Comparisons    int // full story-similarity evaluations
	Matches        int // pairs above threshold
}

// Aligner maintains the cross-source story match graph incrementally.
// Not safe for concurrent use.
type Aligner struct {
	cfg Config

	stories map[event.StoryID]*event.Story
	order   []event.StoryID
	// edges holds match scores keyed by (min,max) story ID.
	edges map[[2]event.StoryID]float64
	// cands remembers every candidate pair that passed the temporal (and
	// sketch) filters, including pairs that scored below threshold. Under
	// IDF entity weighting, scores depend on the global entity statistics
	// at scoring time; when those statistics drift, Result rescores the
	// candidates so the outcome is independent of upsert order.
	cands map[[2]event.StoryID]bool
	// lastScored is the entTotal at the last full rescore; drifting more
	// than 20% in either direction (growth from upserts, shrinkage from
	// source removal) triggers the next one.
	lastScored int

	hasher *sketch.MinHasher
	sigs   map[event.StoryID]sketch.Signature

	// buckets index stories by coarse time intervals for candidate
	// retrieval; a story appears in every bucket its (slack-widened)
	// extent touches.
	bucketWidth time.Duration
	buckets     map[int64][]event.StoryID

	// entCount accumulates entity mention counts over all upserted
	// stories, indexed by interned entity symbol; it backs the IDF entity
	// weighting. entTotal is the count sum and entDistinct the number of
	// entities with a nonzero count, for mean normalisation.
	entCount    []int32
	entTotal    int
	entDistinct int
	storyCfg    similarity.StoryConfig // cfg.Story plus the weighter

	stats Stats
}

// NewAligner creates an empty aligner.
func NewAligner(cfg Config) *Aligner {
	bw := cfg.Slack
	if bw <= 0 {
		bw = 7 * 24 * time.Hour
	}
	a := &Aligner{
		cfg:         cfg,
		stories:     make(map[event.StoryID]*event.Story),
		edges:       make(map[[2]event.StoryID]float64),
		cands:       make(map[[2]event.StoryID]bool),
		bucketWidth: bw,
		buckets:     make(map[int64][]event.StoryID),
	}
	a.storyCfg = cfg.Story
	if cfg.UseEntityIDF {
		// Mean-normalised inverse-frequency weighting over interned entity
		// symbols; see the identify package for rationale.
		a.storyCfg.EntityWeight = func(e uint32) float64 {
			mean := 1.0
			if a.entDistinct > 0 {
				mean = float64(a.entTotal) / float64(a.entDistinct)
			}
			var c int32
			if int(e) < len(a.entCount) {
				c = a.entCount[e]
			}
			return 1 / (1 + logFloat(1+float64(c)/mean))
		}
	}
	if cfg.UseSketchFilter {
		n := cfg.SketchLength
		if n <= 0 {
			n = 64
		}
		a.hasher = sketch.NewMinHasher(n, 0xa11e)
		a.sigs = make(map[event.StoryID]sketch.Signature)
	}
	return a
}

// Stats returns a snapshot of the work counters.
func (a *Aligner) Stats() Stats { return a.stats }

// Len returns the number of stories under alignment.
func (a *Aligner) Len() int { return len(a.stories) }

// noteEntity adjusts the IDF statistics by delta mentions of entity
// symbol e (negative when a story is removed).
func (a *Aligner) noteEntity(e uint32, delta int32) {
	if int(e) >= len(a.entCount) {
		if delta <= 0 {
			return
		}
		if int(e) < cap(a.entCount) {
			a.entCount = a.entCount[:int(e)+1]
		} else {
			grown := make([]int32, int(e)+1, (int(e)+1)*2)
			copy(grown, a.entCount)
			a.entCount = grown
		}
	}
	before := a.entCount[e]
	after := before + delta
	if after < 0 {
		after = 0
	}
	a.entCount[e] = after
	a.entTotal += int(after - before)
	if before == 0 && after > 0 {
		a.entDistinct++
	} else if before > 0 && after == 0 {
		a.entDistinct--
	}
}

func edgeKey(x, y event.StoryID) [2]event.StoryID {
	if x > y {
		x, y = y, x
	}
	return [2]event.StoryID{x, y}
}

func (a *Aligner) bucketRange(st *event.Story) (lo, hi int64) {
	lo = st.Start.Add(-a.cfg.Slack).UnixNano() / int64(a.bucketWidth)
	hi = st.End.Add(a.cfg.Slack).UnixNano() / int64(a.bucketWidth)
	return lo, hi
}

// Upsert adds a story to the aligner, or refreshes a story whose content
// changed, recomputing only that story's match edges.
func (a *Aligner) Upsert(st *event.Story) {
	if st == nil || st.Len() == 0 {
		return
	}
	span := metUpsertLat.Start()
	defer span.End()
	startComparisons, startMatches := a.stats.Comparisons, a.stats.Matches
	startSkipped := a.stats.SketchSkipped
	defer func() {
		metComparisons.Add(uint64(a.stats.Comparisons - startComparisons))
		metMatches.Add(uint64(a.stats.Matches - startMatches))
		metSketchSkipped.Add(uint64(a.stats.SketchSkipped - startSkipped))
	}()
	if _, known := a.stories[st.ID]; known {
		a.removeInternal(st.ID)
	} else {
		a.order = append(a.order, st.ID)
	}
	a.stories[st.ID] = st
	for _, ec := range st.EntityFreq {
		a.noteEntity(ec.ID, ec.N)
	}
	lo, hi := a.bucketRange(st)
	for b := lo; b <= hi; b++ {
		a.buckets[b] = append(a.buckets[b], st.ID)
	}
	var sig sketch.Signature
	if a.hasher != nil {
		sig = a.hasher.Sign(entityElems(st))
		a.sigs[st.ID] = sig
	}
	// Score against candidates from different sources in shared buckets.
	seen := map[event.StoryID]bool{st.ID: true}
	for b := lo; b <= hi; b++ {
		for _, oid := range a.buckets[b] {
			if seen[oid] {
				continue
			}
			seen[oid] = true
			other := a.stories[oid]
			if other == nil || other.Source == st.Source {
				continue
			}
			if !st.Overlaps(other, a.cfg.Slack) {
				continue
			}
			a.stats.CandidatePairs++
			if a.hasher != nil {
				if sketch.Estimate(sig, a.sigs[oid]) < a.cfg.SketchThreshold {
					a.stats.SketchSkipped++
					continue
				}
			}
			key := edgeKey(st.ID, oid)
			a.cands[key] = true
			score := similarity.Stories(st, other, a.storyCfg)
			a.stats.Comparisons++
			if score >= a.cfg.MatchThreshold {
				a.edges[key] = score
				a.stats.Matches++
			}
		}
	}
}

// Remove deletes a story and its edges from the aligner.
func (a *Aligner) Remove(id event.StoryID) {
	if _, ok := a.stories[id]; !ok {
		return
	}
	a.removeInternal(id)
	delete(a.stories, id)
	// Compact the insertion-order list once stale entries dominate.
	if len(a.order) > 2*len(a.stories)+16 {
		live := a.order[:0]
		for _, s := range a.order {
			if _, ok := a.stories[s]; ok {
				live = append(live, s)
			}
		}
		a.order = live
	}
}

// removeInternal clears indexes and edges but keeps the order slice (which
// tolerates stale entries).
func (a *Aligner) removeInternal(id event.StoryID) {
	st := a.stories[id]
	if st != nil {
		for _, ec := range st.EntityFreq {
			a.noteEntity(ec.ID, -ec.N)
		}
	}
	if st != nil {
		lo, hi := a.bucketRange(st)
		for b := lo; b <= hi; b++ {
			bucket := a.buckets[b]
			for i, x := range bucket {
				if x == id {
					bucket[i] = bucket[len(bucket)-1]
					bucket = bucket[:len(bucket)-1]
					break
				}
			}
			if len(bucket) == 0 {
				delete(a.buckets, b)
			} else {
				a.buckets[b] = bucket
			}
		}
	}
	for k := range a.edges {
		if k[0] == id || k[1] == id {
			delete(a.edges, k)
		}
	}
	for k := range a.cands {
		if k[0] == id || k[1] == id {
			delete(a.cands, k)
		}
	}
	if a.sigs != nil {
		delete(a.sigs, id)
	}
}

// rescoreIfDrifted recomputes every candidate pair's score when the
// global entity statistics have grown materially since the last full
// scoring pass. This makes the final result independent of upsert order
// under IDF weighting: early edges were scored against early statistics,
// and without a rescore their scores would be stale.
func (a *Aligner) rescoreIfDrifted() {
	if a.storyCfg.EntityWeight == nil {
		return // uniform weights never drift
	}
	lo, hi := a.lastScored-a.lastScored/5, a.lastScored+a.lastScored/5
	if a.lastScored > 0 && a.entTotal >= lo && a.entTotal <= hi {
		return
	}
	a.edges = make(map[[2]event.StoryID]float64, len(a.edges))
	for k := range a.cands {
		x, y := a.stories[k[0]], a.stories[k[1]]
		if x == nil || y == nil {
			delete(a.cands, k)
			continue
		}
		score := similarity.Stories(x, y, a.storyCfg)
		a.stats.Comparisons++
		if score >= a.cfg.MatchThreshold {
			a.edges[k] = score
		}
	}
	a.lastScored = a.entTotal
}

// Matches returns every raw above-threshold match edge sorted by
// descending score — the candidate set before reciprocal-best filtering
// (Result reports the filtered set it actually integrated on).
func (a *Aligner) Matches() []Match {
	out := make([]Match, 0, len(a.edges))
	for k, s := range a.edges {
		out = append(out, Match{A: k[0], B: k[1], Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// reciprocalEdges filters the raw above-threshold edges down to
// reciprocal best matches: an edge (A, B) survives only if B is A's
// highest-scoring match in B's source and vice versa. Raw thresholding
// alone lets thematically related but distinct stories (stories of the
// same topic family) chain transitively into giant components; reciprocal
// matching is the selectivity that keeps components story-sized while a
// real counterpart — which is almost always the mutual best match —
// still aligns.
func (a *Aligner) reciprocalEdges() map[[2]event.StoryID]float64 {
	type slot struct {
		other event.StoryID
		score float64
	}
	best := make(map[event.StoryID]map[event.SourceID]slot, len(a.stories))
	note := func(self, other event.StoryID, score float64) {
		osrc := a.stories[other].Source
		m := best[self]
		if m == nil {
			m = make(map[event.SourceID]slot)
			best[self] = m
		}
		cur, ok := m[osrc]
		if !ok || score > cur.score || (score == cur.score && other < cur.other) {
			m[osrc] = slot{other, score}
		}
	}
	for k, s := range a.edges {
		note(k[0], k[1], s)
		note(k[1], k[0], s)
	}
	out := make(map[[2]event.StoryID]float64)
	for k, s := range a.edges {
		x, y := k[0], k[1]
		if best[x][a.stories[y].Source].other == y && best[y][a.stories[x].Source].other == x {
			out[k] = s
		}
	}
	return out
}

// RetirableSets computes which stories the retirement policy may evict,
// grouped into co-retirement sets. cold classifies a story (typically:
// no evidence for the retirement window, by event time); sameSourcePad
// is the identification window ω, guarding the identifier's repair-merge
// reachability — a negative pad disables the same-source guard (the
// caller runs without incremental repair).
//
// A set is a connected component of the candidate graph restricted to
// edges that can still matter: every above-threshold match edge, plus
// below-threshold candidate pairs with at least one warm endpoint (a warm
// story may be re-upserted with new evidence and rescore the pair across
// the threshold; a cold–cold below-threshold pair is inert because neither
// side will be re-upserted while cold). A component is retirable only when
// every member is cold and no member is within sameSourcePad of a warm
// story of its own source. Removing such a component cannot change the
// alignment of the remaining stories: no live edge crosses the cut, so the
// reciprocal-best filter and the component merge guard see exactly the
// edges they would have seen with the cold component present. (Under IDF
// entity weighting the global statistics do shift — the documented
// equivalence caveat, same as sharding; see DESIGN.md.)
//
// Sets and their members are returned in deterministic insertion order.
func (a *Aligner) RetirableSets(cold func(*event.Story) bool, sameSourcePad time.Duration) [][]event.StoryID {
	if len(a.stories) == 0 {
		return nil
	}
	coldSet := make(map[event.StoryID]bool, len(a.stories))
	// warmMinStart tracks, per source, the earliest extent start among warm
	// stories: a cold story ending within sameSourcePad of it could still
	// be merged with live same-source state by identifier repair, so it
	// stays resident.
	warmMinStart := make(map[event.SourceID]time.Time)
	for id, st := range a.stories {
		if cold(st) {
			coldSet[id] = true
			continue
		}
		cur, ok := warmMinStart[st.Source]
		if !ok || st.Start.Before(cur) {
			warmMinStart[st.Source] = st.Start
		}
	}
	if len(coldSet) == 0 {
		return nil
	}
	parent := make(map[event.StoryID]event.StoryID, len(a.stories))
	var find func(event.StoryID) event.StoryID
	find = func(x event.StoryID) event.StoryID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for id := range a.stories {
		parent[id] = id
	}
	for k := range a.cands {
		if _, ok := a.stories[k[0]]; !ok {
			continue
		}
		if _, ok := a.stories[k[1]]; !ok {
			continue
		}
		if coldSet[k[0]] && coldSet[k[1]] {
			if _, matched := a.edges[k]; !matched {
				// A below-threshold pair between two cold stories is
				// inert: a score only changes when an endpoint is
				// re-upserted, and new evidence would make that endpoint
				// warm first. Traversing such edges would chain long runs
				// of unrelated cold stories to a warm component and pin
				// them all resident. (Under IDF weighting a drift rescore
				// could still flip the pair, but a merge of two cold
				// stories lies wholly outside the active window — the
				// documented IDF equivalence caveat.)
				continue
			}
		}
		parent[find(k[0])] = find(k[1])
	}
	members := make(map[event.StoryID][]event.StoryID, len(a.stories))
	retirable := make(map[event.StoryID]bool, len(a.stories))
	var rootOrder []event.StoryID
	for _, id := range a.order {
		st := a.stories[id]
		if st == nil {
			continue
		}
		r := find(id)
		if _, seen := members[r]; !seen {
			rootOrder = append(rootOrder, r)
			retirable[r] = true
		}
		members[r] = append(members[r], id)
		if !coldSet[id] {
			retirable[r] = false
			continue
		}
		if sameSourcePad < 0 {
			continue
		}
		if warmStart, ok := warmMinStart[st.Source]; ok && !st.End.Add(sameSourcePad).Before(warmStart) {
			retirable[r] = false
		}
	}
	var out [][]event.StoryID
	for _, r := range rootOrder {
		if retirable[r] {
			out = append(out, members[r])
		}
	}
	return out
}

// component aggregates the contents of an in-progress integrated story
// during guarded merging.
type component struct {
	ents       []vocab.IDCount
	centroid   []vocab.IDWeight
	start, end time.Time
	members    int // member stories, for the size-adaptive guard
}

func newComponent(st *event.Story) *component {
	return &component{
		members:  1,
		ents:     append([]vocab.IDCount(nil), st.EntityFreq...),
		centroid: append([]vocab.IDWeight(nil), st.Centroid...),
		start:    st.Start,
		end:      st.End,
	}
}

// absorb merges other into c.
func (c *component) absorb(other *component) {
	c.ents = vocab.AddCounts(c.ents, other.ents)
	c.centroid = vocab.AddWeights(c.centroid, other.centroid)
	if other.start.Before(c.start) {
		c.start = other.start
	}
	if other.end.After(c.end) {
		c.end = other.end
	}
	c.members += other.members
}

// similar scores two component aggregates with the same entity/description
// /temporal combination used for stories. This is the merge guard: it
// makes integration behave like average-linkage clustering instead of
// single-linkage, so fragmented same-topic stories cannot chain arbitrary
// components together (single-linkage over reciprocal edges still
// snowballs at scale).
func (a *Aligner) componentsSimilar(x, y *component) bool {
	w := a.cfg.Story.Weights.Normalized()
	sim := w.Entity * similarity.WeightedJaccardIDSets(x.ents, y.ents, a.storyCfg.EntityWeight)
	sim += w.Description * similarity.CosineIDs(x.centroid, y.centroid)
	var gap time.Duration
	switch {
	case x.end.Before(y.start):
		gap = y.start.Sub(x.end)
	case y.end.Before(x.start):
		gap = x.start.Sub(y.end)
	}
	sim += w.Temporal * similarity.GapDecay(gap, a.cfg.Story.GapScale)
	guard := a.cfg.ComponentGuard
	if a.cfg.GuardGrowth > 0 {
		min := x.members
		if y.members < min {
			min = y.members
		}
		guard *= 1 + a.cfg.GuardGrowth*math.Log(float64(min))
	}
	return sim >= guard*a.cfg.MatchThreshold
}

// Result computes the integrated story set: components grown from the
// reciprocal-best match graph under the aggregate-similarity merge guard,
// with every unmatched story becoming a singleton integrated story (paper
// §2.3: stories that appear in only one source remain in the result).
// Snippet roles are classified per component.
func (a *Aligner) Result() *Result {
	span := metResultLat.Start()
	defer span.End()
	startComparisons := a.stats.Comparisons
	defer func() {
		metComparisons.Add(uint64(a.stats.Comparisons - startComparisons))
	}()
	a.rescoreIfDrifted()
	// Union-find over story IDs with per-root component aggregates.
	parent := make(map[event.StoryID]event.StoryID, len(a.stories))
	comps := make(map[event.StoryID]*component, len(a.stories))
	var find func(event.StoryID) event.StoryID
	find = func(x event.StoryID) event.StoryID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for id, st := range a.stories {
		parent[id] = id
		comps[id] = newComponent(st)
	}
	recip := a.reciprocalEdges()
	// Strongest matches first, so the guard evaluates high-confidence
	// merges before aggregates drift.
	order := make([]Match, 0, len(recip))
	for k, s := range recip {
		order = append(order, Match{A: k[0], B: k[1], Score: s})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Score != order[j].Score {
			return order[i].Score > order[j].Score
		}
		if order[i].A != order[j].A {
			return order[i].A < order[j].A
		}
		return order[i].B < order[j].B
	})
	for _, m := range order {
		ra, rb := find(m.A), find(m.B)
		if ra == rb {
			continue
		}
		ca, cb := comps[ra], comps[rb]
		if a.cfg.ComponentGuard > 0 && !a.componentsSimilar(ca, cb) {
			continue
		}
		// Absorb the smaller aggregate into the larger.
		if len(cb.centroid) > len(ca.centroid) {
			ra, rb = rb, ra
			ca, cb = cb, ca
		}
		ca.absorb(cb)
		parent[rb] = ra
		delete(comps, rb)
	}
	groups := make(map[event.StoryID][]*event.Story)
	for _, id := range a.order {
		st := a.stories[id]
		if st == nil {
			continue
		}
		r := find(id)
		// Members are snapshots: the returned Result may be read long
		// after the live stories have changed (concurrent ingestion),
		// so it must be self-contained.
		groups[r] = append(groups[r], st.Snapshot())
	}
	roots := make([]event.StoryID, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	// Integrated IDs are content-derived: a component's ID is its
	// smallest member story ID. That makes the ID a pure function of the
	// grouping — deterministic across processes, which is what lets a
	// sharded deployment produce byte-identical results to a single node
	// — while keeping the stability downstream consumers (the demo's
	// /api/integrated/{id} links, the Gen-keyed query cache) rely on: the
	// ID only moves when a regrouping actually gains or loses the
	// smallest member. IDs are unique within a pass because components
	// partition the member stories. Sorting roots by that minimum also
	// fixes the result order: ascending IntegratedID, the invariant the
	// query index's position-based tie-breaks assume.
	sort.Slice(roots, func(i, j int) bool {
		return minStoryID(groups[roots[i]]) < minStoryID(groups[roots[j]])
	})
	// Report the reciprocal matches the integration actually honoured
	// (both endpoints ended up in the same component).
	matches := make([]Match, 0, len(order))
	for _, m := range order {
		if find(m.A) == find(m.B) {
			matches = append(matches, m)
		}
	}
	res := &Result{Matches: matches, byStory: make(map[event.StoryID]*event.IntegratedStory)}
	for _, r := range roots {
		is := event.NewIntegratedStory(event.IntegratedID(minStoryID(groups[r])), groups[r])
		classifyRoles(is, a.cfg)
		res.Integrated = append(res.Integrated, is)
		for _, m := range is.Members {
			res.byStory[m.ID] = is
		}
	}
	return res
}

func minStoryID(sts []*event.Story) event.StoryID {
	min := sts[0].ID
	for _, st := range sts[1:] {
		if st.ID < min {
			min = st.ID
		}
	}
	return min
}

func entityElems(st *event.Story) []string {
	elems := make([]string, 0, len(st.EntityFreq))
	for _, ec := range st.EntityFreq {
		elems = append(elems, vocab.Entities.String(ec.ID))
	}
	return elems
}

// Result is the outcome of story alignment.
type Result struct {
	Integrated []*event.IntegratedStory
	Matches    []Match

	byStory map[event.StoryID]*event.IntegratedStory
}

// IntegratedOf returns the integrated story containing the given
// per-source story, or nil.
func (r *Result) IntegratedOf(id event.StoryID) *event.IntegratedStory {
	return r.byStory[id]
}

// MultiSource returns only the integrated stories spanning at least two
// sources.
func (r *Result) MultiSource() []*event.IntegratedStory {
	var out []*event.IntegratedStory
	for _, is := range r.Integrated {
		if len(is.Sources()) > 1 {
			out = append(out, is)
		}
	}
	return out
}

// classifyRoles marks each snippet of the integrated story as aligning
// (it has a sufficiently similar, temporally close counterpart in another
// source) or enriching (source-exclusive content such as special reports;
// paper §2.3).
func classifyRoles(is *event.IntegratedStory, cfg Config) {
	if len(is.Members) < 2 {
		for _, m := range is.Members {
			for _, sn := range m.Snippets {
				is.Roles[sn.ID] = event.RoleEnriching
			}
		}
		return
	}
	all := is.Snippets() // chronological
	for i, sn := range all {
		role := event.RoleEnriching
		// Scan outward in time until the role tolerance is exceeded.
		for j := i - 1; j >= 0; j-- {
			if sn.Timestamp.Sub(all[j].Timestamp) > cfg.RoleScale {
				break
			}
			if all[j].Source != sn.Source &&
				similarity.Snippets(sn, all[j], cfg.RoleScale, cfg.Weights) >= cfg.RoleThreshold {
				role = event.RoleAligning
				break
			}
		}
		if role == event.RoleEnriching {
			for j := i + 1; j < len(all); j++ {
				if all[j].Timestamp.Sub(sn.Timestamp) > cfg.RoleScale {
					break
				}
				if all[j].Source != sn.Source &&
					similarity.Snippets(sn, all[j], cfg.RoleScale, cfg.Weights) >= cfg.RoleThreshold {
					role = event.RoleAligning
					break
				}
			}
		}
		is.Roles[sn.ID] = role
	}
}

// Align is the batch convenience: build an aligner over all per-source
// story sets and return the integrated result.
func Align(bySource map[event.SourceID][]*event.Story, cfg Config) *Result {
	a := NewAligner(cfg)
	// Deterministic insertion order: sources sorted, stories by ID.
	srcs := make([]event.SourceID, 0, len(bySource))
	for s := range bySource {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, s := range srcs {
		sts := append([]*event.Story(nil), bySource[s]...)
		sort.Slice(sts, func(i, j int) bool { return sts[i].ID < sts[j].ID })
		for _, st := range sts {
			a.Upsert(st)
		}
	}
	return a.Result()
}

func logFloat(x float64) float64 { return math.Log(x) }
