package align

import "repro/internal/obs"

// Alignment and refinement instrumentation. Comparison counters are
// batched per Upsert/Result call rather than incremented inside the
// scoring loops.
var (
	metUpsertLat = obs.GetHistogram("storypivot_align_upsert_seconds",
		"per-story aligner upsert latency (incremental edge recompute)")
	metResultLat = obs.GetHistogram("storypivot_align_result_seconds",
		"integrated-result construction latency")
	metComparisons = obs.GetCounter("storypivot_align_comparisons_total",
		"full story-story similarity evaluations")
	metMatches = obs.GetCounter("storypivot_align_matches_total",
		"story pairs scoring above the match threshold")
	metSketchSkipped = obs.GetCounter("storypivot_align_sketch_skipped_total",
		"candidate pairs rejected by the MinHash pre-filter")
	metRefineLat = obs.GetHistogram("storypivot_refine_seconds",
		"refinement pass latency")
	metRefineRuns = obs.GetCounter("storypivot_refine_runs_total",
		"refinement passes executed")
	metRefineMovesApplied = obs.GetCounter("storypivot_refine_moves_total",
		"snippet moves applied by refinement")
)
