package align

import (
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/event"
	"repro/internal/identify"
)

// Property-based invariants of story alignment:
//
//  1. Coverage: every input story appears in exactly one integrated story.
//  2. Cross-source-only matches: no match edge joins same-source stories.
//  3. Idempotence: Result() twice yields the same partition.
//  4. Role totality: every snippet of every integrated story has a role.

func alignFixture(seed int64) (map[event.SourceID][]*event.Story, int) {
	cfg := datagen.DefaultConfig()
	cfg.Seed = seed
	cfg.Sources = 2 + int(seed%3)
	cfg.Stories = 4 + int(seed%4)
	cfg.EventsPerStory = 5
	c := datagen.Generate(cfg)
	ids := identify.RunAll(c.Snippets, identify.DefaultConfig(), nil)
	bySource := identify.StoriesBySource(ids)
	total := 0
	for _, sts := range bySource {
		total += len(sts)
	}
	return bySource, total
}

func TestAlignInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		bySource, totalStories := alignFixture(seed % 500)
		res := Align(bySource, DefaultConfig())

		// 1. Coverage.
		seen := map[event.StoryID]bool{}
		members := 0
		for _, is := range res.Integrated {
			for _, m := range is.Members {
				if seen[m.ID] {
					t.Logf("seed %d: story %d in two integrated stories", seed, m.ID)
					return false
				}
				seen[m.ID] = true
				members++
			}
			// 4. Role totality.
			for _, sn := range is.Snippets() {
				if is.Roles[sn.ID] == event.RoleUnknown {
					t.Logf("seed %d: snippet %d without role", seed, sn.ID)
					return false
				}
			}
		}
		if members != totalStories {
			t.Logf("seed %d: %d of %d stories covered", seed, members, totalStories)
			return false
		}
		// 2. Cross-source-only matches.
		storySource := map[event.StoryID]event.SourceID{}
		for src, sts := range bySource {
			for _, st := range sts {
				storySource[st.ID] = src
			}
		}
		for _, m := range res.Matches {
			if storySource[m.A] == storySource[m.B] {
				t.Logf("seed %d: same-source match %v", seed, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignIdempotent(t *testing.T) {
	bySource, _ := alignFixture(7)
	a := NewAligner(DefaultConfig())
	for _, sts := range bySource {
		for _, st := range sts {
			a.Upsert(st)
		}
	}
	r1 := a.Result()
	r2 := a.Result()
	f := eval.Pairwise(eval.FromIntegrated(r1.Integrated), eval.FromIntegrated(r2.Integrated))
	if f.F1 != 1 {
		t.Fatalf("Result not idempotent: agreement F1 = %.3f", f.F1)
	}
	if len(r1.Integrated) != len(r2.Integrated) {
		t.Fatalf("component counts differ: %d vs %d", len(r1.Integrated), len(r2.Integrated))
	}
}

func TestAlignUpsertPermutationInvariant(t *testing.T) {
	// The integrated partition must not depend on upsert order.
	bySource, _ := alignFixture(13)
	var all []*event.Story
	for _, sts := range bySource {
		all = append(all, sts...)
	}
	run := func(order []int) eval.Assignment {
		a := NewAligner(DefaultConfig())
		for _, i := range order {
			a.Upsert(all[i])
		}
		return eval.FromIntegrated(a.Result().Integrated)
	}
	fwd := make([]int, len(all))
	rev := make([]int, len(all))
	for i := range all {
		fwd[i] = i
		rev[i] = len(all) - 1 - i
	}
	f := eval.Pairwise(run(fwd), run(rev))
	if f.F1 != 1 {
		t.Fatalf("upsert order changed the partition: agreement F1 = %.3f", f.F1)
	}
}
