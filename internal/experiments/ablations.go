package experiments

import (
	"sort"
	"time"

	"repro/internal/align"
	"repro/internal/curated"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/event"
	"repro/internal/extract"
	"repro/internal/identify"
	"repro/internal/similarity"
)

// Ablations isolate the design choices DESIGN.md calls out beyond the
// paper's own experiments: the similarity weight mix, IDF entity
// weighting, and the alignment selectivity ladder (raw threshold edges →
// reciprocal best match → reciprocal + component guard).

// AblationRow is one ablation measurement.
type AblationRow struct {
	Study     string
	Variant   string
	F1        float64
	Precision float64
	Recall    float64
	Biggest   int // largest integrated story (chaining indicator)
}

// AblationConfig parameterises the ablation suite.
type AblationConfig struct {
	Size    int
	Sources int
	Seed    int64
}

// DefaultAblations runs at a scale where chaining effects are visible.
func DefaultAblations() AblationConfig { return AblationConfig{Size: 6000, Sources: 8, Seed: 11} }

// RunAblations executes all ablation studies.
func RunAblations(cfg AblationConfig) []AblationRow {
	corpus := datagen.Generate(CorpusScale(cfg.Size, cfg.Sources, cfg.Seed))
	truth := TruthAssignment(corpus)
	var rows []AblationRow

	// Study 1: similarity weight mix for identification.
	for _, v := range []struct {
		name string
		w    similarity.Weights
	}{
		{"default(0.45/0.35/0.20)", similarity.DefaultWeights()},
		{"entity-only", similarity.Weights{Entity: 1}},
		{"description-only", similarity.Weights{Description: 1}},
		{"no-temporal", similarity.Weights{Entity: 0.55, Description: 0.45}},
	} {
		idCfg := identify.DefaultConfig()
		idCfg.Weights = v.w
		ids := identify.RunAll(corpus.Snippets, idCfg, nil)
		rows = append(rows, AblationRow{
			Study:   "identify-weights",
			Variant: v.name,
			F1:      PerSourceF1(ids, truth),
		})
	}

	// Study 2: IDF entity weighting on/off (identification + alignment).
	for _, idf := range []bool{true, false} {
		idCfg := identify.DefaultConfig()
		idCfg.UseEntityIDF = idf
		ids := identify.RunAll(corpus.Snippets, idCfg, nil)
		alCfg := align.DefaultConfig()
		alCfg.UseEntityIDF = idf
		res := align.Align(identify.StoriesBySource(ids), alCfg)
		pred := eval.FromIntegrated(res.Integrated)
		prf := eval.Pairwise(pred, truth)
		name := "idf-off"
		if idf {
			name = "idf-on"
		}
		rows = append(rows, AblationRow{
			Study: "entity-idf", Variant: name,
			F1: prf.F1, Precision: prf.Precision, Recall: prf.Recall,
			Biggest: biggestComponent(res),
		})
	}

	// Study 2b: bigram description terms, evaluated on the curated corpus
	// (the only workload with real text to extract from). A negative
	// result worth keeping visible: bigrams rarely repeat across
	// differently-worded reports of the same event, so they add vector
	// norm without adding matches and *reduce* recall — which is why
	// extraction defaults to unigrams.
	for _, bigrams := range []bool{false, true} {
		x := extract.NewExtractor(curated.Gazetteer())
		x.Bigrams = bigrams
		sns, rawTruth := curated.TruthBySnippet(x)
		sort.Sort(event.ByTimestamp(sns))
		idCfg := identify.DefaultConfig()
		idCfg.Mode = identify.ModeComplete
		cids := identify.RunAll(sns, idCfg, nil)
		alCfg := align.DefaultConfig()
		alCfg.Slack = 60 * 24 * time.Hour
		cres := align.Align(identify.StoriesBySource(cids), alCfg)
		ctruth := eval.Assignment{}
		for id, l := range rawTruth {
			ctruth[id] = l
		}
		prf := eval.Pairwise(eval.FromIntegrated(cres.Integrated), ctruth)
		name := "unigrams"
		if bigrams {
			name = "unigrams+bigrams"
		}
		rows = append(rows, AblationRow{
			Study: "extraction-terms", Variant: name,
			F1: prf.F1, Precision: prf.Precision, Recall: prf.Recall,
			Biggest: biggestComponent(cres),
		})
	}

	// Study 3: alignment selectivity ladder. "raw" disables both the
	// reciprocal filter (by treating every edge as mutual — approximated
	// with guard off and threshold unchanged) and the component guard;
	// the ladder shows how each mechanism suppresses chaining.
	ids := identify.RunAll(corpus.Snippets, identify.DefaultConfig(), nil)
	bySource := identify.StoriesBySource(ids)
	for _, v := range []struct {
		name  string
		guard float64
	}{
		{"reciprocal-no-guard", 0},
		{"reciprocal+guard", align.DefaultConfig().ComponentGuard},
		{"reciprocal+strict-guard", 1.2},
	} {
		alCfg := align.DefaultConfig()
		alCfg.ComponentGuard = v.guard
		res := align.Align(bySource, alCfg)
		pred := eval.FromIntegrated(res.Integrated)
		prf := eval.Pairwise(pred, truth)
		rows = append(rows, AblationRow{
			Study: "align-selectivity", Variant: v.name,
			F1: prf.F1, Precision: prf.Precision, Recall: prf.Recall,
			Biggest: biggestComponent(res),
		})
	}
	return rows
}

func biggestComponent(res *align.Result) int {
	biggest := 0
	for _, is := range res.Integrated {
		if is.Len() > biggest {
			biggest = is.Len()
		}
	}
	return biggest
}

// AblationTable renders the rows.
func AblationTable(rows []AblationRow) *Table {
	t := &Table{
		Title:   "Ablations: design choices beyond the paper's experiments",
		Headers: []string{"study", "variant", "F1", "precision", "recall", "biggest story"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.Study, r.Variant, r.F1, r.Precision, r.Recall, r.Biggest})
	}
	return t
}
