package experiments

import (
	"repro/internal/align"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/event"
	"repro/internal/identify"
)

// E2Row is one point of the Figure 7 "Quality" chart: F-measure at a given
// corpus size for one SI×SA method combination.
type E2Row struct {
	Events   int
	SIMethod string // "complete" | "temporal"
	SAMethod string // "none" | "align" | "align+refine"
	F1       float64
	BCubed   float64
	NMI      float64
}

// E2Config parameterises the quality sweep.
type E2Config struct {
	Sizes   []int
	Sources int
	Seed    int64
}

// DefaultE2 mirrors the demo sweep.
func DefaultE2() E2Config {
	return E2Config{Sizes: []int{1000, 2000, 5000, 10000}, Sources: 10, Seed: 2}
}

// RunE2 executes the quality sweep (Figure 7 right chart). Expected shape:
// temporal SI beats complete SI on evolving stories (complete chains
// across evolution); alignment lifts F-measure over identification alone
// by recovering cross-source links; refinement adds a further small gain.
// "none" rows measure per-source identification against per-source truth;
// alignment rows measure the integrated clustering against global truth.
func RunE2(cfg E2Config) []E2Row {
	var rows []E2Row
	for _, size := range cfg.Sizes {
		corpus := datagen.Generate(CorpusScale(size, cfg.Sources, cfg.Seed))
		truth := TruthAssignment(corpus)
		for _, mode := range []identify.Mode{identify.ModeComplete, identify.ModeTemporal} {
			idCfg := identify.DefaultConfig()
			idCfg.Mode = mode
			ids := identify.RunAll(corpus.Snippets, idCfg, nil)

			// SA = none: per-source identification quality.
			rows = append(rows, E2Row{
				Events:   len(corpus.Snippets),
				SIMethod: mode.String(),
				SAMethod: "none",
				F1:       PerSourceF1(ids, truth),
				BCubed:   bcubedPerSource(ids, truth),
				NMI:      nmiPerSource(ids, truth),
			})

			// SA = align.
			res := align.Align(identify.StoriesBySource(ids), align.DefaultConfig())
			pred := eval.FromIntegrated(res.Integrated)
			rows = append(rows, E2Row{
				Events:   len(corpus.Snippets),
				SIMethod: mode.String(),
				SAMethod: "align",
				F1:       eval.Pairwise(pred, truth).F1,
				BCubed:   eval.BCubed(pred, truth).F1,
				NMI:      eval.NMI(pred, truth),
			})

			// SA = align+refine (fresh identification so refine sees the
			// unmodified state).
			ids2 := identify.RunAll(corpus.Snippets, idCfg, nil)
			res2 := align.Align(identify.StoriesBySource(ids2), align.DefaultConfig())
			movers := map[event.SourceID]align.Mover{}
			for src, id := range ids2 {
				movers[src] = id
			}
			align.Refine(res2, movers, align.DefaultRefineConfig())
			res2 = align.Align(identify.StoriesBySource(ids2), align.DefaultConfig())
			pred2 := eval.FromIntegrated(res2.Integrated)
			rows = append(rows, E2Row{
				Events:   len(corpus.Snippets),
				SIMethod: mode.String(),
				SAMethod: "align+refine",
				F1:       eval.Pairwise(pred2, truth).F1,
				BCubed:   eval.BCubed(pred2, truth).F1,
				NMI:      eval.NMI(pred2, truth),
			})
		}
	}
	return rows
}

func bcubedPerSource(ids map[event.SourceID]*identify.Identifier, truth eval.Assignment) float64 {
	var weighted, total float64
	for _, id := range ids {
		pred := eval.Assignment{}
		inSrc := map[event.SnippetID]bool{}
		for k, v := range id.Assignment() {
			pred[k] = uint64(v)
			inSrc[k] = true
		}
		sub := truth.Restrict(func(sid event.SnippetID) bool { return inSrc[sid] })
		weighted += eval.BCubed(pred, sub).F1 * float64(len(pred))
		total += float64(len(pred))
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

func nmiPerSource(ids map[event.SourceID]*identify.Identifier, truth eval.Assignment) float64 {
	var weighted, total float64
	for _, id := range ids {
		pred := eval.Assignment{}
		inSrc := map[event.SnippetID]bool{}
		for k, v := range id.Assignment() {
			pred[k] = uint64(v)
			inSrc[k] = true
		}
		sub := truth.Restrict(func(sid event.SnippetID) bool { return inSrc[sid] })
		weighted += eval.NMI(pred, sub) * float64(len(pred))
		total += float64(len(pred))
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// E2Table renders the rows.
func E2Table(rows []E2Row) *Table {
	t := &Table{
		Title:   "E2 / Figure 7 (Quality): F-measure vs #events",
		Headers: []string{"#events", "SI method", "SA method", "pairwise-F1", "bcubed-F1", "NMI"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.Events, r.SIMethod, r.SAMethod, r.F1, r.BCubed, r.NMI})
	}
	return t
}
