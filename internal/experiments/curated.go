package experiments

import (
	"sort"
	"time"

	"repro/internal/align"
	"repro/internal/curated"
	"repro/internal/eval"
	"repro/internal/event"
	"repro/internal/extract"
	"repro/internal/identify"
)

// CuratedRow is one configuration's quality on the hand-curated corpus
// (paper §4.2's "manually curated stories taken from well-known news
// providers").
type CuratedRow struct {
	Config     string
	F1         float64
	Precision  float64
	Recall     float64
	ARI        float64
	Integrated int
}

// RunCurated evaluates the full extraction→identification→alignment
// pipeline on the curated 2014 corpus under the demo's selectable
// configurations. The curated arcs span months with multi-week coverage
// gaps, so this experiment also demonstrates when complete-history
// identification is the right choice (sparse archival data) versus the
// streaming default.
func RunCurated() []CuratedRow {
	var rows []CuratedRow
	for _, v := range []struct {
		name   string
		mode   identify.Mode
		window time.Duration
	}{
		{"temporal ω=14d", identify.ModeTemporal, 14 * 24 * time.Hour},
		{"temporal ω=60d", identify.ModeTemporal, 60 * 24 * time.Hour},
		{"complete", identify.ModeComplete, 0},
	} {
		x := extract.NewExtractor(curated.Gazetteer())
		sns, rawTruth := curated.TruthBySnippet(x)
		sort.Sort(event.ByTimestamp(sns))

		idCfg := identify.DefaultConfig()
		idCfg.Mode = v.mode
		if v.window > 0 {
			idCfg.Window = v.window
		}
		ids := identify.RunAll(sns, idCfg, nil)
		alCfg := align.DefaultConfig()
		alCfg.Slack = 60 * 24 * time.Hour
		res := align.Align(identify.StoriesBySource(ids), alCfg)

		truth := eval.Assignment{}
		for id, l := range rawTruth {
			truth[id] = l
		}
		pred := eval.FromIntegrated(res.Integrated)
		prf := eval.Pairwise(pred, truth)
		rows = append(rows, CuratedRow{
			Config:     v.name,
			F1:         prf.F1,
			Precision:  prf.Precision,
			Recall:     prf.Recall,
			ARI:        eval.ARI(pred, truth),
			Integrated: len(res.Integrated),
		})
	}
	return rows
}

// CuratedTable renders the rows.
func CuratedTable(rows []CuratedRow) *Table {
	t := &Table{
		Title:   "Curated 2014 corpus (paper §4.2): 5 real stories, 3 sources, 22 documents",
		Headers: []string{"config", "F1", "precision", "recall", "ARI", "integrated"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.Config, r.F1, r.Precision, r.Recall, r.ARI, r.Integrated})
	}
	return t
}
