package experiments

import (
	"time"

	"repro/internal/datagen"
	"repro/internal/event"
	"repro/internal/identify"
)

// E1Row is one point of the Figure 7 "Performance" chart: per-event story
// identification cost at a given corpus size for one SI method.
type E1Row struct {
	Events      int
	Method      string        // "complete", "temporal", "temporal+sketch"
	PerEvent    time.Duration // mean identification latency per snippet
	Total       time.Duration
	Comparisons int
	Stories     int
}

// E1Config parameterises the performance sweep.
type E1Config struct {
	Sizes   []int // target snippet counts
	Sources int
	Seed    int64
	// SkipCompleteAbove bounds the quadratic baseline (0 = no bound).
	SkipCompleteAbove int
}

// DefaultE1 mirrors the demo's sweep at laptop scale.
func DefaultE1() E1Config {
	return E1Config{
		Sizes:             []int{1000, 2000, 5000, 10000, 20000},
		Sources:           10,
		Seed:              1,
		SkipCompleteAbove: 20000,
	}
}

// RunE1 executes the performance sweep (Figure 7 left chart). Expected
// shape per the paper: complete's per-event cost grows with corpus size
// (every story of the source is a candidate), temporal stays near-flat
// (the window bounds the candidate set), and the sketch index pushes the
// constant down further.
func RunE1(cfg E1Config) []E1Row {
	var rows []E1Row
	for _, size := range cfg.Sizes {
		corpus := datagen.Generate(CorpusScale(size, cfg.Sources, cfg.Seed))
		parts := corpus.BySource()

		methods := []struct {
			name string
			mk   func() identify.Config
		}{
			{"complete", func() identify.Config {
				c := identify.DefaultConfig()
				c.Mode = identify.ModeComplete
				return c
			}},
			{"temporal", func() identify.Config {
				c := identify.DefaultConfig()
				c.Mode = identify.ModeTemporal
				return c
			}},
			{"temporal+sketch", func() identify.Config {
				c := identify.DefaultConfig()
				c.Mode = identify.ModeTemporal
				c.UseSketchIndex = true
				return c
			}},
		}
		for _, m := range methods {
			if m.name == "complete" && cfg.SkipCompleteAbove > 0 && size > cfg.SkipCompleteAbove {
				continue
			}
			idCfg := m.mk()
			alloc := &identify.IDAlloc{}
			start := time.Now()
			events, comparisons, stories := 0, 0, 0
			ids := make(map[event.SourceID]*identify.Identifier, len(parts))
			for src, sns := range parts {
				id := identify.New(src, idCfg, alloc)
				for _, s := range sns {
					id.Process(s)
				}
				ids[src] = id
			}
			total := time.Since(start)
			for _, id := range ids {
				st := id.Stats()
				events += st.Processed
				comparisons += st.Comparisons
				stories += id.StoryCount()
			}
			per := time.Duration(0)
			if events > 0 {
				per = total / time.Duration(events)
			}
			rows = append(rows, E1Row{
				Events:      events,
				Method:      m.name,
				PerEvent:    per,
				Total:       total,
				Comparisons: comparisons,
				Stories:     stories,
			})
		}
	}
	return rows
}

// E1Table renders the rows in the statistics-module format.
func E1Table(rows []E1Row) *Table {
	t := &Table{
		Title:   "E1 / Figure 7 (Performance): per-event execution time vs #events",
		Headers: []string{"#events", "SI method", "per-event", "total", "comparisons", "stories"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.Events, r.Method, r.PerEvent, r.Total, r.Comparisons, r.Stories})
	}
	return t
}
