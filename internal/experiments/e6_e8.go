package experiments

import (
	"time"

	"repro/internal/align"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/identify"
)

// ---------------------------------------------------------------- E6 ----

// E6Row is one point of the sketch ablation (paper §2.4): cost and
// fidelity of sketch-based candidate retrieval vs full scanning.
type E6Row struct {
	Stage       string // "identify" | "align"
	Variant     string // "full", "sketch-32x2", "sketch-16x4", ...
	PerEvent    time.Duration
	Comparisons int
	F1          float64 // quality against ground truth
}

// E6Config parameterises the sketch ablation.
type E6Config struct {
	Size    int
	Sources int
	Seed    int64
}

// DefaultE6 runs at a size where candidate-set effects are visible.
func DefaultE6() E6Config { return E6Config{Size: 6000, Sources: 8, Seed: 6} }

// RunE6 compares full similarity scanning against MinHash/LSH candidate
// retrieval in identification, and the MinHash pre-filter in alignment,
// across signature shapes. Expected shape: sketches cut comparisons
// substantially at a small F-measure cost.
func RunE6(cfg E6Config) []E6Row {
	corpus := datagen.Generate(CorpusScale(cfg.Size, cfg.Sources, cfg.Seed))
	truth := TruthAssignment(corpus)
	var rows []E6Row

	// Identification variants.
	type ivar struct {
		name        string
		sketch      bool
		bands, rows int
	}
	for _, v := range []ivar{
		{"full", false, 0, 0},
		{"sketch-16x2", true, 16, 2},
		{"sketch-32x2", true, 32, 2},
		{"sketch-16x4", true, 16, 4},
	} {
		idCfg := identify.DefaultConfig()
		idCfg.UseSketchIndex = v.sketch
		idCfg.SketchBands, idCfg.SketchRows = v.bands, v.rows
		start := time.Now()
		ids := identify.RunAll(corpus.Snippets, idCfg, nil)
		total := time.Since(start)
		comparisons := 0
		for _, id := range ids {
			comparisons += id.Stats().Comparisons
		}
		per := time.Duration(0)
		if n := len(corpus.Snippets); n > 0 {
			per = total / time.Duration(n)
		}
		rows = append(rows, E6Row{
			Stage:       "identify",
			Variant:     v.name,
			PerEvent:    per,
			Comparisons: comparisons,
			F1:          PerSourceF1(ids, truth),
		})
	}

	// Alignment variants over a fixed identification run.
	ids := identify.RunAll(corpus.Snippets, identify.DefaultConfig(), nil)
	bySource := identify.StoriesBySource(ids)
	for _, v := range []struct {
		name   string
		sketch bool
		length int
	}{
		{"full", false, 0},
		{"sketch-64", true, 64},
		{"sketch-128", true, 128},
	} {
		alCfg := align.DefaultConfig()
		alCfg.UseSketchFilter = v.sketch
		alCfg.SketchLength = v.length
		a := align.NewAligner(alCfg)
		start := time.Now()
		for _, src := range corpus.Sources {
			for _, st := range bySource[src] {
				a.Upsert(st)
			}
		}
		res := a.Result()
		total := time.Since(start)
		per := time.Duration(0)
		if n := a.Len(); n > 0 {
			per = total / time.Duration(n)
		}
		rows = append(rows, E6Row{
			Stage:       "align",
			Variant:     v.name,
			PerEvent:    per,
			Comparisons: a.Stats().Comparisons,
			F1:          eval.Pairwise(eval.FromIntegrated(res.Integrated), truth).F1,
		})
	}
	return rows
}

// E6Table renders the rows.
func E6Table(rows []E6Row) *Table {
	t := &Table{
		Title:   "E6: sketches (MinHash/LSH) vs full similarity",
		Headers: []string{"stage", "variant", "per-item", "comparisons", "F1"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.Stage, r.Variant, r.PerEvent, r.Comparisons, r.F1})
	}
	return t
}

// ---------------------------------------------------------------- E7 ----

// E7Row is one point of the incremental-repair experiment: single-pass vs
// split/merge-repaired identification on corpora with planted story splits
// and merges.
type E7Row struct {
	Variant string // "single-pass" | "incremental"
	F1      float64
	Splits  int
	Merges  int
	Stories int
}

// E7Config parameterises the repair experiment.
type E7Config struct {
	Size    int
	Sources int
	Seed    int64
}

// DefaultE7 uses a corpus with planted splits and merge threads.
func DefaultE7() E7Config { return E7Config{Size: 4000, Sources: 4, Seed: 7} }

// RunE7 compares single-pass identification (RepairEvery=0 — the
// behaviour of the single-pass prior work the paper contrasts with [1,17])
// against incremental identification with the split/merge repair pass
// (paper ref [5]). The corpus plants story pairs that share their opening
// phase (split cases) and stories whose opening phase runs in two vocab
// threads (merge cases). Expected shape: repair recovers planted structure
// and lifts F-measure.
func RunE7(cfg E7Config) []E7Row {
	gen := CorpusScale(cfg.Size, cfg.Sources, cfg.Seed)
	gen.SplitFraction = 0.4
	gen.MergeFraction = 0.2
	corpus := datagen.Generate(gen)
	truth := TruthAssignment(corpus)

	var rows []E7Row
	for _, v := range []struct {
		name   string
		repair int
	}{
		{"single-pass", 0},
		{"incremental", 64},
	} {
		idCfg := identify.DefaultConfig()
		idCfg.RepairEvery = v.repair
		ids := identify.RunAll(corpus.Snippets, idCfg, nil)
		splits, merges, stories := 0, 0, 0
		for _, id := range ids {
			splits += id.Stats().Splits
			merges += id.Stats().Merges
			stories += id.StoryCount()
		}
		rows = append(rows, E7Row{
			Variant: v.name,
			F1:      PerSourceF1(ids, truth),
			Splits:  splits,
			Merges:  merges,
			Stories: stories,
		})
	}
	return rows
}

// E7Table renders the rows.
func E7Table(rows []E7Row) *Table {
	t := &Table{
		Title:   "E7: single-pass vs incremental (split/merge) identification",
		Headers: []string{"variant", "per-source F1", "splits", "merges", "stories"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.Variant, r.F1, r.Splits, r.Merges, r.Stories})
	}
	return t
}

// ---------------------------------------------------------------- E8 ----

// E8Row is one point of the dynamic source-addition experiment.
type E8Row struct {
	ExistingSources int
	Method          string // "incremental" | "recompute"
	AddTime         time.Duration
	Comparisons     int
}

// E8Config parameterises the source-addition experiment.
type E8Config struct {
	Sources    int
	SizePerSrc int
	Seed       int64
}

// DefaultE8 adds the k-th source to k-1 existing ones.
func DefaultE8() E8Config { return E8Config{Sources: 12, SizePerSrc: 400, Seed: 8} }

// RunE8 measures the cost of integrating one new data source: the
// incremental path (align only the new source's stories against the
// standing match graph — the design of paper §2.1) versus recomputing
// alignment from scratch. Expected shape: incremental cost is proportional
// to the new source's stories, recompute to all stories.
func RunE8(cfg E8Config) []E8Row {
	corpus := datagen.Generate(CorpusScale(cfg.SizePerSrc*cfg.Sources, cfg.Sources, cfg.Seed))
	ids := identify.RunAll(corpus.Snippets, identify.DefaultConfig(), nil)
	bySource := identify.StoriesBySource(ids)
	srcs := corpus.Sources
	newSrc := srcs[len(srcs)-1]
	old := srcs[:len(srcs)-1]

	// Incremental: pre-build the aligner over the old sources, then time
	// only the new source's upserts + result.
	a := align.NewAligner(align.DefaultConfig())
	for _, src := range old {
		for _, st := range bySource[src] {
			a.Upsert(st)
		}
	}
	preComparisons := a.Stats().Comparisons
	start := time.Now()
	for _, st := range bySource[newSrc] {
		a.Upsert(st)
	}
	a.Result()
	incrTime := time.Since(start)
	incrComparisons := a.Stats().Comparisons - preComparisons

	// Recompute: build everything from scratch.
	b := align.NewAligner(align.DefaultConfig())
	start = time.Now()
	for _, src := range srcs {
		for _, st := range bySource[src] {
			b.Upsert(st)
		}
	}
	b.Result()
	fullTime := time.Since(start)

	return []E8Row{
		{ExistingSources: len(old), Method: "incremental", AddTime: incrTime, Comparisons: incrComparisons},
		{ExistingSources: len(old), Method: "recompute", AddTime: fullTime, Comparisons: b.Stats().Comparisons},
	}
}

// E8Table renders the rows.
func E8Table(rows []E8Row) *Table {
	t := &Table{
		Title:   "E8: integrating a new data source (incremental vs recompute)",
		Headers: []string{"existing sources", "method", "time", "comparisons"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.ExistingSources, r.Method, r.AddTime, r.Comparisons})
	}
	return t
}
