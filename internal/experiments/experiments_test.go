package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
)

// The experiment tests run every harness at a reduced scale, asserting the
// *shapes* the paper claims rather than absolute numbers.

func TestCorpusScale(t *testing.T) {
	for _, target := range []int{500, 2000, 8000} {
		cfg := CorpusScale(target, 8, 1)
		c := datagen.Generate(cfg)
		got := len(c.Snippets)
		if got < target/3 || got > target*3 {
			t.Errorf("target %d produced %d snippets (off by >3x)", target, got)
		}
	}
}

func TestE1Shapes(t *testing.T) {
	cfg := E1Config{Sizes: []int{500, 2000}, Sources: 5, Seed: 1}
	rows := RunE1(cfg)
	if len(rows) != 6 { // 2 sizes x 3 methods
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(size int, method string) E1Row {
		for _, r := range rows {
			if r.Method == method && near(r.Events, size) {
				return r
			}
		}
		t.Fatalf("missing row %d/%s", size, method)
		return E1Row{}
	}
	// Complete's comparisons grow super-linearly; temporal stays below it
	// at the larger size.
	cBig := get(2000, "complete")
	tBig := get(2000, "temporal")
	if cBig.Comparisons <= tBig.Comparisons {
		t.Errorf("complete comparisons %d <= temporal %d at 2000 events",
			cBig.Comparisons, tBig.Comparisons)
	}
	// Sketch cuts comparisons below plain temporal.
	sBig := get(2000, "temporal+sketch")
	if sBig.Comparisons >= tBig.Comparisons {
		t.Errorf("sketch comparisons %d >= temporal %d", sBig.Comparisons, tBig.Comparisons)
	}
	// Per-event growth of complete exceeds temporal's.
	cSmall, tSmall := get(500, "complete"), get(500, "temporal")
	growthC := float64(cBig.Comparisons) / float64(max(1, cSmall.Comparisons))
	growthT := float64(tBig.Comparisons) / float64(max(1, tSmall.Comparisons))
	if growthC <= growthT {
		t.Errorf("complete comparison growth %.2f <= temporal %.2f", growthC, growthT)
	}
	// Table renders.
	var buf bytes.Buffer
	E1Table(rows).Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("table title missing")
	}
}

func near(got, want int) bool {
	return got > want/3 && got < want*3
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestE2Shapes(t *testing.T) {
	cfg := E2Config{Sizes: []int{1500}, Sources: 6, Seed: 2}
	rows := RunE2(cfg)
	if len(rows) != 6 { // 1 size x 2 SI x 3 SA
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(si, sa string) E2Row {
		for _, r := range rows {
			if r.SIMethod == si && r.SAMethod == sa {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", si, sa)
		return E2Row{}
	}
	for _, r := range rows {
		if r.F1 < 0 || r.F1 > 1 {
			t.Fatalf("F1 out of range: %+v", r)
		}
	}
	// Temporal SI >= complete SI on evolving stories (paper's core claim).
	if tp, cp := get("temporal", "none"), get("complete", "none"); tp.F1 < cp.F1-0.02 {
		t.Errorf("temporal SI F1 %.3f < complete %.3f", tp.F1, cp.F1)
	}
	// Refinement must not hurt alignment.
	if ar, al := get("temporal", "align+refine"), get("temporal", "align"); ar.F1 < al.F1-0.05 {
		t.Errorf("refine degraded F1: %.3f vs %.3f", ar.F1, al.F1)
	}
	var buf bytes.Buffer
	E2Table(rows).Fprint(&buf)
	if buf.Len() == 0 {
		t.Error("empty table")
	}
}

func TestE3Shapes(t *testing.T) {
	day := 24 * time.Hour
	cfg := E3Config{Windows: []time.Duration{12 * time.Hour, 7 * day, 90 * day}, Size: 1500, Sources: 4, Seed: 3}
	rows := RunE3(cfg)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Bigger windows mean more candidates.
	if !(rows[0].Comparisons < rows[2].Comparisons) {
		t.Errorf("comparisons not increasing with window: %d vs %d", rows[0].Comparisons, rows[2].Comparisons)
	}
	// Tiny window fragments stories (more stories than mid window).
	if !(rows[0].Stories > rows[1].Stories) {
		t.Errorf("tiny window did not fragment: %d vs %d stories", rows[0].Stories, rows[1].Stories)
	}
	// Mid window F1 should beat the tiny window.
	if !(rows[1].F1 > rows[0].F1-0.02) {
		t.Errorf("mid window F1 %.3f not better than tiny %.3f", rows[1].F1, rows[0].F1)
	}
	var buf bytes.Buffer
	E3Table(rows).Fprint(&buf)
}

func TestE4Shapes(t *testing.T) {
	cfg := E4Config{SourceCounts: []int{2, 6}, SizePerSrc: 150, Seed: 4}
	rows := RunE4(cfg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !(rows[1].Comparisons > rows[0].Comparisons) {
		t.Errorf("comparisons did not grow with sources: %d vs %d", rows[0].Comparisons, rows[1].Comparisons)
	}
	for _, r := range rows {
		if r.F1 <= 0 {
			t.Errorf("alignment F1 = %.3f at %d sources", r.F1, r.Sources)
		}
	}
	var buf bytes.Buffer
	E4Table(rows).Fprint(&buf)
}

func TestE5Shapes(t *testing.T) {
	cfg := E5Config{Fractions: []float64{0, 0.5}, MaxDisp: 30, Size: 1200, Sources: 4, Seed: 5}
	rows := RunE5(cfg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].F1 < 0.4 {
		t.Fatalf("in-order F1 = %.3f too low", rows[0].F1)
	}
	// Graceful degradation: no collapse.
	if rows[1].F1 < rows[0].F1-0.3 {
		t.Errorf("out-of-order collapsed: %.3f -> %.3f", rows[0].F1, rows[1].F1)
	}
	var buf bytes.Buffer
	E5Table(rows).Fprint(&buf)
}

func TestE6Shapes(t *testing.T) {
	rows := RunE6(E6Config{Size: 1500, Sources: 5, Seed: 6})
	var idFull, idSketch, alFull, alSketch *E6Row
	for i := range rows {
		r := &rows[i]
		switch {
		case r.Stage == "identify" && r.Variant == "full":
			idFull = r
		case r.Stage == "identify" && r.Variant == "sketch-32x2":
			idSketch = r
		case r.Stage == "align" && r.Variant == "full":
			alFull = r
		case r.Stage == "align" && r.Variant == "sketch-64":
			alSketch = r
		}
	}
	if idFull == nil || idSketch == nil || alFull == nil || alSketch == nil {
		t.Fatalf("missing variants: %+v", rows)
	}
	if idSketch.Comparisons >= idFull.Comparisons {
		t.Errorf("identify sketch comparisons %d >= full %d", idSketch.Comparisons, idFull.Comparisons)
	}
	if alSketch.Comparisons > alFull.Comparisons {
		t.Errorf("align sketch comparisons %d > full %d", alSketch.Comparisons, alFull.Comparisons)
	}
	if idSketch.F1 < idFull.F1-0.3 {
		t.Errorf("sketch quality collapsed: %.3f vs %.3f", idSketch.F1, idFull.F1)
	}
	var buf bytes.Buffer
	E6Table(rows).Fprint(&buf)
}

func TestE7Shapes(t *testing.T) {
	rows := RunE7(E7Config{Size: 1500, Sources: 3, Seed: 7})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	single, incr := rows[0], rows[1]
	if single.Splits != 0 || single.Merges != 0 {
		t.Errorf("single-pass performed repairs: %+v", single)
	}
	if incr.Splits+incr.Merges == 0 {
		t.Errorf("incremental performed no repairs: %+v", incr)
	}
	if incr.F1 < single.F1-0.02 {
		t.Errorf("repair degraded F1: %.3f vs %.3f", incr.F1, single.F1)
	}
	var buf bytes.Buffer
	E7Table(rows).Fprint(&buf)
}

func TestE8Shapes(t *testing.T) {
	rows := RunE8(E8Config{Sources: 6, SizePerSrc: 150, Seed: 8})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	incr, full := rows[0], rows[1]
	if incr.Method != "incremental" || full.Method != "recompute" {
		t.Fatalf("row order wrong: %+v", rows)
	}
	if incr.Comparisons >= full.Comparisons {
		t.Errorf("incremental comparisons %d >= recompute %d", incr.Comparisons, full.Comparisons)
	}
	var buf bytes.Buffer
	E8Table(rows).Fprint(&buf)
}

func TestE9Shapes(t *testing.T) {
	row, err := RunE9(E9Config{Size: 1500, Sources: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if row.Events == 0 || row.Throughput <= 0 || row.Integrated == 0 {
		t.Fatalf("row = %+v", row)
	}
	if row.F1 < 0.4 {
		t.Fatalf("end-to-end F1 = %.3f", row.F1)
	}
	// With storage.
	rowS, err := RunE9(E9Config{Size: 1000, Sources: 4, Seed: 9, StorageDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !rowS.WithStorage {
		t.Fatal("storage flag not set")
	}
	var buf bytes.Buffer
	E9Table([]E9Row{row, rowS}).Fprint(&buf)
}

func TestE10Shapes(t *testing.T) {
	rows := RunE10(E10Config{NoiseRates: []float64{0.05}, Size: 1200, Sources: 4, Seed: 10})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Injected == 0 {
		t.Fatal("no noise injected")
	}
	if r.Corrections == 0 {
		t.Fatal("refinement corrected nothing")
	}
	if r.FAfter < r.FBefore {
		t.Errorf("refinement decreased F1: %.3f -> %.3f", r.FBefore, r.FAfter)
	}
	var buf bytes.Buffer
	E10Table(rows).Fprint(&buf)
}

func TestAblationShapes(t *testing.T) {
	rows := RunAblations(AblationConfig{Size: 1500, Sources: 5, Seed: 11})
	byKey := map[string]AblationRow{}
	for _, r := range rows {
		byKey[r.Study+"/"+r.Variant] = r
	}
	// The blended default weights should beat single-signal variants.
	def := byKey["identify-weights/default(0.45/0.35/0.20)"]
	if def.F1 < byKey["identify-weights/entity-only"].F1-0.05 {
		t.Errorf("default weights %.3f below entity-only %.3f", def.F1, byKey["identify-weights/entity-only"].F1)
	}
	if def.F1 < byKey["identify-weights/description-only"].F1-0.05 {
		t.Errorf("default weights %.3f below description-only %.3f", def.F1, byKey["identify-weights/description-only"].F1)
	}
	// The guard must cap chaining relative to no guard.
	ng := byKey["align-selectivity/reciprocal-no-guard"]
	wg := byKey["align-selectivity/reciprocal+guard"]
	if wg.Biggest > ng.Biggest {
		t.Errorf("guard increased chaining: %d vs %d", wg.Biggest, ng.Biggest)
	}
	if wg.Precision < ng.Precision-0.02 {
		t.Errorf("guard lowered precision: %.3f vs %.3f", wg.Precision, ng.Precision)
	}
	var buf bytes.Buffer
	AblationTable(rows).Fprint(&buf)
	if buf.Len() == 0 {
		t.Error("empty ablation table")
	}
}

func TestCuratedShapes(t *testing.T) {
	rows := RunCurated()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(name string) CuratedRow {
		for _, r := range rows {
			if r.Config == name {
				return r
			}
		}
		t.Fatalf("missing %s", name)
		return CuratedRow{}
	}
	// Every configuration must reconstruct the curated stories with
	// near-perfect precision (distinct real-world stories never merge)
	// and solid F1; the wide alignment slack recovers most of what the
	// identification window fragments, so the configs converge here.
	for _, name := range []string{"temporal ω=14d", "temporal ω=60d", "complete"} {
		r := get(name)
		if r.Precision < 0.9 {
			t.Errorf("%s precision = %.3f", name, r.Precision)
		}
		if r.F1 < 0.7 {
			t.Errorf("%s F1 = %.3f", name, r.F1)
		}
		if r.Integrated < 5 {
			t.Errorf("%s merged below the 5 true stories: %d", name, r.Integrated)
		}
	}
	var buf bytes.Buffer
	CuratedTable(rows).Fprint(&buf)
}
