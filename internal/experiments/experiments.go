// Package experiments implements the reproduction harness for the paper's
// evaluation artifacts (DESIGN.md experiment index E1–E10). Each
// experiment is a pure function from a configuration to result rows, so
// the same code drives `go test -bench`, the storypivot-bench CLI, and the
// statistics module of the demo server.
//
// The paper's Figure 7 reports two charts over the GDELT dataset —
// execution time (ms) vs #events and F-measure vs #events, for the
// available story identification (SI) and story alignment (SA) methods.
// E1 and E2 regenerate those series; E3–E10 cover the remaining design
// claims (sliding windows, sketches, incremental repair, out-of-order
// delivery, dynamic source addition, refinement).
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/event"
	"repro/internal/identify"
)

// CorpusScale produces a generator config that yields approximately the
// requested number of snippets. The shape knobs (sources, story length,
// coverage) stay constant so that scaling the corpus scales the number of
// stories, matching how a longer GDELT window has more stories, not longer
// ones.
func CorpusScale(targetSnippets int, sources int, seed int64) datagen.Config {
	cfg := datagen.DefaultConfig()
	cfg.Seed = seed
	cfg.Sources = sources
	// Expected snippets ≈ stories * events/story * sources * meanCoverage.
	// Generator draws events/story in [0.5x, 1.5x) and coverage per source
	// in [0.6c, 1.4c); use the means.
	perStory := float64(cfg.EventsPerStory) * float64(sources) * cfg.Coverage
	stories := int(float64(targetSnippets) / perStory)
	if stories < 2 {
		stories = 2
	}
	cfg.Stories = stories
	return cfg
}

// TruthAssignment converts generator ground truth into an eval.Assignment.
func TruthAssignment(c *datagen.Corpus) eval.Assignment {
	truth := make(eval.Assignment, len(c.Truth))
	for id, l := range c.Truth {
		truth[id] = l
	}
	return truth
}

// IdentAssignment converts identifier output into an eval.Assignment.
func IdentAssignment(ids map[event.SourceID]*identify.Identifier) eval.Assignment {
	out := eval.Assignment{}
	for k, v := range identify.MergedAssignment(ids) {
		out[k] = uint64(v)
	}
	return out
}

// PerSourceF1 micro-averages identification quality per source: each
// source's assignment is scored against ground truth restricted to that
// source's snippets, weighting sources by snippet count. This isolates SI
// quality from the cross-source linking that only SA can provide.
func PerSourceF1(ids map[event.SourceID]*identify.Identifier, truth eval.Assignment) float64 {
	var weighted, total float64
	for _, id := range ids {
		pred := eval.Assignment{}
		inSrc := map[event.SnippetID]bool{}
		for k, v := range id.Assignment() {
			pred[k] = uint64(v)
			inSrc[k] = true
		}
		sub := truth.Restrict(func(sid event.SnippetID) bool { return inSrc[sid] })
		f := eval.Pairwise(pred, sub).F1
		weighted += f * float64(len(pred))
		total += float64(len(pred))
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// Table renders rows as a fixed-width text table. Cells are stringers or
// plain values formatted with %v; float64 gets 3 decimals.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]any
}

// Fprint writes the table to w.
func (t *Table) Fprint(w io.Writer) {
	cells := make([][]string, 0, len(t.Rows)+1)
	cells = append(cells, t.Headers)
	for _, r := range t.Rows {
		row := make([]string, len(r))
		for i, c := range r {
			switch v := c.(type) {
			case float64:
				row[i] = fmt.Sprintf("%.3f", v)
			case time.Duration:
				row[i] = v.Round(time.Microsecond).String()
			default:
				row[i] = fmt.Sprintf("%v", c)
			}
		}
		cells = append(cells, row)
	}
	widths := make([]int, len(t.Headers))
	for _, row := range cells {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	}
	for ri, row := range cells {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
		if ri == 0 {
			total := len(widths)*2 - 2
			for _, wd := range widths {
				total += wd
			}
			fmt.Fprintln(w, strings.Repeat("-", total))
		}
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
