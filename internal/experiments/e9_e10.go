package experiments

import (
	"math/rand"
	"time"

	"repro/internal/align"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/event"
	"repro/internal/identify"
	"repro/internal/storage"
	"repro/internal/stream"
)

// ---------------------------------------------------------------- E9 ----

// E9Row summarises the end-to-end throughput run (Figure 7 dataset panel:
// the large-scale demonstration that "real-time event integration can be
// achieved through efficient story identification and alignment").
type E9Row struct {
	Events      int
	Sources     int
	WithStorage bool
	Ingest      time.Duration
	Align       time.Duration
	Throughput  float64 // events/second through ingest
	Integrated  int
	MultiSource int
	F1          float64
}

// E9Config parameterises the end-to-end run.
type E9Config struct {
	Size       int
	Sources    int
	Seed       int64
	StorageDir string // non-empty: persist through the event store
}

// DefaultE9 runs a mid-size corpus without storage.
func DefaultE9() E9Config { return E9Config{Size: 20000, Sources: 10, Seed: 9} }

// RunE9 pushes a corpus through the full pipeline — optional persistent
// store, streaming identification, alignment — and reports throughput and
// quality.
func RunE9(cfg E9Config) (E9Row, error) {
	corpus := datagen.Generate(CorpusScale(cfg.Size, cfg.Sources, cfg.Seed))
	truth := TruthAssignment(corpus)

	var store *storage.Store
	if cfg.StorageDir != "" {
		var err error
		store, err = storage.Open(cfg.StorageDir, storage.Options{})
		if err != nil {
			return E9Row{}, err
		}
		defer store.Close()
	}

	e := stream.NewEngine(stream.DefaultOptions())
	start := time.Now()
	for _, sn := range corpus.Snippets {
		if store != nil {
			if err := store.Append(sn); err != nil {
				return E9Row{}, err
			}
		}
		if _, err := e.Ingest(sn); err != nil {
			return E9Row{}, err
		}
	}
	ingest := time.Since(start)

	start = time.Now()
	res := e.Align()
	alignTime := time.Since(start)

	throughput := 0.0
	if ingest > 0 {
		throughput = float64(len(corpus.Snippets)) / ingest.Seconds()
	}
	return E9Row{
		Events:      len(corpus.Snippets),
		Sources:     cfg.Sources,
		WithStorage: store != nil,
		Ingest:      ingest,
		Align:       alignTime,
		Throughput:  throughput,
		Integrated:  len(res.Integrated),
		MultiSource: len(res.MultiSource()),
		F1:          eval.Pairwise(eval.FromIntegrated(res.Integrated), truth).F1,
	}, nil
}

// E9Table renders the row.
func E9Table(rows []E9Row) *Table {
	t := &Table{
		Title:   "E9: end-to-end throughput (Figure 7 dataset panel)",
		Headers: []string{"#events", "#sources", "storage", "ingest", "align", "events/s", "integrated", "multi-source", "F1"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.Events, r.Sources, r.WithStorage, r.Ingest, r.Align,
			r.Throughput, r.Integrated, r.MultiSource, r.F1})
	}
	return t
}

// --------------------------------------------------------------- E10 ----

// E10Row reports the refinement experiment at one noise level.
type E10Row struct {
	NoiseRate   float64
	Injected    int
	Corrections int
	FBefore     float64
	FAfter      float64
}

// E10Config parameterises the refinement experiment.
type E10Config struct {
	NoiseRates []float64
	Size       int
	Sources    int
	Seed       int64
}

// DefaultE10 sweeps injection rates.
func DefaultE10() E10Config {
	return E10Config{NoiseRates: []float64{0.02, 0.05, 0.1}, Size: 3000, Sources: 5, Seed: 10}
}

// RunE10 injects identification mistakes (random snippets moved to a
// random other story of their source) and measures how many story-
// refinement recovers (paper Figure 1d). Expected shape: refinement
// recovers a substantial share of injected errors and lifts F-measure back
// toward the clean level; at zero injected noise it must not hurt.
func RunE10(cfg E10Config) []E10Row {
	var rows []E10Row
	for _, rate := range cfg.NoiseRates {
		corpus := datagen.Generate(CorpusScale(cfg.Size, cfg.Sources, cfg.Seed))
		truth := TruthAssignment(corpus)
		ids := identify.RunAll(corpus.Snippets, identify.DefaultConfig(), nil)

		// Inject noise: move a fraction of snippets to the temporally
		// nearest *other* story of their source (a plausible mistake, not
		// an arbitrary one).
		rng := rand.New(rand.NewSource(cfg.Seed))
		injected := 0
		for _, id := range ids {
			stories := id.Stories()
			if len(stories) < 2 {
				continue
			}
			for _, st := range stories {
				for _, sn := range append([]*event.Snippet(nil), st.Snippets...) {
					if rng.Float64() >= rate {
						continue
					}
					// Nearest other story by extent distance.
					var target *event.Story
					var bestGap time.Duration
					for _, other := range stories {
						if other.ID == st.ID || other.Len() == 0 {
							continue
						}
						gap := gapTo(other, sn.Timestamp)
						if target == nil || gap < bestGap {
							target, bestGap = other, gap
						}
					}
					if target != nil && id.Move(sn.ID, target.ID) {
						injected++
					}
				}
			}
		}

		fBefore := PerSourceF1(ids, truth)

		res := align.Align(identify.StoriesBySource(ids), align.DefaultConfig())
		movers := map[event.SourceID]align.Mover{}
		for src, id := range ids {
			movers[src] = id
		}
		corrections := align.Refine(res, movers, align.DefaultRefineConfig())
		fAfter := PerSourceF1(ids, truth)

		rows = append(rows, E10Row{
			NoiseRate:   rate,
			Injected:    injected,
			Corrections: len(corrections),
			FBefore:     fBefore,
			FAfter:      fAfter,
		})
	}
	return rows
}

func gapTo(st *event.Story, t time.Time) time.Duration {
	switch {
	case t.Before(st.Start):
		return st.Start.Sub(t)
	case t.After(st.End):
		return t.Sub(st.End)
	default:
		return 0
	}
}

// E10Table renders the rows.
func E10Table(rows []E10Row) *Table {
	t := &Table{
		Title:   "E10: story refinement recovering injected identification errors",
		Headers: []string{"noise rate", "injected", "corrections", "F1 before", "F1 after"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.NoiseRate, r.Injected, r.Corrections, r.FBefore, r.FAfter})
	}
	return t
}
