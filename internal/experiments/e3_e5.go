package experiments

import (
	"time"

	"repro/internal/align"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/identify"
	"repro/internal/stream"
)

// ---------------------------------------------------------------- E3 ----

// E3Row is one point of the window-size ablation (Figure 2's design
// choice): quality and cost of temporal identification as ω varies.
type E3Row struct {
	WindowHours float64
	F1          float64
	PerEvent    time.Duration
	Comparisons int
	Stories     int
}

// E3Config parameterises the window sweep.
type E3Config struct {
	Windows []time.Duration
	Size    int
	Sources int
	Seed    int64
}

// DefaultE3 sweeps ω from 1 day to 2 months.
func DefaultE3() E3Config {
	day := 24 * time.Hour
	return E3Config{
		Windows: []time.Duration{1 * day, 2 * day, 4 * day, 7 * day, 14 * day, 30 * day, 60 * day},
		Size:    5000,
		Sources: 6,
		Seed:    3,
	}
}

// RunE3 executes the window sweep. Expected shape: tiny windows fragment
// stories (low recall → low F); huge windows approach complete-mode
// behaviour (chaining + cost growth); the paper's regime sits in between.
func RunE3(cfg E3Config) []E3Row {
	corpus := datagen.Generate(CorpusScale(cfg.Size, cfg.Sources, cfg.Seed))
	truth := TruthAssignment(corpus)
	var rows []E3Row
	for _, w := range cfg.Windows {
		idCfg := identify.DefaultConfig()
		idCfg.Mode = identify.ModeTemporal
		idCfg.Window = w
		start := time.Now()
		ids := identify.RunAll(corpus.Snippets, idCfg, nil)
		total := time.Since(start)
		comparisons, stories := 0, 0
		for _, id := range ids {
			comparisons += id.Stats().Comparisons
			stories += id.StoryCount()
		}
		per := time.Duration(0)
		if n := len(corpus.Snippets); n > 0 {
			per = total / time.Duration(n)
		}
		rows = append(rows, E3Row{
			WindowHours: w.Hours(),
			F1:          PerSourceF1(ids, truth),
			PerEvent:    per,
			Comparisons: comparisons,
			Stories:     stories,
		})
	}
	return rows
}

// E3Table renders the rows.
func E3Table(rows []E3Row) *Table {
	t := &Table{
		Title:   "E3: sliding-window size ablation (temporal SI)",
		Headers: []string{"window(h)", "per-source F1", "per-event", "comparisons", "stories"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.WindowHours, r.F1, r.PerEvent, r.Comparisons, r.Stories})
	}
	return t
}

// ---------------------------------------------------------------- E4 ----

// E4Row is one point of the alignment-vs-sources scaling experiment.
type E4Row struct {
	Sources     int
	Stories     int
	AlignTime   time.Duration
	Comparisons int
	Candidates  int
	F1          float64
}

// E4Config parameterises the source-count sweep.
type E4Config struct {
	SourceCounts []int
	SizePerSrc   int // snippets contributed per source (approx)
	Seed         int64
}

// DefaultE4 sweeps 2..24 sources.
func DefaultE4() E4Config {
	return E4Config{SourceCounts: []int{2, 4, 8, 16, 24}, SizePerSrc: 400, Seed: 4}
}

// RunE4 measures alignment cost and quality as the source count grows
// (paper §1: "due to the sheer number of available sources, one of the
// main challenges here is combining stories across data sources
// efficiently").
func RunE4(cfg E4Config) []E4Row {
	var rows []E4Row
	for _, ns := range cfg.SourceCounts {
		corpus := datagen.Generate(CorpusScale(cfg.SizePerSrc*ns, ns, cfg.Seed))
		truth := TruthAssignment(corpus)
		ids := identify.RunAll(corpus.Snippets, identify.DefaultConfig(), nil)
		bySource := identify.StoriesBySource(ids)

		a := align.NewAligner(align.DefaultConfig())
		start := time.Now()
		for _, src := range corpus.Sources {
			for _, st := range bySource[src] {
				a.Upsert(st)
			}
		}
		res := a.Result()
		alignTime := time.Since(start)

		stories := 0
		for _, sts := range bySource {
			stories += len(sts)
		}
		rows = append(rows, E4Row{
			Sources:     ns,
			Stories:     stories,
			AlignTime:   alignTime,
			Comparisons: a.Stats().Comparisons,
			Candidates:  a.Stats().CandidatePairs,
			F1:          eval.Pairwise(eval.FromIntegrated(res.Integrated), truth).F1,
		})
	}
	return rows
}

// E4Table renders the rows.
func E4Table(rows []E4Row) *Table {
	t := &Table{
		Title:   "E4: story alignment scaling with #sources",
		Headers: []string{"#sources", "#stories", "align time", "comparisons", "candidates", "F1"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.Sources, r.Stories, r.AlignTime, r.Comparisons, r.Candidates, r.F1})
	}
	return t
}

// ---------------------------------------------------------------- E5 ----

// E5Row is one point of the out-of-order delivery experiment.
type E5Row struct {
	Fraction float64
	F1       float64
	Stories  int
}

// E5Config parameterises the out-of-order sweep.
type E5Config struct {
	Fractions []float64
	MaxDisp   int
	Size      int
	Sources   int
	Seed      int64
}

// DefaultE5 sweeps displacement fractions.
func DefaultE5() E5Config {
	return E5Config{
		Fractions: []float64{0, 0.1, 0.25, 0.5, 0.75},
		MaxDisp:   50,
		Size:      4000,
		Sources:   6,
		Seed:      5,
	}
}

// RunE5 measures integrated quality as a growing fraction of snippets is
// delivered out of chronological order (paper §2.4: local media pick up
// events faster than international media; the engine must support
// "out-of-order integration of events into evolving stories"). Expected
// shape: graceful degradation, not collapse — insertion into stories is
// order-aware and the window is two-sided.
func RunE5(cfg E5Config) []E5Row {
	corpus := datagen.Generate(CorpusScale(cfg.Size, cfg.Sources, cfg.Seed))
	truth := TruthAssignment(corpus)
	var rows []E5Row
	for _, frac := range cfg.Fractions {
		feed := corpus.Shuffled(frac, cfg.MaxDisp, cfg.Seed+int64(frac*100))
		e := stream.NewEngine(stream.DefaultOptions())
		e.IngestAll(feed)
		res := e.Align()
		rows = append(rows, E5Row{
			Fraction: frac,
			F1:       eval.Pairwise(eval.FromIntegrated(res.Integrated), truth).F1,
			Stories:  len(res.Integrated),
		})
	}
	return rows
}

// E5Table renders the rows.
func E5Table(rows []E5Row) *Table {
	t := &Table{
		Title:   "E5: out-of-order delivery robustness",
		Headers: []string{"ooo fraction", "F1", "integrated stories"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []any{r.Fraction, r.F1, r.Stories})
	}
	return t
}
