package trend

import (
	"testing"
	"time"

	"repro/internal/event"
)

func ts(d int, h int) time.Time {
	return time.Date(2014, 7, d, h, 0, 0, 0, time.UTC)
}

func TestBuildSeries(t *testing.T) {
	times := []time.Time{ts(1, 3), ts(1, 20), ts(2, 1), ts(5, 0)}
	s := BuildSeries(times, 24*time.Hour)
	if len(s.Counts) != 5 {
		t.Fatalf("buckets = %d, want 5", len(s.Counts))
	}
	if s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[4] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
	if s.At(ts(1, 12)) != 0 || s.At(ts(5, 1)) != 4 {
		t.Fatal("At wrong")
	}
	if s.At(ts(1, 0).Add(-48*time.Hour)) != -1 {
		t.Fatal("At before origin should be -1")
	}
	// Degenerate inputs.
	if got := BuildSeries(nil, time.Hour); len(got.Counts) != 0 {
		t.Fatal("empty series not empty")
	}
}

func TestBurstsDetectsSpike(t *testing.T) {
	// Quiet background of 1/day with a 3-day spike of 10/day.
	var times []time.Time
	for d := 1; d <= 20; d++ {
		times = append(times, ts(d, 0))
		if d >= 8 && d <= 10 {
			for k := 0; k < 9; k++ {
				times = append(times, ts(d, 1+k))
			}
		}
	}
	s := BuildSeries(times, 24*time.Hour)
	bursts := Bursts(s, DefaultConfig())
	if len(bursts) != 1 {
		t.Fatalf("bursts = %+v", bursts)
	}
	b := bursts[0]
	if !b.Start.Equal(ts(8, 0)) || !b.End.Equal(ts(11, 0)) {
		t.Fatalf("burst window %v..%v", b.Start, b.End)
	}
	if b.Snippets != 30 || b.Score <= 2 {
		t.Fatalf("burst = %+v", b)
	}
}

func TestBurstsUniformActivityYieldsNone(t *testing.T) {
	var times []time.Time
	for d := 1; d <= 10; d++ {
		times = append(times, ts(d, 0), ts(d, 12))
	}
	if got := Bursts(BuildSeries(times, 24*time.Hour), DefaultConfig()); len(got) != 0 {
		t.Fatalf("uniform series produced bursts: %+v", got)
	}
	if got := Bursts(&Series{}, DefaultConfig()); got != nil {
		t.Fatal("empty series produced bursts")
	}
}

func mkIntegrated(id event.IntegratedID, times []time.Time) *event.IntegratedStory {
	st := event.NewStory(event.StoryID(id), "src")
	for i, tm := range times {
		sn := &event.Snippet{
			ID: event.SnippetID(uint64(id)*1000 + uint64(i)), Source: "src", Timestamp: tm,
			Entities: []event.Entity{"E"},
		}
		st.Add(sn)
	}
	return event.NewIntegratedStory(id, []*event.Story{st})
}

func TestStoryBursts(t *testing.T) {
	var times []time.Time
	for d := 1; d <= 15; d++ {
		times = append(times, ts(d, 0))
	}
	for k := 0; k < 12; k++ {
		times = append(times, ts(7, 1+k))
	}
	is := mkIntegrated(1, times)
	bursts := StoryBursts(is, DefaultConfig())
	if len(bursts) != 1 {
		t.Fatalf("bursts = %+v", bursts)
	}
	// Tiny stories are skipped.
	small := mkIntegrated(2, []time.Time{ts(1, 0), ts(2, 0)})
	if got := StoryBursts(small, DefaultConfig()); got != nil {
		t.Fatal("tiny story analysed")
	}
}

func TestTrendingRanksRecentlyActiveStories(t *testing.T) {
	now := ts(20, 0)
	// Story A: steady history, quiet now.
	var aTimes []time.Time
	for d := 1; d <= 18; d++ {
		aTimes = append(aTimes, ts(d, 0))
	}
	// Story B: modest history, exploding in the last 2 days.
	bTimes := []time.Time{ts(2, 0), ts(6, 0), ts(10, 0)}
	for k := 0; k < 15; k++ {
		bTimes = append(bTimes, ts(19, k), ts(20, 0))
	}
	// Story C: brand new, active now.
	var cTimes []time.Time
	for k := 0; k < 6; k++ {
		cTimes = append(cTimes, ts(19, 2*k))
	}
	stories := []*event.IntegratedStory{
		mkIntegrated(1, aTimes),
		mkIntegrated(2, bTimes),
		mkIntegrated(3, cTimes),
	}
	trends := Trending(stories, now, 48*time.Hour, DefaultConfig())
	if len(trends) < 2 {
		t.Fatalf("trends = %+v", trends)
	}
	if trends[0].Story.ID != 2 {
		t.Fatalf("top trend = story %d, want 2 (the burster)", trends[0].Story.ID)
	}
	// The quiet steady story is either absent or ranked last.
	for i, tr := range trends {
		if tr.Story.ID == 1 && i == 0 {
			t.Fatal("steady story ranked first")
		}
	}
	// No recent activity at a far-future now: nothing trends.
	if got := Trending(stories, ts(28, 0).AddDate(1, 0, 0), 48*time.Hour, DefaultConfig()); len(got) != 0 {
		t.Fatalf("far-future trending = %d", len(got))
	}
}
